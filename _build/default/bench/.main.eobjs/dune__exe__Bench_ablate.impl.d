bench/bench_ablate.ml: Array Int64 List Printf Varan_nvx Varan_util Varan_workloads

bench/bench_bechamel.ml: Analyze Bechamel Benchmark Hashtbl Instance List Measure Printf Staged Test Time Toolkit Varan_binary Varan_bpf Varan_ringbuf Varan_shmem Varan_sim Varan_util

bench/bench_micro.ml: Array Bytes Int64 List Paper Printf Report Varan_kernel Varan_nvx Varan_sim Varan_util

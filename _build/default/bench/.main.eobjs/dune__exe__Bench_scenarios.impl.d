bench/bench_scenarios.ml: Array Bytes Int64 List Paper Printf String Varan_cycles Varan_kernel Varan_nvx Varan_sim Varan_syscall Varan_util Varan_workloads

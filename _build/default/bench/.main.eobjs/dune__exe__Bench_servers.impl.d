bench/bench_servers.ml: Array List Paper Printf Report Varan_nvx Varan_util Varan_workloads

bench/bench_spec.ml: Array List Paper Printf Report Varan_util Varan_workloads

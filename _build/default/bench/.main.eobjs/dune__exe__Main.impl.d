bench/main.ml: Array Bench_ablate Bench_bechamel Bench_micro Bench_scenarios Bench_servers Bench_spec List Printf String Sys

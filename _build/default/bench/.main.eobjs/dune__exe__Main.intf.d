bench/main.mli:

bench/paper.ml:

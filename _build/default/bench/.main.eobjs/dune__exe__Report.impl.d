bench/report.ml: Filename Printf Sys Varan_util

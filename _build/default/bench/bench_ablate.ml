(* Ablations of the design decisions DESIGN.md calls out:
     - event streaming vs the centralised lockstep monitor,
     - the shared ring buffer vs per-follower queues with an event pump,
     - selective rewriting vs trapping every syscall,
     - ring size vs performance and divergence-detection delay,
     - waitlocks vs pure busy-waiting. *)

module Driver = Varan_workloads.Driver
module Workload = Varan_workloads.Workload
module Catalog = Varan_workloads.Catalog
module Config = Varan_nvx.Config
module Nvx = Varan_nvx.Session
module Tablefmt = Varan_util.Tablefmt

let nvx ?(config = Config.default) followers = Driver.Nvx { followers; config }

let overhead w mode =
  let native = Driver.run w Driver.Native in
  Driver.overhead ~baseline:native (Driver.run w mode)

let lockstep () =
  print_endline
    "=== Ablation: event streaming vs lockstep (two versions) ===\n";
  let table =
    Tablefmt.create
      [
        ("server", Tablefmt.Left);
        ("varan (streaming)", Tablefmt.Right);
        ("lockstep monitor", Tablefmt.Right);
      ]
  in
  List.iter
    (fun w ->
      Tablefmt.add_row table
        [
          w.Workload.w_name;
          Tablefmt.ratio (overhead w (nvx 1));
          Tablefmt.ratio (overhead w (Driver.Lockstep { versions = 2 }));
        ])
    Catalog.c10k_servers;
  Tablefmt.print table

let pump () =
  print_endline
    "=== Ablation: shared ring buffer vs event pump (the discarded first \
     design, \xc2\xa73.3.1) ===\n";
  let pump_config =
    { Config.default with Config.streaming = Config.Event_pump }
  in
  let table =
    Tablefmt.create
      (("server", Tablefmt.Left)
      :: List.concat_map
           (fun f ->
             [
               (Printf.sprintf "ring %df" f, Tablefmt.Right);
               (Printf.sprintf "pump %df" f, Tablefmt.Right);
             ])
           [ 1; 3; 6 ])
  in
  List.iter
    (fun w ->
      let native = Driver.run w Driver.Native in
      let cells =
        List.concat_map
          (fun f ->
            [
              Tablefmt.ratio
                (Driver.overhead ~baseline:native (Driver.run w (nvx f)));
              Tablefmt.ratio
                (Driver.overhead ~baseline:native
                   (Driver.run w (nvx ~config:pump_config f)));
            ])
          [ 1; 3; 6 ]
      in
      Tablefmt.add_row table (w.Workload.w_name :: cells))
    [ Catalog.beanstalkd; Catalog.redis ];
  Tablefmt.print table

let trap_only () =
  print_endline
    "=== Ablation: selective rewriting vs INT-trap-only interception ===\n";
  let trap_config =
    { Config.default with Config.interception = Config.Trap_only }
  in
  let table =
    Tablefmt.create
      [
        ("server", Tablefmt.Left);
        ("rewrite 0f", Tablefmt.Right);
        ("trap-only 0f", Tablefmt.Right);
        ("rewrite 1f", Tablefmt.Right);
        ("trap-only 1f", Tablefmt.Right);
      ]
  in
  List.iter
    (fun w ->
      let native = Driver.run w Driver.Native in
      let cell config f =
        Tablefmt.ratio
          (Driver.overhead ~baseline:native (Driver.run w (nvx ?config f)))
      in
      Tablefmt.add_row table
        [
          w.Workload.w_name;
          cell None 0;
          cell (Some trap_config) 0;
          cell None 1;
          cell (Some trap_config) 1;
        ])
    [ Catalog.beanstalkd; Catalog.lighttpd_wrk ];
  Tablefmt.print table

let ring_size () =
  print_endline
    "=== Ablation: ring size vs overhead and divergence-detection delay \
     (\xc2\xa76) ===\n";
  let table =
    Tablefmt.create
      [
        ("ring size", Tablefmt.Right);
        ("overhead (1f)", Tablefmt.Right);
        ("max observed lag", Tablefmt.Right);
      ]
  in
  let w = Catalog.beanstalkd in
  let native = Driver.run w Driver.Native in
  List.iter
    (fun size ->
      let config = Config.with_ring_size Config.default size in
      let m, st = Driver.run_with_session w ~followers:1 ~config in
      Tablefmt.add_row table
        [
          string_of_int size;
          Tablefmt.ratio (Driver.overhead ~baseline:native m);
          string_of_int st.Nvx.max_observed_lag;
        ])
    [ 1; 4; 16; 64; 256; 1024 ];
  Tablefmt.print table;
  print_endline
    "size 1 disables buffering: divergences are detected immediately, at a \
     throughput cost\n(the security trade-off discussed in Section 6)."

let waitlock () =
  print_endline "=== Ablation: waitlocks vs pure busy-waiting ===\n";
  let busy_config =
    { Config.default with Config.follower_wait = Config.Busy_wait }
  in
  let table =
    Tablefmt.create
      [
        ("server", Tablefmt.Left);
        ("waitlock", Tablefmt.Right);
        ("busy-wait", Tablefmt.Right);
        ("burned cycles (busy)", Tablefmt.Right);
      ]
  in
  List.iter
    (fun w ->
      let native = Driver.run w Driver.Native in
      let m_wl, _ =
        Driver.run_with_session w ~followers:1 ~config:Config.default
      in
      let m_busy, st_busy =
        Driver.run_with_session w ~followers:1 ~config:busy_config
      in
      let burned =
        Array.fold_left
          (fun acc v -> Int64.add acc v.Nvx.vs_stall_cycles)
          0L st_busy.Nvx.variants
      in
      Tablefmt.add_row table
        [
          w.Workload.w_name;
          Tablefmt.ratio (Driver.overhead ~baseline:native m_wl);
          Tablefmt.ratio (Driver.overhead ~baseline:native m_busy);
          Printf.sprintf "%.1fM" (Int64.to_float burned /. 1e6);
        ])
    [ Catalog.beanstalkd; Catalog.redis ];
  Tablefmt.print table;
  print_endline
    "Busy waiting keeps wall-clock overhead similar but burns follower CPU\n\
     while the ring is empty; waitlocks trade a futex round trip for idle \
     cores."

let run () =
  lockstep ();
  print_newline ();
  pump ();
  print_newline ();
  trap_only ();
  print_newline ();
  ring_size ();
  print_newline ();
  waitlock ()

(* Real (wall-clock) performance of the implementation's hot components,
   measured with Bechamel: the BPF interpreter, the binary rewriter, the
   shared-memory pool, the Disruptor ring (driven inside a simulation
   engine, since its blocking paths are engine condition variables) and
   the discrete-event engine itself. These complement the virtual-time
   results: they show the library itself is fast enough to be used as a
   research vehicle. *)

open Bechamel
open Toolkit
module E = Varan_sim.Engine
module Ring = Varan_ringbuf.Ring
module Pool = Varan_shmem.Pool
module Asm = Varan_bpf.Asm
module Interp = Varan_bpf.Interp
module Rules = Varan_bpf.Rules
module Rewriter = Varan_binary.Rewriter
module Codegen = Varan_binary.Codegen
module Prng = Varan_util.Prng

let listing1 = Asm.assemble_exn Rules.listing1

let bpf_test =
  Test.make ~name:"bpf-interp-listing1"
    (Staged.stage (fun () ->
         ignore
           (Interp.run listing1
              ~data:{ Interp.nr = 102; args = [||] }
              ~event:{ Interp.ev_nr = 108; ev_ret = 0; ev_args = [||] })))

let rewrite_code =
  let rng = Prng.create 99 in
  Codegen.profile_image rng ~code_bytes:30_000 ~syscall_share:0.02

let rewriter_test =
  Test.make ~name:"rewriter-30kB-image"
    (Staged.stage (fun () -> ignore (Rewriter.rewrite rewrite_code)))

let pool_test =
  let pool = Pool.create () in
  Test.make ~name:"pool-alloc-free-512B"
    (Staged.stage (fun () ->
         let c = Pool.alloc pool 512 in
         Pool.free pool c))

let ring_test =
  Test.make ~name:"ring-256-publish-consume"
    (Staged.stage (fun () ->
         let eng = E.create () in
         let ring = Ring.create ~size:256 "bench" in
         let cid = Ring.add_consumer ring in
         ignore
           (E.spawn eng (fun () ->
                for i = 1 to 256 do
                  Ring.publish ring i
                done;
                for _ = 1 to 256 do
                  ignore (Ring.consume ring cid)
                done));
         E.run eng))

let engine_test =
  Test.make ~name:"engine-1k-task-switches"
    (Staged.stage (fun () ->
         let eng = E.create () in
         ignore
           (E.spawn eng (fun () ->
                for _ = 1 to 1_000 do
                  E.consume 1
                done));
         E.run eng))

let tests =
  [ bpf_test; rewriter_test; pool_test; ring_test; engine_test ]

let run () =
  print_endline
    "=== Real wall-clock microbenchmarks of the implementation (Bechamel) \
     ===\n";
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"" [ test ]) in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols instance raw in
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> Printf.printf "  %-28s %12.0f ns/run\n" name ns
          | _ -> Printf.printf "  %-28s (no estimate)\n" name;
          ignore raw)
        results)
    tests;
  print_newline ()

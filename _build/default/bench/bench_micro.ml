(* Figure 4: system call microbenchmarks.

   Each of the five calls is executed in a tight loop (after a warm-up,
   as in the paper) in four configurations:
     native    - straight into the kernel;
     intercept - under VARAN with zero followers (binary rewriting active,
                 nothing recorded);
     leader    - under VARAN as the leader of a two-version session;
     follower  - the follower of that session (waiting time excluded).
   Native and intercept are timed around each call; leader and follower
   costs come from the session's per-variant syscall-time accounting. *)

module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Api = Varan_kernel.Api
module Flags = Varan_kernel.Flags
module Nvx = Varan_nvx.Session
module Variant = Varan_nvx.Variant
module Tablefmt = Varan_util.Tablefmt

let iterations = 2_000
let warmup = 200

type micro = { name : string; body : n:int -> Api.t -> unit }

let ok = function Ok v -> v | Error _ -> -1

(* Each microbenchmark performs its call [n] times; any setup happens
   before the measured region and is negligible against [n] calls. *)
let micros =
  [
    {
      name = "close";
      body =
        (fun ~n api ->
          for _ = 1 to n do
            ignore (Api.close api (-1))
          done);
    };
    {
      name = "write";
      body =
        (fun ~n api ->
          let fd = ok (Api.openf api "/dev/null" Flags.o_wronly) in
          let buf = Bytes.make 512 'w' in
          for _ = 1 to n do
            ignore (Api.write api fd buf)
          done);
    };
    {
      name = "read";
      body =
        (fun ~n api ->
          (* /dev/zero rather than /dev/null so the 512-byte result
             payload actually exists and must travel via shared memory. *)
          let fd = ok (Api.openf api "/dev/zero" Flags.o_rdonly) in
          for _ = 1 to n do
            ignore (Api.read api fd 512)
          done);
    };
    {
      name = "open";
      body =
        (fun ~n api ->
          for _ = 1 to n do
            let fd = ok (Api.openf api "/dev/null" Flags.o_rdonly) in
            ignore (Api.close api fd)
          done);
    };
    {
      name = "time";
      body =
        (fun ~n api ->
          for _ = 1 to n do
            ignore (Api.time api)
          done);
    };
  ]

(* The open benchmark inevitably pairs each open with a close; its cost
   is reported as (pair - close) using the close benchmark's result. *)

let run_native micro =
  let eng = E.create () in
  let k = K.create eng in
  let proc = K.new_proc k "micro" in
  let per_call = ref 0.0 in
  ignore
    (E.spawn eng (fun () ->
         let api = Api.direct k proc in
         micro.body ~n:warmup api;
         let t0 = E.now_cycles () in
         micro.body ~n:iterations api;
         let t1 = E.now_cycles () in
         per_call := Int64.to_float (Int64.sub t1 t0) /. float_of_int iterations));
  E.run_until_quiescent eng;
  !per_call

(* Run under NVX with [followers] and return per-call syscall-layer time
   for the requested variant, with waiting excluded and warm-up calls
   subtracted via a calibration pass. *)
let run_nvx micro ~followers ~variant_idx =
  let eng = E.create () in
  let k = K.create eng in
  let config =
    (* A large ring so the leader never stalls on the follower during
       measurement, and jump-only dispatch: the measurement loop has no
       branch targets adjacent to its syscall sites. *)
    {
      (Varan_nvx.Config.with_ring_size Varan_nvx.Config.default 8192) with
      Varan_nvx.Config.interception = Varan_nvx.Config.Jump_only;
    }
  in
  let mk name =
    Variant.make name (Variant.single (fun api -> micro.body ~n:iterations api))
  in
  let variants = List.init (followers + 1) (fun i -> mk (Printf.sprintf "v%d" i)) in
  let session = Nvx.launch ~config k variants in
  E.run_until_quiescent eng;
  let st = (Nvx.stats session).Nvx.variants.(variant_idx) in
  let productive =
    Int64.to_float
      (Int64.sub
         (Int64.sub st.Nvx.vs_sys_cycles st.Nvx.vs_stall_cycles)
         st.Nvx.vs_wait_charge_cycles)
  in
  if st.Nvx.vs_syscalls = 0 then 0.0
  else productive /. float_of_int st.Nvx.vs_syscalls

let adjust ?(per_call_avg = false) name value close_value =
  (* open is measured as an open+close pair. Stats-based configurations
     report the mean over both calls of the pair, so recover the pair
     first; the native timing already measures the whole pair. *)
  if name <> "open" then value
  else if per_call_avg then (value *. 2.0) -. close_value
  else value -. close_value

let run () =
  print_endline "=== Figure 4: system call microbenchmarks (cycles) ===";
  print_endline
    "paper numbers in brackets; measured values from the calibrated model\n";
  let table =
    Tablefmt.create ~title:""
      [
        ("syscall", Tablefmt.Left);
        ("native", Tablefmt.Right);
        ("intercept", Tablefmt.Right);
        ("leader", Tablefmt.Right);
        ("follower", Tablefmt.Right);
      ]
  in
  (* Pre-measure close in every configuration for the open adjustment. *)
  let close_micro = List.hd micros in
  let close_native = run_native close_micro in
  let close_intercept = run_nvx close_micro ~followers:0 ~variant_idx:0 in
  let close_leader = run_nvx close_micro ~followers:1 ~variant_idx:0 in
  let close_follower = run_nvx close_micro ~followers:1 ~variant_idx:1 in
  List.iter
    (fun micro ->
      let native = adjust micro.name (run_native micro) close_native in
      let intercept =
        adjust ~per_call_avg:true micro.name
          (run_nvx micro ~followers:0 ~variant_idx:0)
          close_intercept
      in
      let leader =
        adjust ~per_call_avg:true micro.name
          (run_nvx micro ~followers:1 ~variant_idx:0)
          close_leader
      in
      let follower =
        adjust ~per_call_avg:true micro.name
          (run_nvx micro ~followers:1 ~variant_idx:1)
          close_follower
      in
      let pn, pi, pl, pf =
        let _, a, b, c, d =
          List.find (fun (n, _, _, _, _) -> n = micro.name) Paper.fig4
        in
        (a, b, c, d)
      in
      Tablefmt.add_row table
        [
          micro.name;
          Printf.sprintf "%.0f [%d]" native pn;
          Printf.sprintf "%.0f [%d]" intercept pi;
          Printf.sprintf "%.0f [%d]" leader pl;
          Printf.sprintf "%.0f [%d]" follower pf;
        ])
    micros;
  Tablefmt.print table;
  Report.save_csv ~name:"fig4" table

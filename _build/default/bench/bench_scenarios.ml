(* Section 5: application scenarios.
     5.1 transparent failover   (Redis revisions, Lighttpd crash)
     5.2 multi-revision execution (Lighttpd revision pairs + BPF rules)
     5.3 live sanitization       (ASan/MSan followers, log distance)
     5.4 record-replay           (VARAN recorder vs the Scribe model) *)

module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Api = Varan_kernel.Api
module Flags = Varan_kernel.Flags
module Errno = Varan_syscall.Errno
module Cost = Varan_cycles.Cost
module Nvx = Varan_nvx.Session
module Config = Varan_nvx.Config
module Variant = Varan_nvx.Variant
module RR = Varan_nvx.Record_replay
module Revisions = Varan_workloads.Revisions
module Kv_server = Varan_workloads.Kv_server
module Proto = Varan_workloads.Proto
module Driver = Varan_workloads.Driver
module Workload = Varan_workloads.Workload
module Clients = Varan_workloads.Clients
module Stats = Varan_util.Stats

let ok = function
  | Ok v -> v
  | Error e -> failwith ("scenario client: " ^ Errno.name e)

let rec connect_retry api fd port =
  match Api.connect api fd port with
  | Ok () -> ()
  | Error Errno.ECONNREFUSED ->
    E.sleep 5_000;
    connect_retry api fd port
  | Error e -> failwith ("connect: " ^ Errno.name e)

(* ------------------------------------------------------------------ *)
(* 5.1 Transparent failover                                            *)
(* ------------------------------------------------------------------ *)

(* A redis client that issues labelled commands and records the latency
   of each; returns (label, latency_us) in order. *)
let redis_session ~buggy_position ~revisions ~link_latency =
  let eng = E.create () in
  let k = K.create ~link_latency eng in
  Revisions.setup_fs k;
  let port = 6400 in
  let commands =
    [ ("HSET", "HSET h f1 v1"); ("HSET", "HSET h f2 v2") ]
    @ List.init 6 (fun i -> ("GET", Printf.sprintf "GET warm%d" i))
    @ [ ("HMGET", "HMGET h f1 f2") ]
    @ List.init 4 (fun i -> ("GET", Printf.sprintf "GET after%d" i))
  in
  let expected_conns = 1 in
  let variants =
    List.init revisions (fun i ->
        Revisions.redis_revision
          ~buggy:(Some i = buggy_position)
          ~name:(Printf.sprintf "redis-rev%d" i)
          ~port ~expected_conns)
  in
  let session = Nvx.launch k variants in
  let cost = K.cost k in
  let results = ref [] in
  let cproc = K.new_proc k "redis-cli" in
  let tid =
    E.spawn eng ~name:"redis-cli" (fun () ->
        let api = Api.direct k cproc in
        let fd = ok (Api.socket api) in
        connect_retry api fd port;
        List.iter
          (fun (label, cmd) ->
            let t0 = E.now_cycles () in
            ok (Proto.send_msg api fd (Kv_server.cmd cmd));
            (match Proto.recv_msg api fd with
            | Ok (Some _) ->
              let t1 = E.now_cycles () in
              results :=
                (label, Cost.cycles_to_us cost (Int64.sub t1 t0)) :: !results
            | Ok None | Error _ -> ());
            E.consume 2_000)
          commands;
        ignore (Api.close api fd))
  in
  K.register_task k cproc tid;
  E.run_until_quiescent eng;
  (session, List.rev !results)

let hmget_latency results =
  match List.assoc_opt "HMGET" results with Some l -> l | None -> nan

let get_latencies results =
  List.filter_map (fun (l, v) -> if l = "GET" then Some v else None) results

let failover () =
  print_endline "=== Section 5.1: transparent failover ===\n";
  (* Eight consecutive Redis revisions; the newest (internal id 0, the
     leader) introduced the HMGET crash. *)
  let rack = 28_000 (* 8 us each way: same-rack TCP *) in
  let _, baseline =
    redis_session ~buggy_position:None ~revisions:8 ~link_latency:rack
  in
  let s_leader, with_leader_crash =
    redis_session ~buggy_position:(Some 0) ~revisions:8 ~link_latency:rack
  in
  let s_follower, with_follower_crash =
    redis_session ~buggy_position:(Some 3) ~revisions:8 ~link_latency:rack
  in
  let paper_before, paper_after = Paper.failover_redis_latency_us in
  Printf.printf
    "Redis, 8 revisions, HMGET triggers the bug  [paper: %.2fus -> %.2fus]\n"
    paper_before paper_after;
  Printf.printf "  HMGET latency, no buggy revision   : %8.2f us\n"
    (hmget_latency baseline);
  Printf.printf "  HMGET latency, buggy LEADER        : %8.2f us  (crash %b, new leader idx %d)\n"
    (hmget_latency with_leader_crash)
    (Nvx.crash_log_nonempty s_leader)
    (Nvx.leader_index s_leader);
  Printf.printf "  HMGET latency, buggy FOLLOWER      : %8.2f us  (crash %b, leader idx %d)\n"
    (hmget_latency with_follower_crash)
    (Nvx.crash_log_nonempty s_follower)
    (Nvx.leader_index s_follower);
  let mean_get r = Stats.mean (get_latencies r) in
  Printf.printf "  GET latency after failover         : %8.2f us (vs %.2f us baseline)\n"
    (mean_get with_leader_crash) (mean_get baseline);
  (* Lighttpd revisions 2437/2438: with the client across a real network
     (5 ms round trips dominate), the failover is invisible, matching the
     paper's constant 5 ms observation. *)
  let http_latency ~buggy_leader =
    let eng = E.create () in
    let k = K.create ~link_latency:8_750_000 (* 2.5 ms each way *) eng in
    Revisions.setup_fs k;
    let port = 8200 in
    let crash_marker = "/crash" in
    (* A minimal web server whose buggy revision segfaults while
       processing the marker request (before replying), like lighttpd
       revision 2438. *)
    let mk_variant ~buggy name =
      let body ~unit_idx api =
        if unit_idx = 0 then begin
          let lfd = ok (Api.socket api) in
          ok (Api.bind api lfd port);
          ok (Api.listen api lfd);
          let c = ok (Api.accept api lfd) in
          let rec serve () =
            match Proto.recv_msg api c with
            | Ok (Some req) ->
              Api.compute api 29_000;
              if buggy && Bytes.to_string req = "GET " ^ crash_marker then
                failwith "segfault (lighttpd 2438 bug)";
              ok (Proto.send_msg api c (Bytes.make 4096 'p'));
              serve ()
            | Ok None | Error _ -> ()
          in
          serve ();
          ignore (Api.close api c);
          ignore (Api.close api lfd)
        end
      in
      Variant.make name
        { Variant.units = 1; unit_kind = Variant.Thread; body }
    in
    let variants =
      if buggy_leader then
        [ mk_variant ~buggy:true "lighttpd-2438"; mk_variant ~buggy:false "lighttpd-2437" ]
      else
        [ mk_variant ~buggy:false "lighttpd-2437"; mk_variant ~buggy:true "lighttpd-2438" ]
    in
    ignore (Nvx.launch k variants);
    let cost = K.cost k in
    let lat = ref [] in
    let cproc = K.new_proc k "http-cli" in
    let tid =
      E.spawn eng ~name:"http-cli" (fun () ->
          let api = Api.direct k cproc in
          let fd = ok (Api.socket api) in
          connect_retry api fd port;
          List.iter
            (fun path ->
              let t0 = E.now_cycles () in
              ok (Proto.send_msg api fd (Bytes.of_string ("GET " ^ path)));
              (match Proto.recv_msg api fd with
              | Ok (Some _) ->
                lat :=
                  Cost.cycles_to_us cost (Int64.sub (E.now_cycles ()) t0)
                  :: !lat
              | _ -> ()))
            [ "/a"; "/b"; crash_marker; "/c" ];
          ignore (Api.close api fd))
    in
    K.register_task k cproc tid;
    E.run_until_quiescent eng;
    List.rev !lat
  in
  let leader_case = http_latency ~buggy_leader:true in
  let follower_case = http_latency ~buggy_leader:false in
  let pp_ms l = String.concat " " (List.map (fun v -> Printf.sprintf "%.2fms" (v /. 1000.)) l) in
  Printf.printf
    "\nLighttpd rev 2437/2438 over a 5 ms RTT link [paper: constant ~5 ms]\n";
  Printf.printf "  request latencies, buggy leader    : %s\n" (pp_ms leader_case);
  Printf.printf "  request latencies, buggy follower  : %s\n" (pp_ms follower_case)

(* ------------------------------------------------------------------ *)
(* 5.2 Multi-revision execution                                        *)
(* ------------------------------------------------------------------ *)

let run_pair ~leader_rev ~follower_rev ~port =
  let eng = E.create () in
  let k = K.create ~link_latency:3_500 eng in
  Revisions.setup_fs k;
  let conns = 2 in
  let requests = 20 in
  let variants =
    [
      Revisions.lighttpd_variant ~rev:leader_rev ~port ~expected_conns:conns;
      Revisions.lighttpd_variant ~rev:follower_rev ~port ~expected_conns:conns;
    ]
  in
  let session = Nvx.launch k variants in
  let completed = ref 0 in
  for c = 0 to conns - 1 do
    let cproc = K.new_proc k (Printf.sprintf "wrk%d" c) in
    let tid =
      E.spawn eng ~name:(Printf.sprintf "wrk%d" c) (fun () ->
          let api = Api.direct k cproc in
          let fd = ok (Api.socket api) in
          connect_retry api fd port;
          for _ = 1 to requests do
            ok (Proto.send_msg api fd (Bytes.of_string "GET /www/index.html"));
            match Proto.recv_msg api fd with
            | Ok (Some _) -> incr completed
            | _ -> ()
          done;
          ignore (Api.close api fd))
    in
    K.register_task k cproc tid
  done;
  E.run_until_quiescent eng;
  let st = Nvx.stats session in
  let f = st.Nvx.variants.(1) in
  ( !completed,
    Nvx.crashes session,
    f.Nvx.vs_divergences_executed,
    f.Nvx.vs_divergences_skipped,
    Nvx.is_alive session 1 )

let multirev () =
  print_endline "=== Section 5.2: multi-revision execution ===\n";
  let report name (completed, crashes, dx, ds, alive) expected_total =
    Printf.printf
      "%-28s: %d/%d replies, follower %s, %d inserted, %d skipped, %d crashes\n"
      name completed expected_total
      (if alive then "alive" else "dead")
      dx ds (List.length crashes)
  in
  report "2435 -> 2436 (getuid/getgid)"
    (run_pair ~leader_rev:Revisions.R2435 ~follower_rev:Revisions.R2436
       ~port:8300)
    40;
  report "2523 -> 2524 (urandom read)"
    (run_pair ~leader_rev:Revisions.R2523 ~follower_rev:Revisions.R2524
       ~port:8310)
    40;
  report "2577 -> 2578 (fcntl)"
    (run_pair ~leader_rev:Revisions.R2577 ~follower_rev:Revisions.R2578
       ~port:8320)
    40;
  report "2578 -> 2577 (fcntl removal)"
    (run_pair ~leader_rev:Revisions.R2578 ~follower_rev:Revisions.R2577
       ~port:8330)
    40;
  (* Control: without rewrite rules the divergence kills the follower,
     as in every prior lockstep system. *)
  let control =
    let eng = E.create () in
    let k = K.create ~link_latency:3_500 eng in
    Revisions.setup_fs k;
    let strip v = { v with Variant.rules = None } in
    let variants =
      [
        Revisions.lighttpd_variant ~rev:Revisions.R2435 ~port:8340
          ~expected_conns:1;
        strip
          (Revisions.lighttpd_variant ~rev:Revisions.R2436 ~port:8340
             ~expected_conns:1);
      ]
    in
    let session = Nvx.launch k variants in
    let cproc = K.new_proc k "wrk" in
    let tid =
      E.spawn eng ~name:"wrk" (fun () ->
          let api = Api.direct k cproc in
          let fd = ok (Api.socket api) in
          connect_retry api fd 8340;
          for _ = 1 to 5 do
            ok (Proto.send_msg api fd (Bytes.of_string "GET /www/index.html"));
            ignore (Proto.recv_msg api fd)
          done;
          ignore (Api.close api fd))
    in
    K.register_task k cproc tid;
    E.run_until_quiescent eng;
    (Nvx.is_alive session 1, List.length (Nvx.crashes session))
  in
  let alive, crashes = control in
  Printf.printf
    "control: 2436 follower without rules: follower %s, %d crash (lockstep \
     systems cannot run this pair at all)\n"
    (if alive then "alive" else "killed")
    crashes;
  (* The §2.3 coalescing pattern: a buffered revision (leader) writes its
     log in one syscall where the unbuffered follower uses two. *)
  let eng = E.create () in
  let k = K.create eng in
  Revisions.setup_fs k;
  let leader_body api =
    let fd =
      ok (Api.openf api "/var/coalesce.log" Flags.(o_wronly lor o_creat))
    in
    ignore (ok (Api.write api fd (Bytes.make 1024 'l')));
    ignore (ok (Api.close api fd))
  in
  let follower_body api =
    let fd =
      ok (Api.openf api "/var/coalesce.log" Flags.(o_wronly lor o_creat))
    in
    ignore (ok (Api.write api fd (Bytes.make 512 'l')));
    ignore (ok (Api.write api fd (Bytes.make 512 'l')));
    ignore (ok (Api.close api fd))
  in
  let session =
    Nvx.launch k
      [
        Variant.make "buffered-rev" (Variant.single leader_body);
        Variant.make "unbuffered-rev" (Variant.single follower_body);
      ]
  in
  E.run_until_quiescent eng;
  let st = Nvx.stats session in
  Printf.printf
    "coalescing: buffered leader (1x1024B write) + unbuffered follower \
     (2x512B): %d coalesced slices, %d crashes\n"
    st.Nvx.variants.(1).Nvx.vs_divergences_coalesced
    (List.length (Nvx.crashes session))

(* ------------------------------------------------------------------ *)
(* 5.3 Live sanitization                                               *)
(* ------------------------------------------------------------------ *)

(* Run the Redis benchmark with configurable follower instrumentation
   multipliers; returns client throughput and sampled leader-follower
   distances. The GET-heavy redis-benchmark default mix spends most of
   each command in the kernel (network I/O) rather than in user-space
   compute, which is what lets a 2x-instrumented follower — which skips
   all the I/O — keep up with the leader (§5.3). *)
let sanitize_workload =
  let port = 6600 in
  {
    Workload.w_name = "Redis (GET mix)";
    units = 1;
    unit_kind = Variant.Thread;
    make_body =
      (fun () ->
        Kv_server.make_body
          {
            Kv_server.port;
            units = 1;
            aof_path = None;
            work_cycles = 2_000;
            expected_conns = 10;
            crash_on_hmget = false;
          }
          ());
    profile =
      { Variant.code_bytes = 35_000; syscall_share = 0.008; code_seed = 15 };
    mem_intensity_c1000 = 80;
    port_base = port;
    load =
      {
        Clients.connections = 10;
        requests_per_conn = 120;
        request_of =
          (fun ~conn ~seq ->
            if seq < 20 then
              Kv_server.cmd (Printf.sprintf "SET g%d-%d v" conn (seq mod 20))
            else Kv_server.cmd (Printf.sprintf "GET g%d-%d" conn (seq mod 20)));
        think_cycles = 500;
        warmup_requests = 20;
      };
    setup_fs = (fun k -> Varan_kernel.Vfs.add_file k "/var/.keep" "");
    rules = None;
  }

let sanitize_run ~multipliers =
  let w = sanitize_workload in
  let eng = E.create () in
  let k = K.create ~link_latency:3_500 eng in
  w.Workload.setup_fs k;
  let variants =
    Workload.fresh_variant w "redis-leader"
    :: List.mapi
         (fun i m ->
           let v = Workload.fresh_variant w (Printf.sprintf "redis-san%d" i) in
           { v with Variant.compute_multiplier_c1000 = m })
         multipliers
  in
  let session = Nvx.launch k variants in
  (* Sample the follower lag periodically for the median log distance. *)
  let samples = ref [] in
  ignore
    (E.spawn eng ~name:"lag-sampler" (fun () ->
         for _ = 1 to 400 do
           E.sleep 40_000;
           if List.length variants > 1 then
             samples := float_of_int (Nvx.sample_lag session 1) :: !samples
         done));
  let result =
    Clients.launch k ~cost:(K.cost k) ~port_of:(Workload.port_of_conn w)
      w.Workload.load
  in
  E.run_until_quiescent eng;
  let median_lag =
    match !samples with [] -> 0.0 | s -> Stats.median s
  in
  ( Clients.throughput_rps (K.cost k) result,
    median_lag,
    List.length (Nvx.crashes session) )

let sanitize () =
  print_endline "=== Section 5.3: live sanitization ===\n";
  let plain_rps, _, _ = sanitize_run ~multipliers:[ 1000 ] in
  let asan_rps, asan_lag, crashes = sanitize_run ~multipliers:[ 2000 ] in
  let multi_rps, multi_lag, crashes2 =
    sanitize_run ~multipliers:[ 2000; 3000 ]
  in
  Printf.printf "Redis leader + 1 plain follower      : %9.0f req/s\n" plain_rps;
  Printf.printf
    "Redis leader + 1 ASan (2x) follower  : %9.0f req/s  (%.1f%% extra \
     slowdown; paper: none)\n"
    asan_rps
    ((plain_rps /. asan_rps -. 1.0) *. 100.0);
  Printf.printf
    "  median log distance                : %9.1f events [paper: %d]\n"
    asan_lag Paper.sanitize_median_lag;
  Printf.printf
    "Leader + ASan (2x) + MSan (3x)       : %9.0f req/s, median lag %.1f \
     (concurrent incompatible sanitizers)\n"
    multi_rps multi_lag;
  Printf.printf "  crashes: %d %d\n" crashes crashes2

(* ------------------------------------------------------------------ *)
(* 5.4 Record-replay                                                   *)
(* ------------------------------------------------------------------ *)

let recrep () =
  print_endline "=== Section 5.4: record-replay ===\n";
  (* A single-unit Redis so the recorded stream is a single tuple. *)
  let port = 6500 in
  let conns = 6 in
  let reqs = 80 in
  let mk_workload =
    {
      Workload.w_name = "Redis (single-threaded)";
      units = 1;
      unit_kind = Variant.Thread;
      make_body =
        (fun () ->
          Kv_server.make_body
            {
              Kv_server.port;
              units = 1;
              aof_path = None;
              work_cycles = 28_000;
              expected_conns = conns;
              crash_on_hmget = false;
            }
            ());
      profile =
        { Variant.code_bytes = 35_000; syscall_share = 0.008; code_seed = 15 };
      mem_intensity_c1000 = 80;
      port_base = port;
      load =
        {
          Clients.connections = conns;
          requests_per_conn = reqs;
          request_of =
            (fun ~conn ~seq ->
              Kv_server.cmd (Printf.sprintf "SET k%d-%d v%d" conn seq seq));
          think_cycles = 500;
          warmup_requests = 0;
        };
      setup_fs = (fun k -> Varan_kernel.Vfs.add_file k "/var/.keep" "");
      rules = None;
    }
  in
  let native = Driver.run mk_workload Driver.Native in
  let scribe = Driver.run mk_workload Driver.Scribe in
  let varan_rec =
    Driver.run mk_workload
      (Driver.Nvx_record { followers = 1; log_path = "/var/varan.log" })
  in
  let p_scribe, p_varan = Paper.recrep_overheads in
  Printf.printf "Recording the Redis benchmark to persistent storage:\n";
  Printf.printf "  native                 : %9.0f req/s\n" native.Driver.throughput_rps;
  Printf.printf "  Scribe (kernel model)  : %9.0f req/s -> %.0f%% overhead [paper: %.0f%%]\n"
    scribe.Driver.throughput_rps
    ((Driver.overhead ~baseline:native scribe -. 1.) *. 100.)
    (p_scribe *. 100.);
  Printf.printf "  VARAN recorder (+1f)   : %9.0f req/s -> %.0f%% overhead [paper: %.0f%%]\n"
    varan_rec.Driver.throughput_rps
    ((Driver.overhead ~baseline:native varan_rec -. 1.) *. 100.)
    (p_varan *. 100.);
  (* Record in a dedicated machine, then replay the log twice over. *)
  let eng = E.create () in
  let k = K.create ~link_latency:3_500 eng in
  mk_workload.Workload.setup_fs k;
  let session =
    Nvx.launch k
      [ Workload.fresh_variant mk_workload "rec-leader";
        Workload.fresh_variant mk_workload "rec-follower" ]
  in
  let recorder = RR.record session k ~tuple:0 ~path:"/var/replay.log" in
  let result =
    Clients.launch k ~cost:(K.cost k)
      ~port_of:(Workload.port_of_conn mk_workload)
      mk_workload.Workload.load
  in
  E.run_until_quiescent eng;
  (* stop must run inside the engine: it pokes the ring. *)
  ignore (E.spawn eng ~name:"stop-recorder" (fun () -> RR.stop recorder));
  E.run_until_quiescent eng;
  Printf.printf "\nRecorded %d events (%d client requests served).\n"
    (RR.recorded_events recorder) result.Clients.completed;
  (* Replay: two clients of the same version replay the single log at
     once — the multi-version replay use case. *)
  let eng2 = E.create () in
  let k2 = K.create eng2 in
  mk_workload.Workload.setup_fs k2;
  (* Move the log across machines. *)
  (match Varan_kernel.Vfs.read_file k "/var/replay.log" with
  | Some log -> Varan_kernel.Vfs.add_file k2 "/var/replay.log" log
  | None -> failwith "no recorded log");
  let rp =
    RR.replay k2 ~path:"/var/replay.log"
      [ Workload.fresh_variant mk_workload "replay-a";
        Workload.fresh_variant mk_workload "replay-b" ]
  in
  E.run_until_quiescent eng2;
  Printf.printf
    "Replayed %d events into 2 replay clients; %d divergences/crashes.\n"
    (RR.replayed_events rp)
    (List.length (RR.replay_crashes rp))

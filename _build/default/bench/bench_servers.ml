(* Figures 5 and 6: C10k server overhead for 0-6 followers, and Table 2:
   comparison with the ptrace-based lockstep systems (Mx, Orchestra,
   Tachyon) on their own benchmarks. Overhead is the paper's metric:
   native throughput divided by monitored throughput, measured from the
   client side with the client on the same (simulated) rack. *)

module Driver = Varan_workloads.Driver
module Workload = Varan_workloads.Workload
module Catalog = Varan_workloads.Catalog
module Spec = Varan_workloads.Spec
module Config = Varan_nvx.Config
module Tablefmt = Varan_util.Tablefmt

let max_followers = 6

let overheads_for ?config w =
  let config = match config with Some c -> c | None -> Config.default in
  let native = Driver.run w Driver.Native in
  let rows =
    List.init (max_followers + 1) (fun followers ->
        let m = Driver.run w (Driver.Nvx { followers; config }) in
        Driver.overhead ~baseline:native m)
  in
  (native, rows)

let figure ?csv ~title ~paper workloads =
  print_endline title;
  let table =
    Tablefmt.create
      (("server", Tablefmt.Left)
      :: List.init (max_followers + 1) (fun i ->
             (string_of_int i ^ "f", Tablefmt.Right)))
  in
  List.iter
    (fun w ->
      let _, rows = overheads_for w in
      let paper_row =
        match List.assoc_opt w.Workload.w_name paper with
        | Some arr -> arr
        | None -> [||]
      in
      Tablefmt.add_row table
        (w.Workload.w_name
        :: List.mapi
             (fun i ov ->
               if Array.length paper_row > i then
                 Printf.sprintf "%.2f [%.2f]" ov paper_row.(i)
               else Printf.sprintf "%.2f" ov)
             rows))
    workloads;
  Tablefmt.print table;
  match csv with Some name -> Report.save_csv ~name table | None -> ()

let fig5 () =
  figure
    ~title:
      "=== Figure 5: C10k server overhead by follower count ===\n\
       measured [paper]; client on the same rack (worst case)\n"
    ~paper:Paper.fig5 ~csv:"fig5" Catalog.c10k_servers

let fig6 () =
  figure
    ~title:
      "=== Figure 6: prior-work servers under VARAN by follower count ===\n\
       measured [paper]\n"
    ~paper:Paper.fig6 ~csv:"fig6" Catalog.prior_work_servers

let table1 () =
  print_endline "=== Table 1: server applications used in the evaluation ===\n";
  let table =
    Tablefmt.create
      [
        ("Application", Tablefmt.Left);
        ("Size (LoC)", Tablefmt.Right);
        ("Threading", Tablefmt.Left);
      ]
  in
  List.iter
    (fun (name, size, threading) ->
      Tablefmt.add_row table [ name; string_of_int size; threading ])
    Catalog.table1;
  Tablefmt.print table

(* --- Table 2 ----------------------------------------------------------- *)

let spec_mean_overhead benchmarks ~mode =
  let ratios =
    List.map
      (fun p ->
        match mode with
        | `Nvx -> Driver.run_spec p ~followers:1
        | `Lockstep -> Driver.run_spec_lockstep p ~versions:2)
      benchmarks
  in
  Varan_util.Stats.mean ratios

let table2 () =
  print_endline
    "=== Table 2: comparison with prior NVX systems (two versions) ===\n\
     prior systems modelled as ptrace+lockstep monitors over the same \
     kernel;\n\
     brackets give the overheads the paper reports for each system\n";
  let table =
    Tablefmt.create
      [
        ("system", Tablefmt.Left);
        ("benchmark", Tablefmt.Left);
        ("prior (model)", Tablefmt.Right);
        ("prior [paper]", Tablefmt.Right);
        ("varan (model)", Tablefmt.Right);
        ("varan [paper]", Tablefmt.Right);
      ]
  in
  let server_row sys w paper_prior paper_varan =
    let native = Driver.run w Driver.Native in
    let ls = Driver.run w (Driver.Lockstep { versions = 2 }) in
    let nv =
      Driver.run w (Driver.Nvx { followers = 1; config = Config.default })
    in
    Tablefmt.add_row table
      [
        sys;
        w.Workload.w_name;
        Tablefmt.ratio (Driver.overhead ~baseline:native ls);
        paper_prior;
        Tablefmt.ratio (Driver.overhead ~baseline:native nv);
        paper_varan;
      ]
  in
  server_row "Mx" Catalog.lighttpd_http_load "3.49x" "1.01x";
  server_row "Mx" Catalog.redis "16.72x" "1.06x";
  let spec06_ls = spec_mean_overhead Spec.cpu2006 ~mode:`Lockstep in
  let spec06_nv = spec_mean_overhead Spec.cpu2006 ~mode:`Nvx in
  Tablefmt.add_row table
    [
      "Mx"; "SPEC CPU2006";
      Tablefmt.pct (spec06_ls -. 1.0);
      "17.9%";
      Tablefmt.pct (spec06_nv -. 1.0);
      "14.2%";
    ];
  server_row "Orchestra" Catalog.apache_httpd "50%" "2.4%";
  let spec00_ls = spec_mean_overhead Spec.cpu2000 ~mode:`Lockstep in
  let spec00_nv = spec_mean_overhead Spec.cpu2000 ~mode:`Nvx in
  Tablefmt.add_row table
    [
      "Orchestra"; "SPEC CPU2000";
      Tablefmt.pct (spec00_ls -. 1.0);
      "17%";
      Tablefmt.pct (spec00_nv -. 1.0);
      "11.3%";
    ];
  server_row "Tachyon" Catalog.lighttpd_ab "3.72x" "1.00x";
  server_row "Tachyon" Catalog.thttpd "1.17x" "1.00x";
  Tablefmt.print table;
  Report.save_csv ~name:"table2" table

(* Figures 7 and 8: SPEC CPU2000 / CPU2006 under VARAN with 0-6
   followers. Compute-bound workloads scale poorly with the number of
   variants because of memory pressure and caching effects on a
   four-core machine (§4.3); per-benchmark slowdowns are dominated by
   each kernel's memory intensity. *)

module Driver = Varan_workloads.Driver
module Spec = Varan_workloads.Spec
module Tablefmt = Varan_util.Tablefmt

let max_followers = 6

let figure ?csv ~title ~mean_paper benchmarks =
  print_endline title;
  let table =
    Tablefmt.create
      (("benchmark", Tablefmt.Left)
      :: List.init (max_followers + 1) (fun i ->
             (string_of_int i ^ "f", Tablefmt.Right)))
  in
  let sums = Array.make (max_followers + 1) 0.0 in
  List.iter
    (fun p ->
      let rows =
        List.init (max_followers + 1) (fun followers ->
            Driver.run_spec p ~followers)
      in
      List.iteri (fun i ov -> sums.(i) <- sums.(i) +. ov) rows;
      Tablefmt.add_row table
        (p.Spec.sp_name :: List.map (fun ov -> Printf.sprintf "%.2f" ov) rows))
    benchmarks;
  Tablefmt.add_rule table;
  let n = float_of_int (List.length benchmarks) in
  Tablefmt.add_row table
    ("mean"
    :: List.init (max_followers + 1) (fun i ->
           if Array.length mean_paper > i then
             Printf.sprintf "%.2f [~%.1f]" (sums.(i) /. n) mean_paper.(i)
           else Printf.sprintf "%.2f" (sums.(i) /. n)));
  Tablefmt.print table;
  match csv with Some name -> Report.save_csv ~name table | None -> ()

let fig7 () =
  figure
    ~title:
      "=== Figure 7: SPEC CPU2000 overhead by follower count ===\n\
       per-benchmark bars as in the paper; bracketed means read off the \
       figure\n"
    ~mean_paper:Paper.fig7_mean_by_followers ~csv:"fig7" Spec.cpu2000

let fig8 () =
  figure
    ~title:
      "=== Figure 8: SPEC CPU2006 overhead by follower count ===\n\
       per-benchmark bars as in the paper; bracketed means read off the \
       figure\n"
    ~mean_paper:Paper.fig8_mean_by_followers ~csv:"fig8" Spec.cpu2006

(* The numbers published in the paper, for side-by-side comparison in
   every table the harness prints. Source: Hosek & Cadar, "Varan the
   Unbelievable", ASPLOS 2015 — Figures 4-8, Tables 1-2, Section 5. *)

(* Figure 4: cycles per call — (name, native, intercept, leader, follower). *)
let fig4 =
  [
    ("close", 1261, 1330, 1718, 257);
    ("write", 1430, 1564, 1994, 291);
    ("read", 1486, 1528, 3290, 1969);
    ("open", 2583, 2976, 8788, 7342);
    ("time", 49, 122, 429, 189);
  ]

(* Figure 5: normalized overhead by number of followers (0-6). *)
let fig5 =
  [
    ("Beanstalkd", [| 1.10; 1.52; 1.57; 1.64; 1.74; 1.73; 1.77 |]);
    ("Lighttpd (wrk)", [| 1.00; 1.12; 1.14; 1.14; 1.14; 1.15; 1.15 |]);
    ("Memcached", [| 1.00; 1.14; 1.17; 1.18; 1.19; 1.30; 1.32 |]);
    ("Nginx", [| 1.04; 1.28; 1.37; 1.41; 1.55; 1.58; 1.64 |]);
    ("Redis", [| 1.00; 1.06; 1.11; 1.14; 1.24; 1.23; 1.25 |]);
  ]

(* Figure 6: prior-work servers, overhead by followers (0-6). *)
let fig6 =
  [
    ("Apache httpd", [| 1.00; 1.02; 1.04; 1.03; 1.04; 1.04; 1.04 |]);
    ("thttpd", [| 1.00; 1.00; 1.00; 1.01; 1.01; 1.01; 1.02 |]);
    ("Lighttpd (ab)", [| 1.00; 1.00; 1.00; 1.02; 1.04; 1.05; 1.07 |]);
    ("Lighttpd (http_load)", [| 1.00; 1.01; 1.03; 1.05; 1.06; 1.08; 1.08 |]);
  ]

(* Table 2: (system, benchmark, prior overhead description, varan
   overhead description) exactly as printed in the paper. *)
let table2 =
  [
    ("Mx", "Lighttpd (http_load)", "3.49x", "1.01x");
    ("Mx", "Redis (redis-benchmark)", "16.72x", "1.06x");
    ("Mx", "SPEC CPU2006", "17.9%", "14.2%");
    ("Orchestra", "Apache httpd (ApacheBench)", "50%", "2.4%");
    ("Orchestra", "SPEC CPU2000", "17%", "11.3%");
    ("Tachyon", "Lighttpd (ApacheBench)", "3.72x", "1.00x");
    ("Tachyon", "thttpd (ApacheBench)", "1.17x", "1.00x");
  ]

(* Section 5.1: Redis HMGET latency (microseconds). *)
let failover_redis_latency_us = (42.36, 122.62)

(* Section 5.3: median leader-follower distance with an ASan follower. *)
let sanitize_median_lag = 6

(* Section 5.4: record-to-disk overhead on the Redis benchmark. *)
let recrep_overheads = (0.53 (* Scribe *), 0.14 (* VARAN *))

(* Figures 7/8 publish per-benchmark bars; the headline SPEC numbers are
   the Table 2 means. For shape checks we keep the follower-count means
   visually read off the figures. *)
let fig7_mean_by_followers = [| 1.02; 1.11; 1.6; 2.1; 2.9; 3.5; 4.0 |]
let fig8_mean_by_followers = [| 1.02; 1.14; 1.7; 2.2; 3.0; 3.6; 4.1 |]

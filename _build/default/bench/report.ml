(* CSV export for the benchmark harness: every table the harness prints is
   also written under results/ so downstream tooling (plots, regression
   tracking) can consume the numbers without scraping stdout. *)

let results_dir = "results"

let ensure_dir () =
  if not (Sys.file_exists results_dir) then Sys.mkdir results_dir 0o755

let save_csv ~name table =
  ensure_dir ();
  let path = Filename.concat results_dir (name ^ ".csv") in
  let oc = open_out path in
  output_string oc (Varan_util.Tablefmt.to_csv table);
  close_out oc;
  Printf.printf "[saved %s]\n" path

examples/failover_demo.ml: Bytes Int64 List Printf Varan_cycles Varan_kernel Varan_nvx Varan_sim Varan_syscall Varan_workloads

examples/fork_demo.ml: Array Bytes Char List Printf String Varan_kernel Varan_nvx Varan_sim Varan_syscall

examples/fork_demo.mli:

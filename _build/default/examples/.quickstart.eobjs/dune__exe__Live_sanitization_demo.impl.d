examples/live_sanitization_demo.ml: Bytes Int64 List Printf String Varan_kernel Varan_nvx Varan_sim Varan_syscall

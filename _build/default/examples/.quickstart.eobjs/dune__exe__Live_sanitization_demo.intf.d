examples/live_sanitization_demo.mli:

examples/multi_revision_demo.ml: Array Bytes Format List Printf Varan_bpf Varan_kernel Varan_nvx Varan_sim Varan_syscall Varan_workloads

examples/multi_revision_demo.mli:

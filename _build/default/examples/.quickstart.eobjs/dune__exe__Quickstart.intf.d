examples/quickstart.mli:

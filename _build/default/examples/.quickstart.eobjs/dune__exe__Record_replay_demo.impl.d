examples/record_replay_demo.ml: Bytes Char Hashtbl List Printf String Varan_kernel Varan_nvx Varan_sim Varan_syscall Varan_util

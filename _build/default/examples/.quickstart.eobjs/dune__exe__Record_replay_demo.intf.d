examples/record_replay_demo.mli:

(* Transparent failover (paper §5.1): a key-value server runs as two
   versions — the leader carries a crash bug that fires on HMGET. When
   the leader dies, the coordinator promotes the follower, which restarts
   the in-flight system call and keeps serving the same connection on the
   descriptors it received over the data channel. The client never sees
   an error, only one slower reply.

     dune exec examples/failover_demo.exe *)

module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Api = Varan_kernel.Api
module Nvx = Varan_nvx.Session
module Cost = Varan_cycles.Cost
module Revisions = Varan_workloads.Revisions
module Kv = Varan_workloads.Kv_server
module Proto = Varan_workloads.Proto

let ok = function
  | Ok v -> v
  | Error e -> failwith (Varan_syscall.Errno.name e)

let rec connect_retry api fd port =
  match Api.connect api fd port with
  | Ok () -> ()
  | Error Varan_syscall.Errno.ECONNREFUSED ->
    E.sleep 5_000;
    connect_retry api fd port
  | Error e -> failwith (Varan_syscall.Errno.name e)

let () =
  let engine = E.create () in
  let kernel = K.create ~link_latency:28_000 engine in
  Revisions.setup_fs kernel;
  let port = 6379 in

  (* Newest revision (buggy) as leader, previous revision as follower. *)
  let variants =
    [
      Revisions.redis_revision ~buggy:true ~name:"redis-7fb16ba (buggy)"
        ~port ~expected_conns:1;
      Revisions.redis_revision ~buggy:false ~name:"redis-9a22de8" ~port
        ~expected_conns:1;
    ]
  in
  let session = Nvx.launch kernel variants in
  let cost = K.cost kernel in

  let client = K.new_proc kernel "client" in
  let tid =
    E.spawn engine ~name:"client" (fun () ->
        let api = Api.direct kernel client in
        let fd = ok (Api.socket api) in
        connect_retry api fd port;
        let request cmd =
          let t0 = E.now_cycles () in
          ok (Proto.send_msg api fd (Kv.cmd cmd));
          match Proto.recv_msg api fd with
          | Ok (Some reply) ->
            Printf.printf "  %-22s -> %-12s (%6.2f us)\n" cmd
              (Bytes.to_string reply)
              (Cost.cycles_to_us cost (Int64.sub (E.now_cycles ()) t0))
          | Ok None -> print_endline "  connection closed!"
          | Error e -> Printf.printf "  error: %s\n" (Varan_syscall.Errno.name e)
        in
        request "HSET user name petr";
        request "HSET user role phd";
        request "GET warmup";
        request "HMGET user name role" (* the leader dies in here *);
        request "GET after-failover";
        ignore (Api.close api fd))
  in
  K.register_task kernel client tid;

  print_endline "Client session (HMGET crashes the buggy leader):";
  E.run_until_quiescent engine;

  List.iter
    (fun (idx, reason) -> Printf.printf "crashed: variant %d (%s)\n" idx reason)
    (Nvx.crashes session);
  Printf.printf "current leader: variant %d (%s)\n"
    (Nvx.leader_index session)
    (match Nvx.role_of session 1 with
    | Nvx.Leader -> "the follower was promoted transparently"
    | Nvx.Follower -> "unexpected")

(* Multi-process applications under NVX (paper §3.3.3): a master process
   forks workers at run time. The leader's fork streams an Ev_fork event
   and allocates a fresh ring buffer for the new process tuple; every
   follower forks its own child subscribed to that ring, and the leader's
   child waits until all followers have joined before publishing — the
   paper's "the coordinator waits until all followers fork".

     dune exec examples/fork_demo.exe *)

module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Api = Varan_kernel.Api
module Flags = Varan_kernel.Flags
module Nvx = Varan_nvx.Session
module Variant = Varan_nvx.Variant

let ok = function
  | Ok v -> v
  | Error e -> failwith (Varan_syscall.Errno.name e)

let read_entropy api n =
  let fd = ok (Api.openf api "/dev/urandom" Flags.o_rdonly) in
  let b = ok (Api.read api fd n) in
  ignore (ok (Api.close api fd));
  String.concat ""
    (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
       (List.of_seq (Bytes.to_seq b)))

(* A master that forks two workers; each worker runs in its own process
   tuple with its own event stream, all of it replicated across the
   variants. *)
let master name api =
  Printf.printf "  [%s/master pid=%d] starting\n" name (Api.getpid api);
  let w1 =
    Api.fork api (fun worker ->
        Printf.printf "  [%s/worker-1 pid=%d] entropy=%s\n" name
          (Api.getpid worker) (read_entropy worker 6))
  in
  let w2 =
    Api.fork api (fun worker ->
        Printf.printf "  [%s/worker-2 pid=%d] entropy=%s\n" name
          (Api.getpid worker) (read_entropy worker 6))
  in
  Printf.printf "  [%s/master] forked workers with pids %d and %d\n" name w1 w2;
  (* The master's own stream keeps flowing alongside the workers'. *)
  Printf.printf "  [%s/master] entropy=%s\n" name (read_entropy api 6)

let () =
  let engine = E.create () in
  let kernel = K.create engine in
  let variants =
    List.init 3 (fun i ->
        let name = Printf.sprintf "v%d" i in
        Variant.make name (Variant.single (master name)))
  in
  print_endline
    "Three versions of a forking master under VARAN (watch the pids and\n\
     entropy agree across versions, including inside the forked workers):\n";
  let session = Nvx.launch kernel variants in
  E.run_until_quiescent engine;
  let st = Nvx.stats session in
  Printf.printf "\ncrashes: %d; rings allocated (tuples): %d\n"
    (List.length (Nvx.crashes session))
    (Array.length st.Nvx.rings);
  print_endline
    "Each fork created one new ring buffer shared by that process tuple\n\
     across all variants."

(* Live sanitization (paper §5.3): the deployed leader runs the native,
   uninstrumented build while a follower runs an AddressSanitizer build
   (2x compute). Because the follower never performs I/O — it replays the
   leader's results — it keeps up, and expensive sanitizer checks run in
   production for free.

     dune exec examples/live_sanitization_demo.exe *)

module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Api = Varan_kernel.Api
module Flags = Varan_kernel.Flags
module Nvx = Varan_nvx.Session
module Variant = Varan_nvx.Variant

let ok = function
  | Ok v -> v
  | Error e -> failwith (Varan_syscall.Errno.name e)

(* An I/O-heavy worker: reads records from a file and aggregates them.
   Compute is a small share of each iteration, which is what lets a 2x
   sanitized follower stay close behind the leader. *)
let worker api =
  let fd = ok (Api.openf api "/data/records.bin" Flags.o_rdonly) in
  for _ = 1 to 400 do
    ignore (ok (Api.lseek api fd 0 Flags.seek_set));
    let chunk = ok (Api.read api fd 512) in
    Api.compute api (Bytes.length chunk * 2) (* parse + checksum *)
  done;
  ignore (ok (Api.close api fd))

let run_with ~sanitizer_multiplier =
  let engine = E.create () in
  let kernel = K.create engine in
  Varan_kernel.Vfs.add_file kernel "/data/records.bin" (String.make 4096 'r');
  let leader = Variant.make "native" (Variant.single worker) in
  let follower =
    Variant.make
      ~compute_multiplier_c1000:sanitizer_multiplier
      (Printf.sprintf "asan (%.1fx)" (float_of_int sanitizer_multiplier /. 1000.))
      (Variant.single worker)
  in
  let session = Nvx.launch kernel [ leader; follower ] in
  (* Sample the leader-follower distance while running. *)
  let samples = ref [] in
  ignore
    (E.spawn engine ~name:"sampler" (fun () ->
         for _ = 1 to 100 do
           E.sleep 20_000;
           samples := Nvx.sample_lag session 1 :: !samples
         done));
  E.run_until_quiescent engine;
  let leader_done = E.now engine in
  (leader_done, !samples, Nvx.crashes session)

let () =
  print_endline "Running an I/O-bound worker as leader + sanitized follower:\n";
  let base_cycles, _, _ = run_with ~sanitizer_multiplier:1000 in
  let asan_cycles, samples, crashes = run_with ~sanitizer_multiplier:2000 in
  Printf.printf "  plain follower : leader finished at %Ld cycles\n" base_cycles;
  Printf.printf "  ASan follower  : leader finished at %Ld cycles (%.1f%% slower)\n"
    asan_cycles
    ((Int64.to_float asan_cycles /. Int64.to_float base_cycles -. 1.0) *. 100.);
  let nonzero = List.filter (fun s -> s > 0) samples in
  Printf.printf "  log distance   : max %d events over %d samples\n"
    (List.fold_left max 0 samples)
    (List.length samples);
  Printf.printf "  samples with any lag: %d, crashes: %d\n"
    (List.length nonzero) (List.length crashes);
  print_endline
    "\nThe sanitized follower replays I/O results from the ring buffer, so\n\
     its 2x compute never reaches the leader's critical path."

(* Multi-revision execution (paper §5.2): two real software revisions
   whose system call sequences differ run in parallel. The newer revision
   (lighttpd r2436) issues getuid()/getgid() calls the older leader never
   makes; a BPF rewrite rule — the paper's Listing 1 — tells the monitor
   to let the follower execute those calls itself instead of killing it.

     dune exec examples/multi_revision_demo.exe *)

module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Api = Varan_kernel.Api
module Nvx = Varan_nvx.Session
module Revisions = Varan_workloads.Revisions
module Proto = Varan_workloads.Proto

let ok = function
  | Ok v -> v
  | Error e -> failwith (Varan_syscall.Errno.name e)

let rec connect_retry api fd port =
  match Api.connect api fd port with
  | Ok () -> ()
  | Error Varan_syscall.Errno.ECONNREFUSED ->
    E.sleep 5_000;
    connect_retry api fd port
  | Error e -> failwith (Varan_syscall.Errno.name e)

let () =
  (* Show the rewrite rule we are about to install. *)
  print_endline "Listing 1 (the getuid/getgid insertion filter):";
  print_endline Varan_bpf.Rules.listing1;
  let prog = Varan_bpf.Asm.assemble_exn Varan_bpf.Rules.listing1 in
  Format.printf "assembled and verified: %d instructions@.@."
    (Array.length prog);

  let engine = E.create () in
  let kernel = K.create ~link_latency:3_500 engine in
  Revisions.setup_fs kernel;
  let port = 8080 in
  let variants =
    [
      Revisions.lighttpd_variant ~rev:Revisions.R2435 ~port ~expected_conns:1;
      Revisions.lighttpd_variant ~rev:Revisions.R2436 ~port ~expected_conns:1;
    ]
  in
  let session = Nvx.launch kernel variants in

  let client = K.new_proc kernel "wrk" in
  let tid =
    E.spawn engine ~name:"wrk" (fun () ->
        let api = Api.direct kernel client in
        let fd = ok (Api.socket api) in
        connect_retry api fd port;
        for i = 1 to 5 do
          ok (Proto.send_msg api fd (Bytes.of_string "GET /www/index.html"));
          match Proto.recv_msg api fd with
          | Ok (Some body) ->
            Printf.printf "  request %d: %d bytes\n" i (Bytes.length body)
          | _ -> print_endline "  request failed"
        done;
        ignore (Api.close api fd))
  in
  K.register_task kernel client tid;

  print_endline
    "Serving with r2435 as leader and r2436 (different syscall sequence) as \
     follower:";
  E.run_until_quiescent engine;

  let st = Nvx.stats session in
  let f = st.Nvx.variants.(1) in
  Printf.printf
    "\nfollower %s: alive=%b, %d divergent syscalls executed locally, %d BPF \
     instructions interpreted, %d crashes\n"
    f.Nvx.vs_name f.Nvx.vs_alive f.Nvx.vs_divergences_executed
    f.Nvx.vs_bpf_steps
    (List.length (Nvx.crashes session));
  print_endline
    "A lockstep NVX system would have had to kill this follower at its very \
     first syscall."

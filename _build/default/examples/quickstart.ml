(* Quickstart: run three versions of a small program in parallel under the
   VARAN monitor and watch the followers observe exactly the leader's
   results — including nondeterministic ones like /dev/urandom reads and
   clock queries.

     dune exec examples/quickstart.exe *)

module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Api = Varan_kernel.Api
module Flags = Varan_kernel.Flags
module Nvx = Varan_nvx.Session
module Variant = Varan_nvx.Variant

let ok = function
  | Ok v -> v
  | Error e -> failwith (Varan_syscall.Errno.name e)

(* The program every version runs: write a greeting, read some entropy,
   and look at the clock. Its only window to the world is [api]. *)
let program name api =
  let out = ok (Api.openf api "/dev/null" Flags.o_wronly) in
  ignore (ok (Api.write_str api out "hello from an NVX variant\n"));
  ignore (ok (Api.close api out));
  let rand = ok (Api.openf api "/dev/urandom" Flags.o_rdonly) in
  let entropy = ok (Api.read api rand 8) in
  ignore (ok (Api.close api rand));
  let now_ns = Api.clock_gettime_ns api in
  Printf.printf "  [%s] pid=%d entropy=%s clock=%Ldns\n" name
    (Api.getpid api)
    (String.concat ""
       (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
          (List.of_seq (Bytes.to_seq entropy))))
    now_ns

let () =
  (* 1. A simulated machine: a discrete-event engine plus a kernel. *)
  let engine = E.create () in
  let kernel = K.create engine in

  (* 2. Three versions of the program. The first is the leader; the other
     two replay its event stream from the shared ring buffer. *)
  let variants =
    List.init 3 (fun i ->
        let name = Printf.sprintf "v%d" i in
        Variant.make name (Variant.single (program name)))
  in

  (* 3. Launch the NVX session (coordinator, zygote, binary rewriting,
     ring buffers) and run the simulation to completion. *)
  print_endline "Running 3 versions under VARAN:";
  let session = Nvx.launch kernel variants in
  E.run engine;

  (* 4. Same entropy, same clock in every variant: the followers replayed
     the leader's syscall results rather than executing their own. *)
  let st = Nvx.stats session in
  Array.iter
    (fun v ->
      Printf.printf
        "%s: %d syscalls, %d events published, %d events consumed\n"
        v.Nvx.vs_name v.Nvx.vs_syscalls v.Nvx.vs_events_published
        v.Nvx.vs_events_consumed)
    st.Nvx.variants;
  Printf.printf "crashes: %d, leader: variant %d\n"
    (List.length (Nvx.crashes session))
    (Nvx.leader_index session)

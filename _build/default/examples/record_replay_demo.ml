(* Record-replay (paper §5.4): a recorder client drains the ring buffer
   to persistent storage while the application runs at nearly full speed;
   later, a replay leader republishes the log and several replay clients
   re-execute the run — e.g. to find which versions crash on a recorded
   input.

     dune exec examples/record_replay_demo.exe *)

module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Api = Varan_kernel.Api
module Flags = Varan_kernel.Flags
module Nvx = Varan_nvx.Session
module Variant = Varan_nvx.Variant
module RR = Varan_nvx.Record_replay

let ok = function
  | Ok v -> v
  | Error e -> failwith (Varan_syscall.Errno.name e)

(* The recorded program: consumes entropy and timestamps — exactly the
   nondeterminism a replay must reproduce faithfully. *)
let observations : (string, string) Hashtbl.t = Hashtbl.create 8

let program name api =
  let rand = ok (Api.openf api "/dev/urandom" Flags.o_rdonly) in
  let bytes = ok (Api.read api rand 8) in
  ignore (ok (Api.close api rand));
  let stamp = Api.clock_gettime_ns api in
  let digest =
    Printf.sprintf "%s@%Ld"
      (String.concat ""
         (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
            (List.of_seq (Bytes.to_seq bytes))))
      stamp
  in
  Hashtbl.replace observations name digest;
  Printf.printf "  [%s] observed %s\n" name digest

let () =
  Varan_util.Prng.create 1 |> ignore;

  (* Phase 1: record. *)
  print_endline "Phase 1: recording a run (leader + recorder client):";
  let engine = E.create () in
  let kernel = K.create engine in
  Varan_kernel.Vfs.add_file kernel "/var/.keep" "";
  let variants = [ Variant.make "original" (Variant.single (program "record")) ] in
  let session = Nvx.launch kernel variants in
  let recorder = RR.record session kernel ~tuple:0 ~path:"/var/run.log" in
  E.run_until_quiescent engine;
  ignore (E.spawn engine (fun () -> RR.stop recorder));
  E.run_until_quiescent engine;
  Printf.printf "  recorded %d events to /var/run.log\n\n"
    (RR.recorded_events recorder);

  (* Phase 2: replay the log into two clients at once. *)
  print_endline "Phase 2: replaying the log into two replay clients:";
  let engine2 = E.create () in
  let kernel2 = K.create ~seed:999 (* different machine entropy! *) engine2 in
  (match Varan_kernel.Vfs.read_file kernel "/var/run.log" with
  | Some log -> Varan_kernel.Vfs.add_file kernel2 "/var/run.log" log
  | None -> failwith "log missing");
  let rp =
    RR.replay kernel2 ~path:"/var/run.log"
      [
        Variant.make "replay-a" (Variant.single (program "replay-a"));
        Variant.make "replay-b" (Variant.single (program "replay-b"));
      ]
  in
  E.run_until_quiescent engine2;
  Printf.printf "  replayed %d events, %d divergences\n\n"
    (RR.replayed_events rp)
    (List.length (RR.replay_crashes rp));

  let original = Hashtbl.find observations "record" in
  let same name = Hashtbl.find observations name = original in
  Printf.printf
    "Replays observed the recorded entropy and timestamps: a=%b b=%b\n"
    (same "replay-a") (same "replay-b");
  if same "replay-a" && same "replay-b" then
    print_endline "Deterministic replay on a different machine: success."
  else begin
    print_endline "MISMATCH: replay diverged!";
    exit 1
  end

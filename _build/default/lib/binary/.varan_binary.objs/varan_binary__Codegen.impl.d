lib/binary/codegen.ml: Array Bytes Int32 List Varan_isa Varan_util

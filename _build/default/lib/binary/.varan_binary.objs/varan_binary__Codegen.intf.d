lib/binary/codegen.mli: Bytes Varan_util

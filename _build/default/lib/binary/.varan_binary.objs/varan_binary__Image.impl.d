lib/binary/image.ml: Bytes List Printf

lib/binary/image.mli: Bytes

lib/binary/rewriter.ml: Buffer Bytes Hashtbl Image Int32 List Varan_isa

lib/binary/rewriter.mli: Bytes Image

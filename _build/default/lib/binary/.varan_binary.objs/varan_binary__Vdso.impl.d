lib/binary/vdso.ml: Buffer Bytes Int32 List Varan_isa

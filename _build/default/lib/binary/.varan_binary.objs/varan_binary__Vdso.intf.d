lib/binary/vdso.mli: Bytes

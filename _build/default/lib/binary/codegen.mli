(** Synthetic code generation.

    Produces well-formed code buffers for two consumers: the test suite
    (programs whose pre/post-rewrite behaviour can be compared in the VM)
    and the NVX layer (code images with realistic syscall densities whose
    rewrite statistics drive the interception cost mix). *)

val straightline : syscall_numbers:int list -> Bytes.t
(** A program that loads each number into R0, issues [Syscall], does a
    little register arithmetic between calls, and halts. Always
    detourable: no branches at all. *)

val trap_forcing : unit -> Bytes.t
(** A program whose single [Syscall] is followed immediately by a branch
    target, making detour relocation illegal and forcing the INT3
    fallback. *)

val loop_with_syscall : iterations:int -> Bytes.t
(** A counted loop issuing one syscall per iteration — exercises branches
    whose targets must survive patching. *)

val random_program :
  Varan_util.Prng.t -> size:int -> syscall_share:float -> Bytes.t
(** A random but always-terminating program: straight-line arithmetic,
    syscalls (roughly [syscall_share] of instructions) and forward
    conditional branches only. Suitable for property tests comparing
    original vs rewritten execution. *)

val profile_image :
  Varan_util.Prng.t -> code_bytes:int -> syscall_share:float -> Bytes.t
(** A larger buffer standing in for an application's text segment, used
    only for rewrite statistics (not executed). *)

type perm = { r : bool; w : bool; x : bool }

exception Wx_violation of string

type segment = {
  seg_name : string;
  base : int;
  mutable data : Bytes.t;
  mutable perm : perm;
}

let rx = { r = true; w = false; x = true }
let rw = { r = true; w = true; x = false }
let ro = { r = true; w = false; x = false }

let check_wx name perm =
  if perm.w && perm.x then
    raise (Wx_violation (Printf.sprintf "segment %s would be W+X" name))

let make_segment ~name ~base ~perm data =
  check_wx name perm;
  { seg_name = name; base; data; perm }

let set_perm seg perm =
  check_wx seg.seg_name perm;
  seg.perm <- perm

let with_writable seg f =
  let original = seg.perm in
  set_perm seg { original with w = true; x = false };
  seg.data <- f seg.data;
  set_perm seg original

type t = { image_name : string; segments : segment list; entry : int }

let make ~name ~entry segments = { image_name = name; segments; entry }
let exec_segments t = List.filter (fun s -> s.perm.x) t.segments
let find_segment t name = List.find_opt (fun s -> s.seg_name = name) t.segments

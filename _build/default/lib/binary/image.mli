(** ELF-like program images: segments with W⊕X permissions.

    The rewriter operates on executable segments and follows the W⊕X
    discipline throughout execution (§3.2): a segment is never writable
    and executable at the same time, so patching requires an explicit
    permission flip, exactly as [mprotect] round trips do in the real
    implementation. *)

type perm = { r : bool; w : bool; x : bool }

exception Wx_violation of string
(** Raised on any attempt to make a segment both writable and executable. *)

type segment = {
  seg_name : string;
  base : int;  (** virtual load address *)
  mutable data : Bytes.t;
  mutable perm : perm;
}

val rx : perm
val rw : perm
val ro : perm

val make_segment : name:string -> base:int -> perm:perm -> Bytes.t -> segment
(** @raise Wx_violation if [perm] has both [w] and [x]. *)

val set_perm : segment -> perm -> unit
(** @raise Wx_violation if the new permission has both [w] and [x]. *)

val with_writable : segment -> (Bytes.t -> Bytes.t) -> unit
(** [with_writable seg f] flips an executable segment to RW, replaces its
    data with [f data], and restores the original permission — the
    rewriter's patching envelope. *)

type t = {
  image_name : string;
  segments : segment list;
  entry : int;
}

val make : name:string -> entry:int -> segment list -> t

val exec_segments : t -> segment list
(** Segments currently mapped executable — the ones the rewriter scans
    when "code is loaded into memory" (§2.1). *)

val find_segment : t -> string -> segment option

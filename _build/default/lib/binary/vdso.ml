module I = Varan_isa.Insn

type symbol = { sym_name : string; sym_addr : int }

let default_symbols = [ "clock_gettime"; "getcpu"; "gettimeofday"; "time" ]

let build values =
  let buf = Buffer.create 64 in
  let symbols =
    List.map
      (fun (name, v) ->
        let addr = Buffer.length buf in
        Buffer.add_bytes buf (I.encode (I.Mov_imm (0, v)));
        Buffer.add_bytes buf (I.encode I.Ret);
        { sym_name = name; sym_addr = addr })
      values
  in
  (Buffer.to_bytes buf, symbols)

type patched = {
  v_code : Bytes.t;
  v_sites : (string * int) list;
  v_trampolines : (string * int) list;
}

let patch ?(first_site_id = 0) code symbols =
  let orig_len = Bytes.length code in
  let patched = Bytes.copy code in
  let stubs = Buffer.create 64 in
  let next_site = ref first_site_id in
  let sites = ref [] in
  let trampolines = ref [] in
  List.iter
    (fun sym ->
      let entry_insn, entry_len =
        match I.decode code sym.sym_addr with
        | Some (insn, len) -> (insn, len)
        | None -> invalid_arg "Vdso.patch: undecodable entry point"
      in
      if entry_len <> 5 then
        invalid_arg "Vdso.patch: entry instruction is not five bytes";
      (* Trampoline: displaced first instruction, then back to entry+5. *)
      let tramp_addr = orig_len + Buffer.length stubs in
      Buffer.add_bytes stubs (I.encode entry_insn);
      let jmp_at = orig_len + Buffer.length stubs in
      let rel = sym.sym_addr + entry_len - (jmp_at + 5) in
      Buffer.add_bytes stubs (I.encode (I.Jmp (Int32.of_int rel)));
      (* Patch the entry with the monitor hook. *)
      ignore (I.encode_into patched sym.sym_addr (I.Hook !next_site));
      sites := (sym.sym_name, !next_site) :: !sites;
      trampolines := (sym.sym_name, tramp_addr) :: !trampolines;
      incr next_site)
    symbols;
  let stub_data = Buffer.to_bytes stubs in
  let v_code = Bytes.create (orig_len + Bytes.length stub_data) in
  Bytes.blit patched 0 v_code 0 orig_len;
  Bytes.blit stub_data 0 v_code orig_len (Bytes.length stub_data);
  {
    v_code;
    v_sites = List.rev !sites;
    v_trampolines = List.rev !trampolines;
  }

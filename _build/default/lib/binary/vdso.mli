(** Virtual system calls through the vDSO segment (§3.2.1).

    Virtual syscalls never trap into the kernel, so ptrace-based monitors
    cannot see them; VARAN intercepts them by patching each vDSO function's
    entry point with a jump to generated code, and keeps a trampoline
    holding the displaced first instructions so the original function can
    still be invoked.

    Here the vDSO is a code segment whose functions each begin with a
    five-byte [Mov_imm] (the "real" implementation reading the vvar page)
    followed by [Ret]; patching the entry point therefore needs no
    relocation, but calling the original still requires the trampoline. *)

type symbol = { sym_name : string; sym_addr : int }

val default_symbols : string list
(** The four virtual syscalls Linux currently exports:
    [clock_gettime], [getcpu], [gettimeofday], [time]. *)

val build : (string * int32) list -> Bytes.t * symbol list
(** [build values] lays out one function per entry returning the given
    value in R0. *)

type patched = {
  v_code : Bytes.t;  (** patched segment with trampolines appended *)
  v_sites : (string * int) list;  (** function name → hook site id *)
  v_trampolines : (string * int) list;
      (** function name → address of the relocated original entry, for
          invoking the unpatched implementation *)
}

val patch : ?first_site_id:int -> Bytes.t -> symbol list -> patched
(** Replace every symbol's entry instruction with a [Hook] and append
    per-symbol trampolines that run the displaced instruction and jump
    back. *)

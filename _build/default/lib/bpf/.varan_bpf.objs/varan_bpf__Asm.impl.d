lib/bpf/asm.ml: Array Buffer Hashtbl Insn List Printf Result String Verifier

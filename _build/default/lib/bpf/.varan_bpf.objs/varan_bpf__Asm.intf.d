lib/bpf/asm.mli: Insn

lib/bpf/codec.ml: Array Bytes Insn Int32 List Printf Verifier

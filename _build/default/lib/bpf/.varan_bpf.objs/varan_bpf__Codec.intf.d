lib/bpf/codec.mli: Bytes Insn

lib/bpf/insn.ml: Array Format

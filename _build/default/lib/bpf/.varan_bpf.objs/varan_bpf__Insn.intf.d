lib/bpf/insn.mli: Format

lib/bpf/interp.ml: Array Insn Verifier

lib/bpf/interp.mli: Insn

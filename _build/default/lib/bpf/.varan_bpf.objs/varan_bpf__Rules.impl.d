lib/bpf/rules.ml: Array Insn List Verifier

lib/bpf/rules.mli: Insn

lib/bpf/verifier.ml: Array Insn Printf

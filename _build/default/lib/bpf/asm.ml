(* Two-pass assembler: pass 1 assigns instruction indices to labels, pass 2
   emits instructions with resolved forward offsets. *)

type item = { line_no : int; labels : string list; text : string }

let strip_comments line =
  let buf = Buffer.create (String.length line) in
  let n = String.length line in
  let rec go i =
    if i >= n then ()
    else if i + 1 < n && line.[i] = '/' && line.[i + 1] = '*' then skip (i + 2)
    else begin
      Buffer.add_char buf line.[i];
      go (i + 1)
    end
  and skip i =
    if i >= n then ()
    else if i + 1 < n && line.[i] = '*' && line.[i + 1] = '/' then go (i + 2)
    else skip (i + 1)
  in
  go 0;
  Buffer.contents buf

let split_labels text =
  (* Peel leading "label:" prefixes. A label is an identifier directly
     followed by a colon. *)
  let rec peel acc s =
    let s = String.trim s in
    match String.index_opt s ':' with
    | Some i
      when i > 0
           && String.for_all
                (fun c ->
                  (c >= 'a' && c <= 'z')
                  || (c >= 'A' && c <= 'Z')
                  || (c >= '0' && c <= '9')
                  || c = '_')
                (String.sub s 0 i) ->
      peel (String.sub s 0 i :: acc) (String.sub s (i + 1) (String.length s - i - 1))
    | _ -> (List.rev acc, s)
  in
  peel [] text

let items_of_source src =
  let lines = String.split_on_char '\n' src in
  let items = ref [] in
  List.iteri
    (fun idx raw ->
      let text = String.trim (strip_comments raw) in
      if text <> "" then begin
        let labels, rest = split_labels text in
        items := { line_no = idx + 1; labels; text = rest } :: !items
      end)
    lines;
  List.rev !items

let parse_imm s =
  let s = String.trim s in
  if String.length s > 0 && s.[0] = '#' then
    let body = String.sub s 1 (String.length s - 1) in
    int_of_string_opt body (* handles 0x prefixes *)
  else None

let parse_operands s = List.map String.trim (String.split_on_char ',' s)

(* Instructions occupy one slot; labels attach to the next instruction. *)
let assemble src =
  let items = items_of_source src in
  let labels = Hashtbl.create 16 in
  let pending = ref [] in
  let protos = ref [] in
  let count = ref 0 in
  List.iter
    (fun item ->
      pending := !pending @ item.labels;
      if item.text <> "" then begin
        List.iter (fun l -> Hashtbl.replace labels l !count) !pending;
        pending := [];
        protos := (item.line_no, item.text) :: !protos;
        incr count
      end)
    items;
  let protos = Array.of_list (List.rev !protos) in
  let err line msg = Error (Printf.sprintf "line %d: %s" line msg) in
  let resolve line idx label =
    match Hashtbl.find_opt labels label with
    | None -> err line (Printf.sprintf "unknown label %S" label)
    | Some target ->
      let off = target - (idx + 1) in
      if off < 0 then err line (Printf.sprintf "backward jump to %S" label)
      else Ok off
  in
  let ( let* ) = Result.bind in
  let parse_one idx (line, text) =
    let space = String.index_opt text ' ' in
    let mnemonic, rest =
      match space with
      | None -> (text, "")
      | Some i ->
        ( String.sub text 0 i,
          String.trim (String.sub text (i + 1) (String.length text - i - 1)) )
    in
    let cond_jump make =
      match parse_operands rest with
      | [ k; lt ] -> (
        match parse_imm k with
        | None -> err line "expected immediate"
        | Some k ->
          let* t = resolve line idx lt in
          Ok (make k t 0))
      | [ k; lt; lf ] -> (
        match parse_imm k with
        | None -> err line "expected immediate"
        | Some k ->
          let* t = resolve line idx lt in
          let* f = resolve line idx lf in
          Ok (make k t f))
      | _ -> err line "expected: #imm, label[, label]"
    in
    let alu make =
      if rest = "x" then Ok (make Insn.X)
      else
        match parse_imm rest with
        | Some k -> Ok (make (Insn.K k))
        | None -> err line "expected #imm or x"
    in
    match String.lowercase_ascii mnemonic with
    | "ld" ->
      if String.length rest > 6 && String.sub rest 0 6 = "event[" then begin
        match String.index_opt rest ']' with
        | Some close -> (
          match int_of_string_opt (String.sub rest 6 (close - 6)) with
          | Some k -> Ok (Insn.Ld_event k)
          | None -> err line "bad event index")
        | None -> err line "missing ]"
      end
      else if String.length rest > 1 && rest.[0] = '[' then begin
        match String.index_opt rest ']' with
        | Some close -> (
          match int_of_string_opt (String.sub rest 1 (close - 1)) with
          | Some k -> Ok (Insn.Ld_abs k)
          | None -> err line "bad data offset")
        | None -> err line "missing ]"
      end
      else begin
        match parse_imm rest with
        | Some k -> Ok (Insn.Ld_imm k)
        | None -> err line "expected [k], event[k] or #imm"
      end
    | "ldx" -> (
      match parse_imm rest with
      | Some k -> Ok (Insn.Ldx_imm k)
      | None -> err line "expected #imm")
    | "tax" -> Ok Insn.Tax
    | "txa" -> Ok Insn.Txa
    | "add" -> alu (fun s -> Insn.Alu_add s)
    | "sub" -> alu (fun s -> Insn.Alu_sub s)
    | "mul" -> alu (fun s -> Insn.Alu_mul s)
    | "and" -> alu (fun s -> Insn.Alu_and s)
    | "or" -> alu (fun s -> Insn.Alu_or s)
    | "lsh" -> alu (fun s -> Insn.Alu_lsh s)
    | "rsh" -> alu (fun s -> Insn.Alu_rsh s)
    | "jmp" | "ja" ->
      let* o = resolve line idx (String.trim rest) in
      Ok (Insn.Ja o)
    | "jeq" -> cond_jump (fun k t f -> Insn.Jeq (k, t, f))
    | "jgt" -> cond_jump (fun k t f -> Insn.Jgt (k, t, f))
    | "jge" -> cond_jump (fun k t f -> Insn.Jge (k, t, f))
    | "jset" -> cond_jump (fun k t f -> Insn.Jset (k, t, f))
    | "ret" ->
      if String.trim rest = "a" then Ok Insn.Ret_a
      else begin
        match parse_imm rest with
        | Some k -> Ok (Insn.Ret_k k)
        | None -> err line "expected #imm or a"
      end
    | m -> err line (Printf.sprintf "unknown mnemonic %S" m)
  in
  let rec emit idx acc =
    if idx >= Array.length protos then Ok (Array.of_list (List.rev acc))
    else
      let* insn = parse_one idx protos.(idx) in
      emit (idx + 1) (insn :: acc)
  in
  let* prog = emit 0 [] in
  match Verifier.verify prog with
  | Ok () -> Ok prog
  | Error msg -> Error ("verifier: " ^ msg)

let assemble_exn src =
  match assemble src with
  | Ok prog -> prog
  | Error msg -> invalid_arg ("Bpf.Asm.assemble: " ^ msg)

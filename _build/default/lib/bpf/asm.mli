(** Assembler for textual BPF filters.

    Accepts the syntax of the paper's Listing 1: one instruction per line,
    optional [label:] prefixes, C-style [/* ... */] comments, immediates
    written [#108] or [#0x7fff0000], seccomp-data loads [ld \[0\]], the
    event extension [ld event\[0\]], and conditional jumps with one label
    (fall through on false) or two ([jeq #2, yes, no]).

    Labels must resolve to {e forward} targets — the classic-BPF
    termination guarantee — and the assembled program is run through
    {!Verifier.verify} before being returned. *)

val assemble : string -> (Insn.t array, string) result
(** Error messages carry the 1-based source line. *)

val assemble_exn : string -> Insn.t array
(** @raise Invalid_argument on assembly failure. *)

(* Classic BPF opcode constants (linux/filter.h). *)

let bpf_ld = 0x00
let bpf_ldx = 0x01
let bpf_alu = 0x04
let bpf_jmp = 0x05
let bpf_ret = 0x06
let bpf_misc = 0x07

(* sizes / modes *)
let bpf_w = 0x00
let bpf_imm = 0x00
let bpf_abs = 0x20

(* VARAN extension: the event addressing mode, using the mode slot classic
   BPF leaves unused (0xc0). *)
let bpf_event = 0xc0

(* alu / jmp subcodes *)
let bpf_add = 0x00
let bpf_sub = 0x10
let bpf_mul = 0x20
let bpf_or = 0x40
let bpf_and = 0x50
let bpf_lsh = 0x60
let bpf_rsh = 0x70
let bpf_ja = 0x00
let bpf_jeq = 0x10
let bpf_jgt = 0x20
let bpf_jge = 0x30
let bpf_jset = 0x40

(* sources / rvals *)
let bpf_k = 0x00
let bpf_x = 0x08
let bpf_a = 0x10

(* misc *)
let bpf_tax = 0x00
let bpf_txa = 0x80

let src_bits = function Insn.K _ -> bpf_k | Insn.X -> bpf_x
let src_k = function Insn.K k -> k | Insn.X -> 0

let encode (insn : Insn.t) =
  match insn with
  | Insn.Ld_imm k -> (bpf_ld lor bpf_w lor bpf_imm, 0, 0, k)
  | Insn.Ld_abs k -> (bpf_ld lor bpf_w lor bpf_abs, 0, 0, k)
  | Insn.Ld_event k -> (bpf_ld lor bpf_w lor bpf_event, 0, 0, k)
  | Insn.Ldx_imm k -> (bpf_ldx lor bpf_w lor bpf_imm, 0, 0, k)
  | Insn.Tax -> (bpf_misc lor bpf_tax, 0, 0, 0)
  | Insn.Txa -> (bpf_misc lor bpf_txa, 0, 0, 0)
  | Insn.Alu_add s -> (bpf_alu lor bpf_add lor src_bits s, 0, 0, src_k s)
  | Insn.Alu_sub s -> (bpf_alu lor bpf_sub lor src_bits s, 0, 0, src_k s)
  | Insn.Alu_mul s -> (bpf_alu lor bpf_mul lor src_bits s, 0, 0, src_k s)
  | Insn.Alu_and s -> (bpf_alu lor bpf_and lor src_bits s, 0, 0, src_k s)
  | Insn.Alu_or s -> (bpf_alu lor bpf_or lor src_bits s, 0, 0, src_k s)
  | Insn.Alu_lsh s -> (bpf_alu lor bpf_lsh lor src_bits s, 0, 0, src_k s)
  | Insn.Alu_rsh s -> (bpf_alu lor bpf_rsh lor src_bits s, 0, 0, src_k s)
  | Insn.Ja o -> (bpf_jmp lor bpf_ja, 0, 0, o)
  | Insn.Jeq (k, jt, jf) -> (bpf_jmp lor bpf_jeq lor bpf_k, jt, jf, k)
  | Insn.Jgt (k, jt, jf) -> (bpf_jmp lor bpf_jgt lor bpf_k, jt, jf, k)
  | Insn.Jge (k, jt, jf) -> (bpf_jmp lor bpf_jge lor bpf_k, jt, jf, k)
  | Insn.Jset (k, jt, jf) -> (bpf_jmp lor bpf_jset lor bpf_k, jt, jf, k)
  | Insn.Ret_k k -> (bpf_ret lor bpf_k, 0, 0, k)
  | Insn.Ret_a -> (bpf_ret lor bpf_a, 0, 0, 0)

let encode_program prog =
  let b = Bytes.create (8 * Array.length prog) in
  Array.iteri
    (fun i insn ->
      let code, jt, jf, k = encode insn in
      Bytes.set_uint16_le b (8 * i) code;
      Bytes.set_uint8 b ((8 * i) + 2) jt;
      Bytes.set_uint8 b ((8 * i) + 3) jf;
      Bytes.set_int32_le b ((8 * i) + 4) (Int32.of_int k))
    prog;
  b

let decode (code, jt, jf, k) =
  let cls = code land 0x07 in
  let err () = Error (Printf.sprintf "unknown opcode 0x%02x" code) in
  if cls = bpf_ld then begin
    let mode = code land 0xe0 in
    if mode = bpf_imm then Ok (Insn.Ld_imm k)
    else if mode = bpf_abs then Ok (Insn.Ld_abs k)
    else if mode = bpf_event then Ok (Insn.Ld_event k)
    else err ()
  end
  else if cls = bpf_ldx then Ok (Insn.Ldx_imm k)
  else if cls = bpf_misc then
    if code land 0xf8 = bpf_txa then Ok Insn.Txa else Ok Insn.Tax
  else if cls = bpf_alu then begin
    let src = if code land bpf_x <> 0 then Insn.X else Insn.K k in
    match code land 0xf0 with
    | op when op = bpf_add -> Ok (Insn.Alu_add src)
    | op when op = bpf_sub -> Ok (Insn.Alu_sub src)
    | op when op = bpf_mul -> Ok (Insn.Alu_mul src)
    | op when op = bpf_and -> Ok (Insn.Alu_and src)
    | op when op = bpf_or -> Ok (Insn.Alu_or src)
    | op when op = bpf_lsh -> Ok (Insn.Alu_lsh src)
    | op when op = bpf_rsh -> Ok (Insn.Alu_rsh src)
    | _ -> err ()
  end
  else if cls = bpf_jmp then begin
    match code land 0xf0 with
    | op when op = bpf_ja -> Ok (Insn.Ja k)
    | op when op = bpf_jeq -> Ok (Insn.Jeq (k, jt, jf))
    | op when op = bpf_jgt -> Ok (Insn.Jgt (k, jt, jf))
    | op when op = bpf_jge -> Ok (Insn.Jge (k, jt, jf))
    | op when op = bpf_jset -> Ok (Insn.Jset (k, jt, jf))
    | _ -> err ()
  end
  else if cls = bpf_ret then
    if code land bpf_a <> 0 then Ok Insn.Ret_a else Ok (Insn.Ret_k k)
  else err ()

let decode_program b =
  let len = Bytes.length b in
  if len mod 8 <> 0 then Error "image size is not a multiple of 8"
  else begin
    let n = len / 8 in
    let rec go i acc =
      if i >= n then Ok (Array.of_list (List.rev acc))
      else begin
        let code = Bytes.get_uint16_le b (8 * i) in
        let jt = Bytes.get_uint8 b ((8 * i) + 2) in
        let jf = Bytes.get_uint8 b ((8 * i) + 3) in
        let k = Int32.to_int (Bytes.get_int32_le b ((8 * i) + 4)) in
        match decode (code, jt, jf, k) with
        | Ok insn -> go (i + 1) (insn :: acc)
        | Error e -> Error (Printf.sprintf "instruction %d: %s" i e)
      end
    in
    match go 0 [] with
    | Error _ as e -> e
    | Ok prog -> (
      match Verifier.verify prog with
      | Ok () -> Ok prog
      | Error e -> Error ("verifier: " ^ e))
  end

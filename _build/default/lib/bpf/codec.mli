(** Binary encoding of BPF filters in the classic [sock_filter] format.

    Real seccomp filters are shipped to the kernel as arrays of 8-byte
    [sock_filter] structs ([u16 code; u8 jt; u8 jf; u32 k]); VARAN's
    rewrite rules use the same wire format so that rules can be stored in
    files and shared between runs, plus one extension opcode for the
    [event] addressing mode (class [LD], mode [0xc0], which classic BPF
    leaves unused). *)

val encode : Insn.t -> int * int * int * int
(** [(code, jt, jf, k)] for one instruction. *)

val encode_program : Insn.t array -> Bytes.t
(** The byte image, 8 bytes per instruction, little-endian fields. *)

val decode : int * int * int * int -> (Insn.t, string) result

val decode_program : Bytes.t -> (Insn.t array, string) result
(** Decode and {!Verifier.verify}; an invalid or unverifiable image is an
    error. *)

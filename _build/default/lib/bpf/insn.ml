type src = K of int | X

type t =
  | Ld_imm of int
  | Ld_abs of int
  | Ld_event of int
  | Ldx_imm of int
  | Tax
  | Txa
  | Alu_add of src
  | Alu_sub of src
  | Alu_mul of src
  | Alu_and of src
  | Alu_or of src
  | Alu_lsh of src
  | Alu_rsh of src
  | Ja of int
  | Jeq of int * int * int
  | Jgt of int * int * int
  | Jge of int * int * int
  | Jset of int * int * int
  | Ret_k of int
  | Ret_a

let ret_kill = 0x0000_0000
let ret_allow = 0x7fff_0000
let ret_skip_event = 0x7ff1_0000

let data_nr = 0
let data_arg i = 16 + (8 * i)
let event_nr = 0
let event_ret = 1
let event_arg i = 2 + i

let pp_src ppf = function
  | K k -> Format.fprintf ppf "#%d" k
  | X -> Format.pp_print_string ppf "x"

let pp ppf = function
  | Ld_imm k -> Format.fprintf ppf "ld #%d" k
  | Ld_abs k -> Format.fprintf ppf "ld [%d]" k
  | Ld_event k -> Format.fprintf ppf "ld event[%d]" k
  | Ldx_imm k -> Format.fprintf ppf "ldx #%d" k
  | Tax -> Format.pp_print_string ppf "tax"
  | Txa -> Format.pp_print_string ppf "txa"
  | Alu_add s -> Format.fprintf ppf "add %a" pp_src s
  | Alu_sub s -> Format.fprintf ppf "sub %a" pp_src s
  | Alu_mul s -> Format.fprintf ppf "mul %a" pp_src s
  | Alu_and s -> Format.fprintf ppf "and %a" pp_src s
  | Alu_or s -> Format.fprintf ppf "or %a" pp_src s
  | Alu_lsh s -> Format.fprintf ppf "lsh %a" pp_src s
  | Alu_rsh s -> Format.fprintf ppf "rsh %a" pp_src s
  | Ja o -> Format.fprintf ppf "ja +%d" o
  | Jeq (k, t, f) -> Format.fprintf ppf "jeq #%d, +%d, +%d" k t f
  | Jgt (k, t, f) -> Format.fprintf ppf "jgt #%d, +%d, +%d" k t f
  | Jge (k, t, f) -> Format.fprintf ppf "jge #%d, +%d, +%d" k t f
  | Jset (k, t, f) -> Format.fprintf ppf "jset #%d, +%d, +%d" k t f
  | Ret_k k -> Format.fprintf ppf "ret #0x%x" k
  | Ret_a -> Format.pp_print_string ppf "ret a"

let pp_program ppf prog =
  Array.iteri (fun i insn -> Format.fprintf ppf "%3d: %a@." i pp insn) prog

(** Berkeley Packet Filter instructions (§3.4 of the paper).

    The machine is the classic BPF register machine used by seccomp-bpf —
    an accumulator [A], an index register [X], and forward-only jumps —
    extended with VARAN's [event] addressing mode, which reads the
    leader's event from the ring buffer so a filter can compare what the
    follower is executing with what the leader executed.

    Conditional jump offsets follow the classic convention: from
    instruction [i], taking a branch with offset [o] continues at
    [i + 1 + o]; offsets must be non-negative, which is what makes every
    verified filter terminate. *)

type src = K of int  (** immediate *) | X  (** index register *)

type t =
  | Ld_imm of int  (** A := k *)
  | Ld_abs of int
      (** A := seccomp_data\[k\]: byte offset 0 is the follower's syscall
          number, 16+8i is follower argument i *)
  | Ld_event of int
      (** VARAN extension — A := event\[k\]: word 0 is the leader's
          syscall number, 1 its result, 2+i its argument i *)
  | Ldx_imm of int  (** X := k *)
  | Tax  (** X := A *)
  | Txa  (** A := X *)
  | Alu_add of src
  | Alu_sub of src
  | Alu_mul of src
  | Alu_and of src
  | Alu_or of src
  | Alu_lsh of src
  | Alu_rsh of src
  | Ja of int  (** unconditional forward jump *)
  | Jeq of int * int * int  (** k, jump-if-true, jump-if-false *)
  | Jgt of int * int * int
  | Jge of int * int * int
  | Jset of int * int * int  (** A land k <> 0 *)
  | Ret_k of int
  | Ret_a

(** {1 Return values} *)

val ret_kill : int
(** [SECCOMP_RET_KILL]: the divergence is not permitted; the follower is
    terminated. *)

val ret_allow : int
(** [SECCOMP_RET_ALLOW]: the follower executes its additional syscall
    itself and retries matching the leader's event (addition rule). *)

val ret_skip_event : int
(** VARAN extension: the leader's event is consumed without a follower
    counterpart (removal rule). *)

val pp : Format.formatter -> t -> unit
val pp_program : Format.formatter -> t array -> unit

(** Byte offsets of the seccomp_data fields, for readable filters. *)

val data_nr : int
val data_arg : int -> int

(** Word indices of the event extension. *)

val event_nr : int
val event_ret : int
val event_arg : int -> int

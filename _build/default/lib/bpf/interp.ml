type data = { nr : int; args : int array }
type event = { ev_nr : int; ev_ret : int; ev_args : int array }
type outcome = { action : int; steps : int }

exception Not_verified of string

let no_event = { ev_nr = 0; ev_ret = 0; ev_args = [||] }

let data_field d k =
  if k = Insn.data_nr then d.nr
  else if k >= 16 && (k - 16) mod 8 = 0 then begin
    let i = (k - 16) / 8 in
    if i < Array.length d.args then d.args.(i) else 0
  end
  else 0

let event_field e k =
  if k = Insn.event_nr then e.ev_nr
  else if k = Insn.event_ret then e.ev_ret
  else begin
    let i = k - 2 in
    if i >= 0 && i < Array.length e.ev_args then e.ev_args.(i) else 0
  end

let run prog ~data ~event =
  (match Verifier.verify prog with
  | Ok () -> ()
  | Error msg -> raise (Not_verified msg));
  let a = ref 0 and x = ref 0 in
  let steps = ref 0 in
  let src = function Insn.K k -> k | Insn.X -> !x in
  let rec exec pc =
    incr steps;
    match prog.(pc) with
    | Insn.Ld_imm k ->
      a := k;
      exec (pc + 1)
    | Insn.Ld_abs k ->
      a := data_field data k;
      exec (pc + 1)
    | Insn.Ld_event k ->
      a := event_field event k;
      exec (pc + 1)
    | Insn.Ldx_imm k ->
      x := k;
      exec (pc + 1)
    | Insn.Tax ->
      x := !a;
      exec (pc + 1)
    | Insn.Txa ->
      a := !x;
      exec (pc + 1)
    | Insn.Alu_add s ->
      a := !a + src s;
      exec (pc + 1)
    | Insn.Alu_sub s ->
      a := !a - src s;
      exec (pc + 1)
    | Insn.Alu_mul s ->
      a := !a * src s;
      exec (pc + 1)
    | Insn.Alu_and s ->
      a := !a land src s;
      exec (pc + 1)
    | Insn.Alu_or s ->
      a := !a lor src s;
      exec (pc + 1)
    | Insn.Alu_lsh s ->
      a := !a lsl src s;
      exec (pc + 1)
    | Insn.Alu_rsh s ->
      a := !a lsr src s;
      exec (pc + 1)
    | Insn.Ja o -> exec (pc + 1 + o)
    | Insn.Jeq (k, t, f) -> exec (pc + 1 + if !a = k then t else f)
    | Insn.Jgt (k, t, f) -> exec (pc + 1 + if !a > k then t else f)
    | Insn.Jge (k, t, f) -> exec (pc + 1 + if !a >= k then t else f)
    | Insn.Jset (k, t, f) -> exec (pc + 1 + if !a land k <> 0 then t else f)
    | Insn.Ret_k k -> k
    | Insn.Ret_a -> !a
  in
  let action = exec 0 in
  { action; steps = !steps }

type verdict = Kill | Execute_follower_call | Skip_leader_event | Other of int

let verdict_of_action a =
  if a = Insn.ret_kill then Kill
  else if a = Insn.ret_allow then Execute_follower_call
  else if a = Insn.ret_skip_event then Skip_leader_event
  else Other a

(* Generated layout:
     0:                ld event[0]
     1..e:             jeq #leader_i, check_follower
     e+1:              ja bad
     check_follower:   ld [0]
     ..:               jeq #added_j, good
     ..:               ja bad          (falls into bad which is next)
     bad:              ret #KILL
     good:             ret #ALLOW *)
let allow_added_syscalls ~expected_leader ~added =
  let ne = List.length expected_leader and na = List.length added in
  if ne = 0 || na = 0 then invalid_arg "allow_added_syscalls: empty rule";
  (* Instruction indices. *)
  let check_follower = 1 + ne + 1 in
  let bad = check_follower + 1 + na + 1 in
  let good = bad + 1 in
  let prog = ref [] in
  let emit i = prog := i :: !prog in
  let here () = List.length !prog in
  emit (Insn.Ld_event Insn.event_nr);
  List.iter
    (fun nr -> emit (Insn.Jeq (nr, check_follower - (here () + 1), 0)))
    expected_leader;
  emit (Insn.Ja (bad - (here () + 1)));
  emit (Insn.Ld_abs Insn.data_nr);
  List.iter (fun nr -> emit (Insn.Jeq (nr, good - (here () + 1), 0))) added;
  emit (Insn.Ja (bad - (here () + 1)));
  emit (Insn.Ret_k Insn.ret_kill);
  emit (Insn.Ret_k Insn.ret_allow);
  let prog = Array.of_list (List.rev !prog) in
  (match Verifier.verify prog with
  | Ok () -> ()
  | Error msg -> invalid_arg ("allow_added_syscalls: " ^ msg));
  prog

let allow_removed_syscalls ~removed =
  if removed = [] then invalid_arg "allow_removed_syscalls: empty rule";
  let n = List.length removed in
  let skip = n + 2 in
  let prog = ref [] in
  let emit i = prog := i :: !prog in
  let here () = List.length !prog in
  emit (Insn.Ld_event Insn.event_nr);
  List.iter (fun nr -> emit (Insn.Jeq (nr, skip - (here () + 1), 0))) removed;
  emit (Insn.Ret_k Insn.ret_kill);
  emit (Insn.Ret_k Insn.ret_skip_event);
  let prog = Array.of_list (List.rev !prog) in
  (match Verifier.verify prog with
  | Ok () -> ()
  | Error msg -> invalid_arg ("allow_removed_syscalls: " ^ msg));
  prog

(* Chain two rules: every `ret #KILL` in [a] becomes a forward jump to the
   start of [b]. Verified offsets stay forward because [b] is appended. *)
let combine a b =
  let la = Array.length a in
  let rewritten =
    Array.mapi
      (fun i insn ->
        match insn with
        | Insn.Ret_k k when k = Insn.ret_kill -> Insn.Ja (la - (i + 1))
        | other -> other)
      a
  in
  let prog = Array.append rewritten b in
  match Verifier.verify prog with
  | Ok () -> prog
  | Error msg -> invalid_arg ("Rules.combine: " ^ msg)

let listing1 =
  {|
ld event[0]
jeq #108, getegid /* __NR_getegid */
jeq #2, open      /* __NR_open */
jmp bad
getegid:
ld [0]            /* offsetof(struct seccomp_data, nr) */
jeq #102, good    /* __NR_getuid */
open:
ld [0]            /* offsetof(struct seccomp_data, nr) */
jeq #104, good    /* __NR_getgid */
bad: ret #0            /* SECCOMP_RET_KILL */
good: ret #0x7fff0000  /* SECCOMP_RET_ALLOW */
|}

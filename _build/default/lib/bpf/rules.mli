(** System-call rewrite rules (§2.3, §3.4).

    When a follower's next syscall diverges from the leader's next event,
    the NVX layer runs the variant's BPF filter with the follower's call
    as seccomp data and the leader's event through the event extension.
    The filter's verdict decides how the divergence is handled. *)

type verdict =
  | Kill  (** terminate the follower (default for unknown divergence) *)
  | Execute_follower_call
      (** the follower performs its additional syscall locally, then
          retries matching the same leader event — the {e addition}
          pattern of §2.3 *)
  | Skip_leader_event
      (** the leader's event has no follower counterpart and is dropped —
          the {e removal} pattern *)
  | Other of int

val verdict_of_action : int -> verdict

(** {1 Rule generators} *)

val allow_added_syscalls :
  expected_leader:int list -> added:int list -> Insn.t array
(** A filter permitting the follower to insert any syscall in [added]
    at points where the leader's next event is one of [expected_leader]
    (generalises the paper's Listing 1). *)

val allow_removed_syscalls : removed:int list -> Insn.t array
(** A filter permitting leader events whose syscall number is in
    [removed] to be skipped by the follower. *)

val combine : Insn.t array -> Insn.t array -> Insn.t array
(** [combine a b] tries rule [a]; where [a] returns kill, falls through
    to [b]. Implemented by rewriting [a]'s kill returns into jumps. *)

val listing1 : string
(** The verbatim filter from the paper's Listing 1 (getuid/getgid
    insertion between lighttpd revisions 2435 and 2436), in assembler
    syntax. *)

let max_insns = 4096

let verify prog =
  let len = Array.length prog in
  let err i msg = Error (Printf.sprintf "instruction %d: %s" i msg) in
  if len = 0 then Error "empty program"
  else if len > max_insns then Error "program too long"
  else begin
    let check i (insn : Insn.t) =
      let jump_ok o = o >= 0 && i + 1 + o < len in
      match insn with
      | Insn.Ja o -> if jump_ok o then Ok () else err i "jump out of range"
      | Insn.Jeq (_, t, f) | Insn.Jgt (_, t, f) | Insn.Jge (_, t, f)
      | Insn.Jset (_, t, f) ->
        if not (jump_ok t) then err i "true branch out of range"
        else if not (jump_ok f) then err i "false branch out of range"
        else Ok ()
      | Insn.Ld_abs k ->
        if k < 0 || k > 64 then err i "data offset out of range" else Ok ()
      | Insn.Ld_event k ->
        if k < 0 || k > 15 then err i "event index out of range" else Ok ()
      | Insn.Alu_rsh (Insn.K k) | Insn.Alu_lsh (Insn.K k) ->
        if k < 0 || k > 63 then err i "shift amount out of range" else Ok ()
      | _ -> Ok ()
    in
    let rec all i =
      if i >= len then Ok ()
      else
        match check i prog.(i) with Ok () -> all (i + 1) | Error _ as e -> e
    in
    match all 0 with
    | Error _ as e -> e
    | Ok () -> (
      (* The last instruction must be a return: combined with forward-only
         jumps this guarantees termination on every path. *)
      match prog.(len - 1) with
      | Insn.Ret_k _ | Insn.Ret_a -> Ok ()
      | _ -> err (len - 1) "program does not end in ret")
  end

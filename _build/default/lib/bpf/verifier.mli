(** Static verification of BPF filters.

    Mirrors the kernel's checker: filters are verified when loaded "to
    ensure termination" (§3.4). A program passes iff it is non-empty and
    within the size cap, every jump lands inside the program (offsets are
    non-negative by construction, so control flow only moves forward),
    every reachable path ends in a [Ret], and memory offsets are sane. *)

val max_insns : int
(** 4096, as in the kernel (BPF_MAXINSNS). *)

val verify : Insn.t array -> (unit, string) result
(** [Error msg] pinpoints the offending instruction. *)

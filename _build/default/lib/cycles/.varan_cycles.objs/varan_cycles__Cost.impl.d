lib/cycles/cost.ml: Int64 Varan_syscall

lib/cycles/cost.mli: Varan_syscall

module Sysno = Varan_syscall.Sysno

type t = {
  native_base : Sysno.t -> int;
  copy_per_byte_c100 : int;
  intercept_jump : int;
  intercept_int : int;
  intercept_vdso : int;
  intercept_extra : Sysno.t -> int;
  publish_event : int;
  publish_per_follower : int;
  consume_event : int;
  consume_vdso : int;
  waitlock_block : int;
  waitlock_wake : int;
  spin_check : int;
  waitlock_spin_cycles : int;
  shmem_alloc : int;
  shmem_copy_leader_c100 : int;
  shmem_copy_follower_c100 : int;
  fd_send : int;
  fd_recv : int;
  ptrace_stop : int;
  ptrace_getregs : int;
  ptrace_setregs : int;
  ptrace_copy_per_byte_c100 : int;
  lockstep_rendezvous : int;
  bpf_per_insn : int;
  failover_notify : int;
  failover_promote : int;
  scribe_per_syscall : int;
  scribe_copy_per_byte_c100 : int;
  cpu_ghz : float;
  physical_cores : int;
  hw_threads : int;
  mem_linear_c1000 : int;
  mem_saturated_c1000 : int;
}

(* Flat native costs, calibrated against Figure 4 for the five
   microbenchmark calls (the 512-byte copy component is charged separately
   at [copy_per_byte_c100]): close 1261, write 1430, read 1486, open 2583,
   time 49. Remaining values are plausible Linux costs on the paper's Xeon
   E3-1280, chosen relative to those anchors. *)
let default_native_base (s : Sysno.t) =
  match s with
  | Close -> 1261
  | Write | Pwrite64 | Writev -> 1302 (* + copy: 512 B -> 1430 total *)
  | Read | Pread64 | Readv -> 1358 (* + copy: 512 B -> 1486 total *)
  | Open | Openat -> 2583
  | Time | Gettimeofday | Clock_gettime | Getcpu -> 49 (* vDSO, no trap *)
  | Stat | Fstat | Lstat -> 1700
  | Lseek -> 1100
  | Poll | Select -> 1900
  | Epoll_wait -> 1800
  | Epoll_ctl -> 1400
  | Epoll_create -> 2200
  | Mmap -> 2600
  | Mprotect -> 2200
  | Munmap -> 2400
  | Brk -> 1500
  | Madvise -> 1400
  | Rt_sigaction | Rt_sigprocmask -> 1200
  | Rt_sigreturn -> 1600
  | Ioctl -> 1500
  | Access -> 1900
  | Pipe | Socketpair -> 2900
  | Sched_yield -> 900
  | Dup | Dup2 -> 1300
  | Pause -> 1200
  | Nanosleep -> 1800
  | Getpid | Getppid -> 800
  | Sendfile -> 2400
  | Socket -> 3100
  | Connect -> 4200
  | Accept | Accept4 -> 4100
  | Sendto | Sendmsg -> 1900 (* + copy *)
  | Recvfrom | Recvmsg -> 1950 (* + copy *)
  | Shutdown -> 1700
  | Bind -> 1800
  | Listen -> 1500
  | Getsockname | Getpeername -> 1300
  | Setsockopt | Getsockopt -> 1400
  | Clone | Fork -> 42_000
  | Execve -> 180_000
  | Exit | Exit_group -> 9_000
  | Wait4 -> 2_200
  | Kill -> 1_900
  | Uname -> 1_100
  | Fcntl -> 1_050
  | Flock -> 1_400
  | Fsync | Fdatasync -> 22_000
  | Ftruncate -> 2_600
  | Getdents -> 2_400
  | Getcwd -> 1_200
  | Chdir -> 1_800
  | Rename -> 3_200
  | Mkdir | Rmdir -> 3_000
  | Unlink -> 2_900
  | Readlink -> 1_900
  | Chmod -> 2_100
  | Umask -> 850
  | Getrlimit | Getrusage -> 1_150
  | Times -> 1_000
  | Getuid | Getgid | Geteuid | Getegid -> 800
  | Setuid | Setgid | Setsid -> 1_300
  | Futex -> 950
  | Getrandom -> 1_600

(* Per-call interception residuals from Figure 4's "intercept" row
   (relative to the 69-cycle jump path): write +65, read -27, open +324.
   The open residual is large because its path argument must be copied to a
   monitor-owned buffer before the handler runs. *)
let default_intercept_extra (s : Sysno.t) =
  match s with
  | Write | Pwrite64 | Writev | Sendto | Sendmsg -> 65
  | Read | Pread64 | Readv | Recvfrom | Recvmsg -> -27
  | Open | Openat -> 324
  | _ -> 0

let default =
  {
    native_base = default_native_base;
    copy_per_byte_c100 = 25;
    intercept_jump = 69;
    intercept_int = 1450; (* signal delivery + handler + sigreturn *)
    intercept_vdso = 73;
    intercept_extra = default_intercept_extra;
    publish_event = 328;
    publish_per_follower = 60;
    consume_event = 188;
    consume_vdso = 116;
    waitlock_block = 1350; (* futex wait enter + wake-side resume *)
    waitlock_wake = 1150;
    spin_check = 40;
    waitlock_spin_cycles = 6_000; (* adaptive spin before futex sleep *)
    shmem_alloc = 250;
    shmem_copy_leader_c100 = 219;
    shmem_copy_follower_c100 = 340;
    fd_send = 5424;
    fd_recv = 6761;
    ptrace_stop = 4800;
    ptrace_getregs = 750;
    ptrace_setregs = 750;
    ptrace_copy_per_byte_c100 = 150;
    lockstep_rendezvous = 1500;
    bpf_per_insn = 25;
    failover_notify = 70_000; (* ~20 us: signal + control socket round *)
    failover_promote = 210_000; (* ~60 us: election + table switch *)
    scribe_per_syscall = 3_800;
    scribe_copy_per_byte_c100 = 180;
    cpu_ghz = 3.5;
    physical_cores = 4;
    hw_threads = 8;
    mem_linear_c1000 = 155;
    mem_saturated_c1000 = 650;
  }

let copy_cycles ~rate_c100 bytes =
  if bytes <= 0 then 0 else ((bytes * rate_c100) + 99) / 100

let native c sysno bytes =
  c.native_base sysno + copy_cycles ~rate_c100:c.copy_per_byte_c100 bytes

let cycles_to_us c cycles = Int64.to_float cycles /. (c.cpu_ghz *. 1000.0)

let us_to_cycles c us = Int64.of_float (us *. c.cpu_ghz *. 1000.0)

let mem_slowdown_c1000 c ~intensity_c1000 ~variants =
  if variants <= 1 then 1000
  else begin
    let linear = (variants - 1) * c.mem_linear_c1000 * intensity_c1000 / 1000 in
    (* Shared-cache and bandwidth pressure builds up well before the
       core count is reached: hyper-threaded pairs share L1/L2 ports, so
       contention grows once more than two variants are active. *)
    let over = max 0 (variants - 2) in
    let saturated = over * c.mem_saturated_c1000 * intensity_c1000 / 1000 in
    1000 + linear + saturated
  end

let scale_by_c1000 cycles f = ((cycles * f) + 500) / 1000

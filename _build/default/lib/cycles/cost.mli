(** The cycle cost model.

    The paper evaluates on a 3.50 GHz Intel Xeon E3-1280 (4 cores / 8
    threads) and reports per-syscall costs in cycles measured with RDTSC
    (Figure 4). Since this reproduction runs on a simulated kernel, all
    timing comes from this model: leaf costs (native syscall execution,
    interception entry, ring-buffer publish/consume, shared-memory copies,
    descriptor transfer, ptrace stops) are calibrated against the paper's
    own microbenchmark numbers, and every macro result (Figures 5–8, Tables
    1–2, §5) then {e emerges} from the simulation rather than being
    hard-coded.

    All costs are in CPU cycles. Fractional per-byte rates use integer
    micro-cycles (1/100 cycle) to keep the simulation deterministic. *)

type t = {
  (* -- native kernel costs ------------------------------------------- *)
  native_base : Varan_syscall.Sysno.t -> int;
      (** flat cost of executing the syscall natively (user→kernel→user),
          excluding per-byte transfer costs *)
  copy_per_byte_c100 : int;
      (** kernel copy_{to,from}_user cost, in 1/100 cycles per byte *)
  (* -- interception (binary rewriting, §3.2) ------------------------- *)
  intercept_jump : int;
      (** rewritten-syscall path: jump + register save/restore + syscall
          table lookup *)
  intercept_int : int;
      (** INT-trap fallback path: signal delivery + sigreturn *)
  intercept_vdso : int;  (** vDSO entry-point trampoline (§3.2.1) *)
  intercept_extra : Varan_syscall.Sysno.t -> int;
      (** per-call calibration residual measured in Figure 4 *)
  (* -- event streaming (§3.3) ---------------------------------------- *)
  publish_event : int;
      (** leader: fill a 64-byte event, bump the Lamport clock, advance the
          ring cursor *)
  publish_per_follower : int;
      (** leader: extra per-follower cost per published event (cache-line
          transfer + cursor checks) *)
  consume_event : int;
      (** follower: wait-free claim and copy of one event *)
  consume_vdso : int;
      (** follower fast path for vDSO results (value-only event) *)
  waitlock_block : int;  (** follower: futex-based block when ring empty *)
  waitlock_wake : int;  (** leader: futex wake of one blocked follower *)
  spin_check : int;  (** one busy-wait poll of the ring cursor *)
  waitlock_spin_cycles : int;
      (** adaptive-mutex spin budget before a follower actually sleeps in
          the futex (and so before the leader must pay a wake) *)
  (* -- shared memory (§3.3.4) ---------------------------------------- *)
  shmem_alloc : int;  (** pool allocator bucket hit *)
  shmem_copy_leader_c100 : int;  (** leader copy into shm, 1/100 cy/B *)
  shmem_copy_follower_c100 : int;  (** follower copy out of shm, 1/100 cy/B *)
  (* -- data channel (§3.3.2) ----------------------------------------- *)
  fd_send : int;  (** leader: SCM_RIGHTS sendmsg of one descriptor *)
  fd_recv : int;  (** follower: recvmsg + descriptor install *)
  (* -- ptrace lockstep baseline (§7, Table 2) ------------------------ *)
  ptrace_stop : int;
      (** one ptrace stop: context switch to the monitor and back *)
  ptrace_getregs : int;
  ptrace_setregs : int;
  ptrace_copy_per_byte_c100 : int;
      (** PTRACE_PEEKDATA-style word-by-word user memory copy *)
  lockstep_rendezvous : int;
      (** centralised monitor bookkeeping per syscall rendezvous *)
  (* -- BPF (§3.4) ----------------------------------------------------- *)
  bpf_per_insn : int;  (** interpreter cost per BPF instruction *)
  (* -- transparent failover (§5.1) ------------------------------------ *)
  failover_notify : int;
      (** SIGSEGV handler + coordinator notification over the control
          socket *)
  failover_promote : int;
      (** election, syscall-table switch and stream-position adoption in
          the promoted follower *)
  (* -- Scribe record-replay baseline (§5.4) --------------------------- *)
  scribe_per_syscall : int;
      (** in-kernel recording overhead per syscall (Scribe model) *)
  scribe_copy_per_byte_c100 : int;
  (* -- machine -------------------------------------------------------- *)
  cpu_ghz : float;  (** nominal frequency for cycle↔time conversion *)
  physical_cores : int;
  hw_threads : int;
  mem_linear_c1000 : int;
      (** memory-pressure model: per extra variant, slowdown in 1/1000
          units scaled by the workload's memory intensity *)
  mem_saturated_c1000 : int;
      (** additional per-variant slowdown once more than two variants
          compete for the shared caches *)
}

val default : t
(** Calibrated against Figure 4 and the prior-work overheads in Table 2. *)

val native : t -> Varan_syscall.Sysno.t -> int -> int
(** [native c sysno bytes] is the full native cost of a syscall moving
    [bytes] of payload. *)

val copy_cycles : rate_c100:int -> int -> int
(** [copy_cycles ~rate_c100 bytes] converts a per-byte micro-cycle rate
    into whole cycles (rounded up). *)

val cycles_to_us : t -> int64 -> float
(** Convert a cycle count to microseconds at the model's clock rate. *)

val us_to_cycles : t -> float -> int64

val mem_slowdown_c1000 : t -> intensity_c1000:int -> variants:int -> int
(** [mem_slowdown_c1000 c ~intensity_c1000 ~variants] is the multiplicative
    compute slowdown (in 1/1000 units, i.e. 1000 = no slowdown) suffered by
    each of [variants] copies of a workload with the given memory intensity
    running on this machine (§4.3, §6). *)

val scale_by_c1000 : int -> int -> int
(** [scale_by_c1000 cycles f] multiplies a cycle count by a 1/1000-unit
    factor, rounding to nearest. *)

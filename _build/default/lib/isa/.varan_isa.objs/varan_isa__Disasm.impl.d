lib/isa/disasm.ml: Bytes Char Format Hashtbl Insn List

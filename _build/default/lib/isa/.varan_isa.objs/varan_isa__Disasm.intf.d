lib/isa/disasm.mli: Bytes Format Hashtbl Insn

lib/isa/insn.ml: Bytes Char Format Int32

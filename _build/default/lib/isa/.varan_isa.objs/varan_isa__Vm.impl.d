lib/isa/vm.ml: Array Bytes Char Hashtbl Insn Int32 List Printf

lib/isa/vm.mli: Bytes Hashtbl

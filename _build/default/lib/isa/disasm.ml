type item = { addr : int; insn : Insn.t option; len : int }

let sweep buf =
  let len = Bytes.length buf in
  let rec go addr acc =
    if addr >= len then List.rev acc
    else
      match Insn.decode buf addr with
      | Some (insn, ilen) ->
        go (addr + ilen) ({ addr; insn = Some insn; len = ilen } :: acc)
      | None -> go (addr + 1) ({ addr; insn = None; len = 1 } :: acc)
  in
  go 0 []

let instructions buf =
  List.filter_map
    (fun it -> match it.insn with Some i -> Some (it.addr, i) | None -> None)
    (sweep buf)

let branch_targets buf =
  let targets = Hashtbl.create 64 in
  List.iter
    (fun (addr, insn) ->
      match Insn.branch_target ~at:addr insn with
      | Some t -> Hashtbl.replace targets t ()
      | None -> ())
    (instructions buf);
  targets

let syscall_sites buf =
  List.filter_map
    (fun (addr, insn) -> if insn = Insn.Syscall then Some addr else None)
    (instructions buf)

let pp_listing ppf buf =
  List.iter
    (fun it ->
      match it.insn with
      | Some insn -> Format.fprintf ppf "%04x: %a@." it.addr Insn.pp insn
      | None ->
        Format.fprintf ppf "%04x: .byte 0x%02x@." it.addr
          (Char.code (Bytes.get buf it.addr)))
    (sweep buf)

(** Linear-sweep disassembler.

    VARAN scans each executable segment with "a simple x86 disassembler"
    when it is mapped (§3.2); this is that component for the synthetic ISA.
    A byte that does not decode is treated as one byte of data and skipped,
    which mirrors the conservative behaviour a real rewriter needs on
    stripped binaries. *)

type item = {
  addr : int;  (** offset within the code buffer *)
  insn : Insn.t option;  (** [None] for an undecodable byte *)
  len : int;
}

val sweep : Bytes.t -> item list
(** Decode the whole buffer front to back. *)

val instructions : Bytes.t -> (int * Insn.t) list
(** Only the successfully decoded instructions of {!sweep}. *)

val branch_targets : Bytes.t -> (int, unit) Hashtbl.t
(** Addresses that some decoded branch jumps or calls to. The rewriter
    must not relocate instructions at these addresses (§3.2). *)

val syscall_sites : Bytes.t -> int list
(** Addresses of [Syscall] instructions, ascending. *)

val pp_listing : Format.formatter -> Bytes.t -> unit
(** Human-readable listing, one instruction per line. *)

type reg = int

type t =
  | Nop
  | Syscall
  | Int3
  | Int of int
  | Hook of int
  | Mov_imm of reg * int32
  | Mov of reg * reg
  | Add of reg * reg
  | Sub of reg * reg
  | Xor of reg * reg
  | Cmp of reg * reg
  | Test of reg * reg
  | Inc of reg
  | Dec of reg
  | Add_imm of reg * int
  | Jmp of int32
  | Jmp_short of int
  | Je of int
  | Jne of int
  | Jl of int
  | Jg of int
  | Call of int32
  | Ret
  | Push of reg
  | Pop of reg
  | Load of reg * reg
  | Store of reg * reg
  | Hlt

let length = function
  | Nop | Syscall | Int3 | Ret | Hlt -> 1
  | Push _ | Pop _ | Inc _ | Dec _ -> 1
  | Int _ | Jmp_short _ | Je _ | Jne _ | Jl _ | Jg _ -> 2
  | Mov _ | Add _ | Sub _ | Xor _ | Cmp _ | Test _ | Load _ | Store _ -> 2
  | Add_imm _ -> 3
  | Hook _ | Mov_imm _ | Jmp _ | Call _ -> 5

(* Opcodes (loosely x86-flavoured):
   0x90 NOP          0x05 SYSCALL      0xCC INT3      0xCD INT imm8
   0x0F HOOK imm32   0xB8+r MOV imm32  0x01 ADD rr    0x29 SUB rr
   0x39 CMP rr       0x83 ADDI r imm8  0xE9 JMP rel32 0xEB JMP rel8
   0x74 JE rel8      0x75 JNE rel8     0xE8 CALL rel32 0xC3 RET
   0x50+r PUSH       0x58+r POP        0x8B LOAD rr   0x89 STORE rr
   0xF4 HLT *)

let regpair a b = Char.chr (((a land 0xF) lsl 4) lor (b land 0xF))

let encode_into buf ofs insn =
  let set i c = Bytes.set buf (ofs + i) c in
  let set_b i v = Bytes.set buf (ofs + i) (Char.chr (v land 0xFF)) in
  let set_i32 i v = Bytes.set_int32_le buf (ofs + i) v in
  (match insn with
  | Nop -> set 0 '\x90'
  | Syscall -> set 0 '\x05'
  | Int3 -> set 0 '\xCC'
  | Int v ->
    set 0 '\xCD';
    set_b 1 v
  | Hook site ->
    set 0 '\x0F';
    set_i32 1 (Int32.of_int site)
  | Mov_imm (r, v) ->
    set_b 0 (0xB8 + (r land 7));
    set_i32 1 v
  | Add (a, b) ->
    set 0 '\x01';
    set 1 (regpair a b)
  | Mov (a, b) ->
    set 0 '\x8A';
    set 1 (regpair a b)
  | Xor (a, b) ->
    set 0 '\x31';
    set 1 (regpair a b)
  | Test (a, b) ->
    set 0 '\x85';
    set 1 (regpair a b)
  | Inc r -> set_b 0 (0x40 + (r land 7))
  | Dec r -> set_b 0 (0x48 + (r land 7))
  | Jl rel ->
    set 0 '\x7C';
    set_b 1 rel
  | Jg rel ->
    set 0 '\x7F';
    set_b 1 rel
  | Sub (a, b) ->
    set 0 '\x29';
    set 1 (regpair a b)
  | Cmp (a, b) ->
    set 0 '\x39';
    set 1 (regpair a b)
  | Add_imm (r, v) ->
    set 0 '\x83';
    set_b 1 r;
    set_b 2 v
  | Jmp rel ->
    set 0 '\xE9';
    set_i32 1 rel
  | Jmp_short rel ->
    set 0 '\xEB';
    set_b 1 rel
  | Je rel ->
    set 0 '\x74';
    set_b 1 rel
  | Jne rel ->
    set 0 '\x75';
    set_b 1 rel
  | Call rel ->
    set 0 '\xE8';
    set_i32 1 rel
  | Ret -> set 0 '\xC3'
  | Push r -> set_b 0 (0x50 + (r land 7))
  | Pop r -> set_b 0 (0x58 + (r land 7))
  | Load (a, b) ->
    set 0 '\x8B';
    set 1 (regpair a b)
  | Store (a, b) ->
    set 0 '\x89';
    set 1 (regpair a b)
  | Hlt -> set 0 '\xF4');
  length insn

let encode insn =
  let b = Bytes.create (length insn) in
  ignore (encode_into b 0 insn);
  b

let signed8 v = if v >= 128 then v - 256 else v

let decode buf ofs =
  let len = Bytes.length buf in
  if ofs >= len then None
  else begin
    let op = Char.code (Bytes.get buf ofs) in
    let have n = ofs + n <= len in
    let b i = Char.code (Bytes.get buf (ofs + i)) in
    let i32 i = Bytes.get_int32_le buf (ofs + i) in
    let pair i = (b i lsr 4, b i land 0xF) in
    match op with
    | 0x90 -> Some (Nop, 1)
    | 0x05 -> Some (Syscall, 1)
    | 0xCC -> Some (Int3, 1)
    | 0xCD -> if have 2 then Some (Int (b 1), 2) else None
    | 0x0F -> if have 5 then Some (Hook (Int32.to_int (i32 1)), 5) else None
    | op when op >= 0xB8 && op <= 0xBF ->
      if have 5 then Some (Mov_imm (op - 0xB8, i32 1), 5) else None
    | 0x01 ->
      if have 2 then
        let a, c = pair 1 in
        Some (Add (a, c), 2)
      else None
    | 0x8A ->
      if have 2 then
        let a, c = pair 1 in
        Some (Mov (a, c), 2)
      else None
    | 0x31 ->
      if have 2 then
        let a, c = pair 1 in
        Some (Xor (a, c), 2)
      else None
    | 0x85 ->
      if have 2 then
        let a, c = pair 1 in
        Some (Test (a, c), 2)
      else None
    | op when op >= 0x40 && op <= 0x47 -> Some (Inc (op - 0x40), 1)
    | op when op >= 0x48 && op <= 0x4F -> Some (Dec (op - 0x48), 1)
    | 0x7C -> if have 2 then Some (Jl (signed8 (b 1)), 2) else None
    | 0x7F -> if have 2 then Some (Jg (signed8 (b 1)), 2) else None
    | 0x29 ->
      if have 2 then
        let a, c = pair 1 in
        Some (Sub (a, c), 2)
      else None
    | 0x39 ->
      if have 2 then
        let a, c = pair 1 in
        Some (Cmp (a, c), 2)
      else None
    | 0x83 -> if have 3 then Some (Add_imm (b 1, signed8 (b 2)), 3) else None
    | 0xE9 -> if have 5 then Some (Jmp (i32 1), 5) else None
    | 0xEB -> if have 2 then Some (Jmp_short (signed8 (b 1)), 2) else None
    | 0x74 -> if have 2 then Some (Je (signed8 (b 1)), 2) else None
    | 0x75 -> if have 2 then Some (Jne (signed8 (b 1)), 2) else None
    | 0xE8 -> if have 5 then Some (Call (i32 1), 5) else None
    | 0xC3 -> Some (Ret, 1)
    | op when op >= 0x50 && op <= 0x57 -> Some (Push (op - 0x50), 1)
    | op when op >= 0x58 && op <= 0x5F -> Some (Pop (op - 0x58), 1)
    | 0x8B ->
      if have 2 then
        let a, c = pair 1 in
        Some (Load (a, c), 2)
      else None
    | 0x89 ->
      if have 2 then
        let a, c = pair 1 in
        Some (Store (a, c), 2)
      else None
    | 0xF4 -> Some (Hlt, 1)
    | _ -> None
  end

let is_branch = function
  | Jmp _ | Jmp_short _ | Je _ | Jne _ | Jl _ | Jg _ | Call _ -> true
  | _ -> false

let branch_target ~at insn =
  let next = at + length insn in
  match insn with
  | Jmp rel | Call rel -> Some (next + Int32.to_int rel)
  | Jmp_short rel | Je rel | Jne rel | Jl rel | Jg rel -> Some (next + rel)
  | _ -> None

let fits8 v = v >= -128 && v <= 127

let with_target ~at insn target =
  let next = at + length insn in
  let rel = target - next in
  match insn with
  | Jmp _ -> Some (Jmp (Int32.of_int rel))
  | Call _ -> Some (Call (Int32.of_int rel))
  | Jmp_short _ -> if fits8 rel then Some (Jmp_short rel) else None
  | Je _ -> if fits8 rel then Some (Je rel) else None
  | Jne _ -> if fits8 rel then Some (Jne rel) else None
  | Jl _ -> if fits8 rel then Some (Jl rel) else None
  | Jg _ -> if fits8 rel then Some (Jg rel) else None
  | _ -> None

let pp ppf = function
  | Nop -> Format.pp_print_string ppf "nop"
  | Syscall -> Format.pp_print_string ppf "syscall"
  | Int3 -> Format.pp_print_string ppf "int3"
  | Int v -> Format.fprintf ppf "int 0x%x" v
  | Hook s -> Format.fprintf ppf "hook %d" s
  | Mov_imm (r, v) -> Format.fprintf ppf "mov r%d, %ld" r v
  | Add (a, b) -> Format.fprintf ppf "add r%d, r%d" a b
  | Mov (a, b) -> Format.fprintf ppf "mov r%d, r%d" a b
  | Xor (a, b) -> Format.fprintf ppf "xor r%d, r%d" a b
  | Test (a, b) -> Format.fprintf ppf "test r%d, r%d" a b
  | Inc r -> Format.fprintf ppf "inc r%d" r
  | Dec r -> Format.fprintf ppf "dec r%d" r
  | Jl rel -> Format.fprintf ppf "jl %+d" rel
  | Jg rel -> Format.fprintf ppf "jg %+d" rel
  | Sub (a, b) -> Format.fprintf ppf "sub r%d, r%d" a b
  | Cmp (a, b) -> Format.fprintf ppf "cmp r%d, r%d" a b
  | Add_imm (r, v) -> Format.fprintf ppf "add r%d, %d" r v
  | Jmp rel -> Format.fprintf ppf "jmp %+ld" rel
  | Jmp_short rel -> Format.fprintf ppf "jmp short %+d" rel
  | Je rel -> Format.fprintf ppf "je %+d" rel
  | Jne rel -> Format.fprintf ppf "jne %+d" rel
  | Call rel -> Format.fprintf ppf "call %+ld" rel
  | Ret -> Format.pp_print_string ppf "ret"
  | Push r -> Format.fprintf ppf "push r%d" r
  | Pop r -> Format.fprintf ppf "pop r%d" r
  | Load (a, b) -> Format.fprintf ppf "load r%d, [r%d]" a b
  | Store (a, b) -> Format.fprintf ppf "store [r%d], r%d" a b
  | Hlt -> Format.pp_print_string ppf "hlt"

let equal a b = a = b

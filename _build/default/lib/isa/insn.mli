(** The synthetic x86-64-like instruction set.

    A compact ISA with byte-level encoding that reproduces the structural
    properties VARAN's selective binary rewriter must deal with (§3.2 of
    the paper):

    - the [SYSCALL] instruction is {e one byte} while a [JMP rel32] detour
      needs {e five}, so rewriting a syscall requires relocating its
      neighbours into a trampoline;
    - relative branches ([rel8]/[rel32]) make some neighbours unsafe to
      move (branch targets) and short displacements may stop fitting after
      relocation;
    - a one-byte [INT3] trap exists as the fallback when detouring is
      impossible.

    Registers are [R0]–[R7]; [R0] carries the syscall number and return
    value, [R1]–[R6] the arguments, mirroring the x86-64 convention. *)

type reg = int
(** Register index 0–7. *)

type t =
  | Nop
  | Syscall  (** 1 byte — the instruction being rewritten *)
  | Int3  (** 1 byte — trap fallback *)
  | Int of int  (** 2 bytes — software interrupt with vector *)
  | Hook of int  (** 5 bytes — VM-level monitor entry point (site id);
                     only ever emitted by the rewriter, never by
                     compilers/codegen *)
  | Mov_imm of reg * int32  (** 5 bytes *)
  | Mov of reg * reg  (** 2 bytes *)
  | Add of reg * reg  (** 2 bytes *)
  | Sub of reg * reg  (** 2 bytes *)
  | Xor of reg * reg  (** 2 bytes *)
  | Cmp of reg * reg  (** 2 bytes — sets the zero and sign flags *)
  | Test of reg * reg  (** 2 bytes — zf := (a land b) = 0 *)
  | Inc of reg  (** 1 byte *)
  | Dec of reg  (** 1 byte *)
  | Add_imm of reg * int  (** 3 bytes — signed imm8 *)
  | Jmp of int32  (** 5 bytes — rel32 from next insn *)
  | Jmp_short of int  (** 2 bytes — rel8 *)
  | Je of int  (** 2 bytes — rel8 *)
  | Jne of int  (** 2 bytes — rel8 *)
  | Jl of int  (** 2 bytes — rel8, jump if less (signed) *)
  | Jg of int  (** 2 bytes — rel8, jump if greater (signed) *)
  | Call of int32  (** 5 bytes — rel32 *)
  | Ret  (** 1 byte *)
  | Push of reg  (** 1 byte *)
  | Pop of reg  (** 1 byte *)
  | Load of reg * reg  (** 2 bytes — r1 := mem[r2] *)
  | Store of reg * reg  (** 2 bytes — mem[r1] := r2 *)
  | Hlt  (** 1 byte *)

val length : t -> int
(** Encoded length in bytes. *)

val encode : t -> Bytes.t

val encode_into : Bytes.t -> int -> t -> int
(** [encode_into buf ofs insn] writes the encoding and returns the number
    of bytes written. *)

val decode : Bytes.t -> int -> (t * int) option
(** [decode buf ofs] decodes one instruction, returning it and its length,
    or [None] for an invalid opcode or a truncated encoding. *)

val is_branch : t -> bool
(** Instructions with a relative displacement. *)

val branch_target : at:int -> t -> int option
(** [branch_target ~at insn] is the absolute target address of a branch
    located at address [at] (displacements are relative to the {e next}
    instruction, as on x86). [None] for non-branches. *)

val with_target : at:int -> t -> int -> t option
(** [with_target ~at insn target] re-encodes the branch to reach [target]
    from address [at]; [None] if the displacement no longer fits (only
    possible for [rel8] forms). *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

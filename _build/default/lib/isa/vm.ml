type trace_entry =
  | T_syscall of int * int array
  | T_trap of int
  | T_hook of int

type state = {
  regs : int array;
  mutable zf : bool;
  mutable sf : bool;
  mutable pc : int;
  mutable stack : int list;
  mem : (int, int) Hashtbl.t;
  mutable steps : int;
  mutable trace : trace_entry list;
}

exception Fault of string

type hooks = {
  on_syscall : state -> unit;
  on_hook : (int -> state -> unit) option;
  on_trap : (int -> state -> unit) option;
}

let record_syscall st =
  st.trace <- T_syscall (st.regs.(0), Array.sub st.regs 1 6) :: st.trace;
  st.regs.(0) <- 0

let default_hooks =
  { on_syscall = record_syscall; on_hook = None; on_trap = None }

let run ?(hooks = default_hooks) ?(max_steps = 100_000) code ~entry =
  let st =
    {
      regs = Array.make 8 0;
      zf = false;
      sf = false;
      pc = entry;
      stack = [];
      mem = Hashtbl.create 64;
      steps = 0;
      trace = [];
    }
  in
  let running = ref true in
  while !running do
    st.steps <- st.steps + 1;
    if st.steps > max_steps then raise (Fault "step limit exceeded");
    if st.pc < 0 || st.pc >= Bytes.length code then
      raise (Fault (Printf.sprintf "pc out of range: %d" st.pc));
    match Insn.decode code st.pc with
    | None ->
      raise
        (Fault
           (Printf.sprintf "invalid opcode 0x%02x at %04x"
              (Char.code (Bytes.get code st.pc))
              st.pc))
    | Some (insn, len) -> (
      let next = st.pc + len in
      st.pc <- next;
      match insn with
      | Insn.Nop -> ()
      | Insn.Hlt -> running := false
      | Insn.Syscall -> hooks.on_syscall st
      | Insn.Int3 -> (
        match hooks.on_trap with
        | Some f ->
          st.trace <- T_trap (-1) :: st.trace;
          f (-1) st
        | None -> raise (Fault "INT3 with no trap handler"))
      | Insn.Int v -> (
        match hooks.on_trap with
        | Some f ->
          st.trace <- T_trap v :: st.trace;
          f v st
        | None -> raise (Fault "INT with no trap handler"))
      | Insn.Hook site -> (
        match hooks.on_hook with
        | Some f ->
          st.trace <- T_hook site :: st.trace;
          f site st
        | None -> raise (Fault "HOOK with no handler"))
      | Insn.Mov_imm (r, v) -> st.regs.(r) <- Int32.to_int v
      | Insn.Mov (a, b) -> st.regs.(a) <- st.regs.(b)
      | Insn.Add (a, b) -> st.regs.(a) <- st.regs.(a) + st.regs.(b)
      | Insn.Sub (a, b) -> st.regs.(a) <- st.regs.(a) - st.regs.(b)
      | Insn.Xor (a, b) -> st.regs.(a) <- st.regs.(a) lxor st.regs.(b)
      | Insn.Cmp (a, b) ->
        st.zf <- st.regs.(a) = st.regs.(b);
        st.sf <- st.regs.(a) < st.regs.(b)
      | Insn.Test (a, b) ->
        st.zf <- st.regs.(a) land st.regs.(b) = 0;
        st.sf <- false
      | Insn.Inc r -> st.regs.(r) <- st.regs.(r) + 1
      | Insn.Dec r -> st.regs.(r) <- st.regs.(r) - 1
      | Insn.Add_imm (r, v) -> st.regs.(r) <- st.regs.(r) + v
      | Insn.Jmp rel -> st.pc <- next + Int32.to_int rel
      | Insn.Jmp_short rel -> st.pc <- next + rel
      | Insn.Je rel -> if st.zf then st.pc <- next + rel
      | Insn.Jne rel -> if not st.zf then st.pc <- next + rel
      | Insn.Jl rel -> if st.sf then st.pc <- next + rel
      | Insn.Jg rel -> if (not st.sf) && not st.zf then st.pc <- next + rel
      | Insn.Call rel ->
        st.stack <- next :: st.stack;
        st.pc <- next + Int32.to_int rel
      | Insn.Ret -> (
        match st.stack with
        | [] -> running := false
        | ra :: rest ->
          st.stack <- rest;
          st.pc <- ra)
      | Insn.Push r -> st.stack <- st.regs.(r) :: st.stack
      | Insn.Pop r -> (
        match st.stack with
        | [] -> raise (Fault "pop from empty stack")
        | v :: rest ->
          st.regs.(r) <- v;
          st.stack <- rest)
      | Insn.Load (a, b) ->
        st.regs.(a) <-
          (match Hashtbl.find_opt st.mem st.regs.(b) with
          | Some v -> v
          | None -> 0)
      | Insn.Store (a, b) -> Hashtbl.replace st.mem st.regs.(a) st.regs.(b))
  done;
  st

let syscall_trace st =
  List.rev
    (List.filter_map
       (function T_syscall (n, a) -> Some (n, a) | _ -> None)
       st.trace)

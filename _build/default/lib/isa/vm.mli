(** A small virtual machine executing the synthetic ISA.

    Used to {e prove} that binary rewriting preserves program semantics:
    tests run the same program before and after rewriting, with the same
    syscall implementation, and compare final register/memory state and
    the syscall trace. The NVX layer also uses it to execute the rewritten
    vDSO trampolines.

    Executing [Syscall], [Int3] or [Int _] invokes the [on_syscall] hook —
    the VM equivalent of trapping to a monitor. Executing [Hook site]
    invokes [on_hook], the rewriter-installed monitor entry point; if no
    hook handler is installed the instruction faults. *)

type state = {
  regs : int array;  (** 8 general-purpose registers *)
  mutable zf : bool;  (** zero flag, set by [Cmp]/[Test] *)
  mutable sf : bool;  (** sign flag (a < b after [Cmp]) *)
  mutable pc : int;
  mutable stack : int list;
  mem : (int, int) Hashtbl.t;  (** word-addressed data memory *)
  mutable steps : int;
  mutable trace : trace_entry list;  (** reversed execution trace *)
}

and trace_entry =
  | T_syscall of int * int array  (** syscall number, argument registers *)
  | T_trap of int  (** INT3 (-1) or INT vector *)
  | T_hook of int  (** monitor entry with site id *)

exception Fault of string
(** Raised on invalid opcodes, stack underflow, or out-of-range PC. *)

type hooks = {
  on_syscall : state -> unit;
      (** receives the state with R0 = sysno, R1–R6 = args; writes the
          result into R0 *)
  on_hook : (int -> state -> unit) option;
      (** monitor entry point for rewritten sites *)
  on_trap : (int -> state -> unit) option;
      (** INT/INT3 handler (the rewriter's signal-handler path) *)
}

val default_hooks : hooks
(** [on_syscall] records a trace entry and sets R0 := 0; traps and hooks
    fault. *)

val run : ?hooks:hooks -> ?max_steps:int -> Bytes.t -> entry:int -> state
(** Execute until [Hlt], a [Ret] with an empty stack, or [max_steps]
    (default 100_000; exceeding it faults). *)

val syscall_trace : state -> (int * int array) list
(** Syscalls in execution order (from both direct [Syscall] execution and
    hook/trap handlers that chose to record one). *)

val record_syscall : state -> unit
(** Helper for custom hooks: append a [T_syscall] entry for the current
    R0/R1–R6 and set R0 := 0. *)

lib/kernel/api.ml: Args Bytes Char Errno Flags Int32 Int64 Kernel List Result Sysno Types Varan_cycles Varan_sim Varan_syscall

lib/kernel/api.mli: Args Bytes Errno Sysno Types Varan_syscall

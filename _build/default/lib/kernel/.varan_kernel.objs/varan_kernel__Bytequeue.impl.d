lib/kernel/bytequeue.ml: Bytes Queue

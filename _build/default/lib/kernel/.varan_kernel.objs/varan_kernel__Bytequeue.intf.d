lib/kernel/bytequeue.mli: Bytes

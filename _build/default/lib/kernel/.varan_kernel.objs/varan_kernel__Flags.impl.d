lib/kernel/flags.ml:

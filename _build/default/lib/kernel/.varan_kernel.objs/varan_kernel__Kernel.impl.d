lib/kernel/kernel.ml: Array Bytequeue Bytes Char Flags Hashtbl Int32 Int64 List Obj Option Printf Queue String Types Varan_cycles Varan_sim Varan_syscall Varan_util Vfs

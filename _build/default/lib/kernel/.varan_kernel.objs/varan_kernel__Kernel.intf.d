lib/kernel/kernel.mli: Types Varan_cycles Varan_sim Varan_syscall

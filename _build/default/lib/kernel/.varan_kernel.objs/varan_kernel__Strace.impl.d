lib/kernel/strace.ml: Api Format List Varan_syscall

lib/kernel/strace.mli: Api Format

lib/kernel/types.ml: Bytequeue Bytes Hashtbl Queue Varan_cycles Varan_sim Varan_util

lib/kernel/vfs.ml: Bytes Hashtbl List String Types Varan_syscall

lib/kernel/vfs.mli: Hashtbl Types Varan_syscall

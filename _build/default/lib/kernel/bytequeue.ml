type t = {
  chunks : Bytes.t Queue.t;
  mutable head_ofs : int; (* consumed prefix of the front chunk *)
  mutable len : int;
  cap : int;
}

let create ?(capacity = 1 lsl 20) () =
  { chunks = Queue.create (); head_ofs = 0; len = 0; cap = capacity }

let length q = q.len
let is_empty q = q.len = 0
let capacity q = q.cap
let space q = q.cap - q.len

let write q b =
  let n = min (Bytes.length b) (space q) in
  if n > 0 then begin
    Queue.push (Bytes.sub b 0 n) q.chunks;
    q.len <- q.len + n
  end;
  n

let take q n ~remove =
  let n = min n q.len in
  let out = Bytes.create n in
  if remove then begin
    let filled = ref 0 in
    while !filled < n do
      let head = Queue.peek q.chunks in
      let avail = Bytes.length head - q.head_ofs in
      let want = min avail (n - !filled) in
      Bytes.blit head q.head_ofs out !filled want;
      filled := !filled + want;
      if want = avail then begin
        ignore (Queue.pop q.chunks);
        q.head_ofs <- 0
      end
      else q.head_ofs <- q.head_ofs + want
    done;
    q.len <- q.len - n;
    out
  end
  else begin
    (* Non-destructive scan. *)
    let filled = ref 0 in
    let ofs = ref q.head_ofs in
    let iter = Queue.copy q.chunks in
    while !filled < n do
      let head = Queue.pop iter in
      let avail = Bytes.length head - !ofs in
      let want = min avail (n - !filled) in
      Bytes.blit head !ofs out !filled want;
      filled := !filled + want;
      ofs := 0
    done;
    out
  end

let read q n = take q n ~remove:true
let peek q n = take q n ~remove:false

let clear q =
  Queue.clear q.chunks;
  q.head_ofs <- 0;
  q.len <- 0

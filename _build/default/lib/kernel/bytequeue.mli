(** FIFO byte queue used for pipe and socket buffers.

    Semantically a TCP-style byte stream: writers append chunks, readers
    consume any available prefix; chunk boundaries are not preserved. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the number of buffered bytes (default 1 MiB);
    {!write} refuses to exceed it. *)

val length : t -> int
val is_empty : t -> bool
val capacity : t -> int
val space : t -> int

val write : t -> Bytes.t -> int
(** [write q b] appends as much of [b] as capacity allows and returns the
    number of bytes accepted (0 when full). *)

val read : t -> int -> Bytes.t
(** [read q n] removes and returns up to [n] buffered bytes (an empty
    result iff the queue is empty). *)

val peek : t -> int -> Bytes.t
(** Like {!read} without removing. *)

val clear : t -> unit

module Sysno = Varan_syscall.Sysno
module Args = Varan_syscall.Args

type t = {
  mutable entries : string list; (* reversed *)
  mutable kept : int;
  mutable total : int;
  limit : int;
}

let format_call sysno args result =
  Format.asprintf "%s%a = %a" (Sysno.name sysno) Args.pp args Args.pp_result
    result

let attach ?(limit = 10_000) (api : Api.t) =
  let t = { entries = []; kept = 0; total = 0; limit } in
  let sys sysno args =
    let result = api.Api.sys sysno args in
    t.total <- t.total + 1;
    if t.kept < t.limit then begin
      t.entries <- format_call sysno args result :: t.entries;
      t.kept <- t.kept + 1
    end;
    result
  in
  let wrapped = Api.with_sys api.Api.proc sys in
  wrapped.Api.compute_scale_c1000 <- api.Api.compute_scale_c1000;
  (wrapped, t)

let lines t = List.rev t.entries
let calls t = t.total

let pp ppf t =
  List.iter (fun l -> Format.fprintf ppf "%s@." l) (lines t)

let clear t =
  t.entries <- [];
  t.kept <- 0;
  t.total <- 0

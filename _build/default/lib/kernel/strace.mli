(** strace-style system call tracing.

    One of VARAN's selling points over ptrace-based monitors is that the
    traced application can still be inspected with ptrace-based tools like
    strace and GDB (§3.1) — the monitor does not occupy the ptrace slot.
    This module provides the equivalent facility for simulated programs:
    wrap any {!Api.t} and every call through it is appended to an
    in-memory trace in strace's familiar rendering, e.g.

    {v
    open("/www/index.html", 0) = 3
    read(3, <out:4096B>) = 4096
    close(3) = 0
    time(0) = 1700000000
    write(4, <in:18B>) = 18
    epoll_wait(5, 64, -1) = 1 <out:8B>
    v} *)

type t

val attach : ?limit:int -> Api.t -> Api.t * t
(** [attach api] returns a tracing wrapper of [api] and the trace handle.
    At most [limit] lines are kept (default 10_000); later calls still
    execute but are only counted. *)

val lines : t -> string list
(** Trace lines, oldest first. *)

val calls : t -> int
(** Total calls traced (including those beyond the line limit). *)

val pp : Format.formatter -> t -> unit
(** Print the trace, one call per line. *)

val clear : t -> unit

open Types
module Errno = Varan_syscall.Errno

let normalize ~cwd path =
  let full = if String.length path > 0 && path.[0] = '/' then path else cwd ^ "/" ^ path in
  let parts = String.split_on_char '/' full in
  let push acc = function
    | "" | "." -> acc
    | ".." -> (match acc with [] -> [] | _ :: tl -> tl)
    | comp -> comp :: acc
  in
  List.rev (List.fold_left push [] parts)

let as_dir = function
  | Directory d -> Ok d
  | Regular _ | Dev_null | Dev_zero | Dev_urandom -> Error Errno.ENOTDIR

let root_dir k =
  match k.root with
  | Directory d -> d
  | _ -> assert false

let lookup k ~cwd path =
  let rec walk node = function
    | [] -> Ok node
    | comp :: rest -> (
      match as_dir node with
      | Error e -> Error e
      | Ok d -> (
        match Hashtbl.find_opt d comp with
        | None -> Error Errno.ENOENT
        | Some child -> walk child rest))
  in
  walk k.root (normalize ~cwd path)

let lookup_parent k ~cwd path =
  match List.rev (normalize ~cwd path) with
  | [] -> Error Errno.EINVAL
  | last :: rev_prefix ->
    let prefix = List.rev rev_prefix in
    let rec walk node = function
      | [] -> (
        match as_dir node with Ok d -> Ok (d, last) | Error e -> Error e)
      | comp :: rest -> (
        match as_dir node with
        | Error e -> Error e
        | Ok d -> (
          match Hashtbl.find_opt d comp with
          | None -> Error Errno.ENOENT
          | Some child -> walk child rest))
    in
    walk k.root prefix

let create_file k ~cwd path =
  match lookup_parent k ~cwd path with
  | Error e -> Error e
  | Ok (dir, name) -> (
    match Hashtbl.find_opt dir name with
    | Some (Directory _) -> Error Errno.EISDIR
    | Some existing -> Ok existing
    | None ->
      let node = Regular { content = Bytes.empty } in
      Hashtbl.replace dir name node;
      Ok node)

let mkdir k ~cwd path =
  match lookup_parent k ~cwd path with
  | Error e -> Error e
  | Ok (dir, name) ->
    if Hashtbl.mem dir name then Error Errno.EEXIST
    else begin
      Hashtbl.replace dir name (Directory (Hashtbl.create 8));
      Ok ()
    end

let unlink k ~cwd path =
  match lookup_parent k ~cwd path with
  | Error e -> Error e
  | Ok (dir, name) -> (
    match Hashtbl.find_opt dir name with
    | None -> Error Errno.ENOENT
    | Some (Directory _) -> Error Errno.EISDIR
    | Some _ ->
      Hashtbl.remove dir name;
      Ok ())

let rmdir k ~cwd path =
  match lookup_parent k ~cwd path with
  | Error e -> Error e
  | Ok (dir, name) -> (
    match Hashtbl.find_opt dir name with
    | None -> Error Errno.ENOENT
    | Some (Directory d) ->
      if Hashtbl.length d > 0 then Error Errno.ENOTEMPTY
      else begin
        Hashtbl.remove dir name;
        Ok ()
      end
    | Some _ -> Error Errno.ENOTDIR)

let rename k ~cwd src dst =
  match lookup_parent k ~cwd src with
  | Error e -> Error e
  | Ok (src_dir, src_name) -> (
    match Hashtbl.find_opt src_dir src_name with
    | None -> Error Errno.ENOENT
    | Some node -> (
      match lookup_parent k ~cwd dst with
      | Error e -> Error e
      | Ok (dst_dir, dst_name) ->
        Hashtbl.remove src_dir src_name;
        Hashtbl.replace dst_dir dst_name node;
        Ok ()))

let add_file k path contents =
  let comps = normalize ~cwd:"/" path in
  if comps = [] then invalid_arg "Vfs.add_file: empty path";
  let rec ensure dir = function
    | [] -> assert false
    | [ name ] ->
      Hashtbl.replace dir name (Regular { content = Bytes.of_string contents })
    | comp :: rest -> (
      match Hashtbl.find_opt dir comp with
      | Some (Directory d) -> ensure d rest
      | Some _ -> invalid_arg "Vfs.add_file: component is a file"
      | None ->
        let d = Hashtbl.create 8 in
        Hashtbl.replace dir comp (Directory d);
        ensure d rest)
  in
  ensure (root_dir k) comps

let file_size = function
  | Regular r -> Bytes.length r.content
  | Directory _ | Dev_null | Dev_zero | Dev_urandom -> 0

let read_file k path =
  match lookup k ~cwd:"/" path with
  | Ok (Regular r) -> Some (Bytes.to_string r.content)
  | _ -> None

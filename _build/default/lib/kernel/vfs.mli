(** In-memory filesystem: path resolution and directory operations.

    Paths are UNIX-style; relative paths resolve against a supplied working
    directory. The special device nodes [/dev/null], [/dev/zero] and
    [/dev/urandom] are created by {!Kernel.create}. *)

open Types

val normalize : cwd:string -> string -> string list
(** Absolute component list after resolving [.] and [..]. *)

val lookup : t -> cwd:string -> string -> (node, Varan_syscall.Errno.t) result
(** Resolve a path to a node ([ENOENT]/[ENOTDIR] on failure). *)

val lookup_parent :
  t -> cwd:string -> string ->
  ((string, node) Hashtbl.t * string, Varan_syscall.Errno.t) result
(** Resolve all but the last component to a directory table, returning the
    final name; used by create/unlink/mkdir/rename. *)

val create_file :
  t -> cwd:string -> string -> (node, Varan_syscall.Errno.t) result
(** Create (or return the existing) regular file at the path. *)

val mkdir : t -> cwd:string -> string -> (unit, Varan_syscall.Errno.t) result
val unlink : t -> cwd:string -> string -> (unit, Varan_syscall.Errno.t) result
val rmdir : t -> cwd:string -> string -> (unit, Varan_syscall.Errno.t) result

val rename :
  t -> cwd:string -> string -> string -> (unit, Varan_syscall.Errno.t) result

val add_file : t -> string -> string -> unit
(** [add_file k path contents] populates the filesystem from outside the
    simulation (document roots, config files); intermediate directories are
    created. @raise Invalid_argument on a path ending in [/]. *)

val file_size : node -> int
(** Size of a regular file (0 for devices and directories). *)

val read_file : t -> string -> string option
(** Whole-file read from outside the simulation, for tests. *)

lib/nvx/config.ml: Varan_cycles

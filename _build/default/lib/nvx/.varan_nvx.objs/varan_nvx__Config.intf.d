lib/nvx/config.mli: Varan_cycles

lib/nvx/lockstep.ml: Array Printf Ptrace_model Varan_cycles Varan_kernel Varan_sim Varan_syscall Variant

lib/nvx/lockstep.mli: Varan_cycles Varan_kernel Variant

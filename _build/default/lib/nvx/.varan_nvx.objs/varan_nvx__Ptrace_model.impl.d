lib/nvx/ptrace_model.ml: Bytes Varan_cycles Varan_syscall

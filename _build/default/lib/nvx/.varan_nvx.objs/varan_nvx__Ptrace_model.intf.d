lib/nvx/ptrace_model.mli: Varan_cycles Varan_syscall

lib/nvx/record_replay.ml: Array Buffer Bytes Char Config Int32 Int64 List Printexc Printf Session Syscall_table Varan_cycles Varan_kernel Varan_ringbuf Varan_shmem Varan_sim Varan_syscall Variant

lib/nvx/record_replay.mli: Config Session Varan_cycles Varan_kernel Variant

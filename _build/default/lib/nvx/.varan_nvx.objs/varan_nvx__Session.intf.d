lib/nvx/session.mli: Config Varan_binary Varan_kernel Varan_ringbuf Varan_shmem Variant

lib/nvx/syscall_table.ml: Hashtbl List Varan_syscall

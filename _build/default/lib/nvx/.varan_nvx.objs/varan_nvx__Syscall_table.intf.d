lib/nvx/syscall_table.mli: Varan_syscall

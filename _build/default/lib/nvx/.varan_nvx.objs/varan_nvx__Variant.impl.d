lib/nvx/variant.ml: List Printf Varan_bpf Varan_kernel

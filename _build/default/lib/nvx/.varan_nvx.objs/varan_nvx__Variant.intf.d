lib/nvx/variant.mli: Varan_bpf Varan_kernel

lib/nvx/zygote.ml: Buffer Bytes List Printf String Varan_kernel Varan_sim

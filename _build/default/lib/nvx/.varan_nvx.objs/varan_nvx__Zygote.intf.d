lib/nvx/zygote.mli: Varan_kernel

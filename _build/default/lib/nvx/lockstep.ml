module E = Varan_sim.Engine
module Cond = E.Cond
module K = Varan_kernel.Kernel
module Api = Varan_kernel.Api
module Types = Varan_kernel.Types
module Sysno = Varan_syscall.Sysno
module Args = Varan_syscall.Args
module Cost = Varan_cycles.Cost

exception Lockstep_divergence of string

(* One rendezvous round: every variant arrives with its syscall, the
   executor (variant 0) performs it once, everyone copies the result. *)
type round = {
  mutable call : Sysno.t option;
  mutable arrived : int;
  mutable result : Args.result option;
  mutable taken : int;
}

type barrier = {
  mutable current : round;
  b_cond : Cond.cond;
  expected : unit -> int; (* alive variants *)
}

let fresh_round () = { call = None; arrived = 0; result = None; taken = 0 }

type vst = {
  idx : int;
  variant : Variant.t;
  mutable proc : Types.proc option;
  mutable unit_procs : Types.proc array;
  mutable syscalls : int;
  mutable alive : bool;
}

type t = {
  k : Types.t;
  cost : Cost.t;
  vstates : vst array;
  barriers : barrier array; (* per tuple *)
  mutable rendezvous_count : int;
  mutable divergence_count : int;
}

let alive_count t =
  Array.fold_left (fun n v -> if v.alive then n + 1 else n) 0 t.vstates

(* Per-variant ptrace interception costs, from the documented model. *)
let charge_ptrace_stops t = E.consume (Ptrace_model.per_syscall_overhead t.cost)
let charge_arg_copy t args = E.consume (Ptrace_model.arg_copy_cost t.cost args)

let charge_result_copy t result =
  E.consume (Ptrace_model.result_copy_cost t.cost result)

let rendezvous t vst ~tuple executor_proc sysno args =
  let b = t.barriers.(tuple) in
  let r = b.current in
  (match r.call with
  | None -> r.call <- Some sysno
  | Some expected when Sysno.equal expected sysno -> ()
  | Some expected ->
    t.divergence_count <- t.divergence_count + 1;
    Cond.broadcast b.b_cond;
    raise
      (Lockstep_divergence
         (Printf.sprintf "%s arrived at %s while others are at %s"
            vst.variant.Variant.v_name (Sysno.name sysno) (Sysno.name expected))));
  r.arrived <- r.arrived + 1;
  if r.arrived >= b.expected () then Cond.broadcast b.b_cond
  else
    while r.arrived < b.expected () do
      Cond.wait b.b_cond
    done;
  (* Monitor copies the arguments out of each variant. *)
  charge_arg_copy t args;
  let result =
    if vst.idx = 0 || not t.vstates.(0).alive then begin
      match r.result with
      | Some res -> res
      | None ->
        let res = K.exec t.k executor_proc sysno args in
        r.result <- Some res;
        t.rendezvous_count <- t.rendezvous_count + 1;
        Cond.broadcast b.b_cond;
        res
    end
    else begin
      while r.result = None do
        Cond.wait b.b_cond
      done;
      match r.result with Some res -> res | None -> assert false
    end
  in
  charge_result_copy t result;
  r.taken <- r.taken + 1;
  if r.taken >= b.expected () then begin
    b.current <- fresh_round ();
    Cond.broadcast b.b_cond
  end;
  result

let interposed t vst ~unit_idx proc sysno args =
  vst.syscalls <- vst.syscalls + 1;
  match Sysno.transfer_class sysno with
  | Sysno.Vdso ->
    (* Invisible to ptrace: executed locally by every variant. *)
    K.exec t.k proc sysno args
  | Sysno.Process_local ->
    charge_ptrace_stops t;
    K.exec t.k proc sysno args
  | _ ->
    charge_ptrace_stops t;
    let executor_proc =
      match t.vstates.(0).unit_procs with
      | [||] -> proc
      | procs -> procs.(unit_idx)
    in
    rendezvous t vst ~tuple:unit_idx executor_proc sysno args

let start_variant t vst =
  let program = vst.variant.Variant.program in
  let main_proc = K.new_proc t.k vst.variant.Variant.v_name in
  vst.proc <- Some main_proc;
  vst.unit_procs <-
    Array.init program.Variant.units (fun u ->
        match program.Variant.unit_kind with
        | Variant.Thread -> main_proc
        | Variant.Process ->
          if u = 0 then main_proc
          else
            K.fork_proc t.k main_proc
              (Printf.sprintf "%s.worker%d" vst.variant.Variant.v_name u));
  for u = 0 to program.Variant.units - 1 do
    let proc = vst.unit_procs.(u) in
    let api =
      Api.with_sys proc (fun sysno args ->
          interposed t vst ~unit_idx:u proc sysno args)
    in
    let scale =
      vst.variant.Variant.compute_multiplier_c1000
      * Cost.mem_slowdown_c1000 t.cost
          ~intensity_c1000:vst.variant.Variant.mem_intensity_c1000
          ~variants:(Array.length t.vstates)
      / 1000
    in
    api.Api.compute_scale_c1000 <- scale;
    let tid =
      E.spawn t.k.Types.eng
        ~name:(Printf.sprintf "ls.%s.unit%d" vst.variant.Variant.v_name u)
        (fun () ->
          try program.Variant.body ~unit_idx:u api with
          | E.Killed -> ()
          | Lockstep_divergence _ -> vst.alive <- false
          | _ -> vst.alive <- false)
    in
    K.register_task t.k proc tid
  done

let launch ?(cost = Cost.default) k variants =
  if variants = [] then invalid_arg "Lockstep.launch: no variants";
  let variants = Array.of_list variants in
  let shape = variants.(0).Variant.program in
  let t =
    {
      k;
      cost;
      vstates =
        Array.mapi
          (fun idx variant ->
            { idx; variant; proc = None; unit_procs = [||]; syscalls = 0; alive = true })
          variants;
      barriers = [||];
      rendezvous_count = 0;
      divergence_count = 0;
    }
  in
  let barriers =
    Array.init shape.Variant.units (fun i ->
        {
          current = fresh_round ();
          b_cond = Cond.create (Printf.sprintf "lockstep-barrier%d" i);
          expected = (fun () -> alive_count t);
        })
  in
  let t = { t with barriers } in
  Array.iter (fun vst -> start_variant t vst) t.vstates;
  t

type stats = {
  rendezvous : int;
  per_variant_syscalls : int array;
  divergences : int;
}

let stats t =
  {
    rendezvous = t.rendezvous_count;
    per_variant_syscalls = Array.map (fun v -> v.syscalls) t.vstates;
    divergences = t.divergence_count;
  }

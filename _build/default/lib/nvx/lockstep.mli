(** The ptrace-based lockstep monitor — the prior-work baseline.

    Models the architecture of Mx, Orchestra and Tachyon (§2.2, §7): a
    centralised monitor intercepts every system call of every variant
    through ptrace (two stops per call, register reads/writes, and
    word-by-word user-memory copies), runs the variants in {e lockstep} —
    all must rendezvous at the same syscall before anyone proceeds — and
    executes the call once, copying results back into each variant.

    Two structural properties follow and are what VARAN improves on:
    the centralised monitor is a per-syscall bottleneck, and any
    divergence in the syscall sequence is fatal. Virtual (vDSO) calls are
    {e not} intercepted — ptrace cannot see them (§3.2.1) — so each
    variant executes them locally. *)

type t

exception Lockstep_divergence of string
(** Raised into every variant when they rendezvous on different calls. *)

val launch :
  ?cost:Varan_cycles.Cost.t -> Varan_kernel.Types.t -> Variant.t list -> t
(** Start all variants under the lockstep monitor. The first variant's
    process is the one whose descriptor table backs real execution. *)

type stats = {
  rendezvous : int;  (** syscall rendezvous completed *)
  per_variant_syscalls : int array;
  divergences : int;
}

val stats : t -> stats

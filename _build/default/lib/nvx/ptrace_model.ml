module Cost = Varan_cycles.Cost
module Args = Varan_syscall.Args

let per_syscall_overhead (c : Cost.t) =
  (2 * c.Cost.ptrace_stop) + c.Cost.ptrace_getregs + c.Cost.ptrace_setregs
  + c.Cost.lockstep_rendezvous

let copy_cost (c : Cost.t) ~bytes =
  Cost.copy_cycles ~rate_c100:c.Cost.ptrace_copy_per_byte_c100 bytes

let arg_copy_cost c args = copy_cost c ~bytes:(Args.payload_size args)

let result_copy_cost c (result : Args.result) =
  let bytes =
    match result.Args.out with Some b -> Bytes.length b | None -> 0
  in
  copy_cost c ~bytes

let estimated_server_overhead c ~syscalls_per_request ~avg_payload_bytes
    ~request_cycles =
  let per_call =
    per_syscall_overhead c + copy_cost c ~bytes:avg_payload_bytes
  in
  let extra = syscalls_per_request * per_call in
  float_of_int (request_cycles + extra) /. float_of_int request_cycles

(** The ptrace interception cost model used by the lockstep baseline.

    Quantifies why "ptrace is slow" (§1, §2.1): for each system call of
    each version, execution stops twice (syscall-entry and syscall-exit),
    each stop context-switching to the monitor process and back; the
    monitor reads and writes the tracee's registers, copies argument and
    result buffers word by word through the ptrace interface, and performs
    its own bookkeeping syscalls. The paper attributes up to two orders of
    magnitude of slowdown on I/O-bound applications to exactly these
    costs. *)

val per_syscall_overhead : Varan_cycles.Cost.t -> int
(** Fixed per-syscall, per-variant cost: two stops, register read/write,
    centralised monitor dispatch. *)

val copy_cost : Varan_cycles.Cost.t -> bytes:int -> int
(** Word-by-word user-memory copy through PTRACE_PEEKDATA/POKEDATA (or
    process_vm_readv on newer kernels — still far slower than a shared
    mapping). *)

val arg_copy_cost : Varan_cycles.Cost.t -> Varan_syscall.Args.t -> int
(** Copy-in cost for a call's by-reference arguments. *)

val result_copy_cost : Varan_cycles.Cost.t -> Varan_syscall.Args.result -> int
(** Copy-out cost for a call's result payload. *)

val estimated_server_overhead :
  Varan_cycles.Cost.t ->
  syscalls_per_request:int ->
  avg_payload_bytes:int ->
  request_cycles:int ->
  float
(** Analytic overhead prediction for a server with the given per-request
    profile — used in tests to sanity-check the simulated lockstep
    numbers against the closed form. *)

module Sysno = Varan_syscall.Sysno

type disposition = Stream | Local | Virtual | Unsupported

type t = {
  tname : string;
  entries : (Sysno.t, disposition) Hashtbl.t;
}

let name t = t.tname

let lookup t sysno =
  match Hashtbl.find_opt t.entries sysno with
  | Some d -> d
  | None -> Unsupported

let disposition_of_class (sysno : Sysno.t) =
  match Sysno.transfer_class sysno with
  | Sysno.Process_local -> Local
  | Sysno.Vdso -> Virtual
  | Sysno.By_value | Sysno.Out_buffer | Sysno.In_buffer | Sysno.New_fd
  | Sysno.Process_control ->
    Stream

let default_table tname =
  let entries = Hashtbl.create 128 in
  List.iter
    (fun sysno -> Hashtbl.replace entries sysno (disposition_of_class sysno))
    Sysno.all;
  { tname; entries }

let override t changes =
  let entries = Hashtbl.copy t.entries in
  List.iter (fun (sysno, d) -> Hashtbl.replace entries sysno d) changes;
  { tname = t.tname ^ "+overrides"; entries }

let leader = default_table "leader"
let follower = default_table "follower"

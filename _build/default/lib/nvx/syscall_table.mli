(** Internal system call tables (§3.2).

    The syscall entry point consults a per-variant table to find the
    handler for each call; the only difference between leader and follower
    is which table is installed, and replacing a table is how a follower
    is promoted during failover. Tables map each call to a disposition;
    the monitor interprets the disposition according to its role. *)

type disposition =
  | Stream
      (** leader: execute and record; follower: replay from the ring *)
  | Local
      (** process-local calls (mmap, brk, …): every variant executes its
          own, nothing is streamed *)
  | Virtual
      (** vDSO calls: intercepted via entry-point patching; streamed with
          the cheaper value-only event handling (§3.2.1) *)
  | Unsupported
      (** no handler installed — the prototype "emits an error message
          when an unhandled system call is encountered" *)

type t

val name : t -> string
val lookup : t -> Varan_syscall.Sysno.t -> disposition

val default_table : string -> t
(** Dispositions derived from each call's transfer class, covering all
    implemented syscalls. *)

val override : t -> (Varan_syscall.Sysno.t * disposition) list -> t
(** A copy with some entries replaced — the equivalent of the prototype's
    template-generated custom tables. *)

val leader : t
val follower : t
(** The two stock tables. Dispositions are identical — the {e role}
    interprets them — but they are distinct values so promotion can be
    observed in tests and stats. *)

type unit_kind = Thread | Process

type program = {
  units : int;
  unit_kind : unit_kind;
  body : unit_idx:int -> Varan_kernel.Api.t -> unit;
}

type code_profile = {
  code_bytes : int;
  syscall_share : float;
  code_seed : int;
}

type t = {
  v_name : string;
  program : program;
  profile : code_profile;
  compute_multiplier_c1000 : int;
  mem_intensity_c1000 : int;
  rules : Varan_bpf.Insn.t array option;
}

let default_profile = { code_bytes = 30_000; syscall_share = 0.02; code_seed = 7 }

let single ?name:_ body =
  { units = 1; unit_kind = Thread; body = (fun ~unit_idx:_ api -> body api) }

let make ?(profile = default_profile) ?(compute_multiplier_c1000 = 1000)
    ?(mem_intensity_c1000 = 300) ?rules v_name program =
  if program.units < 1 then invalid_arg "Variant.make: units must be >= 1";
  {
    v_name;
    program;
    profile;
    compute_multiplier_c1000;
    mem_intensity_c1000;
    rules;
  }

let replicas n v =
  List.init n (fun i -> { v with v_name = Printf.sprintf "%s#%d" v.v_name i })

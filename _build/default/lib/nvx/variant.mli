(** Variant (version) descriptors.

    A variant is one of the N program versions to run in parallel: its
    executable (the program body and a synthetic text-segment profile for
    the binary rewriter), an optional instrumentation cost multiplier
    (sanitized builds, §5.3), an optional BPF rewrite-rule program for
    divergences this variant is allowed to exhibit (§3.4), and a memory
    intensity driving the machine-level contention model (§4.3, §6). *)

type unit_kind =
  | Thread
      (** units share the descriptor table and one ring, ordered by the
          variant's Lamport clock (memcached, redis) *)
  | Process
      (** units are forked workers, each tuple with its own ring buffer
          (nginx) (§3.3.3) *)

type program = {
  units : int;  (** concurrent execution units (≥ 1); unit 0 is main *)
  unit_kind : unit_kind;
  body : unit_idx:int -> Varan_kernel.Api.t -> unit;
}

type code_profile = {
  code_bytes : int;  (** approximate text-segment size *)
  syscall_share : float;  (** fraction of instructions that are syscalls *)
  code_seed : int;
}

type t = {
  v_name : string;
  program : program;
  profile : code_profile;
  compute_multiplier_c1000 : int;
      (** instrumentation slowdown (ASan ≈ 2000, MSan ≈ 3000, TSan ≈
          5000–15000; §5.3); 1000 = uninstrumented *)
  mem_intensity_c1000 : int;
      (** how strongly this workload stresses the memory system, feeding
          {!Varan_cycles.Cost.mem_slowdown_c1000} *)
  rules : Varan_bpf.Insn.t array option;
      (** divergence rewrite rules applied when this variant is a
          follower *)
}

val single : ?name:string -> (Varan_kernel.Api.t -> unit) -> program
(** A single-threaded program. *)

val make :
  ?profile:code_profile ->
  ?compute_multiplier_c1000:int ->
  ?mem_intensity_c1000:int ->
  ?rules:Varan_bpf.Insn.t array ->
  string ->
  program ->
  t

val default_profile : code_profile

val replicas : int -> t -> t list
(** [replicas n v] is [n] copies of the same version (the paper's
    performance experiments run multiple instances of one version),
    distinguished by numbered names. *)

lib/ringbuf/event.ml: Array Bytes Format Obj Printf Varan_shmem

lib/ringbuf/event.mli: Bytes Format Obj Varan_shmem

lib/ringbuf/ring.ml: Array List Printf Varan_sim

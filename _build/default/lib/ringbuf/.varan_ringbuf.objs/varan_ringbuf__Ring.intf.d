lib/ringbuf/ring.mli:

type kind = Ev_syscall | Ev_signal | Ev_fork | Ev_exit

type t = {
  kind : kind;
  sysno : int;
  tid : int;
  args : int array;
  ret : int;
  clock : int;
  payload : Varan_shmem.Pool.chunk option;
  payload_len : int;
  inline_out : Bytes.t option;
  grant : Obj.t option;
}

let event_bytes = 64

let max_inline_bytes = 48

let make ?(kind = Ev_syscall) ?(tid = 0) ?(args = [||]) ?(ret = 0) ?payload
    ?(payload_len = 0) ?inline_out ?grant ~clock sysno =
  if Array.length args > 6 then
    invalid_arg "Event.make: more than six register arguments";
  (match inline_out with
  | Some b when Bytes.length b > max_inline_bytes ->
    invalid_arg "Event.make: inline payload exceeds the event size"
  | _ -> ());
  { kind; sysno; tid; args; ret; clock; payload; payload_len; inline_out; grant }

let fits_inline e = e.payload = None

let kind_name = function
  | Ev_syscall -> "syscall"
  | Ev_signal -> "signal"
  | Ev_fork -> "fork"
  | Ev_exit -> "exit"

let pp ppf e =
  Format.fprintf ppf "[%s nr=%d ret=%d clk=%d%s]" (kind_name e.kind) e.sysno
    e.ret e.clock
    (match e.payload with
    | None -> ""
    | Some _ -> Printf.sprintf " shm:%dB" e.payload_len)

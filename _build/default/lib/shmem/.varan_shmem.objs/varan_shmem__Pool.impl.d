lib/shmem/pool.ml: Array Bytes

lib/shmem/pool.mli: Bytes

lib/sim/engine.ml: Array Effect Hashtbl Int64 List Printf Queue

lib/sim/engine.mli:

lib/syscall/args.ml: Array Bytes Errno Format Obj Printf String

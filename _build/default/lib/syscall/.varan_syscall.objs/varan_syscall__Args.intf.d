lib/syscall/args.mli: Bytes Errno Format Obj

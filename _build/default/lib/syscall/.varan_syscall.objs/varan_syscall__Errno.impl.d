lib/syscall/errno.ml: Format Hashtbl List

lib/syscall/errno.mli: Format

lib/syscall/sysno.ml: Format Hashtbl List Stdlib

lib/syscall/sysno.mli: Format

type arg =
  | Int of int
  | Str of string
  | Buf_in of Bytes.t
  | Buf_out of int

type t = arg array

type result = {
  ret : int;
  out : Bytes.t option;
  fd_object : Obj.t option;
}

let ok ret = { ret; out = None; fd_object = None }
let ok_out ret out = { ret; out = Some out; fd_object = None }
let err e = { ret = -Errno.to_int e; out = None; fd_object = None }
let is_error r = r.ret < 0
let errno_of r = if r.ret < 0 then Errno.of_int (-r.ret) else None

let bad i what = invalid_arg (Printf.sprintf "Args: argument %d is not %s" i what)

let int_arg (a : t) i =
  match a.(i) with Int n -> n | _ -> bad i "an Int"

let str_arg (a : t) i =
  match a.(i) with Str s -> s | _ -> bad i "a Str"

let buf_in_arg (a : t) i =
  match a.(i) with Buf_in b -> b | _ -> bad i "a Buf_in"

let buf_out_arg (a : t) i =
  match a.(i) with Buf_out n -> n | _ -> bad i "a Buf_out"

let payload_size (a : t) =
  Array.fold_left
    (fun acc arg ->
      match arg with
      | Str s -> acc + String.length s + 1
      | Buf_in b -> acc + Bytes.length b
      | Int _ | Buf_out _ -> acc)
    0 a

let out_size (a : t) =
  Array.fold_left
    (fun acc arg -> match arg with Buf_out n -> acc + n | _ -> acc)
    0 a

let pp_arg ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Str s -> Format.fprintf ppf "%S" s
  | Buf_in b -> Format.fprintf ppf "<in:%dB>" (Bytes.length b)
  | Buf_out n -> Format.fprintf ppf "<out:%dB>" n

let pp ppf (a : t) =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_arg)
    (Array.to_seq a)

let pp_result ppf r =
  match errno_of r with
  | Some e -> Format.fprintf ppf "-%s" (Errno.name e)
  | None -> (
    match r.out with
    | None -> Format.fprintf ppf "%d" r.ret
    | Some b -> Format.fprintf ppf "%d <out:%dB>" r.ret (Bytes.length b))

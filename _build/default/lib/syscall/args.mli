(** System call arguments and results, as seen by the interposition layer.

    The representation mirrors what a syscall-level monitor can observe on
    x86-64: up to six register-sized values, plus the memory they point at
    (paths, input buffers) and the space the kernel will fill (output
    buffers). The NVX event streamer uses {!Sysno.transfer_class} to decide
    which parts must travel in the ring-buffer event, which need a
    shared-memory copy, and which need the file-descriptor data channel. *)

type arg =
  | Int of int  (** register-sized immediate (fd numbers, flags, lengths) *)
  | Str of string  (** NUL-terminated user memory, e.g. a path *)
  | Buf_in of Bytes.t  (** caller buffer the kernel only reads *)
  | Buf_out of int  (** caller buffer of given length the kernel fills *)

type t = arg array

type result = {
  ret : int;  (** return value, or [-errno] on failure, Linux-style *)
  out : Bytes.t option;  (** bytes the kernel produced into an out-buffer *)
  fd_object : Obj.t option;
      (** for [New_fd] calls under NVX: an opaque handle to the kernel-side
          open-file description, so the monitor can duplicate it into
          follower fd tables over the data channel. Opaque here to keep
          this library independent of the kernel. *)
}

val ok : int -> result
(** A plain success result carrying only a return value. *)

val ok_out : int -> Bytes.t -> result
(** Success with an out-buffer payload. *)

val err : Errno.t -> result
(** Failure result: [ret] is the negated errno. *)

val is_error : result -> bool
val errno_of : result -> Errno.t option

val int_arg : t -> int -> int
(** [int_arg args i] extracts argument [i] as an integer.
    @raise Invalid_argument if it is not an [Int]. *)

val str_arg : t -> int -> string
val buf_in_arg : t -> int -> Bytes.t
val buf_out_arg : t -> int -> int

val payload_size : t -> int
(** Total bytes of by-reference input payload ([Str] and [Buf_in]); used by
    the cost model for copy charges. *)

val out_size : t -> int
(** Total bytes of requested output buffer space. *)

val pp : Format.formatter -> t -> unit
val pp_result : Format.formatter -> result -> unit

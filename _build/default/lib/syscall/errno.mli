(** Error numbers returned by the simulated kernel.

    Values and names follow Linux/x86-64. [ERESTARTSYS] is the in-kernel
    "restart this call" code that VARAN's syscall entry point understands
    for transparent failover (§3.2, §5.1). *)

type t =
  | EPERM
  | ENOENT
  | EINTR
  | EIO
  | EBADF
  | EAGAIN
  | ENOMEM
  | EACCES
  | EFAULT
  | EBUSY
  | EEXIST
  | ENOTDIR
  | EISDIR
  | EINVAL
  | ENFILE
  | EMFILE
  | ENOSPC
  | ESPIPE
  | EROFS
  | EPIPE
  | ENOSYS
  | ENOTEMPTY
  | ENOTSOCK
  | EDESTADDRREQ
  | EMSGSIZE
  | EPROTONOSUPPORT
  | EOPNOTSUPP
  | EADDRINUSE
  | EADDRNOTAVAIL
  | ENETUNREACH
  | ECONNABORTED
  | ECONNRESET
  | ENOBUFS
  | EISCONN
  | ENOTCONN
  | ETIMEDOUT
  | ECONNREFUSED
  | EINPROGRESS
  | ERESTARTSYS

val to_int : t -> int
(** Positive errno value (ERESTARTSYS = 512, as in the kernel). *)

val of_int : int -> t option
val name : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

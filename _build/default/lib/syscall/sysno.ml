type t =
  | Read
  | Write
  | Open
  | Close
  | Stat
  | Fstat
  | Lstat
  | Poll
  | Lseek
  | Mmap
  | Mprotect
  | Munmap
  | Brk
  | Rt_sigaction
  | Rt_sigprocmask
  | Rt_sigreturn
  | Ioctl
  | Pread64
  | Pwrite64
  | Readv
  | Writev
  | Access
  | Pipe
  | Select
  | Sched_yield
  | Madvise
  | Dup
  | Dup2
  | Pause
  | Nanosleep
  | Getpid
  | Sendfile
  | Socket
  | Connect
  | Accept
  | Sendto
  | Recvfrom
  | Sendmsg
  | Recvmsg
  | Shutdown
  | Bind
  | Listen
  | Getsockname
  | Getpeername
  | Socketpair
  | Setsockopt
  | Getsockopt
  | Clone
  | Fork
  | Execve
  | Exit
  | Wait4
  | Kill
  | Uname
  | Fcntl
  | Flock
  | Fsync
  | Fdatasync
  | Ftruncate
  | Getdents
  | Getcwd
  | Chdir
  | Rename
  | Mkdir
  | Rmdir
  | Unlink
  | Readlink
  | Chmod
  | Umask
  | Gettimeofday
  | Getrlimit
  | Getrusage
  | Times
  | Getuid
  | Getgid
  | Setuid
  | Setgid
  | Geteuid
  | Getegid
  | Getppid
  | Setsid
  | Time
  | Futex
  | Epoll_create
  | Epoll_wait
  | Epoll_ctl
  | Openat
  | Exit_group
  | Accept4
  | Clock_gettime
  | Getcpu
  | Getrandom

type transfer_class =
  | By_value
  | Out_buffer
  | In_buffer
  | New_fd
  | Vdso
  | Process_local
  | Process_control

(* x86-64 Linux syscall numbers. *)
let to_int = function
  | Read -> 0
  | Write -> 1
  | Open -> 2
  | Close -> 3
  | Stat -> 4
  | Fstat -> 5
  | Lstat -> 6
  | Poll -> 7
  | Lseek -> 8
  | Mmap -> 9
  | Mprotect -> 10
  | Munmap -> 11
  | Brk -> 12
  | Rt_sigaction -> 13
  | Rt_sigprocmask -> 14
  | Rt_sigreturn -> 15
  | Ioctl -> 16
  | Pread64 -> 17
  | Pwrite64 -> 18
  | Readv -> 19
  | Writev -> 20
  | Access -> 21
  | Pipe -> 22
  | Select -> 23
  | Sched_yield -> 24
  | Madvise -> 28
  | Dup -> 32
  | Dup2 -> 33
  | Pause -> 34
  | Nanosleep -> 35
  | Getpid -> 39
  | Sendfile -> 40
  | Socket -> 41
  | Connect -> 42
  | Accept -> 43
  | Sendto -> 44
  | Recvfrom -> 45
  | Sendmsg -> 46
  | Recvmsg -> 47
  | Shutdown -> 48
  | Bind -> 49
  | Listen -> 50
  | Getsockname -> 51
  | Getpeername -> 52
  | Socketpair -> 53
  | Setsockopt -> 54
  | Getsockopt -> 55
  | Clone -> 56
  | Fork -> 57
  | Execve -> 59
  | Exit -> 60
  | Wait4 -> 61
  | Kill -> 62
  | Uname -> 63
  | Fcntl -> 72
  | Flock -> 73
  | Fsync -> 74
  | Fdatasync -> 75
  | Ftruncate -> 77
  | Getdents -> 78
  | Getcwd -> 79
  | Chdir -> 80
  | Rename -> 82
  | Mkdir -> 83
  | Rmdir -> 84
  | Unlink -> 87
  | Readlink -> 89
  | Chmod -> 90
  | Umask -> 95
  | Gettimeofday -> 96
  | Getrlimit -> 97
  | Getrusage -> 98
  | Times -> 100
  | Getuid -> 102
  | Getgid -> 104
  | Setuid -> 105
  | Setgid -> 106
  | Geteuid -> 107
  | Getegid -> 108
  | Getppid -> 110
  | Setsid -> 112
  | Time -> 201
  | Futex -> 202
  | Epoll_create -> 213
  | Epoll_wait -> 232
  | Epoll_ctl -> 233
  | Openat -> 257
  | Exit_group -> 231
  | Accept4 -> 288
  | Clock_gettime -> 228
  | Getcpu -> 309
  | Getrandom -> 318

let all =
  [
    Read; Write; Open; Close; Stat; Fstat; Lstat; Poll; Lseek; Mmap; Mprotect;
    Munmap; Brk; Rt_sigaction; Rt_sigprocmask; Rt_sigreturn; Ioctl; Pread64;
    Pwrite64; Readv; Writev; Access; Pipe; Select; Sched_yield; Madvise; Dup;
    Dup2; Pause; Nanosleep; Getpid; Sendfile; Socket; Connect; Accept; Sendto;
    Recvfrom; Sendmsg; Recvmsg; Shutdown; Bind; Listen; Getsockname;
    Getpeername; Socketpair; Setsockopt; Getsockopt; Clone; Fork; Execve;
    Exit; Wait4; Kill; Uname; Fcntl; Flock; Fsync; Fdatasync; Ftruncate;
    Getdents; Getcwd; Chdir; Rename; Mkdir; Rmdir; Unlink; Readlink; Chmod;
    Umask; Gettimeofday; Getrlimit; Getrusage; Times; Getuid; Getgid; Setuid;
    Setgid; Geteuid; Getegid; Getppid; Setsid; Time; Futex; Epoll_create;
    Epoll_wait; Epoll_ctl; Openat; Exit_group; Accept4; Clock_gettime; Getcpu;
    Getrandom;
  ]
  |> List.sort (fun a b -> Stdlib.compare (to_int a) (to_int b))

let of_int_table =
  let h = Hashtbl.create 128 in
  List.iter (fun s -> Hashtbl.replace h (to_int s) s) all;
  h

let of_int n = Hashtbl.find_opt of_int_table n

let name = function
  | Read -> "read"
  | Write -> "write"
  | Open -> "open"
  | Close -> "close"
  | Stat -> "stat"
  | Fstat -> "fstat"
  | Lstat -> "lstat"
  | Poll -> "poll"
  | Lseek -> "lseek"
  | Mmap -> "mmap"
  | Mprotect -> "mprotect"
  | Munmap -> "munmap"
  | Brk -> "brk"
  | Rt_sigaction -> "rt_sigaction"
  | Rt_sigprocmask -> "rt_sigprocmask"
  | Rt_sigreturn -> "rt_sigreturn"
  | Ioctl -> "ioctl"
  | Pread64 -> "pread64"
  | Pwrite64 -> "pwrite64"
  | Readv -> "readv"
  | Writev -> "writev"
  | Access -> "access"
  | Pipe -> "pipe"
  | Select -> "select"
  | Sched_yield -> "sched_yield"
  | Madvise -> "madvise"
  | Dup -> "dup"
  | Dup2 -> "dup2"
  | Pause -> "pause"
  | Nanosleep -> "nanosleep"
  | Getpid -> "getpid"
  | Sendfile -> "sendfile"
  | Socket -> "socket"
  | Connect -> "connect"
  | Accept -> "accept"
  | Sendto -> "sendto"
  | Recvfrom -> "recvfrom"
  | Sendmsg -> "sendmsg"
  | Recvmsg -> "recvmsg"
  | Shutdown -> "shutdown"
  | Bind -> "bind"
  | Listen -> "listen"
  | Getsockname -> "getsockname"
  | Getpeername -> "getpeername"
  | Socketpair -> "socketpair"
  | Setsockopt -> "setsockopt"
  | Getsockopt -> "getsockopt"
  | Clone -> "clone"
  | Fork -> "fork"
  | Execve -> "execve"
  | Exit -> "exit"
  | Wait4 -> "wait4"
  | Kill -> "kill"
  | Uname -> "uname"
  | Fcntl -> "fcntl"
  | Flock -> "flock"
  | Fsync -> "fsync"
  | Fdatasync -> "fdatasync"
  | Ftruncate -> "ftruncate"
  | Getdents -> "getdents"
  | Getcwd -> "getcwd"
  | Chdir -> "chdir"
  | Rename -> "rename"
  | Mkdir -> "mkdir"
  | Rmdir -> "rmdir"
  | Unlink -> "unlink"
  | Readlink -> "readlink"
  | Chmod -> "chmod"
  | Umask -> "umask"
  | Gettimeofday -> "gettimeofday"
  | Getrlimit -> "getrlimit"
  | Getrusage -> "getrusage"
  | Times -> "times"
  | Getuid -> "getuid"
  | Getgid -> "getgid"
  | Setuid -> "setuid"
  | Setgid -> "setgid"
  | Geteuid -> "geteuid"
  | Getegid -> "getegid"
  | Getppid -> "getppid"
  | Setsid -> "setsid"
  | Time -> "time"
  | Futex -> "futex"
  | Epoll_create -> "epoll_create"
  | Epoll_wait -> "epoll_wait"
  | Epoll_ctl -> "epoll_ctl"
  | Openat -> "openat"
  | Exit_group -> "exit_group"
  | Accept4 -> "accept4"
  | Clock_gettime -> "clock_gettime"
  | Getcpu -> "getcpu"
  | Getrandom -> "getrandom"

let of_name_table =
  let h = Hashtbl.create 128 in
  List.iter (fun s -> Hashtbl.replace h (name s) s) all;
  h

let of_name s = Hashtbl.find_opt of_name_table s

let transfer_class = function
  | Read | Pread64 | Readv | Recvfrom | Recvmsg | Getdents | Getcwd
  | Readlink | Stat | Fstat | Lstat | Poll | Select | Epoll_wait | Uname
  | Getrlimit | Getrusage | Times | Wait4 | Getsockname | Getpeername
  | Getsockopt | Getrandom ->
    Out_buffer
  | Write | Pwrite64 | Writev | Sendto | Sendmsg | Sendfile | Access | Chdir
  | Rename | Mkdir | Rmdir | Unlink | Chmod | Setsockopt | Bind | Connect
  | Ioctl ->
    In_buffer
  | Open | Openat | Socket | Accept | Accept4 | Dup | Dup2 | Pipe
  | Socketpair | Epoll_create ->
    New_fd
  | Time | Gettimeofday | Clock_gettime | Getcpu -> Vdso
  | Mmap | Mprotect | Munmap | Brk | Madvise | Sched_yield -> Process_local
  | Clone | Fork | Execve | Exit | Exit_group | Kill | Rt_sigaction
  | Rt_sigprocmask | Rt_sigreturn | Pause ->
    Process_control
  | Close | Lseek | Shutdown | Listen | Fcntl | Flock | Fsync | Fdatasync
  | Ftruncate | Umask | Getpid | Getppid | Getuid | Getgid | Setuid | Setgid
  | Geteuid | Getegid | Setsid | Nanosleep | Futex | Epoll_ctl ->
    By_value

let is_blocking = function
  | Read | Recvfrom | Recvmsg | Accept | Accept4 | Epoll_wait | Poll | Select
  | Wait4 | Futex | Nanosleep | Pause ->
    true
  | _ -> false

let pp ppf s = Format.pp_print_string ppf (name s)
let compare a b = Stdlib.compare (to_int a) (to_int b)
let equal a b = to_int a = to_int b

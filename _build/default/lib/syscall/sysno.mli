(** System call numbers and classification.

    VARAN must understand system call {e semantics} in order to transfer
    arguments and results between the leader and its followers (§3.3): a
    call whose result fits in registers can travel inside a single ring
    buffer event, an out-buffer call needs a shared-memory copy, a call
    returning a file descriptor needs the UNIX-socket data channel, and
    virtual system calls (vDSO) never enter the kernel at all.

    The numbering follows the x86-64 Linux syscall table; the paper's
    prototype implements 86 calls ("all the system calls encountered across
    our benchmarks") and we cover a comparable set. *)

type t =
  | Read
  | Write
  | Open
  | Close
  | Stat
  | Fstat
  | Lstat
  | Poll
  | Lseek
  | Mmap
  | Mprotect
  | Munmap
  | Brk
  | Rt_sigaction
  | Rt_sigprocmask
  | Rt_sigreturn
  | Ioctl
  | Pread64
  | Pwrite64
  | Readv
  | Writev
  | Access
  | Pipe
  | Select
  | Sched_yield
  | Madvise
  | Dup
  | Dup2
  | Pause
  | Nanosleep
  | Getpid
  | Sendfile
  | Socket
  | Connect
  | Accept
  | Sendto
  | Recvfrom
  | Sendmsg
  | Recvmsg
  | Shutdown
  | Bind
  | Listen
  | Getsockname
  | Getpeername
  | Socketpair
  | Setsockopt
  | Getsockopt
  | Clone
  | Fork
  | Execve
  | Exit
  | Wait4
  | Kill
  | Uname
  | Fcntl
  | Flock
  | Fsync
  | Fdatasync
  | Ftruncate
  | Getdents
  | Getcwd
  | Chdir
  | Rename
  | Mkdir
  | Rmdir
  | Unlink
  | Readlink
  | Chmod
  | Umask
  | Gettimeofday
  | Getrlimit
  | Getrusage
  | Times
  | Getuid
  | Getgid
  | Setuid
  | Setgid
  | Geteuid
  | Getegid
  | Getppid
  | Setsid
  | Time
  | Futex
  | Epoll_create
  | Epoll_wait
  | Epoll_ctl
  | Openat
  | Exit_group
  | Accept4
  | Clock_gettime
  | Getcpu
  | Getrandom

(** How a call's arguments and results travel between variants. *)
type transfer_class =
  | By_value
      (** All arguments and the result fit in the 64-byte event (up to six
          8-byte register arguments, §3.3.1): e.g. [close], [lseek]. *)
  | Out_buffer
      (** The kernel writes into a caller buffer whose contents must be
          copied to followers via shared memory: e.g. [read], [recvfrom]. *)
  | In_buffer
      (** The caller passes a buffer the kernel only reads; followers need
          just the result value: e.g. [write], [sendto]. *)
  | New_fd
      (** The call creates a file descriptor that must be duplicated into
          every follower over the data channel (§3.3.2): e.g. [open],
          [accept], [socket]. *)
  | Vdso
      (** Virtual system call implemented in user space via the vDSO
          segment (§3.2.1): [time], [gettimeofday], [clock_gettime],
          [getcpu]. *)
  | Process_local
      (** Executed by {e every} variant rather than replayed, because it
          only affects process-local state: e.g. [mmap], [brk],
          [mprotect]. *)
  | Process_control
      (** Fork/clone/exit/signal management: streamed as dedicated event
          kinds rather than plain syscall events (§2.2). *)

val to_int : t -> int
(** The x86-64 Linux syscall number. *)

val of_int : int -> t option

val name : t -> string
(** Lower-case name as it appears in syscall tables, e.g. ["epoll_wait"]. *)

val of_name : string -> t option

val transfer_class : t -> transfer_class

val all : t list
(** Every implemented syscall, in ascending number order. *)

val is_blocking : t -> bool
(** Calls that may block waiting for external input (used by the waitlock
    machinery, §3.3.1): [read]/[recvfrom]/[accept]/[epoll_wait]/[poll]/
    [select]/[wait4]/[futex]/[nanosleep]/[pause]. *)

val pp : Format.formatter -> t -> unit

val compare : t -> t -> int

val equal : t -> t -> bool

lib/util/prng.mli:

lib/util/tablefmt.mli:

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g =
  let s = next_int64 g in
  { state = s }

let copy g = { state = g.state }

let int g bound =
  assert (bound > 0);
  (* Keep 62 bits so the value fits OCaml's 63-bit int non-negatively. *)
  let r = Int64.to_int (Int64.logand (next_int64 g) 0x3FFF_FFFF_FFFF_FFFFL) in
  r mod bound

let int_in g lo hi =
  assert (lo <= hi);
  lo + int g (hi - lo + 1)

let float g bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  (* 53 random bits scaled into [0,1) *)
  r /. 9007199254740992.0 *. bound

let bool g = Int64.logand (next_int64 g) 1L = 1L

let exponential g mean =
  let u = float g 1.0 in
  (* Avoid log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  assert (Array.length a > 0);
  a.(int g (Array.length a))

(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows through explicit generator values
    seeded by the caller, so that every experiment is reproducible bit for
    bit. The implementation is SplitMix64, which has good statistical
    quality, a tiny state and supports cheap stream splitting. *)

type t
(** A mutable generator. Generators are cheap; split rather than share. *)

val create : int -> t
(** [create seed] makes a fresh generator from a seed. Distinct seeds give
    independent-looking streams. *)

val split : t -> t
(** [split g] derives a new generator from [g], advancing [g]. The two
    streams are statistically independent. *)

val copy : t -> t
(** [copy g] duplicates the current state (the copies then evolve
    separately — mostly useful in tests). *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> float -> float
(** [exponential g mean] samples an exponential distribution with the given
    mean; used for inter-arrival times in load generators. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly pick an element. Requires a non-empty array. *)

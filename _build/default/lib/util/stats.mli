(** Small statistics helpers used by the benchmark harness and the load
    generators: summary statistics over float samples. *)

val mean : float list -> float
(** Arithmetic mean. Requires a non-empty list. *)

val median : float list -> float
(** Median (average of the two middle elements for even lengths).
    Requires a non-empty list. *)

val percentile : float -> float list -> float
(** [percentile p samples] with [p] in [\[0,100\]], nearest-rank method.
    Requires a non-empty list. *)

val stddev : float list -> float
(** Population standard deviation. Requires a non-empty list. *)

val min_max : float list -> float * float
(** Smallest and largest sample. Requires a non-empty list. *)

type summary = {
  n : int;
  mean : float;
  median : float;
  stddev : float;
  min : float;
  max : float;
  p95 : float;
  p99 : float;
}
(** One-shot summary of a sample set. *)

val summarize : float list -> summary
(** Compute all summary fields in one pass over a sorted copy.
    Requires a non-empty list. *)

val pp_summary : Format.formatter -> summary -> unit

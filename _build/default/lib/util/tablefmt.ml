type align = Left | Right

type row = Cells of string list | Rule

type t = {
  title : string option;
  header : string list;
  aligns : align array;
  mutable rows : row list; (* reversed *)
}

let create ?title columns =
  {
    title;
    header = List.map fst columns;
    aligns = Array.of_list (List.map snd columns);
    rows = [];
  }

let ncols t = List.length t.header

let add_row t cells =
  let n = List.length cells in
  if n > ncols t then invalid_arg "Tablefmt.add_row: too many cells";
  let padded = cells @ List.init (ncols t - n) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.header) in
  let update_widths = function
    | Rule -> ()
    | Cells cs ->
      List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cs
  in
  List.iter update_widths rows;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let emit_cells ?(aligns = t.aligns) cs =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad aligns.(i) widths.(i) c))
      cs;
    Buffer.add_char buf '\n'
  in
  let total_width =
    Array.fold_left ( + ) 0 widths + (2 * (Array.length widths - 1))
  in
  let emit_rule () =
    Buffer.add_string buf (String.make total_width '-');
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | None -> ()
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n');
  let header_aligns = Array.make (ncols t) Left in
  emit_cells ~aligns:header_aligns t.header;
  emit_rule ();
  List.iter (function Rule -> emit_rule () | Cells cs -> emit_cells cs) rows;
  Buffer.contents buf

let csv_cell c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then begin
    let buf = Buffer.create (String.length c + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun ch ->
        if ch = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf ch)
      c;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else c

let to_csv t =
  let buf = Buffer.create 512 in
  let emit cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  emit t.header;
  List.iter
    (function Rule -> () | Cells cs -> emit cs)
    (List.rev t.rows);
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let ratio r = Printf.sprintf "%.2fx" r
let pct p = Printf.sprintf "%.1f%%" (p *. 100.0)

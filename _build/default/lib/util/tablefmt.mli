(** Plain-text table rendering for the benchmark harness.

    The harness prints one table per paper table/figure; this module keeps
    the layout logic (column widths, alignment, rules) in one place. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given header cells and
    per-column alignment. *)

val add_row : t -> string list -> unit
(** Append a data row. Rows shorter than the header are padded with empty
    cells; longer rows raise [Invalid_argument]. *)

val add_rule : t -> unit
(** Append a horizontal rule (drawn as dashes). *)

val render : t -> string
(** Render to a string, ready for [print_string]. *)

val to_csv : t -> string
(** RFC-4180-style CSV: the header row then every data row (rules are
    skipped); cells containing commas, quotes or newlines are quoted. *)

val print : t -> unit
(** [render] then print to stdout with a trailing newline. *)

val ratio : float -> string
(** Format an overhead ratio the way the paper does: ["1.52x"]. *)

val pct : float -> string
(** Format an overhead as a percentage: 0.113 becomes ["11.3%"]. *)

lib/vclock/lamport.ml:

lib/vclock/lamport.mli:

type t = { mutable value : int }

let create () = { value = 0 }
let current t = t.value

let tick t =
  t.value <- t.value + 1;
  t.value

let try_advance t stamp =
  if t.value = stamp - 1 then begin
    t.value <- stamp;
    true
  end
  else false

let force t v = t.value <- v

(** Lamport clocks for multi-threaded event ordering (§3.3.3).

    Each variant has one internal clock shared by all of its threads. A
    leader thread increments the variant clock when it writes an event to
    its ring and attaches the new value as the event's timestamp. A
    follower thread may only process an event when its variant clock has
    reached the event's predecessor — i.e. [current clock = timestamp - 1]
    — which enforces the leader's happens-before order across the
    follower's threads and prevents the divergence of Figure 3. *)

type t

val create : unit -> t
(** Clock at 0. *)

val current : t -> int

val tick : t -> int
(** Leader side: increment and return the new value (the timestamp to
    attach to the event being published). *)

val try_advance : t -> int -> bool
(** Follower side: [try_advance t stamp] succeeds (and bumps the clock to
    [stamp]) iff [current t = stamp - 1]; otherwise the caller must wait
    for the sibling thread that owns the earlier event. *)

val force : t -> int -> unit
(** Set the clock outright — used when a follower is promoted to leader
    and must adopt the stream position (§3.3.2). *)

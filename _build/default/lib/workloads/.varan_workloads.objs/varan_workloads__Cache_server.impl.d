lib/workloads/cache_server.ml: Api Bytes Hashtbl Printf Server_core String Varan_kernel

lib/workloads/cache_server.mli: Api Bytes Varan_kernel

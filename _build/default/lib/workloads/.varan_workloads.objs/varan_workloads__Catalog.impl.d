lib/workloads/catalog.ml: Bytes Cache_server Clients Http_server Kv_server Printf Queue_server String Varan_kernel Varan_nvx Varan_util Workload

lib/workloads/clients.ml: Api Bytes Int64 Printf Proto Varan_cycles Varan_kernel Varan_sim Varan_syscall Varan_util

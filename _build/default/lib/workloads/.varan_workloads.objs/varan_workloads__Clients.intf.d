lib/workloads/clients.mli: Bytes Types Varan_cycles Varan_kernel

lib/workloads/driver.ml: Array Clients Int64 List Printf Spec Varan_cycles Varan_kernel Varan_nvx Varan_sim Workload

lib/workloads/driver.mli: Spec Varan_nvx Workload

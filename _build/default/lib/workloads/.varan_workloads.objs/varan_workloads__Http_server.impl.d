lib/workloads/http_server.ml: Api Bytes Server_core String Varan_kernel Varan_syscall

lib/workloads/http_server.mli: Api Bytes Varan_kernel

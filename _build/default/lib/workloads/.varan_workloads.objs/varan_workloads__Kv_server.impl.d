lib/workloads/kv_server.ml: Api Bytes Hashtbl List Server_core String Varan_kernel Varan_syscall

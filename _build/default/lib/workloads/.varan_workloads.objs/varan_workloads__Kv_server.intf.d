lib/workloads/kv_server.mli: Api Bytes Varan_kernel

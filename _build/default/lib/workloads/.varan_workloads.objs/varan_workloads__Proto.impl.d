lib/workloads/proto.ml: Api Bytes Int32 Option Result Varan_kernel Varan_syscall

lib/workloads/proto.mli: Api Bytes Varan_kernel Varan_syscall

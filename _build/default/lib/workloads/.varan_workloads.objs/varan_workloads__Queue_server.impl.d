lib/workloads/queue_server.ml: Api Bytes Printf Queue Server_core String Varan_kernel Varan_syscall

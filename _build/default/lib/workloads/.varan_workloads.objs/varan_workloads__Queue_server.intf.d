lib/workloads/queue_server.mli: Api Bytes Varan_kernel

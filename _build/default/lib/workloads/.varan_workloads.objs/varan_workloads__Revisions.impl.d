lib/workloads/revisions.ml: Api Http_server Kv_server String Varan_bpf Varan_kernel Varan_nvx Varan_syscall Vfs

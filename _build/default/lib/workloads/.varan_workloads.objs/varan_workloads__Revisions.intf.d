lib/workloads/revisions.mli: Varan_bpf Varan_kernel Varan_nvx

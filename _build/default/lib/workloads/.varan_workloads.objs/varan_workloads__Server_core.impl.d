lib/workloads/server_core.ml: Api Bytes List Printf Proto Varan_kernel Varan_syscall

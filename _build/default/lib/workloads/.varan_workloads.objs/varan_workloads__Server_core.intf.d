lib/workloads/server_core.mli: Api Bytes Varan_kernel

lib/workloads/spec.ml: Api Hashtbl String Varan_kernel Varan_nvx Varan_syscall Vfs

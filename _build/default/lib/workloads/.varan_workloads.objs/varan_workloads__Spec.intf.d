lib/workloads/spec.mli: Varan_kernel Varan_nvx

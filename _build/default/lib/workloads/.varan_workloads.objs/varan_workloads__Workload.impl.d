lib/workloads/workload.ml: Clients Varan_bpf Varan_kernel Varan_nvx

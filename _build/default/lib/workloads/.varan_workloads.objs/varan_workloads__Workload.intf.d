lib/workloads/workload.mli: Clients Varan_bpf Varan_kernel Varan_nvx

open Varan_kernel

type config = {
  port : int;
  units : int;
  work_cycles : int;
  expected_conns : int;
}

let set_cmd key value =
  let prefix = Printf.sprintf "set %s %d " key (Bytes.length value) in
  Bytes.cat (Bytes.of_string prefix) value

let get_cmd key = Bytes.of_string ("get " ^ key)

let handle cfg store api req =
  Api.compute api cfg.work_cycles;
  (* memcached stamps items with the current time on every command. *)
  ignore (Api.time api);
  let text = Bytes.to_string req in
  let reply =
    match String.split_on_char ' ' text with
    | "set" :: key :: len :: rest ->
      let payload = String.concat " " rest in
      let len = try int_of_string len with _ -> String.length payload in
      let value =
        if String.length payload >= len then String.sub payload 0 len
        else payload
      in
      Hashtbl.replace store key value;
      "STORED"
    | [ "get"; key ] -> (
      match Hashtbl.find_opt store key with
      | Some v -> "VALUE " ^ v
      | None -> "END")
    | _ -> "ERROR"
  in
  Bytes.of_string reply

let make_body cfg () =
  let store : (string, string) Hashtbl.t = Hashtbl.create 1024 in
  fun ~unit_idx api ->
    let expected =
      Server_core.conns_for_unit ~connections:cfg.expected_conns
        ~units:cfg.units unit_idx
    in
    if expected > 0 then
      Server_core.epoll_server ~port:(cfg.port + unit_idx)
        ~expected_conns:expected
        ~handler:(fun api req -> handle cfg store api req)
        api

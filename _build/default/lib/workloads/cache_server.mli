(** A memcached-style object cache: [set key len] + payload and
    [get key] commands over framed messages, multi-threaded with all
    units sharing the variant's slab store. *)

open Varan_kernel

type config = {
  port : int;
  units : int;
  work_cycles : int;  (** hashing + slab accounting per command *)
  expected_conns : int;
}

val make_body : config -> unit -> unit_idx:int -> Api.t -> unit

val set_cmd : string -> Bytes.t -> Bytes.t
val get_cmd : string -> Bytes.t

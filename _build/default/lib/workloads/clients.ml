open Varan_kernel
module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Errno = Varan_syscall.Errno
module Cost = Varan_cycles.Cost

type load = {
  connections : int;
  requests_per_conn : int;
  request_of : conn:int -> seq:int -> Bytes.t;
  think_cycles : int;
  warmup_requests : int;
}

type result = {
  mutable completed : int;
  mutable errors : int;
  mutable latencies_us : float list;
  mutable first_send : int64;
  mutable last_reply : int64;
  mutable conns_done : int;
}

let rec connect_retry api fd port attempts =
  match Api.connect api fd port with
  | Ok () -> Ok ()
  | Error Errno.ECONNREFUSED when attempts > 0 ->
    E.sleep 5_000;
    connect_retry api fd port (attempts - 1)
  | Error e -> Error e

let launch k ~cost ~port_of load =
  let r =
    {
      completed = 0;
      errors = 0;
      latencies_us = [];
      first_send = Int64.max_int;
      last_reply = 0L;
      conns_done = 0;
    }
  in
  for conn = 0 to load.connections - 1 do
    let proc = K.new_proc k (Printf.sprintf "client%d" conn) in
    let tid =
      E.spawn (Varan_kernel.Kernel.engine k) ~name:(Printf.sprintf "client%d" conn)
        (fun () ->
          let api = Api.direct k proc in
          match Api.socket api with
          | Error _ -> r.errors <- r.errors + 1
          | Ok fd -> (
            match connect_retry api fd (port_of conn) 2000 with
            | Error _ -> r.errors <- r.errors + 1
            | Ok () ->
              for seq = 0 to load.requests_per_conn - 1 do
                let counted = seq >= load.warmup_requests in
                let request = load.request_of ~conn ~seq in
                let t0 = E.now_cycles () in
                if counted && t0 < r.first_send then r.first_send <- t0;
                (match Proto.send_msg api fd request with
                | Error _ -> r.errors <- r.errors + 1
                | Ok () -> (
                  match Proto.recv_msg api fd with
                  | Ok (Some _reply) ->
                    let t1 = E.now_cycles () in
                    if counted then begin
                      if t1 > r.last_reply then r.last_reply <- t1;
                      r.completed <- r.completed + 1;
                      r.latencies_us <-
                        Cost.cycles_to_us cost (Int64.sub t1 t0)
                        :: r.latencies_us
                    end
                  | Ok None | Error _ -> r.errors <- r.errors + 1));
                if load.think_cycles > 0 then E.consume load.think_cycles
              done;
              ignore (Api.close api fd);
              r.conns_done <- r.conns_done + 1))
    in
    K.register_task k proc tid
  done;
  r

let duration_cycles r =
  if r.last_reply <= r.first_send then 0L else Int64.sub r.last_reply r.first_send

let throughput_rps cost r =
  let cycles = Int64.to_float (duration_cycles r) in
  if cycles <= 0.0 then 0.0
  else float_of_int r.completed /. (cycles /. (cost.Cost.cpu_ghz *. 1e9))

let mean_latency_us r =
  match r.latencies_us with
  | [] -> 0.0
  | ls -> Varan_util.Stats.mean ls

(** Closed-loop load generators, standing in for wrk, ApacheBench,
    http_load, redis-benchmark, memslap and beanstalkd-benchmark.

    Each connection is an independent client task: connect (with retry
    while the server is still starting), then send request / await reply
    in a closed loop. Latency is measured per request in virtual
    microseconds; throughput over the span from the first request sent to
    the last reply received. *)

open Varan_kernel

type load = {
  connections : int;
  requests_per_conn : int;
  request_of : conn:int -> seq:int -> Bytes.t;
  think_cycles : int;  (** client-side work between requests *)
  warmup_requests : int;
      (** per-connection requests excluded from throughput and latency,
          mirroring the paper's discarded warm-up measurement *)
}

type result = {
  mutable completed : int;
  mutable errors : int;
  mutable latencies_us : float list;  (** reversed arrival order *)
  mutable first_send : int64;
  mutable last_reply : int64;
  mutable conns_done : int;
}

val launch :
  Types.t -> cost:Varan_cycles.Cost.t -> port_of:(int -> int) -> load -> result
(** Spawn one task per connection; the returned record fills in as the
    simulation runs. [port_of conn] maps a connection index to the port
    it should dial (units listen on consecutive ports). *)

val duration_cycles : result -> int64
val throughput_rps : Varan_cycles.Cost.t -> result -> float
(** Requests per virtual second. *)

val mean_latency_us : result -> float

open Varan_kernel
module Flags = Varan_kernel.Flags

type style = Event_loop | Prefork

type config = {
  port : int;
  units : int;
  style : style;
  doc_path : string;
  parse_cycles : int;
  access_log : string option;
  expected_conns : int;
}

let request path = Bytes.of_string ("GET " ^ path)

let ok_exn what = function
  | Ok v -> v
  | Error e -> failwith (what ^ ": " ^ Varan_syscall.Errno.name e)

(* Real web servers keep hot content and descriptors cached (lighttpd's
   stat/fd cache, nginx's open_file_cache, sendfile from the page cache,
   the always-open access log); re-reading the document on every request
   would also make NVX copy the whole page to every follower per request,
   which no deployed server incurs. The document is read once at startup
   and served from memory. *)
type unit_state = { content : Bytes.t; log_fd : int option }

let open_state cfg api =
  let doc_size = ok_exn "stat" (Api.stat_size api cfg.doc_path) in
  let doc_fd = ok_exn "open doc" (Api.openf api cfg.doc_path Flags.o_rdonly) in
  let content = ok_exn "read" (Api.read api doc_fd doc_size) in
  ignore (Api.close api doc_fd);
  let log_fd =
    match cfg.access_log with
    | None -> None
    | Some log ->
      Some
        (ok_exn "open log"
           (Api.openf api log
              (Flags.o_wronly lor Flags.o_creat lor Flags.o_append)))
  in
  { content; log_fd }

let handle cfg st api req =
  Api.compute api cfg.parse_cycles;
  let path =
    match String.split_on_char ' ' (Bytes.to_string req) with
    | [ "GET"; path ] -> path
    | _ -> cfg.doc_path
  in
  (match st.log_fd with
  | Some fd -> ignore (Api.write_str api fd ("GET " ^ path ^ " 200\n"))
  | None -> ());
  st.content

let make_body cfg () ~unit_idx api =
  let expected =
    Server_core.conns_for_unit ~connections:cfg.expected_conns
      ~units:cfg.units unit_idx
  in
  if expected > 0 then begin
    let st = open_state cfg api in
    let handler api req = handle cfg st api req in
    (match cfg.style with
    | Event_loop ->
      Server_core.epoll_server ~port:(cfg.port + unit_idx)
        ~expected_conns:expected ~handler api
    | Prefork ->
      Server_core.accept_server ~port:(cfg.port + unit_idx)
        ~expected_conns:expected ~handler api);
    match st.log_fd with
    | Some fd -> ignore (Api.close api fd)
    | None -> ()
  end

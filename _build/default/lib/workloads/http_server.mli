(** Static-file HTTP-style servers.

    One parameterised implementation models the four web servers of the
    paper's evaluation — lighttpd, nginx, Apache httpd and thttpd — which
    differ in architecture (event loop vs prefork accept loop, number of
    workers) and per-request work. Each request names a document; the
    server stats, opens, reads and closes it, burns the configured parse
    cycles, optionally appends an access-log line, and replies with the
    file contents. *)

open Varan_kernel

type style = Event_loop | Prefork

type config = {
  port : int;  (** unit [u] listens on [port + u] *)
  units : int;
  style : style;
  doc_path : string;  (** the document every request fetches *)
  parse_cycles : int;  (** request parsing / response assembly work *)
  access_log : string option;  (** append a log line per request *)
  expected_conns : int;  (** total client connections across units *)
}

val make_body : config -> unit -> unit_idx:int -> Api.t -> unit
(** Fresh per-variant server state; pass the result to
    {!Varan_nvx.Variant.make}. *)

val request : string -> Bytes.t
(** ["GET <path>"] request frame payload. *)

open Varan_kernel
module Flags = Varan_kernel.Flags

type config = {
  port : int;
  units : int;
  aof_path : string option;
  work_cycles : int;
  expected_conns : int;
  crash_on_hmget : bool;
}

let cmd s = Bytes.of_string s

let ok_exn what = function
  | Ok v -> v
  | Error e -> failwith (what ^ ": " ^ Varan_syscall.Errno.name e)

type store = {
  strings : (string, string) Hashtbl.t;
  hashes : (string, (string, string) Hashtbl.t) Hashtbl.t;
}

let append_aof cfg api line =
  match cfg.aof_path with
  | None -> ()
  | Some path ->
    let fd =
      ok_exn "open aof"
        (Api.openf api path (Flags.o_wronly lor Flags.o_creat lor Flags.o_append))
    in
    ignore (Api.write_str api fd (line ^ "\n"));
    ignore (Api.close api fd)

let handle cfg store api req =
  Api.compute api cfg.work_cycles;
  (* redis reads the clock on every command (LRU bookkeeping, expiry). *)
  ignore (Api.time api);
  let text = Bytes.to_string req in
  let reply =
    match String.split_on_char ' ' text with
    | [ "PING" ] -> "PONG"
    | "SET" :: key :: value ->
      let value = String.concat " " value in
      Hashtbl.replace store.strings key value;
      append_aof cfg api text;
      "OK"
    | [ "GET"; key ] -> (
      match Hashtbl.find_opt store.strings key with
      | Some v -> v
      | None -> "(nil)")
    | [ "HSET"; key; field; value ] ->
      let h =
        match Hashtbl.find_opt store.hashes key with
        | Some h -> h
        | None ->
          let h = Hashtbl.create 8 in
          Hashtbl.replace store.hashes key h;
          h
      in
      Hashtbl.replace h field value;
      append_aof cfg api text;
      "OK"
    | "HMGET" :: key :: fields ->
      if cfg.crash_on_hmget then failwith "segfault (HMGET bug)";
      let h = Hashtbl.find_opt store.hashes key in
      let lookup f =
        match h with
        | None -> "(nil)"
        | Some h -> (
          match Hashtbl.find_opt h f with Some v -> v | None -> "(nil)")
      in
      String.concat " " (List.map lookup fields)
    | [ "INCR"; key ] ->
      let v =
        match Hashtbl.find_opt store.strings key with
        | Some v -> (try int_of_string v with _ -> 0)
        | None -> 0
      in
      let v = v + 1 in
      Hashtbl.replace store.strings key (string_of_int v);
      append_aof cfg api text;
      string_of_int v
    | _ -> "ERR unknown command"
  in
  Bytes.of_string reply

let make_body cfg () =
  let store = { strings = Hashtbl.create 256; hashes = Hashtbl.create 64 } in
  fun ~unit_idx api ->
    let expected =
      Server_core.conns_for_unit ~connections:cfg.expected_conns
        ~units:cfg.units unit_idx
    in
    if expected > 0 then
      Server_core.epoll_server ~port:(cfg.port + unit_idx)
        ~expected_conns:expected
        ~handler:(fun api req -> handle cfg store api req)
        api

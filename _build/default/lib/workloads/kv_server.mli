(** A Redis-style in-memory key-value store.

    Supports [PING], [SET key value], [GET key], [HSET key field value]
    and [HMGET key field...]; write commands optionally append to an
    append-only file. Multi-threaded: each unit runs an event loop on its
    own port and all units share the variant's store.

    [crash_on_hmget] reproduces the §5.1 experiment: the revision that
    introduced the HMGET segfault dies while processing that command,
    after reading the request but before replying. *)

open Varan_kernel

type config = {
  port : int;
  units : int;
  aof_path : string option;  (** append-only file for write commands *)
  work_cycles : int;  (** command dispatch/encoding work *)
  expected_conns : int;
  crash_on_hmget : bool;
}

val make_body : config -> unit -> unit_idx:int -> Api.t -> unit

val cmd : string -> Bytes.t
(** Build a command frame, e.g. [cmd "SET k v"]. *)

open Varan_kernel

let ( let* ) = Result.bind

let send_msg api fd payload =
  let frame = Bytes.create (4 + Bytes.length payload) in
  Bytes.set_int32_le frame 0 (Int32.of_int (Bytes.length payload));
  Bytes.blit payload 0 frame 4 (Bytes.length payload);
  Api.write_all api fd frame

(* Read exactly [n] bytes, or [None] on EOF at a frame boundary
   ([eof_ok]); EOF mid-frame is an EIO. *)
let recv_exact api fd n ~eof_ok =
  let out = Bytes.create n in
  let rec go filled =
    if filled >= n then Ok (Some out)
    else
      let* chunk = Api.recv api fd (n - filled) in
      let len = Bytes.length chunk in
      if len = 0 then
        if filled = 0 && eof_ok then Ok None else Error Varan_syscall.Errno.EIO
      else begin
        Bytes.blit chunk 0 out filled len;
        go (filled + len)
      end
  in
  go 0

let recv_msg api fd =
  let* header = recv_exact api fd 4 ~eof_ok:true in
  match header with
  | None -> Ok None
  | Some h ->
    let len = Int32.to_int (Bytes.get_int32_le h 0) in
    if len = 0 then Ok (Some Bytes.empty)
    else
      let* body = recv_exact api fd len ~eof_ok:false in
      (match body with
      | Some b -> Ok (Some b)
      | None -> Error Varan_syscall.Errno.EIO)

let send_str api fd s = send_msg api fd (Bytes.of_string s)

let recv_str api fd =
  Result.map (Option.map Bytes.to_string) (recv_msg api fd)

(** Framed messages over the simulated TCP streams.

    All benchmark protocols (HTTP-ish requests, Redis-ish commands,
    memcached-ish gets) are carried as length-prefixed frames: a 4-byte
    little-endian length followed by the payload. Helpers here loop until
    a whole frame has been sent or received, so servers and clients stay
    correct even when the byte stream fragments. *)

open Varan_kernel

val send_msg : Api.t -> int -> Bytes.t -> (unit, Varan_syscall.Errno.t) result

val recv_msg : Api.t -> int -> (Bytes.t option, Varan_syscall.Errno.t) result
(** [Ok None] on clean EOF before a new frame starts. *)

val send_str : Api.t -> int -> string -> (unit, Varan_syscall.Errno.t) result

val recv_str : Api.t -> int -> (string option, Varan_syscall.Errno.t) result

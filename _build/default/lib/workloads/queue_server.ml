open Varan_kernel
module Flags = Varan_kernel.Flags

type config = {
  port : int;
  binlog_path : string option;
  work_cycles : int;
  expected_conns : int;
}

let put_cmd payload = Bytes.cat (Bytes.of_string "put ") payload
let reserve_cmd = Bytes.of_string "reserve"
let delete_cmd id = Bytes.of_string (Printf.sprintf "delete %d" id)

let ok_exn what = function
  | Ok v -> v
  | Error e -> failwith (what ^ ": " ^ Varan_syscall.Errno.name e)

type state = {
  jobs : (int * string) Queue.t;
  mutable next_id : int;
  mutable binlog_fd : int option; (* kept open, as the real server does *)
}

let binlog cfg st api line =
  match cfg.binlog_path with
  | None -> ()
  | Some path ->
    let fd =
      match st.binlog_fd with
      | Some fd -> fd
      | None ->
        let fd =
          ok_exn "open binlog"
            (Api.openf api path
               (Flags.o_wronly lor Flags.o_creat lor Flags.o_append))
        in
        st.binlog_fd <- Some fd;
        fd
    in
    ignore (Api.write_str api fd (line ^ "\n"))

let handle cfg st api req =
  Api.compute api cfg.work_cycles;
  let text = Bytes.to_string req in
  let reply =
    if String.length text > 4 && String.sub text 0 4 = "put " then begin
      let payload = String.sub text 4 (String.length text - 4) in
      let id = st.next_id in
      st.next_id <- st.next_id + 1;
      Queue.push (id, payload) st.jobs;
      binlog cfg st api (Printf.sprintf "put %d %d" id (String.length payload));
      Printf.sprintf "INSERTED %d" id
    end
    else if text = "reserve" then begin
      match Queue.take_opt st.jobs with
      | Some (id, payload) -> Printf.sprintf "RESERVED %d %s" id payload
      | None -> "TIMED_OUT"
    end
    else if String.length text > 7 && String.sub text 0 7 = "delete " then begin
      binlog cfg st api text;
      "DELETED"
    end
    else "UNKNOWN_COMMAND"
  in
  Bytes.of_string reply

let make_body cfg () =
  let st = { jobs = Queue.create (); next_id = 1; binlog_fd = None } in
  fun ~unit_idx api ->
    if unit_idx = 0 then
      Server_core.epoll_server ~port:cfg.port
        ~expected_conns:cfg.expected_conns
        ~handler:(fun api req -> handle cfg st api req)
        api

(** A beanstalkd-style work queue: [put <payload>], [reserve],
    [delete <id>]. Single-threaded, very little computation per command
    and a binlog append on every mutation — the most system-call-dense of
    the benchmark servers, which is why it shows the largest NVX
    overhead in the paper's Figure 5. *)

open Varan_kernel

type config = {
  port : int;
  binlog_path : string option;
  work_cycles : int;
  expected_conns : int;
}

val make_body : config -> unit -> unit_idx:int -> Api.t -> unit

val put_cmd : Bytes.t -> Bytes.t
val reserve_cmd : Bytes.t
val delete_cmd : int -> Bytes.t

open Varan_kernel
module Variant = Varan_nvx.Variant
module Rules = Varan_bpf.Rules
module Sysno = Varan_syscall.Sysno
module Flags = Varan_kernel.Flags

type lighttpd_rev = R2435 | R2436 | R2523 | R2524 | R2577 | R2578

let nr = Sysno.to_int

let ok_exn what = function
  | Ok v -> v
  | Error e -> failwith (what ^ ": " ^ Varan_syscall.Errno.name e)

(* Startup prologues reproducing each revision's syscall sequence. *)
let prologue rev api =
  match rev with
  | R2435 ->
    (* geteuid()/getegid() C library checks before touching files. *)
    ignore (Api.geteuid api);
    ignore (Api.getegid api)
  | R2436 ->
    (* issetugid() expands the check to all four ids (Listing 1). *)
    ignore (Api.geteuid api);
    ignore (Api.getuid api);
    ignore (Api.getegid api);
    ignore (Api.getgid api)
  | R2523 ->
    let fd = ok_exn "open urandom" (Api.openf api "/dev/urandom" Flags.o_rdonly) in
    ignore (ok_exn "read urandom" (Api.read api fd 16));
    ignore (Api.close api fd)
  | R2524 ->
    (* One additional read for the extra entropy source. *)
    let fd = ok_exn "open urandom" (Api.openf api "/dev/urandom" Flags.o_rdonly) in
    ignore (ok_exn "read urandom" (Api.read api fd 16));
    ignore (ok_exn "read urandom" (Api.read api fd 16));
    ignore (Api.close api fd)
  | R2577 ->
    let fd = ok_exn "open conf" (Api.openf api "/www/index.html" Flags.o_rdonly) in
    ignore (Api.close api fd)
  | R2578 ->
    (* The revision that sets FD_CLOEXEC on the descriptor. *)
    let fd = ok_exn "open conf" (Api.openf api "/www/index.html" Flags.o_rdonly) in
    ignore (ok_exn "fcntl" (Api.fcntl api fd Flags.f_setfd Flags.fd_cloexec));
    ignore (Api.close api fd)

let lighttpd_rules_for = function
  | R2436 ->
    (* The paper's Listing 1 divergence: getuid/getgid insertions while
       the leader proceeds to getegid / the document stat. *)
    Some
      (Rules.allow_added_syscalls
         ~expected_leader:[ nr Sysno.Getegid; nr Sysno.Stat ]
         ~added:[ nr Sysno.Getuid; nr Sysno.Getgid ])
  | R2524 ->
    Some
      (Rules.allow_added_syscalls
         ~expected_leader:[ nr Sysno.Close ]
         ~added:[ nr Sysno.Read ])
  | R2578 ->
    Some
      (Rules.allow_added_syscalls
         ~expected_leader:[ nr Sysno.Close ]
         ~added:[ nr Sysno.Fcntl ])
  | R2577 ->
    (* For the reversed pairing (newer leader): the fcntl the leader
       performs has no counterpart here and may be skipped. *)
    Some (Rules.allow_removed_syscalls ~removed:[ nr Sysno.Fcntl ])
  | R2435 | R2523 -> None

let rev_name = function
  | R2435 -> "lighttpd-r2435"
  | R2436 -> "lighttpd-r2436"
  | R2523 -> "lighttpd-r2523"
  | R2524 -> "lighttpd-r2524"
  | R2577 -> "lighttpd-r2577"
  | R2578 -> "lighttpd-r2578"

let lighttpd_variant ~rev ~port ~expected_conns =
  let cfg =
    {
      Http_server.port;
      units = 1;
      style = Http_server.Event_loop;
      doc_path = "/www/index.html";
      parse_cycles = 29_000;
      access_log = None;
      expected_conns;
    }
  in
  let base = Http_server.make_body cfg () in
  let body ~unit_idx api =
    if unit_idx = 0 then prologue rev api;
    base ~unit_idx api
  in
  Variant.make
    ~profile:
      { Variant.code_bytes = 38_000; syscall_share = 0.008; code_seed = 12 }
    ?rules:(lighttpd_rules_for rev) (rev_name rev)
    { Variant.units = 1; unit_kind = Variant.Thread; body }

let redis_revision ~buggy ~name ~port ~expected_conns =
  let cfg =
    {
      Kv_server.port;
      units = 1;
      aof_path = None;
      work_cycles = 28_000;
      expected_conns;
      crash_on_hmget = buggy;
    }
  in
  Variant.make
    ~profile:
      { Variant.code_bytes = 35_000; syscall_share = 0.008; code_seed = 15 }
    name
    {
      Variant.units = 1;
      unit_kind = Variant.Thread;
      body = Kv_server.make_body cfg ();
    }

let setup_fs k =
  Vfs.add_file k "/var/.keep" "";
  Vfs.add_file k "/www/index.html" (String.make 4096 'p')

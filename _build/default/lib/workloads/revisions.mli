(** Software revisions used in the paper's Section 5 experiments.

    {b Lighttpd} (§5.2, multi-revision execution): pairs of consecutive
    revisions from the Mx feasibility study whose syscall sequences
    diverge —
    - 2435 → 2436: the [issetugid()] change replaces
      [geteuid(); getegid()] with [geteuid(); getuid(); getegid();
      getgid()] before the configuration [open], exactly the divergence
      of Listing 1;
    - 2523 → 2524: an additional [read] of [/dev/urandom] for extra
      entropy at startup;
    - 2577 → 2578: an additional [fcntl] setting [FD_CLOEXEC] on a
      descriptor.

    {b Redis} (§5.1, transparent failover): a range of eight consecutive
    revisions in which the newest introduced a segfault on [HMGET]. *)

type lighttpd_rev = R2435 | R2436 | R2523 | R2524 | R2577 | R2578

val lighttpd_variant :
  rev:lighttpd_rev -> port:int -> expected_conns:int ->
  Varan_nvx.Variant.t
(** A lighttpd instance of the given revision (serving /www/index.html),
    with the rewrite rules needed when it runs as a follower of the
    paired older revision already attached. *)

val lighttpd_rules_for : lighttpd_rev -> Varan_bpf.Insn.t array option
(** The BPF filter permitting this revision's divergences from its
    predecessor, if any. *)

val redis_revision :
  buggy:bool -> name:string -> port:int -> expected_conns:int ->
  Varan_nvx.Variant.t
(** One Redis revision; [buggy] marks the newest revision (7fb16ba),
    which crashes while processing HMGET. *)

val setup_fs : Varan_kernel.Types.t -> unit

open Varan_kernel
module Flags = Varan_kernel.Flags
module Errno = Varan_syscall.Errno

type handler = Api.t -> Bytes.t -> Bytes.t

let ok_exn what = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "%s: %s" what (Errno.name e))

let conns_for_unit ~connections ~units u =
  let base = connections / units in
  if u < connections mod units then base + 1 else base

let epoll_server ~port ~expected_conns ~handler api =
  let lfd = ok_exn "socket" (Api.socket api) in
  ok_exn "bind" (Api.bind api lfd port);
  ok_exn "listen" (Api.listen api lfd);
  let ep = ok_exn "epoll_create" (Api.epoll_create api) in
  ok_exn "epoll_ctl" (Api.epoll_ctl api ep Flags.epoll_ctl_add lfd Flags.epollin);
  let closed = ref 0 in
  while !closed < expected_conns do
    let events =
      ok_exn "epoll_wait" (Api.epoll_wait api ep ~max_events:64 ~timeout_ms:(-1))
    in
    List.iter
      (fun (fd, _mask) ->
        if fd = lfd then begin
          let c = ok_exn "accept" (Api.accept api lfd) in
          ok_exn "epoll_ctl add"
            (Api.epoll_ctl api ep Flags.epoll_ctl_add c Flags.epollin)
        end
        else begin
          match Proto.recv_msg api fd with
          | Ok (Some request) ->
            let response = handler api request in
            ok_exn "send" (Proto.send_msg api fd response)
          | Ok None ->
            ok_exn "epoll_ctl del" (Api.epoll_ctl api ep Flags.epoll_ctl_del fd 0);
            ignore (Api.close api fd);
            incr closed
          | Error Errno.ECONNRESET ->
            ok_exn "epoll_ctl del" (Api.epoll_ctl api ep Flags.epoll_ctl_del fd 0);
            ignore (Api.close api fd);
            incr closed
          | Error e -> failwith ("server recv: " ^ Errno.name e)
        end)
      events
  done;
  ignore (Api.close api ep);
  ignore (Api.close api lfd)

let accept_server ~port ~expected_conns ~handler api =
  let lfd = ok_exn "socket" (Api.socket api) in
  ok_exn "bind" (Api.bind api lfd port);
  ok_exn "listen" (Api.listen api lfd);
  for _ = 1 to expected_conns do
    let c = ok_exn "accept" (Api.accept api lfd) in
    let rec serve () =
      match Proto.recv_msg api c with
      | Ok (Some request) ->
        let response = handler api request in
        ok_exn "send" (Proto.send_msg api c response);
        serve ()
      | Ok None | Error Errno.ECONNRESET -> ()
      | Error e -> failwith ("server recv: " ^ Errno.name e)
    in
    serve ();
    ignore (Api.close api c)
  done;
  ignore (Api.close api lfd)

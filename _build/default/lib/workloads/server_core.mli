(** Server skeletons shared by the benchmark applications.

    Two classic architectures:
    - {!epoll_server}: a single-threaded event loop multiplexing many
      connections (lighttpd, nginx workers, memcached workers, redis,
      beanstalkd);
    - {!accept_server}: accept → serve the whole connection → close
      (Apache httpd's prefork workers, thttpd).

    Multi-unit servers run one skeleton instance per unit on
    [port + unit] — the SO_REUSEPORT-style model documented in DESIGN.md —
    so units never share descriptors at runtime.

    Requests and responses are {!Proto} frames. A [handler] maps one
    request to one response and may issue its own syscalls (file I/O,
    logging) through the API first. Servers exit after [expected_conns]
    connections have closed, so simulations terminate. *)

open Varan_kernel

type handler = Api.t -> Bytes.t -> Bytes.t

val epoll_server :
  port:int -> expected_conns:int -> handler:handler -> Api.t -> unit

val accept_server :
  port:int -> expected_conns:int -> handler:handler -> Api.t -> unit

val conns_for_unit : connections:int -> units:int -> int -> int
(** [conns_for_unit ~connections ~units u] is how many of the load's
    connections round-robin onto unit [u]. *)

open Varan_kernel
module Flags = Varan_kernel.Flags

type params = {
  sp_name : string;
  compute_mcycles : int;
  mem_intensity_c1000 : int;
  input_reads : int;
  mallocs : int;
}

let p name compute intensity reads mallocs =
  {
    sp_name = name;
    compute_mcycles = compute;
    mem_intensity_c1000 = intensity;
    input_reads = reads;
    mallocs = mallocs;
  }

(* Intensities reflect the published memory characterisation of the
   suites (mcf, twolf, omnetpp and libquantum being the notoriously
   memory-bound ones; crafty, eon, hmmer and sjeng living in cache). *)
let cpu2000 =
  [
    p "164.gzip" 40 420 60 40;
    p "175.vpr" 45 700 40 60;
    p "176.gcc" 50 640 80 120;
    p "181.mcf" 40 1250 30 80;
    p "186.crafty" 45 260 20 30;
    p "197.parser" 40 540 40 70;
    p "252.eon" 45 300 30 50;
    p "253.perlbmk" 50 480 60 90;
    p "254.gap" 45 520 40 60;
    p "255.vortex" 50 660 70 80;
    p "256.bzip2" 40 560 50 40;
    p "300.twolf" 45 800 30 60;
  ]

let cpu2006 =
  [
    p "400.perlbench" 55 520 70 100;
    p "401.bzip2" 50 560 50 40;
    p "403.gcc" 55 720 90 130;
    p "429.mcf" 45 1300 30 80;
    p "445.gobmk" 50 400 40 50;
    p "456.hmmer" 50 280 30 40;
    p "458.sjeng" 50 330 20 30;
    p "462.libquantum" 45 950 20 40;
    p "464.h264ref" 55 460 60 70;
    p "471.omnetpp" 50 860 40 90;
    p "473.astar" 50 620 30 50;
    p "483.xalancbmk" 55 740 80 110;
  ]

let input_path = "/spec/input.bin"

let setup_fs k = Vfs.add_file k input_path (String.make 8192 'x')

let slice_cycles = 500_000

let ok_exn what = function
  | Ok v -> v
  | Error e -> failwith (what ^ ": " ^ Varan_syscall.Errno.name e)

let make_body params () ~unit_idx api =
  if unit_idx = 0 then begin
    (* Read the input set. *)
    let fd = ok_exn "open input" (Api.openf api input_path Flags.o_rdonly) in
    for _ = 1 to params.input_reads do
      ignore (ok_exn "read input" (Api.read api fd 512));
      ignore (Api.lseek api fd 0 Flags.seek_set)
    done;
    ignore (Api.close api fd);
    (* Warm-up allocations. *)
    for i = 1 to params.mallocs do
      ignore (api.Api.sys Varan_syscall.Sysno.Mmap
                [| Varan_syscall.Args.Int 0; Varan_syscall.Args.Int (4096 * (1 + (i mod 16))) |])
    done;
    (* The compute phases, interleaved with occasional bookkeeping. *)
    let total = params.compute_mcycles * 1_000_000 in
    let slices = total / slice_cycles in
    for s = 1 to slices do
      Api.compute api slice_cycles;
      if s mod 64 = 0 then ignore (Api.getpid api)
    done
  end

let variant_of params name =
  Varan_nvx.Variant.make ~mem_intensity_c1000:params.mem_intensity_c1000
    ~profile:
      {
        Varan_nvx.Variant.code_bytes = 60_000;
        syscall_share = 0.004;
        code_seed = Hashtbl.hash params.sp_name;
      }
    name
    {
      Varan_nvx.Variant.units = 1;
      unit_kind = Varan_nvx.Variant.Thread;
      body = make_body params ();
    }

(** Synthetic SPEC CPU2000 / CPU2006 kernels.

    The paper's Figures 7 and 8 run SPEC under VARAN with up to six
    followers. These are compute-bound programs whose NVX behaviour is
    governed by (a) a tiny syscall footprint (input reading, memory
    management) and (b) memory pressure once several copies compete for
    the cache and memory bandwidth of a 4-core machine — the reason the
    paper observes poor scaling (§4.3). Each kernel carries a
    memory-intensity parameter feeding the machine contention model and a
    compute budget split into slices so the simulation interleaves
    variants realistically. *)

type params = {
  sp_name : string;
  compute_mcycles : int;  (** total compute in millions of cycles *)
  mem_intensity_c1000 : int;
  input_reads : int;  (** read syscalls over the input set *)
  mallocs : int;  (** brk/mmap calls *)
}

val cpu2000 : params list
(** The twelve CINT2000 benchmarks used in Figure 7. *)

val cpu2006 : params list
(** The twelve CINT2006 benchmarks used in Figure 8. *)

val make_body :
  params -> unit -> unit_idx:int -> Varan_kernel.Api.t -> unit
(** The kernel's program: reads its input set, allocates, then alternates
    compute slices with occasional bookkeeping syscalls. *)

val variant_of : params -> string -> Varan_nvx.Variant.t
(** Package as an NVX variant with the right memory intensity. *)

val setup_fs : Varan_kernel.Types.t -> unit
(** Create the shared input file the kernels read. *)

type t = {
  w_name : string;
  units : int;
  unit_kind : Varan_nvx.Variant.unit_kind;
  make_body : unit -> unit_idx:int -> Varan_kernel.Api.t -> unit;
  profile : Varan_nvx.Variant.code_profile;
  mem_intensity_c1000 : int;
  port_base : int;
  load : Clients.load;
  setup_fs : Varan_kernel.Types.t -> unit;
  rules : Varan_bpf.Insn.t array option;
}

let port_of_conn w conn = w.port_base + (conn mod w.units)

let fresh_variant w name =
  Varan_nvx.Variant.make ~profile:w.profile
    ~mem_intensity_c1000:w.mem_intensity_c1000 ?rules:w.rules name
    {
      Varan_nvx.Variant.units = w.units;
      unit_kind = w.unit_kind;
      body = w.make_body ();
    }

(** A benchmarkable server workload: how to build a fresh server variant,
    how to generate client load against it, and the machine-level
    characteristics feeding the cost model. *)

type t = {
  w_name : string;
  units : int;
  unit_kind : Varan_nvx.Variant.unit_kind;
  make_body : unit -> unit_idx:int -> Varan_kernel.Api.t -> unit;
      (** fresh per-variant server state on every call *)
  profile : Varan_nvx.Variant.code_profile;
  mem_intensity_c1000 : int;
  port_base : int;
  load : Clients.load;
  setup_fs : Varan_kernel.Types.t -> unit;  (** document roots etc. *)
  rules : Varan_bpf.Insn.t array option;  (** divergence rules, if any *)
}

val port_of_conn : t -> int -> int
(** Round-robin connections over the unit ports. *)

val fresh_variant : t -> string -> Varan_nvx.Variant.t
(** A new variant with its own server state. *)

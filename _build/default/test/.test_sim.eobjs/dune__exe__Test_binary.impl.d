test/test_binary.ml: Alcotest Array Bytes Format Hashtbl List QCheck QCheck_alcotest Varan_binary Varan_isa Varan_util

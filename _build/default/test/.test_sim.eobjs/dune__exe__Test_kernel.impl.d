test/test_kernel.ml: Alcotest Bytes Hashtbl Int64 List Printf Result String Varan_kernel Varan_sim Varan_syscall

test/test_nvx.ml: Alcotest Array Buffer Bytes Int64 List Printf String Varan_binary Varan_bpf Varan_kernel Varan_nvx Varan_ringbuf Varan_shmem Varan_sim Varan_syscall

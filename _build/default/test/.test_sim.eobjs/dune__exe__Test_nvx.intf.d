test/test_nvx.mli:

test/test_nvx_props.ml: Alcotest Array Buffer Bytes Hashtbl List Printf QCheck QCheck_alcotest String Varan_kernel Varan_nvx Varan_sim Varan_syscall Varan_util

test/test_nvx_props.mli:

test/test_sim.ml: Alcotest Fun List Varan_sim

test/test_streams.ml: Alcotest Array Bytes List Printf QCheck QCheck_alcotest String Varan_bpf Varan_ringbuf Varan_shmem Varan_sim Varan_vclock

test/test_util.ml: Alcotest Array Bytes Fun Gen Int64 List QCheck QCheck_alcotest Result String Varan_kernel Varan_sim Varan_syscall Varan_util Varan_workloads

test/test_workloads.ml: Alcotest Array Bytes List Printf Result Varan_cycles Varan_kernel Varan_nvx Varan_sim Varan_workloads

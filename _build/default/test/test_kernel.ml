(* Tests for the simulated kernel: VFS, file I/O, pipes, sockets, epoll,
   futexes, processes and time. Each test builds a fresh engine+kernel and
   runs one or more simulated processes to completion. *)

module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Api = Varan_kernel.Api
module Vfs = Varan_kernel.Vfs
module Flags = Varan_kernel.Flags
module Errno = Varan_syscall.Errno

let errno = Alcotest.testable Errno.pp Errno.equal

let ok_int = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected errno %s" (Errno.name e)

let ok_unit = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "unexpected errno %s" (Errno.name e)

let ok_bytes = function
  | Ok b -> b
  | Error e -> Alcotest.failf "unexpected errno %s" (Errno.name e)

(* Run [body] as a single simulated process and return its result. *)
let in_proc ?(link_latency = 0) body =
  let eng = E.create () in
  let k = K.create ~link_latency eng in
  let result = ref None in
  let proc = K.new_proc k "test" in
  let tid =
    E.spawn eng ~name:"test-proc" (fun () ->
        let api = Api.direct k proc in
        result := Some (body k api))
  in
  K.register_task k proc tid;
  E.run eng;
  match !result with Some r -> r | None -> Alcotest.fail "process died"

let test_dev_null () =
  in_proc (fun _k api ->
      let fd = ok_int (Api.openf api "/dev/null" Flags.o_rdwr) in
      let n = ok_int (Api.write_str api fd "discarded") in
      Alcotest.(check int) "write accepted" 9 n;
      let b = ok_bytes (Api.read api fd 128) in
      Alcotest.(check int) "read gives EOF" 0 (Bytes.length b);
      ok_unit (Result.map (fun _ -> ()) (Api.close api fd)))

let test_file_roundtrip () =
  in_proc (fun _k api ->
      let fd =
        ok_int (Api.openf api "/tmp/data.txt" (Flags.o_rdwr lor Flags.o_creat))
      in
      ignore (ok_int (Api.write_str api fd "hello world"));
      ignore (ok_int (Api.lseek api fd 0 Flags.seek_set));
      let b = ok_bytes (Api.read api fd 64) in
      Alcotest.(check string) "contents" "hello world" (Bytes.to_string b);
      let size = ok_int (Api.fstat_size api fd) in
      Alcotest.(check int) "fstat size" 11 size;
      ignore (ok_int (Api.close api fd));
      let size = ok_int (Api.stat_size api "/tmp/data.txt") in
      Alcotest.(check int) "stat size" 11 size)

let test_open_enoent () =
  in_proc (fun _k api ->
      match Api.openf api "/no/such/file" Flags.o_rdonly with
      | Ok _ -> Alcotest.fail "expected ENOENT"
      | Error e -> Alcotest.check errno "errno" Errno.ENOENT e)

let test_close_ebadf () =
  in_proc (fun _k api ->
      match Api.close api 42 with
      | Ok _ -> Alcotest.fail "expected EBADF"
      | Error e -> Alcotest.check errno "errno" Errno.EBADF e)

let test_o_trunc_and_append () =
  in_proc (fun _k api ->
      let fd =
        ok_int (Api.openf api "/tmp/t" (Flags.o_wronly lor Flags.o_creat))
      in
      ignore (ok_int (Api.write_str api fd "0123456789"));
      ignore (ok_int (Api.close api fd));
      let fd =
        ok_int
          (Api.openf api "/tmp/t"
             (Flags.o_wronly lor Flags.o_creat lor Flags.o_trunc))
      in
      ignore (ok_int (Api.write_str api fd "ab"));
      ignore (ok_int (Api.close api fd));
      Alcotest.(check int) "truncated" 2 (ok_int (Api.stat_size api "/tmp/t"));
      let fd =
        ok_int (Api.openf api "/tmp/t" (Flags.o_wronly lor Flags.o_append))
      in
      ignore (ok_int (Api.write_str api fd "cd"));
      ignore (ok_int (Api.close api fd));
      Alcotest.(check int) "appended" 4 (ok_int (Api.stat_size api "/tmp/t")))

let test_urandom () =
  in_proc (fun _k api ->
      let fd = ok_int (Api.openf api "/dev/urandom" Flags.o_rdonly) in
      let a = ok_bytes (Api.read api fd 32) in
      let b = ok_bytes (Api.read api fd 32) in
      Alcotest.(check int) "length" 32 (Bytes.length a);
      Alcotest.(check bool) "random streams differ" false (Bytes.equal a b))

let test_dup_shares_offset () =
  in_proc (fun _k api ->
      let fd =
        ok_int (Api.openf api "/tmp/d" (Flags.o_rdwr lor Flags.o_creat))
      in
      ignore (ok_int (Api.write_str api fd "xyz"));
      let fd2 = ok_int (Api.dup api fd) in
      ignore (ok_int (Api.write_str api fd2 "abc"));
      Alcotest.(check int)
        "offset shared via dup" 6
        (ok_int (Api.stat_size api "/tmp/d")))

let test_fd_numbers_lowest_free () =
  in_proc (fun _k api ->
      let fd0 = ok_int (Api.openf api "/dev/null" 0) in
      let fd1 = ok_int (Api.openf api "/dev/null" 0) in
      let fd2 = ok_int (Api.openf api "/dev/null" 0) in
      Alcotest.(check (list int)) "sequential" [ 0; 1; 2 ] [ fd0; fd1; fd2 ];
      ignore (ok_int (Api.close api fd1));
      let fd = ok_int (Api.openf api "/dev/null" 0) in
      Alcotest.(check int) "lowest free reused" 1 fd)

let test_vfs_ops () =
  in_proc (fun _k api ->
      ok_unit (Api.mkdir api "/tmp/sub");
      let fd =
        ok_int (Api.openf api "/tmp/sub/f" (Flags.o_wronly lor Flags.o_creat))
      in
      ignore (ok_int (Api.close api fd));
      ok_unit (Api.access api "/tmp/sub/f");
      ok_unit (Api.rename api "/tmp/sub/f" "/tmp/sub/g");
      (match Api.access api "/tmp/sub/f" with
      | Error e -> Alcotest.check errno "old gone" Errno.ENOENT e
      | Ok () -> Alcotest.fail "expected ENOENT after rename");
      ok_unit (Api.unlink api "/tmp/sub/g"))

let test_pipe_blocking () =
  let eng = E.create () in
  let k = K.create eng in
  let proc = K.new_proc k "p" in
  let api = Api.direct k proc in
  let got = ref "" in
  ignore
    (E.spawn eng ~name:"setup" (fun () ->
         let r, w = ok_int (Api.pipe api) in
         ignore
           (E.spawn_here ~name:"reader" (fun () ->
                let b = ok_bytes (Api.read api r 16) in
                got := Bytes.to_string b));
         ignore
           (E.spawn_here ~name:"writer" (fun () ->
                E.consume 5_000;
                ignore (ok_int (Api.write_str api w "ping"))))));
  E.run eng;
  Alcotest.(check string) "reader blocked then received" "ping" !got

let test_socket_roundtrip () =
  let eng = E.create () in
  let k = K.create eng in
  let server_got = ref "" and client_got = ref "" in
  let sproc = K.new_proc k "server" in
  let cproc = K.new_proc k "client" in
  ignore
    (E.spawn eng ~name:"server" (fun () ->
         let api = Api.direct k sproc in
         let lfd = ok_int (Api.socket api) in
         ok_unit (Api.bind api lfd 8080);
         ok_unit (Api.listen api lfd);
         let cfd = ok_int (Api.accept api lfd) in
         let req = ok_bytes (Api.recv api cfd 128) in
         server_got := Bytes.to_string req;
         ignore (ok_int (Api.send api cfd (Bytes.of_string "pong")));
         ignore (ok_int (Api.close api cfd));
         ignore (ok_int (Api.close api lfd))));
  ignore
    (E.spawn eng ~name:"client" (fun () ->
         let api = Api.direct k cproc in
         E.consume 1_000;
         (* let the server start listening first *)
         let fd = ok_int (Api.socket api) in
         ok_unit (Api.connect api fd 8080);
         ignore (ok_int (Api.send api fd (Bytes.of_string "ping")));
         let reply = ok_bytes (Api.recv api fd 128) in
         client_got := Bytes.to_string reply;
         ignore (ok_int (Api.close api fd))));
  E.run eng;
  Alcotest.(check string) "server received" "ping" !server_got;
  Alcotest.(check string) "client received" "pong" !client_got

let test_socket_eof_on_close () =
  let eng = E.create () in
  let k = K.create eng in
  let eof_seen = ref false in
  let sproc = K.new_proc k "server" in
  let cproc = K.new_proc k "client" in
  ignore
    (E.spawn eng ~name:"server" (fun () ->
         let api = Api.direct k sproc in
         let lfd = ok_int (Api.socket api) in
         ok_unit (Api.bind api lfd 9090);
         ok_unit (Api.listen api lfd);
         let cfd = ok_int (Api.accept api lfd) in
         let first = ok_bytes (Api.recv api cfd 16) in
         Alcotest.(check string) "data first" "bye" (Bytes.to_string first);
         let second = ok_bytes (Api.recv api cfd 16) in
         eof_seen := Bytes.length second = 0));
  ignore
    (E.spawn eng ~name:"client" (fun () ->
         let api = Api.direct k cproc in
         E.consume 1_000;
         let fd = ok_int (Api.socket api) in
         ok_unit (Api.connect api fd 9090);
         ignore (ok_int (Api.send api fd (Bytes.of_string "bye")));
         ignore (ok_int (Api.close api fd))));
  E.run eng;
  Alcotest.(check bool) "EOF after peer close" true !eof_seen

let test_connect_refused () =
  in_proc (fun _k api ->
      let fd = ok_int (Api.socket api) in
      match Api.connect api fd 12345 with
      | Ok () -> Alcotest.fail "expected ECONNREFUSED"
      | Error e -> Alcotest.check errno "errno" Errno.ECONNREFUSED e)

let test_nonblocking_read_eagain () =
  let eng = E.create () in
  let k = K.create eng in
  let proc = K.new_proc k "p" in
  let saw_eagain = ref false in
  ignore
    (E.spawn eng (fun () ->
         let api = Api.direct k proc in
         match Api.pipe api with
         | Error e -> Alcotest.failf "pipe: %s" (Errno.name e)
         | Ok (r, _w) -> (
           Result.get_ok (Varan_kernel.Kernel.set_nonblock proc r true);
           match Api.read api r 16 with
           | Error Errno.EAGAIN -> saw_eagain := true
           | Error e -> Alcotest.failf "unexpected errno %s" (Errno.name e)
           | Ok _ -> Alcotest.fail "expected EAGAIN")));
  E.run eng;
  Alcotest.(check bool) "EAGAIN on empty nonblocking pipe" true !saw_eagain

let test_epoll_server_pattern () =
  let eng = E.create () in
  let k = K.create eng in
  let served = ref 0 in
  let sproc = K.new_proc k "server" in
  ignore
    (E.spawn eng ~name:"server" (fun () ->
         let api = Api.direct k sproc in
         let lfd = ok_int (Api.socket api) in
         ok_unit (Api.bind api lfd 7070);
         ok_unit (Api.listen api lfd);
         let ep = ok_int (Api.epoll_create api) in
         ok_unit (Api.epoll_ctl api ep Flags.epoll_ctl_add lfd Flags.epollin);
         (* Serve exactly three connections, one request each. *)
         let open_conns = Hashtbl.create 8 in
         let done_count = ref 0 in
         while !done_count < 3 do
           let events =
             match Api.epoll_wait api ep ~max_events:16 ~timeout_ms:(-1) with
             | Ok ev -> ev
             | Error e -> Alcotest.failf "epoll_wait: %s" (Errno.name e)
           in
           List.iter
             (fun (fd, _ev) ->
               if fd = lfd then begin
                 let c = ok_int (Api.accept api lfd) in
                 ok_unit
                   (Api.epoll_ctl api ep Flags.epoll_ctl_add c Flags.epollin);
                 Hashtbl.replace open_conns c ()
               end
               else begin
                 let data = ok_bytes (Api.recv api fd 128) in
                 if Bytes.length data = 0 then begin
                   ok_unit (Api.epoll_ctl api ep Flags.epoll_ctl_del fd 0);
                   ignore (ok_int (Api.close api fd));
                   Hashtbl.remove open_conns fd;
                   incr done_count
                 end
                 else begin
                   ignore (ok_int (Api.send api fd data));
                   incr served
                 end
               end)
             events
         done));
  for i = 1 to 3 do
    let cproc = K.new_proc k (Printf.sprintf "client%d" i) in
    ignore
      (E.spawn eng ~name:(Printf.sprintf "client%d" i) (fun () ->
           let api = Api.direct k cproc in
           E.consume (1_000 * i);
           let fd = ok_int (Api.socket api) in
           ok_unit (Api.connect api fd 7070);
           ignore (ok_int (Api.send api fd (Bytes.of_string "req")));
           let reply = ok_bytes (Api.recv api fd 128) in
           Alcotest.(check string) "echo" "req" (Bytes.to_string reply);
           ignore (ok_int (Api.close api fd))))
  done;
  E.run eng;
  Alcotest.(check int) "three requests served" 3 !served

let test_futex_wait_wake () =
  let eng = E.create () in
  let k = K.create eng in
  let proc = K.new_proc k "p" in
  let woken = ref false in
  ignore
    (E.spawn eng ~name:"waiter" (fun () ->
         let api = Api.direct k proc in
         Api.futex_wait api 0x1000;
         woken := true));
  ignore
    (E.spawn eng ~name:"waker" (fun () ->
         let api = Api.direct k proc in
         E.consume 10_000;
         let n = Api.futex_wake api 0x1000 1 in
         Alcotest.(check int) "one waiter woken" 1 n));
  E.run eng;
  Alcotest.(check bool) "waiter resumed" true !woken

let test_time_advances () =
  in_proc (fun _k api ->
      let t0 = Api.clock_gettime_ns api in
      Api.compute api 3_500_000 (* 1 ms at 3.5 GHz *);
      let t1 = Api.clock_gettime_ns api in
      let delta = Int64.sub t1 t0 in
      Alcotest.(check bool)
        (Printf.sprintf "~1ms passed (got %Ldns)" delta)
        true
        (delta > 900_000L && delta < 1_100_000L))

let test_getpid_and_ids () =
  in_proc (fun _k api ->
      Alcotest.(check bool) "pid positive" true (Api.getpid api > 0);
      Alcotest.(check int) "uid" 1000 (Api.getuid api);
      Alcotest.(check int) "euid" 1000 (Api.geteuid api);
      Alcotest.(check int) "gid" 1000 (Api.getgid api))

let test_link_latency_delays_delivery () =
  (* With a 35,000-cycle (10 us) link, the client's reply cannot arrive in
     less than one round trip. *)
  let eng = E.create () in
  let k = K.create ~link_latency:35_000 eng in
  let elapsed = ref 0L in
  let sproc = K.new_proc k "server" and cproc = K.new_proc k "client" in
  ignore
    (E.spawn eng ~name:"server" (fun () ->
         let api = Api.direct k sproc in
         let lfd = ok_int (Api.socket api) in
         ok_unit (Api.bind api lfd 8181);
         ok_unit (Api.listen api lfd);
         let c = ok_int (Api.accept api lfd) in
         let data = ok_bytes (Api.recv api c 64) in
         ignore (ok_int (Api.send api c data))));
  ignore
    (E.spawn eng ~name:"client" (fun () ->
         let api = Api.direct k cproc in
         E.consume 1_000;
         let fd = ok_int (Api.socket api) in
         ok_unit (Api.connect api fd 8181);
         let t0 = E.now_cycles () in
         ignore (ok_int (Api.send api fd (Bytes.of_string "x")));
         ignore (ok_bytes (Api.recv api fd 64));
         elapsed := Int64.sub (E.now_cycles ()) t0));
  E.run eng;
  Alcotest.(check bool)
    (Printf.sprintf "RTT at least 70k cycles (got %Ld)" !elapsed)
    true
    (!elapsed >= 70_000L)

let test_fork_proc_shares_descriptions () =
  in_proc (fun k api ->
      let fd =
        ok_int (Api.openf api "/tmp/shared" (Flags.o_rdwr lor Flags.o_creat))
      in
      ignore (ok_int (Api.write_str api fd "parent"));
      let child = K.fork_proc k api.Api.proc "child" in
      Alcotest.(check int)
        "child inherited fds"
        (K.fd_count api.Api.proc)
        (K.fd_count child);
      (* Offsets are shared through the common open file description. *)
      let child_api = Api.direct k child in
      ignore (ok_int (Api.write_str child_api fd "child!"));
      Alcotest.(check int)
        "offset shared with child" 12
        (ok_int (Api.stat_size api "/tmp/shared")))

let test_exit_group_kills_process () =
  let eng = E.create () in
  let k = K.create eng in
  let proc = K.new_proc k "p" in
  let after = ref false in
  let tid =
    E.spawn eng ~name:"exiting" (fun () ->
        let api = Api.direct k proc in
        ignore (Api.exit_group api 7);
        after := true)
  in
  K.register_task k proc tid;
  E.run eng;
  Alcotest.(check bool) "code after exit not reached" false !after;
  Alcotest.(check bool) "proc marked exited" false (K.proc_alive proc)

let test_dup2_and_getdents () =
  in_proc (fun _k api ->
      let fd = ok_int (Api.openf api "/dev/null" Flags.o_rdonly) in
      (* dup2 onto a fresh number, then onto an occupied one. *)
      let r = ok_int (Api.fcntl api fd Flags.f_dupfd 0) in
      Alcotest.(check bool) "dupfd gives a new fd" true (r <> fd);
      ok_unit (Api.mkdir api "/tmp/dir");
      let f1 = ok_int (Api.openf api "/tmp/dir/b" Flags.(o_creat lor o_wronly)) in
      let f2 = ok_int (Api.openf api "/tmp/dir/a" Flags.(o_creat lor o_wronly)) in
      ignore (ok_int (Api.close api f1));
      ignore (ok_int (Api.close api f2));
      let dirfd = ok_int (Api.openf api "/tmp/dir" Flags.o_rdonly) in
      match
        api.Api.sys Varan_syscall.Sysno.Getdents
          [| Varan_syscall.Args.Int dirfd; Varan_syscall.Args.Buf_out 512 |]
      with
      | { Varan_syscall.Args.ret; out = Some names; _ } ->
        Alcotest.(check int) "two entries" 2 ret;
        Alcotest.(check string) "sorted names" "a\000b"
          (Bytes.to_string names)
      | _ -> Alcotest.fail "getdents failed")

let test_shutdown_write_half () =
  let eng = E.create () in
  let k = K.create eng in
  let proc = K.new_proc k "p" in
  ignore
    (E.spawn eng (fun () ->
         let api = Api.direct k proc in
         let a, b = ok_int (Api.socketpair api) in
         ignore (ok_int (Api.send api a (Bytes.of_string "last words")));
         ok_unit (Api.shutdown api a Flags.shut_wr);
         (* Peer still drains buffered data, then sees EOF. *)
         let data = ok_bytes (Api.recv api b 64) in
         Alcotest.(check string) "data" "last words" (Bytes.to_string data);
         let eof = ok_bytes (Api.recv api b 64) in
         Alcotest.(check int) "EOF" 0 (Bytes.length eof);
         (* Writing into the shut-down side fails. *)
         match Api.send api a (Bytes.of_string "more") with
         | Error Errno.EPIPE -> ()
         | Error e -> Alcotest.failf "expected EPIPE, got %s" (Errno.name e)
         | Ok _ -> Alcotest.fail "expected EPIPE"));
  E.run eng

let test_chdir_getcwd () =
  in_proc (fun _k api ->
      ok_unit (Api.mkdir api "/tmp/wd");
      (match api.Api.sys Varan_syscall.Sysno.Chdir
               [| Varan_syscall.Args.Str "/tmp/wd" |] with
      | { Varan_syscall.Args.ret = 0; _ } -> ()
      | _ -> Alcotest.fail "chdir failed");
      (* Relative path resolution now happens under /tmp/wd. *)
      let fd = ok_int (Api.openf api "rel.txt" Flags.(o_creat lor o_wronly)) in
      ignore (ok_int (Api.close api fd));
      ok_unit (Api.access api "/tmp/wd/rel.txt"))

let test_socketpair_bidirectional () =
  let eng = E.create () in
  let k = K.create eng in
  let proc = K.new_proc k "p" in
  ignore
    (E.spawn eng (fun () ->
         let api = Api.direct k proc in
         let a, b = ok_int (Api.socketpair api) in
         ignore
           (E.spawn_here ~name:"left" (fun () ->
                ignore (ok_int (Api.send api a (Bytes.of_string "ping")));
                let reply = ok_bytes (Api.recv api a 16) in
                Alcotest.(check string) "reply" "pong" (Bytes.to_string reply)));
         ignore
           (E.spawn_here ~name:"right" (fun () ->
                let msg = ok_bytes (Api.recv api b 16) in
                Alcotest.(check string) "message" "ping" (Bytes.to_string msg);
                ignore (ok_int (Api.send api b (Bytes.of_string "pong")))))));
  E.run eng

let test_poll_ready_and_timeout () =
  let eng = E.create () in
  let k = K.create eng in
  let proc = K.new_proc k "p" in
  ignore
    (E.spawn eng (fun () ->
         let api = Api.direct k proc in
         let a, b = ok_int (Api.socketpair api) in
         (* Nothing readable yet: poll times out empty. *)
         let ready =
           ok_int (Api.poll api [ (a, Flags.epollin) ] ~timeout_ms:1)
         in
         Alcotest.(check int) "timeout empty" 0 (List.length ready);
         (* a is writable though. *)
         let ready =
           ok_int (Api.poll api [ (a, Flags.epollout) ] ~timeout_ms:0)
         in
         Alcotest.(check int) "writable" 1 (List.length ready);
         (* Once the peer writes, a becomes readable. *)
         ignore (ok_int (Api.send api b (Bytes.of_string "x")));
         (match ok_int (Api.poll api [ (a, Flags.epollin) ] ~timeout_ms:(-1)) with
         | [ (fd, ev) ] ->
           Alcotest.(check int) "fd" a fd;
           Alcotest.(check bool) "POLLIN" true (ev land Flags.epollin <> 0)
         | l -> Alcotest.failf "expected one entry, got %d" (List.length l));
         (* Unknown fd reports POLLNVAL-ish readiness immediately. *)
         let ready = ok_int (Api.poll api [ (99, Flags.epollin) ] ~timeout_ms:0) in
         Alcotest.(check int) "bad fd reported" 1 (List.length ready)))
  |> ignore;
  E.run eng

let test_poll_wakes_on_data () =
  let eng = E.create () in
  let k = K.create eng in
  let proc = K.new_proc k "p" in
  let woke_at = ref 0L in
  ignore
    (E.spawn eng (fun () ->
         let api = Api.direct k proc in
         let a, b = ok_int (Api.socketpair api) in
         ignore
           (E.spawn_here ~name:"poller" (fun () ->
                ignore
                  (ok_int (Api.poll api [ (a, Flags.epollin) ] ~timeout_ms:500));
                woke_at := E.now_cycles ()));
         ignore
           (E.spawn_here ~name:"writer" (fun () ->
                E.consume 200_000;
                ignore (ok_int (Api.send api b (Bytes.of_string "go")))))));
  E.run eng;
  (* Poll re-checks on a 50k-cycle tick, so it wakes within one tick of
     the write at 200k cycles, far before the 500 ms timeout. *)
  Alcotest.(check bool)
    (Printf.sprintf "woke shortly after data (%Ld)" !woke_at)
    true
    (!woke_at >= 200_000L && !woke_at < 400_000L)

let test_select () =
  let eng = E.create () in
  let k = K.create eng in
  let proc = K.new_proc k "p" in
  ignore
    (E.spawn eng (fun () ->
         let api = Api.direct k proc in
         let a, b = ok_int (Api.socketpair api) in
         let ready =
           ok_int (Api.select api ~read:[ a ] ~write:[ a ] ~timeout_ms:0)
         in
         (* Nothing to read, but writable. *)
         Alcotest.(check (list (pair int int)))
           "only writable"
           [ (a, Flags.epollout) ]
           ready;
         ignore (ok_int (Api.send api b (Bytes.of_string "hi")));
         let ready =
           ok_int (Api.select api ~read:[ a ] ~write:[] ~timeout_ms:(-1))
         in
         Alcotest.(check (list (pair int int)))
           "readable after send"
           [ (a, Flags.epollin) ]
           ready));
  E.run eng

let test_strace () =
  in_proc (fun _k api ->
      let api, trace = Varan_kernel.Strace.attach api in
      let fd = ok_int (Api.openf api "/dev/null" Flags.o_rdonly) in
      ignore (ok_bytes (Api.read api fd 16));
      ignore (ok_int (Api.close api fd));
      Alcotest.(check int) "three calls" 3 (Varan_kernel.Strace.calls trace);
      match Varan_kernel.Strace.lines trace with
      | [ o; r; c ] ->
        let has_prefix p s =
          String.length s >= String.length p && String.sub s 0 (String.length p) = p
        in
        Alcotest.(check bool) "open line" true (has_prefix "open(" o);
        Alcotest.(check bool) "open returns fd" true
          (String.length o > 2 && o.[String.length o - 2] = ' ');
        Alcotest.(check bool) "read line" true (has_prefix "read(" r);
        Alcotest.(check bool) "close line" true (has_prefix "close(" c)
      | l -> Alcotest.failf "expected 3 lines, got %d" (List.length l))

let test_strace_limit () =
  in_proc (fun _k api ->
      let api, trace = Varan_kernel.Strace.attach ~limit:2 api in
      for _ = 1 to 5 do
        ignore (Api.getuid api)
      done;
      Alcotest.(check int) "all counted" 5 (Varan_kernel.Strace.calls trace);
      Alcotest.(check int) "only limit kept" 2
        (List.length (Varan_kernel.Strace.lines trace)))

(* A canonical invocation for every implemented syscall: the dispatcher
   must return success or a proper errno for each — never crash, never
   ENOSYS for calls the table claims to implement (except the few that
   are process-control primitives handled above the kernel). *)
let test_every_syscall_dispatches () =
  let module S = Varan_syscall.Sysno in
  let module A = Varan_syscall.Args in
  let eng = E.create () in
  let k = K.create eng in
  let proc = K.new_proc k "matrix" in
  let tid =
    E.spawn eng (fun () ->
        let api = Api.direct k proc in
        (* A small zoo of resources for fd-based calls. *)
        let file =
          ok_int (Api.openf api "/tmp/matrix" Flags.(o_rdwr lor o_creat))
        in
        ignore (ok_int (Api.write_str api file "0123456789abcdef"));
        let sock_a, sock_b = ok_int (Api.socketpair api) in
        ignore (ok_int (Api.send api sock_b (Bytes.of_string "data")));
        let args_for (s : S.t) : A.t option =
          match s with
          | S.Read | S.Pread64 | S.Readv -> Some [| A.Int sock_a; A.Buf_out 4 |]
          | S.Write | S.Pwrite64 | S.Writev ->
            Some [| A.Int file; A.Buf_in (Bytes.of_string "x") |]
          | S.Open | S.Openat -> Some [| A.Str "/tmp/matrix"; A.Int 0; A.Int 0 |]
          | S.Close -> Some [| A.Int (ok_int (Api.dup api file)) |]
          | S.Stat | S.Lstat -> Some [| A.Str "/tmp/matrix"; A.Buf_out 144 |]
          | S.Fstat -> Some [| A.Int file; A.Buf_out 144 |]
          | S.Poll -> Some [| A.Buf_in Bytes.empty; A.Int 0; A.Buf_out 0 |]
          | S.Select ->
            Some [| A.Buf_in Bytes.empty; A.Buf_in Bytes.empty; A.Int 0 |]
          | S.Lseek -> Some [| A.Int file; A.Int 0; A.Int 0 |]
          | S.Mmap -> Some [| A.Int 0; A.Int 4096 |]
          | S.Mprotect | S.Munmap -> Some [| A.Int 0; A.Int 4096; A.Int 0 |]
          | S.Brk -> Some [| A.Int 0 |]
          | S.Rt_sigaction | S.Rt_sigprocmask | S.Rt_sigreturn ->
            Some [| A.Int 10; A.Int 0; A.Int 0 |]
          | S.Ioctl -> Some [| A.Int file; A.Int 0; A.Int 0 |]
          | S.Access -> Some [| A.Str "/tmp/matrix"; A.Int 0 |]
          | S.Pipe -> Some [| A.Buf_out 8 |]
          | S.Sched_yield | S.Getpid | S.Getppid | S.Getuid | S.Getgid
          | S.Geteuid | S.Getegid | S.Setsid -> Some [||]
          | S.Madvise -> Some [| A.Int 0; A.Int 4096; A.Int 1 |]
          | S.Dup -> Some [| A.Int file |]
          | S.Dup2 -> Some [| A.Int file; A.Int 50 |]
          | S.Nanosleep -> Some [| A.Int 10; A.Int 0 |]
          | S.Sendfile -> Some [| A.Int file; A.Int file; A.Int 0; A.Int 4 |]
          | S.Socket -> Some [| A.Int 2; A.Int 1; A.Int 0 |]
          | S.Connect -> Some [| A.Int sock_a; A.Int 59999 |]
          | S.Accept | S.Accept4 -> Some [| A.Int sock_a; A.Int 0; A.Int 0 |]
          | S.Sendto | S.Sendmsg ->
            Some [| A.Int sock_a; A.Buf_in (Bytes.of_string "y"); A.Int 0 |]
          | S.Recvfrom | S.Recvmsg ->
            Some [| A.Int sock_a; A.Buf_out 4; A.Int 0 |]
          | S.Shutdown -> Some [| A.Int sock_a; A.Int 1 |]
          | S.Bind -> Some [| A.Int sock_a; A.Int 58888 |]
          | S.Listen -> Some [| A.Int sock_a; A.Int 8 |]
          | S.Getsockname | S.Getpeername -> Some [| A.Int sock_a; A.Buf_out 4 |]
          | S.Socketpair -> Some [| A.Buf_out 8 |]
          | S.Setsockopt | S.Getsockopt ->
            Some [| A.Int sock_a; A.Int 1; A.Int 2; A.Buf_out 4 |]
          | S.Clone | S.Fork | S.Execve | S.Exit | S.Exit_group | S.Pause
          | S.Kill ->
            None (* handled above the raw dispatcher or terminates the task *)
          | S.Wait4 -> None (* needs children; covered elsewhere *)
          | S.Uname -> Some [| A.Buf_out 65 |]
          | S.Fcntl -> Some [| A.Int file; A.Int 3; A.Int 0 |]
          | S.Flock -> Some [| A.Int file; A.Int 2 |]
          | S.Fsync | S.Fdatasync -> Some [| A.Int file |]
          | S.Ftruncate -> Some [| A.Int file; A.Int 4 |]
          | S.Getdents -> Some [| A.Int file; A.Buf_out 256 |]
          | S.Getcwd -> Some [| A.Buf_out 64 |]
          | S.Chdir -> Some [| A.Str "/tmp" |]
          | S.Rename -> Some [| A.Str "/tmp/matrix"; A.Str "/tmp/matrix2" |]
          | S.Mkdir -> Some [| A.Str "/tmp/mdir"; A.Int 0o755 |]
          | S.Rmdir -> Some [| A.Str "/tmp/mdir" |]
          | S.Unlink -> Some [| A.Str "/tmp/matrix2" |]
          | S.Readlink -> Some [| A.Str "/tmp"; A.Buf_out 32 |]
          | S.Chmod -> Some [| A.Str "/tmp"; A.Int 0o755 |]
          | S.Umask -> Some [| A.Int 0o022 |]
          | S.Gettimeofday | S.Clock_gettime ->
            Some [| A.Int 0; A.Buf_out 16 |]
          | S.Getrlimit | S.Getrusage -> Some [| A.Int 0; A.Buf_out 16 |]
          | S.Times -> Some [| A.Buf_out 16 |]
          | S.Setuid | S.Setgid -> Some [| A.Int 1000 |]
          | S.Time -> Some [| A.Int 0 |]
          | S.Futex -> Some [| A.Int 77; A.Int 1; A.Int 1 |] (* wake: no block *)
          | S.Epoll_create -> Some [| A.Int 0 |]
          | S.Epoll_wait -> None (* needs an epoll fd; covered elsewhere *)
          | S.Epoll_ctl -> None
          | S.Getcpu -> Some [| A.Buf_out 8 |]
          | S.Getrandom -> Some [| A.Buf_out 8; A.Int 0 |]
        in
        List.iter
          (fun sysno ->
            match args_for sysno with
            | None -> ()
            | Some args ->
              let r = api.Api.sys sysno args in
              let errno_ok =
                r.A.ret >= 0
                ||
                match A.errno_of r with
                | Some e -> e <> Errno.ENOSYS
                | None -> false
              in
              Alcotest.(check bool)
                (Varan_syscall.Sysno.name sysno ^ " dispatches")
                true errno_ok)
          Varan_syscall.Sysno.all)
  in
  K.register_task k proc tid;
  E.run_until_quiescent eng

let () =
  Alcotest.run "varan_kernel"
    [
      ( "files",
        [
          Alcotest.test_case "dev null" `Quick test_dev_null;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "open ENOENT" `Quick test_open_enoent;
          Alcotest.test_case "close EBADF" `Quick test_close_ebadf;
          Alcotest.test_case "O_TRUNC and O_APPEND" `Quick
            test_o_trunc_and_append;
          Alcotest.test_case "urandom" `Quick test_urandom;
          Alcotest.test_case "dup shares offset" `Quick test_dup_shares_offset;
          Alcotest.test_case "lowest-free fd" `Quick
            test_fd_numbers_lowest_free;
          Alcotest.test_case "vfs ops" `Quick test_vfs_ops;
        ] );
      ( "pipes+sockets",
        [
          Alcotest.test_case "pipe blocking" `Quick test_pipe_blocking;
          Alcotest.test_case "socket roundtrip" `Quick test_socket_roundtrip;
          Alcotest.test_case "socket EOF on close" `Quick
            test_socket_eof_on_close;
          Alcotest.test_case "connect refused" `Quick test_connect_refused;
          Alcotest.test_case "nonblocking EAGAIN" `Quick
            test_nonblocking_read_eagain;
          Alcotest.test_case "epoll server pattern" `Quick
            test_epoll_server_pattern;
          Alcotest.test_case "link latency" `Quick
            test_link_latency_delays_delivery;
        ] );
      ( "process+misc",
        [
          Alcotest.test_case "futex wait/wake" `Quick test_futex_wait_wake;
          Alcotest.test_case "time advances" `Quick test_time_advances;
          Alcotest.test_case "pid and ids" `Quick test_getpid_and_ids;
          Alcotest.test_case "fork shares descriptions" `Quick
            test_fork_proc_shares_descriptions;
          Alcotest.test_case "exit_group" `Quick test_exit_group_kills_process;
          Alcotest.test_case "dup2/getdents" `Quick test_dup2_and_getdents;
          Alcotest.test_case "shutdown write half" `Quick
            test_shutdown_write_half;
          Alcotest.test_case "chdir/getcwd" `Quick test_chdir_getcwd;
          Alcotest.test_case "socketpair" `Quick
            test_socketpair_bidirectional;
          Alcotest.test_case "poll ready/timeout" `Quick
            test_poll_ready_and_timeout;
          Alcotest.test_case "poll wakes on data" `Quick
            test_poll_wakes_on_data;
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "full syscall matrix" `Quick
            test_every_syscall_dispatches;
          Alcotest.test_case "strace" `Quick test_strace;
          Alcotest.test_case "strace limit" `Quick test_strace_limit;
        ] );
    ]

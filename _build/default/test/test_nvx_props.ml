(* End-to-end property test of the NVX core: random syscall programs are
   executed natively and under VARAN with several followers; every
   observable result (return values, bytes read, clock values — everything
   except pids) must be identical in the native run, the leader and every
   follower. This is the semantic heart of N-version execution: the
   monitor makes N processes behave as one. *)

module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Api = Varan_kernel.Api
module Flags = Varan_kernel.Flags
module Nvx = Varan_nvx.Session
module Config = Varan_nvx.Config
module Variant = Varan_nvx.Variant
module Prng = Varan_util.Prng

(* A little program language over the syscall API. Programs are
   deterministic given the kernel (urandom draws come from the kernel's
   seeded PRNG), always terminate, and only use resources they created. *)
type op =
  | Open of string
  | Close_newest
  | Read_newest of int
  | Write_newest of int
  | Lseek_newest
  | Stat of string
  | Time
  | Getuid
  | Compute of int
  | Mkdir_tmp of int
  | Create_tmp of int
  | Unlink_tmp of int
  | Getrandom of int
  | Fcntl_newest

let gen_ops rng n =
  let paths = [| "/dev/zero"; "/dev/urandom"; "/dev/null" |] in
  List.init n (fun _ ->
      match Prng.int rng 14 with
      | 0 -> Open paths.(Prng.int rng 3)
      | 1 -> Close_newest
      | 2 -> Read_newest (1 + Prng.int rng 600)
      | 3 -> Write_newest (1 + Prng.int rng 600)
      | 4 -> Lseek_newest
      | 5 -> Stat paths.(Prng.int rng 3)
      | 6 -> Time
      | 7 -> Getuid
      | 8 -> Compute (Prng.int rng 20_000)
      | 9 -> Mkdir_tmp (Prng.int rng 4)
      | 10 -> Create_tmp (Prng.int rng 4)
      | 11 -> Unlink_tmp (Prng.int rng 4)
      | 12 -> Getrandom (1 + Prng.int rng 64)
      | _ -> Fcntl_newest)

(* Run the op list, folding every observable into a digest string. *)
let interpret ops api =
  let buf = Buffer.create 256 in
  let obs fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let fds = ref [] in
  let newest () = match !fds with [] -> None | fd :: _ -> Some fd in
  let payload = Bytes.make 600 'w' in
  List.iter
    (fun op ->
      match op with
      | Open path -> (
        match Api.openf api path Flags.o_rdwr with
        | Ok fd ->
          fds := fd :: !fds;
          obs "open=%d;" fd
        | Error e -> obs "open!%s;" (Varan_syscall.Errno.name e))
      | Close_newest -> (
        match newest () with
        | None -> ()
        | Some fd ->
          fds := List.tl !fds;
          obs "close=%d;"
            (match Api.close api fd with Ok v -> v | Error _ -> -1))
      | Read_newest n -> (
        match newest () with
        | None -> ()
        | Some fd -> (
          match Api.read api fd n with
          | Ok b -> obs "read=%d:%d;" (Bytes.length b) (Hashtbl.hash b)
          | Error e -> obs "read!%s;" (Varan_syscall.Errno.name e)))
      | Write_newest n -> (
        match newest () with
        | None -> ()
        | Some fd -> (
          match Api.write api fd (Bytes.sub payload 0 n) with
          | Ok w -> obs "write=%d;" w
          | Error e -> obs "write!%s;" (Varan_syscall.Errno.name e)))
      | Lseek_newest -> (
        match newest () with
        | None -> ()
        | Some fd ->
          obs "lseek=%d;"
            (match Api.lseek api fd 0 Flags.seek_set with
            | Ok v -> v
            | Error _ -> -1))
      | Stat path -> (
        match Api.stat_size api path with
        | Ok size -> obs "stat=%d;" size
        | Error e -> obs "stat!%s;" (Varan_syscall.Errno.name e))
      | Time -> obs "time=%d;" (Api.time api)
      | Getuid -> obs "uid=%d;" (Api.getuid api)
      | Compute n -> Api.compute api n
      | Mkdir_tmp i -> (
        match Api.mkdir api (Printf.sprintf "/tmp/d%d" i) with
        | Ok () -> obs "mkdir=0;"
        | Error e -> obs "mkdir!%s;" (Varan_syscall.Errno.name e))
      | Create_tmp i -> (
        match
          Api.openf api
            (Printf.sprintf "/tmp/f%d" i)
            (Flags.o_rdwr lor Flags.o_creat)
        with
        | Ok fd ->
          fds := fd :: !fds;
          obs "creat=%d;" fd
        | Error e -> obs "creat!%s;" (Varan_syscall.Errno.name e))
      | Unlink_tmp i -> (
        match Api.unlink api (Printf.sprintf "/tmp/f%d" i) with
        | Ok () -> obs "unlink=0;"
        | Error e -> obs "unlink!%s;" (Varan_syscall.Errno.name e))
      | Getrandom n -> (
        match Api.getrandom api n with
        | Ok b -> obs "rand=%d:%d;" (Bytes.length b) (Hashtbl.hash b)
        | Error e -> obs "rand!%s;" (Varan_syscall.Errno.name e))
      | Fcntl_newest -> (
        match newest () with
        | None -> ()
        | Some fd ->
          obs "fcntl=%d;"
            (match Api.fcntl api fd Flags.f_getfl 0 with
            | Ok v -> v
            | Error _ -> -1)))
    ops;
  Buffer.contents buf

let run_native ~kernel_seed ops =
  let eng = E.create () in
  let k = K.create ~seed:kernel_seed eng in
  let out = ref "" in
  let proc = K.new_proc k "native" in
  let tid =
    E.spawn eng (fun () -> out := interpret ops (Api.direct k proc))
  in
  K.register_task k proc tid;
  E.run eng;
  !out

let run_nvx ~kernel_seed ~followers ~config ops =
  let eng = E.create () in
  let k = K.create ~seed:kernel_seed eng in
  let n = followers + 1 in
  let outs = Array.make n "" in
  let body i api = outs.(i) <- interpret ops api in
  let variants =
    List.init n (fun i ->
        Variant.make (Printf.sprintf "v%d" i) (Variant.single (body i)))
  in
  let session = Nvx.launch ~config k variants in
  E.run_until_quiescent eng;
  (outs, Nvx.crashes session)

let arb_program =
  QCheck.make
    ~print:(fun (seed, len) -> Printf.sprintf "seed=%d len=%d" seed len)
    QCheck.Gen.(pair (int_bound 1_000_000) (int_range 5 60))

let equivalence_prop ~config ~followers (seed, len) =
  let ops = gen_ops (Prng.create seed) len in
  let native = run_native ~kernel_seed:seed ops in
  let outs, crashes = run_nvx ~kernel_seed:seed ~followers ~config ops in
  crashes = []
  && Array.for_all (fun o -> o = native) outs
  && String.length native > 0

let prop_nvx_matches_native =
  QCheck.Test.make ~name:"NVX(2 followers) == native, observably" ~count:120
    arb_program
    (equivalence_prop ~config:Config.default ~followers:2)

let prop_nvx_matches_native_busy_wait =
  QCheck.Test.make ~name:"busy-wait config equivalent" ~count:40 arb_program
    (equivalence_prop
       ~config:{ Config.default with Config.follower_wait = Config.Busy_wait }
       ~followers:1)

let prop_nvx_matches_native_pump =
  QCheck.Test.make ~name:"event-pump config equivalent" ~count:40 arb_program
    (equivalence_prop
       ~config:{ Config.default with Config.streaming = Config.Event_pump }
       ~followers:2)

let prop_nvx_matches_native_tiny_ring =
  QCheck.Test.make ~name:"single-slot ring equivalent" ~count:40 arb_program
    (equivalence_prop
       ~config:(Config.with_ring_size Config.default 1)
       ~followers:1)

let prop_nvx_matches_native_trap_only =
  QCheck.Test.make ~name:"trap-only interception equivalent" ~count:40
    arb_program
    (equivalence_prop
       ~config:{ Config.default with Config.interception = Config.Trap_only }
       ~followers:1)

let () =
  Alcotest.run "varan_nvx_props"
    [
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_nvx_matches_native;
          QCheck_alcotest.to_alcotest prop_nvx_matches_native_busy_wait;
          QCheck_alcotest.to_alcotest prop_nvx_matches_native_pump;
          QCheck_alcotest.to_alcotest prop_nvx_matches_native_tiny_ring;
          QCheck_alcotest.to_alcotest prop_nvx_matches_native_trap_only;
        ] );
    ]

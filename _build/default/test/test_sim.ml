(* Tests for the discrete-event engine: virtual time, ordering, condition
   variables, timeouts, kill semantics and deadlock detection. *)

module E = Varan_sim.Engine

let test_consume_advances_time () =
  let eng = E.create () in
  let final = ref 0L in
  ignore
    (E.spawn eng ~name:"a" (fun () ->
         E.consume 100;
         E.consume 50;
         final := E.now_cycles ()));
  E.run eng;
  Alcotest.(check int64) "local time" 150L !final;
  Alcotest.(check int64) "global time" 150L (E.now eng)

let test_zero_consume_is_free () =
  let eng = E.create () in
  ignore (E.spawn eng (fun () -> E.consume 0));
  E.run eng;
  Alcotest.(check int64) "no time passes" 0L (E.now eng)

let test_interleaving_by_time () =
  let eng = E.create () in
  let log = ref [] in
  let emit tag = log := tag :: !log in
  ignore
    (E.spawn eng ~name:"slow" (fun () ->
         E.consume 100;
         emit "slow1";
         E.consume 100;
         emit "slow2"));
  ignore
    (E.spawn eng ~name:"fast" (fun () ->
         E.consume 30;
         emit "fast1";
         E.consume 30;
         emit "fast2"));
  E.run eng;
  Alcotest.(check (list string))
    "events ordered by virtual time"
    [ "fast1"; "fast2"; "slow1"; "slow2" ]
    (List.rev !log)

let test_fifo_tie_break () =
  let eng = E.create () in
  let log = ref [] in
  ignore (E.spawn eng ~name:"first" (fun () -> log := "first" :: !log));
  ignore (E.spawn eng ~name:"second" (fun () -> log := "second" :: !log));
  E.run eng;
  Alcotest.(check (list string))
    "creation order on ties" [ "first"; "second" ] (List.rev !log)

let test_sleep () =
  let eng = E.create () in
  let woke = ref 0L in
  ignore
    (E.spawn eng (fun () ->
         E.consume 10;
         E.sleep 90;
         woke := E.now_cycles ()));
  E.run eng;
  Alcotest.(check int64) "sleep adds to clock" 100L !woke

let test_cond_signal () =
  let eng = E.create () in
  let c = E.Cond.create "c" in
  let wake_time = ref 0L in
  ignore
    (E.spawn eng ~name:"waiter" (fun () ->
         E.Cond.wait c;
         wake_time := E.now_cycles ()));
  ignore
    (E.spawn eng ~name:"signaller" (fun () ->
         E.consume 500;
         E.Cond.signal c));
  E.run eng;
  Alcotest.(check int64) "woken at signaller's time" 500L !wake_time

let test_cond_broadcast () =
  let eng = E.create () in
  let c = E.Cond.create "c" in
  let count = ref 0 in
  for _ = 1 to 5 do
    ignore
      (E.spawn eng (fun () ->
           E.Cond.wait c;
           incr count))
  done;
  ignore
    (E.spawn eng (fun () ->
         E.consume 10;
         E.Cond.broadcast c));
  E.run eng;
  Alcotest.(check int) "all woken" 5 !count

let test_cond_signal_wakes_one () =
  let eng = E.create () in
  let c = E.Cond.create "c" in
  let count = ref 0 in
  for _ = 1 to 3 do
    ignore
      (E.spawn eng (fun () ->
           E.Cond.wait c;
           incr count))
  done;
  ignore
    (E.spawn eng (fun () ->
         E.consume 10;
         E.Cond.signal c));
  E.run_until_quiescent eng;
  Alcotest.(check int) "exactly one woken" 1 !count;
  Alcotest.(check int) "two still waiting" 2 (E.Cond.waiters c)

let test_wait_timeout_expires () =
  let eng = E.create () in
  let c = E.Cond.create "c" in
  let result = ref true in
  let woke = ref 0L in
  ignore
    (E.spawn eng (fun () ->
         result := E.Cond.wait_timeout c 250;
         woke := E.now_cycles ()));
  E.run eng;
  Alcotest.(check bool) "timed out" false !result;
  Alcotest.(check int64) "at deadline" 250L !woke

let test_wait_timeout_signalled () =
  let eng = E.create () in
  let c = E.Cond.create "c" in
  let result = ref false in
  ignore (E.spawn eng (fun () -> result := E.Cond.wait_timeout c 1_000));
  ignore
    (E.spawn eng (fun () ->
         E.consume 100;
         E.Cond.signal c));
  E.run eng;
  Alcotest.(check bool) "signalled before deadline" true !result

let test_deadlock_detection () =
  let eng = E.create () in
  let c = E.Cond.create "never" in
  ignore (E.spawn eng ~name:"stuck" (fun () -> E.Cond.wait c));
  match E.run eng with
  | () -> Alcotest.fail "expected Deadlock"
  | exception E.Deadlock names ->
    Alcotest.(check (list string)) "stuck task reported" [ "stuck" ] names

let test_kill_blocked_task () =
  let eng = E.create () in
  let c = E.Cond.create "never" in
  let cleaned = ref false in
  let victim =
    E.spawn eng ~name:"victim" (fun () ->
        Fun.protect
          ~finally:(fun () -> cleaned := true)
          (fun () -> E.Cond.wait c))
  in
  ignore
    (E.spawn eng ~name:"killer" (fun () ->
         E.consume 10;
         E.kill_here victim));
  E.run eng;
  Alcotest.(check bool) "finally ran on kill" true !cleaned;
  Alcotest.(check bool) "victim dead" false (E.is_alive eng victim)

let test_kill_running_task () =
  let eng = E.create () in
  let reached = ref false in
  let vid =
    E.spawn eng ~name:"victim" (fun () ->
        E.consume 10;
        E.consume 10;
        reached := true)
  in
  ignore
    (E.spawn eng ~name:"killer" (fun () ->
         E.consume 5;
         E.kill_here vid));
  E.run eng;
  Alcotest.(check bool) "victim never finished body" false !reached

let test_kill_not_started () =
  let eng = E.create () in
  let ran = ref false in
  let vid = E.spawn eng ~name:"victim" (fun () -> ran := true) in
  E.kill eng vid;
  E.run eng;
  Alcotest.(check bool) "never ran" false !ran

let test_spawn_here_inherits_time () =
  let eng = E.create () in
  let child_time = ref 0L in
  ignore
    (E.spawn eng (fun () ->
         E.consume 1234;
         ignore
           (E.spawn_here ~name:"child" (fun () ->
                child_time := E.now_cycles ()))));
  E.run eng;
  Alcotest.(check int64) "child starts at parent's time" 1234L !child_time

let test_failure_recorded () =
  let eng = E.create () in
  ignore (E.spawn eng ~name:"boom" (fun () -> failwith "boom"));
  E.run eng;
  match E.failures eng with
  | [ (_, Failure msg) ] -> Alcotest.(check string) "message" "boom" msg
  | _ -> Alcotest.fail "expected exactly one failure"

let test_yield_fairness () =
  let eng = E.create () in
  let log = ref [] in
  let task tag =
    E.spawn eng ~name:tag (fun () ->
        for _ = 1 to 2 do
          log := tag :: !log;
          E.yield ()
        done)
  in
  ignore (task "a");
  ignore (task "b");
  E.run eng;
  Alcotest.(check (list string))
    "round-robin at equal time"
    [ "a"; "b"; "a"; "b" ]
    (List.rev !log)

let test_many_tasks_scale () =
  let eng = E.create () in
  let total = ref 0 in
  for i = 1 to 1000 do
    ignore
      (E.spawn eng (fun () ->
           E.consume i;
           incr total))
  done;
  E.run eng;
  Alcotest.(check int) "all tasks ran" 1000 !total;
  Alcotest.(check int64) "time is max consume" 1000L (E.now eng)

let () =
  Alcotest.run "varan_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "consume advances time" `Quick
            test_consume_advances_time;
          Alcotest.test_case "zero consume free" `Quick
            test_zero_consume_is_free;
          Alcotest.test_case "interleaving by time" `Quick
            test_interleaving_by_time;
          Alcotest.test_case "fifo tie break" `Quick test_fifo_tie_break;
          Alcotest.test_case "sleep" `Quick test_sleep;
          Alcotest.test_case "many tasks" `Quick test_many_tasks_scale;
          Alcotest.test_case "spawn_here inherits time" `Quick
            test_spawn_here_inherits_time;
          Alcotest.test_case "failure recorded" `Quick test_failure_recorded;
          Alcotest.test_case "yield fairness" `Quick test_yield_fairness;
        ] );
      ( "cond",
        [
          Alcotest.test_case "signal wakes at signaller time" `Quick
            test_cond_signal;
          Alcotest.test_case "broadcast wakes all" `Quick test_cond_broadcast;
          Alcotest.test_case "signal wakes one" `Quick
            test_cond_signal_wakes_one;
          Alcotest.test_case "wait_timeout expires" `Quick
            test_wait_timeout_expires;
          Alcotest.test_case "wait_timeout signalled" `Quick
            test_wait_timeout_signalled;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "deadlock detection" `Quick
            test_deadlock_detection;
          Alcotest.test_case "kill blocked task" `Quick test_kill_blocked_task;
          Alcotest.test_case "kill running task" `Quick test_kill_running_task;
          Alcotest.test_case "kill before start" `Quick test_kill_not_started;
        ] );
    ]

(* Real (wall-clock) performance of the implementation's hot components,
   measured with Bechamel: the BPF interpreter and compiler, the binary
   rewriter, the shared-memory pool, the Disruptor ring (driven inside a
   simulation engine, since its blocking paths are engine condition
   variables) and the discrete-event engine itself. These complement the
   virtual-time results: they show the library itself is fast enough to
   be used as a research vehicle.

   Every estimate is also written to BENCH_hotpath.json at the repo root
   (see Report.save_hotpath_json) so the perf trajectory is
   machine-trackable across PRs. Set VARAN_BENCH_SMOKE=1 for a fast CI
   smoke run with a reduced measurement quota. *)

open Bechamel
open Toolkit
module E = Varan_sim.Engine
module Ring = Varan_ringbuf.Ring
module Pool = Varan_shmem.Pool
module Asm = Varan_bpf.Asm
module Interp = Varan_bpf.Interp
module Rules = Varan_bpf.Rules
module Rewriter = Varan_binary.Rewriter
module Rewrite_cache = Varan_binary.Rewrite_cache
module Codegen = Varan_binary.Codegen
module Prng = Varan_util.Prng
module Tape = Varan_nvx.Tape
module Checkpoint = Varan_nvx.Checkpoint
module Kernel = Varan_kernel.Kernel
module Event = Varan_ringbuf.Event
module Lanes = Varan_ringbuf.Lanes
module Node = Varan_net.Node
module Bridge = Varan_net.Bridge

let listing1 = Asm.assemble_exn Rules.listing1

let bpf_data = { Interp.nr = 102; args = [||] }
let bpf_event = { Interp.ev_nr = 108; ev_ret = 0; ev_args = [||] }

let bpf_test =
  Test.make ~name:"bpf-interp-listing1"
    (Staged.stage (fun () ->
         ignore (Interp.run listing1 ~data:bpf_data ~event:bpf_event)))

(* The same filter compiled once to closures: this pair is the
   compiled-vs-interpreted headline number. *)
let bpf_compiled_test =
  let compiled = Interp.compile listing1 in
  Test.make ~name:"bpf-compiled-listing1"
    (Staged.stage (fun () ->
         ignore (Interp.run_compiled compiled ~data:bpf_data ~event:bpf_event)))

let rewrite_code =
  let rng = Prng.create 99 in
  Codegen.profile_image rng ~code_bytes:30_000 ~syscall_share:0.02

let rewriter_test =
  Test.make ~name:"rewriter-30kB-image"
    (Staged.stage (fun () -> ignore (Rewriter.rewrite rewrite_code)))

(* The spawn fast path: same 30 kB image, but served from a warm
   content-addressed cache — hash, copy, and O(sites) site-id rebase
   instead of a full disassemble-and-patch. The ratio of this row to
   [rewriter-30kB-image] is the headline spawn speedup. *)
let rewriter_cached_test =
  let cache = Rewrite_cache.create () in
  ignore (Rewrite_cache.prepare cache rewrite_code);
  Test.make ~name:"rewriter-30kB-cached"
    (Staged.stage (fun () ->
         ignore (Rewrite_cache.prepare cache ~first_site_id:512 rewrite_code)))

let pool_test =
  let pool = Pool.create () in
  Test.make ~name:"pool-alloc-free-512B"
    (Staged.stage (fun () ->
         let c = Pool.alloc pool 512 in
         Pool.free pool c))

(* The zero-copy read path used by follower replay and the recorder:
   fill a caller-owned buffer straight from the chunk. *)
let pool_read_into_test =
  let pool = Pool.create () in
  let c = Pool.alloc pool 512 in
  let dst = Bytes.create 512 in
  Test.make ~name:"pool-read-into-512B"
    (Staged.stage (fun () -> ignore (Pool.read_into c dst ~len:512)))

(* One ring revolution cycle: publish 256 events and have [nconsumers]
   drain them all, in runs of [batch] (batch 1 is the one-at-a-time
   path). The whole simulation — task switches included — is the
   measured unit, as in the paper's streaming hot path. *)
let ring_cycle ~nconsumers ~batch () =
  let eng = E.create () in
  let ring = Ring.create ~size:256 "bench" in
  let handles = Array.init nconsumers (fun _ -> Ring.subscribe ring) in
  Array.iteri
    (fun i h ->
      ignore
        (E.spawn eng ~name:(Printf.sprintf "c%d" i) (fun () ->
             let left = ref 256 in
             if batch = 1 then
               while !left > 0 do
                 ignore (Ring.consume_h h);
                 decr left
               done
             else
               while !left > 0 do
                 let got = Ring.consume_batch_h h ~max:batch in
                 left := !left - List.length got
               done)))
    handles;
  ignore
    (E.spawn eng ~name:"producer" (fun () ->
         if batch = 1 then
           for i = 1 to 256 do
             Ring.publish ring i
           done
         else begin
           let i = ref 0 in
           while !i < 256 do
             Ring.publish_batch ring (Array.init batch (fun j -> !i + j));
             i := !i + batch
           done
         end));
  E.run eng

let ring_tests =
  List.concat_map
    (fun nconsumers ->
      List.map
        (fun batch ->
          Test.make
            ~name:(Printf.sprintf "ring-256-c%d-b%d" nconsumers batch)
            (Staged.stage (ring_cycle ~nconsumers ~batch)))
        [ 1; 8; 64 ])
    [ 1; 2; 3; 4 ]

(* Checkpointed rejoin latency vs. tape length: a follower respawned
   into an [n]-event session restores the nearest checkpoint (taken
   every 512 events) and replays only the tape delta behind it. The
   three rows must stay flat — the delta is bounded by the checkpoint
   interval, not by [n] — which is the whole point of rr-style rejoin
   over full-tape replay.

   Each row rejoins to a target exactly 256 events past a checkpoint,
   so all three replay an identical delta and the rows are directly
   comparable: any spread beyond noise is a real length-dependent cost
   (the earlier formulation replayed [n mod 512]-ish deltas, which made
   the 100k row look ~4x faster than the 1k row purely because its
   target happened to fall nearer a checkpoint). *)
let rejoin_setup n =
  let tape = Tape.create () in
  let store = Checkpoint.create () in
  let eng = E.create () in
  let k = Kernel.create ~seed:7 eng in
  let proc = Kernel.new_proc k "bench" in
  let fds = Kernel.snapshot_fds proc in
  let out = Bytes.make 24 'x' in
  for i = 0 to n - 1 do
    Tape.append tape
      (Event.make ~clock:(i + 1) ~ret:i ~args:[| i; i * 3 |] ((i * 7) mod 300))
      ~out:(if i land 3 = 0 then Some out else None);
    if (i + 1) mod 512 = 0 then
      Checkpoint.store store
        {
          Checkpoint.cp_idx = 1;
          cp_seq = i + 1;
          cp_clock = i + 1;
          cp_fds = fds;
          cp_state = Bytes.create 64;
        }
  done;
  (tape, store)

let rejoin tape store n =
  (* Rejoin target: 256 events past the last checkpoint that fits. *)
  let at = (((n - 256) / 512) * 512) + 256 in
  let start =
    match Checkpoint.nearest_any store ~seq:at with
    | Some cp -> cp.Checkpoint.cp_seq
    | None -> 0
  in
  let acc = ref 0 in
  for i = start to at - 1 do
    let e = Tape.get tape i in
    acc := !acc + (e.Tape.t_ret land 0xffff)
  done;
  !acc

let rejoin_tests =
  List.map
    (fun n ->
      let tape, store = rejoin_setup n in
      Test.make
        ~name:(Printf.sprintf "rejoin-latency-tape-%dk" (n / 1000))
        (Staged.stage (fun () -> ignore (rejoin tape store n))))
    [ 1_000; 10_000; 100_000 ]

(* Steady-state recorder footprint: a million-event stream with the
   retention floor trailing 2048 events behind the head. The reported
   number is resident bytes per retained event (packed sealed segments
   plus the open segment) — the honest per-event cost of keeping the
   rejoin window, independent of how long the session has run. *)
let tape_bytes_per_event () =
  let tape = Tape.create () in
  let n = 1_000_000 in
  let out = Bytes.make 24 'x' in
  for i = 0 to n - 1 do
    Tape.append tape
      (Event.make ~clock:(i + 1) ~ret:i ((i * 7) mod 300))
      ~out:(if i land 3 = 0 then Some out else None);
    if (i + 1) mod 4096 = 0 then Tape.retire tape ~keep_from:(i + 1 - 2048)
  done;
  let retained = Tape.length tape - Tape.base tape in
  float_of_int (Tape.resident_bytes tape) /. float_of_int retained

let engine_test =
  Test.make ~name:"engine-1k-task-switches"
    (Staged.stage (fun () ->
         let eng = E.create () in
         ignore
           (E.spawn eng (fun () ->
                for _ = 1 to 1_000 do
                  E.consume 1
                done));
         E.run eng))

(* The same 1k-consume chain with the span tracer armed: every dispatch
   slice emits a begin/end span pair into the bounded buffer. The plain
   row above runs with tracing compiled in but disabled (one
   load-and-branch per dispatch), so this pair yields both numbers CI
   cares about — the disabled row for the ≤5% overhead gate against its
   recorded baseline, and the enabled/disabled ratio derived below. *)
let engine_traced_test =
  Test.make ~name:"engine-1k-task-switches-traced"
    (Staged.stage (fun () ->
         Varan_obs.Trace.configure ~capacity:(1 lsl 12) ();
         let eng = E.create () in
         ignore
           (E.spawn eng (fun () ->
                for _ = 1 to 1_000 do
                  E.consume 1
                done));
         E.run eng;
         Varan_obs.Trace.reset ()))

(* The pure ready-ring chain: two tasks ping-pong signal/wait at a
   constant virtual time, so every dispatch is a same-timestamp ready
   ring hop (two array stores) rather than a heap push+pop. Together
   with [engine-1k-task-switches] (the heap/inline consume chain) this
   pins both halves of the scheduler hot path. *)
let engine_chain_test =
  Test.make ~name:"engine-ready-ring-chain-1k"
    (Staged.stage (fun () ->
         let eng = E.create () in
         let ping = E.Cond.create "ping" and pong = E.Cond.create "pong" in
         ignore
           (E.spawn eng ~name:"echo" (fun () ->
                for _ = 1 to 1_000 do
                  E.Cond.wait ping;
                  E.Cond.signal pong
                done));
         ignore
           (E.spawn eng ~name:"driver" (fun () ->
                for _ = 1 to 1_000 do
                  E.Cond.signal ping;
                  E.Cond.wait pong
                done));
         E.run eng))

(* One lane revolution at 64 threads: a producer publishes 256 events
   round-robin across 64 tids into a ring; 64 consumer tasks pump the
   shared [Lanes] demux and drain their own lane. This is the follower
   replay topology of a 64-thread variant reduced to its moving parts —
   ring publish, per-tid routing, peek/advance — with the engine's task
   switching included, as in the other ring rows. *)
let ring_lanes_cycle () =
  let nthreads = 64 in
  let total = 256 in
  let eng = E.create () in
  let ring = Ring.create ~size:256 "bench-lanes" in
  let h = Ring.subscribe ring in
  let lanes =
    Lanes.create ~consumer:h
      ~is_sync:(fun _ -> false)
      ~on_route:ignore ~capacity:128
  in
  let per = total / nthreads in
  for tid = 0 to nthreads - 1 do
    ignore
      (E.spawn eng ~name:(Printf.sprintf "lane%d" tid) (fun () ->
           let got = ref 0 in
           while !got < per do
             Lanes.pump lanes;
             match Lanes.peek lanes ~tid with
             | Some _ ->
               if Lanes.advance lanes ~tid then Ring.poke ring;
               incr got
             | None -> Ring.wait_activity ring
           done))
  done;
  ignore
    (E.spawn eng ~name:"producer" (fun () ->
         for i = 0 to total - 1 do
           Ring.publish ring
             (Event.make ~tid:(i mod nthreads) ~ret:i ~clock:(i + 1) 39)
         done));
  E.run eng

let ring_lanes_test =
  Test.make ~name:"ring-lanes-t64-cycle" (Staged.stage ring_lanes_cycle)

(* One cross-node ring revolution: 256 events published into a local
   ring whose only consumer is the ring bridge, coalesced into 64-event
   batch frames, shipped over the simulated link, republished into the
   mirror ring and drained by one remote consumer. The measured unit is
   the whole simulation, as in the ring rows; the ratio of this row to
   [ring-256-c1-b64] (reported as [bridge-cycle-local-ratio]) is the
   real-cost multiplier of crossing a node boundary. The bridge's
   sender/receiver/ack tasks block forever by design, so the cycle ends
   with [run_until_quiescent], not [run]. *)
let bridge_cycle () =
  let eng = E.create () in
  let local_node = Node.create ~eng "leader-node" in
  let remote_node = Node.create ~eng "remote-node" in
  let ring = Ring.create ~size:256 "bench-local" in
  let mirror = Ring.create ~size:256 "bench-mirror" in
  let _bridge =
    Bridge.create ~local_node ~remote_node ~local:ring ~mirror
      ~cfg:{ Bridge.default_config with Bridge.batch_max = 64 }
      ~latency:500
      ~materialize:(fun e -> e)
      ~discard:ignore
      ~must_replicate:(fun _ -> true)
      ()
  in
  let h = Ring.subscribe mirror in
  ignore
    (E.spawn eng ~name:"remote-consumer" (fun () ->
         for _ = 1 to 256 do
           ignore (Ring.consume_h h)
         done));
  ignore
    (E.spawn eng ~name:"producer" (fun () ->
         for i = 1 to 256 do
           Ring.publish ring (Event.make ~clock:i ~ret:i 39)
         done));
  E.run_until_quiescent eng

let bridge_test =
  Test.make ~name:"bridge-cycle-b64" (Staged.stage bridge_cycle)

let tests =
  [
    bpf_test;
    bpf_compiled_test;
    rewriter_test;
    rewriter_cached_test;
    pool_test;
    pool_read_into_test;
  ]
  @ ring_tests
  @ rejoin_tests
  @ [
      engine_test; engine_traced_test; engine_chain_test; ring_lanes_test;
      bridge_test;
    ]

let smoke = Sys.getenv_opt "VARAN_BENCH_SMOKE" <> None

(* Minor words allocated by one [Cond.broadcast] with [nwaiters] parked
   tasks. The wake entries come from the scheduler's slab free-list, so
   the cost must not scale with the waiter count — the old
   implementation Queue.copy'd the waiter queue per broadcast, which a
   64-waiter run exposes immediately. *)
let broadcast_alloc_words nwaiters =
  let eng = E.create () in
  let c = E.Cond.create "bcast" in
  for _ = 1 to nwaiters do
    ignore (E.spawn eng (fun () -> E.Cond.wait c))
  done;
  let words = ref 0.0 in
  ignore
    (E.spawn eng (fun () ->
         E.consume 10;
         let before = Gc.minor_words () in
         E.Cond.broadcast c;
         words := Gc.minor_words () -. before));
  E.run eng;
  !words

let check_broadcast_allocation () =
  let w2 = broadcast_alloc_words 2 in
  let w64 = broadcast_alloc_words 64 in
  Printf.printf
    "  broadcast allocation: %.0f minor words @2 waiters, %.0f @64\n" w2 w64;
  if w64 > w2 +. 64.0 then begin
    Printf.printf
      "  FAIL: broadcast allocates per waiter (+%.0f words for 62 extra \
       waiters)\n"
      (w64 -. w2);
    exit 1
  end

let run () =
  print_endline
    "=== Real wall-clock microbenchmarks of the implementation (Bechamel) \
     ===\n";
  if smoke then print_endline "  (smoke mode: reduced measurement quota)\n";
  let instance = Instance.monotonic_clock in
  let cfg =
    if smoke then Benchmark.cfg ~limit:50 ~quota:(Time.second 0.02) ()
    else Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let estimates = ref [] in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"" [ test ])
      in
      Hashtbl.iter
        (fun name raw ->
          let name =
            if String.length name > 0 && name.[0] = '/' then
              String.sub name 1 (String.length name - 1)
            else name
          in
          let est = Analyze.one ols instance raw in
          (match Analyze.OLS.estimates est with
          | Some [ ns ] ->
            Printf.printf "  %-28s %12.0f ns/run\n" name ns;
            estimates := (name, ns) :: !estimates
          | _ -> Printf.printf "  %-28s (no estimate)\n" name);
          ignore raw)
        results)
    tests;
  (* Not a timing: resident tape bytes per retained event at steady
     state, reported through the same JSON so CI can track it. *)
  let bpe = tape_bytes_per_event () in
  Printf.printf "  %-28s %12.1f bytes/event (resident, retained window)\n"
    "tape-bytes-per-event" bpe;
  estimates := ("tape-bytes-per-event", bpe) :: !estimates;
  (* Derived: how much more a cross-node revolution costs than the same
     revolution on a local ring. Batching should keep this a small
     constant; a blowup means the bridge is doing per-event work. *)
  (match
     ( List.assoc_opt "bridge-cycle-b64" !estimates,
       List.assoc_opt "ring-256-c1-b64" !estimates )
   with
  | Some bridge_ns, Some ring_ns when ring_ns > 0.0 ->
    let ratio = bridge_ns /. ring_ns in
    Printf.printf "  %-28s %12.1f x (vs ring-256-c1-b64)\n"
      "bridge-cycle-local-ratio" ratio;
    estimates := ("bridge-cycle-local-ratio", ratio) :: !estimates
  | _ -> ());
  (* Derived: the cost of actually recording spans, per task switch.
     (The cost of the *disabled* instrumentation is what the CI overhead
     gate tracks, via the plain engine-1k-task-switches row.) *)
  (match
     ( List.assoc_opt "engine-1k-task-switches-traced" !estimates,
       List.assoc_opt "engine-1k-task-switches" !estimates )
   with
  | Some traced_ns, Some plain_ns when plain_ns > 0.0 ->
    let ratio = traced_ns /. plain_ns in
    Printf.printf "  %-28s %12.2f x (vs untraced)\n" "trace-enabled-ratio"
      ratio;
    estimates := ("trace-enabled-ratio", ratio) :: !estimates
  | _ -> ());
  check_broadcast_allocation ();
  Report.save_hotpath_json (List.rev !estimates);
  print_newline ()

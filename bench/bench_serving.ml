(* Serving-layer benchmark: req/s vs shard count (the single-ring
   ceiling evidence of ROADMAP item 4) and tail latency vs follower
   count, both from the open-loop Poisson generator so p99/p999 include
   queueing delay. Writes BENCH_serving.json for the CI scaling gate. *)

module Serving = Varan_workloads.Serving
module Driver = Varan_workloads.Driver
module Tablefmt = Varan_util.Tablefmt

let smoke = Sys.getenv_opt "VARAN_BENCH_SMOKE" <> None

let base_spec =
  if smoke then
    {
      Serving.default with
      Serving.sv_requests = 4_000;
      sv_clients = 100_000;
      sv_warmup = 100;
    }
  else Serving.default

let shard_counts = [ 1; 2; 4; 8 ]
let follower_counts = [ 0; 1; 2; 3 ]

let row_of ~name ~shards ~followers (o : Serving.outcome) =
  let m = o.Serving.o_measurement in
  {
    Report.r_name = name;
    r_shards = shards;
    r_followers = followers;
    r_completed = m.Driver.requests;
    r_errors = m.Driver.errors;
    r_req_per_s = m.Driver.throughput_rps;
    r_mean_us = m.Driver.mean_latency_us;
    r_p50_us = m.Driver.p50_us;
    r_p99_us = m.Driver.p99_us;
    r_p999_us = m.Driver.p999_us;
  }

let run () =
  let table =
    Tablefmt.create
      [
        ("row", Tablefmt.Left);
        ("req/s", Tablefmt.Right);
        ("mean us", Tablefmt.Right);
        ("p50 us", Tablefmt.Right);
        ("p99 us", Tablefmt.Right);
        ("p999 us", Tablefmt.Right);
        ("errs", Tablefmt.Right);
        ("zygote forks", Tablefmt.Right);
        ("cold rewrites", Tablefmt.Right);
      ]
  in
  let add_table_row name (o : Serving.outcome) =
    let m = o.Serving.o_measurement in
    Tablefmt.add_row table
      [
        name;
        Printf.sprintf "%.0f" m.Driver.throughput_rps;
        Printf.sprintf "%.1f" m.Driver.mean_latency_us;
        Printf.sprintf "%.1f" m.Driver.p50_us;
        Printf.sprintf "%.1f" m.Driver.p99_us;
        Printf.sprintf "%.1f" m.Driver.p999_us;
        string_of_int m.Driver.errors;
        string_of_int o.Serving.o_zygote_forks;
        string_of_int o.Serving.o_rewrite_cache.Varan_binary.Rewrite_cache.misses;
      ]
  in
  (* Req/s vs shard count at a fixed follower count. The arrival rate is
     far above even the 8-shard saturation point, so each row measures
     pool capacity. *)
  let shard_rows =
    List.map
      (fun shards ->
        let name = Printf.sprintf "shards-%d" shards in
        let o =
          Serving.run ~label:name { base_spec with Serving.sv_shards = shards }
        in
        (match o.Serving.o_degraded with
        | [] -> ()
        | ds ->
          List.iter
            (fun (s, why) ->
              Printf.printf "  !! shard %d degraded: %s\n" s why)
            ds);
        add_table_row name o;
        row_of ~name ~shards ~followers:base_spec.Serving.sv_followers o)
      shard_counts
  in
  Tablefmt.add_rule table;
  (* Tail latency vs follower count at a fixed shard count: more
     followers cost ring-gating on the leader's publish path, and the
     open-loop tail shows what the mean hides. *)
  let follower_rows =
    List.map
      (fun followers ->
        let name = Printf.sprintf "followers-%d" followers in
        let o =
          Serving.run ~label:name
            {
              base_spec with
              Serving.sv_shards = 4;
              sv_followers = followers;
            }
        in
        add_table_row name o;
        row_of ~name ~shards:4 ~followers o)
      follower_counts
  in
  print_endline "=== Sharded serving: open-loop Poisson load ===";
  Printf.printf
    "arrival: 1 req / %.0f cycles mean; %d requests over %d simulated \
     clients, %d workers%s\n\n"
    base_spec.Serving.sv_mean_gap_cycles base_spec.Serving.sv_requests
    base_spec.Serving.sv_clients base_spec.Serving.sv_workers
    (if smoke then " (smoke quota)" else "");
  Tablefmt.print table;
  (let rps shards =
     match
       List.find_opt (fun r -> r.Report.r_name = Printf.sprintf "shards-%d" shards) shard_rows
     with
     | Some r -> r.Report.r_req_per_s
     | None -> 0.0
   in
   let one = rps 1 in
   if one > 0.0 then
     List.iter
       (fun n ->
         if n > 1 then
           Printf.printf "scaling x%d: %.2fx linear\n" n
             (rps n /. (float_of_int n *. one)))
       shard_counts);
  Report.save_serving_json (shard_rows @ follower_rows)

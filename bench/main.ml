(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (DESIGN.md maps each to its experiment id).

   Usage:
     main.exe                 run everything
     main.exe <target>...     run selected targets:
       fig4 table1 fig5 fig6 table2 fig7 fig8
       failover multirev sanitize recrep
       ablate micro *)

let targets : (string * string * (unit -> unit)) list =
  [
    ("fig4", "E1: syscall microbenchmarks (Figure 4)", Bench_micro.run);
    ("table1", "E2: server applications (Table 1)", Bench_servers.table1);
    ("fig5", "E3: C10k overhead vs followers (Figure 5)", Bench_servers.fig5);
    ("fig6", "E5: prior-work servers vs followers (Figure 6)", Bench_servers.fig6);
    ("table2", "E4: comparison with prior NVX systems (Table 2)", Bench_servers.table2);
    ("fig7", "E6: SPEC CPU2000 (Figure 7)", Bench_spec.fig7);
    ("fig8", "E7: SPEC CPU2006 (Figure 8)", Bench_spec.fig8);
    ("failover", "E8: transparent failover (Section 5.1)", Bench_scenarios.failover);
    ("multirev", "E9: multi-revision execution (Section 5.2)", Bench_scenarios.multirev);
    ("sanitize", "E10: live sanitization (Section 5.3)", Bench_scenarios.sanitize);
    ("recrep", "E11: record-replay (Section 5.4)", Bench_scenarios.recrep);
    ("serving", "sharded serving: req/s vs shards, tail vs followers", Bench_serving.run);
    ("ablate", "design ablations (DESIGN.md section 5)", Bench_ablate.run);
    ("micro", "real wall-clock component benchmarks", Bench_bechamel.run);
  ]

let run_target (name, title, f) =
  Printf.printf "\n################ %s [%s] ################\n\n" title name;
  f ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] -> List.iter run_target targets
  | names ->
    List.iter
      (fun n ->
        match List.find_opt (fun (name, _, _) -> name = n) targets with
        | Some t -> run_target t
        | None ->
          Printf.eprintf "unknown target %S; available: %s\n" n
            (String.concat " " (List.map (fun (n, _, _) -> n) targets));
          exit 1)
      names

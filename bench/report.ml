(* CSV export for the benchmark harness: every table the harness prints is
   also written under results/ so downstream tooling (plots, regression
   tracking) can consume the numbers without scraping stdout. *)

let results_dir = "results"

let ensure_dir () =
  if not (Sys.file_exists results_dir) then Sys.mkdir results_dir 0o755

let save_csv ~name table =
  ensure_dir ();
  let path = Filename.concat results_dir (name ^ ".csv") in
  let oc = open_out path in
  output_string oc (Varan_util.Tablefmt.to_csv table);
  close_out oc;
  Printf.printf "[saved %s]\n" path

(* Machine-trackable hot-path regression record, written at the repo root
   so CI can diff the perf trajectory across PRs. *)
let hotpath_json_path = "BENCH_hotpath.json"

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Serving-layer trajectory (req/s vs shard count, tail latency vs
   follower count), also at the repo root for the CI scaling gate. *)
let serving_json_path = "BENCH_serving.json"

type serving_row = {
  r_name : string;
  r_shards : int;
  r_followers : int;
  r_completed : int;
  r_errors : int;
  r_req_per_s : float;
  r_mean_us : float;
  r_p50_us : float;
  r_p99_us : float;
  r_p999_us : float;
}

let save_serving_json rows =
  let oc = open_out serving_json_path in
  output_string oc "{\n";
  output_string oc "  \"schema\": \"varan-serving/1\",\n";
  output_string oc "  \"latency_unit\": \"virtual_us\",\n";
  output_string oc "  \"rows\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"shards\": %d, \"followers\": %d, \
         \"completed\": %d, \"errors\": %d, \"req_per_s\": %.1f, \
         \"mean_us\": %.2f, \"p50_us\": %.2f, \"p99_us\": %.2f, \
         \"p999_us\": %.2f}%s\n"
        (json_escape r.r_name) r.r_shards r.r_followers r.r_completed
        r.r_errors r.r_req_per_s r.r_mean_us r.r_p50_us r.r_p99_us r.r_p999_us
        (if i = n - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "[saved %s]\n" serving_json_path

let save_hotpath_json results =
  let oc = open_out hotpath_json_path in
  output_string oc "{\n";
  output_string oc "  \"schema\": \"varan-hotpath-micro/1\",\n";
  output_string oc "  \"unit\": \"ns/run\",\n";
  output_string oc "  \"results\": {\n";
  let n = List.length results in
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "    \"%s\": %.1f%s\n" (json_escape name) ns
        (if i = n - 1 then "" else ","))
    results;
  output_string oc "  }\n}\n";
  close_out oc;
  Printf.printf "[saved %s]\n" hotpath_json_path

(* CSV export for the benchmark harness: every table the harness prints is
   also written under results/ so downstream tooling (plots, regression
   tracking) can consume the numbers without scraping stdout. *)

let results_dir = "results"

let ensure_dir () =
  if not (Sys.file_exists results_dir) then Sys.mkdir results_dir 0o755

let save_csv ~name table =
  ensure_dir ();
  let path = Filename.concat results_dir (name ^ ".csv") in
  let oc = open_out path in
  output_string oc (Varan_util.Tablefmt.to_csv table);
  close_out oc;
  Printf.printf "[saved %s]\n" path

(* Machine-trackable hot-path regression record, written at the repo root
   so CI can diff the perf trajectory across PRs. *)
let hotpath_json_path = "BENCH_hotpath.json"

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let save_hotpath_json results =
  let oc = open_out hotpath_json_path in
  output_string oc "{\n";
  output_string oc "  \"schema\": \"varan-hotpath-micro/1\",\n";
  output_string oc "  \"unit\": \"ns/run\",\n";
  output_string oc "  \"results\": {\n";
  let n = List.length results in
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "    \"%s\": %.1f%s\n" (json_escape name) ns
        (if i = n - 1 then "" else ","))
    results;
  output_string oc "  }\n}\n";
  close_out oc;
  Printf.printf "[saved %s]\n" hotpath_json_path

(* The varan command-line driver.

   Mirrors the prototype's usage from the paper (Figure 2):

     varan run --workload redis --followers 3
     varan run --workload lighttpd --followers 1 --ring-size 64 --pump
     varan lockstep --workload nginx --versions 2
     varan rewrite --bytes 30000 --share 0.02
     varan bpf --filter listing1 --leader 108 --follower 102
     varan list

   Everything executes against the simulated machine; statistics are
   printed from the session when the run completes. *)

module Driver = Varan_workloads.Driver
module Workload = Varan_workloads.Workload
module Catalog = Varan_workloads.Catalog
module Config = Varan_nvx.Config
module Nvx = Varan_nvx.Session
module Tablefmt = Varan_util.Tablefmt
module Span = Varan_obs.Trace
module Profile = Varan_obs.Profile
module Flight = Varan_obs.Flight
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Observability flags shared by run/serve/torture                     *)
(* ------------------------------------------------------------------ *)

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a virtual-time span trace of the run (syscall spans per \
           variant, engine dispatch slices, lifecycle and bridge \
           instants) and write it as Chrome trace-event JSON — load the \
           file in Perfetto or chrome://tracing.")

let postmortem_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "postmortem-dir" ] ~docv:"DIR"
        ~doc:
          "Arm flight-recorder post-mortem bundles: on oracle divergence, \
           quarantine-kill or session degradation, the per-shard black \
           box (recent events, lifecycle transition history, bridge/link \
           state, newest checkpoint) is dumped as a JSON bundle in DIR.")

let arm_observability ~trace_out ~postmortem_dir =
  (match postmortem_dir with
  | Some dir ->
    Flight.dump_enabled := true;
    Flight.dump_dir := dir
  | None -> ());
  match trace_out with Some _ -> Span.configure () | None -> ()

let finish_observability ~trace_out =
  match trace_out with
  | None -> ()
  | Some path ->
    Span.write_chrome_json path;
    Printf.printf "trace: %d event(s)%s -> %s\n" (Span.count ())
      (let d = Span.dropped () in
       if d = 0 then "" else Printf.sprintf " (%d dropped)" d)
      path

let workloads =
  [
    ("beanstalkd", Catalog.beanstalkd);
    ("lighttpd", Catalog.lighttpd_wrk);
    ("memcached", Catalog.memcached);
    ("nginx", Catalog.nginx);
    ("redis", Catalog.redis);
    ("apache", Catalog.apache_httpd);
    ("thttpd", Catalog.thttpd);
  ]

let workload_conv =
  let parse s =
    match List.assoc_opt s workloads with
    | Some w -> Ok w
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown workload %s (try: %s)" s
              (String.concat ", " (List.map fst workloads))))
  in
  Arg.conv (parse, fun ppf w -> Format.pp_print_string ppf w.Workload.w_name)

let workload_arg =
  Arg.(
    required
    & opt (some workload_conv) None
    & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Benchmark application to run.")

let followers_arg =
  Arg.(
    value & opt int 1
    & info [ "f"; "followers" ] ~docv:"N" ~doc:"Number of followers.")

let ring_size_arg =
  Arg.(
    value & opt int 256
    & info [ "ring-size" ] ~docv:"EVENTS" ~doc:"Shared ring buffer capacity.")

let pump_arg =
  Arg.(
    value & flag
    & info [ "pump" ]
        ~doc:"Use per-follower queues with an event pump (the discarded design).")

let trap_only_arg =
  Arg.(
    value & flag
    & info [ "trap-only" ]
        ~doc:"Intercept every system call through the INT3 path (no detours).")

let busy_wait_arg =
  Arg.(
    value & flag
    & info [ "busy-wait" ] ~doc:"Followers busy-wait instead of using waitlocks.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "strace" ]
        ~doc:"Print the leader's system call trace after the run (§3.1).")

let config_of ring_size pump trap_only busy_wait trace =
  {
    Config.default with
    Config.ring_size;
    streaming = (if pump then Config.Event_pump else Config.Shared_ring);
    interception =
      (if trap_only then Config.Trap_only else Config.Rewrite);
    follower_wait =
      (if busy_wait then Config.Busy_wait else Config.Waitlock);
    trace_first_variant = trace;
  }

let print_measurement (m : Driver.measurement) =
  Printf.printf "%-14s %8d requests  %8.0f req/s  %8.2f us mean latency\n"
    m.Driver.m_label m.Driver.requests m.Driver.throughput_rps
    m.Driver.mean_latency_us

let print_session_stats (st : Nvx.stats) =
  let table =
    Tablefmt.create ~title:"\nPer-variant statistics:"
      [
        ("variant", Tablefmt.Left);
        ("role", Tablefmt.Left);
        ("syscalls", Tablefmt.Right);
        ("published", Tablefmt.Right);
        ("consumed", Tablefmt.Right);
        ("jump", Tablefmt.Right);
        ("trap", Tablefmt.Right);
        ("vdso", Tablefmt.Right);
        ("stalls", Tablefmt.Right);
      ]
  in
  Array.iter
    (fun v ->
      Tablefmt.add_row table
        [
          v.Nvx.vs_name;
          (match v.Nvx.vs_role with Nvx.Leader -> "leader" | Nvx.Follower -> "follower");
          string_of_int v.Nvx.vs_syscalls;
          string_of_int v.Nvx.vs_events_published;
          string_of_int v.Nvx.vs_events_consumed;
          string_of_int v.Nvx.vs_jump_dispatches;
          string_of_int v.Nvx.vs_trap_dispatches;
          string_of_int v.Nvx.vs_vdso_dispatches;
          string_of_int v.Nvx.vs_stall_blocks;
        ])
    st.Nvx.variants;
  Tablefmt.print table;
  (match st.Nvx.variants.(0).Nvx.vs_rewrite with
  | Some r ->
    Printf.printf
      "Binary rewriting: %d syscall sites, %d detoured, %d INT3 fallbacks, \
       %d bytes of stubs\n"
      r.Varan_binary.Rewriter.total_syscalls r.Varan_binary.Rewriter.jump_sites
      r.Varan_binary.Rewriter.trap_sites r.Varan_binary.Rewriter.stub_bytes
  | None -> ());
  Printf.printf "Shared memory pool: %d allocs, %d live chunks, %d B reserved\n"
    st.Nvx.pool.Varan_shmem.Pool.allocs st.Nvx.pool.Varan_shmem.Pool.live_chunks
    st.Nvx.pool.Varan_shmem.Pool.bytes_reserved

let run_cmd =
  let run w followers ring_size pump trap_only busy_wait trace trace_out
      postmortem_dir =
    let config = config_of ring_size pump trap_only busy_wait trace in
    Printf.printf "Running %s natively...\n%!" w.Workload.w_name;
    let native = Driver.run w Driver.Native in
    print_measurement native;
    (* The span trace covers only the monitored run — the native warm-up
       above would interleave a second engine's timeline into pid 0. *)
    arm_observability ~trace_out ~postmortem_dir;
    Printf.printf "Running %s under VARAN with %d follower(s)...\n%!"
      w.Workload.w_name followers;
    let m, st, session = Driver.run_with_full_session w ~followers ~config in
    print_measurement m;
    Printf.printf "Overhead: %.2fx\n" (Driver.overhead ~baseline:native m);
    print_session_stats st;
    if trace then begin
      print_endline "\nLeader system call trace (first 25 lines):";
      List.iteri
        (fun i l -> if i < 25 then print_endline ("  " ^ l))
        (Nvx.trace_lines session)
    end;
    (match !Flight.last_dump with
    | Some p -> Printf.printf "post-mortem: %s\n" p
    | None -> ());
    finish_observability ~trace_out
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a workload under the VARAN monitor and report overhead.")
    Term.(
      const run $ workload_arg $ followers_arg $ ring_size_arg $ pump_arg
      $ trap_only_arg $ busy_wait_arg $ trace_arg $ trace_out_arg
      $ postmortem_dir_arg)

let lockstep_cmd =
  let versions_arg =
    Arg.(
      value & opt int 2
      & info [ "versions" ] ~docv:"N" ~doc:"Total versions under lockstep.")
  in
  let run w versions =
    let native = Driver.run w Driver.Native in
    print_measurement native;
    let m = Driver.run w (Driver.Lockstep { versions }) in
    print_measurement m;
    Printf.printf "Overhead: %.2fx (ptrace lockstep baseline)\n"
      (Driver.overhead ~baseline:native m)
  in
  Cmd.v
    (Cmd.info "lockstep"
       ~doc:"Run a workload under the ptrace lockstep baseline monitor.")
    Term.(const run $ workload_arg $ versions_arg)

let rewrite_cmd =
  let bytes_arg =
    Arg.(
      value & opt int 30_000
      & info [ "bytes" ] ~docv:"N" ~doc:"Approximate text segment size.")
  in
  let share_arg =
    Arg.(
      value & opt float 0.02
      & info [ "share" ] ~docv:"F" ~doc:"Fraction of instructions that are syscalls.")
  in
  let seed_arg =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"S" ~doc:"Codegen seed.")
  in
  let run bytes share seed =
    let rng = Varan_util.Prng.create seed in
    let code =
      Varan_binary.Codegen.profile_image rng ~code_bytes:bytes
        ~syscall_share:share
    in
    let r = Varan_binary.Rewriter.rewrite code in
    let s = r.Varan_binary.Rewriter.stats in
    Printf.printf
      "Image: %d bytes\nSyscall sites: %d\n  detoured (jmp): %d\n  INT3 \
       fallbacks: %d\nRelocated instructions: %d\nStub bytes appended: %d\n"
      (Bytes.length code) s.Varan_binary.Rewriter.total_syscalls
      s.Varan_binary.Rewriter.jump_sites s.Varan_binary.Rewriter.trap_sites
      s.Varan_binary.Rewriter.relocated_insns s.Varan_binary.Rewriter.stub_bytes
  in
  Cmd.v
    (Cmd.info "rewrite"
       ~doc:"Generate a synthetic text segment and show binary-rewriting statistics.")
    Term.(const run $ bytes_arg $ share_arg $ seed_arg)

let bpf_cmd =
  let leader_arg =
    Arg.(
      value & opt int 108
      & info [ "leader" ] ~docv:"NR" ~doc:"Leader's next syscall number.")
  in
  let follower_arg =
    Arg.(
      value & opt int 102
      & info [ "follower" ] ~docv:"NR" ~doc:"Follower's pending syscall number.")
  in
  let run leader follower =
    let prog = Varan_bpf.Asm.assemble_exn Varan_bpf.Rules.listing1 in
    Format.printf "Listing 1 assembles to:@.%a@." Varan_bpf.Insn.pp_program prog;
    let out =
      Varan_bpf.Interp.run prog
        ~data:{ Varan_bpf.Interp.nr = follower; args = [||] }
        ~event:{ Varan_bpf.Interp.ev_nr = leader; ev_ret = 0; ev_args = [||] }
    in
    let verdict =
      match Varan_bpf.Rules.verdict_of_action out.Varan_bpf.Interp.action with
      | Varan_bpf.Rules.Kill -> "KILL"
      | Varan_bpf.Rules.Execute_follower_call -> "ALLOW (follower executes its call)"
      | Varan_bpf.Rules.Skip_leader_event -> "SKIP (leader event dropped)"
      | Varan_bpf.Rules.Other v -> Printf.sprintf "OTHER(0x%x)" v
    in
    Printf.printf "leader nr=%d, follower nr=%d -> %s (%d BPF instructions)\n"
      leader follower verdict out.Varan_bpf.Interp.steps
  in
  Cmd.v
    (Cmd.info "bpf"
       ~doc:"Assemble the paper's Listing 1 rewrite rule and evaluate a divergence.")
    Term.(const run $ leader_arg $ follower_arg)

let strace_cmd =
  let count_arg =
    Arg.(
      value & opt int 30
      & info [ "n" ] ~docv:"N" ~doc:"Number of trace lines to print.")
  in
  let run w count =
    (* Run the workload natively with an strace wrapper on unit 0 and
       print the head of the trace — the debuggability story of §3.1. *)
    let eng = Varan_sim.Engine.create () in
    let k = Varan_kernel.Kernel.create ~link_latency:3_500 eng in
    w.Workload.setup_fs k;
    let body = w.Workload.make_body () in
    let trace_ref = ref None in
    let main_proc = Varan_kernel.Kernel.new_proc k w.Workload.w_name in
    for u = 0 to w.Workload.units - 1 do
      let proc =
        if u = 0 then main_proc
        else Varan_kernel.Kernel.fork_proc k main_proc (Printf.sprintf "w%d" u)
      in
      let api = Varan_kernel.Api.direct k proc in
      let api =
        if u = 0 then begin
          let wrapped, trace = Varan_kernel.Strace.attach api in
          trace_ref := Some trace;
          wrapped
        end
        else api
      in
      let tid =
        Varan_sim.Engine.spawn eng ~name:(Printf.sprintf "unit%d" u) (fun () ->
            try body ~unit_idx:u api with Varan_sim.Engine.Killed -> ())
      in
      Varan_kernel.Kernel.register_task k proc tid
    done;
    ignore
      (Varan_workloads.Clients.launch k ~cost:(Varan_kernel.Kernel.cost k)
         ~port_of:(Workload.port_of_conn w) w.Workload.load);
    Varan_sim.Engine.run_until_quiescent eng;
    match !trace_ref with
    | None -> ()
    | Some trace ->
      let lines = Varan_kernel.Strace.lines trace in
      List.iteri (fun i l -> if i < count then print_endline l) lines;
      Printf.printf "... (%d calls traced)\n" (Varan_kernel.Strace.calls trace)
  in
  Cmd.v
    (Cmd.info "strace"
       ~doc:"Trace a workload's system calls, strace-style (unit 0 only).")
    Term.(const run $ workload_arg $ count_arg)

let torture_cmd =
  let module H = Varan_torture.Harness in
  let module Fault = Varan_fault.Plan in
  let module Oracle = Varan_trace.Oracle in
  let module Nvx_config = Varan_nvx.Config in
  let seed_arg =
    Arg.(
      value & opt int 0xBEEF
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Case seed. The whole case — workload, follower count and \
             fault plan — derives from it, so any failing case reproduces \
             from the seed alone.")
  in
  let count_arg =
    Arg.(
      value & opt int 1
      & info [ "count" ] ~docv:"N" ~doc:"Run this many consecutive seeds.")
  in
  let plan_arg =
    Arg.(
      value & opt (some string) None
      & info [ "plan" ] ~docv:"SPEC"
          ~doc:
            "Override the case's fault plan, e.g. \
             crash:0@8,stall:1@3+20000,ring:2,burst:2x3@4,fork@5.")
  in
  let followers_torture_arg =
    Arg.(
      value & opt (some int) None
      & info [ "followers" ] ~docv:"N" ~doc:"Override the follower count.")
  in
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:"Print the plan, digests and the oracle report per case.")
  in
  let lifecycle_arg =
    Arg.(
      value & flag
      & info [ "lifecycle" ]
          ~doc:
            "Run lifecycle cases: the follower lifecycle manager enabled, \
             with follower-only stalls past the watchdog timeout and \
             occasional follower crashes. Checks that every quarantined \
             follower rejoins with the native digest or dies after exactly \
             its respawn budget, and that the leader never gates on a \
             quarantined consumer.")
  in
  let stall_timeout_arg =
    Arg.(
      value & opt (some int) None
      & info [ "stall-timeout" ] ~docv:"CYCLES"
          ~doc:
            "Lifecycle policy override: cycles without consumer progress \
             before a follower is quarantined. Implies $(b,--lifecycle).")
  in
  let max_restarts_arg =
    Arg.(
      value & opt (some int) None
      & info [ "max-restarts" ] ~docv:"N"
          ~doc:
            "Lifecycle policy override: respawns allowed per follower \
             before it is declared dead. Implies $(b,--lifecycle).")
  in
  let min_followers_arg =
    Arg.(
      value & opt (some int) None
      & info [ "min-followers" ] ~docv:"N"
          ~doc:
            "Lifecycle policy override: below this many recoverable \
             followers the session degrades to native-speed leader-only \
             execution. Implies $(b,--lifecycle).")
  in
  let lag_threshold_arg =
    Arg.(
      value & opt (some int) None
      & info [ "lag-threshold" ] ~docv:"EVENTS"
          ~doc:
            "Lifecycle policy override: ring lag before a follower counts \
             as lagging. Implies $(b,--lifecycle).")
  in
  let checkpoint_interval_arg =
    Arg.(
      value & opt (some int) None
      & info [ "checkpoint-interval" ] ~docv:"CYCLES"
          ~doc:
            "Lifecycle policy override: cycles between follower \
             checkpoints; a respawn restores the newest one and replays \
             only the tape delta (rr-style fast rejoin). 0 disables \
             checkpointing. Implies $(b,--lifecycle).")
  in
  let net_arg =
    Arg.(
      value & flag
      & info [ "net" ]
          ~doc:
            "Run distributed cases: the last followers of each case sit \
             behind the cross-node ring bridge on a simulated remote \
             node, under a random link-fault plan (partitions, delays, \
             reorders, drops, duplicates). Checks that the bridge ships \
             checksummed batches, that partitions end in a healed rejoin \
             or a clean death — never a leader gate on an unreachable \
             node — and that every surviving digest still matches \
             native.")
  in
  let link_latency_arg =
    Arg.(
      value & opt (some int) None
      & info [ "link-latency" ] ~docv:"CYCLES"
          ~doc:
            "Distributed-mode override: one-way link latency in cycles. \
             Implies $(b,--net).")
  in
  let partition_every_arg =
    Arg.(
      value & opt (some int) None
      & info [ "partition-every" ] ~docv:"N"
          ~doc:
            "Distributed-mode override: add a link partition at every \
             Nth batch frame on top of the case's plan. Implies \
             $(b,--net).")
  in
  let drop_rate_arg =
    Arg.(
      value & opt (some float) None
      & info [ "drop-rate" ] ~docv:"P"
          ~doc:
            "Distributed-mode override: drop roughly this fraction of \
             batch frames (deterministically, every 1/P-th frame) on top \
             of the case's plan. Implies $(b,--net).")
  in
  let futex_arg =
    Arg.(
      value & flag
      & info [ "futex" ]
          ~doc:
            "Run contended-futex cases: multi-threaded variants (4–64 \
             threads) hammering shared futex words, replayed through the \
             per-tid event lanes. Checks that every alive follower \
             reproduces the leader's global lock-acquisition order, \
             digest-for-digest.")
  in
  let shards_arg =
    Arg.(
      value & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Run sharded-pool cases: N monitor sessions co-resident on \
             one kernel behind the shared zygote and rewrite cache, each \
             running its own program. Checks that every shard's every \
             variant reproduces that shard's solo native digest — \
             co-residency leaks nothing across shard boundaries. 0 keeps \
             the case's own shard count (2–4 from the seed).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one JSON object per case — digests against native, \
             aliveness, crashes, lifecycle/bridge/rewrite-cache/checkpoint \
             counters and the check verdicts — instead of the prose \
             report. Applies to the base, $(b,--lifecycle) and $(b,--net) \
             sweeps.")
  in
  let run seed count plan_spec followers verbose lifecycle futex shards
      stall_timeout max_restarts min_followers lag_threshold
      checkpoint_interval net link_latency partition_every drop_rate json
      trace_out postmortem_dir =
    let module Lifecycle = Varan_nvx.Lifecycle in
    arm_observability ~trace_out ~postmortem_dir;
    let finish code =
      finish_observability ~trace_out;
      exit code
    in
    (match shards with
    | Some n ->
      let failures = ref 0 in
      for s = seed to seed + count - 1 do
        let sc = H.gen_shard_case s in
        let sc =
          if n > 0 then { sc with H.sc_shards = max 2 (min 8 n) } else sc
        in
        let out = H.run_shard_case sc in
        let fails = H.check_shard sc out in
        if fails = [] then
          Printf.printf "PASS %s\n" (H.describe_shard_case sc)
        else begin
          incr failures;
          Printf.printf "FAIL %s\n" (H.describe_shard_case sc);
          List.iter (fun f -> Printf.printf "  %s\n" f) fails
        end;
        if verbose then begin
          let module RC = Varan_binary.Rewrite_cache in
          Printf.printf
            "  zygote forks=%d rewrite-cache hits=%d misses=%d rebases=%d\n"
            out.H.so_zygote_forks out.H.so_rewrite.RC.hits
            out.H.so_rewrite.RC.misses out.H.so_rewrite.RC.rebases;
          Array.iteri
            (fun sh native ->
              Printf.printf "  shard %d native: %s\n" sh native;
              Array.iteri
                (fun i d ->
                  Printf.printf "    v%d%s: %s\n" i
                    (if out.H.so_alive.(sh).(i) then "" else " (dead)")
                    (if d = native then "= native" else d))
                out.H.so_digests.(sh))
            out.H.so_natives
        end
      done;
      if count > 1 then
        Printf.printf "%d/%d cases passed\n" (count - !failures) count;
      finish (if !failures > 0 then 1 else 0)
    | None -> ());
    if futex then begin
      let failures = ref 0 in
      for s = seed to seed + count - 1 do
        let fc, out, fails = H.run_futex_seed s in
        if fails = [] then
          Printf.printf "PASS %s\n" (H.describe_futex_case fc)
        else begin
          incr failures;
          Printf.printf "FAIL %s\n" (H.describe_futex_case fc);
          List.iter (fun f -> Printf.printf "  %s\n" f) fails
        end;
        if verbose then begin
          List.iter
            (fun (idx, msg) ->
              Printf.printf "  crash: variant %d: %s\n" idx msg)
            out.H.fo_crashes;
          Array.iteri
            (fun i d ->
              Printf.printf "  v%d%s: %s\n" i
                (if out.H.fo_alive.(i) then "" else " (dead)")
                d)
            out.H.fo_digests;
          Format.printf "  %a@." Oracle.pp_report out.H.fo_report
        end
      done;
      if count > 1 then
        Printf.printf "%d/%d cases passed\n" (count - !failures) count;
      finish (if !failures > 0 then 1 else 0)
    end;
    let net_on =
      net
      || Option.is_some link_latency
      || Option.is_some partition_every
      || Option.is_some drop_rate
    in
    let lifecycle_on =
      lifecycle
      || Option.is_some stall_timeout
      || Option.is_some max_restarts
      || Option.is_some min_followers
      || Option.is_some lag_threshold
      || Option.is_some checkpoint_interval
    in
    (* Explicit overrides layered on whatever policy the case mode picked
       — the net generator varies checkpointing per seed, so start from
       the case's own policy rather than the sweep default. *)
    let apply_policy p =
      {
        p with
        Lifecycle.stall_timeout =
          Option.value stall_timeout ~default:p.Lifecycle.stall_timeout;
        max_restarts = Option.value max_restarts ~default:p.Lifecycle.max_restarts;
        min_followers =
          Option.value min_followers ~default:p.Lifecycle.min_followers;
        lag_threshold =
          Option.value lag_threshold ~default:p.Lifecycle.lag_threshold;
        checkpoint_interval =
          Option.value checkpoint_interval
            ~default:p.Lifecycle.checkpoint_interval;
      }
    in
    let failures = ref 0 in
    for s = seed to seed + count - 1 do
      let case =
        if net_on then H.gen_net_case s
        else if lifecycle_on then H.gen_lifecycle_case s
        else H.gen_case s
      in
      let case =
        if net_on || lifecycle_on then
          {
            case with
            H.lifecycle =
              Some
                (apply_policy
                   (Option.value case.H.lifecycle ~default:H.lifecycle_policy));
          }
        else case
      in
      let case =
        if not net_on then case
        else begin
          let n = Option.get case.H.net in
          let n =
            match link_latency with
            | Some l -> { n with Nvx_config.link_latency = max 0 l }
            | None -> n
          in
          (* CLI link faults ride on top of the case's plan. Both are
             deterministic in (seed, flag value): partitions at every
             k*N-th frame, drops at every (1/P)-th. *)
          let extra =
            (match partition_every with
            | Some every when every > 0 ->
              List.init
                (min 8 (case.H.prog_len / every))
                (fun k ->
                  Fault.Link_partition
                    { from_seq = (k + 1) * every; duration = 80_000 })
            | _ -> [])
            @
            match drop_rate with
            | Some r when r > 0.0 ->
              let stride = max 1 (int_of_float (1.0 /. min 1.0 r)) in
              List.init
                (min 32 (case.H.prog_len / stride))
                (fun k -> Fault.Link_drop { at_seq = (k + 1) * stride })
            | _ -> []
          in
          { case with H.net = Some n; H.plan = case.H.plan @ extra }
        end
      in
      let case =
        match followers with
        | Some f -> { case with H.followers = max 1 (min 4 f) }
        | None -> case
      in
      let case =
        match plan_spec with
        | None -> case
        | Some spec -> (
          match Fault.of_string spec with
          | Ok plan -> { case with H.plan = plan }
          | Error e ->
            prerr_endline ("varan torture: " ^ e);
            exit 2)
      in
      let out = H.run_case case in
      let fails =
        H.check case out
        @ (if net_on || lifecycle_on then H.check_lifecycle case out else [])
        @ (if net_on then H.check_net case out else [])
      in
      if fails <> [] then incr failures;
      if json then print_endline (H.json_of_outcome ~fails case out)
      else begin
        if fails = [] then Printf.printf "PASS %s\n" (H.describe_case case)
        else begin
          Printf.printf "FAIL %s\n" (H.describe_case case);
          List.iter (fun f -> Printf.printf "  %s\n" f) fails
        end;
      (match out.H.lifecycle with
      | Some r ->
        Printf.printf "  lifecycle: quarantines=%d rejoins=%d deaths=%d%s\n"
          r.Lifecycle.quarantines r.Lifecycle.rejoins r.Lifecycle.deaths
          (match out.H.degraded with
          | Some reason -> Printf.sprintf " degraded(%s)" reason
          | None -> "");
        (* The spawn fast path's effectiveness: every launch past the
           first of a given image — replicas and respawns alike — should
           be a cache hit served by rebase. *)
        let module RC = Varan_binary.Rewrite_cache in
        let rc = out.H.stats.Varan_nvx.Session.rewrite_cache in
        let total = rc.RC.hits + rc.RC.misses in
        Printf.printf
          "  rewrite-cache: hits=%d misses=%d rebases=%d hit-rate=%d%%\n"
          rc.RC.hits rc.RC.misses rc.RC.rebases
          (if total = 0 then 0 else rc.RC.hits * 100 / total);
        (* The fast-rejoin path's effectiveness: respawns served from a
           checkpoint replay only the tape delta behind it. *)
        let module CK = Varan_nvx.Checkpoint in
        let ck = out.H.stats.Varan_nvx.Session.checkpoints in
        if ck.CK.taken > 0 || ck.CK.restores > 0 then
          Printf.printf
            "  checkpoints: taken=%d restores=%d delta-events=%d \
             resident=%dB\n"
            ck.CK.taken ck.CK.restores ck.CK.delta_events ck.CK.resident_bytes
      | None -> ());
      (match out.H.stats.Varan_nvx.Session.bridge with
      | Some b ->
        Format.printf "  bridge: %a@." Varan_net.Bridge.pp_stats b;
        if verbose then
          (match out.H.stats.Varan_nvx.Session.link with
          | Some l ->
            let module L = Varan_net.Link in
            Printf.printf
              "  link: sent=%d delivered=%d lost=%d dup=%d reorder=%d \
               wire=%dB partitions=%d\n"
              l.L.frames_sent l.L.frames_delivered l.L.frames_lost
              l.L.frames_duplicated l.L.frames_reordered l.L.bytes_sent
              l.L.partitions
          | None -> ())
      | None -> ());
      if verbose then begin
        (match out.H.lifecycle with
        | Some r -> Format.printf "  %a@." Lifecycle.pp_report r
        | None -> ());
        List.iter
          (fun inj -> Printf.printf "  plan: %s\n" (Fault.describe inj))
          case.H.plan;
        List.iter
          (fun (idx, msg) -> Printf.printf "  crash: variant %d: %s\n" idx msg)
          out.H.crashes;
        Printf.printf "  native digest: %s\n" out.H.native;
        Array.iteri
          (fun i d ->
            Printf.printf "  v%d%s: %s\n" i
              (if out.H.alive.(i) then "" else " (dead)")
              (if d = out.H.native then "= native" else d))
          out.H.digests;
        Format.printf "  %a@." Oracle.pp_report out.H.report
      end
      end
    done;
    if count > 1 && not json then
      Printf.printf "%d/%d cases passed\n" (count - !failures) count;
    finish (if !failures > 0 then 1 else 0)
  in
  Cmd.v
    (Cmd.info "torture"
       ~doc:
         "Run seed-reproducible fault-injection torture cases: a random \
          syscall program under a random fault plan, checked against the \
          native run and the trace-invariant oracle.")
    Term.(
      const run $ seed_arg $ count_arg $ plan_arg $ followers_torture_arg
      $ verbose_arg $ lifecycle_arg $ futex_arg $ shards_arg
      $ stall_timeout_arg $ max_restarts_arg $ min_followers_arg
      $ lag_threshold_arg $ checkpoint_interval_arg $ net_arg
      $ link_latency_arg $ partition_every_arg $ drop_rate_arg $ json_arg
      $ trace_out_arg $ postmortem_dir_arg)

let replay_cmd =
  let module H = Varan_torture.Harness in
  let module RR = Varan_nvx.Record_replay in
  let module CK = Varan_nvx.Checkpoint in
  let module Lifecycle = Varan_nvx.Lifecycle in
  let at_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "at" ] ~docv:"SEQ"
          ~doc:
            "Time-travel target: the tuple-0 stream position to \
             reconstruct, as a checkpointed rejoin would — restore the \
             nearest retained checkpoint at or below it and replay only \
             the tape delta behind it.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0xBEEF
      & info [ "seed" ] ~docv:"N"
          ~doc:"Seed of the lifecycle torture case whose tape is replayed.")
  in
  let interval_arg =
    Arg.(
      value & opt int 60_000
      & info [ "checkpoint-interval" ] ~docv:"CYCLES"
          ~doc:"Cycles between follower checkpoints during the recording run.")
  in
  let events_arg =
    Arg.(
      value & opt int 10
      & info [ "n" ] ~docv:"N" ~doc:"Delta events to print (tail truncated).")
  in
  let run at seed interval nprint =
    (* Record: one lifecycle torture case with checkpointing on, keeping
       the finished session's tape and checkpoint store. *)
    let case = H.gen_lifecycle_case seed in
    let policy =
      { H.lifecycle_policy with Lifecycle.checkpoint_interval = interval }
    in
    let case = { case with H.lifecycle = Some policy } in
    Printf.printf "Recorded %s\n" (H.describe_case case);
    let out = H.run_case case in
    match RR.time_travel out.H.session ~at with
    | Error e ->
      Printf.eprintf "varan replay: %s\n" e;
      exit 1
    | Ok tt ->
      let module Nvx = Varan_nvx.Session in
      (match Nvx.tuple_tape out.H.session 0 with
      | Some tape ->
        Printf.printf "Tape: retained window [%d, %d)\n" (Varan_nvx.Tape.base tape)
          (Varan_nvx.Tape.length tape)
      | None -> ());
      (match tt.RR.tt_checkpoint with
      | Some cp ->
        Printf.printf
          "Restore: variant %d's checkpoint at seq %d (clock %d, %d B of \
           program state, %d fds)\n"
          cp.CK.cp_idx cp.CK.cp_seq cp.CK.cp_clock
          (Bytes.length cp.CK.cp_state)
          (Varan_kernel.Kernel.fd_snapshot_count cp.CK.cp_fds)
      | None -> Printf.printf "Restore: none — cold start from seq 0\n");
      Printf.printf "Delta: %d event(s) to reach seq %d\n"
        (List.length tt.RR.tt_delta) tt.RR.tt_at;
      List.iteri
        (fun i e ->
          if i < nprint then
            Format.printf "  %4d  %a@."
              (tt.RR.tt_at - List.length tt.RR.tt_delta + i)
              Varan_ringbuf.Event.pp e)
        tt.RR.tt_delta;
      if List.length tt.RR.tt_delta > nprint then
        Printf.printf "  ... (%d more)\n" (List.length tt.RR.tt_delta - nprint)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Time-travel a recorded lifecycle session: reconstruct any stream \
          position from the nearest checkpoint plus the retained tape delta.")
    Term.(const run $ at_arg $ seed_arg $ interval_arg $ events_arg)

let serve_cmd =
  let module Serving = Varan_workloads.Serving in
  let module Router = Varan_nvx.Router in
  let shards_arg =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"N"
          ~doc:"Monitor shards (one NVX session each) behind the router.")
  in
  let followers_arg =
    Arg.(
      value & opt int 1
      & info [ "f"; "followers" ] ~docv:"N" ~doc:"Followers per shard.")
  in
  let requests_arg =
    Arg.(
      value & opt int Serving.default.Serving.sv_requests
      & info [ "requests" ] ~docv:"N" ~doc:"Open-loop arrivals to generate.")
  in
  let workers_arg =
    Arg.(
      value & opt int Serving.default.Serving.sv_workers
      & info [ "workers" ] ~docv:"N"
          ~doc:"Client tasks multiplexing the simulated client ids.")
  in
  let gap_arg =
    Arg.(
      value & opt float Serving.default.Serving.sv_mean_gap_cycles
      & info [ "gap" ] ~docv:"CYCLES"
          ~doc:"Mean Poisson inter-arrival gap in cycles.")
  in
  let seed_arg =
    Arg.(
      value & opt int Serving.default.Serving.sv_seed
      & info [ "seed" ] ~docv:"N" ~doc:"Arrival-schedule and router seed.")
  in
  let profile_arg =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Attribute the run's virtual cycles to hot-path phases (ring \
             wait, syscall exec, oracle digest, bridge wire, scheduler \
             dispatch, client idle/wait, ...) and print the per-phase \
             breakdown against the engine's total task-cycles — the \
             falloff diagnosis ROADMAP item 4 asks for.")
  in
  let stats_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:
            "Dump the whole stats registry — every counter and every \
             latency histogram — as JSON to FILE after the run.")
  in
  let run shards followers requests workers gap seed trace_out postmortem_dir
      profile stats_json =
    let spec =
      {
        Serving.default with
        Serving.sv_shards = max 1 shards;
        sv_followers = max 0 followers;
        sv_requests = max 1 requests;
        sv_workers = max 1 workers;
        sv_mean_gap_cycles = gap;
        sv_seed = seed;
      }
    in
    arm_observability ~trace_out ~postmortem_dir;
    if profile then begin
      Profile.reset ();
      Profile.enabled := true
    end;
    Printf.printf
      "Serving %d open-loop request(s) (mean gap %.0f cycles) across %d \
       shard(s), %d follower(s) each...\n\
       %!"
      spec.Serving.sv_requests spec.Serving.sv_mean_gap_cycles
      spec.Serving.sv_shards spec.Serving.sv_followers;
    let o = Serving.run spec in
    let m = o.Serving.o_measurement in
    Printf.printf
      "%8d requests  %8.0f req/s  %6.1f us mean  p50 %.1f  p99 %.1f  p999 \
       %.1f  (%d error(s))\n"
      m.Driver.requests m.Driver.throughput_rps m.Driver.mean_latency_us
      m.Driver.p50_us m.Driver.p99_us m.Driver.p999_us m.Driver.errors;
    let r = o.Serving.o_router in
    Printf.printf
      "router: %d route(s), %d assignment(s), %d drained; per shard: %s\n"
      r.Router.routed r.Router.assigned r.Router.drained
      (String.concat " "
         (Array.to_list (Array.map string_of_int r.Router.per_shard)));
    Printf.printf "shared zygote: %d fork(s); rewrite cache: %d cold, %d \
                   rebase(s)\n"
      o.Serving.o_zygote_forks
      o.Serving.o_rewrite_cache.Varan_binary.Rewrite_cache.misses
      o.Serving.o_rewrite_cache.Varan_binary.Rewrite_cache.rebases;
    List.iter
      (fun (s, why) -> Printf.printf "shard %d degraded: %s\n" s why)
      o.Serving.o_degraded;
    (match !Flight.last_dump with
    | Some p -> Printf.printf "post-mortem: %s\n" p
    | None -> ());
    if profile then
      print_string
        (Profile.render ~total_cycles:o.Serving.o_total_task_cycles);
    (match stats_json with
    | Some path ->
      Varan_util.Stats.dump_json_to path;
      Printf.printf "stats: %s\n" path
    | None -> ());
    finish_observability ~trace_out
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the sharded serving layer under open-loop Poisson load and \
          report throughput and tail latency.")
    Term.(
      const run $ shards_arg $ followers_arg $ requests_arg $ workers_arg
      $ gap_arg $ seed_arg $ trace_out_arg $ postmortem_dir_arg $ profile_arg
      $ stats_json_arg)

let list_cmd =
  let run () =
    print_endline "Available workloads:";
    List.iter
      (fun (key, w) ->
        Printf.printf "  %-12s %s (%d unit%s)\n" key w.Workload.w_name
          w.Workload.units
          (if w.Workload.units = 1 then "" else "s"))
      workloads
  in
  Cmd.v (Cmd.info "list" ~doc:"List available workloads.") Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "varan" ~version:"1.0.0"
       ~doc:"An efficient N-version execution framework (simulated reproduction).")
    [
      run_cmd; lockstep_cmd; rewrite_cmd; bpf_cmd; strace_cmd; torture_cmd;
      replay_cmd; serve_cmd; list_cmd;
    ]

let () = exit (Cmd.eval main)

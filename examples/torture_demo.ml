(* Deterministic fault injection and the trace oracle: run one torture
   case — a random syscall program under a random fault plan, with 1–4
   followers — and show what the harness checks. Everything derives from
   the seed, so the same command always produces the same crashes, the
   same promotion chain and the same oracle report. The [varan torture]
   subcommand wraps exactly this.

     dune exec examples/torture_demo.exe [seed]

   Try a seed whose plan crashes the leader (e.g. 48936) to watch a
   promotion chain where every surviving variant still matches the
   native run byte for byte. *)

module H = Varan_torture.Harness
module Fault = Varan_fault.Plan
module Oracle = Varan_trace.Oracle

let () =
  let seed =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 48936
  in
  let case, out, failures = H.run_seed seed in
  Printf.printf "case: %s\n\n" (H.describe_case case);

  print_endline "fault plan:";
  List.iter (fun inj -> Printf.printf "  %s\n" (Fault.describe inj)) case.H.plan;

  print_endline "\ncrashes (every one must be plan-injected):";
  if out.H.crashes = [] then print_endline "  none"
  else
    List.iter
      (fun (idx, msg) -> Printf.printf "  variant %d: %s\n" idx msg)
      out.H.crashes;

  Printf.printf "\nleader after the run: variant %d\n" out.H.leader_idx;
  Array.iteri
    (fun i d ->
      Printf.printf "  v%d %s digest %s native\n" i
        (if out.H.alive.(i) then "alive" else "dead ")
        (if d = out.H.native then "==" else "<>"))
    out.H.digests;

  Format.printf "\n%a@." Oracle.pp_report out.H.report;

  match failures with
  | [] -> print_endline "verdict: PASS — all invariants hold"
  | fs ->
    print_endline "verdict: FAIL";
    List.iter (fun f -> Printf.printf "  %s\n" f) fs;
    exit 1

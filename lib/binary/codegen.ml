module I = Varan_isa.Insn
module Prng = Varan_util.Prng

let assemble insns =
  let total = List.fold_left (fun n i -> n + I.length i) 0 insns in
  let buf = Bytes.create total in
  let ofs = ref 0 in
  List.iter (fun i -> ofs := !ofs + I.encode_into buf !ofs i) insns;
  buf

(* ------------------------------------------------------------------ *)
(* Stub (trampoline) assembly                                          *)
(* ------------------------------------------------------------------ *)

(* The rewriter's stub emitter. Hook immediates are written as
   *base-relative* site ids and their byte offsets recorded, so the
   finished buffer plus the offset table form a relocatable trampoline
   image: rebasing to any first_site_id is a pass over the offsets, not
   a re-disassembly. *)
type stubs = {
  sb_base : int; (* address of the first stub byte (original code length) *)
  sb_buf : Buffer.t;
  mutable sb_hooks : int list; (* Hook opcode offsets, reversed *)
}

let stubs_create ~base = { sb_base = base; sb_buf = Buffer.create 256; sb_hooks = [] }
let stubs_here sb = sb.sb_base + Buffer.length sb.sb_buf
let stubs_emit sb insn = Buffer.add_bytes sb.sb_buf (I.encode insn)

let jmp32_len = I.length (I.Jmp 0l)

let stubs_emit_jmp_to sb target =
  let rel = target - (stubs_here sb + jmp32_len) in
  stubs_emit sb (I.Jmp (Int32.of_int rel))

let stubs_emit_hook sb ~rel_id =
  sb.sb_hooks <- stubs_here sb :: sb.sb_hooks;
  stubs_emit sb (I.Hook rel_id)

let stubs_finish sb =
  (Buffer.to_bytes sb.sb_buf, Array.of_list (List.rev sb.sb_hooks))

let straightline ~syscall_numbers =
  let body =
    List.concat_map
      (fun n ->
        [
          I.Mov_imm (0, Int32.of_int n);
          I.Syscall;
          I.Add_imm (2, 1);
          I.Add (3, 2);
        ])
      syscall_numbers
  in
  assemble (body @ [ I.Hlt ])

let trap_forcing () =
  (* Layout:
       0: mov r3, 3       (5 bytes)
       5: mov r0, 60      (5 bytes)
      10: syscall         (1 byte)   <- needs bytes 10..14 for a jmp
      11: add r2, 1       (3 bytes)  <- branch target of the jne below
      14: cmp r2, r3      (2 bytes)
      16: jne -7          (2 bytes, back to 11; loops until r2 = 3)
      18: hlt
     The instruction at 11 is a branch target, so the syscall at 10 cannot
     steal it for relocation and must fall back to INT3. *)
  assemble
    [
      I.Mov_imm (3, 3l);
      I.Mov_imm (0, 60l);
      I.Syscall;
      I.Add_imm (2, 1);
      I.Cmp (2, 3);
      I.Jne (-7);
      I.Hlt;
    ]

let loop_with_syscall ~iterations =
  (* r1 counts up to r2 = iterations; one syscall per iteration.
       0: mov r1, 0
       5: mov r2, iterations
      10: mov r0, 39        <- loop head (branch target)
      15: syscall
      16: add r1, 1
      19: cmp r1, r2
      21: jne -13           (back to 10)
      23: hlt *)
  assemble
    [
      I.Mov_imm (1, 0l);
      I.Mov_imm (2, Int32.of_int iterations);
      I.Mov_imm (0, 39l);
      I.Syscall;
      I.Add_imm (1, 1);
      I.Cmp (1, 2);
      I.Jne (-13);
      I.Hlt;
    ]

(* Random programs: generate an instruction list in two passes so forward
   branches can name instruction indices before byte addresses exist. *)
type proto =
  | P_plain of I.t
  | P_branch of [ `Je | `Jne | `Jl | `Jg ] * int (* absolute target index *)

let random_program rng ~size ~syscall_share =
  let n = max 4 size in
  (* Real code places syscall instructions inside libc wrappers with
     straight-line result-handling around them; branch targets directly
     after a syscall (which force the INT fallback) are rare. Model this
     by suppressing branches for a few instructions after each syscall. *)
  let cooldown = ref 0 in
  let protos =
    Array.init n (fun idx ->
        let roll = Prng.float rng 1.0 in
        if !cooldown > 0 then decr cooldown;
        if roll < syscall_share then begin
          cooldown := 3;
          P_plain I.Syscall
        end
        else if roll < syscall_share +. 0.05 && idx + 2 < n && !cooldown = 0
        then begin
          (* Forward-only branch: always makes progress, so the program
             terminates on every path. Keep the span small enough for
             rel8 in the original encoding. *)
          let span = 1 + Prng.int rng (min 10 (n - idx - 2)) in
          let kind =
            match Prng.int rng 4 with
            | 0 -> `Je
            | 1 -> `Jne
            | 2 -> `Jl
            | _ -> `Jg
          in
          P_branch (kind, idx + 1 + span)
        end
        else
          let r1 = Prng.int rng 8 and r2 = Prng.int rng 8 in
          match Prng.int rng 10 with
          | 0 -> P_plain (I.Mov_imm (r1, Int32.of_int (Prng.int rng 1000)))
          | 1 -> P_plain (I.Add (r1, r2))
          | 2 -> P_plain (I.Add_imm (r1, Prng.int_in rng (-5) 5))
          | 3 -> P_plain (I.Cmp (r1, r2))
          | 4 -> P_plain (I.Mov (r1, r2))
          | 5 -> P_plain (I.Xor (r1, r2))
          | 6 -> P_plain (I.Test (r1, r2))
          | 7 -> P_plain (I.Inc r1)
          | 8 -> P_plain (I.Dec r1)
          | _ -> P_plain I.Nop)
  in
  (* Syscall number must be valid-ish: precede every program with a mov. *)
  let protos = Array.append [| P_plain (I.Mov_imm (0, 1l)) |] protos in
  let n = Array.length protos in
  let clamp idx = min idx n in
  (* Pass 1: compute byte address of every proto index (branch encodes as
     rel8 = 2 bytes in the original program). *)
  let addrs = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    let len =
      match protos.(i) with P_plain insn -> I.length insn | P_branch _ -> 2
    in
    addrs.(i + 1) <- addrs.(i) + len
  done;
  (* Pass 2: encode. *)
  let insns =
    Array.to_list
      (Array.mapi
         (fun i p ->
           match p with
           | P_plain insn -> insn
           | P_branch (kind, target_idx) ->
             let target = addrs.(clamp target_idx) in
             let rel = target - (addrs.(i) + 2) in
             let rel = if rel < -128 || rel > 127 then 0 else rel in
             (match kind with
             | `Je -> I.Je rel
             | `Jne -> I.Jne rel
             | `Jl -> I.Jl rel
             | `Jg -> I.Jg rel))
         protos)
  in
  assemble (insns @ [ I.Hlt ])

let profile_image rng ~code_bytes ~syscall_share =
  let approx_insns = max 8 (code_bytes / 3) in
  random_program rng ~size:approx_insns ~syscall_share

(** Synthetic code generation.

    Produces well-formed code buffers for two consumers: the test suite
    (programs whose pre/post-rewrite behaviour can be compared in the VM)
    and the NVX layer (code images with realistic syscall densities whose
    rewrite statistics drive the interception cost mix). *)

(** {1 Stub (trampoline) assembly}

    The emission half of the binary rewriter: an append-only buffer of
    generated stub code placed after the original text. [Hook]
    immediates are written {e base-relative} (an id counted from 0 for
    this image) and the byte offset of every emitted [Hook] is recorded
    — the {e trampoline table}. Together with a base-relative site list
    this makes the finished image relocatable: {!Rewriter.rebase} turns
    it into an absolute-id image for any [first_site_id] with one O(sites)
    pass over the recorded offsets instead of a re-disassembly. *)

type stubs

val stubs_create : base:int -> stubs
(** Fresh emitter whose first byte will live at address [base] (the
    original code length — stubs are appended after the text). *)

val stubs_here : stubs -> int
(** Address of the next byte to be emitted. *)

val stubs_emit : stubs -> Varan_isa.Insn.t -> unit

val stubs_emit_jmp_to : stubs -> int -> unit
(** Emit a [Jmp rel32] whose target is the given absolute address. *)

val stubs_emit_hook : stubs -> rel_id:int -> unit
(** Emit a monitor entry point carrying a {e base-relative} site id and
    record its offset in the trampoline table. *)

val stubs_finish : stubs -> Bytes.t * int array
(** The emitted stub bytes and the trampoline table: offsets of every
    [Hook] opcode, in emission order (ascending). *)

val straightline : syscall_numbers:int list -> Bytes.t
(** A program that loads each number into R0, issues [Syscall], does a
    little register arithmetic between calls, and halts. Always
    detourable: no branches at all. *)

val trap_forcing : unit -> Bytes.t
(** A program whose single [Syscall] is followed immediately by a branch
    target, making detour relocation illegal and forcing the INT3
    fallback. *)

val loop_with_syscall : iterations:int -> Bytes.t
(** A counted loop issuing one syscall per iteration — exercises branches
    whose targets must survive patching. *)

val random_program :
  Varan_util.Prng.t -> size:int -> syscall_share:float -> Bytes.t
(** A random but always-terminating program: straight-line arithmetic,
    syscalls (roughly [syscall_share] of instructions) and forward
    conditional branches only. Suitable for property tests comparing
    original vs rewritten execution. *)

val profile_image :
  Varan_util.Prng.t -> code_bytes:int -> syscall_share:float -> Bytes.t
(** A larger buffer standing in for an application's text segment, used
    only for rewrite statistics (not executed). *)

module Stats = Varan_util.Stats

(* Bump whenever Rewriter's output format changes: stale entries from an
   older rewriter must never be served, and mixing versions into the
   content hash is cheaper than a flush protocol. *)
let version = "rw2"

type entry = { e_key : string; e_reloc : Rewriter.relocatable }

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  order : string Queue.t; (* insertion order, for FIFO eviction *)
  mutable hits : int;
  mutable misses : int;
  mutable rebases : int;
  mutable evictions : int;
  mutable cached_bytes : int;
}

(* Process-wide tallies so sweeps and the torture report can read the
   cache's behaviour without threading every session's handle around. *)
let g_hits = Stats.counter "rewrite_cache.hits"
let g_misses = Stats.counter "rewrite_cache.misses"
let g_rebases = Stats.counter "rewrite_cache.rebases"

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Rewrite_cache.create: capacity < 1";
  {
    capacity;
    table = Hashtbl.create 16;
    order = Queue.create ();
    hits = 0;
    misses = 0;
    rebases = 0;
    evictions = 0;
    cached_bytes = 0;
  }

let image_key code = version ^ ":" ^ Digest.to_hex (Digest.bytes code)

let evict_one t =
  match Queue.take_opt t.order with
  | None -> ()
  | Some key -> (
    match Hashtbl.find_opt t.table key with
    | None -> ()
    | Some en ->
      Hashtbl.remove t.table key;
      t.cached_bytes <- t.cached_bytes - Bytes.length en.e_reloc.Rewriter.rt_code;
      t.evictions <- t.evictions + 1)

let prepare t ?(first_site_id = 0) code =
  let key = image_key code in
  match Hashtbl.find_opt t.table key with
  | Some en ->
    t.hits <- t.hits + 1;
    Stats.incr_counter g_hits;
    t.rebases <- t.rebases + 1;
    Stats.incr_counter g_rebases;
    Rewriter.rebase en.e_reloc ~first_site_id
  | None ->
    t.misses <- t.misses + 1;
    Stats.incr_counter g_misses;
    let rt = Rewriter.rewrite_relocatable code in
    while Hashtbl.length t.table >= t.capacity do
      evict_one t
    done;
    Hashtbl.replace t.table key { e_key = key; e_reloc = rt };
    Queue.push key t.order;
    t.cached_bytes <- t.cached_bytes + Bytes.length rt.Rewriter.rt_code;
    Rewriter.rebase rt ~first_site_id

let prepare_segment t ?first_site_id seg =
  let out = ref None in
  Image.with_writable seg (fun data ->
      let r = prepare t ?first_site_id data in
      out := Some r;
      r.Rewriter.code);
  match !out with
  | Some r -> (r.Rewriter.sites, r.Rewriter.stats)
  | None -> assert false

type stats = {
  hits : int;
  misses : int;
  rebases : int;
  evictions : int;
  entries : int;
  cached_bytes : int;
}

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    rebases = t.rebases;
    evictions = t.evictions;
    entries = Hashtbl.length t.table;
    cached_bytes = t.cached_bytes;
  }

let hit_rate_c100 (t : t) =
  let total = t.hits + t.misses in
  if total = 0 then 0 else t.hits * 100 / total

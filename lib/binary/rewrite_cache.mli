(** Content-addressed cache of prepared (rewritten) code images.

    The paper rewrites each image once, when it is loaded (§3.2); the
    reproduction additionally spawns the same image many times — one
    variant per replica, a fresh incarnation per lifecycle respawn, and
    forked children — and a full rewrite costs ~450 ring cycles for a
    30 kB text. This cache amortises that: entries are keyed by a digest
    of the {e original} code bytes (plus the rewriter version, so a
    rewriter change invalidates everything), and store the
    {!Rewriter.relocatable} form — rewritten text with base-relative
    [Hook] ids, the trampoline offset table and a base-relative site
    table. A hit {!Rewriter.rebase}s the cached entry to the requested
    [first_site_id] in O(sites) — no disassembly, no window collection,
    no stub emission.

    The resident zygote owns the session's cache (see {!Varan_nvx.Zygote}):
    it outlives every variant incarnation, so respawned followers and
    additional replicas of the same image always rebase instead of
    re-rewriting.

    Hits, misses and rebases are mirrored into the process-wide
    {!Varan_util.Stats} counters [rewrite_cache.hits] /
    [rewrite_cache.misses] / [rewrite_cache.rebases]. *)

type t

val version : string
(** Rewriter-output version mixed into every key. *)

val create : ?capacity:int -> unit -> t
(** A cache holding at most [capacity] (default 64) distinct images;
    insertion beyond that evicts in FIFO order. *)

val image_key : Bytes.t -> string
(** The content address of an original (pre-rewrite) code buffer. *)

val prepare : t -> ?first_site_id:int -> Bytes.t -> Rewriter.result
(** [prepare t ~first_site_id code] returns the rewritten image with
    absolute site ids starting at [first_site_id]: a cold rewrite on the
    first sighting of these code bytes, a rebase of the cached
    relocatable afterwards. The result is freshly allocated either way —
    callers may patch it into a segment without aliasing the cache. *)

val prepare_segment :
  t -> ?first_site_id:int -> Image.segment -> Rewriter.site list * Rewriter.stats
(** {!prepare} applied to an executable segment in place under
    {!Image.with_writable}, mirroring {!Rewriter.rewrite_segment}. *)

type stats = {
  hits : int;  (** served by rebasing a cached entry *)
  misses : int;  (** cold rewrites (entry then cached) *)
  rebases : int;  (** rebase passes run on cache hits *)
  evictions : int;
  entries : int;
  cached_bytes : int;  (** rewritten-text bytes currently held *)
}

val stats : t -> stats

val hit_rate_c100 : t -> int
(** Percentage of lookups served from cache (0 when none yet). *)

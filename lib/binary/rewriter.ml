module I = Varan_isa.Insn
module D = Varan_isa.Disasm

type dispatch = Jump | Trap

type site = { site_id : int; orig_addr : int; dispatch : dispatch }

type stats = {
  total_syscalls : int;
  jump_sites : int;
  trap_sites : int;
  relocated_insns : int;
  stub_bytes : int;
}

type result = { code : Bytes.t; sites : site list; stats : stats }

type reloc_site = { rel_id : int; rel_addr : int; rel_dispatch : dispatch }

type relocatable = {
  rt_code : Bytes.t;
  rt_orig_len : int;
  rt_hook_offsets : int array;
  rt_sites : reloc_site list;
  rt_stats : stats;
}

let jmp_len = 5

(* Gather the relocation window starting at the syscall: the syscall itself
   plus following instructions until at least [jmp_len] bytes are covered.
   Returns [None] when detouring is unsafe: a successor is a branch target,
   is undecodable data, or the window runs off the buffer. *)
let collect_window code targets addr =
  let len = Bytes.length code in
  let rec go acc covered a =
    if covered >= jmp_len then Some (List.rev acc, covered)
    else if a >= len then None
    else if Hashtbl.mem targets a then None
    else
      match I.decode code a with
      | None -> None
      | Some (insn, ilen) -> go ((a, insn) :: acc) (covered + ilen) (a + ilen)
  in
  match I.decode code addr with
  | Some (I.Syscall, 1) -> go [ (addr, I.Syscall) ] 1 (addr + 1)
  | _ -> None

let rewrite_relocatable code0 =
  let orig_len = Bytes.length code0 in
  let targets = D.branch_targets code0 in
  let syscalls = D.syscall_sites code0 in
  let patched = Bytes.copy code0 in
  let stubs = Codegen.stubs_create ~base:orig_len in
  let next_site = ref 0 in
  let sites = ref [] in
  let relocated = ref 0 in
  let jump_count = ref 0 in
  let trap_count = ref 0 in
  let covered_until = ref (-1) in

  let here () = Codegen.stubs_here stubs in
  let emit insn = Codegen.stubs_emit stubs insn in
  let emit_jmp32_to target = Codegen.stubs_emit_jmp_to stubs target in
  let new_site rel_addr rel_dispatch =
    let s = { rel_id = !next_site; rel_addr; rel_dispatch } in
    incr next_site;
    sites := s :: !sites;
    s
  in

  let emit_relocated (a, insn) =
    match insn with
    | I.Syscall ->
      let s = new_site a Jump in
      incr jump_count;
      Codegen.stubs_emit_hook stubs ~rel_id:s.rel_id
    | _ when I.is_branch insn -> (
      incr relocated;
      let target =
        match I.branch_target ~at:a insn with
        | Some t -> t
        | None -> assert false
      in
      match I.with_target ~at:(here ()) insn target with
      | Some insn' -> emit insn'
      | None -> (
        (* rel8 displacement no longer fits: expand. Unconditional short
           jumps become rel32 jumps; conditional ones use the universal
           pattern that needs no inverted condition:
               Jcc +2        ; taken: hop over the skip jump
               jmp short +5  ; not taken: skip the long jump
               jmp rel32 target *)
        match insn with
        | I.Jmp_short _ -> emit_jmp32_to target
        | I.Je _ | I.Jne _ | I.Jl _ | I.Jg _ ->
          let cond_with rel =
            match insn with
            | I.Je _ -> I.Je rel
            | I.Jne _ -> I.Jne rel
            | I.Jl _ -> I.Jl rel
            | I.Jg _ -> I.Jg rel
            | _ -> assert false
          in
          emit (cond_with 2);
          emit (I.Jmp_short jmp_len);
          emit_jmp32_to target
        | _ -> assert false))
    | _ ->
      incr relocated;
      emit insn
  in

  let patch_jump addr stub_addr window_end =
    let rel = stub_addr - (addr + jmp_len) in
    ignore (I.encode_into patched addr (I.Jmp (Int32.of_int rel)));
    for i = addr + jmp_len to window_end - 1 do
      Bytes.set patched i '\x90'
    done
  in

  List.iter
    (fun addr ->
      if addr > !covered_until then begin
        match collect_window code0 targets addr with
        | None ->
          let _ = new_site addr Trap in
          incr trap_count;
          Bytes.set patched addr '\xCC'
        | Some (window, wlen) ->
          let window_end = addr + wlen in
          let stub_addr = here () in
          (match window with
          | (a0, I.Syscall) :: rest ->
            let s = new_site a0 Jump in
            incr jump_count;
            Codegen.stubs_emit_hook stubs ~rel_id:s.rel_id;
            List.iter emit_relocated rest
          | _ -> assert false);
          emit_jmp32_to window_end;
          patch_jump addr stub_addr window_end;
          covered_until := window_end - 1
      end)
    syscalls;

  let stub_data, hook_offsets = Codegen.stubs_finish stubs in
  let code = Bytes.create (orig_len + Bytes.length stub_data) in
  Bytes.blit patched 0 code 0 orig_len;
  Bytes.blit stub_data 0 code orig_len (Bytes.length stub_data);
  let sites = List.sort (fun a b -> compare a.rel_addr b.rel_addr) !sites in
  {
    rt_code = code;
    rt_orig_len = orig_len;
    rt_hook_offsets = hook_offsets;
    rt_sites = sites;
    rt_stats =
      {
        total_syscalls = !jump_count + !trap_count;
        jump_sites = !jump_count;
        trap_sites = !trap_count;
        relocated_insns = !relocated;
        stub_bytes = Bytes.length stub_data;
      };
  }

let rebase rt ~first_site_id =
  let code = Bytes.copy rt.rt_code in
  if first_site_id <> 0 then
    Array.iter
      (fun ofs ->
        (* The Hook immediate holds the base-relative id; offset +1 skips
           the opcode byte. *)
        let rel = Int32.to_int (Bytes.get_int32_le code (ofs + 1)) in
        Bytes.set_int32_le code (ofs + 1) (Int32.of_int (rel + first_site_id)))
      rt.rt_hook_offsets;
  {
    code;
    sites =
      List.map
        (fun s ->
          {
            site_id = s.rel_id + first_site_id;
            orig_addr = s.rel_addr;
            dispatch = s.rel_dispatch;
          })
        rt.rt_sites;
    stats = rt.rt_stats;
  }

let rewrite ?(first_site_id = 0) code0 =
  rebase (rewrite_relocatable code0) ~first_site_id

let rewrite_segment ?first_site_id seg =
  let out = ref None in
  Image.with_writable seg (fun data ->
      let r = rewrite ?first_site_id data in
      out := Some r;
      r.code);
  match !out with
  | Some r -> (r.sites, r.stats)
  | None -> assert false

let site_at sites addr = List.find_opt (fun s -> s.orig_addr = addr) sites

(** Selective binary rewriting (§3.2 of the paper).

    Every [Syscall] instruction in a code buffer is replaced by a
    five-byte [Jmp] to a generated {e stub} holding the monitor entry
    point ([Hook]) followed by the {e relocated} neighbour instructions
    and a jump back — binary detouring via trampolines. Because the
    syscall instruction is one byte and the jump needs five, neighbouring
    instructions must move; when that is impossible (a neighbour is a
    branch target, undecodable data follows, or the segment ends) the
    syscall is instead replaced by a one-byte [Int3] trap handled through
    the signal path, exactly as the paper's INT fallback.

    The rewriter never changes program semantics: stubs re-encode
    relocated relative branches (expanding [rel8] conditionals that stop
    fitting into [rel8]/[rel32] pairs), and a relocated [Syscall] inside
    a stub is itself rewritten into a [Hook]. *)

type dispatch =
  | Jump  (** fast path: detour through a stub *)
  | Trap  (** INT3 fallback through the trap handler *)

type site = {
  site_id : int;
  orig_addr : int;  (** address of the original syscall instruction *)
  dispatch : dispatch;
}

type stats = {
  total_syscalls : int;
  jump_sites : int;
  trap_sites : int;
  relocated_insns : int;
  stub_bytes : int;  (** bytes appended for stubs/trampolines *)
}

type result = {
  code : Bytes.t;  (** patched code with stubs appended *)
  sites : site list;  (** ascending by [orig_addr] *)
  stats : stats;
}

(** {1 Relocatable form}

    The rewrite is split in two: the expensive half ({!rewrite_relocatable}
    — disassembly, window collection, stub emission) produces an image
    whose [Hook] immediates and site table are {e base-relative} (ids
    counted from 0), plus the trampoline table of [Hook] byte offsets;
    the cheap half ({!rebase}) turns that into an absolute-id {!result}
    for any [first_site_id] with a single O(sites) patch pass. The
    content-addressed {!Rewrite_cache} stores the relocatable form so one
    cold rewrite serves every variant, respawned incarnation and forked
    child of the same image. *)

type reloc_site = {
  rel_id : int;  (** site id counted from 0 within this image *)
  rel_addr : int;  (** address of the original syscall instruction *)
  rel_dispatch : dispatch;
}

type relocatable = {
  rt_code : Bytes.t;  (** patched code; [Hook] immediates hold rel ids *)
  rt_orig_len : int;  (** length of the original text prefix *)
  rt_hook_offsets : int array;
      (** trampoline table: byte offset of every emitted [Hook] opcode *)
  rt_sites : reloc_site list;  (** ascending by [rel_addr] *)
  rt_stats : stats;
}

val rewrite_relocatable : Bytes.t -> relocatable
(** Disassemble, collect detour windows and emit stubs once; the result
    can be {!rebase}d to any id range without re-disassembling. *)

val rebase : relocatable -> first_site_id:int -> result
(** Materialise an absolute-id image: copy the code, add [first_site_id]
    to every [Hook] immediate through the trampoline table, and shift the
    site table. [rebase rt ~first_site_id:0] is byte-identical to the
    relocatable code. Never mutates [rt]. *)

val rewrite : ?first_site_id:int -> Bytes.t -> result
(** Rewrite every syscall site in the buffer. The output buffer's prefix
    has the original length; stub code is appended after it. Equivalent
    to [rebase (rewrite_relocatable code) ~first_site_id]. *)

val rewrite_segment : ?first_site_id:int -> Image.segment -> site list * stats
(** Apply {!rewrite} to an executable segment in place, using
    {!Image.with_writable} so the W⊕X discipline is observed. *)

val site_at : site list -> int -> site option
(** Find the site whose original address is [addr] (used by the trap
    handler to map an INT3 back to its syscall site). *)

type data = { nr : int; args : int array }
type event = { ev_nr : int; ev_ret : int; ev_args : int array }
type outcome = { action : int; steps : int }

exception Not_verified of string

let no_event = { ev_nr = 0; ev_ret = 0; ev_args = [||] }

let data_field d k =
  if k = Insn.data_nr then d.nr
  else if k >= 16 && (k - 16) mod 8 = 0 then begin
    let i = (k - 16) / 8 in
    if i < Array.length d.args then d.args.(i) else 0
  end
  else 0

let event_field e k =
  if k = Insn.event_nr then e.ev_nr
  else if k = Insn.event_ret then e.ev_ret
  else begin
    let i = k - 2 in
    if i >= 0 && i < Array.length e.ev_args then e.ev_args.(i) else 0
  end

let run prog ~data ~event =
  (match Verifier.verify prog with
  | Ok () -> ()
  | Error msg -> raise (Not_verified msg));
  let a = ref 0 and x = ref 0 in
  let steps = ref 0 in
  let src = function Insn.K k -> k | Insn.X -> !x in
  let rec exec pc =
    incr steps;
    match prog.(pc) with
    | Insn.Ld_imm k ->
      a := k;
      exec (pc + 1)
    | Insn.Ld_abs k ->
      a := data_field data k;
      exec (pc + 1)
    | Insn.Ld_event k ->
      a := event_field event k;
      exec (pc + 1)
    | Insn.Ldx_imm k ->
      x := k;
      exec (pc + 1)
    | Insn.Tax ->
      x := !a;
      exec (pc + 1)
    | Insn.Txa ->
      a := !x;
      exec (pc + 1)
    | Insn.Alu_add s ->
      a := !a + src s;
      exec (pc + 1)
    | Insn.Alu_sub s ->
      a := !a - src s;
      exec (pc + 1)
    | Insn.Alu_mul s ->
      a := !a * src s;
      exec (pc + 1)
    | Insn.Alu_and s ->
      a := !a land src s;
      exec (pc + 1)
    | Insn.Alu_or s ->
      a := !a lor src s;
      exec (pc + 1)
    | Insn.Alu_lsh s ->
      a := !a lsl src s;
      exec (pc + 1)
    | Insn.Alu_rsh s ->
      a := !a lsr src s;
      exec (pc + 1)
    | Insn.Ja o -> exec (pc + 1 + o)
    | Insn.Jeq (k, t, f) -> exec (pc + 1 + if !a = k then t else f)
    | Insn.Jgt (k, t, f) -> exec (pc + 1 + if !a > k then t else f)
    | Insn.Jge (k, t, f) -> exec (pc + 1 + if !a >= k then t else f)
    | Insn.Jset (k, t, f) -> exec (pc + 1 + if !a land k <> 0 then t else f)
    | Insn.Ret_k k -> k
    | Insn.Ret_a -> !a
  in
  let action = exec 0 in
  { action; steps = !steps }

(* ------------------------------------------------------------------ *)
(* One-shot compilation to closures                                    *)
(* ------------------------------------------------------------------ *)

type ctx = { ctx_data : data; ctx_event : event }

(* Translate a verified program into a graph of direct closure calls:
   verification happens once at load time instead of per event, jump
   offsets are folded into direct references to the successor closures,
   and field decoding (nr vs. arg index vs. out-of-range) is resolved at
   compile time. The verifier guarantees jumps are forward and in range
   and that the last instruction is a Ret, so building the node array
   backward always finds its successors already built. Step counts match
   {!run} exactly (every executed instruction, including Ret, costs 1). *)

let alu_node nodes pc op sv =
  let next = nodes.(pc + 1) in
  match sv with
  | Insn.K k -> fun c a x s -> next c (op a k) x (s + 1)
  | Insn.X -> fun c a x s -> next c (op a x) x (s + 1)

let jump_node nodes pc test t f =
  let nt = nodes.(pc + 1 + t) and nf = nodes.(pc + 1 + f) in
  fun c a x s -> (if test a then nt else nf) c a x (s + 1)

let compile prog =
  (match Verifier.verify prog with
  | Ok () -> ()
  | Error msg -> raise (Not_verified msg));
  let n = Array.length prog in
  let nodes : (ctx -> int -> int -> int -> outcome) array =
    Array.make n (fun _ _ _ _ -> assert false)
  in
  for pc = n - 1 downto 0 do
    let node =
      match prog.(pc) with
      | Insn.Ret_k k -> fun _ _ _ s -> { action = k; steps = s + 1 }
      | Insn.Ret_a -> fun _ a _ s -> { action = a; steps = s + 1 }
      | Insn.Ld_imm k ->
        let next = nodes.(pc + 1) in
        fun c _ x s -> next c k x (s + 1)
      | Insn.Ld_abs k ->
        let next = nodes.(pc + 1) in
        let get =
          if k = Insn.data_nr then fun c -> c.ctx_data.nr
          else if k >= 16 && (k - 16) mod 8 = 0 then begin
            let i = (k - 16) / 8 in
            fun c ->
              if i < Array.length c.ctx_data.args then c.ctx_data.args.(i)
              else 0
          end
          else fun _ -> 0
        in
        fun c _ x s -> next c (get c) x (s + 1)
      | Insn.Ld_event k ->
        let next = nodes.(pc + 1) in
        let get =
          if k = Insn.event_nr then fun c -> c.ctx_event.ev_nr
          else if k = Insn.event_ret then fun c -> c.ctx_event.ev_ret
          else begin
            let i = k - 2 in
            fun c ->
              if i >= 0 && i < Array.length c.ctx_event.ev_args then
                c.ctx_event.ev_args.(i)
              else 0
          end
        in
        fun c _ x s -> next c (get c) x (s + 1)
      | Insn.Ldx_imm k ->
        let next = nodes.(pc + 1) in
        fun c a _ s -> next c a k (s + 1)
      | Insn.Tax ->
        let next = nodes.(pc + 1) in
        fun c a _ s -> next c a a (s + 1)
      | Insn.Txa ->
        let next = nodes.(pc + 1) in
        fun c _ x s -> next c x x (s + 1)
      | Insn.Alu_add sv -> alu_node nodes pc ( + ) sv
      | Insn.Alu_sub sv -> alu_node nodes pc ( - ) sv
      | Insn.Alu_mul sv -> alu_node nodes pc ( * ) sv
      | Insn.Alu_and sv -> alu_node nodes pc ( land ) sv
      | Insn.Alu_or sv -> alu_node nodes pc ( lor ) sv
      | Insn.Alu_lsh sv -> alu_node nodes pc ( lsl ) sv
      | Insn.Alu_rsh sv -> alu_node nodes pc ( lsr ) sv
      | Insn.Ja o ->
        let target = nodes.(pc + 1 + o) in
        fun c a x s -> target c a x (s + 1)
      | Insn.Jeq (k, t, f) -> jump_node nodes pc (fun a -> a = k) t f
      | Insn.Jgt (k, t, f) -> jump_node nodes pc (fun a -> a > k) t f
      | Insn.Jge (k, t, f) -> jump_node nodes pc (fun a -> a >= k) t f
      | Insn.Jset (k, t, f) -> jump_node nodes pc (fun a -> a land k <> 0) t f
    in
    nodes.(pc) <- node
  done;
  let entry = nodes.(0) in
  fun ctx -> entry ctx 0 0 0

let run_compiled compiled ~data ~event =
  compiled { ctx_data = data; ctx_event = event }

(** BPF interpreter with the VARAN event extension.

    Ported conceptually from the kernel interpreter to user space and
    extended for NVX execution (§3.4): alongside the usual seccomp data
    (the {e follower's} pending syscall), filters can address the
    {e leader's} event from the ring buffer via [Ld_event]. *)

type data = {
  nr : int;  (** the follower's syscall number *)
  args : int array;  (** its register arguments (up to six) *)
}

type event = {
  ev_nr : int;  (** the leader's syscall number *)
  ev_ret : int;
  ev_args : int array;
}

type outcome = {
  action : int;  (** the filter's return value *)
  steps : int;  (** instructions executed, for cost accounting *)
}

exception Not_verified of string
(** Raised by {!run} if the program fails {!Verifier.verify}: filters are
    always checked at load time, so executing an unverifiable filter is a
    programming error. *)

val run : Insn.t array -> data:data -> event:event -> outcome

type ctx = { ctx_data : data; ctx_event : event }
(** The two inputs a filter addresses, bundled for compiled programs. *)

val compile : Insn.t array -> ctx -> outcome
(** [compile prog] verifies [prog] once and translates it into a graph of
    OCaml closures — jump offsets become direct calls, field decoding is
    resolved at compile time — so per-event evaluation skips both the
    verifier and instruction dispatch. The returned closure is the
    reference {!run} semantics exactly: same action, same step count.
    @raise Not_verified if the program fails {!Verifier.verify}. *)

val run_compiled :
  (ctx -> outcome) -> data:data -> event:event -> outcome
(** Convenience wrapper pairing the arguments of {!run}. *)

val no_event : event
(** Placeholder when no leader event is available (fields read 0). *)

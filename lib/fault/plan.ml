module Prng = Varan_util.Prng

type injection =
  | Crash_variant of { idx : int; at_seq : int }
  | Stall_follower of { idx : int; at_seq : int; delay : int }
  | Ring_pressure of { shrink_to : int }
  | Signal_burst of { at_seq : int; signo : int; count : int }
  | Fork_at of { at_op : int }
  | Drop_payload_grant of { idx : int; at_seq : int }
  (* Link faults fire on the cross-node bridge's link-global frame
     sequence (data and acks share one counter), not on stream seqs. *)
  | Link_partition of { from_seq : int; duration : int }
  | Link_delay of { at_seq : int; extra : int }
  | Link_reorder of { at_seq : int }
  | Link_drop of { at_seq : int }
  | Link_dup of { at_seq : int }

type t = injection list

exception Injected of string

let empty = []

(* SIGINT is the burst signal: the torture programs install a handler for
   it, so it queues instead of killing (do_kill's default disposition). *)
let burst_signo = 2

let random rng ~variants ~max_seq ~max_op =
  if variants < 1 then invalid_arg "Plan.random: variants must be >= 1";
  let seq () = Prng.int rng (max 1 max_seq) in
  let acc = ref [] in
  let add i = acc := i :: !acc in
  if Prng.int rng 3 = 0 then
    add (Ring_pressure { shrink_to = 1 + Prng.int rng 4 });
  (* Crash at most [variants - 1] distinct variants so a survivor always
     remains to compare against the native run. *)
  let order = Array.init variants Fun.id in
  Prng.shuffle rng order;
  let ncrashes = Prng.int rng variants in
  for c = 0 to ncrashes - 1 do
    add (Crash_variant { idx = order.(c); at_seq = seq () })
  done;
  let nstalls = Prng.int rng 2 in
  for _ = 1 to nstalls do
    if variants > 1 then
      add
        (Stall_follower
           {
             idx = 1 + Prng.int rng (variants - 1);
             at_seq = seq ();
             delay = 500 + Prng.int rng 40_000;
           })
  done;
  if Prng.int rng 3 = 0 then
    add
      (Signal_burst
         { at_seq = seq (); signo = burst_signo; count = 1 + Prng.int rng 3 });
  if Prng.int rng 4 = 0 then add (Fork_at { at_op = Prng.int rng (max 1 max_op) });
  List.rev !acc

let random_link rng ~max_frame =
  let seq () = Prng.int rng (max 1 max_frame) in
  let acc = ref [] in
  let add i = acc := i :: !acc in
  (* Durations span both regimes: short cuts the retransmit timers ride
     out, long ones that must trip the watchdog into [Unreachable]. *)
  let nparts = 1 + Prng.int rng 2 in
  for _ = 1 to nparts do
    add
      (Link_partition
         { from_seq = seq (); duration = 60_000 + Prng.int rng 940_000 })
  done;
  if Prng.int rng 2 = 0 then
    add (Link_delay { at_seq = seq (); extra = 5_000 + Prng.int rng 50_000 });
  for _ = 1 to Prng.int rng 3 do
    add (Link_drop { at_seq = seq () })
  done;
  if Prng.int rng 2 = 0 then add (Link_reorder { at_seq = seq () });
  if Prng.int rng 3 = 0 then add (Link_dup { at_seq = seq () });
  List.rev !acc

let has_link_faults t =
  List.exists
    (function
      | Link_partition _ | Link_delay _ | Link_reorder _ | Link_drop _
      | Link_dup _ ->
        true
      | _ -> false)
    t

let ring_shrink t =
  List.fold_left
    (fun acc i ->
      match i with
      | Ring_pressure { shrink_to } -> (
        match acc with
        | None -> Some shrink_to
        | Some n -> Some (min n shrink_to))
      | _ -> acc)
    None t

let fork_ops t =
  List.filter_map (function Fork_at { at_op } -> Some at_op | _ -> None) t

let describe = function
  | Crash_variant { idx; at_seq } ->
    Printf.sprintf "crash variant %d at stream seq %d" idx at_seq
  | Stall_follower { idx; at_seq; delay } ->
    Printf.sprintf "stall follower %d for %d cycles at stream seq %d" idx
      delay at_seq
  | Ring_pressure { shrink_to } ->
    Printf.sprintf "shrink the ring to %d slot(s)" shrink_to
  | Signal_burst { at_seq; signo; count } ->
    Printf.sprintf "post %d signal(s) %d to the leader at stream seq %d"
      count signo at_seq
  | Fork_at { at_op } -> Printf.sprintf "splice a fork at op %d" at_op
  | Drop_payload_grant { idx; at_seq } ->
    Printf.sprintf "follower %d leaks the payload of stream seq %d" idx
      at_seq
  | Link_partition { from_seq; duration } ->
    Printf.sprintf "partition the link for %d cycles at frame %d" duration
      from_seq
  | Link_delay { at_seq; extra } ->
    Printf.sprintf "delay link frame %d by %d cycles" at_seq extra
  | Link_reorder { at_seq } ->
    Printf.sprintf "reorder link frame %d behind its successor" at_seq
  | Link_drop { at_seq } -> Printf.sprintf "drop link frame %d" at_seq
  | Link_dup { at_seq } -> Printf.sprintf "duplicate link frame %d" at_seq

let injection_to_string = function
  | Crash_variant { idx; at_seq } -> Printf.sprintf "crash:%d@%d" idx at_seq
  | Stall_follower { idx; at_seq; delay } ->
    Printf.sprintf "stall:%d@%d+%d" idx at_seq delay
  | Ring_pressure { shrink_to } -> Printf.sprintf "ring:%d" shrink_to
  | Signal_burst { at_seq; signo; count } ->
    Printf.sprintf "burst:%dx%d@%d" signo count at_seq
  | Fork_at { at_op } -> Printf.sprintf "fork@%d" at_op
  | Drop_payload_grant { idx; at_seq } ->
    Printf.sprintf "drop:%d@%d" idx at_seq
  | Link_partition { from_seq; duration } ->
    Printf.sprintf "part@%d+%d" from_seq duration
  | Link_delay { at_seq; extra } -> Printf.sprintf "delay@%d+%d" at_seq extra
  | Link_reorder { at_seq } -> Printf.sprintf "reorder@%d" at_seq
  | Link_drop { at_seq } -> Printf.sprintf "ldrop@%d" at_seq
  | Link_dup { at_seq } -> Printf.sprintf "dup@%d" at_seq

let to_string t = String.concat "," (List.map injection_to_string t)

let injection_of_string s =
  let try_scan fmt build = try Some (Scanf.sscanf s fmt build) with _ -> None in
  let first_some l = List.find_map (fun f -> f ()) l in
  first_some
    [
      (fun () ->
        try_scan "crash:%d@%d%!" (fun idx at_seq ->
            Crash_variant { idx; at_seq }));
      (fun () ->
        try_scan "stall:%d@%d+%d%!" (fun idx at_seq delay ->
            Stall_follower { idx; at_seq; delay }));
      (fun () ->
        try_scan "ring:%d%!" (fun shrink_to -> Ring_pressure { shrink_to }));
      (fun () ->
        try_scan "burst:%dx%d@%d%!" (fun signo count at_seq ->
            Signal_burst { at_seq; signo; count }));
      (fun () -> try_scan "fork@%d%!" (fun at_op -> Fork_at { at_op }));
      (fun () ->
        try_scan "drop:%d@%d%!" (fun idx at_seq ->
            Drop_payload_grant { idx; at_seq }));
      (fun () ->
        try_scan "part@%d+%d%!" (fun from_seq duration ->
            Link_partition { from_seq; duration }));
      (fun () ->
        try_scan "delay@%d+%d%!" (fun at_seq extra ->
            Link_delay { at_seq; extra }));
      (fun () -> try_scan "reorder@%d%!" (fun at_seq -> Link_reorder { at_seq }));
      (fun () -> try_scan "ldrop@%d%!" (fun at_seq -> Link_drop { at_seq }));
      (fun () -> try_scan "dup@%d%!" (fun at_seq -> Link_dup { at_seq }));
    ]

let of_string s =
  let s = String.trim s in
  if s = "" then Ok []
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
        match injection_of_string (String.trim p) with
        | Some i -> go (i :: acc) rest
        | None -> Error (Printf.sprintf "bad injection spec %S" p))
    in
    go [] parts

(* ------------------------------------------------------------------ *)
(* Armed plans                                                         *)
(* ------------------------------------------------------------------ *)

type action =
  | Crash
  | Stall of int
  | Signals of { signo : int; count : int }
  | Drop_payload

type link_action =
  | L_partition of int
  | L_delay of int
  | L_reorder
  | L_drop
  | L_duplicate

type slot = { inj : injection; mutable fired : bool }
type armed = slot list

let arm t = List.map (fun inj -> { inj; fired = false }) t

(* Injections fire at the first hook where the variant's stream position
   has reached their sequence number ([>=], not [=]): a position can be
   skipped, e.g. by a fork event consumed outside the replay loop. *)

let at_leader_publish armed ~idx ~seq =
  List.filter_map
    (fun s ->
      if s.fired then None
      else
        match s.inj with
        | Crash_variant c when c.idx = idx && seq >= c.at_seq ->
          s.fired <- true;
          Some Crash
        | Signal_burst b when seq >= b.at_seq ->
          s.fired <- true;
          Some (Signals { signo = b.signo; count = b.count })
        | _ -> None)
    armed

let at_follower_consume armed ~idx ~seq =
  let take pick =
    List.filter_map
      (fun s ->
        if s.fired then None
        else
          match pick s.inj with
          | Some a ->
            s.fired <- true;
            Some a
          | None -> None)
      armed
  in
  (* Stalls first (the follower lags, then acts), payload drops next,
     crashes last so a co-located stall still delays the crash. *)
  let stalls =
    take (function
      | Stall_follower st when st.idx = idx && seq >= st.at_seq ->
        Some (Stall st.delay)
      | _ -> None)
  in
  let drops =
    take (function
      | Drop_payload_grant d when d.idx = idx && seq >= d.at_seq ->
        Some Drop_payload
      | _ -> None)
  in
  let crashes =
    take (function
      | Crash_variant c when c.idx = idx && seq >= c.at_seq -> Some Crash
      | _ -> None)
  in
  stalls @ drops @ crashes

let at_link_send armed ~seq =
  List.filter_map
    (fun s ->
      if s.fired then None
      else
        match s.inj with
        | Link_partition p when seq >= p.from_seq ->
          s.fired <- true;
          Some (L_partition p.duration)
        | Link_delay d when seq >= d.at_seq ->
          s.fired <- true;
          Some (L_delay d.extra)
        | Link_reorder r when seq >= r.at_seq ->
          s.fired <- true;
          Some L_reorder
        | Link_drop d when seq >= d.at_seq ->
          s.fired <- true;
          Some L_drop
        | Link_dup d when seq >= d.at_seq ->
          s.fired <- true;
          Some L_duplicate
        | _ -> None)
    armed

let unfired armed =
  List.filter_map (fun s -> if s.fired then None else Some s.inj) armed

(** Deterministic fault-plan DSL.

    A plan is a list of injections, each armed at a precise stream
    sequence number of a variant. The NVX session queries the plan from
    hooks on the leader-publish and follower-consume paths and applies
    the returned actions; an empty plan changes nothing. Plans are plain
    data: they serialize to a compact spec string ([to_string] /
    [of_string]) so any failing torture case reproduces from the command
    line, and [random] derives a plan deterministically from a seed. *)

type injection =
  | Crash_variant of { idx : int; at_seq : int }
      (** Variant [idx] raises {!Injected} when its stream position
          reaches [at_seq] — before executing or consuming that event, so
          a crashed leader never half-applies a call (§5.1). *)
  | Stall_follower of { idx : int; at_seq : int; delay : int }
      (** Follower [idx] sleeps [delay] cycles before consuming the first
          event at stream position [>= at_seq] it is about to take — not
          strictly position [at_seq], which the follower may never observe
          as a pre-consume position (e.g. after a batched drain). Each
          armed injection fires {e at most once}: the slot burns when its
          trigger matches, so one [Stall_follower] is one sleep, never a
          sleep per event past [at_seq]. The lagging-follower scenario
          that exercises ring backpressure (§3.3.1) and, with the
          lifecycle manager on, the watchdog's stall detector. *)
  | Ring_pressure of { shrink_to : int }
      (** Cap the session's ring size at [shrink_to] slots, forcing the
          leader to stall on slow followers. Applied at launch. *)
  | Signal_burst of { at_seq : int; signo : int; count : int }
      (** Post [count] caught signals to the leader process when it
          reaches [at_seq]; they stream as [Ev_signal] events at the next
          interception boundary (§2.2). *)
  | Fork_at of { at_op : int }
      (** Splice a [fork] into the generated workload at op index
          [at_op]. Consumed by the torture harness, not the session. *)
  | Drop_payload_grant of { idx : int; at_seq : int }
      (** Follower [idx] skips releasing the shared-memory payload of the
          event at [at_seq] — a deliberate refcount leak used as the
          negative control proving the oracle's pool-balance check is not
          vacuous. Never part of random plans. *)
  | Link_partition of { from_seq : int; duration : int }
      (** Cut the cross-node bridge link (both directions) for [duration]
          cycles, starting at link frame [from_seq]. Link faults key on
          the bridge's link-global frame sequence — data batches and acks
          share one counter, so a plan can hit either. *)
  | Link_delay of { at_seq : int; extra : int }
      (** Add [extra] cycles to frame [at_seq]'s transit time. *)
  | Link_reorder of { at_seq : int }
      (** Deliver frame [at_seq] just after its successor. *)
  | Link_drop of { at_seq : int }  (** Lose frame [at_seq]. *)
  | Link_dup of { at_seq : int }  (** Deliver frame [at_seq] twice. *)

type t = injection list

exception Injected of string
(** Raised inside a victim task by a [Crash_variant] injection. *)

val empty : t

val random : Varan_util.Prng.t -> variants:int -> max_seq:int -> max_op:int -> t
(** A randomized plan drawn from the generator: possible ring pressure,
    crashes of at most [variants - 1] distinct variants (at least one
    survivor always remains), follower stalls, signal bursts and fork
    splices. Deterministic in the generator state. *)

val random_link : Varan_util.Prng.t -> max_frame:int -> t
(** A randomized link-fault plan for distributed-mode cases: one or two
    partitions (durations spanning both the retransmit-recoverable and
    the watchdog-parking regimes), plus delays, drops, reorders and
    duplicates at random frame sequences. Deterministic in the generator
    state; composes with {!random}'s process-level injections by list
    concatenation. *)

val has_link_faults : t -> bool

val ring_shrink : t -> int option
(** Smallest [Ring_pressure] cap in the plan, if any. *)

val fork_ops : t -> int list
(** The [Fork_at] op indices, in plan order. *)

val describe : injection -> string
val to_string : t -> string
(** Compact spec, e.g. ["crash:0@8,stall:1@3+20000,ring:2"]. *)

val of_string : string -> (t, string) result
(** Parse the [to_string] format. *)

(** {1 Armed plans}

    The session arms a plan at launch: injections become one-shot and
    fire the first time the watched variant's stream position reaches
    their sequence number. *)

type armed

type action =
  | Crash
  | Stall of int  (** cycles to sleep *)
  | Signals of { signo : int; count : int }
  | Drop_payload

(** What the channel layer should do to the frame being sent. *)
type link_action =
  | L_partition of int  (** cut both directions for this many cycles *)
  | L_delay of int
  | L_reorder
  | L_drop
  | L_duplicate

val arm : t -> armed

val at_leader_publish : armed -> idx:int -> seq:int -> action list
(** Actions due on the leader path of variant [idx] about to publish
    stream event [seq]: crashes targeting [idx] and signal bursts. *)

val at_follower_consume : armed -> idx:int -> seq:int -> action list
(** Actions due on the follower path of variant [idx] about to consume
    stream event [seq]: stalls, payload drops and crashes, in that
    order. *)

val at_link_send : armed -> seq:int -> link_action list
(** Link faults due as the bridge's channel sends frame [seq]; one-shot,
    [>=] triggered like every other injection. *)

val unfired : armed -> injection list
(** Injections that never fired (stream ended before their sequence
    number, or their variant changed role). *)

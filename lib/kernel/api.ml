open Varan_syscall
module E = Varan_sim.Engine

type t = {
  proc : Types.proc;
  sys : Sysno.t -> Args.t -> Args.result;
  mutable compute_scale_c1000 : int;
  mutable fork_child : ((t -> unit) -> int) option;
  mutable checkpoint_hook : ((unit -> Bytes.t) -> unit) option;
  mutable resume_state : Bytes.t option;
}

let rec direct k proc =
  let api =
    {
      proc;
      sys = (fun sysno args -> Kernel.exec k proc sysno args);
      compute_scale_c1000 = 1000;
      fork_child = None;
      checkpoint_hook = None;
      resume_state = None;
    }
  in
  api.fork_child <-
    Some
      (fun body ->
        (* Plain fork: duplicate the process, charge the fork cost, run
           the child body in a fresh task with its own direct API. *)
        let child = Kernel.fork_proc k proc (proc.Types.pname ^ ".child") in
        E.consume ((Kernel.cost k).Varan_cycles.Cost.native_base Sysno.Fork);
        let child_api = direct k child in
        child_api.compute_scale_c1000 <- api.compute_scale_c1000;
        let tid =
          E.spawn_here ~name:child.Types.pname (fun () ->
              try body child_api with E.Killed -> ())
        in
        Kernel.register_task k child tid;
        child.Types.pid);
  api

let with_sys proc sys =
  {
    proc;
    sys;
    compute_scale_c1000 = 1000;
    fork_child = None;
    checkpoint_hook = None;
    resume_state = None;
  }

let fork api body =
  match api.fork_child with
  | Some f -> f body
  | None -> invalid_arg "Api.fork: no fork hook installed"

let lift (r : Args.result) : (int, Errno.t) result =
  match Args.errno_of r with Some e -> Error e | None -> Ok r.Args.ret

let lift_unit r = Result.map (fun (_ : int) -> ()) (lift r)

let lift_out (r : Args.result) : (Bytes.t, Errno.t) result =
  match Args.errno_of r with
  | Some e -> Error e
  | None -> Ok (match r.Args.out with Some b -> b | None -> Bytes.empty)

(* Files *)

let openf api path flags =
  lift (api.sys Sysno.Open [| Args.Str path; Args.Int flags; Args.Int 0o644 |])

let close api fd = lift (api.sys Sysno.Close [| Args.Int fd |])

let read api fd len =
  lift_out (api.sys Sysno.Read [| Args.Int fd; Args.Buf_out len |])

let write api fd data =
  lift (api.sys Sysno.Write [| Args.Int fd; Args.Buf_in data |])

let write_str api fd s = write api fd (Bytes.of_string s)

let write_all api fd data =
  let len = Bytes.length data in
  let rec go sent =
    if sent >= len then Ok ()
    else
      match write api fd (Bytes.sub data sent (len - sent)) with
      | Error e -> Error e
      | Ok 0 -> Error Errno.EIO
      | Ok n -> go (sent + n)
  in
  go 0

let lseek api fd offset whence =
  lift
    (api.sys Sysno.Lseek [| Args.Int fd; Args.Int offset; Args.Int whence |])

let get_le64 b ofs =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get b (ofs + i))))
  done;
  !v

let stat_size api path =
  match lift_out (api.sys Sysno.Stat [| Args.Str path; Args.Buf_out 144 |]) with
  | Error e -> Error e
  | Ok b -> Ok (Int64.to_int (get_le64 b 48))

let fstat_size api fd =
  match lift_out (api.sys Sysno.Fstat [| Args.Int fd; Args.Buf_out 144 |]) with
  | Error e -> Error e
  | Ok b -> Ok (Int64.to_int (get_le64 b 48))

let unlink api path = lift_unit (api.sys Sysno.Unlink [| Args.Str path |])
let mkdir api path = lift_unit (api.sys Sysno.Mkdir [| Args.Str path; Args.Int 0o755 |])

let rename api src dst =
  lift_unit (api.sys Sysno.Rename [| Args.Str src; Args.Str dst |])

let access api path =
  lift_unit (api.sys Sysno.Access [| Args.Str path; Args.Int 0 |])

let fsync api fd = lift_unit (api.sys Sysno.Fsync [| Args.Int fd |])

let fcntl api fd cmd arg =
  lift (api.sys Sysno.Fcntl [| Args.Int fd; Args.Int cmd; Args.Int arg |])

let dup api fd = lift (api.sys Sysno.Dup [| Args.Int fd |])

let pipe api =
  let r = api.sys Sysno.Pipe [| Args.Buf_out 8 |] in
  match Args.errno_of r with
  | Some e -> Error e
  | None -> (
    match r.Args.out with
    | Some b when Bytes.length b = 8 ->
      Ok
        ( Int32.to_int (Bytes.get_int32_le b 0),
          Int32.to_int (Bytes.get_int32_le b 4) )
    | _ -> Error Errno.EIO)

(* Sockets *)

let socket api =
  lift (api.sys Sysno.Socket [| Args.Int 2; Args.Int 1; Args.Int 0 |])

let bind api fd port =
  lift_unit (api.sys Sysno.Bind [| Args.Int fd; Args.Int port |])

let listen api fd =
  lift_unit (api.sys Sysno.Listen [| Args.Int fd; Args.Int 128 |])

let accept api fd =
  lift (api.sys Sysno.Accept [| Args.Int fd; Args.Int 0; Args.Int 0 |])

let connect api fd port =
  lift_unit (api.sys Sysno.Connect [| Args.Int fd; Args.Int port |])

let send api fd data =
  lift (api.sys Sysno.Sendto [| Args.Int fd; Args.Buf_in data; Args.Int 0 |])

let recv api fd len =
  lift_out (api.sys Sysno.Recvfrom [| Args.Int fd; Args.Buf_out len; Args.Int 0 |])

let shutdown api fd how =
  lift_unit (api.sys Sysno.Shutdown [| Args.Int fd; Args.Int how |])

let socketpair api =
  let r = api.sys Sysno.Socketpair [| Args.Buf_out 8 |] in
  match Args.errno_of r with
  | Some e -> Error e
  | None -> (
    match r.Args.out with
    | Some b when Bytes.length b = 8 ->
      Ok
        ( Int32.to_int (Bytes.get_int32_le b 0),
          Int32.to_int (Bytes.get_int32_le b 4) )
    | _ -> Error Errno.EIO)

let poll api entries ~timeout_ms =
  let spec = Bytes.create (8 * List.length entries) in
  List.iteri
    (fun i (fd, events) ->
      Bytes.set_int32_le spec (8 * i) (Int32.of_int fd);
      Bytes.set_int32_le spec ((8 * i) + 4) (Int32.of_int events))
    entries;
  let r =
    api.sys Sysno.Poll
      [| Args.Buf_in spec; Args.Int timeout_ms;
         Args.Buf_out (8 * List.length entries) |]
  in
  match Args.errno_of r with
  | Some e -> Error e
  | None ->
    let b = match r.Args.out with Some b -> b | None -> Bytes.empty in
    Ok
      (List.init
         (Bytes.length b / 8)
         (fun i ->
           ( Int32.to_int (Bytes.get_int32_le b (8 * i)),
             Int32.to_int (Bytes.get_int32_le b ((8 * i) + 4)) )))

let select api ~read ~write ~timeout_ms =
  let enc fds =
    let b = Bytes.create (4 * List.length fds) in
    List.iteri (fun i fd -> Bytes.set_int32_le b (4 * i) (Int32.of_int fd)) fds;
    b
  in
  let r =
    api.sys Sysno.Select
      [| Args.Buf_in (enc read); Args.Buf_in (enc write); Args.Int timeout_ms |]
  in
  match Args.errno_of r with
  | Some e -> Error e
  | None ->
    let b = match r.Args.out with Some b -> b | None -> Bytes.empty in
    Ok
      (List.init
         (Bytes.length b / 8)
         (fun i ->
           ( Int32.to_int (Bytes.get_int32_le b (8 * i)),
             Int32.to_int (Bytes.get_int32_le b ((8 * i) + 4)) )))

(* Event polling *)

let epoll_create api =
  lift (api.sys Sysno.Epoll_create [| Args.Int 0 |])

let epoll_ctl api epfd op fd events =
  lift_unit
    (api.sys Sysno.Epoll_ctl
       [| Args.Int epfd; Args.Int op; Args.Int fd; Args.Int events |])

let epoll_wait api epfd ~max_events ~timeout_ms =
  let r =
    api.sys Sysno.Epoll_wait
      [| Args.Int epfd; Args.Int max_events; Args.Int timeout_ms;
         Args.Buf_out (8 * max_events) |]
  in
  match Args.errno_of r with
  | Some e -> Error e
  | None ->
    let b = match r.Args.out with Some b -> b | None -> Bytes.empty in
    let n = Bytes.length b / 8 in
    let events =
      List.init n (fun i ->
          ( Int32.to_int (Bytes.get_int32_le b (8 * i)),
            Int32.to_int (Bytes.get_int32_le b ((8 * i) + 4)) ))
    in
    Ok events

(* Process, time, misc *)

let ret_or_zero api sysno args =
  match lift (api.sys sysno args) with Ok v -> v | Error _ -> 0

let getpid api = ret_or_zero api Sysno.Getpid [||]
let getuid api = ret_or_zero api Sysno.Getuid [||]
let geteuid api = ret_or_zero api Sysno.Geteuid [||]
let getgid api = ret_or_zero api Sysno.Getgid [||]
let getegid api = ret_or_zero api Sysno.Getegid [||]
let time api = ret_or_zero api Sysno.Time [| Args.Int 0 |]

let decode_time_ns b =
  if Bytes.length b < 16 then 0L
  else
    Int64.add
      (Int64.mul (get_le64 b 0) 1_000_000_000L)
      (get_le64 b 8)

let gettimeofday_ns api =
  match lift_out (api.sys Sysno.Gettimeofday [| Args.Buf_out 16 |]) with
  | Ok b -> decode_time_ns b
  | Error _ -> 0L

let clock_gettime_ns api =
  match
    lift_out (api.sys Sysno.Clock_gettime [| Args.Int 1; Args.Buf_out 16 |])
  with
  | Ok b -> decode_time_ns b
  | Error _ -> 0L

let nanosleep_us api us =
  ignore (api.sys Sysno.Nanosleep [| Args.Int (us * 1000); Args.Int 0 |])

let futex_wait api uaddr =
  ignore
    (api.sys Sysno.Futex
       [| Args.Int uaddr; Args.Int Flags.futex_wait; Args.Int 0 |])

let futex_wake api uaddr n =
  ret_or_zero api Sysno.Futex
    [| Args.Int uaddr; Args.Int Flags.futex_wake; Args.Int n |]

let futex_lock api uaddr =
  ret_or_zero api Sysno.Futex
    [| Args.Int uaddr; Args.Int Flags.futex_lock; Args.Int 0 |]

let futex_unlock api uaddr =
  ret_or_zero api Sysno.Futex
    [| Args.Int uaddr; Args.Int Flags.futex_unlock; Args.Int 0 |]

let getrandom api n =
  lift_out (api.sys Sysno.Getrandom [| Args.Buf_out n; Args.Int 0 |])

let kill api pid signo =
  lift_unit (api.sys Sysno.Kill [| Args.Int pid; Args.Int signo |])

let set_signal_handler api signo f =
  ignore
    (api.sys Sysno.Rt_sigaction [| Args.Int signo; Args.Int 1; Args.Int 0 |]);
  Kernel.set_signal_handler api.proc signo f

let exit_group api code =
  ignore (api.sys Sysno.Exit_group [| Args.Int code |]);
  (* Exit_group raises Killed inside the kernel; not reached. *)
  assert false

let compute api cycles =
  if api.compute_scale_c1000 = 1000 then E.consume cycles
  else E.consume (((cycles * api.compute_scale_c1000) + 500) / 1000)

(** Typed system-call API for simulated programs.

    A program receives an {!t} whose [sys] function is its only gateway to
    the outside world — exactly the system-call boundary VARAN interposes
    on. Under native execution [sys] goes straight to {!Kernel.exec}; under
    NVX it goes through a monitor's system call table, which may execute,
    record, or replay the call (§3.2–3.3 of the paper).

    All wrappers construct the marshalled {!Varan_syscall.Args.t} form, so
    a monitor observes realistic argument payloads. *)

open Varan_syscall

type t = {
  proc : Types.proc;
  sys : Sysno.t -> Args.t -> Args.result;
  mutable compute_scale_c1000 : int;
      (** multiplier (in 1/1000 units) applied to {!compute} charges; the
          NVX layer uses it for sanitizer instrumentation overhead and
          memory-pressure slowdowns. 1000 = no scaling. *)
  mutable fork_child : ((t -> unit) -> int) option;
      (** how [fork] is implemented in this execution environment: plain
          process creation natively, the Ev_fork streaming protocol under
          NVX (installed by the runtime, not by programs). *)
  mutable checkpoint_hook : ((unit -> Bytes.t) -> unit) option;
      (** cooperative checkpointing: a program that supports snapshots
          calls the hook at every syscall boundary, passing an encoder
          for its own resumable state. The runtime (when a checkpoint is
          due) invokes the encoder and files the snapshot; otherwise the
          call is a cheap no-op. [None] natively. *)
  mutable resume_state : Bytes.t option;
      (** set by the runtime before a respawned program body starts: the
          program-state blob of the checkpoint being restored. A
          cooperative program decodes it, fast-forwards past the work
          already covered, and clears the field. *)
}

val direct : Types.t -> Types.proc -> t
(** Native (un-monitored) execution: straight into the kernel. *)

val with_sys : Types.proc -> (Sysno.t -> Args.t -> Args.result) -> t
(** An API whose gateway is the given interposed function — how a monitor
    wraps a program. *)

(** {1 Files} *)

val openf : t -> string -> int -> (int, Errno.t) result
val close : t -> int -> (int, Errno.t) result
val read : t -> int -> int -> (Bytes.t, Errno.t) result
(** [read api fd len]; [Bytes.empty] result means EOF. *)

val write : t -> int -> Bytes.t -> (int, Errno.t) result
val write_str : t -> int -> string -> (int, Errno.t) result
val write_all : t -> int -> Bytes.t -> (unit, Errno.t) result
(** Loop until every byte is accepted (blocking descriptors only). *)

val lseek : t -> int -> int -> int -> (int, Errno.t) result
val stat_size : t -> string -> (int, Errno.t) result
val fstat_size : t -> int -> (int, Errno.t) result
val unlink : t -> string -> (unit, Errno.t) result
val mkdir : t -> string -> (unit, Errno.t) result
val rename : t -> string -> string -> (unit, Errno.t) result
val access : t -> string -> (unit, Errno.t) result
val fsync : t -> int -> (unit, Errno.t) result
val fcntl : t -> int -> int -> int -> (int, Errno.t) result
val dup : t -> int -> (int, Errno.t) result
val pipe : t -> (int * int, Errno.t) result

(** {1 Sockets} *)

val socket : t -> (int, Errno.t) result
val bind : t -> int -> int -> (unit, Errno.t) result
val listen : t -> int -> (unit, Errno.t) result
val accept : t -> int -> (int, Errno.t) result
val connect : t -> int -> int -> (unit, Errno.t) result
val send : t -> int -> Bytes.t -> (int, Errno.t) result
val recv : t -> int -> int -> (Bytes.t, Errno.t) result
val shutdown : t -> int -> int -> (unit, Errno.t) result
val socketpair : t -> (int * int, Errno.t) result
(** A connected pair of UNIX-domain-style sockets. *)

val poll :
  t -> (int * int) list -> timeout_ms:int -> ((int * int) list, Errno.t) result
(** [poll api [(fd, events); ...] ~timeout_ms] returns the ready
    [(fd, revents)] pairs. *)

val select :
  t -> read:int list -> write:int list -> timeout_ms:int ->
  ((int * int) list, Errno.t) result
(** select(2) over explicit read/write descriptor sets; the result pairs
    carry poll-style event masks. *)

(** {1 Event polling} *)

val epoll_create : t -> (int, Errno.t) result
val epoll_ctl : t -> int -> int -> int -> int -> (unit, Errno.t) result
val epoll_wait :
  t -> int -> max_events:int -> timeout_ms:int ->
  ((int * int) list, Errno.t) result
(** Returns [(fd, event-mask)] pairs. *)

(** {1 Process, time, misc} *)

val getpid : t -> int
val getuid : t -> int
val geteuid : t -> int
val getgid : t -> int
val getegid : t -> int
val time : t -> int
val gettimeofday_ns : t -> int64
val clock_gettime_ns : t -> int64
val nanosleep_us : t -> int -> unit
val futex_wait : t -> int -> unit
val futex_wake : t -> int -> int -> int

val futex_lock : t -> int -> int
(** Acquire the futex word as a PI-style mutex; blocks while held.
    Returns the word's acquisition index (1-based, monotonic per futex) —
    under NVX, the streamed result that makes the leader's global
    lock-acquisition order observable to (and replayed by) followers. *)

val futex_unlock : t -> int -> int
(** Release a futex word held via {!futex_lock}, waking the oldest
    queued acquirer. Returns 0, or -EPERM if the word was not held. *)

val getrandom : t -> int -> (Bytes.t, Errno.t) result
val kill : t -> int -> int -> (unit, Errno.t) result

val set_signal_handler : t -> int -> (int -> unit) -> unit
(** Register a handler for a caught signal (issues [rt_sigaction] so the
    registration is visible at the syscall level, then installs the
    closure kernel-side). *)

val exit_group : t -> int -> unit
(** Terminates the calling task; does not return. *)

val fork : t -> (t -> unit) -> int
(** [fork api child_body] forks a child process running [child_body] with
    its own API, and returns the child's pid in the parent — the
    simulation's fork(2), with the child's code passed explicitly because
    closures cannot be cloned. Under NVX this streams an [Ev_fork] event
    and allocates a fresh ring buffer for the new process tuple (Â§3.3.3).
    @raise Invalid_argument if the environment installed no fork hook. *)

val compute : t -> int -> unit
(** Pure user-space computation: burn the given number of cycles (scaled
    by [compute_scale_c1000]) without entering the kernel. *)

(* Flag constants shared by the simulated kernel and its clients; values
   follow Linux/x86-64 so that traces read naturally. *)

(* open(2) *)
let o_rdonly = 0o0
let o_wronly = 0o1
let o_rdwr = 0o2
let o_creat = 0o100
let o_trunc = 0o1000
let o_append = 0o2000
let o_nonblock = 0o4000
let o_cloexec = 0o2000000

(* fcntl(2) *)
let f_dupfd = 0
let f_getfd = 1
let f_setfd = 2
let f_getfl = 3
let f_setfl = 4
let fd_cloexec = 1

(* epoll *)
let epollin = 0x001
let epollout = 0x004
let epollerr = 0x008
let epollhup = 0x010
let epoll_ctl_add = 1
let epoll_ctl_del = 2
let epoll_ctl_mod = 3

(* futex *)
let futex_wait = 0
let futex_wake = 1
(* PI-style mutex ops (Linux FUTEX_LOCK_PI / FUTEX_UNLOCK_PI): lock
   returns the word's acquisition index, so a recorded stream encodes
   the global lock-acquisition order. *)
let futex_lock = 6
let futex_unlock = 7

(* signals *)
let sigint = 2
let sigkill = 9
let sigsegv = 11
let sigpipe = 13
let sigterm = 15
let sigchld = 17

(* lseek whence *)
let seek_set = 0
let seek_cur = 1
let seek_end = 2

(* shutdown how *)
let shut_rd = 0
let shut_wr = 1
let shut_rdwr = 2

(* openat special dirfd *)
let at_fdcwd = -100

open Types
module E = Varan_sim.Engine
module Cond = E.Cond
module Prof = Varan_sim.Prof
module Phase = Varan_obs.Profile
module Sysno = Varan_syscall.Sysno
module Args = Varan_syscall.Args
module Errno = Varan_syscall.Errno
module Cost = Varan_cycles.Cost
module Prng = Varan_util.Prng

type fd_grant = { granted : (int * ofile) list }

let create ?(cost = Cost.default) ?(link_latency = 0) ?(seed = 42) eng =
  let root = Directory (Hashtbl.create 16) in
  let k =
    {
      eng;
      cost;
      root;
      listeners = Hashtbl.create 16;
      futexes = Hashtbl.create 16;
      procs = Hashtbl.create 16;
      next_pid = 1;
      next_ofile = 1;
      next_ephemeral_port = 32768;
      rng = Prng.create seed;
      link_latency;
      epoch_seconds = 1_700_000_000;
    }
  in
  (match root with
  | Directory d ->
    let dev = Hashtbl.create 8 in
    Hashtbl.replace dev "null" Dev_null;
    Hashtbl.replace dev "zero" Dev_zero;
    Hashtbl.replace dev "urandom" Dev_urandom;
    Hashtbl.replace d "dev" (Directory dev);
    Hashtbl.replace d "tmp" (Directory (Hashtbl.create 8))
  | _ -> assert false);
  k

let engine k = k.eng
let cost k = k.cost

let new_proc k ?parent pname =
  let pid = k.next_pid in
  k.next_pid <- k.next_pid + 1;
  let p =
    {
      pid;
      pname;
      fds = Hashtbl.create 16;
      cwd = "/";
      brk_addr = 0x0060_0000;
      mmap_next = 0x7f00_0000_0000;
      sighandlers = Hashtbl.create 8;
      exited = false;
      exit_code = 0;
      umask = 0o022;
      parent;
      children = [];
      exit_cond = Cond.create (Printf.sprintf "proc-%d-exit" pid);
      tasks = [];
      pending_signals = [];
      uid = 1000;
      gid = 1000;
    }
  in
  (match parent with Some pp -> pp.children <- p :: pp.children | None -> ());
  Hashtbl.replace k.procs pid p;
  p

let register_task _k proc tid = proc.tasks <- tid :: proc.tasks

let new_ofile k kind =
  let id = k.next_ofile in
  k.next_ofile <- k.next_ofile + 1;
  { of_id = id; kind; offset = 0; flags = 0; refcount = 1 }

let alloc_fd proc =
  let rec scan fd = if Hashtbl.mem proc.fds fd then scan (fd + 1) else fd in
  scan 0

let install_fd_at proc fd ofile =
  ofile.refcount <- ofile.refcount + 1;
  Hashtbl.replace proc.fds fd { fde_ofile = ofile; fde_cloexec = false }

let add_fd proc ofile =
  let fd = alloc_fd proc in
  Hashtbl.replace proc.fds fd { fde_ofile = ofile; fde_cloexec = false };
  fd

let fork_proc k parent pname =
  let child = new_proc k ~parent pname in
  child.cwd <- parent.cwd;
  child.umask <- parent.umask;
  Hashtbl.iter
    (fun fd entry ->
      entry.fde_ofile.refcount <- entry.fde_ofile.refcount + 1;
      Hashtbl.replace child.fds fd
        { fde_ofile = entry.fde_ofile; fde_cloexec = entry.fde_cloexec })
    parent.fds;
  child

(* ------------------------------------------------------------------ *)
(* Readiness and wake-ups                                             *)
(* ------------------------------------------------------------------ *)

let rec ready_read ofile =
  match ofile.kind with
  | K_file _ -> true
  | K_pipe_r p -> (not (Bytequeue.is_empty p.p_q)) || p.p_writers = 0
  | K_pipe_w _ -> false
  | K_sock ep -> (not (Bytequeue.is_empty ep.ep_rx)) || ep.ep_peer_closed
  | K_listen l -> not (Queue.is_empty l.l_backlog)
  | K_epoll e ->
    Hashtbl.fold
      (fun _ w acc ->
        acc
        || (w.w_events land Flags.epollin <> 0 && ready_read w.w_ofile)
        || (w.w_events land Flags.epollout <> 0 && ready_write w.w_ofile))
      e.e_watches false

and ready_write ofile =
  match ofile.kind with
  | K_file _ -> true
  | K_pipe_r _ -> false
  | K_pipe_w p -> Bytequeue.space p.p_q > 0 || p.p_readers = 0
  | K_sock ep -> (
    if ep.ep_closed then false
    else
      match ep.ep_peer with
      | None -> false
      | Some peer -> peer.ep_peer_closed || Bytequeue.space peer.ep_rx > 0)
  | K_listen _ -> false
  | K_epoll _ -> false

let notify_epolls watchers = List.iter (fun e -> Cond.broadcast e.e_cond) watchers

let wake_sock_readers ep =
  Cond.broadcast ep.ep_readable;
  notify_epolls ep.ep_watchers

let wake_sock_writers ep =
  Cond.broadcast ep.ep_writable;
  notify_epolls ep.ep_watchers

let nonblocking ofile = ofile.flags land Flags.o_nonblock <> 0

(* ------------------------------------------------------------------ *)
(* Socket delivery with optional link latency                          *)
(* ------------------------------------------------------------------ *)

(* Append payload to the peer's receive queue. With a non-zero link
   latency the append happens in a detached delivery task so the bytes
   become visible [link_latency] cycles later, preserving order because
   engine events at increasing times run in order. *)
let deliver_to_peer k (peer : endpoint) (data : Bytes.t) =
  let append () =
    ignore (Bytequeue.write peer.ep_rx data);
    wake_sock_readers peer
  in
  if k.link_latency = 0 then append ()
  else
    ignore
      (E.spawn_here ~name:"net-delivery" (fun () ->
           E.sleep k.link_latency;
           append ()))

let deliver_fin k (peer : endpoint) =
  let fin () =
    peer.ep_peer_closed <- true;
    wake_sock_readers peer;
    wake_sock_writers peer
  in
  if k.link_latency = 0 then fin ()
  else
    ignore
      (E.spawn_here ~name:"net-fin" (fun () ->
           E.sleep k.link_latency;
           fin ()))

(* ------------------------------------------------------------------ *)
(* Release on close                                                    *)
(* ------------------------------------------------------------------ *)

let release_ofile k ofile =
  ofile.refcount <- ofile.refcount - 1;
  if ofile.refcount <= 0 then begin
    match ofile.kind with
    | K_file _ -> ()
    | K_pipe_r p ->
      p.p_readers <- p.p_readers - 1;
      if p.p_readers = 0 then begin
        Cond.broadcast p.p_writable;
        notify_epolls p.p_watchers
      end
    | K_pipe_w p ->
      p.p_writers <- p.p_writers - 1;
      if p.p_writers = 0 then begin
        Cond.broadcast p.p_readable;
        notify_epolls p.p_watchers
      end
    | K_sock ep ->
      if not ep.ep_closed then begin
        ep.ep_closed <- true;
        match ep.ep_peer with
        | Some peer -> deliver_fin k peer
        | None -> ()
      end
    | K_listen l ->
      l.l_closed <- true;
      Hashtbl.remove k.listeners l.l_port;
      Cond.broadcast l.l_cond
    | K_epoll _ -> ()
  end

let kill_proc k proc signo =
  if not proc.exited then begin
    proc.exited <- true;
    proc.exit_code <- 128 + signo;
    Hashtbl.iter (fun _ entry -> release_ofile k entry.fde_ofile) proc.fds;
    Hashtbl.reset proc.fds;
    (match proc.parent with
    | Some parent -> Cond.broadcast parent.exit_cond
    | None -> ());
    List.iter (fun tid -> E.kill k.eng tid) proc.tasks
  end

(* ------------------------------------------------------------------ *)
(* Helpers for the dispatcher                                          *)
(* ------------------------------------------------------------------ *)

let fd_entry proc fd = Hashtbl.find_opt proc.fds fd

let with_fd proc fd f =
  match fd_entry proc fd with
  | None -> Args.err Errno.EBADF
  | Some entry -> f entry

let charge_out k bytes =
  E.consume
    (Cost.copy_cycles ~rate_c100:k.cost.Cost.copy_per_byte_c100 bytes)

let grant fds result =
  { result with Args.fd_object = Some (Obj.repr { granted = fds }) }

let grant_of_result (r : Args.result) : fd_grant option =
  match r.Args.fd_object with
  | None -> None
  | Some o -> Some (Obj.obj o : fd_grant)

let install_grant k proc g =
  List.iter
    (fun (fd, ofile) ->
      (* A stale descriptor at this number (e.g. a replayed-but-not-
         executed close left it behind) is released first. *)
      (match fd_entry proc fd with
      | Some old ->
        Hashtbl.remove proc.fds fd;
        release_ofile k old.fde_ofile
      | None -> ());
      install_fd_at proc fd ofile)
    g.granted

(* ------------------------------------------------------------------ *)
(* Descriptor-table snapshots (checkpoint/restore)                     *)
(* ------------------------------------------------------------------ *)

type fd_snapshot = (int * ofile * bool) list

(* The entries reference the shared open-file descriptions by identity —
   exactly what a replayed grant would install — so a snapshot restored
   into a fresh process yields the same table a full tape replay would
   have built. *)
let snapshot_fds proc =
  Hashtbl.fold
    (fun fd e acc -> (fd, e.fde_ofile, e.fde_cloexec) :: acc)
    proc.fds []

let restore_fds k proc snap =
  List.iter
    (fun (fd, ofile, cloexec) ->
      (match fd_entry proc fd with
      | Some old ->
        Hashtbl.remove proc.fds fd;
        release_ofile k old.fde_ofile
      | None -> ());
      install_fd_at proc fd ofile;
      (Hashtbl.find proc.fds fd).fde_cloexec <- cloexec)
    snap

let fd_snapshot_count = List.length

let now_ns k =
  let cycles = Int64.to_float (E.now k.eng) in
  let ns = cycles /. k.cost.Cost.cpu_ghz in
  Int64.add
    (Int64.mul (Int64.of_int k.epoch_seconds) 1_000_000_000L)
    (Int64.of_float ns)

(* Simulated-process-local time: based on the calling task's clock. *)
let task_now_ns k =
  let cycles = Int64.to_float (E.now_cycles ()) in
  let ns = cycles /. k.cost.Cost.cpu_ghz in
  Int64.add
    (Int64.mul (Int64.of_int k.epoch_seconds) 1_000_000_000L)
    (Int64.of_float ns)

let put_le64 b ofs v =
  for i = 0 to 7 do
    Bytes.set b (ofs + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let encode_stat ~size ~is_dir =
  (* A 144-byte struct stat with st_size at offset 48 and st_mode at 24,
     like x86-64 glibc's layout. *)
  let b = Bytes.make 144 '\000' in
  put_le64 b 48 (Int64.of_int size);
  put_le64 b 24 (Int64.of_int (if is_dir then 0o040755 else 0o100644));
  b

let random_bytes k n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (Prng.int k.rng 256))
  done;
  b

let proc_alive p = not p.exited
let fd_count p = Hashtbl.length p.fds

let set_nonblock proc fd v =
  match fd_entry proc fd with
  | None -> Error Errno.EBADF
  | Some e ->
    let o = e.fde_ofile in
    o.flags <-
      (if v then o.flags lor Flags.o_nonblock
       else o.flags land lnot Flags.o_nonblock);
    Ok ()

(* ------------------------------------------------------------------ *)
(* Blocking primitives                                                 *)
(* ------------------------------------------------------------------ *)

(* Wait until [ready ()] or, for non-blocking descriptors, fail with
   EAGAIN. The condition is re-checked after every wake-up because
   several waiters may race for the same bytes. *)
let block_until ~nonblock cond ready =
  if ready () then Ok ()
  else if nonblock then Error Errno.EAGAIN
  else begin
    (* Every blocking syscall funnels through here, so this is where the
       profile learns how much vtime tasks spend parked inside the
       kernel (per-object conds — what would be kernel-table contention
       on real hardware). *)
    let t0 = Prof.mark () in
    let rec loop () =
      if ready () then Ok ()
      else begin
        Cond.wait cond;
        loop ()
      end
    in
    let r = loop () in
    Prof.charge_wait Phase.kernel_wait t0;
    r
  end

(* ------------------------------------------------------------------ *)
(* The dispatcher                                                      *)
(* ------------------------------------------------------------------ *)

let do_read k proc args =
  let fd = Args.int_arg args 0 in
  let want = Args.buf_out_arg args 1 in
  with_fd proc fd (fun entry ->
      let o = entry.fde_ofile in
      match o.kind with
      | K_file (Regular r) ->
        let size = Bytes.length r.content in
        let n = max 0 (min want (size - o.offset)) in
        let out = Bytes.sub r.content o.offset n in
        o.offset <- o.offset + n;
        charge_out k n;
        Args.ok_out n out
      | K_file Dev_null -> Args.ok_out 0 Bytes.empty
      | K_file Dev_zero ->
        charge_out k want;
        Args.ok_out want (Bytes.make want '\000')
      | K_file Dev_urandom ->
        charge_out k want;
        Args.ok_out want (random_bytes k want)
      | K_file (Directory _) -> Args.err Errno.EISDIR
      | K_pipe_r p -> (
        let ready () = (not (Bytequeue.is_empty p.p_q)) || p.p_writers = 0 in
        match block_until ~nonblock:(nonblocking o) p.p_readable ready with
        | Error e -> Args.err e
        | Ok () ->
          let out = Bytequeue.read p.p_q want in
          Cond.broadcast p.p_writable;
          notify_epolls p.p_watchers;
          charge_out k (Bytes.length out);
          Args.ok_out (Bytes.length out) out)
      | K_pipe_w _ -> Args.err Errno.EBADF
      | K_sock ep -> (
        let ready () =
          (not (Bytequeue.is_empty ep.ep_rx)) || ep.ep_peer_closed
        in
        match block_until ~nonblock:(nonblocking o) ep.ep_readable ready with
        | Error e -> Args.err e
        | Ok () ->
          let out = Bytequeue.read ep.ep_rx want in
          (match ep.ep_peer with
          | Some peer -> wake_sock_writers peer
          | None -> ());
          notify_epolls ep.ep_watchers;
          charge_out k (Bytes.length out);
          Args.ok_out (Bytes.length out) out)
      | K_listen _ -> Args.err Errno.EINVAL
      | K_epoll _ -> Args.err Errno.EINVAL)

let do_write k proc args =
  let fd = Args.int_arg args 0 in
  let data = Args.buf_in_arg args 1 in
  with_fd proc fd (fun entry ->
      let o = entry.fde_ofile in
      match o.kind with
      | K_file (Regular r) ->
        let len = Bytes.length data in
        let pos = if o.flags land Flags.o_append <> 0 then Bytes.length r.content else o.offset in
        let newsize = max (Bytes.length r.content) (pos + len) in
        let content =
          if newsize > Bytes.length r.content then begin
            let bigger = Bytes.make newsize '\000' in
            Bytes.blit r.content 0 bigger 0 (Bytes.length r.content);
            bigger
          end
          else r.content
        in
        Bytes.blit data 0 content pos len;
        r.content <- content;
        o.offset <- pos + len;
        Args.ok len
      | K_file Dev_null -> Args.ok (Bytes.length data)
      | K_file Dev_zero -> Args.ok (Bytes.length data)
      | K_file Dev_urandom -> Args.ok (Bytes.length data)
      | K_file (Directory _) -> Args.err Errno.EISDIR
      | K_pipe_w p -> (
        if p.p_readers = 0 then Args.err Errno.EPIPE
        else
          let ready () = Bytequeue.space p.p_q > 0 || p.p_readers = 0 in
          match block_until ~nonblock:(nonblocking o) p.p_writable ready with
          | Error e -> Args.err e
          | Ok () ->
            if p.p_readers = 0 then Args.err Errno.EPIPE
            else begin
              let n = Bytequeue.write p.p_q data in
              Cond.broadcast p.p_readable;
              notify_epolls p.p_watchers;
              Args.ok n
            end)
      | K_pipe_r _ -> Args.err Errno.EBADF
      | K_sock ep -> (
        if ep.ep_closed then Args.err Errno.EPIPE
        else
          match ep.ep_peer with
          | None -> Args.err Errno.ENOTCONN
          | Some peer ->
            if peer.ep_closed then Args.err Errno.EPIPE
            else begin
              (* Flow control against the peer's receive buffer. *)
              let ready () =
                peer.ep_closed || Bytequeue.space peer.ep_rx > 0
              in
              match
                block_until ~nonblock:(nonblocking o) ep.ep_writable ready
              with
              | Error e -> Args.err e
              | Ok () ->
                if peer.ep_closed then Args.err Errno.EPIPE
                else begin
                  let room = Bytequeue.space peer.ep_rx in
                  let n = min room (Bytes.length data) in
                  deliver_to_peer k peer (Bytes.sub data 0 n);
                  Args.ok n
                end
            end)
      | K_listen _ -> Args.err Errno.EINVAL
      | K_epoll _ -> Args.err Errno.EINVAL)

let do_open k proc args =
  let path = Args.str_arg args 0 in
  let flags = Args.int_arg args 1 in
  let node =
    if flags land Flags.o_creat <> 0 then Vfs.create_file k ~cwd:proc.cwd path
    else Vfs.lookup k ~cwd:proc.cwd path
  in
  match node with
  | Error e -> Args.err e
  | Ok node ->
    (match node with
    | Regular r when flags land Flags.o_trunc <> 0 -> r.content <- Bytes.empty
    | _ -> ());
    let o = new_ofile k (K_file node) in
    o.flags <- flags;
    let fd = add_fd proc o in
    grant [ (fd, o) ] (Args.ok fd)

let do_close k proc args =
  let fd = Args.int_arg args 0 in
  if fd < 0 then Args.err Errno.EBADF
  else
    with_fd proc fd (fun entry ->
        Hashtbl.remove proc.fds fd;
        release_ofile k entry.fde_ofile;
        Args.ok 0)

let do_stat k proc args =
  let path = Args.str_arg args 0 in
  match Vfs.lookup k ~cwd:proc.cwd path with
  | Error e -> Args.err e
  | Ok node ->
    let is_dir = match node with Directory _ -> true | _ -> false in
    Args.ok_out 0 (encode_stat ~size:(Vfs.file_size node) ~is_dir)

let do_fstat _k proc args =
  let fd = Args.int_arg args 0 in
  with_fd proc fd (fun entry ->
      match entry.fde_ofile.kind with
      | K_file node ->
        let is_dir = match node with Directory _ -> true | _ -> false in
        Args.ok_out 0 (encode_stat ~size:(Vfs.file_size node) ~is_dir)
      | _ -> Args.ok_out 0 (encode_stat ~size:0 ~is_dir:false))

let do_lseek _k proc args =
  let fd = Args.int_arg args 0 in
  let offset = Args.int_arg args 1 in
  let whence = Args.int_arg args 2 in
  with_fd proc fd (fun entry ->
      let o = entry.fde_ofile in
      match o.kind with
      | K_file node ->
        let size = Vfs.file_size node in
        let base =
          if whence = Flags.seek_set then 0
          else if whence = Flags.seek_cur then o.offset
          else size
        in
        let pos = base + offset in
        if pos < 0 then Args.err Errno.EINVAL
        else begin
          o.offset <- pos;
          Args.ok pos
        end
      | _ -> Args.err Errno.ESPIPE)

let do_socket k proc _args =
  let ep =
    {
      ep_id = k.next_ofile;
      ep_rx = Bytequeue.create ();
      ep_peer = None;
      ep_port = 0;
      ep_peer_closed = false;
      ep_closed = false;
      ep_readable = Cond.create "sock-readable";
      ep_writable = Cond.create "sock-writable";
      ep_watchers = [];
    }
  in
  let o = new_ofile k (K_sock ep) in
  let fd = add_fd proc o in
  grant [ (fd, o) ] (Args.ok fd)

let do_bind k proc args =
  let fd = Args.int_arg args 0 in
  let port = Args.int_arg args 1 in
  with_fd proc fd (fun entry ->
      match entry.fde_ofile.kind with
      | K_sock ep ->
        if Hashtbl.mem k.listeners port then Args.err Errno.EADDRINUSE
        else begin
          ep.ep_port <- port;
          Args.ok 0
        end
      | _ -> Args.err Errno.ENOTSOCK)

let do_listen k proc args =
  let fd = Args.int_arg args 0 in
  with_fd proc fd (fun entry ->
      let o = entry.fde_ofile in
      match o.kind with
      | K_sock ep ->
        if ep.ep_port = 0 then Args.err Errno.EINVAL
        else if Hashtbl.mem k.listeners ep.ep_port then
          Args.err Errno.EADDRINUSE
        else begin
          let l =
            {
              l_id = k.next_ofile;
              l_port = ep.ep_port;
              l_backlog = Queue.create ();
              l_closed = false;
              l_cond = Cond.create "listener";
              l_watchers = [];
            }
          in
          Hashtbl.replace k.listeners ep.ep_port l;
          o.kind <- K_listen l;
          Args.ok 0
        end
      | K_listen _ -> Args.ok 0
      | _ -> Args.err Errno.ENOTSOCK)

let do_accept k proc args =
  let fd = Args.int_arg args 0 in
  with_fd proc fd (fun entry ->
      let o = entry.fde_ofile in
      match o.kind with
      | K_listen l -> (
        let ready () = (not (Queue.is_empty l.l_backlog)) || l.l_closed in
        match block_until ~nonblock:(nonblocking o) l.l_cond ready with
        | Error e -> Args.err e
        | Ok () ->
          if l.l_closed && Queue.is_empty l.l_backlog then
            Args.err Errno.EINVAL
          else begin
            let ep = Queue.pop l.l_backlog in
            let so = new_ofile k (K_sock ep) in
            let newfd = add_fd proc so in
            grant [ (newfd, so) ] (Args.ok newfd)
          end)
      | K_sock _ -> Args.err Errno.EINVAL
      | _ -> Args.err Errno.ENOTSOCK)

let do_connect k proc args =
  let fd = Args.int_arg args 0 in
  let port = Args.int_arg args 1 in
  with_fd proc fd (fun entry ->
      match entry.fde_ofile.kind with
      | K_sock ep -> (
        match Hashtbl.find_opt k.listeners port with
        | None -> Args.err Errno.ECONNREFUSED
        | Some l ->
          if l.l_closed then Args.err Errno.ECONNREFUSED
          else begin
            let server_ep =
              {
                ep_id = k.next_ofile;
                ep_rx = Bytequeue.create ();
                ep_peer = Some ep;
                ep_port = port;
                ep_peer_closed = false;
                ep_closed = false;
                ep_readable = Cond.create "sock-readable";
                ep_writable = Cond.create "sock-writable";
                ep_watchers = [];
              }
            in
            k.next_ofile <- k.next_ofile + 1;
            ep.ep_peer <- Some server_ep;
            if ep.ep_port = 0 then begin
              ep.ep_port <- k.next_ephemeral_port;
              k.next_ephemeral_port <- k.next_ephemeral_port + 1
            end;
            (* One round trip for the handshake. *)
            if k.link_latency > 0 then E.sleep (2 * k.link_latency);
            Queue.push server_ep l.l_backlog;
            Cond.broadcast l.l_cond;
            notify_epolls l.l_watchers;
            Args.ok 0
          end)
      | _ -> Args.err Errno.ENOTSOCK)

let do_shutdown _k proc args =
  let fd = Args.int_arg args 0 in
  let how = Args.int_arg args 1 in
  with_fd proc fd (fun entry ->
      match entry.fde_ofile.kind with
      | K_sock ep ->
        if how = Flags.shut_wr || how = Flags.shut_rdwr then begin
          ep.ep_closed <- true;
          match ep.ep_peer with
          | Some peer ->
            peer.ep_peer_closed <- true;
            wake_sock_readers peer;
            Args.ok 0
          | None -> Args.ok 0
        end
        else Args.ok 0
      | _ -> Args.err Errno.ENOTSOCK)

let do_pipe k proc _args =
  let p =
    {
      p_q = Bytequeue.create ~capacity:65536 ();
      p_readers = 1;
      p_writers = 1;
      p_readable = Cond.create "pipe-readable";
      p_writable = Cond.create "pipe-writable";
      p_watchers = [];
    }
  in
  let ro = new_ofile k (K_pipe_r p) in
  let wo = new_ofile k (K_pipe_w p) in
  let rfd = add_fd proc ro in
  let wfd = add_fd proc wo in
  let out = Bytes.create 8 in
  Bytes.set_int32_le out 0 (Int32.of_int rfd);
  Bytes.set_int32_le out 4 (Int32.of_int wfd);
  grant [ (rfd, ro); (wfd, wo) ] (Args.ok_out 0 out)

let do_dup _k proc args =
  let fd = Args.int_arg args 0 in
  with_fd proc fd (fun entry ->
      let o = entry.fde_ofile in
      o.refcount <- o.refcount + 1;
      let newfd = add_fd proc o in
      grant [ (newfd, o) ] (Args.ok newfd))

let do_dup2 k proc args =
  let fd = Args.int_arg args 0 in
  let newfd = Args.int_arg args 1 in
  with_fd proc fd (fun entry ->
      let o = entry.fde_ofile in
      if newfd = fd then Args.ok newfd
      else begin
        (match fd_entry proc newfd with
        | Some old ->
          Hashtbl.remove proc.fds newfd;
          release_ofile k old.fde_ofile
        | None -> ());
        o.refcount <- o.refcount + 1;
        Hashtbl.replace proc.fds newfd { fde_ofile = o; fde_cloexec = false };
        grant [ (newfd, o) ] (Args.ok newfd)
      end)

let do_epoll_create k proc _args =
  let e =
    {
      e_id = k.next_ofile;
      e_watches = Hashtbl.create 16;
      e_cond = Cond.create "epoll";
    }
  in
  let o = new_ofile k (K_epoll e) in
  let fd = add_fd proc o in
  grant [ (fd, o) ] (Args.ok fd)

let add_watcher e ofile =
  match ofile.kind with
  | K_sock ep -> ep.ep_watchers <- e :: ep.ep_watchers
  | K_pipe_r p | K_pipe_w p -> p.p_watchers <- e :: p.p_watchers
  | K_listen l -> l.l_watchers <- e :: l.l_watchers
  | K_file _ | K_epoll _ -> ()

let remove_watcher e ofile =
  let not_this x = x != e in
  match ofile.kind with
  | K_sock ep -> ep.ep_watchers <- List.filter not_this ep.ep_watchers
  | K_pipe_r p | K_pipe_w p -> p.p_watchers <- List.filter not_this p.p_watchers
  | K_listen l -> l.l_watchers <- List.filter not_this l.l_watchers
  | K_file _ | K_epoll _ -> ()

let do_epoll_ctl _k proc args =
  let epfd = Args.int_arg args 0 in
  let op = Args.int_arg args 1 in
  let fd = Args.int_arg args 2 in
  let events = Args.int_arg args 3 in
  with_fd proc epfd (fun epentry ->
      match epentry.fde_ofile.kind with
      | K_epoll e ->
        with_fd proc fd (fun entry ->
            let o = entry.fde_ofile in
            if op = Flags.epoll_ctl_add then begin
              if Hashtbl.mem e.e_watches fd then Args.err Errno.EEXIST
              else begin
                Hashtbl.replace e.e_watches fd
                  { w_fd = fd; w_ofile = o; w_events = events };
                add_watcher e o;
                Cond.broadcast e.e_cond;
                Args.ok 0
              end
            end
            else if op = Flags.epoll_ctl_del then begin
              (match Hashtbl.find_opt e.e_watches fd with
              | Some w -> remove_watcher e w.w_ofile
              | None -> ());
              Hashtbl.remove e.e_watches fd;
              Args.ok 0
            end
            else if op = Flags.epoll_ctl_mod then begin
              match Hashtbl.find_opt e.e_watches fd with
              | Some w ->
                w.w_events <- events;
                Cond.broadcast e.e_cond;
                Args.ok 0
              | None -> Args.err Errno.ENOENT
            end
            else Args.err Errno.EINVAL)
      | _ -> Args.err Errno.EINVAL)

(* Encode epoll_wait results as (fd:int32, events:int32) pairs. *)
let encode_epoll_events ready =
  let b = Bytes.create (8 * List.length ready) in
  List.iteri
    (fun i (fd, ev) ->
      Bytes.set_int32_le b (8 * i) (Int32.of_int fd);
      Bytes.set_int32_le b ((8 * i) + 4) (Int32.of_int ev))
    ready;
  b

let do_epoll_wait k proc args =
  let epfd = Args.int_arg args 0 in
  let maxevents = Args.int_arg args 1 in
  let timeout_ms = Args.int_arg args 2 in
  with_fd proc epfd (fun epentry ->
      match epentry.fde_ofile.kind with
      | K_epoll e ->
        let collect () =
          Hashtbl.fold
            (fun fd w acc ->
              if List.length acc >= maxevents then acc
              else begin
                let ev = ref 0 in
                if w.w_events land Flags.epollin <> 0 && ready_read w.w_ofile
                then ev := !ev lor Flags.epollin;
                if
                  w.w_events land Flags.epollout <> 0
                  && ready_write w.w_ofile
                then ev := !ev lor Flags.epollout;
                if !ev <> 0 then (fd, !ev) :: acc else acc
              end)
            e.e_watches []
          |> List.sort compare
        in
        let finish ready =
          charge_out k (8 * List.length ready);
          Args.ok_out (List.length ready) (encode_epoll_events ready)
        in
        let ready = collect () in
        if ready <> [] then finish ready
        else if timeout_ms = 0 then finish []
        else begin
          let deadline_cycles =
            if timeout_ms < 0 then None
            else
              Some
                (Int64.to_int
                   (Cost.us_to_cycles k.cost (float_of_int timeout_ms *. 1000.)))
          in
          (* The idle server's home: units park here between requests, so
             this wait dominates a lightly-loaded shard's task-cycles. *)
          let t0 = Prof.mark () in
          let finish ready =
            Prof.charge_wait Phase.kernel_wait t0;
            finish ready
          in
          let rec wait_loop remaining =
            let signalled =
              match remaining with
              | None ->
                Cond.wait e.e_cond;
                true
              | Some r ->
                if r <= 0 then false else Cond.wait_timeout e.e_cond r
            in
            if not signalled then finish []
            else begin
              let ready = collect () in
              if ready <> [] then finish ready
              else
                wait_loop remaining
                (* Remaining budget bookkeeping is approximated: a spurious
                   wake-up restarts the full timeout, which only ever makes
                   the simulated server {e more} patient. *)
            end
          in
          wait_loop deadline_cycles
        end
      | _ -> Args.err Errno.EINVAL)

(* A connected pair of UNIX-domain-style sockets: two endpoints peered
   with each other, as the coordinator uses for the zygote protocol and
   the per-variant data channels (§3.1, §3.3.2). *)
let do_socketpair k proc _args =
  let mk () =
    {
      ep_id = k.next_ofile;
      ep_rx = Bytequeue.create ();
      ep_peer = None;
      ep_port = 0;
      ep_peer_closed = false;
      ep_closed = false;
      ep_readable = Cond.create "pair-readable";
      ep_writable = Cond.create "pair-writable";
      ep_watchers = [];
    }
  in
  let a = mk () in
  let b = mk () in
  a.ep_peer <- Some b;
  b.ep_peer <- Some a;
  let oa = new_ofile k (K_sock a) in
  let ob = new_ofile k (K_sock b) in
  let fda = add_fd proc oa in
  let fdb = add_fd proc ob in
  let out = Bytes.create 8 in
  Bytes.set_int32_le out 0 (Int32.of_int fda);
  Bytes.set_int32_le out 4 (Int32.of_int fdb);
  grant [ (fda, oa); (fdb, ob) ] (Args.ok_out 0 out)

(* poll(2): the fd set travels as (fd, events) int32 pairs; revents come
   back the same way for ready descriptors. *)
let do_poll k proc args =
  let spec = Args.buf_in_arg args 0 in
  let timeout_ms = Args.int_arg args 1 in
  let nfds = Bytes.length spec / 8 in
  let entries =
    List.init nfds (fun i ->
        ( Int32.to_int (Bytes.get_int32_le spec (8 * i)),
          Int32.to_int (Bytes.get_int32_le spec ((8 * i) + 4)) ))
  in
  let lookup fd = Option.map (fun e -> e.fde_ofile) (fd_entry proc fd) in
  let collect () =
    List.filter_map
      (fun (fd, events) ->
        match lookup fd with
        | None -> Some (fd, 0x20 (* POLLNVAL *))
        | Some o ->
          let r = ref 0 in
          if events land Flags.epollin <> 0 && ready_read o then
            r := !r lor Flags.epollin;
          if events land Flags.epollout <> 0 && ready_write o then
            r := !r lor Flags.epollout;
          if !r <> 0 then Some (fd, !r) else None)
      entries
  in
  let finish ready =
    charge_out k (8 * List.length ready);
    Args.ok_out (List.length ready) (encode_epoll_events ready)
  in
  let ready = collect () in
  if ready <> [] || timeout_ms = 0 then finish ready
  else begin
    (* Park on every pollable object's condition variable in turn is not
       expressible with single-cond waits; poll re-checks on a coarse
       tick, bounded by the timeout. *)
    let tick = 50_000 (* ~14 us *) in
    let budget =
      if timeout_ms < 0 then max_int
      else
        Int64.to_int
          (Cost.us_to_cycles k.cost (float_of_int timeout_ms *. 1000.))
    in
    let rec wait_loop spent =
      let ready = collect () in
      if ready <> [] then finish ready
      else if spent >= budget then finish []
      else begin
        E.sleep (min tick (budget - spent));
        wait_loop (spent + tick)
      end
    in
    wait_loop 0
  end

(* select(2): read and write fd sets travel as int32 lists; the result
   re-encodes the ready descriptors the same way poll does. *)
let do_select k proc args =
  let readfds = Args.buf_in_arg args 0 in
  let writefds = Args.buf_in_arg args 1 in
  let timeout_ms = Args.int_arg args 2 in
  let decode_set b =
    List.init (Bytes.length b / 4) (fun i ->
        Int32.to_int (Bytes.get_int32_le b (4 * i)))
  in
  let spec =
    List.map (fun fd -> (fd, Flags.epollin)) (decode_set readfds)
    @ List.map (fun fd -> (fd, Flags.epollout)) (decode_set writefds)
  in
  let encoded = Bytes.create (8 * List.length spec) in
  List.iteri
    (fun i (fd, events) ->
      Bytes.set_int32_le encoded (8 * i) (Int32.of_int fd);
      Bytes.set_int32_le encoded ((8 * i) + 4) (Int32.of_int events))
    spec;
  do_poll k proc
    [| Args.Buf_in encoded; Args.Int timeout_ms;
       Args.Buf_out (8 * List.length spec) |]

let do_futex k _proc args =
  let uaddr = Args.int_arg args 0 in
  let op = Args.int_arg args 1 in
  let value = Args.int_arg args 2 in
  let slot () =
    match Hashtbl.find_opt k.futexes uaddr with
    | Some s -> s
    | None ->
      let s =
        {
          f_cond = Cond.create (Printf.sprintf "futex-%d" uaddr);
          f_waiters = 0;
          f_locked = false;
          f_acq = 0;
        }
      in
      Hashtbl.replace k.futexes uaddr s;
      s
  in
  if op = Flags.futex_wait then begin
    let s = slot () in
    let t0 = Prof.mark () in
    s.f_waiters <- s.f_waiters + 1;
    Cond.wait s.f_cond;
    s.f_waiters <- s.f_waiters - 1;
    Prof.charge_wait Phase.kernel_wait t0;
    Args.ok 0
  end
  else if op = Flags.futex_wake then begin
    let s = slot () in
    let n = min value s.f_waiters in
    for _ = 1 to n do
      Cond.signal s.f_cond
    done;
    Args.ok n
  end
  else if op = Flags.futex_lock then begin
    (* PI-style mutex acquire. The return value is the word's acquisition
       index — a 1-based global sequence per futex — so a recorded event
       stream carries the leader's lock-acquisition order explicitly, and
       followers replaying the stream observe (and can assert) the same
       order. Contended acquires queue FIFO on the condition variable. *)
    let s = slot () in
    if s.f_locked then begin
      let t0 = Prof.mark () in
      while s.f_locked do
        s.f_waiters <- s.f_waiters + 1;
        Cond.wait s.f_cond;
        s.f_waiters <- s.f_waiters - 1
      done;
      Prof.charge_wait Phase.kernel_wait t0
    end;
    s.f_locked <- true;
    s.f_acq <- s.f_acq + 1;
    Args.ok s.f_acq
  end
  else if op = Flags.futex_unlock then begin
    let s = slot () in
    if not s.f_locked then Args.err Errno.EPERM
    else begin
      s.f_locked <- false;
      if s.f_waiters > 0 then Cond.signal s.f_cond;
      Args.ok 0
    end
  end
  else Args.err Errno.ENOSYS

let do_wait4 _k proc _args =
  let find_exited () =
    List.find_opt (fun c -> c.exited) proc.children
  in
  if proc.children = [] then Args.err Errno.EINVAL
  else begin
    let rec loop () =
      match find_exited () with
      | Some child ->
        proc.children <- List.filter (fun c -> c != child) proc.children;
        let status = Bytes.create 4 in
        Bytes.set_int32_le status 0 (Int32.of_int child.exit_code);
        Args.ok_out child.pid status
      | None ->
        let t0 = Prof.mark () in
        Cond.wait proc.exit_cond;
        Prof.charge_wait Phase.kernel_wait t0;
        loop ()
    in
    loop ()
  end

let do_getdents k proc args =
  let fd = Args.int_arg args 0 in
  ignore k;
  with_fd proc fd (fun entry ->
      match entry.fde_ofile.kind with
      | K_file (Directory d) ->
        if entry.fde_ofile.offset > 0 then Args.ok_out 0 Bytes.empty
        else begin
          let names = Hashtbl.fold (fun name _ acc -> name :: acc) d [] in
          let names = List.sort compare names in
          let payload = String.concat "\000" names in
          entry.fde_ofile.offset <- 1;
          Args.ok_out (List.length names) (Bytes.of_string payload)
        end
      | K_file _ -> Args.err Errno.ENOTDIR
      | _ -> Args.err Errno.ENOTDIR)

let do_fcntl k proc args =
  let fd = Args.int_arg args 0 in
  let cmd = Args.int_arg args 1 in
  let arg = if Array.length args > 2 then Args.int_arg args 2 else 0 in
  with_fd proc fd (fun entry ->
      let o = entry.fde_ofile in
      if cmd = Flags.f_getfl then Args.ok o.flags
      else if cmd = Flags.f_setfl then begin
        o.flags <- arg;
        Args.ok 0
      end
      else if cmd = Flags.f_getfd then
        Args.ok (if entry.fde_cloexec then Flags.fd_cloexec else 0)
      else if cmd = Flags.f_setfd then begin
        entry.fde_cloexec <- arg land Flags.fd_cloexec <> 0;
        Args.ok 0
      end
      else if cmd = Flags.f_dupfd then begin
        o.refcount <- o.refcount + 1;
        let newfd = add_fd proc o in
        ignore k;
        grant [ (newfd, o) ] (Args.ok newfd)
      end
      else Args.err Errno.EINVAL)

let do_kill k _proc args =
  let pid = Args.int_arg args 0 in
  let signo = Args.int_arg args 1 in
  match Hashtbl.find_opt k.procs pid with
  | None -> Args.err Errno.ENOENT
  | Some target -> (
    match Hashtbl.find_opt target.sighandlers signo with
    | Some Sig_ignore -> Args.ok 0
    | Some (Sig_handler _) ->
      (* Caught signals become pending and are delivered at the target's
         next syscall boundary — the only point a syscall-level monitor
         can virtualise them (§2.2). *)
      target.pending_signals <- target.pending_signals @ [ signo ];
      Args.ok 0
    | Some Sig_default | None ->
      if signo = Flags.sigchld then Args.ok 0
      else begin
        kill_proc k target signo;
        Args.ok 0
      end)

let encode_time_ns ns =
  let b = Bytes.create 16 in
  put_le64 b 0 (Int64.div ns 1_000_000_000L);
  put_le64 b 8 (Int64.rem ns 1_000_000_000L);
  b

let set_signal_handler proc signo f =
  Hashtbl.replace proc.sighandlers signo (Sig_handler f)

(* Queue a caught signal directly on a process — the fault injector's
   signal source. Unlike [do_kill] there is no default-disposition kill:
   a signal without a handler is simply dropped, so an injection can
   never terminate a process out of band. *)
let post_signal proc signo =
  match Hashtbl.find_opt proc.sighandlers signo with
  | Some (Sig_handler _) ->
    proc.pending_signals <- proc.pending_signals @ [ signo ]
  | _ -> ()

let take_pending_signal proc =
  match proc.pending_signals with
  | [] -> None
  | signo :: rest ->
    proc.pending_signals <- rest;
    Some signo

let handler_for proc signo =
  match Hashtbl.find_opt proc.sighandlers signo with
  | Some (Sig_handler f) -> Some f
  | _ -> None

(* Deliver any pending caught signals before the call proper — native
   execution's equivalent of the monitor's boundary delivery. *)
let rec deliver_pending proc =
  match take_pending_signal proc with
  | None -> ()
  | Some signo ->
    (match handler_for proc signo with Some f -> f signo | None -> ());
    deliver_pending proc

let exec k proc sysno (args : Args.t) : Args.result =
  if proc.exited then Args.err Errno.EIO
  else begin
    deliver_pending proc;
    (* Charge the flat native cost up front; data-dependent copy costs are
       charged where the byte counts are known. *)
    let payload = Args.payload_size args in
    E.consume (Cost.native k.cost sysno payload);
    match (sysno : Sysno.t) with
    | Read | Pread64 | Readv | Recvfrom | Recvmsg -> do_read k proc args
    | Write | Pwrite64 | Writev | Sendto | Sendmsg -> do_write k proc args
    | Open | Openat -> do_open k proc args
    | Close -> do_close k proc args
    | Stat | Lstat | Access -> do_stat k proc args
    | Fstat -> do_fstat k proc args
    | Lseek -> do_lseek k proc args
    | Socket -> do_socket k proc args
    | Bind -> do_bind k proc args
    | Listen -> do_listen k proc args
    | Accept | Accept4 -> do_accept k proc args
    | Connect -> do_connect k proc args
    | Shutdown -> do_shutdown k proc args
    | Pipe -> do_pipe k proc args
    | Socketpair -> do_socketpair k proc args
    | Poll -> do_poll k proc args
    | Select -> do_select k proc args
    | Dup -> do_dup k proc args
    | Dup2 -> do_dup2 k proc args
    | Epoll_create -> do_epoll_create k proc args
    | Epoll_ctl -> do_epoll_ctl k proc args
    | Epoll_wait -> do_epoll_wait k proc args
    | Futex -> do_futex k proc args
    | Wait4 -> do_wait4 k proc args
    | Getdents -> do_getdents k proc args
    | Fcntl -> do_fcntl k proc args
    | Kill -> do_kill k proc args
    | Unlink -> (
      match Vfs.unlink k ~cwd:proc.cwd (Args.str_arg args 0) with
      | Ok () -> Args.ok 0
      | Error e -> Args.err e)
    | Mkdir -> (
      match Vfs.mkdir k ~cwd:proc.cwd (Args.str_arg args 0) with
      | Ok () -> Args.ok 0
      | Error e -> Args.err e)
    | Rmdir -> (
      match Vfs.rmdir k ~cwd:proc.cwd (Args.str_arg args 0) with
      | Ok () -> Args.ok 0
      | Error e -> Args.err e)
    | Rename -> (
      match
        Vfs.rename k ~cwd:proc.cwd (Args.str_arg args 0) (Args.str_arg args 1)
      with
      | Ok () -> Args.ok 0
      | Error e -> Args.err e)
    | Chdir -> (
      let path = Args.str_arg args 0 in
      match Vfs.lookup k ~cwd:proc.cwd path with
      | Ok (Directory _) ->
        proc.cwd <- "/" ^ String.concat "/" (Vfs.normalize ~cwd:proc.cwd path);
        Args.ok 0
      | Ok _ -> Args.err Errno.ENOTDIR
      | Error e -> Args.err e)
    | Getcwd -> Args.ok_out (String.length proc.cwd) (Bytes.of_string proc.cwd)
    | Readlink -> Args.err Errno.EINVAL
    | Chmod | Ftruncate | Flock | Fsync | Fdatasync | Madvise | Mprotect
    | Munmap | Setsockopt | Ioctl | Sched_yield | Setuid | Setgid | Setsid
    | Rt_sigprocmask | Rt_sigreturn | Sendfile ->
      Args.ok 0
    | Rt_sigaction -> Args.ok 0
    | Getsockopt -> Args.ok_out 0 (Bytes.make 4 '\000')
    | Getsockname | Getpeername ->
      let b = Bytes.create 4 in
      Bytes.set_int32_le b 0 0l;
      Args.ok_out 0 b
    | Umask ->
      let old = proc.umask in
      proc.umask <- Args.int_arg args 0;
      Args.ok old
    | Getpid -> Args.ok proc.pid
    | Getppid ->
      Args.ok (match proc.parent with Some p -> p.pid | None -> 0)
    | Getuid -> Args.ok proc.uid
    | Geteuid -> Args.ok proc.uid
    | Getgid -> Args.ok proc.gid
    | Getegid -> Args.ok proc.gid
    | Uname ->
      Args.ok_out 0 (Bytes.of_string "Linux varan-sim 3.13.0 x86_64")
    | Getrlimit | Getrusage | Times -> Args.ok_out 0 (Bytes.make 16 '\000')
    | Getrandom ->
      let n = Args.buf_out_arg args 0 in
      charge_out k n;
      Args.ok_out n (random_bytes k n)
    | Time -> Args.ok (Int64.to_int (Int64.div (task_now_ns k) 1_000_000_000L))
    | Gettimeofday | Clock_gettime ->
      Args.ok_out 0 (encode_time_ns (task_now_ns k))
    | Getcpu -> Args.ok_out 0 (Bytes.make 8 '\000')
    | Nanosleep ->
      let ns = Args.int_arg args 0 in
      let cycles =
        Int64.to_int (Cost.us_to_cycles k.cost (float_of_int ns /. 1000.0))
      in
      E.sleep cycles;
      Args.ok 0
    | Brk ->
      let addr = Args.int_arg args 0 in
      if addr > 0 then proc.brk_addr <- addr;
      Args.ok proc.brk_addr
    | Mmap ->
      let len = Args.int_arg args 1 in
      let addr = proc.mmap_next in
      let aligned = (len + 4095) land lnot 4095 in
      proc.mmap_next <- proc.mmap_next + max 4096 aligned;
      Args.ok addr
    | Exit | Exit_group ->
      let code = Args.int_arg args 0 in
      proc.exited <- true;
      proc.exit_code <- code;
      Hashtbl.iter (fun _ e -> release_ofile k e.fde_ofile) proc.fds;
      Hashtbl.reset proc.fds;
      (match proc.parent with
      | Some parent -> Cond.broadcast parent.exit_cond
      | None -> ());
      let my_task = E.self () in
      List.iter
        (fun tid -> if tid <> my_task then E.kill k.eng tid)
        proc.tasks;
      raise E.Killed
    | Clone | Fork | Execve | Pause -> Args.err Errno.ENOSYS
  end

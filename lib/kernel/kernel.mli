(** The simulated Linux kernel.

    Programs run as {!Varan_sim.Engine} tasks and enter the kernel through
    {!exec}, which implements the semantics of each {!Varan_syscall.Sysno}
    call over the in-memory object graph ({!Types}): VFS files and devices,
    pipes, TCP-style sockets, epoll, futexes, processes and signals.
    Virtual time advances by the cost model's native syscall costs plus
    per-byte copy charges, and blocking calls park the calling task on the
    appropriate condition variable.

    The NVX layer builds on three extra entry points: {!fork_proc} (address
    space duplication for followers and zygote-spawned children),
    {!install_grant} (duplicating a leader's descriptor into a follower's
    table over the data channel, §3.3.2 of the paper) and the [fd_object]
    field of results, which carries descriptor grants. *)

open Types

val create :
  ?cost:Varan_cycles.Cost.t ->
  ?link_latency:int ->
  ?seed:int ->
  Varan_sim.Engine.t ->
  t
(** Fresh kernel with [/dev/null], [/dev/zero], [/dev/urandom] and [/tmp]
    pre-created. [link_latency] is the one-way network delay in cycles
    applied to socket payload delivery (default 0). *)

val engine : t -> Varan_sim.Engine.t
val cost : t -> Varan_cycles.Cost.t

val new_proc : t -> ?parent:proc -> string -> proc
(** Allocate a process (empty descriptor table, cwd ["/"]). *)

val fork_proc : t -> proc -> string -> proc
(** Duplicate the descriptor table into a child process, sharing open file
    descriptions (refcounts bumped), as [fork] does. *)

val register_task : t -> proc -> Varan_sim.Engine.task_id -> unit
(** Associate an engine task with a process so that fatal signals and
    [exit_group] can terminate it. *)

val kill_proc : t -> proc -> int -> unit
(** Deliver a terminating signal: marks the process exited with status
    [128+signo] and kills its tasks. *)

val exec : t -> proc -> Varan_syscall.Sysno.t -> Varan_syscall.Args.t ->
  Varan_syscall.Args.result
(** Execute one system call on behalf of [proc], charging native cycle
    costs and blocking as needed. Unknown or unsupported requests return
    [-ENOSYS], mirroring the prototype's on-demand handler policy. *)

(** {1 Descriptor grants (NVX data channel)} *)

type fd_grant = { granted : (int * ofile) list }
(** Descriptors created by one [New_fd]-class call: the fd numbers chosen
    in the executing process paired with the kernel objects. *)

val grant_of_result : Varan_syscall.Args.result -> fd_grant option
(** Decode the [fd_object] field. *)

val install_grant : t -> proc -> fd_grant -> unit
(** Install every granted descriptor into [proc]'s table {e at the same fd
    numbers}, bumping refcounts — the simulation's equivalent of receiving
    SCM_RIGHTS descriptors and [dup2]ing them into place. *)

(** {1 Descriptor-table snapshots (checkpoint/restore)} *)

type fd_snapshot
(** A process's descriptor table frozen at a syscall boundary: fd
    numbers, cloexec flags, and identity references to the shared
    open-file descriptions (offsets and flags stay live, exactly as
    SCM_RIGHTS-passed descriptors would). *)

val snapshot_fds : proc -> fd_snapshot

val restore_fds : t -> proc -> fd_snapshot -> unit
(** Install the snapshot into [proc] at the same fd numbers, bumping
    refcounts like {!install_grant} — the table a full grant-by-grant
    tape replay would have produced, in one step. *)

val fd_snapshot_count : fd_snapshot -> int

(** {1 Introspection} *)

val now_ns : t -> int64
(** Simulated wall clock in nanoseconds. *)

val fd_count : proc -> int
val proc_alive : proc -> bool

val set_nonblock : proc -> int -> bool -> (unit, Varan_syscall.Errno.t) result
(** Convenience used by tests: toggle O_NONBLOCK directly. *)

(** {1 Signals}

    Caught signals (those with an installed handler) are queued and
    delivered at the target's next syscall boundary — both the natural
    semantics for a syscall-level monitor and close to how the prototype
    delivers them through its interception points. *)

val set_signal_handler : proc -> int -> (int -> unit) -> unit
(** Install a handler (the in-simulation analogue of [rt_sigaction] with
    a handler function). *)

val take_pending_signal : proc -> int option
(** Pop the next pending caught signal, if any — used by the NVX monitor
    to stream signal events before the interrupted call. *)

val post_signal : proc -> int -> unit
(** Queue a caught signal on the process (delivered at its next syscall
    boundary) if a handler is installed; dropped otherwise. The fault
    injector's signal source — never terminates the process. *)

val handler_for : proc -> int -> (int -> unit) option

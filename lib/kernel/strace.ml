module Sysno = Varan_syscall.Sysno
module Args = Varan_syscall.Args

type t = {
  mutable entries : string list; (* reversed *)
  mutable kept : int;
  mutable total : int;
  limit : int;
}

(* Escaped prefix of an out-buffer payload, mirroring strace's string
   rendering, so traces show what came back and not just how many bytes. *)
let preview_bytes b =
  let buf = Buffer.create 24 in
  let n = Bytes.length b in
  let shown = min n 16 in
  Buffer.add_char buf '"';
  for i = 0 to shown - 1 do
    let c = Bytes.get b i in
    if c >= ' ' && c <= '~' && c <> '"' && c <> '\\' then Buffer.add_char buf c
    else Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c))
  done;
  if n > shown then Buffer.add_string buf "..";
  Buffer.add_char buf '"';
  Buffer.contents buf

let format_call sysno args result =
  let base =
    Format.asprintf "%s%a = %a" (Sysno.name sysno) Args.pp args Args.pp_result
      result
  in
  match result.Args.out with
  | Some b when Bytes.length b > 0 -> base ^ " " ^ preview_bytes b
  | _ -> base

let attach ?(limit = 10_000) (api : Api.t) =
  let t = { entries = []; kept = 0; total = 0; limit } in
  let sys sysno args =
    let result = api.Api.sys sysno args in
    t.total <- t.total + 1;
    if t.kept < t.limit then begin
      t.entries <- format_call sysno args result :: t.entries;
      t.kept <- t.kept + 1
    end;
    result
  in
  let wrapped = Api.with_sys api.Api.proc sys in
  wrapped.Api.compute_scale_c1000 <- api.Api.compute_scale_c1000;
  (wrapped, t)

let lines t = List.rev t.entries
let calls t = t.total

let pp ppf t =
  List.iter (fun l -> Format.fprintf ppf "%s@." l) (lines t)

let clear t =
  t.entries <- [];
  t.kept <- 0;
  t.total <- 0

(* The simulated kernel's object graph. Everything lives in one recursive
   knot because file descriptions, epoll instances and waitable objects
   reference each other, just as in a real kernel. *)

module Cond = Varan_sim.Engine.Cond

type node =
  | Regular of regular
  | Directory of (string, node) Hashtbl.t
  | Dev_null
  | Dev_zero
  | Dev_urandom

and regular = { mutable content : Bytes.t }

type epoll = {
  e_id : int;
  e_watches : (int, watch) Hashtbl.t; (* keyed by fd number *)
  e_cond : Cond.cond;
}

and watch = { w_fd : int; w_ofile : ofile; mutable w_events : int }

and pipe = {
  p_q : Bytequeue.t;
  mutable p_readers : int;
  mutable p_writers : int;
  p_readable : Cond.cond;
  p_writable : Cond.cond;
  mutable p_watchers : epoll list;
}

and endpoint = {
  ep_id : int;
  ep_rx : Bytequeue.t;
  mutable ep_peer : endpoint option;
  mutable ep_port : int; (* bound local port, 0 if unbound *)
  mutable ep_peer_closed : bool; (* no more data will arrive *)
  mutable ep_closed : bool;
  ep_readable : Cond.cond;
  ep_writable : Cond.cond;
  mutable ep_watchers : epoll list;
}

and listener = {
  l_id : int;
  l_port : int;
  l_backlog : endpoint Queue.t;
  mutable l_closed : bool;
  l_cond : Cond.cond;
  mutable l_watchers : epoll list;
}

and ofile_kind =
  | K_file of node
  | K_pipe_r of pipe
  | K_pipe_w of pipe
  | K_sock of endpoint
  | K_listen of listener
  | K_epoll of epoll

and ofile = {
  of_id : int;
  mutable kind : ofile_kind;
  mutable offset : int;
  mutable flags : int; (* O_* status flags, notably O_NONBLOCK *)
  mutable refcount : int;
}

type fd_entry = { mutable fde_ofile : ofile; mutable fde_cloexec : bool }

type sig_disposition = Sig_default | Sig_ignore | Sig_handler of (int -> unit)

type proc = {
  pid : int;
  pname : string;
  fds : (int, fd_entry) Hashtbl.t;
  mutable cwd : string;
  mutable brk_addr : int;
  mutable mmap_next : int;
  sighandlers : (int, sig_disposition) Hashtbl.t;
  mutable exited : bool;
  mutable exit_code : int;
  mutable umask : int;
  mutable parent : proc option;
  mutable children : proc list;
  exit_cond : Cond.cond; (* signalled when a child exits *)
  mutable tasks : Varan_sim.Engine.task_id list;
  mutable pending_signals : int list; (* delivered at syscall boundaries *)
  uid : int;
  gid : int;
}

type futex_slot = {
  f_cond : Cond.cond;
  mutable f_waiters : int;
  (* futex_lock/futex_unlock (PI-style mutex ops): whether the word is
     held, and a monotonically increasing acquisition counter — the
     lock-acquisition order the NVX leader streams for followers to
     replay. *)
  mutable f_locked : bool;
  mutable f_acq : int;
}

type t = {
  eng : Varan_sim.Engine.t;
  cost : Varan_cycles.Cost.t;
  root : node; (* always a Directory *)
  listeners : (int, listener) Hashtbl.t; (* port -> listener *)
  futexes : (int, futex_slot) Hashtbl.t; (* uaddr -> slot *)
  procs : (int, proc) Hashtbl.t;
  mutable next_pid : int;
  mutable next_ofile : int;
  mutable next_ephemeral_port : int;
  rng : Varan_util.Prng.t;
  link_latency : int; (* cycles for one network direction *)
  epoch_seconds : int; (* wall-clock base for time(2) *)
}

module E = Varan_sim.Engine
module Ring = Varan_ringbuf.Ring
module Event = Varan_ringbuf.Event
module Prof = Varan_sim.Prof
module Phase = Varan_obs.Profile
module Trace = Varan_obs.Trace

type config = {
  batch_max : int;
  window : int;
  rto : int;
  rto_max : int;
  header_bytes : int;
  serialize_cost : int;
  publish_cost : int;
}

let default_config =
  {
    batch_max = 16;
    window = 4;
    rto = 20_000;
    rto_max = 320_000;
    header_bytes = 32;
    serialize_cost = 80;
    publish_cost = 120;
  }

type frame =
  | Data of {
      epoch : int;
      bseq : int;  (* per-epoch batch sequence, from 0 *)
      first_seq : int;  (* global stream seq of events.(0) *)
      events : Event.t array;
      checksum : int;
    }
  | Ack of { epoch : int; upto : int }  (* all bseq <= upto received *)

type pending = {
  p_epoch : int;
  p_bseq : int;
  p_first_seq : int;
  p_events : Event.t array;
  p_checksum : int;
  p_bytes : int;
  mutable p_acked : bool;
}

type t = {
  cfg : config;
  link : frame Link.t;
  local_node : Node.t;
  remote_node : Node.t;
  local : Event.t Ring.t;
  mutable mirror : Event.t Ring.t;
  mutable local_c : Event.t Ring.consumer option;
  materialize : Event.t -> Event.t;
  discard : Event.t -> unit;
  must_replicate : Event.t -> bool;
  (* sender *)
  mutable epoch : int;
  mutable next_bseq : int;
  mutable send_seq : int;  (* global seq of the next event to drain *)
  pending : (int, pending) Hashtbl.t;  (* bseq -> unacked batch *)
  mutable in_flight : int;
  mutable stall_anchor : int64;  (* last window progress *)
  window_cond : E.Cond.cond;
  mutable detached : bool;
  mutable heal_fired : bool;
  mutable on_heal : unit -> unit;
  (* receiver *)
  mutable r_expected : int;  (* next bseq expected in the current epoch *)
  mutable r_next_seq : int;  (* next global seq to republish *)
  (* stats *)
  mutable s_batches : int;
  mutable s_events : int;
  mutable s_retransmits : int;
  mutable s_acks : int;
  mutable s_dup_acks : int;
  mutable s_checksum_failures : int;
  mutable s_wire_bytes : int;
  mutable s_saved : int;
  mutable s_detaches : int;
  mutable s_heals : int;
}

(* A cheap structural checksum over a batch: enough to let the receiver
   verify framing survived the link, deterministic across runs. *)
let checksum_events (evs : Event.t array) =
  let h = ref 0x9E3779B9 in
  let mix v = h := (!h lxor v) * 0x01000193 land 0x3FFFFFFF in
  Array.iter
    (fun (e : Event.t) ->
      mix
        (match e.Event.kind with
        | Event.Ev_syscall -> 1
        | Event.Ev_signal -> 2
        | Event.Ev_fork -> 3
        | Event.Ev_exit -> 4);
      mix e.Event.sysno;
      mix e.Event.tid;
      mix e.Event.ret;
      mix e.Event.clock;
      Array.iter mix e.Event.args;
      match e.Event.inline_out with
      | Some b -> mix (Hashtbl.hash b)
      | None -> ())
    evs;
  !h

let ack_bytes = 16

(* Wire size of a batch under selective replication: every event ships
   its 64-byte header; payload bytes ride along only when the remote
   variant cannot reproduce them locally. *)
let frame_bytes t (evs : Event.t array) =
  let saved = ref 0 in
  let bytes =
    Array.fold_left
      (fun acc (e : Event.t) ->
        let pl =
          match e.Event.inline_out with Some b -> Bytes.length b | None -> 0
        in
        if pl = 0 || t.must_replicate e then acc + Event.event_bytes + pl
        else begin
          saved := !saved + pl;
          acc + Event.event_bytes
        end)
      t.cfg.header_bytes evs
  in
  (bytes, !saved)

let send_data t (p : pending) =
  t.s_wire_bytes <- t.s_wire_bytes + p.p_bytes;
  Link.send t.link ~dir:0 ~bytes:p.p_bytes
    (Data
       {
         epoch = p.p_epoch;
         bseq = p.p_bseq;
         first_seq = p.p_first_seq;
         events = p.p_events;
         checksum = p.p_checksum;
       })

let rec retransmit_timer t (p : pending) rto =
  E.sleep rto;
  if (not p.p_acked) && p.p_epoch = t.epoch then begin
    t.s_retransmits <- t.s_retransmits + 1;
    send_data t p;
    retransmit_timer t p (min (rto * 2) t.cfg.rto_max)
  end

let ship_batch t evs =
  let reg = Prof.region_enter () in
  let evs = Array.of_list (List.map t.materialize evs) in
  let n = Array.length evs in
  E.consume (t.cfg.serialize_cost * n);
  let bytes, saved = frame_bytes t evs in
  t.s_saved <- t.s_saved + saved;
  let p =
    {
      p_epoch = t.epoch;
      p_bseq = t.next_bseq;
      p_first_seq = t.send_seq;
      p_events = evs;
      p_checksum = checksum_events evs;
      p_bytes = bytes;
      p_acked = false;
    }
  in
  t.next_bseq <- t.next_bseq + 1;
  t.send_seq <- t.send_seq + n;
  Hashtbl.replace t.pending p.p_bseq p;
  if t.in_flight = 0 then t.stall_anchor <- E.now_cycles ();
  t.in_flight <- t.in_flight + 1;
  t.s_batches <- t.s_batches + 1;
  t.s_events <- t.s_events + n;
  send_data t p;
  Prof.region_exit Phase.bridge_wire reg;
  ignore
    (Node.spawn_here t.local_node ~name:"bridge-rto" (fun () ->
         retransmit_timer t p t.cfg.rto))

(* The sender: one task per epoch. It exits when detached or superseded
   by a newer epoch; [detach] pokes the ring and the window cond so a
   parked sender re-checks and leaves before touching its dead handle. *)
let rec sender_loop t my_epoch c =
  if t.detached || t.epoch <> my_epoch then ()
  else if t.in_flight >= t.cfg.window then begin
    (* Window backpressure is wire time: the sender is throttled by
       unacked batches in flight, not by a lack of local events. *)
    let t0 = Prof.mark () in
    E.Cond.wait t.window_cond;
    Prof.charge_wait Phase.bridge_wire t0;
    sender_loop t my_epoch c
  end
  else
    match Ring.try_consume_batch_h c ~max:t.cfg.batch_max with
    | [] ->
      Ring.wait_activity t.local;
      sender_loop t my_epoch c
    | evs ->
      ship_batch t evs;
      sender_loop t my_epoch c

let spawn_sender t =
  match t.local_c with
  | None -> ()
  | Some c ->
    let ep = t.epoch in
    ignore
      (Node.spawn t.local_node ~name:"bridge-send" (fun () ->
           sender_loop t ep c))

let send_ack t ~epoch ~upto =
  t.s_wire_bytes <- t.s_wire_bytes + ack_bytes;
  Link.send t.link ~dir:1 ~bytes:ack_bytes (Ack { epoch; upto })

(* The receiver never blocks the ack path on mirror backpressure: it
   acks on receipt, then republishes. A slow remote follower therefore
   stalls the receiver task (and eventually the window), but an
   individually-stuck follower is the per-follower watchdog's problem —
   it fires before the link-degradation threshold does. *)
let receive_data t ~epoch ~bseq ~first_seq ~events ~checksum =
  if checksum_events events <> checksum then
    t.s_checksum_failures <- t.s_checksum_failures + 1
  else if epoch <> t.epoch then
    (* a dead epoch's retransmit arriving after a reattach: its events
       were already recovered from the tape; never let them near the new
       mirror *)
    t.s_dup_acks <- t.s_dup_acks + 1
  else if bseq <> t.r_expected then
    (* duplicate or out-of-order: drop and restate the cumulative ack *)
    send_ack t ~epoch ~upto:(t.r_expected - 1)
  else begin
    assert (first_seq = t.r_next_seq);
    t.r_expected <- bseq + 1;
    t.r_next_seq <- first_seq + Array.length events;
    send_ack t ~epoch ~upto:bseq;
    (* Pin the mirror this batch was accepted into: the per-event publish
       cost yields, and a reattach racing that loop would otherwise leak
       the batch's tail into the NEXT epoch's mirror — a phantom event
       above the true stream head. *)
    let mirror = t.mirror in
    let reg = Prof.region_enter () in
    Array.iter
      (fun e ->
        E.consume t.cfg.publish_cost;
        Ring.publish mirror e)
      events;
    Prof.region_exit Phase.bridge_wire reg
  end

let rec recv_loop t =
  (match Link.recv t.link ~dir:0 with
  | Data { epoch; bseq; first_seq; events; checksum } ->
    receive_data t ~epoch ~bseq ~first_seq ~events ~checksum
  | Ack _ -> ());
  recv_loop t

let window_progress t ~epoch ~upto =
  if epoch <> t.epoch then t.s_dup_acks <- t.s_dup_acks + 1
  else begin
    let advanced = ref false in
    Hashtbl.iter
      (fun _ p -> if (not p.p_acked) && p.p_bseq <= upto then advanced := true)
      t.pending;
    if !advanced then begin
      Hashtbl.filter_map_inplace
        (fun _ p ->
          if p.p_bseq <= upto then begin
            p.p_acked <- true;
            t.in_flight <- t.in_flight - 1;
            None
          end
          else Some p)
        t.pending;
      t.stall_anchor <- E.now_cycles ();
      E.Cond.broadcast_if_waiting t.window_cond
    end
    else t.s_dup_acks <- t.s_dup_acks + 1
  end

let rec ack_loop t =
  (match Link.recv t.link ~dir:1 with
  | Ack { epoch; upto } ->
    t.s_acks <- t.s_acks + 1;
    if t.detached then begin
      if not t.heal_fired then begin
        t.heal_fired <- true;
        t.on_heal ()
      end
    end
    else window_progress t ~epoch ~upto
  | Data _ -> ());
  ack_loop t

let create ~local_node ~remote_node ~local ~mirror ?(cfg = default_config)
    ?latency ?cycles_per_kb ?faults ~materialize ~discard ~must_replicate () =
  let link =
    Link.create ~a:local_node ~b:remote_node ?latency ?cycles_per_kb ?faults
      "bridge"
  in
  let t =
    {
      cfg;
      link;
      local_node;
      remote_node;
      local;
      mirror;
      local_c = Some (Ring.subscribe local);
      materialize;
      discard;
      must_replicate;
      epoch = 0;
      next_bseq = 0;
      send_seq = 0;
      pending = Hashtbl.create 16;
      in_flight = 0;
      stall_anchor = 0L;
      window_cond = E.Cond.create "bridge-window";
      detached = false;
      heal_fired = false;
      on_heal = ignore;
      r_expected = 0;
      r_next_seq = 0;
      s_batches = 0;
      s_events = 0;
      s_retransmits = 0;
      s_acks = 0;
      s_dup_acks = 0;
      s_checksum_failures = 0;
      s_wire_bytes = 0;
      s_saved = 0;
      s_detaches = 0;
      s_heals = 0;
    }
  in
  spawn_sender t;
  ignore (Node.spawn remote_node ~name:"bridge-recv" (fun () -> recv_loop t));
  ignore (Node.spawn local_node ~name:"bridge-ack" (fun () -> ack_loop t));
  t

let set_on_heal t f = t.on_heal <- f

let detach t =
  if not t.detached then begin
    t.detached <- true;
    t.heal_fired <- false;
    t.s_detaches <- t.s_detaches + 1;
    if !Trace.enabled then
      Trace.instant ~ts:(E.now_cycles ()) ~tid:0 "bridge.detach";
    (match t.local_c with
    | Some c ->
      List.iter t.discard (Ring.unread_h c);
      Ring.unsubscribe c;
      t.local_c <- None
    | None -> ());
    (* wake a parked sender so it observes [detached] and exits *)
    Ring.poke t.local;
    E.Cond.broadcast_if_waiting t.window_cond
  end

(* Stop probing for good: bump the epoch so every retransmit timer dies
   at its next wakeup, without reattaching. A degraded session (or one
   whose remote followers are all dead) has no rejoin to probe for, and
   an immortal probe would keep the engine from ever going quiescent. *)
let abandon t =
  if not t.detached then detach t;
  t.epoch <- t.epoch + 1;
  Hashtbl.reset t.pending;
  t.in_flight <- 0

let reattach t ~mirror ~remote_base =
  if !Trace.enabled then
    Trace.instant ~ts:(E.now_cycles ()) ~tid:0
      ~args:(Printf.sprintf "\"epoch\":%d" (t.epoch + 1))
      "bridge.reattach";
  t.epoch <- t.epoch + 1;
  t.mirror <- mirror;
  t.next_bseq <- 0;
  t.send_seq <- remote_base;
  t.r_expected <- 0;
  t.r_next_seq <- remote_base;
  Hashtbl.reset t.pending;
  t.in_flight <- 0;
  t.detached <- false;
  t.heal_fired <- false;
  t.s_heals <- t.s_heals + 1;
  t.local_c <- Some (Ring.subscribe t.local);
  spawn_sender t

let detached t = t.detached

let stalled_since t = if t.in_flight = 0 then None else Some t.stall_anchor

let link_partitioned t = Link.partitioned t.link

type stats = {
  batches : int;
  events_forwarded : int;
  retransmits : int;
  acks : int;
  dup_acks : int;
  checksum_failures : int;
  bytes_on_wire : int;
  bytes_saved : int;
  detaches : int;
  heals : int;
}

let stats t =
  {
    batches = t.s_batches;
    events_forwarded = t.s_events;
    retransmits = t.s_retransmits;
    acks = t.s_acks;
    dup_acks = t.s_dup_acks;
    checksum_failures = t.s_checksum_failures;
    bytes_on_wire = t.s_wire_bytes;
    bytes_saved = t.s_saved;
    detaches = t.s_detaches;
    heals = t.s_heals;
  }

let link_stats t = Link.stats t.link

let pp_stats ppf s =
  Format.fprintf ppf
    "batches=%d events=%d retrans=%d acks=%d dup=%d wire=%dB saved=%dB \
     detach=%d heal=%d"
    s.batches s.events_forwarded s.retransmits s.acks s.dup_acks
    s.bytes_on_wire s.bytes_saved s.detaches s.heals

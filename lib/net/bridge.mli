(** The ring bridge: one consumer on the leader's ring, a mirror ring on
    the remote node, and a go-back-N protocol in between.

    The sender drains the local ring in batches (one consumer among the
    followers, so ring backpressure sees it like any other), flattens
    each event's shared-memory payload into the event itself, and ships
    sequenced, checksummed batch frames over a {!Link}. The receiver
    acknowledges cumulatively on receipt and republishes each in-order
    batch into the mirror ring, where remote followers consume exactly
    as local ones do. Out-of-order or duplicate batches are dropped and
    re-acked; unacked batches are retransmitted on a per-batch timer
    with exponential backoff, forever — a retransmit is also the probe
    that detects a healed partition.

    {b Selective replication} (dMVX): payload bytes are charged to the
    wire only for events the remote variant cannot reproduce locally
    (network receives, entropy, time — the [must_replicate] predicate);
    locally-reproducible results (file reads off the replicated disk)
    ship as header-only deltas. The simulation still carries the bytes
    in-process so replay digests stay exact; the accounting models the
    wire, and [bytes_saved] reports the dividend.

    {b Epochs.} {!detach} parks the bridge: the local consumer
    unsubscribes (its unread payload references released), so the leader
    can never gate on an unreachable remote node. In-flight batches keep
    retransmitting; the first ack that comes back fires [on_heal] once.
    {!reattach} then starts epoch [e+1] with a fresh mirror ring and a
    new local consumer subscribed at the current head — the lifecycle
    layer replays the gap from checkpoint + tape before splicing remote
    followers onto the new mirror. Frames and acks from dead epochs are
    ignored. *)

type config = {
  batch_max : int;  (** events coalesced per frame *)
  window : int;  (** max unacked frames in flight *)
  rto : int;  (** initial retransmit timeout, cycles *)
  rto_max : int;  (** backoff cap *)
  header_bytes : int;  (** fixed per-frame wire overhead *)
  serialize_cost : int;  (** sender cycles per event *)
  publish_cost : int;  (** receiver cycles per republished event *)
}

val default_config : config

type t

val create :
  local_node:Node.t ->
  remote_node:Node.t ->
  local:Varan_ringbuf.Event.t Varan_ringbuf.Ring.t ->
  mirror:Varan_ringbuf.Event.t Varan_ringbuf.Ring.t ->
  ?cfg:config ->
  ?latency:int ->
  ?cycles_per_kb:int ->
  ?faults:(seq:int -> Link.fault list) ->
  materialize:(Varan_ringbuf.Event.t -> Varan_ringbuf.Event.t) ->
  discard:(Varan_ringbuf.Event.t -> unit) ->
  must_replicate:(Varan_ringbuf.Event.t -> bool) ->
  unit ->
  t
(** Build the bridge and its internal {!Link}, subscribe the local
    consumer, and spawn the sender, receiver and ack tasks. Must be
    called before the first publish on [local] (the sender's sequence
    accounting starts at zero). [materialize e] must return [e] with any
    pooled payload flattened inline and this consumer's pool reference
    released; [discard e] releases the reference without flattening
    (unread events on detach). *)

val set_on_heal : t -> (unit -> unit) -> unit
(** [f] runs (in task context, at most once per detached period) when an
    ack arrives while the bridge is detached — the partition healed. *)

val detach : t -> unit
(** Park the bridge (task context): unsubscribe the local consumer,
    discard its unread events, stop the sender. Idempotent. In-flight
    retransmit timers keep probing. *)

val abandon : t -> unit
(** Detach (if needed) and bump the epoch WITHOUT reattaching: every
    retransmit probe dies at its next wakeup. For sessions that will
    never rejoin the remote node (degraded, or all remote followers
    dead) — an immortal probe would keep the engine from quiescing. *)

val reattach :
  t -> mirror:Varan_ringbuf.Event.t Varan_ringbuf.Ring.t -> remote_base:int -> unit
(** Start a new epoch (task context): fresh mirror ring whose sequence 0
    corresponds to global stream sequence [remote_base], new local
    consumer at the current head. The caller must read the local ring's
    head and call this with no intervening engine effects so
    [remote_base = published local] holds. *)

val detached : t -> bool

val stalled_since : t -> int64 option
(** [Some t0] when batches are in flight and no ack has advanced the
    window since [t0] — the watchdog's link-degradation signal. [None]
    when nothing is outstanding or acks are flowing. *)

val link_partitioned : t -> bool

type stats = {
  batches : int;
  events_forwarded : int;
  retransmits : int;
  acks : int;  (** cumulative acks received by the sender *)
  dup_acks : int;  (** stale-epoch or no-progress acks *)
  checksum_failures : int;
  bytes_on_wire : int;  (** wire bytes actually charged, data + acks *)
  bytes_saved : int;  (** payload bytes elided by selective replication *)
  detaches : int;
  heals : int;  (** reattaches; [detaches - heals] partitions never healed *)
}

val stats : t -> stats
val link_stats : t -> Link.stats
val pp_stats : Format.formatter -> stats -> unit

module E = Varan_sim.Engine

type fault = Partition of int | Delay of int | Drop | Duplicate | Reorder

let fault_name = function
  | Partition _ -> "partition"
  | Delay _ -> "delay"
  | Drop -> "drop"
  | Duplicate -> "duplicate"
  | Reorder -> "reorder"

(* One direction of travel: an in-order arrival horizon, the delivered
   frames, and at most one frame held back by a pending Reorder. *)
type 'a dir = {
  src : Node.t;
  dst : Node.t;
  mutable last_arrival : int64;
  inbox : 'a Queue.t;
  arrived : E.Cond.cond;
  mutable held : 'a option;  (* a Reorder victim awaiting the next frame *)
  mutable held_flushed : bool;
      (* the fallback flush beat the next frame to it *)
}

type 'a t = {
  name : string;
  latency : int;
  cycles_per_kb : int;
  faults : seq:int -> fault list;
  dirs : 'a dir array;  (* 0 = a->b, 1 = b->a *)
  mutable next_seq : int;  (* link-global: both directions share it *)
  mutable partition_until : int64;
  (* stats *)
  mutable s_sent : int;
  mutable s_delivered : int;
  mutable s_lost : int;
  mutable s_duplicated : int;
  mutable s_reordered : int;
  mutable s_bytes : int;
  mutable s_partitions : int;
}

let no_faults ~seq:_ = []

let create ~a ~b ?(latency = 2000) ?(cycles_per_kb = 800) ?(faults = no_faults)
    name =
  let mk src dst =
    {
      src;
      dst;
      last_arrival = 0L;
      inbox = Queue.create ();
      arrived = E.Cond.create (name ^ "/" ^ Node.name src ^ ">" ^ Node.name dst);
      held = None;
      held_flushed = false;
    }
  in
  {
    name;
    latency;
    cycles_per_kb;
    faults;
    dirs = [| mk a b; mk b a |];
    next_seq = 0;
    partition_until = 0L;
    s_sent = 0;
    s_delivered = 0;
    s_lost = 0;
    s_duplicated = 0;
    s_reordered = 0;
    s_bytes = 0;
    s_partitions = 0;
  }

let partitioned t = E.now_cycles () < t.partition_until

(* Park a delivery task until [arrival], then hand the frame to the
   sink. Two sleepers with distinct deadlines wake in deadline order
   (ties break by spawn order), so per-direction arrival order is the
   queue order. *)
let deliver t d msg ~arrival =
  let now = E.now_cycles () in
  let wait = Int64.to_int (Int64.sub arrival now) in
  ignore
    (Node.spawn_here d.dst ~name:(t.name ^ "-rx") (fun () ->
         if wait > 0 then E.sleep wait;
         Queue.push msg d.inbox;
         t.s_delivered <- t.s_delivered + 1;
         E.Cond.broadcast_if_waiting d.arrived))

let schedule t d msg ~bytes ~extra =
  let now = E.now_cycles () in
  let xmit = t.latency + (bytes * t.cycles_per_kb / 1024) + extra in
  let arrival =
    let inorder = Int64.add d.last_arrival 1L in
    let earliest = Int64.add now (Int64.of_int (max 1 xmit)) in
    if Int64.compare inorder earliest > 0 then inorder else earliest
  in
  d.last_arrival <- arrival;
  Node.note_rx d.dst bytes;
  deliver t d msg ~arrival;
  arrival

(* If a Reorder held a frame back, release it one tick behind the frame
   that just overtook it. *)
let release_held t d ~after =
  match d.held with
  | None -> ()
  | Some held ->
    d.held <- None;
    deliver t d held ~arrival:(Int64.add after 1L)

let send t ~dir ~bytes msg =
  let d = t.dirs.(dir) in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.s_sent <- t.s_sent + 1;
  t.s_bytes <- t.s_bytes + bytes;
  Node.note_tx d.src bytes;
  let now = E.now_cycles () in
  let extra = ref 0 in
  let drop = ref (Int64.compare now t.partition_until < 0) in
  let dup = ref false in
  let reorder = ref false in
  List.iter
    (fun f ->
      match f with
      | Partition cycles ->
        t.s_partitions <- t.s_partitions + 1;
        let until = Int64.add now (Int64.of_int cycles) in
        if Int64.compare until t.partition_until > 0 then
          t.partition_until <- until;
        (* the frame that trips the cut is the first casualty *)
        drop := true
      | Delay cycles -> extra := !extra + cycles
      | Drop -> drop := true
      | Duplicate -> dup := true
      | Reorder -> reorder := true)
    (t.faults ~seq);
  if !drop then t.s_lost <- t.s_lost + 1
  else if !reorder && d.held = None then begin
    t.s_reordered <- t.s_reordered + 1;
    d.held <- Some msg;
    d.held_flushed <- false;
    (* Fallback: if no later frame ever overtakes it, flush after a
       generous horizon so a Reorder can delay but never lose a frame. *)
    let flush_after = (8 * t.latency) + (bytes * t.cycles_per_kb / 1024) + 4096 in
    ignore
      (Node.spawn_here d.dst ~name:(t.name ^ "-flush") (fun () ->
           E.sleep flush_after;
           match d.held with
           | Some held ->
             d.held <- None;
             d.held_flushed <- true;
             Queue.push held d.inbox;
             t.s_delivered <- t.s_delivered + 1;
             E.Cond.broadcast_if_waiting d.arrived
           | None -> ()))
  end
  else begin
    let arrival = schedule t d msg ~bytes ~extra:!extra in
    release_held t d ~after:arrival;
    if !dup then begin
      t.s_duplicated <- t.s_duplicated + 1;
      deliver t d msg ~arrival:(Int64.add arrival 1L)
    end
  end

let rec recv t ~dir =
  let d = t.dirs.(dir) in
  match Queue.take_opt d.inbox with
  | Some m -> m
  | None ->
    E.Cond.wait d.arrived;
    recv t ~dir

let try_recv t ~dir = Queue.take_opt t.dirs.(dir).inbox

type stats = {
  frames_sent : int;
  frames_delivered : int;
  frames_lost : int;
  frames_duplicated : int;
  frames_reordered : int;
  bytes_sent : int;
  partitions : int;
}

let stats t =
  {
    frames_sent = t.s_sent;
    frames_delivered = t.s_delivered;
    frames_lost = t.s_lost;
    frames_duplicated = t.s_duplicated;
    frames_reordered = t.s_reordered;
    bytes_sent = t.s_bytes;
    partitions = t.s_partitions;
  }

(** A TCP-ish duplex channel between two {!Node}s.

    Frames are delivered in send order per direction (in-order by
    default, like a TCP stream of datagram-framed messages), after a
    latency + bandwidth delay:

    {[ arrival = max (previous arrival + 1,
                      now + latency + bytes * cycles_per_kb / 1024) ]}

    The channel itself is reliable unless a {e fault} says otherwise.
    Faults are consulted once per frame, at send time, through a
    caller-supplied hook keyed by the link-global frame sequence number
    (both directions share one counter, so a fault plan can hit acks as
    easily as data). This keeps [lib/net] ignorant of the fault-plan DSL;
    the NVX session adapts {!Varan_fault.Plan} actions to {!fault}
    values.

    - [Partition d] cuts {e both} directions for [d] cycles starting
      now; the triggering frame and every frame sent inside the window
      is lost. Frames already in flight still arrive.
    - [Delay d] adds [d] cycles to this frame's transit time (later
      frames may overtake it only through [Reorder]; otherwise in-order
      delivery shifts them behind it).
    - [Drop] loses this frame.
    - [Duplicate] delivers this frame twice, back to back.
    - [Reorder] holds this frame and releases it just after the next
      frame on the same direction (a one-slot swap); a fallback flush
      delivers it anyway if no next frame comes. *)

type fault = Partition of int | Delay of int | Drop | Duplicate | Reorder

val fault_name : fault -> string

type 'a t

val create :
  a:Node.t ->
  b:Node.t ->
  ?latency:int ->
  ?cycles_per_kb:int ->
  ?faults:(seq:int -> fault list) ->
  string ->
  'a t
(** [latency] defaults to 2000 cycles, [cycles_per_kb] to 800 (~1 cycle
    per 1.25 bytes). Direction 0 carries a→b traffic, direction 1 b→a. *)

val send : 'a t -> dir:int -> bytes:int -> 'a -> unit
(** Queue a frame for delivery. Task context (delivery is a spawned
    sleeper at the caller's local time). Never blocks. *)

val recv : 'a t -> dir:int -> 'a
(** Next frame travelling in direction [dir], in arrival order; blocks
    until one arrives. Task context. *)

val try_recv : 'a t -> dir:int -> 'a option

val partitioned : 'a t -> bool
(** Is the link inside a partition window right now? *)

type stats = {
  frames_sent : int;
  frames_delivered : int;
  frames_lost : int;  (** dropped by [Drop] or a partition window *)
  frames_duplicated : int;
  frames_reordered : int;
  bytes_sent : int;  (** on-the-wire bytes of delivered + lost frames *)
  partitions : int;  (** partition windows opened *)
}

val stats : 'a t -> stats

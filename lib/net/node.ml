module E = Varan_sim.Engine

type t = {
  eng : E.t;
  name : string;
  mutable tasks : int;
  mutable bytes_tx : int;
  mutable bytes_rx : int;
}

let create ~eng name = { eng; name; tasks = 0; bytes_tx = 0; bytes_rx = 0 }
let name t = t.name
let engine t = t.eng

let spawn t ~name f =
  t.tasks <- t.tasks + 1;
  E.spawn t.eng ~name:(t.name ^ "/" ^ name) f

let spawn_here t ~name f =
  t.tasks <- t.tasks + 1;
  E.spawn_here ~name:(t.name ^ "/" ^ name) f

let note_tx t n = t.bytes_tx <- t.bytes_tx + n
let note_rx t n = t.bytes_rx <- t.bytes_rx + n

type stats = { tasks : int; bytes_tx : int; bytes_rx : int }

let stats (t : t) =
  { tasks = t.tasks; bytes_tx = t.bytes_tx; bytes_rx = t.bytes_rx }

(** A simulated machine: a named home for tasks and a traffic ledger.

    Distributed NVX keeps everything on one {!Varan_sim.Engine} — virtual
    time is global, exactly as in a single-box simulation — but tasks and
    link endpoints are owned by nodes so the topology is explicit: the
    leader and its local followers live on one node, remote followers and
    the mirror ring on another, and every byte that crosses between them
    must go through a {!Link}. *)

type t

val create : eng:Varan_sim.Engine.t -> string -> t
val name : t -> string
val engine : t -> Varan_sim.Engine.t

val spawn : t -> name:string -> (unit -> unit) -> Varan_sim.Engine.task_id
(** Spawn a task owned by this node (named ["<node>/<name>"]), runnable
    at the current global virtual time. *)

val spawn_here : t -> name:string -> (unit -> unit) -> Varan_sim.Engine.task_id
(** Like {!spawn} but from task context, runnable at the caller's local
    time. *)

val note_tx : t -> int -> unit
(** Record bytes leaving this node on some link. *)

val note_rx : t -> int -> unit

type stats = { tasks : int; bytes_tx : int; bytes_rx : int }

val stats : t -> stats

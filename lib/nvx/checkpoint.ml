module Stats = Varan_util.Stats
module K = Varan_kernel.Kernel

(* Zygote-owned follower checkpoint store (rr-style fast rejoin).

   A checkpoint freezes everything a respawned follower needs to resume
   mid-stream instead of replaying its whole history: the follower's
   stream cursor and Lamport clock, its descriptor table (shared
   open-file descriptions by identity, like a grant), and the program's
   own resumable state as an opaque byte blob produced by the program's
   checkpoint hook. On quarantine, Lifecycle restores the nearest
   checkpoint at or below the splice point and replays only the tape
   delta [cp_seq, splice) — rejoin latency is bounded by the checkpoint
   interval, not by session length.

   Like the PR 4 rewrite cache, the store lives with the zygote and is
   content-addressed: program-state blobs are keyed by digest, so the
   common case — several followers (or successive incarnations of one)
   checkpointing identical deterministic state at the same stream
   position — stores one blob. *)

type snapshot = {
  cp_idx : int; (* variant the checkpoint was captured from *)
  cp_seq : int; (* tuple-0 stream cursor: next event to consume *)
  cp_clock : int; (* tuple-0 Lamport clock at capture *)
  cp_fds : K.fd_snapshot;
  cp_state : Bytes.t; (* opaque program state (checkpoint hook) *)
}

type stats = {
  taken : int;
  restores : int;
  delta_events : int; (* tape events replayed after restores, total *)
  dedup_hits : int; (* captures whose state blob was already stored *)
  resident_blobs : int;
  resident_bytes : int; (* deduplicated program-state bytes held *)
}

type blob = { b_bytes : Bytes.t; mutable b_refs : int }

type t = {
  keep : int; (* checkpoints retained per variant, newest first *)
  by_variant : (int, snapshot list) Hashtbl.t;
  blobs : (string, blob) Hashtbl.t; (* digest -> shared state blob *)
  mutable c_taken : int;
  mutable c_restores : int;
  mutable c_delta : int;
  mutable c_dedup : int;
  (* Registry mirrors, resolved per store so a sharded deployment scopes
     them (e.g. "shard2.checkpoint.taken"). *)
  g_taken : Stats.counter;
  g_restores : Stats.counter;
  g_delta : Stats.counter;
  g_dedup : Stats.counter;
}

let create ?scope ?(keep = 4) () =
  if keep < 1 then invalid_arg "Checkpoint.create: keep";
  {
    keep;
    by_variant = Hashtbl.create 8;
    blobs = Hashtbl.create 16;
    c_taken = 0;
    c_restores = 0;
    c_delta = 0;
    c_dedup = 0;
    g_taken = Stats.scoped_counter ?scope "checkpoint.taken";
    g_restores = Stats.scoped_counter ?scope "checkpoint.restores";
    g_delta = Stats.scoped_counter ?scope "checkpoint.delta_events";
    g_dedup = Stats.scoped_counter ?scope "checkpoint.dedup_hits";
  }

let blob_unref t key =
  match Hashtbl.find_opt t.blobs key with
  | None -> ()
  | Some b ->
    b.b_refs <- b.b_refs - 1;
    if b.b_refs <= 0 then Hashtbl.remove t.blobs key

let blob_key state = Digest.to_hex (Digest.bytes state)

(* Intern the state blob: identical content is stored once. Returns the
   shared bytes (so the snapshot aliases the interned copy). *)
let intern t state =
  let key = blob_key state in
  (match Hashtbl.find_opt t.blobs key with
  | Some b ->
    b.b_refs <- b.b_refs + 1;
    t.c_dedup <- t.c_dedup + 1;
    Stats.incr_counter t.g_dedup
  | None -> Hashtbl.replace t.blobs key { b_bytes = state; b_refs = 1 });
  (Hashtbl.find t.blobs key).b_bytes

let store t snap =
  let state = intern t snap.cp_state in
  let snap = { snap with cp_state = state } in
  let prev =
    Option.value ~default:[] (Hashtbl.find_opt t.by_variant snap.cp_idx)
  in
  (* Newest first; drop a same-seq predecessor (re-capture) and anything
     beyond the per-variant retention depth. *)
  let prev, stale = List.partition (fun s -> s.cp_seq <> snap.cp_seq) prev in
  let kept = List.filteri (fun i _ -> i < t.keep - 1) prev in
  let evicted = List.filteri (fun i _ -> i >= t.keep - 1) prev in
  List.iter
    (fun s -> blob_unref t (blob_key s.cp_state))
    (stale @ evicted);
  Hashtbl.replace t.by_variant snap.cp_idx (snap :: kept);
  t.c_taken <- t.c_taken + 1;
  Stats.incr_counter t.g_taken

let snapshots t ~idx =
  Option.value ~default:[] (Hashtbl.find_opt t.by_variant idx)

(* Nearest usable checkpoint: the newest one at or below [seq]. *)
let latest_at_most t ~idx ~seq =
  List.find_opt (fun s -> s.cp_seq <= seq) (snapshots t ~idx)

let latest_seq t ~idx =
  match snapshots t ~idx with [] -> None | s :: _ -> Some s.cp_seq

(* Nearest checkpoint at or below [seq] across every variant — the
   time-travel entry point doesn't care whose state it restores, the
   stream position fully determines it. *)
let nearest_any t ~seq =
  Hashtbl.fold
    (fun _ snaps best ->
      List.fold_left
        (fun best s ->
          if s.cp_seq > seq then best
          else
            match best with
            | Some b when b.cp_seq >= s.cp_seq -> best
            | _ -> Some s)
        best snaps)
    t.by_variant None

let note_restore t ~delta =
  t.c_restores <- t.c_restores + 1;
  t.c_delta <- t.c_delta + delta;
  Stats.incr_counter t.g_restores;
  Stats.add_counter t.g_delta delta

let stats t =
  let blobs = Hashtbl.length t.blobs in
  let bytes =
    Hashtbl.fold (fun _ b acc -> acc + Bytes.length b.b_bytes) t.blobs 0
  in
  {
    taken = t.c_taken;
    restores = t.c_restores;
    delta_events = t.c_delta;
    dedup_hits = t.c_dedup;
    resident_blobs = blobs;
    resident_bytes = bytes;
  }

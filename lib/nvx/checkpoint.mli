(** Zygote-owned follower checkpoint store (rr-style fast rejoin).

    A checkpoint freezes everything a respawned follower needs to resume
    mid-stream instead of replaying its whole history: the follower's
    tuple-0 stream cursor and Lamport clock, its descriptor table
    ({!Varan_kernel.Kernel.fd_snapshot} — shared open-file descriptions
    by identity, like a grant), and the program's own resumable state as
    an opaque byte blob produced through
    {!Varan_kernel.Api.t.checkpoint_hook}. The watchdog arms a capture
    every [checkpoint_interval] cycles ({!Lifecycle.policy}); the
    follower snapshots at its next syscall boundary; {!Session} then
    restores the nearest checkpoint at or below the splice point on
    respawn and replays only the tape delta — rejoin latency is bounded
    by the checkpoint interval, not by session length.

    Like the PR 4 rewrite cache, the store lives with the zygote
    ({!Zygote.checkpoints}) and is content-addressed: state blobs are
    interned by digest, so identical deterministic state captured by
    several followers — or successive incarnations of one — is stored
    once. *)

type snapshot = {
  cp_idx : int;  (** variant the checkpoint was captured from *)
  cp_seq : int;  (** tuple-0 stream cursor: next event to consume *)
  cp_clock : int;  (** tuple-0 Lamport clock at capture (= [cp_seq]) *)
  cp_fds : Varan_kernel.Kernel.fd_snapshot;
  cp_state : Bytes.t;  (** opaque program state; aliases the interned
                           blob — treat as read-only *)
}

type t

val create : ?scope:string -> ?keep:int -> unit -> t
(** [keep] (default 4) checkpoints are retained per variant, newest
    first; older ones are evicted and their blobs dropped when no other
    snapshot shares them. [scope] prefixes the registry counter names
    this store mirrors into (a shard's store reports
    "shardN.checkpoint.taken"). *)

val store : t -> snapshot -> unit
(** File a capture. A same-variant, same-seq predecessor is replaced.
    Updates the process-wide [checkpoint.taken] / [checkpoint.dedup_hits]
    counters in {!Varan_util.Stats}. *)

val latest_at_most : t -> idx:int -> seq:int -> snapshot option
(** The newest checkpoint of variant [idx] at or below stream position
    [seq] — what a respawn restores before replaying the tape delta. *)

val latest_seq : t -> idx:int -> int option
(** Newest checkpoint position of variant [idx]; the tape retention
    floor is the minimum of these over recoverable followers. *)

val nearest_any : t -> seq:int -> snapshot option
(** Newest checkpoint at or below [seq] across all variants — the
    time-travel entry point ([varan replay --at]) doesn't care whose
    state it restores; the stream position fully determines it. *)

val note_restore : t -> delta:int -> unit
(** Account one restore that replayed [delta] tape events. *)

type stats = {
  taken : int;
  restores : int;
  delta_events : int;  (** tape events replayed after restores, total *)
  dedup_hits : int;
  resident_blobs : int;  (** distinct state blobs currently held *)
  resident_bytes : int;
}

val stats : t -> stats

type interception = Rewrite | Trap_only | Jump_only
type follower_wait = Waitlock | Busy_wait
type streaming = Shared_ring | Event_pump

type net = {
  remote_followers : int;
  link_latency : int;
  link_cycles_per_kb : int;
  bridge_batch : int;
  bridge_window : int;
  bridge_rto : int;
  unreachable_after : int;
}

let default_net =
  {
    remote_followers = 1;
    link_latency = 2000;
    link_cycles_per_kb = 800;
    bridge_batch = 16;
    bridge_window = 4;
    bridge_rto = 20_000;
    unreachable_after = 300_000;
  }

type t = {
  ring_size : int;
  interception : interception;
  follower_wait : follower_wait;
  streaming : streaming;
  enforce_clock_order : bool;
  pool_bytes : int;
  cost : Varan_cycles.Cost.t;
  trace_first_variant : bool;
  fault_plan : Varan_fault.Plan.t;
  oracle : Varan_trace.Oracle.t option;
  lifecycle : Lifecycle.policy option;
  net : net option;
}

let default =
  {
    ring_size = 256;
    interception = Rewrite;
    follower_wait = Waitlock;
    streaming = Shared_ring;
    enforce_clock_order = true;
    pool_bytes = 16 * 1024 * 1024;
    cost = Varan_cycles.Cost.default;
    trace_first_variant = false;
    fault_plan = Varan_fault.Plan.empty;
    oracle = None;
    lifecycle = None;
    net = None;
  }

let with_ring_size t n = { t with ring_size = n }

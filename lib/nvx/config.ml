type interception = Rewrite | Trap_only | Jump_only
type follower_wait = Waitlock | Busy_wait
type streaming = Shared_ring | Event_pump

type t = {
  ring_size : int;
  interception : interception;
  follower_wait : follower_wait;
  streaming : streaming;
  enforce_clock_order : bool;
  pool_bytes : int;
  cost : Varan_cycles.Cost.t;
  trace_first_variant : bool;
  fault_plan : Varan_fault.Plan.t;
  oracle : Varan_trace.Oracle.t option;
  lifecycle : Lifecycle.policy option;
}

let default =
  {
    ring_size = 256;
    interception = Rewrite;
    follower_wait = Waitlock;
    streaming = Shared_ring;
    enforce_clock_order = true;
    pool_bytes = 16 * 1024 * 1024;
    cost = Varan_cycles.Cost.default;
    trace_first_variant = false;
    fault_plan = Varan_fault.Plan.empty;
    oracle = None;
    lifecycle = None;
  }

let with_ring_size t n = { t with ring_size = n }

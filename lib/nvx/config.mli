(** NVX session configuration.

    Beyond the paper's defaults, the knobs expose the ablations DESIGN.md
    calls out: trap-only interception (no detouring), per-follower queues
    with an event pump instead of the shared ring (the prototype's
    discarded first design, §3.3.1), pure busy-waiting instead of
    waitlocks, and disabling the Lamport ordering. *)

type interception =
  | Rewrite  (** selective binary rewriting: jump detours + INT3 fallback *)
  | Trap_only  (** every syscall through the INT3/signal path (ablation) *)
  | Jump_only
      (** assume every site was detourable — used by the microbenchmarks,
          whose loop bodies have no branch targets next to the syscall *)

type follower_wait =
  | Waitlock  (** futex-backed blocking for blocking syscalls (§3.3.1) *)
  | Busy_wait  (** spin on the ring cursor for everything (ablation) *)

type streaming =
  | Shared_ring  (** the Disruptor-pattern shared ring buffer *)
  | Event_pump
      (** one queue per follower plus a pump task dispatching events —
          the design the paper discarded as a bottleneck (ablation) *)

type net = {
  remote_followers : int;
      (** how many followers (the highest-indexed ones) live on the
          remote node and consume the bridge's mirror ring; the leader is
          always local *)
  link_latency : int;  (** per-frame link latency, cycles *)
  link_cycles_per_kb : int;  (** bandwidth model: cycles per KiB *)
  bridge_batch : int;  (** events coalesced per bridge frame *)
  bridge_window : int;  (** max unacked frames in flight *)
  bridge_rto : int;  (** initial retransmit timeout, cycles *)
  unreachable_after : int;
      (** cycles of bridge window stall before the watchdog parks the
          remote followers in [Unreachable]. Keep this above the
          lifecycle [stall_timeout] so an individually-stuck remote
          follower is quarantined (its problem) before the link is
          declared down (everyone's problem). *)
}

val default_net : net

type t = {
  ring_size : int;  (** default 256 events *)
  interception : interception;
  follower_wait : follower_wait;
  streaming : streaming;
  enforce_clock_order : bool;
      (** Lamport ordering for multi-threaded variants (§3.3.3) *)
  pool_bytes : int;  (** shared-memory pool capacity *)
  cost : Varan_cycles.Cost.t;
  trace_first_variant : bool;
      (** attach an strace-style tracer to variant 0's main unit — the
          paper's point that ptrace-based tooling still works on VARAN'd
          programs (§3.1), available here even under the monitor *)
  fault_plan : Varan_fault.Plan.t;
      (** deterministic injections (crashes, stalls, ring pressure,
          signal bursts) applied at precise stream sequence numbers; the
          default empty plan changes nothing *)
  oracle : Varan_trace.Oracle.t option;
      (** when set, the session taps every tuple ring and reports stream
          bookkeeping to the trace-invariant oracle *)
  lifecycle : Lifecycle.policy option;
      (** when set, the follower lifecycle manager runs: a watchdog
          quarantines stalled followers (so the leader never blocks on
          them), respawns them from the zygote with exponential backoff,
          and replays the session tape to splice them back into the live
          ring; below [min_followers] the session degrades gracefully to
          native-speed leader-only execution. [None] (the default) keeps
          the original terminal-removal behaviour *)
  net : net option;
      (** when set, the last [remote_followers] variants run on a
          simulated remote node fed by the cross-node ring bridge
          (latency, bandwidth, partitions, the [Unreachable] lifecycle
          state). Requires [lifecycle] and [Shared_ring]. [None] keeps
          everything on one node *)
}

val default : t
val with_ring_size : t -> int -> t

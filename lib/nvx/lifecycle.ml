module Stats = Varan_util.Stats

(* ------------------------------------------------------------------ *)
(* Policy                                                              *)
(* ------------------------------------------------------------------ *)

type policy = {
  lag_threshold : int;
  stall_timeout : int;
  max_restarts : int;
  backoff : int;
  min_followers : int;
  watchdog_period : int;
  checkpoint_interval : int;
}

let default_policy =
  {
    lag_threshold = 64;
    stall_timeout = 500_000;
    max_restarts = 2;
    backoff = 100_000;
    min_followers = 1;
    watchdog_period = 25_000;
    checkpoint_interval = 0;
  }

(* Exponential backoff before respawn attempt [restarts + 1]. Saturates
   instead of overflowing for absurd restart counts. *)
let backoff_delay policy ~restarts =
  let shift = min restarts 20 in
  policy.backoff * (1 lsl shift)

(* ------------------------------------------------------------------ *)
(* State machine                                                       *)
(* ------------------------------------------------------------------ *)

type state =
  | Healthy
  | Lagging
  | Quarantined
  | Respawning
  | Catching_up
  | Unreachable
  | Dead

let state_name = function
  | Healthy -> "healthy"
  | Lagging -> "lagging"
  | Quarantined -> "quarantined"
  | Respawning -> "respawning"
  | Catching_up -> "catching-up"
  | Unreachable -> "unreachable"
  | Dead -> "dead"

(* The legal transition graph:
     Healthy <-> Lagging
     Lagging -> Quarantined -> Respawning -> Catching_up -> Healthy
     Quarantined -> Dead (restart budget exhausted, or degraded cancel)
   plus the crash edges: a crash quarantines from Healthy or Catching_up
   directly (no lag preceded it), and a variant that crashes while
   leading goes terminal at once — a dead leader never rejoins.

   Unreachable is the link-degraded sibling of Quarantined: the follower
   itself is presumed fine but the node hosting it is partitioned away,
   so it parks without burning restart budget. It leaves through the
   same respawn door when the partition heals, or to Dead when its tape
   prefix was retired while it was away (clean [Truncated] death) or the
   session degraded in the meantime.
   Anything else is a lifecycle-manager bug and is recorded. *)
let legal_transition a b =
  match (a, b) with
  | Healthy, Lagging
  | Lagging, Healthy
  | (Healthy | Lagging | Catching_up), Quarantined
  | Quarantined, (Respawning | Dead)
  | Respawning, Catching_up
  | Catching_up, Healthy
  | (Healthy | Lagging | Catching_up), Unreachable
  | Unreachable, (Respawning | Dead)
  | (Healthy | Lagging | Catching_up), Dead -> true
  | _ -> false

type entry = {
  e_idx : int;
  mutable e_state : state;
  mutable e_restarts : int; (* respawns performed so far *)
  mutable e_last_cursor : int; (* tuple-0 cursor at the last progress *)
  mutable e_last_progress : int64; (* virtual time of the last progress *)
  mutable e_quarantine_seq : int; (* tuple-0 cursor when quarantined *)
  mutable e_respawn_due : int64; (* when the next respawn may fire *)
  mutable e_reason : string; (* why the follower left Healthy *)
}

type counters = {
  mutable c_lagging : int;
  mutable c_recovered : int;
  mutable c_quarantines : int;
  mutable c_respawns : int;
  mutable c_rejoins : int;
  mutable c_unreachable : int;
  mutable c_deaths : int;
  mutable c_illegal : int;
}

(* Registry-backed counters, resolved per lifecycle instance so a sharded
   deployment reads "shard3.lifecycle.respawns" rather than every shard
   funneling into one process-wide tally. Unscoped sessions keep the
   historical bare names. *)
type registry_counters = {
  g_quarantines : Stats.counter;
  g_respawns : Stats.counter;
  g_rejoins : Stats.counter;
  g_deaths : Stats.counter;
  g_degradations : Stats.counter;
  g_unreachable : Stats.counter;
}

type t = {
  policy : policy;
  entries : entry array; (* indexed by variant idx; entry 0 unused while
                            variant 0 leads *)
  c : counters;
  g : registry_counters;
  mutable degraded : string option;
  (* Observability tap: called on every state change, before the entry
     mutates, with the entry's current reason. The session wires this to
     its flight recorder; it must be effect-free (the watchdog invokes
     transitions from scheduler context). *)
  mutable on_transition :
    idx:int -> from_:string -> to_:string -> reason:string -> unit;
}

let create ?scope policy ~variants =
  {
    policy;
    g =
      {
        g_quarantines = Stats.scoped_counter ?scope "lifecycle.quarantines";
        g_respawns = Stats.scoped_counter ?scope "lifecycle.respawns";
        g_rejoins = Stats.scoped_counter ?scope "lifecycle.rejoins";
        g_deaths = Stats.scoped_counter ?scope "lifecycle.deaths";
        g_degradations = Stats.scoped_counter ?scope "lifecycle.degradations";
        g_unreachable = Stats.scoped_counter ?scope "lifecycle.unreachable";
      };
    entries =
      Array.init variants (fun i ->
          {
            e_idx = i;
            e_state = Healthy;
            e_restarts = 0;
            e_last_cursor = 0;
            e_last_progress = 0L;
            e_quarantine_seq = 0;
            e_respawn_due = 0L;
            e_reason = "";
          });
    c =
      {
        c_lagging = 0;
        c_recovered = 0;
        c_quarantines = 0;
        c_respawns = 0;
        c_rejoins = 0;
        c_unreachable = 0;
        c_deaths = 0;
        c_illegal = 0;
      };
    degraded = None;
    on_transition = (fun ~idx:_ ~from_:_ ~to_:_ ~reason:_ -> ());
  }

let entry t idx = t.entries.(idx)
let state e = e.e_state
let restarts e = e.e_restarts
let policy t = t.policy
let set_on_transition t f = t.on_transition <- f

let transition t e next =
  if not (legal_transition e.e_state next) then t.c.c_illegal <- t.c.c_illegal + 1;
  t.on_transition ~idx:e.e_idx ~from_:(state_name e.e_state)
    ~to_:(state_name next) ~reason:e.e_reason;
  (match next with
  | Lagging -> t.c.c_lagging <- t.c.c_lagging + 1
  | Healthy ->
    if e.e_state = Lagging then t.c.c_recovered <- t.c.c_recovered + 1
    else if e.e_state = Catching_up then begin
      t.c.c_rejoins <- t.c.c_rejoins + 1;
      Stats.incr_counter t.g.g_rejoins
    end
  | Quarantined ->
    t.c.c_quarantines <- t.c.c_quarantines + 1;
    Stats.incr_counter t.g.g_quarantines
  | Respawning ->
    t.c.c_respawns <- t.c.c_respawns + 1;
    Stats.incr_counter t.g.g_respawns
  | Catching_up -> ()
  | Unreachable ->
    t.c.c_unreachable <- t.c.c_unreachable + 1;
    Stats.incr_counter t.g.g_unreachable
  | Dead ->
    t.c.c_deaths <- t.c.c_deaths + 1;
    Stats.incr_counter t.g.g_deaths);
  e.e_state <- next

let note_degraded t reason =
  match t.degraded with
  | Some _ -> () (* first reason wins *)
  | None ->
    t.degraded <- Some reason;
    Stats.incr_counter t.g.g_degradations

let degraded t = t.degraded

(* Followers that are not permanently gone: anything short of [Dead]
   either consumes the stream or will after a respawn. The degradation
   test compares this count against [min_followers]. [Unreachable]
   followers don't count — a partition has no deadline, so a session
   whose reachable follower set falls below the floor runs local-only
   rather than betting on a heal. *)
let recoverable_followers t ~leader_idx =
  Array.fold_left
    (fun n e ->
      if e.e_idx <> leader_idx && e.e_state <> Dead && e.e_state <> Unreachable
      then n + 1
      else n)
    0 t.entries

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

type follower_report = {
  fr_idx : int;
  fr_state : state;
  fr_restarts : int;
  fr_reason : string;
}

type report = {
  followers : follower_report list; (* non-leader entries, by idx *)
  lagging : int;
  recovered : int;
  quarantines : int;
  respawns : int;
  rejoins : int;
  unreachable : int;
  deaths : int;
  illegal_transitions : int;
  degraded_reason : string option;
}

let report t ~leader_idx =
  {
    followers =
      Array.to_list t.entries
      |> List.filter_map (fun e ->
             if e.e_idx = leader_idx then None
             else
               Some
                 {
                   fr_idx = e.e_idx;
                   fr_state = e.e_state;
                   fr_restarts = e.e_restarts;
                   fr_reason = e.e_reason;
                 });
    lagging = t.c.c_lagging;
    recovered = t.c.c_recovered;
    quarantines = t.c.c_quarantines;
    respawns = t.c.c_respawns;
    rejoins = t.c.c_rejoins;
    unreachable = t.c.c_unreachable;
    deaths = t.c.c_deaths;
    illegal_transitions = t.c.c_illegal;
    degraded_reason = t.degraded;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>lifecycle: quarantines=%d respawns=%d rejoins=%d unreachable=%d \
     deaths=%d lagging=%d recovered=%d%s@,"
    r.quarantines r.respawns r.rejoins r.unreachable r.deaths r.lagging
    r.recovered
    (if r.illegal_transitions > 0 then
       Printf.sprintf " ILLEGAL-TRANSITIONS=%d" r.illegal_transitions
     else "");
  (match r.degraded_reason with
  | Some reason -> Format.fprintf ppf "degraded to native: %s@," reason
  | None -> ());
  List.iter
    (fun fr ->
      Format.fprintf ppf "follower %d: %s (restarts=%d)%s@," fr.fr_idx
        (state_name fr.fr_state) fr.fr_restarts
        (if fr.fr_reason = "" then "" else " last reason: " ^ fr.fr_reason))
    r.followers;
  Format.fprintf ppf "@]"

(** Per-follower health state machine for the self-healing session.

    VARAN's original answer to a slow or crashed follower is terminal:
    the variant is removed and never comes back, and until it is removed
    a stalled follower back-pressures the leader through the ring's
    gating sequence. The lifecycle manager replaces that with a watchdog
    driven cycle

    {v Healthy <-> Lagging -> Quarantined -> Respawning -> Catching_up -> Healthy
                                  |
                                  +-> Dead (restart budget exhausted) v}

    Crashes add two shortcuts: a crashed follower enters [Quarantined]
    straight from [Healthy] or [Catching_up] (no lag preceded it), and a
    variant that crashes while {e leading} goes straight to [Dead] — a
    dead leader never rejoins.

    Distributed sessions add [Unreachable], the link-degraded sibling of
    [Quarantined]: when the cross-node bridge reports the remote node
    partitioned away, its followers park there — the bridge detaches so
    the leader's gate is freed, exactly the quarantine invariant — but
    no restart budget burns, because the follower is presumed healthy
    behind a broken wire. A healed partition re-enters through the same
    [Respawning -> Catching_up] checkpoint + tape-delta door; a retired
    tape prefix or a degraded session ends it at [Dead] instead.

    A watchdog in the engine tick measures each follower's ring lag and
    cycles-since-progress against the {!policy}; a tripped follower is
    {e quarantined} (its ring consumers removed so the leader's gate can
    never again wait on it) while the session's tape retains the stream,
    then respawned from the zygote after an exponential backoff, replays
    the recorded prefix, and splices back into the live ring. The state
    machine itself is pure bookkeeping — {!Session} drives it. *)

type policy = {
  lag_threshold : int;
      (** events of tuple-0 ring lag before a follower counts as lagging *)
  stall_timeout : int;
      (** cycles without consumer progress before a lagging follower is
          quarantined *)
  max_restarts : int;
      (** respawns allowed per follower; the next trip after the budget
          is exhausted is terminal ([Dead]) *)
  backoff : int;
      (** base respawn delay in cycles; attempt [n] waits
          [backoff * 2^(n-1)] *)
  min_followers : int;
      (** when fewer than this many followers remain recoverable, the
          session degrades to native-speed leader-only execution *)
  watchdog_period : int;  (** watchdog tick period in cycles *)
  checkpoint_interval : int;
      (** cycles between follower checkpoints (rr-style fast rejoin);
          the watchdog arms a capture every interval and the follower
          snapshots at its next syscall boundary. [0] disables
          checkpointing — respawns then replay the full tape. *)
}

val default_policy : policy

val backoff_delay : policy -> restarts:int -> int
(** Delay before the next respawn of a follower already respawned
    [restarts] times. *)

type state =
  | Healthy
  | Lagging
  | Quarantined
  | Respawning
  | Catching_up
  | Unreachable
  | Dead

val state_name : state -> string

type entry = {
  e_idx : int;
  mutable e_state : state;
  mutable e_restarts : int;
  mutable e_last_cursor : int;
  mutable e_last_progress : int64;
  mutable e_quarantine_seq : int;
  mutable e_respawn_due : int64;
  mutable e_reason : string;
}
(** Mutable per-follower ledger; the session reads and writes the fields
    directly from the watchdog and the quarantine/respawn agents. *)

type t

val create : ?scope:string -> policy -> variants:int -> t
(** [scope] prefixes the registry counter names this instance mirrors
    into ("shard0.lifecycle.respawns" instead of "lifecycle.respawns"),
    so per-shard lifecycle activity stays separable in a sharded
    deployment. Unscoped instances keep the historical bare names. *)

val entry : t -> int -> entry
val state : entry -> state
val restarts : entry -> int
val policy : t -> policy

val transition : t -> entry -> state -> unit
(** Move the entry to a new state, updating the transition counters (and
    the process-wide [lifecycle.*] counters in {!Varan_util.Stats}).
    Illegal transitions are counted rather than raised — the report
    surfaces them as a lifecycle-manager bug. *)

val set_on_transition :
  t -> (idx:int -> from_:string -> to_:string -> reason:string -> unit) -> unit
(** Observability tap: [f] is called on every {!transition}, before the
    entry mutates, with the entry's current reason string. The session
    wires this to its flight recorder. The watchdog transitions from
    scheduler context, so [f] must not perform engine effects. *)

val note_degraded : t -> string -> unit
(** Record graceful degradation to native-speed leader-only execution.
    The first reason sticks. *)

val degraded : t -> string option

val recoverable_followers : t -> leader_idx:int -> int
(** Followers neither permanently [Dead] nor parked [Unreachable] — the
    count compared against [min_followers]. A partition has no deadline,
    so unreachable followers don't keep the session hopeful. *)

(** {1 Report} *)

type follower_report = {
  fr_idx : int;
  fr_state : state;
  fr_restarts : int;
  fr_reason : string;
}

type report = {
  followers : follower_report list;
  lagging : int;  (** Healthy -> Lagging transitions *)
  recovered : int;  (** Lagging -> Healthy transitions *)
  quarantines : int;
  respawns : int;
  rejoins : int;  (** Catching_up -> Healthy transitions *)
  unreachable : int;  (** transitions into [Unreachable] *)
  deaths : int;
  illegal_transitions : int;  (** nonzero means a lifecycle bug *)
  degraded_reason : string option;
}

val report : t -> leader_idx:int -> report
val pp_report : Format.formatter -> report -> unit

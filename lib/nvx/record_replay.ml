module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Api = Varan_kernel.Api
module Types = Varan_kernel.Types
module Flags = Varan_kernel.Flags
module Sysno = Varan_syscall.Sysno
module Args = Varan_syscall.Args
module Errno = Varan_syscall.Errno
module Cost = Varan_cycles.Cost
module Ring = Varan_ringbuf.Ring
module Event = Varan_ringbuf.Event
module Pool = Varan_shmem.Pool

(* ------------------------------------------------------------------ *)
(* Log format                                                          *)
(* ------------------------------------------------------------------ *)

(* One record:
     u8  kind        u8 tid       u16 nargs (low 3 bits used)
     i32 sysno       i32 clock    i64 ret
     i64 args[nargs]
     i32 outlen      bytes out *)

let kind_to_int = function
  | Event.Ev_syscall -> 0
  | Event.Ev_signal -> 1
  | Event.Ev_fork -> 2
  | Event.Ev_exit -> 3

let kind_of_int = function
  | 0 -> Event.Ev_syscall
  | 1 -> Event.Ev_signal
  | 2 -> Event.Ev_fork
  | _ -> Event.Ev_exit

(* The header is split from the payload so pooled out-buffers can be
   appended straight out of the shared chunk ({!Pool.view} +
   [Buffer.add_subbytes]) without materialising an intermediate copy. *)
let serialize_header buf (e : Event.t) ~outlen =
  Buffer.add_uint8 buf (kind_to_int e.Event.kind);
  Buffer.add_uint8 buf e.Event.tid;
  Buffer.add_uint16_le buf (Array.length e.Event.args);
  Buffer.add_int32_le buf (Int32.of_int e.Event.sysno);
  Buffer.add_int32_le buf (Int32.of_int e.Event.clock);
  Buffer.add_int64_le buf (Int64.of_int e.Event.ret);
  Array.iter (fun a -> Buffer.add_int64_le buf (Int64.of_int a)) e.Event.args;
  Buffer.add_int32_le buf (Int32.of_int outlen)

let serialize buf (e : Event.t) ~out =
  let out = match out with Some b -> b | None -> Bytes.empty in
  serialize_header buf e ~outlen:(Bytes.length out);
  Buffer.add_bytes buf out

(* Bridge a lifecycle catch-up tape into the same log format: a degraded
   session's retained stream becomes an ordinary replay log from which
   fresh followers can later be provisioned. *)
let serialize_tape tape =
  let buf = Buffer.create 4096 in
  Tape.iter
    (fun en -> serialize buf (Tape.event_of_entry en) ~out:en.Tape.t_out)
    tape;
  Buffer.to_bytes buf

type cursor = { data : Bytes.t; mutable pos : int }

(* A record cut off mid-header or mid-payload (a crashed recorder, a
   truncated log file) must decode to [None], not crash the replayer. *)
exception Short

let deserialize cur : (Event.kind * int * int * int * int * int array * Bytes.t) option =
  let len = Bytes.length cur.data in
  if cur.pos >= len then None
  else begin
    let start = cur.pos in
    let need n = if cur.pos + n > len then raise Short in
    let u8 () =
      need 1;
      let v = Char.code (Bytes.get cur.data cur.pos) in
      cur.pos <- cur.pos + 1;
      v
    in
    let u16 () =
      need 2;
      let v = Bytes.get_uint16_le cur.data cur.pos in
      cur.pos <- cur.pos + 2;
      v
    in
    let i32 () =
      need 4;
      let v = Int32.to_int (Bytes.get_int32_le cur.data cur.pos) in
      cur.pos <- cur.pos + 4;
      v
    in
    let i64 () =
      need 8;
      let v = Int64.to_int (Bytes.get_int64_le cur.data cur.pos) in
      cur.pos <- cur.pos + 8;
      v
    in
    try
      let kind = kind_of_int (u8 ()) in
      let tid = u8 () in
      let nargs = u16 () in
      let sysno = i32 () in
      let clock = i32 () in
      let ret = i64 () in
      (* Explicit recursion: [Array.init]'s evaluation order is
         unspecified, and the reads must land in stream order. *)
      let args = Array.make nargs 0 in
      for i = 0 to nargs - 1 do
        args.(i) <- i64 ()
      done;
      let outlen = i32 () in
      if outlen < 0 then raise Short;
      need outlen;
      let out = Bytes.sub cur.data cur.pos outlen in
      cur.pos <- cur.pos + outlen;
      Some (kind, tid, sysno, clock, ret, args, out)
    with Short ->
      (* Rewind so the caller can tell a clean end ([pos] at the data's
         end) from a torn tail record ([pos] short of it). *)
      cur.pos <- start;
      None
  end

(* ------------------------------------------------------------------ *)
(* Time travel                                                         *)
(* ------------------------------------------------------------------ *)

(* [varan replay --at <seq>]: reconstruct the state a follower would hold
   after consuming tuple 0's first [at] events, the way a checkpointed
   rejoin does — restore the nearest checkpoint at or below [at], then
   replay only the tape delta behind it. With no usable checkpoint the
   whole retained prefix replays; a position below the oldest retained
   segment (and not covered by any checkpoint) is a clean error. *)
type time_travel = {
  tt_at : int;  (** the requested stream position *)
  tt_base : int;  (** oldest retained tape index at lookup time *)
  tt_checkpoint : Checkpoint.snapshot option;
      (** the snapshot a restore would start from; [None] = cold start *)
  tt_delta : Event.t list;  (** the tape events replayed after it *)
}

let time_travel session ~at =
  match Session.tuple_tape session 0 with
  | None -> Error "no tape: the session ran without a lifecycle policy"
  | Some tape ->
    let total = Tape.length tape in
    let base = Tape.base tape in
    if at < 0 || at > total then
      Error (Printf.sprintf "sequence %d out of range [0, %d]" at total)
    else begin
      let ck = Session.checkpoint_store session in
      let cp =
        match Checkpoint.nearest_any ck ~seq:at with
        | Some c when c.Checkpoint.cp_seq >= base -> Some c
        | _ -> None
      in
      let start =
        match cp with Some c -> c.Checkpoint.cp_seq | None -> 0
      in
      if start < base then
        Error
          (Printf.sprintf
             "sequence %d predates the oldest retained tape segment (base \
              %d) and no checkpoint covers it"
             at base)
      else begin
        let delta = ref [] in
        for i = at - 1 downto start do
          delta := Tape.event_at tape i :: !delta
        done;
        Ok { tt_at = at; tt_base = base; tt_checkpoint = cp; tt_delta = !delta }
      end
    end

(* ------------------------------------------------------------------ *)
(* Recorder                                                            *)
(* ------------------------------------------------------------------ *)

type recorder = {
  session : Session.t;
  ring : Event.t Ring.t;
  consumer : Event.t Ring.consumer;
  api : Api.t;
  buf : Buffer.t;
  mutable events : int;
  mutable stopping : bool;
  mutable stopped : bool;
}

let flush_threshold = 4096

let flush r fd =
  if Buffer.length r.buf > 0 then begin
    let data = Buffer.to_bytes r.buf in
    Buffer.clear r.buf;
    match Api.write_all r.api fd data with
    | Ok () -> ()
    | Error e -> failwith ("recorder: write failed: " ^ Errno.name e)
  end

let record session k ~tuple ~path =
  let ring = Session.tuple_ring session tuple in
  let consumer = Ring.subscribe ring in
  let proc = K.new_proc k "recorder" in
  let api = Api.direct k proc in
  let r =
    {
      session;
      ring;
      consumer;
      api;
      buf = Buffer.create flush_threshold;
      events = 0;
      stopping = false;
      stopped = false;
    }
  in
  let task () =
    (* The log is opened from inside the recorder's own task: syscalls
       only exist in task context. *)
    let fd =
      match
        Api.openf api path (Flags.o_wronly lor Flags.o_creat lor Flags.o_trunc)
      with
      | Ok fd -> fd
      | Error e -> failwith ("recorder: open failed: " ^ Errno.name e)
    in
    let record_one e =
      (match e.Event.payload with
      | Some chunk ->
        (* Pooled payloads go straight from the shared chunk into the
           log buffer — the single copy on the record path. *)
        Pool.view chunk ~len:e.Event.payload_len (fun data off len ->
            serialize_header r.buf e ~outlen:len;
            Buffer.add_subbytes r.buf data off len);
        Session.release_payload session e
      | None -> serialize r.buf e ~out:e.Event.inline_out);
      r.events <- r.events + 1;
      if Buffer.length r.buf >= flush_threshold then flush r fd
    in
    (* Drain in runs: when the recorder lags (it writes to disk between
       reads) it catches up with one gate check and one producer wakeup
       per batch instead of per event. *)
    let rec loop () =
      match Ring.try_consume_batch_h consumer ~max:64 with
      | _ :: _ as batch ->
        List.iter record_one batch;
        loop ()
      | [] ->
        if r.stopping then begin
          flush r fd;
          ignore (Api.close api fd);
          Ring.unsubscribe consumer;
          r.stopped <- true
        end
        else begin
          Ring.wait_activity ring;
          loop ()
        end
    in
    loop ()
  in
  let tid = E.spawn k.Types.eng ~name:"recorder" task in
  K.register_task k proc tid;
  r

let stop r =
  (* The recorder drains whatever is still in the ring, flushes its tail
     buffer, closes the log and deregisters itself. *)
  r.stopping <- true;
  Ring.poke r.ring

let recorded_events r = r.events

(* ------------------------------------------------------------------ *)
(* Replayer                                                            *)
(* ------------------------------------------------------------------ *)

type rstate = {
  r_idx : int;
  r_variant : Variant.t;
  mutable r_consumed : int;
  mutable r_alive : bool;
}

type replayer = {
  rp_ring : Event.t Ring.t;
  rstates : rstate array;
  mutable rp_crashes : (int * string) list;
  mutable rp_published : int;
}

exception Replay_divergence of string

let replay ?(config = Config.default) k ~path variants =
  if variants = [] then invalid_arg "Record_replay.replay: no variants";
  let cost = config.Config.cost in
  let ring = Ring.create ~size:config.Config.ring_size "replay-ring" in
  let rstates =
    Array.of_list
      (List.mapi
         (fun i v -> { r_idx = i; r_variant = v; r_consumed = 0; r_alive = true })
         variants)
  in
  let rp = { rp_ring = ring; rstates; rp_crashes = []; rp_published = 0 } in
  (* Consumers must register before the publisher starts; handles are
     resolved once, not per consume. *)
  let consumers = Array.map (fun _ -> Ring.subscribe ring) rstates in
  (* The replay leader: reads the log from persistent storage and
     publishes events into the ring for consumption by replay clients. *)
  ignore
    (E.spawn k.Types.eng ~name:"replay-leader" (fun () ->
         let proc = K.new_proc k "replay-leader" in
         let api = Api.direct k proc in
         let fd =
           match Api.openf api path Flags.o_rdonly with
           | Ok fd -> fd
           | Error e -> failwith ("replayer: open failed: " ^ Errno.name e)
         in
         let contents = Buffer.create 4096 in
         let rec read_all () =
           match Api.read api fd 4096 with
           | Ok b when Bytes.length b > 0 ->
             Buffer.add_bytes contents b;
             read_all ()
           | Ok _ -> ()
           | Error e -> failwith ("replayer: read failed: " ^ Errno.name e)
         in
         read_all ();
         ignore (Api.close api fd);
         let cur = { data = Buffer.to_bytes contents; pos = 0 } in
         let decode_one () =
           match deserialize cur with
           | None -> None
           | Some (kind, tid, sysno, clock, ret, args, out) ->
             let inline_out =
               if Bytes.length out > 0 then Some out else None
             in
             (* Replay events carry results inline regardless of size:
                the shared-memory pool is not reconstructed on replay. *)
             Some
               {
                 Event.kind;
                 sysno;
                 tid;
                 args;
                 ret;
                 clock;
                 payload = None;
                 payload_len = 0;
                 inline_out;
                 grant = None;
               }
         in
         (* Publish in runs of up to 64: one gate check and one consumer
            wakeup per batch; per-event publish cost is still charged. *)
         let batch_max = 64 in
         let scratch = Queue.create () in
         let rec publish_all () =
           Queue.clear scratch;
           let rec fill () =
             if Queue.length scratch < batch_max then
               match decode_one () with
               | Some e ->
                 Queue.add e scratch;
                 fill ()
               | None -> ()
           in
           fill ();
           let n = Queue.length scratch in
           if n > 0 then begin
             E.consume (cost.Cost.publish_event * n);
             Ring.publish_batch ring
               (Array.init n (fun _ -> Queue.pop scratch));
             rp.rp_published <- rp.rp_published + n;
             publish_all ()
           end
         in
         publish_all ()));
  (* Replay clients: every streamed call returns the recorded result. *)
  Array.iteri
    (fun i rst ->
      let v = rst.r_variant in
      let proc = K.new_proc k ("replay." ^ v.Variant.v_name) in
      let table = Syscall_table.follower in
      let sys sysno args =
        match Syscall_table.lookup table sysno with
        | Syscall_table.Local -> K.exec k proc sysno args
        | Syscall_table.Unsupported -> Args.err Errno.ENOSYS
        | Syscall_table.Stream | Syscall_table.Virtual -> (
          (* Recorded signal deliveries interrupt the pending call just
             as they did live: run this client's own handler and keep
             waiting for the call's result event. *)
          let rec next_event () =
            E.consume cost.Cost.consume_event;
            let e = Ring.consume_h consumers.(i) in
            rst.r_consumed <- rst.r_consumed + 1;
            if e.Event.kind = Event.Ev_signal then begin
              (match K.handler_for proc e.Event.sysno with
              | Some f -> f e.Event.sysno
              | None -> ());
              next_event ()
            end
            else e
          in
          let e = next_event () in
          if e.Event.sysno <> Sysno.to_int sysno then
            raise
              (Replay_divergence
                 (Printf.sprintf "log has %d, client wants %s" e.Event.sysno
                    (Sysno.name sysno)))
          else { Args.ret = e.Event.ret; out = e.Event.inline_out; fd_object = None })
      in
      let api = Api.with_sys proc sys in
      let body = v.Variant.program.Variant.body in
      let tid =
        E.spawn k.Types.eng ~name:("replay." ^ v.Variant.v_name) (fun () ->
            try body ~unit_idx:0 api with
            | E.Killed -> ()
            | exn ->
              rp.rp_crashes <- (i, Printexc.to_string exn) :: rp.rp_crashes;
              rst.r_alive <- false;
              Ring.unsubscribe consumers.(i))
      in
      K.register_task k proc tid)
    rstates;
  rp

let replayed_events rp =
  Array.fold_left (fun acc r -> acc + r.r_consumed) 0 rp.rstates

let replay_ring rp = rp.rp_ring

let replay_crashes rp = List.rev rp.rp_crashes

(* ------------------------------------------------------------------ *)
(* Scribe baseline                                                     *)
(* ------------------------------------------------------------------ *)

let scribe_api ?(cost = Cost.default) k proc =
  let sys sysno args =
    (* In-kernel recording: every syscall pays the logging overhead
       inline, including copying its payloads into the kernel log. *)
    E.consume cost.Cost.scribe_per_syscall;
    let result = K.exec k proc sysno args in
    let bytes =
      Args.payload_size args
      + (match result.Args.out with Some b -> Bytes.length b | None -> 0)
    in
    E.consume
      (Cost.copy_cycles ~rate_c100:cost.Cost.scribe_copy_per_byte_c100 bytes);
    result
  in
  Api.with_sys proc sys

(** Record-replay on top of event streaming (§5.4).

    Two artificial clients extend VARAN into a full record-replay system:

    - the {e recorder} acts as one more follower whose only job is to
      drain the ring buffer and append events to persistent storage
      (batched into page-sized writes), decoupling logging from the
      application;
    - the {e replayer} acts as the leader during replay, reading the log
      and publishing events into a ring consumed by any number of replay
      clients — which is how several versions can be replayed at once
      against one recorded execution.

    A cost model of {e Scribe} (kernel-based record-replay) is provided
    for the paper's comparison: it charges the recording overhead inline
    on every syscall of the recorded process. *)

type recorder

val record :
  Session.t -> Varan_kernel.Types.t -> tuple:int -> path:string -> recorder
(** Attach a recorder to the session's ring for [tuple], writing the
    binary log to [path] in the simulated filesystem. Must be called
    before the workload starts publishing (the recorder only sees events
    published after it attaches). *)

val stop : recorder -> unit
(** Flush buffered events, close the log and stop the recorder task.
    Must be called from inside an engine task (it wakes the ring). *)

val recorded_events : recorder -> int

val serialize_tape : Tape.t -> Bytes.t
(** Encode a lifecycle catch-up {!Tape} in the recorder's on-disk log
    format. Writing the result to a file yields a log {!replay} accepts —
    how a degraded session's retained stream provisions fresh followers
    offline. Only the retained window [{!Tape.base}, {!Tape.length}) is
    encoded: segments retired by the checkpoint retention policy are
    gone. *)

(** {2 Log decoding} *)

type cursor = { data : Bytes.t; mutable pos : int }

val deserialize :
  cursor ->
  (Varan_ringbuf.Event.kind * int * int * int * int * int array * Bytes.t)
  option
(** Decode one record ([kind, tid, sysno, clock, ret, args, out]) and
    advance the cursor. [None] at a clean end of data — and also on a
    torn tail record (cut off mid-header or mid-payload), in which case
    the cursor is left {e before} the torn record so callers can tell the
    two apart by comparing [pos] against the data length. *)

(** {1 Time travel} *)

type time_travel = {
  tt_at : int;  (** the requested stream position *)
  tt_base : int;  (** oldest retained tape index at lookup time *)
  tt_checkpoint : Checkpoint.snapshot option;
      (** the snapshot a restore would start from; [None] = cold start *)
  tt_delta : Varan_ringbuf.Event.t list;
      (** the tape events replayed after it, in stream order *)
}

val time_travel : Session.t -> at:int -> (time_travel, string) result
(** [varan replay --at <seq>]'s engine: reconstruct how a checkpointed
    rejoin would reach tuple-0 stream position [at] — the nearest retained
    checkpoint at or below it plus the tape delta behind it. [Error]
    (never an exception) when the session has no tape, [at] is out of
    range, or [at] predates the oldest retained segment with no
    checkpoint covering it. *)

(** {1 Replay} *)

type replayer

val replay :
  ?config:Config.t ->
  Varan_kernel.Types.t ->
  path:string ->
  Variant.t list ->
  replayer
(** Launch the given variants as pure replay clients fed from the log:
    every streamed syscall returns the recorded result; nothing touches
    the outside world. Several variants replay the same log at once. *)

val replayed_events : replayer -> int

val replay_ring : replayer -> Varan_ringbuf.Event.t Varan_ringbuf.Ring.t
(** The ring the replay leader republishes the log into — exposed so a
    {!Varan_trace.Oracle} can be attached to a replayed execution and its
    report compared against the live run's. *)

val replay_crashes : replayer -> (int * string) list
(** Replay clients that diverged from the log or crashed — the
    "which versions are susceptible to this crash" use case. *)

(** {1 The Scribe baseline} *)

val scribe_api :
  ?cost:Varan_cycles.Cost.t ->
  Varan_kernel.Types.t ->
  Varan_kernel.Types.proc ->
  Varan_kernel.Api.t
(** A syscall API that models Scribe: native execution plus the in-kernel
    recording charge on every call (per-syscall cost and per-byte copy of
    the payloads). *)

module Stats = Varan_util.Stats

(* Connection-routing front layer for the sharded serving stack.

   Routing is sticky consistent hashing over shard indices: a fresh
   connection hashes to its primary shard and keeps that assignment for
   life — replaying a connection's events on one ring requires every
   request of the connection to reach the same session. The only thing
   that moves an assignment is shard health: when a shard is marked
   degraded, its connections drain to the first healthy shard along the
   probe sequence (deterministically — no RNG at route time), and fresh
   connections whose primary is degraded skip it the same way. *)

type t = {
  n : int;
  seed : int;
  healthy : bool array;
  assign : (int, int) Hashtbl.t; (* conn -> shard, sticky *)
  per_shard : int array; (* live assignments per shard *)
  mutable c_routed : int;
  mutable c_assigned : int;
  mutable c_drained : int;
  g_drained : Stats.counter;
}

type stats = {
  routed : int; (* route calls, total *)
  assigned : int; (* distinct connections ever assigned *)
  drained : int; (* sticky assignments moved off a degraded shard *)
  per_shard : int array;
}

let create ?scope ?(seed = 0) ~shards () =
  if shards < 1 then invalid_arg "Router.create: shards";
  {
    n = shards;
    seed;
    healthy = Array.make shards true;
    assign = Hashtbl.create 1024;
    per_shard = Array.make shards 0;
    c_routed = 0;
    c_assigned = 0;
    c_drained = 0;
    g_drained = Stats.scoped_counter ?scope "router.drained";
  }

let shards t = t.n
let healthy t s = t.healthy.(s)

(* Deterministic integer mix (fmix-style): route decisions must depend
   only on (conn, seed), never on arrival order. *)
let hash t conn =
  let h = ref (conn lxor (t.seed * 0x9E3779B9)) in
  h := !h lxor (!h lsr 16);
  h := !h * 0x85ebca6b;
  h := !h lxor (!h lsr 13);
  h := !h * 0xc2b2ae35;
  h := !h lxor (!h lsr 16);
  (!h land max_int) mod t.n

(* Primary shard, skipping degraded ones along the probe sequence. With
   every shard degraded the primary is returned anyway — the caller will
   observe the failure; inventing a different wrong answer helps nobody. *)
let pick t conn =
  let h = hash t conn in
  if t.healthy.(h) then h
  else begin
    let rec probe i =
      if i >= t.n then h
      else
        let s = (h + i) mod t.n in
        if t.healthy.(s) then s else probe (i + 1)
    in
    probe 1
  end

let route t ~conn =
  t.c_routed <- t.c_routed + 1;
  match Hashtbl.find_opt t.assign conn with
  | Some s when t.healthy.(s) -> s
  | prev ->
    let target = pick t conn in
    (match prev with
    | Some old ->
      t.per_shard.(old) <- t.per_shard.(old) - 1;
      t.c_drained <- t.c_drained + 1;
      Stats.incr_counter t.g_drained
    | None -> t.c_assigned <- t.c_assigned + 1);
    Hashtbl.replace t.assign conn target;
    t.per_shard.(target) <- t.per_shard.(target) + 1;
    target

let set_healthy t s up =
  if s < 0 || s >= t.n then invalid_arg "Router.set_healthy";
  t.healthy.(s) <- up

(* Eagerly move every sticky assignment off degraded shards (route does
   it lazily per connection; the shard layer calls this when a watchdog
   declares a shard down so the move shows up in stats at once). Returns
   the number of connections moved. *)
let rebalance t =
  let stale =
    Hashtbl.fold
      (fun conn s acc -> if t.healthy.(s) then acc else conn :: acc)
      t.assign []
  in
  List.iter (fun conn -> ignore (route t ~conn)) stale;
  List.length stale

let forget t ~conn =
  match Hashtbl.find_opt t.assign conn with
  | None -> ()
  | Some s ->
    t.per_shard.(s) <- t.per_shard.(s) - 1;
    Hashtbl.remove t.assign conn

let stats t =
  {
    routed = t.c_routed;
    assigned = t.c_assigned;
    drained = t.c_drained;
    per_shard = Array.copy t.per_shard;
  }

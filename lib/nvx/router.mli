(** Connection router for the sharded serving layer.

    Hashes client connections onto monitor shards, stickily: the same
    connection id always reaches the same shard for as long as that
    shard is healthy, because a connection's syscall stream must replay
    on a single session's ring. When the shard layer marks a shard
    degraded, its connections drain deterministically to the next
    healthy shard along the probe sequence and fresh connections skip
    it; routing never consults an RNG, so a run is reproducible from the
    (conn, seed) pairs alone. *)

type t

val create : ?scope:string -> ?seed:int -> shards:int -> unit -> t
(** [seed] perturbs the hash (default 0); [scope] prefixes the registry
    counter this router mirrors drain events into. *)

val shards : t -> int

val route : t -> conn:int -> int
(** The shard serving this connection. Sticky: repeated calls return the
    same shard until that shard is marked unhealthy, at which point the
    connection is re-homed (counted as a drain) to the first healthy
    shard along the probe sequence. With every shard unhealthy the
    primary hash shard is returned unchanged. *)

val set_healthy : t -> int -> bool -> unit
(** Mark a shard up/down. Routing skips unhealthy shards; marking a
    shard back up lets fresh connections land on it again (drained
    connections stay where they went — stickiness wins). *)

val healthy : t -> int -> bool

val rebalance : t -> int
(** Eagerly drain every sticky assignment off unhealthy shards (instead
    of lazily at the connection's next request); returns the number of
    connections moved. *)

val forget : t -> conn:int -> unit
(** Drop a closed connection's assignment. *)

type stats = {
  routed : int;  (** route calls, total *)
  assigned : int;  (** distinct connections ever assigned *)
  drained : int;  (** sticky assignments moved off a degraded shard *)
  per_shard : int array;  (** live assignments per shard *)
}

val stats : t -> stats

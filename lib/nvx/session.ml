module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Api = Varan_kernel.Api
module Types = Varan_kernel.Types
module Sysno = Varan_syscall.Sysno
module Args = Varan_syscall.Args
module Errno = Varan_syscall.Errno
module Cost = Varan_cycles.Cost
module Ring = Varan_ringbuf.Ring
module Event = Varan_ringbuf.Event
module Lanes = Varan_ringbuf.Lanes
module Pool = Varan_shmem.Pool
module Lamport = Varan_vclock.Lamport
module Interp = Varan_bpf.Interp
module Rules = Varan_bpf.Rules
module Rewriter = Varan_binary.Rewriter
module Rewrite_cache = Varan_binary.Rewrite_cache
module Codegen = Varan_binary.Codegen
module Image = Varan_binary.Image
module Vdso = Varan_binary.Vdso
module Prng = Varan_util.Prng
module Fault = Varan_fault.Plan
module Oracle = Varan_trace.Oracle
module Net_node = Varan_net.Node
module Link = Varan_net.Link
module Bridge = Varan_net.Bridge
module Prof = Varan_sim.Prof
module Phase = Varan_obs.Profile
module Trace = Varan_obs.Trace
module Flight = Varan_obs.Flight

type role = Leader | Follower

exception Divergence_kill of string

(* Internal: a follower unit discovered it is the new leader. *)
exception Promote

type vstats = {
  mutable syscalls : int;
  mutable local_calls : int;
  mutable events_published : int;
  mutable events_consumed : int;
  mutable stall_blocks : int;
  mutable stall_cycles : int64;
  mutable wait_charge_cycles : int64;
  mutable sys_cycles : int64;
  mutable divergences_executed : int;
  mutable divergences_skipped : int;
  mutable divergences_coalesced : int;
  mutable bpf_steps : int;
  mutable jump_dispatches : int;
  mutable trap_dispatches : int;
  mutable vdso_dispatches : int;
  mutable injected_stalls : int;
}

let fresh_vstats () =
  {
    syscalls = 0;
    local_calls = 0;
    events_published = 0;
    events_consumed = 0;
    stall_blocks = 0;
    stall_cycles = 0L;
    wait_charge_cycles = 0L;
    sys_cycles = 0L;
    divergences_executed = 0;
    divergences_skipped = 0;
    divergences_coalesced = 0;
    bpf_steps = 0;
    jump_dispatches = 0;
    trap_dispatches = 0;
    vdso_dispatches = 0;
    injected_stalls = 0;
  }

type vstate = {
  idx : int;
  variant : Variant.t;
  mutable vrole : role;
  mutable main_proc : Types.proc option;
  mutable unit_procs : Types.proc array;
  (* Resolved consumer handles per tuple stream (the follower's own pump
     queue in event-pump mode); [None] when not a consumer there. The
     handle is looked up once at subscription, not per stream access. *)
  mutable consumers : Event.t Ring.consumer option array;
  (* Per-tid event lanes demultiplexing tuple 0's consumer for
     multi-threaded variants (sharded sequencer, §3.3.3): sibling threads
     replay concurrently instead of serializing on the ring head. [None]
     when head-serialization applies (single unit, process-shaped,
     event-pump or lifecycle mode, or this variant leads). *)
  mutable lanes : Lanes.t option;
  (* Rewrite rules compiled to a closure on first divergence; the
     interpreter stays the reference semantics (identical outcome). *)
  mutable compiled_rules : (Interp.ctx -> Interp.outcome) option;
  mutable clocks : Lamport.t array; (* per tuple *)
  mutable promoted : bool array; (* per unit: takes the leader path *)
  mutable unit_tuple : int array; (* per unit: the tuple it belongs to *)
  mutable unit_tid : int array; (* per unit: its stream tid in the tuple *)
  (* Bytes of the head event already handed out to coalesced calls, keyed
     by tuple (§2.3's coalescing pattern: a buffered leader write serves
     several smaller follower writes). *)
  partial_consumed : (int, int) Hashtbl.t;
  (* One-shot flag set by a Drop_payload_grant injection: the next pool
     payload this follower decodes is read but not released. *)
  mutable drop_release : bool;
  mutable alive : bool;
  (* Lifecycle catch-up: while [catchup_until.(tu) >= 0] and the position
     has not reached it, stream reads on tuple [tu] are served from the
     session tape at [catchup_pos.(tu)]; the live ring consumer (already
     subscribed, cursor parked at the splice sequence) takes over when
     the recorded prefix runs out. *)
  mutable catchup_pos : int array; (* per tuple *)
  mutable catchup_until : int array; (* per tuple; -1 = live *)
  mutable incarnation : int; (* respawns of this variant's image *)
  (* Every process ever created for this variant's current incarnation,
     so a quarantine can kill the whole variant (fork children are not
     reachable from [unit_procs]). *)
  mutable all_procs : Types.proc list;
  mutable table : Syscall_table.t;
  mutable trap_share_c1000 : int;
  mutable rewrite : Rewriter.stats option;
  mutable trap_acc : int;
  (* The zygote's pristine copy of this variant's text: generated once,
     forked (reused) by every incarnation. The rewrite applied to it is
     served by the zygote's content-addressed cache. *)
  mutable pristine_code : Bytes.t option;
  mutable spawn_ns : float; (* wall-clock ns spent in prepare_image, total *)
  mutable spawn_preps : int; (* prepare_image runs (1 + respawns) *)
  st : vstats;
  mutable apis : Api.t list;
  (* Checkpoint/restore fast rejoin (rr-style): the watchdog arms
     [checkpoint_due] every [checkpoint_interval] cycles; the follower
     captures at its next syscall boundary through the program's
     checkpoint hook. [pending_restore] carries the snapshot a respawn
     chose, applied when the fresh incarnation's unit 0 starts. *)
  mutable checkpoint_due : bool;
  mutable last_checkpoint_at : int64;
  mutable pending_restore : Checkpoint.snapshot option;
}

type t = {
  k : Types.t;
  cfg : Config.t;
  cost : Cost.t;
  pool : Pool.t;
  mutable ntuples : int;
  (* Shared_ring mode: one ring per tuple. Event_pump mode: the leader's
     private queues, one per tuple. Tuples grow when processes fork. *)
  mutable rings : Event.t Ring.t array;
  (* Event_pump mode only: per-tuple, per-variant follower queues. *)
  pump_queues : Event.t Ring.t array array option;
  vstates : vstate array;
  mutable leader_idx : int;
  payload_refs : (int, int ref) Hashtbl.t;
  mutable zygote : Zygote.t option;
  (* The spawn fast path's rewrite cache — the same object the resident
     zygote owns, kept here so stats and prepare_image reach it without
     going through the (optional) zygote handle. *)
  rewrite_cache : Rewrite_cache.t;
  (* Monitor-wide site-id allocator: each prepared image (and vDSO patch)
     claims a contiguous id range, so cached rewrites are rebased to
     fresh ranges instead of re-run. *)
  mutable next_site_id : int;
  mutable crash_list : (int * string) list; (* reversed, bounded *)
  mutable crash_list_len : int;
  mutable crash_total : int; (* crashes ever, beyond the bounded list *)
  (* Follower lifecycle manager (None = the original terminal-removal
     behaviour). [tapes] is the per-tuple recorder feeding catch-up. *)
  mutable lifecycle : Lifecycle.t option;
  mutable tapes : Tape.t array;
  (* Follower checkpoint store — the same object the resident zygote
     owns, so snapshots survive the incarnations they were taken in. *)
  checkpoints : Checkpoint.t;
  mutable degraded : string option; (* native-execution fallback reason *)
  mutable max_lag : int;
  mutable waitlock_sleepers : int array;
      (* per tuple: followers asleep in a waitlock *)
  mutable tuple_ready : int array;
      (* per tuple: followers registered on a forked tuple *)
  ready_cond : E.Cond.cond;
      (* the coordinator's "wait until all followers fork" rendezvous *)
  mutable divergence_log : divergence_record list; (* reversed, bounded *)
  mutable divergence_log_len : int;
  mutable tracer : Varan_kernel.Strace.t option;
  fault : Fault.armed option;
  oracle : Oracle.t option;
  (* Distributed mode (config.net): the cross-node ring bridge and its
     bookkeeping. [None] keeps everything on one node. *)
  mutable net : net_state option;
  (* Observability: the session's flight recorder (keyed by the same
     scope string the stats registry uses) and the trace track its
     syscall spans and lifecycle instants render on. *)
  fl : Flight.t;
  trace_pid : int;
}

and divergence_record = {
  dv_variant : string;
  dv_follower_call : string;
  dv_leader_event : string;
  dv_verdict : string;
}

and net_state = {
  n_cfg : Config.net;
  n_local_node : Net_node.t;
  n_remote_node : Net_node.t;
  n_bridge : Bridge.t;
  (* The remote node's mirror of ring 0; replaced wholesale (fresh ring,
     new bridge epoch) each time a healed partition reattaches. *)
  mutable n_mirror : Event.t Ring.t;
  (* Global tuple-0 stream sequence of the mirror's sequence 0. *)
  mutable n_base : int;
  mutable n_epoch : int;
  (* Per variant index: lives on the remote node (consumes the mirror
     for tuple 0). The leader is always local. *)
  n_remote : bool array;
}

(* ------------------------------------------------------------------ *)
(* Payload reference counting                                          *)
(* ------------------------------------------------------------------ *)

let register_payload t (e : Event.t) readers =
  match e.Event.payload with
  | None -> ()
  | Some chunk ->
    if readers <= 0 then Pool.free t.pool chunk
    else begin
      Hashtbl.replace t.payload_refs chunk.Pool.addr (ref readers);
      match t.oracle with
      | Some o ->
        Oracle.note_payload_register o ~addr:chunk.Pool.addr ~readers
      | None -> ()
    end

let release_payload t (e : Event.t) =
  match e.Event.payload with
  | None -> ()
  | Some chunk -> (
    match Hashtbl.find_opt t.payload_refs chunk.Pool.addr with
    | None -> ()
    | Some r ->
      (match t.oracle with
      | Some o -> Oracle.note_payload_release o ~addr:chunk.Pool.addr
      | None -> ());
      decr r;
      if !r <= 0 then begin
        Hashtbl.remove t.payload_refs chunk.Pool.addr;
        Pool.free t.pool chunk
      end)

(* ------------------------------------------------------------------ *)
(* Stream access (shared ring vs event pump)                           *)
(* ------------------------------------------------------------------ *)

let tuple_of_unit vst u = vst.unit_tuple.(u)

let is_remote t idx =
  match t.net with Some ns -> ns.n_remote.(idx) | None -> false

(* Remote followers consume tuple 0 from the bridge's mirror ring, not
   the leader's ring; forked tuples are consumed directly (same-process
   license — the model is the bridge shipping their deltas too). *)
let follower_queue t vst tuple =
  match t.pump_queues with
  | Some pq -> pq.(tuple).(vst.idx)
  | None -> (
    match t.net with
    | Some ns when tuple = 0 && ns.n_remote.(vst.idx) -> ns.n_mirror
    | _ -> t.rings.(tuple))

let stream_publish_k t tuple make = Ring.publish_k t.rings.(tuple) make

(* Both streaming modes store the follower's resolved handle (shared ring
   or private pump queue) in [vst.consumers], so the per-event accessors
   are a single array read — no registry lookup, no mode dispatch. *)
let stream_consumer vst tuple =
  match vst.consumers.(tuple) with
  | Some c -> c
  | None -> invalid_arg "Session: not a stream consumer on this tuple"

(* Tape catch-up: a respawned follower consumes the recorded prefix
   [catchup_pos, catchup_until) of the tuple tape before touching its
   live ring consumer (whose cursor waits at the splice sequence). Tape
   indices coincide with stream sequence numbers — the tape records every
   published event from sequence 0. *)
let in_catchup vst tuple =
  tuple < Array.length vst.catchup_until
  && vst.catchup_until.(tuple) >= 0
  && vst.catchup_pos.(tuple) < vst.catchup_until.(tuple)

let catchup_done vst = Array.for_all (fun u -> u < 0) vst.catchup_until

(* The rejoin moment: the last recorded prefix ran out, the next read
   comes from the live ring at exactly the splice sequence. *)
let finish_rejoin t vst =
  match t.lifecycle with
  | None -> ()
  | Some lc ->
    let en = Lifecycle.entry lc vst.idx in
    if Lifecycle.state en = Lifecycle.Catching_up && catchup_done vst then
      Lifecycle.transition lc en Lifecycle.Healthy

(* Lanes demultiplex tuple 0 only: forked tuples are process children
   with a single unit each, so head-serialization costs them nothing. *)
let lanes_active vst tuple = tuple = 0 && vst.lanes <> None

(* The syscall-number half of the lane sync predicate (the kind half is
   {!Event.is_ordering_kind}): close frees a granted descriptor slot in
   every variant, and futex results encode the leader's lock-acquisition
   order — both are semantics only in global stream order. *)
let lane_sync_event (e : Event.t) =
  Event.is_ordering_kind e
  || e.Event.sysno = Sysno.to_int Sysno.Close
  || e.Event.sysno = Sysno.to_int Sysno.Futex

let stream_peek t vst tuple =
  if in_catchup vst tuple then
    Some (Tape.event_at t.tapes.(tuple) vst.catchup_pos.(tuple))
  else Ring.peek_h (stream_consumer vst tuple)

let stream_advance t vst tuple ~tid =
  if in_catchup vst tuple then begin
    vst.catchup_pos.(tuple) <- vst.catchup_pos.(tuple) + 1;
    if vst.catchup_pos.(tuple) >= vst.catchup_until.(tuple) then begin
      vst.catchup_until.(tuple) <- -1;
      finish_rejoin t vst
    end;
    (* Tape progress is invisible to the ring, but sibling units of this
       variant park on ring activity while waiting for their tid to reach
       the head — wake them. *)
    Ring.poke (follower_queue t vst tuple)
  end
  else
    match vst.lanes with
    | Some ln when tuple = 0 ->
      (* Consuming a lane event can unblock the demux (barrier lifted,
         lanes emptied): poke the ring so parked siblings re-pump. *)
      if Lanes.advance ln ~tid then Ring.poke t.rings.(tuple)
    | _ -> ignore (Ring.try_consume_h (stream_consumer vst tuple))

(* Coalescing state is per head event. With one shared cursor that means
   per tuple; with lanes every tid has its own head, so the key shards by
   tid (lanes imply a single tuple, so the key spaces cannot collide). *)
let partial_key vst tuple ~tid = if lanes_active vst tuple then tid else tuple

(* Both stream-wait entry points park the follower until leader events
   (or a poke) arrive: that park is the ring-wait phase of the cycle
   attribution, charged here because followers wait through
   [Ring.wait_activity], not the ring's own consume stall loop. *)
let stream_wait t vst tuple =
  let t0 = Prof.mark () in
  Ring.wait_activity (follower_queue t vst tuple);
  Prof.charge_wait Phase.ring_wait t0

let wait_activity_timeout t vst tuple budget =
  let t0 = Prof.mark () in
  let r = Ring.wait_activity_timeout (follower_queue t vst tuple) budget in
  Prof.charge_wait Phase.ring_wait t0;
  r

let stream_lag _t vst tuple =
  let live =
    match vst.consumers.(tuple) with Some c -> Ring.lag_h c | None -> 0
  in
  (* Routed-but-unreplayed lane events have passed the ring cursor but
     are still this follower's backlog. *)
  let live =
    match vst.lanes with
    | Some ln when tuple = 0 -> live + Lanes.outstanding ln
    | _ -> live
  in
  if in_catchup vst tuple then
    live + (vst.catchup_until.(tuple) - vst.catchup_pos.(tuple))
  else live

(* The consumer's stream position in global tuple-stream coordinates,
   tape mode included (used by the fault hooks, the checkpoint capture
   and the watchdog's progress ledger). A remote follower's mirror
   cursor is rebased by the mirror's global offset. *)
let stream_position t vst tuple =
  if in_catchup vst tuple then Some vst.catchup_pos.(tuple)
  else
    match vst.consumers.(tuple) with
    | None -> None
    | Some c ->
      let base =
        match t.net with
        | Some ns when tuple = 0 && ns.n_remote.(vst.idx) -> ns.n_base
        | _ -> 0
      in
      Some (base + Ring.cursor_h c)

(* Total backlog including events still upstream of the bridge — what
   the Healthy <-> Lagging report should see; for local followers this
   is exactly {!stream_lag}. The stall quarantine must NOT use it:
   during a partition the backlog is the link's fault, not the
   follower's (the bridge watchdog owns that case). *)
let stream_total_lag t vst tuple =
  let consumable = stream_lag t vst tuple in
  match t.net with
  | Some ns when tuple = 0 && ns.n_remote.(vst.idx) -> (
    match stream_position t vst tuple with
    | Some pos -> max consumable (Ring.published t.rings.(0) - pos)
    | None -> consumable)
  | _ -> consumable

(* A crashed follower dies with events still unread; its payload
   references go away with its cursor, or the chunks leak (caught by the
   oracle's pool-balance invariant). *)
let stream_remove t vst =
  (* Lane events already passed the ring cursor, so [Ring.unread_h] below
     cannot see them: release their payloads from the lanes themselves. *)
  (match vst.lanes with
  | Some ln ->
    List.iter (release_payload t) (Lanes.drain ln);
    vst.lanes <- None
  | None -> ());
  Array.iteri
    (fun tuple c ->
      match c with
      | None -> ()
      | Some c ->
        List.iter (release_payload t) (Ring.unread_h c);
        Ring.unsubscribe c;
        vst.consumers.(tuple) <- None)
    vst.consumers;
  match t.pump_queues with
  | None -> ()
  | Some pq ->
    (* Waking the private queues lets the pump notice the departure. *)
    Array.iter (fun per_tuple -> Ring.poke per_tuple.(vst.idx)) pq

(* ------------------------------------------------------------------ *)
(* Checkpoint capture (rr-style fast rejoin)                           *)
(* ------------------------------------------------------------------ *)

(* Tape retention floor: the oldest tuple-0 position any recoverable
   variant could still need. A follower with a checkpoint restores from
   at most its newest one; a follower without any (or one mid-catch-up
   below its checkpoint) pins the floor lower. With no lifecycle, or any
   follower yet to checkpoint, the floor is 0 and nothing is retired —
   the zero-checkpoint session keeps the full tape and falls back to a
   full replay. *)
let checkpoint_floor t =
  match t.lifecycle with
  | None -> 0
  | Some lc ->
    let floor = ref max_int in
    Array.iter
      (fun vst ->
        let st = Lifecycle.state (Lifecycle.entry lc vst.idx) in
        if
          vst.idx <> t.leader_idx
          && st <> Lifecycle.Dead
          (* A partition has no deadline: an [Unreachable] follower must
             not pin the tape floor forever. If it outlives the retained
             prefix it dies clean at respawn time ([Truncated] path),
             never replays a wrong prefix. *)
          && st <> Lifecycle.Unreachable
        then begin
          let c =
            match Checkpoint.latest_seq t.checkpoints ~idx:vst.idx with
            | Some s -> s
            | None -> 0
          in
          let c = if in_catchup vst 0 then min c vst.catchup_pos.(0) else c in
          floor := min !floor c
        end)
      t.vstates;
    if !floor = max_int then 0 else !floor

(* Called from the program's checkpoint hook at a syscall boundary (task
   context — no call in flight, [encode] observes a quiescent program).
   Captures only when the watchdog armed one, and only the shapes the
   restore path can resume: unit 0 of a live single-unit follower with no
   residual coalescing state (a nonempty [partial_consumed] would serve
   already-consumed bytes twice after a restore). Each capture advances
   the tape retention floor and retires segments below it. *)
let maybe_capture_checkpoint t vst ~unit_idx ~incarnation proc encode =
  if
    vst.checkpoint_due && vst.alive
    && vst.incarnation = incarnation
    && unit_idx = 0
    && vst.variant.Variant.program.Variant.units = 1
    && vst.idx <> t.leader_idx
    && (not vst.promoted.(unit_idx))
    && Hashtbl.length vst.partial_consumed = 0
  then begin
    match stream_position t vst 0 with
    | None -> ()
    | Some seq ->
      (match Checkpoint.latest_seq t.checkpoints ~idx:vst.idx with
      | Some s when s >= seq ->
        (* Nothing consumed since the last capture; arming stays cheap. *)
        vst.checkpoint_due <- false;
        vst.last_checkpoint_at <- E.now_cycles ()
      | _ ->
        let state = encode () in
        let snap =
          {
            Checkpoint.cp_idx = vst.idx;
            cp_seq = seq;
            cp_clock = Lamport.current vst.clocks.(0);
            cp_fds = K.snapshot_fds proc;
            cp_state = state;
          }
        in
        (* The capture's cost is copying the program state out. *)
        E.consume
          (Cost.copy_cycles ~rate_c100:t.cost.Cost.copy_per_byte_c100
             (Bytes.length state));
        Checkpoint.store t.checkpoints snap;
        Flight.note_checkpoint t.fl seq;
        (match t.oracle with
        | Some o -> Oracle.note_checkpoint o ~idx:vst.idx ~seq
        | None -> ());
        vst.checkpoint_due <- false;
        vst.last_checkpoint_at <- E.now_cycles ();
        if Array.length t.tapes > 0 then
          Tape.retire t.tapes.(0) ~keep_from:(checkpoint_floor t))
  end

(* ------------------------------------------------------------------ *)
(* Dynamic tuples and units (process forks)                            *)
(* ------------------------------------------------------------------ *)

let grow_array a len fill =
  if Array.length a >= len then a
  else begin
    let bigger = Array.make len fill in
    Array.blit a 0 bigger 0 (Array.length a);
    bigger
  end

(* Ring capacity after any Ring_pressure injection in the fault plan. *)
let effective_ring_size (cfg : Config.t) =
  match Fault.ring_shrink cfg.Config.fault_plan with
  | Some n -> max 1 (min n cfg.Config.ring_size)
  | None -> cfg.Config.ring_size

(* Allocate a fresh tuple: its own ring buffer and bookkeeping slots.
   Only meaningful in shared-ring mode; the event-pump ablation predates
   multi-process support, as did the prototype's first design. *)
let new_tuple t =
  (match t.pump_queues with
  | Some _ -> invalid_arg "Session: fork is unsupported in event-pump mode"
  | None -> ());
  let idx = t.ntuples in
  t.ntuples <- idx + 1;
  let fresh =
    Ring.create ~size:(effective_ring_size t.cfg) (Printf.sprintf "ring%d" idx)
  in
  (match t.oracle with
  | Some o ->
    Oracle.attach_ring o ~tuple:idx fresh;
    Ring.set_stall_hook fresh
      (Some (fun cids -> Oracle.note_gate_wait o ~tuple:idx ~cids))
  | None -> ());
  t.rings <- grow_array t.rings t.ntuples fresh;
  t.rings.(idx) <- fresh;
  (if t.lifecycle <> None then begin
     let tape = Tape.create () in
     t.tapes <- grow_array t.tapes t.ntuples tape;
     t.tapes.(idx) <- tape
   end);
  t.waitlock_sleepers <- grow_array t.waitlock_sleepers t.ntuples 0;
  t.tuple_ready <- grow_array t.tuple_ready t.ntuples 0;
  Array.iter
    (fun vst ->
      vst.consumers <- grow_array vst.consumers t.ntuples None;
      vst.consumers.(idx) <- None;
      vst.clocks <- grow_array vst.clocks t.ntuples (Lamport.create ());
      vst.clocks.(idx) <- Lamport.create ();
      vst.catchup_pos <- grow_array vst.catchup_pos t.ntuples 0;
      vst.catchup_until <- grow_array vst.catchup_until t.ntuples (-1))
    t.vstates;
  idx

(* Allocate a unit slot in a variant (a forked child process). *)
let new_unit vst ~tuple ~tid ~promoted =
  let u = Array.length vst.unit_tuple in
  vst.unit_tuple <- grow_array vst.unit_tuple (u + 1) tuple;
  vst.unit_tid <- grow_array vst.unit_tid (u + 1) tid;
  vst.promoted <- grow_array vst.promoted (u + 1) promoted;
  vst.unit_tuple.(u) <- tuple;
  vst.unit_tid.(u) <- tid;
  vst.promoted.(u) <- promoted;
  u

let poke_all t =
  Array.iter Ring.poke t.rings;
  (match t.net with Some ns -> Ring.poke ns.n_mirror | None -> ());
  match t.pump_queues with
  | None -> ()
  | Some pq -> Array.iter (fun per_tuple -> Array.iter Ring.poke per_tuple) pq

(* ------------------------------------------------------------------ *)
(* Crash handling and failover (§5.1)                                  *)
(* ------------------------------------------------------------------ *)

let alive_followers t =
  Array.fold_left
    (fun n v -> if v.alive && v.idx <> t.leader_idx then n + 1 else n)
    0 t.vstates

(* ------------------------------------------------------------------ *)
(* Follower lifecycle: quarantine, respawn, graceful degradation        *)
(* ------------------------------------------------------------------ *)

(* Native-speed fallback: record the reason instead of raising. The
   leader keeps executing at full speed (with zero stream consumers it
   pays no recording cost beyond the lifecycle tape, which is retained
   so fresh followers can still be provisioned from it). *)
let degrade t reason =
  (match t.lifecycle with
  | Some lc -> Lifecycle.note_degraded lc reason
  | None -> ());
  match t.degraded with
  | Some _ -> () (* first reason wins *)
  | None ->
    t.degraded <- Some reason;
    let at = E.now t.k.Types.eng in
    Flight.record t.fl ~at "session.degrade" reason;
    ignore
      (Flight.maybe_dump t.fl ~at ~reason:("session degraded: " ^ reason));
    Logs.info (fun m -> m "varan: degrading to native execution: %s" reason)

(* Is any follower mid-recovery (quarantined, backing off, or replaying
   the tape)? Degradation decisions must not fire while one is. *)
let recovery_pending t =
  match t.lifecycle with
  | None -> false
  | Some lc ->
    Array.exists
      (fun v ->
        v.idx <> t.leader_idx
        &&
        match Lifecycle.state (Lifecycle.entry lc v.idx) with
        | Lifecycle.Quarantined | Lifecycle.Respawning
        | Lifecycle.Catching_up -> true
        | _ -> false)
      t.vstates

let check_degraded_floor t =
  match t.lifecycle with
  | None -> ()
  | Some lc ->
    let p = Lifecycle.policy lc in
    let n = Lifecycle.recoverable_followers lc ~leader_idx:t.leader_idx in
    if n < p.Lifecycle.min_followers then
      degrade t
        (Printf.sprintf "recoverable followers (%d) below min_followers (%d)"
           n p.Lifecycle.min_followers)

let kill_variant t vst signo =
  List.iter (fun p -> K.kill_proc t.k p signo) vst.all_procs

(* Transition a follower into quarantine (pure bookkeeping, callable
   from the watchdog's scheduler context). Returns false when the entry
   is already quarantined, respawning or dead — the caller must not
   double-quarantine. *)
let begin_quarantine t vst ~reason =
  match t.lifecycle with
  | None -> false
  | Some lc ->
    let en = Lifecycle.entry lc vst.idx in
    (match Lifecycle.state en with
    | Lifecycle.Quarantined | Lifecycle.Respawning | Lifecycle.Unreachable
    | Lifecycle.Dead -> false
    | Lifecycle.Healthy | Lifecycle.Lagging | Lifecycle.Catching_up ->
      en.Lifecycle.e_reason <- reason;
      (match stream_position t vst 0 with
      | Some s -> en.Lifecycle.e_quarantine_seq <- s
      | None -> ());
      Flight.record t.fl ~at:(E.now t.k.Types.eng) "lifecycle.quarantine"
        (Printf.sprintf "variant %d: %s" vst.idx reason);
      Lifecycle.transition lc en Lifecycle.Quarantined;
      true)

(* The tuples the variant's initial units subscribe to — what a respawn
   resubscribes; forked tuples are re-entered when their Ev_fork replays
   from the tape. *)
let initial_tuples vst =
  let shape = vst.variant.Variant.program in
  match shape.Variant.unit_kind with
  | Variant.Thread -> [ 0 ]
  | Variant.Process -> List.init shape.Variant.units Fun.id

(* Rebuild a quarantined follower: reset the monitor state to its launch
   shape, subscribe the initial tuples with tape catch-up ranges ending
   at the current ring head (the splice sequence), and ask the zygote for
   a fresh process image. Task context. *)
let respawn t vst =
  match t.lifecycle with
  | None -> ()
  | Some lc ->
    let en = Lifecycle.entry lc vst.idx in
    let from_unreachable = Lifecycle.state en = Lifecycle.Unreachable in
    if not (from_unreachable || Lifecycle.state en = Lifecycle.Quarantined)
    then ()
    else if Lifecycle.degraded lc <> None then begin
      (* The session degraded while this respawn was backing off (or the
         partition was healing); a late rejoin would resurrect NVX behind
         the report's back. *)
      en.Lifecycle.e_reason <- "respawn cancelled: session degraded";
      Lifecycle.transition lc en Lifecycle.Dead;
      ignore
        (Flight.maybe_dump t.fl ~at:(E.now t.k.Types.eng)
           ~reason:
             (Printf.sprintf "follower %d dead: %s" vst.idx
                en.Lifecycle.e_reason))
    end
    else begin
      let remote = is_remote t vst.idx in
      (* The global tuple-0 sequence this rejoin will splice at: for a
         remote follower that is the mirror's head in global coordinates
         (the bridge was reattached at [n_base] before any heal-respawn
         runs), never the local ring's head — a checkpoint above the
         mirror head would leave the restored state ahead of the splice. *)
      let rejoin_head =
        match t.net with
        | Some ns when remote -> ns.n_base + Ring.published ns.n_mirror
        | _ -> Ring.published t.rings.(0)
      in
      let shape = vst.variant.Variant.program in
      let nunits = shape.Variant.units in
      (* rr-style fast rejoin: restore the newest retained checkpoint and
         replay only the tape delta behind it. Only single-unit variants
         are restorable — the snapshot covers exactly unit 0's program
         state; anything else replays the full tape. A checkpoint below
         [Tape.base] was retired and is unusable. *)
      let restore =
        if nunits = 1 && Array.length t.tapes > 0 then
          match
            Checkpoint.latest_at_most t.checkpoints ~idx:vst.idx
              ~seq:rejoin_head
          with
          | Some cp when cp.Checkpoint.cp_seq >= Tape.base t.tapes.(0) ->
            Some cp
          | _ -> None
        else None
      in
      let start0 =
        match restore with Some cp -> cp.Checkpoint.cp_seq | None -> 0
      in
      if
        Array.length t.tapes > 0
        && rejoin_head > start0
        && start0 < Tape.base t.tapes.(0)
      then begin
        (* The recorded prefix this follower needs was retired while it
           was away (e.g. a partition outliving the retention floor — the
           floor deliberately ignores [Unreachable] parks). A truncated
           replay would be a wrong prefix; die clean instead. *)
        en.Lifecycle.e_reason <-
          Printf.sprintf
            "tape truncated below rejoin: need seq %d, retained base %d"
            start0
            (Tape.base t.tapes.(0));
        Lifecycle.transition lc en Lifecycle.Dead;
        ignore
          (Flight.maybe_dump t.fl ~at:(E.now t.k.Types.eng)
             ~reason:
               (Printf.sprintf "follower %d dead: %s" vst.idx
                  en.Lifecycle.e_reason));
        check_degraded_floor t
      end
      else begin
      Lifecycle.transition lc en Lifecycle.Respawning;
      (* An [Unreachable] park burns no restart budget: the follower was
         presumed healthy behind a broken wire. *)
      if not from_unreachable then begin
        en.Lifecycle.e_restarts <- en.Lifecycle.e_restarts + 1;
        match t.oracle with
        | Some o ->
          Oracle.note_respawn o ~idx:vst.idx
            ~max_restarts:(Lifecycle.policy lc).Lifecycle.max_restarts
        | None -> ()
      end;
      vst.vrole <- Follower;
      vst.table <- Syscall_table.follower;
      vst.main_proc <- None;
      vst.unit_procs <- [||];
      vst.all_procs <- [];
      vst.apis <- [];
      vst.consumers <- Array.make t.ntuples None;
      vst.clocks <- Array.init t.ntuples (fun _ -> Lamport.create ());
      vst.promoted <- Array.make nunits false;
      vst.unit_tuple <-
        (match shape.Variant.unit_kind with
        | Variant.Thread -> Array.make nunits 0
        | Variant.Process -> Array.init nunits Fun.id);
      vst.unit_tid <- Array.init nunits Fun.id;
      Hashtbl.reset vst.partial_consumed;
      vst.drop_release <- false;
      vst.incarnation <- vst.incarnation + 1;
      vst.catchup_pos <- Array.make t.ntuples 0;
      vst.catchup_until <- Array.make t.ntuples (-1);
      vst.alive <- true;
      vst.pending_restore <- None;
      (* The live consumer's cursor parks at the ring head; the recorded
         prefix [start, head) replays from the tape — [start] is 0 or the
         restored checkpoint's position — so the splice lands at exactly
         the head sequence and the Lamport clock arrives at the live
         stream's stamp. *)
      List.iter
        (fun tu ->
          let remote_tu = remote && tu = 0 in
          let ring =
            match t.net with
            | Some ns when remote_tu -> ns.n_mirror
            | _ -> t.rings.(tu)
          in
          let base =
            match t.net with
            | Some ns when remote_tu -> ns.n_base
            | _ -> 0
          in
          let head = base + Ring.published ring in
          let c = Ring.subscribe ring in
          vst.consumers.(tu) <- Some c;
          let start =
            match restore with
            | Some cp when tu = 0 ->
              Lamport.force vst.clocks.(tu) cp.Checkpoint.cp_clock;
              vst.pending_restore <- Some cp;
              Checkpoint.note_restore t.checkpoints
                ~delta:(head - cp.Checkpoint.cp_seq);
              (match t.oracle with
              | Some o ->
                Oracle.note_restore o ~idx:vst.idx ~seq:cp.Checkpoint.cp_seq
                  ~splice_seq:head
              | None -> ());
              cp.Checkpoint.cp_seq
            | _ -> 0
          in
          if head > start then begin
            vst.catchup_pos.(tu) <- start;
            vst.catchup_until.(tu) <- head
          end;
          (* The mirror ring is outside the oracle's tuple map (its cids
             collide with the local ring's); remote rejoins are audited
             end to end by the harness digests instead. *)
          match t.oracle with
          | Some o when not remote_tu ->
            Oracle.note_rejoin o ~idx:vst.idx ~tuple:tu
              ~cid:(Ring.consumer_cid c) ~splice_seq:head
          | _ -> ())
        (initial_tuples vst);
      (* Restart the watchdog's progress ledger: the fresh incarnation
         gets a full stall timeout before its first consume, instead of
         inheriting the stale timestamp that just condemned its
         predecessor. *)
      en.Lifecycle.e_last_cursor <- vst.st.events_consumed;
      en.Lifecycle.e_last_progress <- E.now_cycles ();
      Lifecycle.transition lc en Lifecycle.Catching_up;
      Flight.record t.fl ~at:(E.now t.k.Types.eng) "lifecycle.respawn"
        (Printf.sprintf "variant %d incarnation %d, splice at %d" vst.idx
           vst.incarnation rejoin_head);
      (* An empty stream means there is nothing to catch up on. *)
      finish_rejoin t vst;
      (* If the leader died while this follower was out, adopt the role:
         the catch-up still replays the recorded prefix, and the variant
         promotes itself once the stream drains. A remote follower never
         leads — it cannot publish into the local ring. *)
      if (not t.vstates.(t.leader_idx).alive) && not remote then
        t.leader_idx <- vst.idx;
      (match t.zygote with
      | Some z -> ignore (Zygote.fork_request z vst.variant.Variant.v_name)
      | None -> ())
      end
    end

(* The effectful half of a quarantine; the entry is already in state
   [Quarantined] (via {!begin_quarantine}). Removes the ring consumers —
   releasing their unread payload grants, so the leader's gate can never
   again wait on this follower — kills the variant's processes, and
   either schedules a backed-off respawn or declares the follower dead
   when the restart budget is spent. Task context. *)
let quarantine_work t vst =
  match t.lifecycle with
  | None -> ()
  | Some lc ->
    let en = Lifecycle.entry lc vst.idx in
    let p = Lifecycle.policy lc in
    (match t.oracle with
    | Some o ->
      Array.iteri
        (fun tu c ->
          match c with
          | Some c when not (is_remote t vst.idx && tu = 0) ->
            (* Mirror-ring consumers live outside the oracle's tuple
               map; noting their cids would collide with ring 0's. *)
            Oracle.note_quarantine o ~idx:vst.idx ~tuple:tu
              ~cid:(Ring.consumer_cid c)
          | _ -> ())
        vst.consumers
    | None -> ());
    vst.alive <- false;
    stream_remove t vst;
    Array.fill vst.catchup_until 0 (Array.length vst.catchup_until) (-1);
    kill_variant t vst Varan_kernel.Flags.sigkill;
    (* The leader may be parked on this follower's gate or a fork
       rendezvous; both re-examine the world when woken. *)
    poke_all t;
    E.Cond.broadcast t.ready_cond;
    if en.Lifecycle.e_restarts >= p.Lifecycle.max_restarts then begin
      Lifecycle.transition lc en Lifecycle.Dead;
      ignore
        (Flight.maybe_dump t.fl ~at:(E.now t.k.Types.eng)
           ~reason:
             (Printf.sprintf
                "follower %d dead: restart budget exhausted (%s)" vst.idx
                en.Lifecycle.e_reason));
      check_degraded_floor t
    end
    else begin
      let delay =
        Lifecycle.backoff_delay p ~restarts:en.Lifecycle.e_restarts
      in
      en.Lifecycle.e_respawn_due <-
        Int64.add (E.now_cycles ()) (Int64.of_int delay);
      ignore
        (E.spawn_here
           ~name:(Printf.sprintf "lifecycle-respawn%d" vst.idx)
           (fun () ->
             (* A sleeping task, not a ticker entry: the pending respawn
                keeps the engine alive, so every quarantine resolves
                (rejoin or death) before the run goes quiescent. *)
             E.sleep delay;
             respawn t vst))
    end

(* ------------------------------------------------------------------ *)
(* Link degradation: Unreachable park and healed-partition rejoin       *)
(* ------------------------------------------------------------------ *)

(* Park every live remote follower in [Unreachable] (pure bookkeeping,
   callable from the watchdog's scheduler context). No restart budget
   burns — the follower is presumed healthy behind a broken wire.
   Returns the parked vstates for {!unreachable_work}. *)
let begin_unreachable t ~reason =
  match (t.net, t.lifecycle) with
  | Some ns, Some lc ->
    Array.fold_left
      (fun acc vst ->
        if ns.n_remote.(vst.idx) && vst.idx <> t.leader_idx && vst.alive
        then begin
          let en = Lifecycle.entry lc vst.idx in
          match Lifecycle.state en with
          | Lifecycle.Healthy | Lifecycle.Lagging | Lifecycle.Catching_up ->
            en.Lifecycle.e_reason <- reason;
            (match stream_position t vst 0 with
            | Some s -> en.Lifecycle.e_quarantine_seq <- s
            | None -> ());
            Lifecycle.transition lc en Lifecycle.Unreachable;
            vst :: acc
          | _ -> acc
        end
        else acc)
      [] t.vstates
  | _ -> []

(* The effectful half of a link-degradation park: detach the bridge —
   its local consumer unsubscribes, so the leader's gate is freed even
   when no follower was left to park — then remove the parked followers'
   consumers and kill their processes. The oracle is not told: an
   [Unreachable] park is not a quarantine, and mirror-ring cids live
   outside its tuple map. Task context. *)
let unreachable_work t parked =
  match t.net with
  | None -> ()
  | Some ns ->
    Bridge.detach ns.n_bridge;
    List.iter
      (fun vst ->
        vst.alive <- false;
        stream_remove t vst;
        Array.fill vst.catchup_until 0 (Array.length vst.catchup_until) (-1);
        kill_variant t vst Varan_kernel.Flags.sigkill)
      parked;
    poke_all t;
    E.Cond.broadcast t.ready_cond;
    check_degraded_floor t

(* A partition healed: the first ack to reach the detached bridge fires
   this (via [on_heal], at most once per detached period). Start a new
   bridge epoch on a fresh mirror ring and walk every parked follower
   back in through the checkpoint + tape-delta door. A degraded session
   skips the heal: the parked followers stay [Unreachable] terminally
   rather than resurrecting NVX behind the report's back. Task context. *)
let heal_work t =
  match (t.net, t.lifecycle) with
  | Some ns, Some lc when Bridge.detached ns.n_bridge ->
    let remote_future vst =
      ns.n_remote.(vst.idx)
      && vst.idx <> t.leader_idx
      && Lifecycle.state (Lifecycle.entry lc vst.idx) <> Lifecycle.Dead
    in
    if t.degraded <> None || not (Array.exists remote_future t.vstates)
    then
      (* Nobody will ever rejoin through this bridge (degraded session,
         or every remote follower is terminally dead): kill the probe
         timers so the engine can go quiescent. Parked followers stay
         [Unreachable] terminally — never a hang, never a wrong rejoin. *)
      begin
        Bridge.abandon ns.n_bridge;
        Flight.set_link t.fl "abandoned";
        Flight.record t.fl
          ~at:(E.now t.k.Types.eng)
          "link.abandoned" "no remote follower will rejoin"
      end
    else begin
      ns.n_epoch <- ns.n_epoch + 1;
      let head = Ring.published t.rings.(0) in
      let mirror =
        Ring.create ~size:(effective_ring_size t.cfg)
          (Printf.sprintf "mirror%d" ns.n_epoch)
      in
      ns.n_mirror <- mirror;
      ns.n_base <- head;
      (* No engine effects between reading [head] and reattaching: the
         new mirror's sequence 0 must be exactly the sequence the new
         local consumer subscribes at. *)
      Bridge.reattach ns.n_bridge ~mirror ~remote_base:head;
      Flight.set_link t.fl
        (Printf.sprintf "reattached: epoch %d, base %d" ns.n_epoch head);
      Flight.record t.fl
        ~at:(E.now t.k.Types.eng)
        "link.heal"
        (Printf.sprintf "epoch %d base %d" ns.n_epoch head);
      Array.iter
        (fun vst ->
          if ns.n_remote.(vst.idx) && vst.idx <> t.leader_idx then begin
            let en = Lifecycle.entry lc vst.idx in
            if Lifecycle.state en = Lifecycle.Unreachable then respawn t vst
          end)
        t.vstates
    end
  | _ -> ()

(* The watchdog: runs in scheduler context from the engine ticker. Pure
   reads and state transitions only; the effectful quarantine is
   delegated to a spawned task. *)
let watchdog_tick t =
  (match t.lifecycle with
  | None -> ()
  | Some lc ->
    let p = Lifecycle.policy lc in
    let now = E.now t.k.Types.eng in
    (* Link health first: a bridge whose in-flight window has not moved
       for [unreachable_after] means the remote node is partitioned
       away. Park its followers in [Unreachable] — distinct from a sick
       follower's quarantine: no restart budget burns, and the respawn
       waits for a heal probe instead of a backoff timer. The threshold
       sits above [stall_timeout] so an individually-stuck remote
       follower is quarantined (its problem) before the link is declared
       down (everyone's problem). *)
    (match t.net with
    | Some ns when not (Bridge.detached ns.n_bridge) -> (
      match Bridge.stalled_since ns.n_bridge with
      | Some t0
        when Int64.sub now t0
             >= Int64.of_int ns.n_cfg.Config.unreachable_after ->
        let reason =
          Printf.sprintf "link degraded: no ack for %Ld cycles"
            (Int64.sub now t0)
        in
        Flight.set_link t.fl reason;
        Flight.record t.fl ~at:now "link.degraded" reason;
        let parked = begin_unreachable t ~reason in
        ignore
          (E.spawn t.k.Types.eng ~name:"lifecycle-unreachable" (fun () ->
               unreachable_work t parked))
      | _ -> ())
    | _ -> ());
    Array.iter
      (fun vst ->
        if vst.idx <> t.leader_idx && vst.alive then begin
          let en = Lifecycle.entry lc vst.idx in
          match Lifecycle.state en with
          | Lifecycle.Quarantined | Lifecycle.Respawning
          | Lifecycle.Unreachable | Lifecycle.Dead ->
            ()
          | Lifecycle.Healthy | Lifecycle.Lagging | Lifecycle.Catching_up ->
            (* Progress = events consumed across every tuple (tape
               replay included); lag = the worst per-tuple backlog. *)
            let progress = vst.st.events_consumed in
            if progress > en.Lifecycle.e_last_cursor then begin
              en.Lifecycle.e_last_cursor <- progress;
              en.Lifecycle.e_last_progress <- now
            end;
            (* Arm a checkpoint; the follower captures at its next
               syscall boundary (the effectful snapshot runs in its task
               context, never here). *)
            if
              p.Lifecycle.checkpoint_interval > 0
              && Int64.sub now vst.last_checkpoint_at
                 >= Int64.of_int p.Lifecycle.checkpoint_interval
            then vst.checkpoint_due <- true;
            (* [lag] is the total backlog (bridge-upstream events
               included) and drives the Healthy <-> Lagging report;
               [consumable] is what the follower could actually consume
               right now. *)
            let lag = ref 0 and consumable = ref 0 in
            for tu = 0 to t.ntuples - 1 do
              lag := max !lag (stream_total_lag t vst tu);
              consumable := max !consumable (stream_lag t vst tu)
            done;
            let lag = !lag and consumable = !consumable in
            (match Lifecycle.state en with
            | Lifecycle.Healthy when lag > p.Lifecycle.lag_threshold ->
              en.Lifecycle.e_reason <-
                Printf.sprintf "lag %d above threshold %d" lag
                  p.Lifecycle.lag_threshold;
              Lifecycle.transition lc en Lifecycle.Lagging
            | Lifecycle.Lagging when lag <= p.Lifecycle.lag_threshold ->
              Lifecycle.transition lc en Lifecycle.Healthy
            | _ -> ());
            let stalled_for = Int64.sub now en.Lifecycle.e_last_progress in
            (* The stall trip counts only consumable backlog: a remote
               follower starved because the bridge is partitioned has its
               stall upstream of it — those cycles are attributed to the
               link (handled above), never to the follower, so a healed
               follower is not condemned for time it spent unreachable. *)
            if
              consumable > 0
              && stalled_for >= Int64.of_int p.Lifecycle.stall_timeout
            then begin
              (* The watchdog trip always passes through Lagging. *)
              if Lifecycle.state en = Lifecycle.Healthy then
                Lifecycle.transition lc en Lifecycle.Lagging;
              let reason =
                Printf.sprintf "stalled: lag %d, no progress for %Ld cycles"
                  consumable stalled_for
              in
              if begin_quarantine t vst ~reason then
                ignore
                  (E.spawn t.k.Types.eng
                     ~name:(Printf.sprintf "lifecycle-quarantine%d" vst.idx)
                     (fun () -> quarantine_work t vst))
            end
        end)
      t.vstates);
  true

(* ------------------------------------------------------------------ *)
(* Crash handling and failover (§5.1)                                  *)
(* ------------------------------------------------------------------ *)

let crash_list_limit = 64

let handle_crash t vst exn =
  if vst.alive then begin
    vst.alive <- false;
    t.crash_total <- t.crash_total + 1;
    if t.crash_list_len < crash_list_limit then begin
      t.crash_list <- (vst.idx, Printexc.to_string exn) :: t.crash_list;
      t.crash_list_len <- t.crash_list_len + 1
    end;
    (let at = E.now t.k.Types.eng in
     match exn with
     | Divergence_kill msg ->
       Flight.record t.fl ~at "divergence.kill"
         (Printf.sprintf "variant %d (%s): %s" vst.idx
            vst.variant.Variant.v_name msg);
       ignore (Flight.maybe_dump t.fl ~at ~reason:("divergence: " ^ msg))
     | _ ->
       Flight.record t.fl ~at "variant.crash"
         (Printf.sprintf "variant %d (%s): %s" vst.idx
            vst.variant.Variant.v_name (Printexc.to_string exn)));
    (match t.oracle with
    | Some o ->
      Oracle.note_crash o ~idx:vst.idx ~was_leader:(t.leader_idx = vst.idx)
    | None -> ());
    if t.lifecycle <> None && vst.idx <> t.leader_idx then
      (* A crashed follower under the lifecycle manager is quarantined
         with intent to respawn, not removed for good. The notification
         delay still applies (SIGSEGV handler -> control socket). *)
      ignore
        (E.spawn_here
           ~name:(Printf.sprintf "lifecycle-quarantine%d" vst.idx)
           (fun () ->
             E.consume t.cost.Cost.failover_notify;
             if
               begin_quarantine t vst
                 ~reason:("crashed: " ^ Printexc.to_string exn)
             then quarantine_work t vst))
    else
      (* The SIGSEGV handler notifies the coordinator over the control
         socket; the coordinator reacts after the notification delay. *)
      ignore
        (E.spawn_here ~name:"coordinator-failover" (fun () ->
             E.consume t.cost.Cost.failover_notify;
             (match vst.main_proc with
             | Some proc -> K.kill_proc t.k proc Varan_kernel.Flags.sigsegv
             | None -> ());
             stream_remove t vst;
             (match t.lifecycle with
             | Some lc ->
               (* A dead leader never rejoins: mark it terminal so the
                  degradation floor sees the truth. *)
               let en = Lifecycle.entry lc vst.idx in
               en.Lifecycle.e_reason <- "crashed while leading";
               if Lifecycle.state en <> Lifecycle.Dead then
                 Lifecycle.transition lc en Lifecycle.Dead
             | None -> ());
             (* Leadership is re-examined when the notification arrives,
                not frozen at crash time: crashes race the notification
                delay, and a decision based on stale state could hand the
                leader role to a variant that died in the meantime (e.g.
                the last follower crashing while an earlier leader
                crash's election is still in flight). *)
             if not t.vstates.(t.leader_idx).alive then begin
               (* Elect the alive follower with the smallest internal id.
                  Remote followers are not electable: a leader must
                  publish into the local ring. *)
               let candidate =
                 Array.fold_left
                   (fun acc v ->
                     if v.alive && not (is_remote t v.idx) then
                       match acc with
                       | None -> Some v
                       | Some best when v.idx < best.idx -> Some v
                       | some -> some
                     else acc)
                   None t.vstates
               in
               match candidate with
               | Some v -> t.leader_idx <- v.idx
               | None ->
                 (* Nobody left to lead. Unless a quarantined follower is
                    still on its way back, the session is over: report it
                    as degradation, not as an escaping exception. *)
                 if not (recovery_pending t) then degrade t "no leader remains"
             end;
             (match t.lifecycle with
             | Some _ -> check_degraded_floor t
             | None ->
               if
                 t.vstates.(t.leader_idx).alive
                 && alive_followers t = 0
                 && vst.idx <> t.leader_idx
               then degrade t "all followers dead");
             poke_all t;
             E.Cond.broadcast t.ready_cond))
  end

(* ------------------------------------------------------------------ *)
(* Cost charging helpers                                               *)
(* ------------------------------------------------------------------ *)

let charge_interception t vst (disp : Syscall_table.disposition) sysno =
  let c = t.cost in
  match disp with
  | Syscall_table.Virtual ->
    vst.st.vdso_dispatches <- vst.st.vdso_dispatches + 1;
    E.consume c.Cost.intercept_vdso
  | _ -> (
    match t.cfg.Config.interception with
    | Config.Trap_only ->
      vst.st.trap_dispatches <- vst.st.trap_dispatches + 1;
      E.consume c.Cost.intercept_int
    | Config.Jump_only ->
      vst.st.jump_dispatches <- vst.st.jump_dispatches + 1;
      E.consume (max 0 (c.Cost.intercept_jump + c.Cost.intercept_extra sysno))
    | Config.Rewrite ->
      vst.trap_acc <- vst.trap_acc + vst.trap_share_c1000;
      if vst.trap_acc >= 1000 then begin
        vst.trap_acc <- vst.trap_acc - 1000;
        vst.st.trap_dispatches <- vst.st.trap_dispatches + 1;
        E.consume c.Cost.intercept_int
      end
      else begin
        vst.st.jump_dispatches <- vst.st.jump_dispatches + 1;
        E.consume
          (max 0 (c.Cost.intercept_jump + c.Cost.intercept_extra sysno))
      end)

let publish_cost t disp nfollowers =
  let c = t.cost in
  let base =
    match (disp : Syscall_table.disposition) with
    | Syscall_table.Virtual -> c.Cost.publish_event * 4 / 5
    | _ -> c.Cost.publish_event
  in
  base + (c.Cost.publish_per_follower * nfollowers)

(* ------------------------------------------------------------------ *)
(* Fault injection hooks                                               *)
(* ------------------------------------------------------------------ *)

let injected_crash vst seq =
  Fault.Injected
    (Printf.sprintf "fault: variant %d crashed at stream seq %d" vst.idx seq)

(* Leader-path hook, at entry to execute-and-record — before the call
   runs, so a crashed leader never half-applies a syscall: the promoted
   follower re-executes it exactly once, and the kernel-side entropy and
   VFS state stay identical to a native run. *)
let fault_leader_hook t vst proc tuple =
  match t.fault with
  | None -> ()
  | Some armed ->
    let seq = Ring.published t.rings.(tuple) in
    List.iter
      (fun (action : Fault.action) ->
        match action with
        | Fault.Signals { signo; count } ->
          for _ = 1 to count do
            K.post_signal proc signo
          done
        | Fault.Crash -> raise (injected_crash vst seq)
        | Fault.Stall _ | Fault.Drop_payload -> ())
      (Fault.at_leader_publish armed ~idx:vst.idx ~seq)

(* Follower-path hook, at entry to the replay step and the fork
   rendezvous, keyed on the follower's own stream cursor. *)
let fault_follower_hook t vst tuple =
  match t.fault with
  | None -> ()
  | Some armed -> (
    match stream_position t vst tuple with
    | None -> ()
    | Some seq ->
      List.iter
        (fun (action : Fault.action) ->
          match action with
          | Fault.Stall delay ->
            (* One-shot by construction (the armed slot burns its [fired]
               flag before the action list is returned), so the count
               below equals the number of [Stall_follower] injections
               that ever triggered — pinned by a regression test. *)
            vst.st.injected_stalls <- vst.st.injected_stalls + 1;
            E.sleep delay
          | Fault.Drop_payload -> vst.drop_release <- true
          | Fault.Crash -> raise (injected_crash vst seq)
          | Fault.Signals _ -> ())
        (Fault.at_follower_consume armed ~idx:vst.idx ~seq))

(* ------------------------------------------------------------------ *)
(* Leader path                                                         *)
(* ------------------------------------------------------------------ *)

let leader_execute_and_record t vst ~unit_idx ~tuple proc
    (disp : Syscall_table.disposition) sysno args =
  fault_leader_hook t vst proc tuple;
  let c = t.cost in
  let is_exit = sysno = Sysno.Exit || sysno = Sysno.Exit_group in
  let nfoll = alive_followers t in
  (* With nobody consuming the stream (no followers, no recorder), the
     leader skips recording entirely: running VARAN with zero followers
     measures pure interception overhead, as in Figure 5's first bars. *)
  let nconsumers =
    match t.pump_queues with
    | None -> Ring.active_consumers t.rings.(tuple)
    | Some _ -> nfoll
  in
  (* The lifecycle recorder keeps the stream flowing even with every
     follower quarantined or the session degraded: the tape is what a
     respawned follower replays to splice back in. *)
  let nconsumers = if t.lifecycle <> None then max nconsumers 1 else nconsumers in
  let publish result =
    (* Shared-memory payload for out-buffer results. *)
    let payload, payload_len, inline_out =
      match result.Args.out with
      | Some out when Bytes.length out > Event.max_inline_bytes ->
        E.consume c.Cost.shmem_alloc;
        E.consume
          (Cost.copy_cycles ~rate_c100:c.Cost.shmem_copy_leader_c100
             (Bytes.length out));
        let chunk = Pool.alloc t.pool (Bytes.length out) in
        Pool.write chunk out;
        (Some chunk, Bytes.length out, None)
      | Some out when Bytes.length out > 0 -> (None, 0, Some out)
      | _ -> (None, 0, None)
    in
    (* In-buffer payload digest for divergence checking. *)
    (match Sysno.transfer_class sysno with
    | Sysno.In_buffer ->
      let digest_cycles =
        Cost.copy_cycles ~rate_c100:8 (Args.payload_size args)
      in
      E.consume digest_cycles;
      Prof.charge_inner Phase.oracle_digest digest_cycles
    | _ -> ());
    (* Descriptor grants travel over the data channel, per follower. *)
    let grant =
      match K.grant_of_result result with
      | Some g when result.Args.ret >= 0 ->
        E.consume (c.Cost.fd_send * nfoll);
        Some (Obj.repr g)
      | _ -> None
    in
    (* Followers asleep in a waitlock need a futex wake — a real system
       call on the leader's fast path (§3.3.1). *)
    if t.waitlock_sleepers.(tuple) > 0 then E.consume c.Cost.waitlock_wake;
    E.consume (publish_cost t disp nfoll);
    let int_args =
      Array.map
        (function
          | Args.Int n -> n
          | Args.Str _ -> 1
          | Args.Buf_in b -> Bytes.length b
          | Args.Buf_out n -> n)
        args
    in
    let int_args =
      if Array.length int_args > 6 then Array.sub int_args 0 6 else int_args
    in
    (* The Lamport tick happens atomically with the slot claim: sibling
       leader threads must not interleave between stamping and writing,
       or followers would observe out-of-order timestamps (Figure 3). *)
    stream_publish_k t tuple (fun () ->
        let clockv = Lamport.tick vst.clocks.(tuple) in
        let event =
          Event.make
            ~kind:(if is_exit then Event.Ev_exit else Event.Ev_syscall)
            ~tid:vst.unit_tid.(unit_idx) ~args:int_args ~ret:result.Args.ret
            ?payload
            ~payload_len ?inline_out ?grant ~clock:clockv
            (Sysno.to_int sysno)
        in
        (* Every active stream consumer releases the payload after
           reading it — followers, and in shared-ring mode any recorder
           client too. Counting only followers would free a chunk under
           the recorder's feet (readers = 0 with a lone recorder). *)
        let readers =
          match t.pump_queues with
          | None -> Ring.active_consumers t.rings.(tuple)
          | Some _ -> nfoll
        in
        register_payload t event readers;
        (* Tape capture flattens the payload now, from the leader's own
           result buffer — the pool chunk may be recycled long before a
           respawned follower replays this entry. *)
        if t.lifecycle <> None then
          Tape.append t.tapes.(tuple) event ~out:result.Args.out;
        event);
    vst.st.events_published <- vst.st.events_published + 1
  in
  let publish result = if nconsumers > 0 then publish result in
  if is_exit then begin
    (* Publish before executing: the kernel-side exit never returns. *)
    publish (Args.ok 0);
    K.exec t.k proc sysno args
  end
  else begin
    let result = K.exec t.k proc sysno args in
    publish result;
    result
  end

(* ------------------------------------------------------------------ *)
(* Follower path                                                       *)
(* ------------------------------------------------------------------ *)

let charge_wait_cost t vst sysno blocked_cycles ~slept =
  let c = t.cost in
  ignore sysno;
  vst.st.stall_blocks <- vst.st.stall_blocks + 1;
  vst.st.stall_cycles <- Int64.add vst.st.stall_cycles blocked_cycles;
  let charge = if slept then c.Cost.waitlock_block else c.Cost.spin_check in
  vst.st.wait_charge_cycles <-
    Int64.add vst.st.wait_charge_cycles (Int64.of_int charge);
  E.consume charge

(* The adaptive wait for a stream that has nothing for this unit yet:
   spin for a short window first; only if nothing arrives does the
   follower sleep in the futex — and only sleeping followers force the
   leader to pay a wake on publish (§3.3.1). *)
let follower_wait t vst tuple sysno =
  let t0 = E.now_cycles () in
  let uses_waitlock =
    t.cfg.Config.follower_wait = Config.Waitlock && Sysno.is_blocking sysno
  in
  let slept =
    if not uses_waitlock then begin
      stream_wait t vst tuple;
      false
    end
    else if
      wait_activity_timeout t vst tuple t.cost.Cost.waitlock_spin_cycles
    then false
    else begin
      (* A remote follower sleeps on the mirror ring; its wake is the
         bridge receiver's publish, not a leader-side futex — don't make
         the leader pay for it. *)
      let counted = not (tuple = 0 && is_remote t vst.idx) in
      if counted then
        t.waitlock_sleepers.(tuple) <- t.waitlock_sleepers.(tuple) + 1;
      Fun.protect
        ~finally:(fun () ->
          if counted then
            t.waitlock_sleepers.(tuple) <- t.waitlock_sleepers.(tuple) - 1)
        (fun () -> stream_wait t vst tuple);
      true
    end
  in
  let blocked = Int64.sub (E.now_cycles ()) t0 in
  charge_wait_cost t vst sysno blocked ~slept

(* Wait until this unit's stream has an event addressed to this unit.
   Raises [Promote] when the variant has been elected leader and the
   stream is drained, and [Divergence_kill] when no leader remains. *)
let rec await_event t vst ~unit_idx ~tuple sysno =
  (* A sibling thread may have promoted the whole variant while this unit
     was parked: take the leader path instead of reading the (gone)
     consumer. *)
  if vst.promoted.(unit_idx) then raise Promote;
  match vst.lanes with
  | Some ln when tuple = 0 -> (
    Lanes.pump ln;
    match Lanes.peek ln ~tid:vst.unit_tid.(unit_idx) with
    | Some e -> e
    | None ->
      if t.leader_idx = vst.idx then
        if Lanes.is_empty ln then
          (* A just-run pump plus empty lanes means the ring is drained
             too (a sync event would have been routed): promotion-safe. *)
          raise Promote
        else begin
          (* Elected, but siblings still hold routed events that must be
             replayed before this variant leads; their last consume pokes
             the ring. *)
          stream_wait t vst tuple;
          await_event t vst ~unit_idx ~tuple sysno
        end
      else if not t.vstates.(t.leader_idx).alive && alive_followers t = 0
      then begin
        degrade t "no leader remains";
        raise E.Killed
      end
      else begin
        follower_wait t vst tuple sysno;
        await_event t vst ~unit_idx ~tuple sysno
      end)
  | _ -> (
    match stream_peek t vst tuple with
    | Some e when e.Event.tid = vst.unit_tid.(unit_idx) -> e
    | Some _ ->
      (* Head event belongs to a sibling thread; wait for it to advance. *)
      stream_wait t vst tuple;
      await_event t vst ~unit_idx ~tuple sysno
    | None ->
      if t.leader_idx = vst.idx then raise Promote
      else if not t.vstates.(t.leader_idx).alive && alive_followers t = 0
      then begin
        (* Nobody can feed this stream again: degrade to native execution
           with a reported reason and unwind this unit quietly instead of
           escaping with Divergence_kill. *)
        degrade t "no leader remains";
        raise E.Killed
      end
      else begin
        follower_wait t vst tuple sysno;
        await_event t vst ~unit_idx ~tuple sysno
      end)

let decode_event_result t vst (disp : Syscall_table.disposition) proc
    (e : Event.t) : Args.result =
  let c = t.cost in
  (match disp with
  | Syscall_table.Virtual -> E.consume c.Cost.consume_vdso
  | _ -> E.consume c.Cost.consume_event);
  let out =
    match e.Event.payload with
    | None -> e.Event.inline_out
    | Some chunk ->
      E.consume
        (Cost.copy_cycles ~rate_c100:c.Cost.shmem_copy_follower_c100
           e.Event.payload_len);
      (* The out-buffer escapes to the replayed syscall's caller, so one
         copy out of the shared chunk is unavoidable — but exactly one:
         [read_into] fills a right-sized caller buffer directly, with no
         intermediate allocation. *)
      let n = min e.Event.payload_len (Pool.size chunk) in
      let bytes = Bytes.create n in
      let _ = Pool.read_into chunk bytes ~len:n in
      if vst.drop_release then vst.drop_release <- false
      else release_payload t e;
      Some bytes
  in
  (match e.Event.grant with
  | Some g ->
    E.consume c.Cost.fd_recv;
    K.install_grant t.k proc (Obj.obj g : K.fd_grant)
  | None -> ());
  vst.st.events_consumed <- vst.st.events_consumed + 1;
  { Args.ret = e.Event.ret; out; fd_object = None }

let divergence_log_limit = 256

let log_divergence t vst (e : Event.t) sysno verdict =
  if t.divergence_log_len < divergence_log_limit then begin
    let leader_name =
      match Sysno.of_int e.Event.sysno with
      | Some s -> Sysno.name s
      | None -> string_of_int e.Event.sysno
    in
    t.divergence_log <-
      {
        dv_variant = vst.variant.Variant.v_name;
        dv_follower_call = Sysno.name sysno;
        dv_leader_event = leader_name;
        dv_verdict = verdict;
      }
      :: t.divergence_log;
    t.divergence_log_len <- t.divergence_log_len + 1
  end

let run_rewrite_rule t vst (e : Event.t) sysno args =
  match vst.variant.Variant.rules with
  | None ->
    raise
      (Divergence_kill
         (Printf.sprintf "follower wants %s, leader streamed %s"
            (Sysno.name sysno)
            (match Sysno.of_int e.Event.sysno with
            | Some s -> Sysno.name s
            | None -> string_of_int e.Event.sysno)))
  | Some prog ->
    let int_args =
      Array.map
        (function
          | Args.Int n -> n
          | Args.Str _ -> 1
          | Args.Buf_in b -> Bytes.length b
          | Args.Buf_out n -> n)
        args
    in
    (* Rules are compiled once per variant on first divergence; each
       subsequent event pays neither verification nor dispatch. *)
    let compiled =
      match vst.compiled_rules with
      | Some f -> f
      | None ->
        let f = Interp.compile prog in
        vst.compiled_rules <- Some f;
        f
    in
    let out =
      compiled
        {
          Interp.ctx_data = { Interp.nr = Sysno.to_int sysno; args = int_args };
          ctx_event =
            {
              Interp.ev_nr = e.Event.sysno;
              ev_ret = e.Event.ret;
              ev_args = e.Event.args;
            };
        }
    in
    vst.st.bpf_steps <- vst.st.bpf_steps + out.Interp.steps;
    E.consume (t.cost.Cost.bpf_per_insn * out.Interp.steps);
    Rules.verdict_of_action out.Interp.action

let run_signal_handler proc signo =
  match K.handler_for proc signo with
  | Some f -> f signo
  | None -> ()

let rec follower_replay t vst ~unit_idx ~tuple proc
    (disp : Syscall_table.disposition) sysno args =
  fault_follower_hook t vst tuple;
  let e = await_event t vst ~unit_idx ~tuple sysno in
  let tid = vst.unit_tid.(unit_idx) in
  (* With lanes the clock check already ran at demux time (in stream
     order); per-tid consumption order would trip it here. *)
  let check_clock = t.cfg.Config.enforce_clock_order
                    && not (lanes_active vst tuple) in
  let pkey = partial_key vst tuple ~tid in
  if e.Event.kind = Event.Ev_signal then begin
    (* A signal the leader received at this point in the stream: consume
       the event and run our own handler, then resume the pending call. *)
    if check_clock then
      ignore (Lamport.try_advance vst.clocks.(tuple) e.Event.clock);
    stream_advance t vst tuple ~tid;
    E.consume t.cost.Cost.consume_event;
    vst.st.events_consumed <- vst.st.events_consumed + 1;
    run_signal_handler proc e.Event.sysno;
    follower_replay t vst ~unit_idx ~tuple proc disp sysno args
  end
  else if
    (* Coalescing (§2.3 pattern ii): the leader's single buffered write
       covers several smaller writes in this follower. Serve this call a
       slice of the event and keep the event at the head until its bytes
       are exhausted. Gated to In_buffer calls, whose result is a byte
       count. *)
    e.Event.sysno = Sysno.to_int sysno
    && Sysno.transfer_class sysno = Sysno.In_buffer
    && e.Event.ret > 0
    &&
    let requested = Args.payload_size args in
    let used =
      Option.value ~default:0 (Hashtbl.find_opt vst.partial_consumed pkey)
    in
    requested > 0 && e.Event.ret - used > requested
  then begin
    let requested = Args.payload_size args in
    let used =
      Option.value ~default:0 (Hashtbl.find_opt vst.partial_consumed pkey)
    in
    Hashtbl.replace vst.partial_consumed pkey (used + requested);
    E.consume t.cost.Cost.consume_event;
    vst.st.divergences_coalesced <- vst.st.divergences_coalesced + 1;
    { Args.ret = requested; out = None; fd_object = None }
  end
  else if e.Event.sysno = Sysno.to_int sysno then begin
    if check_clock then begin
      let ok = Lamport.try_advance vst.clocks.(tuple) e.Event.clock in
      (* With a shared cursor the head event always carries the next
         timestamp; a violation indicates stream corruption. *)
      if not ok then
        raise
          (Divergence_kill
             (Printf.sprintf "clock violation: at %d got stamp %d"
                (Lamport.current vst.clocks.(tuple))
                e.Event.clock))
    end;
    (* If earlier coalesced calls took a prefix of this event, this final
       call receives only the remainder. *)
    let remainder_adjust r =
      match Hashtbl.find_opt vst.partial_consumed pkey with
      | Some used when used > 0
                       && Sysno.transfer_class sysno = Sysno.In_buffer ->
        Hashtbl.remove vst.partial_consumed pkey;
        { r with Args.ret = max 0 (r.Args.ret - used) }
      | _ -> r
    in
    stream_advance t vst tuple ~tid;
    if e.Event.kind = Event.Ev_exit then begin
      (* The leader exited here: the follower's process must die too, so
         execute the exit locally (it unwinds the unit task). *)
      vst.st.events_consumed <- vst.st.events_consumed + 1;
      K.exec t.k proc sysno args
    end
    else begin
      (* Descriptor-freeing calls execute in every variant: a grant
         installed the fd into this follower's table, so the follower
         must release its own slot too, or a later promotion would
         allocate descriptors out of step with native numbering. The
         observable result still comes from the leader's event. *)
      if sysno = Sysno.Close && e.Event.ret >= 0 then
        ignore (K.exec t.k proc sysno args);
      remainder_adjust (decode_event_result t vst disp proc e)
    end
  end
  else begin
    match run_rewrite_rule t vst e sysno args with
    | Rules.Execute_follower_call ->
      log_divergence t vst e sysno "execute-follower-call";
      vst.st.divergences_executed <- vst.st.divergences_executed + 1;
      (* The follower performs its additional call itself; the leader's
         event stays for the next match attempt. *)
      K.exec t.k proc sysno args
    | Rules.Skip_leader_event ->
      log_divergence t vst e sysno "skip-leader-event";
      vst.st.divergences_skipped <- vst.st.divergences_skipped + 1;
      if check_clock then
        ignore (Lamport.try_advance vst.clocks.(tuple) e.Event.clock);
      stream_advance t vst tuple ~tid;
      (* Keep descriptor tables aligned even for skipped events. *)
      (match e.Event.grant with
      | Some g -> K.install_grant t.k proc (Obj.obj g : K.fd_grant)
      | None -> ());
      release_payload t e;
      follower_replay t vst ~unit_idx ~tuple proc disp sysno args
    | Rules.Kill | Rules.Other _ ->
      log_divergence t vst e sysno "kill";
      raise (Divergence_kill "rewrite rule returned kill")
  end

(* ------------------------------------------------------------------ *)
(* The interposed syscall entry point                                  *)
(* ------------------------------------------------------------------ *)

(* Transparent failover: adopt the leader role, stop consuming (our
   cursor must no longer hold the ring back); the caller then restarts
   the in-flight operation as leader (§3.2, §5.1). *)
let do_promote t vst ~unit_idx ~tuple =
  (match vst.variant.Variant.program.Variant.unit_kind with
  | Variant.Thread ->
    Array.fill vst.promoted 0 (Array.length vst.promoted) true
  | Variant.Process -> vst.promoted.(unit_idx) <- true);
  (* A leader does not demultiplex: lanes go away with the consumer
     (they are empty here — promotion requires a drained stream — so the
     drain is a safety net for the payload invariant). *)
  (match vst.lanes with
  | Some ln ->
    List.iter (release_payload t) (Lanes.drain ln);
    vst.lanes <- None
  | None -> ());
  (match t.pump_queues with
  | None -> (
    match vst.consumers.(tuple) with
    | Some c ->
      Ring.unsubscribe c;
      vst.consumers.(tuple) <- None
    | None -> ())
  | Some _ -> ());
  (* Sibling units parked on stream activity must re-examine the world:
     they now find [promoted] set and take the leader path themselves. *)
  Ring.poke t.rings.(tuple);
  if vst.vrole = Follower then begin
    vst.vrole <- Leader;
    vst.table <- Syscall_table.leader;
    Lamport.force vst.clocks.(tuple) (Lamport.current vst.clocks.(tuple));
    (match t.oracle with
    | Some o -> Oracle.note_promotion o ~idx:vst.idx
    | None -> ())
  end;
  (* A catching-up variant only promotes once its stream is drained —
     the recorded prefix is fully replayed, so it continues natively. *)
  (match t.lifecycle with
  | Some lc ->
    let en = Lifecycle.entry lc vst.idx in
    if Lifecycle.state en = Lifecycle.Catching_up then begin
      Array.fill vst.catchup_until 0 (Array.length vst.catchup_until) (-1);
      Lifecycle.transition lc en Lifecycle.Healthy
    end
  | None -> ());
  E.consume t.cost.Cost.failover_promote

(* Publish a signal-delivery event: followers must run their handler at
   the same stream position (§2.2). *)
let leader_publish_signal t vst ~unit_idx ~tuple signo =
  let nfoll = alive_followers t in
  let nconsumers =
    match t.pump_queues with
    | None -> Ring.active_consumers t.rings.(tuple)
    | Some _ -> nfoll
  in
  let nconsumers = if t.lifecycle <> None then max nconsumers 1 else nconsumers in
  if nconsumers > 0 then begin
    E.consume (publish_cost t Syscall_table.Stream nfoll);
    stream_publish_k t tuple (fun () ->
        let clockv = Lamport.tick vst.clocks.(tuple) in
        let event =
          Event.make ~kind:Event.Ev_signal ~tid:vst.unit_tid.(unit_idx)
            ~clock:clockv signo
        in
        if t.lifecycle <> None then
          Tape.append t.tapes.(tuple) event ~out:None;
        event);
    vst.st.events_published <- vst.st.events_published + 1
  end

let interposed t vst ~unit_idx proc sysno args =
  let tuple = tuple_of_unit vst unit_idx in
  let t0 = E.now_cycles () in
  (* Cycle attribution: the gap since the last interposition returned is
     the variant body's own computation; the interposed call itself is
     the syscall-exec phase, exclusive of inner waits (ring, kernel) and
     the digest charge, which credit the stolen ledger as they go. *)
  let reg = Prof.region_enter () in
  if reg.Prof.r_tid >= 0 then Phase.gap_charge reg.Prof.r_tid t0;
  let traced = !Trace.enabled in
  let trace_tid = if traced then (E.self () :> int) else 0 in
  if traced then
    Trace.begin_span ~ts:t0
      ~lamport:(Lamport.current vst.clocks.(tuple))
      ~pid:t.trace_pid ~tid:trace_tid (Sysno.name sysno);
  (* Runs on the normal return AND the unwind path (exit syscalls and
     divergence kills raise): an unclosed span would corrupt this
     track's nesting for the rest of the trace. *)
  let obs_exit ts =
    Prof.region_exit Phase.syscall_exec reg;
    if reg.Prof.r_tid >= 0 then Phase.gap_mark reg.Prof.r_tid ts;
    if traced then
      Trace.end_span ~ts
        ~lamport:(Lamport.current vst.clocks.(tuple))
        ~pid:t.trace_pid ~tid:trace_tid (Sysno.name sysno)
  in
  (* Deliver pending caught signals at the interception boundary: the
     leader streams an Ev_signal first so followers replay the handler at
     the same point. *)
  (if t.leader_idx = vst.idx && vst.promoted.(unit_idx) then
     let rec drain () =
       match K.take_pending_signal proc with
       | None -> ()
       | Some signo ->
         leader_publish_signal t vst ~unit_idx ~tuple signo;
         run_signal_handler proc signo;
         drain ()
     in
     drain ());
  let disp = Syscall_table.lookup vst.table sysno in
  charge_interception t vst disp sysno;
  let result =
    try
      match disp with
      | Syscall_table.Local ->
        vst.st.local_calls <- vst.st.local_calls + 1;
        K.exec t.k proc sysno args
      | Syscall_table.Unsupported ->
        Logs.err (fun m ->
            m "varan: unhandled system call %s in %s" (Sysno.name sysno)
              vst.variant.Variant.v_name);
        Args.err Errno.ENOSYS
      | Syscall_table.Stream | Syscall_table.Virtual -> (
        let leading = t.leader_idx = vst.idx && vst.promoted.(unit_idx) in
        if leading then
          leader_execute_and_record t vst ~unit_idx ~tuple proc disp sysno
            args
        else begin
          try follower_replay t vst ~unit_idx ~tuple proc disp sysno args
          with Promote ->
            do_promote t vst ~unit_idx ~tuple;
            leader_execute_and_record t vst ~unit_idx ~tuple proc disp sysno
              args
        end)
    with exn ->
      obs_exit (E.now_cycles ());
      raise exn
  in
  vst.st.syscalls <- vst.st.syscalls + 1;
  let t1 = E.now_cycles () in
  vst.st.sys_cycles <- Int64.add vst.st.sys_cycles (Int64.sub t1 t0);
  obs_exit t1;
  result

(* ------------------------------------------------------------------ *)
(* Setup                                                               *)
(* ------------------------------------------------------------------ *)

(* Build the variant's synthetic text segment and rewrite it through the
   resident rewrite cache, recording the dispatch mix; also patch a vDSO
   image so interception covers the virtual syscalls (§3.2.1).

   This is the spawn fast path: the pristine text is generated once per
   variant (the zygote forks every incarnation from the same pristine
   image), and the rewrite is served content-addressed — the first
   launch of a given image pays the full disassemble-and-patch cost,
   every later launch (replica of the same binary, respawned
   incarnation) is an O(sites) rebase of the cached entry into a fresh
   site-id range. *)
let prepare_image t vst =
  let t0 = Unix.gettimeofday () in
  let reg = Prof.region_enter () in
  let code =
    match vst.pristine_code with
    | Some c -> c
    | None ->
      let p = vst.variant.Variant.profile in
      let rng = Prng.create p.Variant.code_seed in
      let c =
        Codegen.profile_image rng ~code_bytes:p.Variant.code_bytes
          ~syscall_share:p.Variant.syscall_share
      in
      vst.pristine_code <- Some c;
      c
  in
  let seg =
    Image.make_segment ~name:(vst.variant.Variant.v_name ^ ".text") ~base:0
      ~perm:Image.rx code
  in
  let first_site_id = t.next_site_id in
  let _sites, stats =
    Rewrite_cache.prepare_segment t.rewrite_cache ~first_site_id seg
  in
  t.next_site_id <- first_site_id + stats.Rewriter.total_syscalls;
  vst.rewrite <- Some stats;
  vst.trap_share_c1000 <-
    (if stats.Rewriter.total_syscalls = 0 then 0
     else stats.Rewriter.trap_sites * 1000 / stats.Rewriter.total_syscalls);
  (* vDSO patching is shared across variants in the prototype; here we
     patch per variant for the stats only. *)
  let vdso_code, symbols =
    Vdso.build (List.map (fun n -> (n, 0l)) Vdso.default_symbols)
  in
  let patched = Vdso.patch ~first_site_id:t.next_site_id vdso_code symbols in
  t.next_site_id <- t.next_site_id + List.length patched.Vdso.v_sites;
  vst.spawn_ns <- vst.spawn_ns +. ((Unix.gettimeofday () -. t0) *. 1e9);
  vst.spawn_preps <- vst.spawn_preps + 1;
  Prof.region_exit Phase.rewrite reg

(* Build the monitor-interposed API for one execution unit, including the
   NVX fork hook (§3.3.3). *)
let rec make_unit_api t vst ~unit_idx proc =
  let api =
    Api.with_sys proc (fun sysno args ->
        interposed t vst ~unit_idx proc sysno args)
  in
  let scale =
    vst.variant.Variant.compute_multiplier_c1000
    * Cost.mem_slowdown_c1000 t.cost
        ~intensity_c1000:vst.variant.Variant.mem_intensity_c1000
        ~variants:(Array.length t.vstates)
    / 1000
  in
  api.Api.compute_scale_c1000 <- scale;
  api.Api.fork_child <- Some (fun body -> nvx_fork t vst ~unit_idx proc body);
  (* Debuggability (§3.1): the monitor does not occupy the tracing slot,
     so an strace wrapper composes with the interposed API. *)
  let api =
    if t.cfg.Config.trace_first_variant && vst.idx = 0 && unit_idx = 0
       && t.tracer = None
    then begin
      let traced, tracer = Varan_kernel.Strace.attach api in
      traced.Api.fork_child <- api.Api.fork_child;
      t.tracer <- Some tracer;
      traced
    end
    else api
  in
  (* Cooperative checkpointing: a snapshot-capable program calls the hook
     at every syscall boundary; the capture only happens when the
     watchdog armed one (and this unit's shape qualifies). *)
  (if t.lifecycle <> None then begin
     let incarnation = vst.incarnation in
     api.Api.checkpoint_hook <-
       Some
         (fun encode ->
           maybe_capture_checkpoint t vst ~unit_idx ~incarnation proc encode)
   end);
  vst.apis <- api :: vst.apis;
  api

(* fork(2) under NVX: the leader allocates a fresh tuple (ring buffer),
   streams an Ev_fork event carrying the tuple id and the child pid, forks
   its own child and waits for every live follower to subscribe to the new
   ring before the child starts publishing; followers replay the event by
   forking their own child subscribed to that ring (§3.3.3). *)
and nvx_fork t vst ~unit_idx parent_proc body =
  let tuple = tuple_of_unit vst unit_idx in
  let child_name =
    Printf.sprintf "%s.fork%d" vst.variant.Variant.v_name
      (Array.length vst.unit_tuple)
  in
  let spawn_child_unit ~promoted ~new_tu child_proc ~pre =
    let child_unit = new_unit vst ~tuple:new_tu ~tid:0 ~promoted in
    let child_api = make_unit_api t vst ~unit_idx:child_unit child_proc in
    vst.all_procs <- child_proc :: vst.all_procs;
    let incarnation = vst.incarnation in
    let tid =
      E.spawn_here ~name:child_name (fun () ->
          try
            pre ();
            body child_api
          with
          | E.Killed -> ()
          | exn -> if vst.incarnation = incarnation then handle_crash t vst exn)
    in
    K.register_task t.k child_proc tid
  in
  let leading = t.leader_idx = vst.idx && vst.promoted.(unit_idx) in
  if leading then begin
    fault_leader_hook t vst parent_proc tuple;
    let new_tu = new_tuple t in
    let child_proc = K.fork_proc t.k parent_proc child_name in
    E.consume (t.cost.Cost.native_base Sysno.Fork);
    let nfoll = alive_followers t in
    let nconsumers = Ring.active_consumers t.rings.(tuple) in
    let nconsumers =
      if t.lifecycle <> None then max nconsumers 1 else nconsumers
    in
    if nconsumers > 0 then begin
      if t.waitlock_sleepers.(tuple) > 0 then
        E.consume t.cost.Cost.waitlock_wake;
      E.consume (publish_cost t Syscall_table.Stream nfoll);
      stream_publish_k t tuple (fun () ->
          let clockv = Lamport.tick vst.clocks.(tuple) in
          let event =
            Event.make ~kind:Event.Ev_fork ~tid:vst.unit_tid.(unit_idx)
              ~args:[| new_tu |] ~ret:child_proc.Types.pid ~clock:clockv
              (Sysno.to_int Sysno.Fork)
          in
          if t.lifecycle <> None then
            Tape.append t.tapes.(tuple) event ~out:None;
          event);
      vst.st.events_published <- vst.st.events_published + 1
    end;
    (* "The leader then continues execution, but the coordinator waits
       until all followers fork", so the child only starts once every
       live follower has subscribed to the new ring. *)
    let barrier () =
      while t.tuple_ready.(new_tu) < alive_followers t do
        E.Cond.wait t.ready_cond
      done
    in
    spawn_child_unit ~promoted:true ~new_tu child_proc ~pre:barrier;
    child_proc.Types.pid
  end
  else begin
    fault_follower_hook t vst tuple;
    match await_event t vst ~unit_idx ~tuple Sysno.Fork with
    | exception Promote ->
      do_promote t vst ~unit_idx ~tuple;
      nvx_fork t vst ~unit_idx parent_proc body
    | e ->
      if e.Event.kind <> Event.Ev_fork then
        raise
          (Divergence_kill
             "follower called fork but the leader streamed another event");
      if t.cfg.Config.enforce_clock_order && not (lanes_active vst tuple) then
        ignore (Lamport.try_advance vst.clocks.(tuple) e.Event.clock);
      stream_advance t vst tuple ~tid:vst.unit_tid.(unit_idx);
      E.consume t.cost.Cost.consume_event;
      vst.st.events_consumed <- vst.st.events_consumed + 1;
      let new_tu = e.Event.args.(0) in
      let child_proc = K.fork_proc t.k parent_proc child_name in
      E.consume (t.cost.Cost.native_base Sysno.Fork);
      vst.consumers.(new_tu) <- Some (Ring.subscribe t.rings.(new_tu));
      (* A catching-up follower replays this Ev_fork from the tape while
         the child tuple's live ring may be far ahead: the child unit
         gets its own catch-up range ending at that ring's head. *)
      (if t.lifecycle <> None then begin
         let head = Ring.published t.rings.(new_tu) in
         if head > 0 then begin
           vst.catchup_pos.(new_tu) <- 0;
           vst.catchup_until.(new_tu) <- head
         end
       end);
      t.tuple_ready.(new_tu) <- t.tuple_ready.(new_tu) + 1;
      E.Cond.broadcast t.ready_cond;
      spawn_child_unit ~promoted:false ~new_tu child_proc
        ~pre:(fun () -> ());
      e.Event.ret
  end

let start_units t vst =
  let program = vst.variant.Variant.program in
  let main_proc =
    match vst.main_proc with Some p -> p | None -> assert false
  in
  let nunits = program.Variant.units in
  vst.unit_procs <-
    Array.init nunits (fun u ->
        match program.Variant.unit_kind with
        | Variant.Thread -> main_proc
        | Variant.Process ->
          if u = 0 then main_proc
          else
            K.fork_proc t.k main_proc
              (Printf.sprintf "%s.worker%d" vst.variant.Variant.v_name u));
  vst.all_procs <-
    Array.fold_left
      (fun acc p -> if List.memq p acc then acc else p :: acc)
      vst.all_procs vst.unit_procs;
  let incarnation = vst.incarnation in
  for u = 0 to nunits - 1 do
    let proc = vst.unit_procs.(u) in
    let api = make_unit_api t vst ~unit_idx:u proc in
    (* Apply the respawn's chosen checkpoint: reinstate the snapshotted
       descriptor table and hand the program its own encoded state to
       fast-forward from, before the unit body runs. *)
    (match vst.pending_restore with
    | Some cp when u = 0 ->
      K.restore_fds t.k proc cp.Checkpoint.cp_fds;
      api.Api.resume_state <- Some cp.Checkpoint.cp_state;
      vst.pending_restore <- None
    | _ -> ());
    let task_name =
      Printf.sprintf "%s.unit%d" vst.variant.Variant.v_name u
    in
    let tid =
      E.spawn_here ~name:task_name (fun () ->
          try program.Variant.body ~unit_idx:u api with
          | E.Killed -> ()
          | exn ->
            (* A task surviving from a superseded incarnation must not
               crash the respawned one. *)
            if vst.incarnation = incarnation then handle_crash t vst exn)
    in
    K.register_task t.k proc tid
  done

(* ------------------------------------------------------------------ *)
(* Shared spawn hub (sharded serving)                                  *)
(* ------------------------------------------------------------------ *)

(* One zygote + one content-addressed rewrite cache serving several
   sessions. The hub holds a launcher per variant name; whichever
   session's coordinator runs first creates the actual zygote process
   (coordinators are engine tasks, and [Zygote.spawn] must run inside
   one), later coordinators reuse it. Fork requests dispatch by variant
   name, so names must be unique across the sessions sharing a hub —
   the shard layer prefixes them with the shard scope. *)
type shared_spawn = {
  sp_cache : Rewrite_cache.t;
  mutable sp_zygote : Zygote.t option;
  mutable sp_creating : bool;
  sp_ready : E.Cond.cond;
  sp_launchers : (string, Types.proc -> name:string -> unit) Hashtbl.t;
}

let shared_spawn () =
  {
    sp_cache = Rewrite_cache.create ();
    sp_zygote = None;
    sp_creating = false;
    sp_ready = E.Cond.create "shared-zygote-ready";
    sp_launchers = Hashtbl.create 16;
  }

let shared_zygote sp = sp.sp_zygote
let shared_cache sp = sp.sp_cache

(* Get-or-create the hub's zygote; called from a coordinator task.
   [Zygote.spawn] yields (pipe setup runs under the zygote proc's API),
   so the creating coordinator latches [sp_creating] before its first
   yield — sibling coordinators arriving mid-spawn park on the cond
   instead of spawning a second zygote. *)
let shared_spawn_zygote sp k =
  match sp.sp_zygote with
  | Some z -> z
  | None when sp.sp_creating ->
    while sp.sp_zygote = None do
      E.Cond.wait sp.sp_ready
    done;
    Option.get sp.sp_zygote
  | None ->
    sp.sp_creating <- true;
    let dispatch proc ~name =
      match Hashtbl.find_opt sp.sp_launchers name with
      | Some l -> l proc ~name
      | None -> ()
    in
    let z = Zygote.spawn ~cache:sp.sp_cache k ~launcher:dispatch in
    sp.sp_zygote <- Some z;
    E.Cond.broadcast sp.sp_ready;
    z

let launch ?(config = Config.default) ?scope ?shared k variants =
  if variants = [] then invalid_arg "Session.launch: no variants";
  let variants = Array.of_list variants in
  let shape = variants.(0).Variant.program in
  Array.iter
    (fun v ->
      if
        v.Variant.program.Variant.units <> shape.Variant.units
        || v.Variant.program.Variant.unit_kind <> shape.Variant.unit_kind
      then invalid_arg "Session.launch: variants have different unit shapes")
    variants;
  let ntuples =
    match shape.Variant.unit_kind with
    | Variant.Thread -> 1
    | Variant.Process -> shape.Variant.units
  in
  let nvariants = Array.length variants in
  if config.Config.lifecycle <> None && config.Config.streaming = Config.Event_pump
  then
    invalid_arg
      "Session.launch: the follower lifecycle manager requires shared-ring \
       streaming";
  let ring_size = effective_ring_size config in
  let rings =
    Array.init ntuples (fun i ->
        Ring.create ~size:ring_size (Printf.sprintf "ring%d" i))
  in
  let pump_queues =
    match config.Config.streaming with
    | Config.Shared_ring -> None
    | Config.Event_pump ->
      Some
        (Array.init ntuples (fun tu ->
             Array.init nvariants (fun v ->
                 Ring.create ~size:ring_size
                   (Printf.sprintf "pump%d.%d" tu v))))
  in
  let vstates =
    Array.mapi
      (fun idx variant ->
        {
          idx;
          variant;
          vrole = (if idx = 0 then Leader else Follower);
          main_proc = None;
          unit_procs = [||];
          consumers = Array.make ntuples None;
          lanes = None;
          compiled_rules = None;
          clocks =
            (match shape.Variant.unit_kind with
            | Variant.Thread ->
              let c = Lamport.create () in
              Array.make ntuples c
            | Variant.Process ->
              Array.init ntuples (fun _ -> Lamport.create ()));
          promoted = Array.make shape.Variant.units (idx = 0);
          unit_tuple =
            (match shape.Variant.unit_kind with
            | Variant.Thread -> Array.make shape.Variant.units 0
            | Variant.Process -> Array.init shape.Variant.units Fun.id);
          unit_tid = Array.init shape.Variant.units Fun.id;
          partial_consumed = Hashtbl.create 4;
          drop_release = false;
          alive = true;
          catchup_pos = Array.make ntuples 0;
          catchup_until = Array.make ntuples (-1);
          incarnation = 0;
          all_procs = [];
          table =
            (if idx = 0 then Syscall_table.leader else Syscall_table.follower);
          trap_share_c1000 = 0;
          rewrite = None;
          trap_acc = 0;
          pristine_code = None;
          spawn_ns = 0.;
          spawn_preps = 0;
          st = fresh_vstats ();
          apis = [];
          checkpoint_due = false;
          last_checkpoint_at = 0L;
          pending_restore = None;
        })
      variants
  in
  let t =
    {
      k;
      cfg = config;
      cost = config.Config.cost;
      pool = Pool.create ~pool_bytes:config.Config.pool_bytes ();
      ntuples;
      rings;
      pump_queues;
      vstates;
      leader_idx = 0;
      payload_refs = Hashtbl.create 64;
      zygote = None;
      rewrite_cache =
        (match shared with
        | Some sp -> sp.sp_cache
        | None -> Rewrite_cache.create ());
      next_site_id = 0;
      crash_list = [];
      crash_list_len = 0;
      crash_total = 0;
      lifecycle =
        (match config.Config.lifecycle with
        | Some p -> Some (Lifecycle.create ?scope p ~variants:nvariants)
        | None -> None);
      tapes =
        (match config.Config.lifecycle with
        | Some _ -> Array.init ntuples (fun _ -> Tape.create ())
        | None -> [||]);
      (* The checkpoint store stays per-session even under a shared hub:
         snapshots are keyed by variant index, which collides across
         sessions. Only the zygote and the rewrite cache are shared. *)
      checkpoints = Checkpoint.create ?scope ();
      degraded = None;
      max_lag = 0;
      waitlock_sleepers = Array.make ntuples 0;
      tuple_ready = Array.make ntuples 0;
      ready_cond = E.Cond.create "fork-ready";
      divergence_log = [];
      divergence_log_len = 0;
      tracer = None;
      fault =
        (match config.Config.fault_plan with
        | [] -> None
        | plan -> Some (Fault.arm plan));
      oracle = config.Config.oracle;
      net = None;
      fl = Flight.get (Option.value scope ~default:"");
      trace_pid = Trace.pid_of_scope (Option.value scope ~default:"session");
    }
  in
  (* Lifecycle transitions feed the flight recorder's history (and the
     trace, as instants on this session's track). The hook runs from
     scheduler context too (the watchdog ticker), so it reads the clock
     directly off the engine — no effects. *)
  (match t.lifecycle with
  | Some lc ->
    Lifecycle.set_on_transition lc (fun ~idx ~from_ ~to_ ~reason ->
        let at = E.now k.Types.eng in
        Flight.transition t.fl ~at ~idx ~from_ ~to_ ~reason;
        if !Trace.enabled then
          Trace.instant ~ts:at ~pid:t.trace_pid ~tid:idx
            ~args:
              (Printf.sprintf "\"from\":\"%s\",\"to\":\"%s\",\"reason\":\"%s\""
                 from_ to_ (Trace.json_escape reason))
            ("lifecycle:" ^ to_))
  | None -> ());
  (match t.oracle with
  | Some o ->
    Array.iteri
      (fun i ring ->
        Oracle.attach_ring o ~tuple:i ring;
        (* Every producer stall reports the consumers holding the gate:
           the oracle flags any that were quarantined — the leader must
           never again wait on one. *)
        Ring.set_stall_hook ring
          (Some (fun cids -> Oracle.note_gate_wait o ~tuple:i ~cids)))
      rings
  | None -> ());
  (* Distributed mode: carve the last [remote_followers] variants onto a
     simulated remote node behind the cross-node ring bridge. Must wire
     up before the first publish on ring 0 — the bridge's sender
     sequence accounting starts at zero. *)
  (match config.Config.net with
  | None -> ()
  | Some ncfg ->
    if t.lifecycle = None then
      invalid_arg "Session.launch: net mode requires the lifecycle manager";
    if config.Config.streaming <> Config.Shared_ring then
      invalid_arg "Session.launch: net mode requires shared-ring streaming";
    if
      ncfg.Config.remote_followers < 1
      || ncfg.Config.remote_followers > nvariants - 1
    then
      invalid_arg
        "Session.launch: net.remote_followers must be in [1, variants - 1]";
    let eng = k.Types.eng in
    let local_node = Net_node.create ~eng "node0" in
    let remote_node = Net_node.create ~eng "node1" in
    (* The mirror gets no oracle tap: attaching it would double-register
       tuple 0 and its consumer ids collide with the local ring's. The
       oracle still audits the local ring the bridge consumes from, and
       the harness digests audit remote followers end to end. *)
    let mirror = Ring.create ~size:ring_size "mirror0" in
    let faults ~seq =
      match t.fault with
      | None -> []
      | Some armed ->
        List.map
          (function
            | Fault.L_partition d -> Link.Partition d
            | Fault.L_delay d -> Link.Delay d
            | Fault.L_reorder -> Link.Reorder
            | Fault.L_drop -> Link.Drop
            | Fault.L_duplicate -> Link.Duplicate)
          (Fault.at_link_send armed ~seq)
    in
    (* Flatten a pooled payload into the event for the wire and release
       this consumer's reference; the bytes still travel in-process so
       remote replay digests stay exact. *)
    let materialize (e : Event.t) =
      match e.Event.payload with
      | None -> e
      | Some chunk ->
        let n = max 0 e.Event.payload_len in
        let buf = Bytes.create n in
        ignore (Pool.read_into chunk buf ~len:n);
        release_payload t e;
        Event.flatten e ~out:(Some buf)
    in
    let discard e = release_payload t e in
    (* dMVX-style selective replication: results the remote variant can
       reproduce from its own replicated filesystem travel header-only
       on the wire; payloads that embody external nondeterminism
       (sockets, entropy, time) or a descriptor grant must ship.
       Non-syscall events are header-sized anyway. *)
    let reproducible =
      List.map Sysno.to_int
        [
          Sysno.Read; Sysno.Pread64; Sysno.Readv; Sysno.Getdents;
          Sysno.Getcwd; Sysno.Readlink; Sysno.Stat; Sysno.Fstat;
          Sysno.Lstat; Sysno.Access;
        ]
    in
    let must_replicate (e : Event.t) =
      e.Event.kind <> Event.Ev_syscall
      || not (List.mem e.Event.sysno reproducible)
    in
    let cfg_b =
      {
        Bridge.default_config with
        batch_max = ncfg.Config.bridge_batch;
        window = ncfg.Config.bridge_window;
        rto = ncfg.Config.bridge_rto;
        rto_max = max ncfg.Config.bridge_rto Bridge.default_config.rto_max;
      }
    in
    let bridge =
      Bridge.create ~local_node ~remote_node ~local:rings.(0) ~mirror
        ~cfg:cfg_b ~latency:ncfg.Config.link_latency
        ~cycles_per_kb:ncfg.Config.link_cycles_per_kb ~faults ~materialize
        ~discard ~must_replicate ()
    in
    t.net <-
      Some
        {
          n_cfg = ncfg;
          n_local_node = local_node;
          n_remote_node = remote_node;
          n_bridge = bridge;
          n_mirror = mirror;
          n_base = 0;
          n_epoch = 0;
          n_remote =
            Array.init nvariants (fun i ->
                i >= nvariants - ncfg.Config.remote_followers);
        };
    Bridge.set_on_heal bridge (fun () ->
        ignore (E.spawn_here ~name:"bridge-heal" (fun () -> heal_work t))));
  (* The follower watchdog rides the engine tick. *)
  (match t.lifecycle with
  | Some lc ->
    let p = Lifecycle.policy lc in
    E.add_ticker k.Types.eng ~period:p.Lifecycle.watchdog_period (fun () ->
        watchdog_tick t)
  | None -> ());
  (* Register ring consumers for followers (and pump consumers). *)
  (match pump_queues with
  | None ->
    (* Multi-threaded variants get per-tid lanes in front of the ring;
       catch-up replay (lifecycle mode) reads the tape through the shared
       cursor, so lanes are reserved for the live-only configuration. *)
    let use_lanes =
      config.Config.lifecycle = None
      && shape.Variant.units > 1
      && shape.Variant.unit_kind = Variant.Thread
    in
    Array.iter
      (fun vst ->
        if vst.idx <> 0 then begin
          for tu = 0 to ntuples - 1 do
            (* Remote followers consume tuple 0 from the bridge mirror. *)
            let ring =
              match t.net with
              | Some ns when tu = 0 && ns.n_remote.(vst.idx) -> ns.n_mirror
              | _ -> rings.(tu)
            in
            vst.consumers.(tu) <- Some (Ring.subscribe ring)
          done;
          if use_lanes then
            vst.lanes <-
              Some
                (Lanes.create
                   ~consumer:(stream_consumer vst 0)
                   ~is_sync:lane_sync_event
                   ~capacity:(max 64 (2 * shape.Variant.units))
                   ~on_route:(fun e ->
                     (* The Lamport check runs here, at demux time, where
                        stream order is still visible (§3.3.3). *)
                     if config.Config.enforce_clock_order then
                       let ok =
                         Lamport.try_advance vst.clocks.(0) e.Event.clock
                       in
                       if not ok then
                         raise
                           (Divergence_kill
                              (Printf.sprintf
                                 "clock violation at demux: at %d got stamp \
                                  %d"
                                 (Lamport.current vst.clocks.(0))
                                 e.Event.clock))))
        end)
      vstates
  | Some pq ->
    (* The pump is the only consumer of the leader's queues; followers
       each consume their own queue (consumer id 0 by construction). *)
    for tu = 0 to ntuples - 1 do
      let pump_consumer = Ring.subscribe rings.(tu) in
      Array.iter
        (fun vst ->
          if vst.idx <> 0 then begin
            let c = Ring.subscribe pq.(tu).(vst.idx) in
            assert (Ring.consumer_cid c = 0);
            vst.consumers.(tu) <- Some c
          end)
        vstates;
      ignore
        (E.spawn k.Types.eng ~name:(Printf.sprintf "event-pump%d" tu)
           (fun () ->
             let c = t.cost in
             (* Drain the leader's queue in runs: a lagging pump catches
                up with one gate check and one wakeup per batch instead
                of per event. Per-event costs are still charged. *)
             let rec loop () =
               let batch =
                 Array.of_list
                   (Ring.consume_batch_h pump_consumer ~max:64)
               in
               let n = Array.length batch in
               E.consume (c.Cost.consume_event * n);
               Array.iter
                 (fun vst ->
                   if vst.idx <> t.leader_idx && vst.alive then begin
                     E.consume (c.Cost.publish_event * n);
                     Ring.publish_batch pq.(tu).(vst.idx) batch
                   end)
                 vstates;
               loop ()
             in
             loop ()))
    done);
  (* Coordinator: spawn (or join) the zygote, fork each variant through
     it, prepare images and start execution units (Figure 2). *)
  let launcher proc ~name =
    match
      Array.find_opt (fun vst -> vst.variant.Variant.v_name = name) vstates
    with
    | None -> ()
    | Some vst ->
      vst.main_proc <- Some proc;
      (* Every incarnation goes through prepare_image: the zygote
         forks from the pristine copy (Figure 2), and the rewrite
         cache turns everything after the first launch of a given
         image into an O(sites) rebase — respawns never re-run
         the rewriter from scratch. *)
      prepare_image t vst;
      start_units t vst
  in
  (* Under a shared hub, register this session's variants with the
     dispatch table up front (no task context needed) so whichever
     coordinator creates the zygote can already serve siblings. *)
  (match shared with
  | None -> ()
  | Some sp ->
    Array.iter
      (fun vst ->
        let name = vst.variant.Variant.v_name in
        if Hashtbl.mem sp.sp_launchers name then
          invalid_arg
            (Printf.sprintf
               "Session.launch: variant name %S already registered with this \
                spawn hub"
               name);
        Hashtbl.replace sp.sp_launchers name launcher)
      vstates);
  ignore
    (E.spawn k.Types.eng ~name:"coordinator" (fun () ->
         let z =
           match shared with
           | Some sp -> shared_spawn_zygote sp k
           | None ->
             Zygote.spawn ~cache:t.rewrite_cache ~checkpoints:t.checkpoints k
               ~launcher
         in
         t.zygote <- Some z;
         Array.iter
           (fun vst ->
             ignore (Zygote.fork_request z vst.variant.Variant.v_name))
           vstates;
         (* With the lifecycle manager the zygote stays resident to
            serve respawn requests; its service task parks on the
            request pipe and is abandoned at quiescence. A shared hub's
            zygote always stays resident — sibling sessions and their
            respawns keep using it. *)
         match (t.lifecycle, shared) with
         | None, None -> Zygote.shutdown z
         | _ -> ()));
  t

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let leader_index t = t.leader_idx
let role_of t idx = t.vstates.(idx).vrole
let is_alive t idx = t.vstates.(idx).alive

let alive_count t =
  Array.fold_left (fun n v -> if v.alive then n + 1 else n) 0 t.vstates

let crashes t = List.rev t.crash_list
let crash_log_nonempty t = t.crash_list <> []
let crash_count t = t.crash_total
let degraded t = t.degraded

let lifecycle_report t =
  match t.lifecycle with
  | Some lc -> Some (Lifecycle.report lc ~leader_idx:t.leader_idx)
  | None -> None

type variant_stats = {
  vs_name : string;
  vs_role : role;
  vs_alive : bool;
  vs_syscalls : int;
  vs_local_calls : int;
  vs_events_published : int;
  vs_events_consumed : int;
  vs_stall_blocks : int;
  vs_stall_cycles : int64;
  vs_wait_charge_cycles : int64;
  vs_sys_cycles : int64;
  vs_divergences_executed : int;
  vs_divergences_skipped : int;
  vs_divergences_coalesced : int;
  vs_bpf_steps : int;
  vs_jump_dispatches : int;
  vs_trap_dispatches : int;
  vs_vdso_dispatches : int;
  vs_injected_stalls : int;
  vs_incarnation : int;
  vs_rewrite : Rewriter.stats option;
  vs_spawn_ns : float;
  vs_spawn_preps : int;
}

type stats = {
  variants : variant_stats array;
  rings : Ring.stats array;
  pool : Pool.stats;
  max_observed_lag : int;
  rewrite_cache : Rewrite_cache.stats;
  checkpoints : Checkpoint.stats;
  tapes : Tape.stats array;
  bridge : Bridge.stats option;
  link : Link.stats option;
}

let stats t =
  {
    variants =
      Array.map
        (fun vst ->
          {
            vs_name = vst.variant.Variant.v_name;
            vs_role = vst.vrole;
            vs_alive = vst.alive;
            vs_syscalls = vst.st.syscalls;
            vs_local_calls = vst.st.local_calls;
            vs_events_published = vst.st.events_published;
            vs_events_consumed = vst.st.events_consumed;
            vs_stall_blocks = vst.st.stall_blocks;
            vs_stall_cycles = vst.st.stall_cycles;
            vs_wait_charge_cycles = vst.st.wait_charge_cycles;
            vs_sys_cycles = vst.st.sys_cycles;
            vs_divergences_executed = vst.st.divergences_executed;
            vs_divergences_skipped = vst.st.divergences_skipped;
            vs_divergences_coalesced = vst.st.divergences_coalesced;
            vs_bpf_steps = vst.st.bpf_steps;
            vs_jump_dispatches = vst.st.jump_dispatches;
            vs_trap_dispatches = vst.st.trap_dispatches;
            vs_vdso_dispatches = vst.st.vdso_dispatches;
            vs_injected_stalls = vst.st.injected_stalls;
            vs_incarnation = vst.incarnation;
            vs_rewrite = vst.rewrite;
            vs_spawn_ns = vst.spawn_ns;
            vs_spawn_preps = vst.spawn_preps;
          })
        t.vstates;
    rings = Array.map Ring.stats t.rings;
    pool = Pool.stats t.pool;
    max_observed_lag = t.max_lag;
    rewrite_cache = Rewrite_cache.stats t.rewrite_cache;
    checkpoints = Checkpoint.stats t.checkpoints;
    tapes = Array.map Tape.stats t.tapes;
    bridge = Option.map (fun ns -> Bridge.stats ns.n_bridge) t.net;
    link = Option.map (fun ns -> Bridge.link_stats ns.n_bridge) t.net;
  }

type divergence_entry = {
  d_variant : string;
  d_follower_call : string;
  d_leader_event : string;
  d_verdict : string;
}

let divergence_log t =
  List.rev_map
    (fun r ->
      {
        d_variant = r.dv_variant;
        d_follower_call = r.dv_follower_call;
        d_leader_event = r.dv_leader_event;
        d_verdict = r.dv_verdict;
      })
    t.divergence_log

let trace_lines t =
  match t.tracer with
  | Some tr -> Varan_kernel.Strace.lines tr
  | None -> []

let sample_lag t idx =
  let vst = t.vstates.(idx) in
  if vst.alive && idx <> t.leader_idx && vst.consumers.(0) <> None then
    stream_lag t vst 0
  else 0

let observe_lags t =
  Array.iter
    (fun vst ->
      if vst.alive && vst.idx <> t.leader_idx && vst.consumers.(0) <> None
      then t.max_lag <- max t.max_lag (stream_lag t vst 0))
    t.vstates

let tuple_ring (t : t) tu = t.rings.(tu)

let tuple_tape (t : t) tu =
  if tu < Array.length t.tapes then Some t.tapes.(tu) else None

let checkpoint_store (t : t) = t.checkpoints
let flight (t : t) = t.fl

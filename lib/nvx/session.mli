(** An N-version execution session — VARAN's core (§2, §3).

    [launch] plays the coordinator's role from Figure 2: it creates the
    shared-memory pool and ring buffers, spawns the {e zygote}, asks it to
    fork one process per variant, builds each variant's synthetic text
    segment and runs the {e selective binary rewriter} over it (recording
    the jump/INT3 dispatch mix that interception costs draw from), patches
    the vDSO, and finally starts every variant's execution units under a
    monitor-interposed syscall API.

    At run time the leader executes system calls against the simulated
    kernel and streams events into the per-tuple ring buffers; followers
    replay them, with Lamport-clock ordering across threads, BPF rewrite
    rules on divergence, descriptor grants over the data channel, and
    transparent failover when a variant crashes. *)

type t

type role = Leader | Follower

exception Divergence_kill of string
(** Raised inside a follower whose divergence was not permitted by its
    rewrite rules; the monitor turns it into a crash notification. *)

type shared_spawn
(** A spawn hub shared by several sessions (the sharded serving layer):
    one resident zygote process and one content-addressed rewrite cache,
    so the spawn fast path is paid once process-wide rather than per
    shard. Fork requests dispatch to the owning session by variant name,
    which must therefore be unique across the sessions sharing a hub. *)

val shared_spawn : unit -> shared_spawn
(** Fresh hub; the zygote process itself is created lazily by the first
    session coordinator that runs. *)

val shared_zygote : shared_spawn -> Zygote.t option
(** The hub's resident zygote, once some session's coordinator created
    it ([None] before the engine has run). *)

val shared_cache : shared_spawn -> Varan_binary.Rewrite_cache.t
(** The hub's shared rewrite cache. *)

val launch :
  ?config:Config.t ->
  ?scope:string ->
  ?shared:shared_spawn ->
  Varan_kernel.Types.t ->
  Variant.t list ->
  t
(** Set up and start the session. All variants' tasks are scheduled; the
    caller then runs the engine. The first variant is the initial leader.

    [scope] qualifies the registry counter names this session's lifecycle
    manager and checkpoint store mirror into (e.g. scope ["shard2"] makes
    ["shard2.lifecycle.respawns"]) so concurrent sessions keep separable
    stats; without it the historical bare names are used.

    [shared] plugs the session into a {!shared_spawn} hub: the session
    uses the hub's zygote and rewrite cache instead of creating its own,
    and never shuts the zygote down (sibling sessions and respawns keep
    using it). The checkpoint store remains per-session — snapshots are
    keyed by variant index, which is only unique within a session.

    @raise Invalid_argument on an empty variant list, inconsistent unit
    shapes, or a variant name already registered with [shared]. *)

val leader_index : t -> int
val role_of : t -> int -> role
val is_alive : t -> int -> bool
val alive_count : t -> int

val crashes : t -> (int * string) list
(** Variants that crashed, oldest first, with the exception text. The
    list is bounded (64 entries); {!crash_count} has the true total. *)

val crash_log_nonempty : t -> bool

val crash_count : t -> int
(** Total crashes ever, including those beyond the bounded list. *)

val degraded : t -> string option
(** When the session fell back to native-speed leader-only execution
    (all followers dead, no leader left to elect, or the lifecycle
    manager's [min_followers] floor), the reported reason. [None] while
    N-version execution is still in force. *)

val lifecycle_report : t -> Lifecycle.report option
(** Per-follower lifecycle states and transition counters; [None] when
    {!Config.t.lifecycle} was not set. *)

(** {1 Statistics} *)

type variant_stats = {
  vs_name : string;
  vs_role : role;
  vs_alive : bool;
  vs_syscalls : int;  (** calls through the interposed entry point *)
  vs_local_calls : int;
  vs_events_published : int;
  vs_events_consumed : int;
  vs_stall_blocks : int;  (** times a follower found the ring empty *)
  vs_stall_cycles : int64;  (** virtual time spent waiting for events *)
  vs_wait_charge_cycles : int64;
      (** cycles charged by the waiting machinery itself (waitlock
          block/wake, spin checks) *)
  vs_sys_cycles : int64;  (** virtual time inside the syscall layer *)
  vs_divergences_executed : int;  (** BPF verdict: follower-local call *)
  vs_divergences_skipped : int;  (** BPF verdict: leader event dropped *)
  vs_divergences_coalesced : int;
      (** smaller follower writes served as slices of one buffered leader
          write — the coalescing pattern of §2.3 *)
  vs_bpf_steps : int;
  vs_jump_dispatches : int;
  vs_trap_dispatches : int;
  vs_vdso_dispatches : int;
  vs_injected_stalls : int;
      (** [Stall_follower] injections that actually fired on this
          variant — each armed injection fires at most once *)
  vs_incarnation : int;
      (** times this variant was respawned by the lifecycle manager *)
  vs_rewrite : Varan_binary.Rewriter.stats option;
  vs_spawn_ns : float;
      (** wall-clock nanoseconds spent preparing this variant's image
          across all incarnations (spawn fast path latency) *)
  vs_spawn_preps : int;  (** image preparations: 1 cold + one per respawn *)
}

type stats = {
  variants : variant_stats array;
  rings : Varan_ringbuf.Ring.stats array;
  pool : Varan_shmem.Pool.stats;
  max_observed_lag : int;
  rewrite_cache : Varan_binary.Rewrite_cache.stats;
      (** the resident zygote cache's hit/miss/rebase tallies — the
          spawn fast path's effectiveness ([misses] = distinct images
          rewritten cold, [rebases] = launches served by rebase) *)
  checkpoints : Checkpoint.stats;
      (** rr-style fast-rejoin tallies: snapshots taken, respawns served
          by a restore, and the tape delta replayed instead of the full
          stream *)
  tapes : Tape.stats array;
      (** per-tuple recorder footprint — with checkpointing enabled the
          retention policy keeps [resident_bytes] bounded regardless of
          stream length *)
  bridge : Varan_net.Bridge.stats option;
      (** cross-node ring bridge tallies (distributed mode only):
          batches shipped, retransmits, acks, selective-replication
          bytes saved *)
  link : Varan_net.Link.stats option;
      (** the underlying link's frame accounting, fault injections
          included *)
}

val stats : t -> stats

val sample_lag : t -> int -> int
(** Current event lag of variant [idx] on its tuple-0 ring: the "distance
    between the leader and the follower" measured in §5.3. *)

val observe_lags : t -> unit
(** Record the current lags into the running maximum (benchmarks call
    this periodically). *)

val trace_lines : t -> string list
(** With {!Config.t.trace_first_variant} set: the strace-style trace of
    variant 0's main unit, as observed {e through} the monitor. *)

(** {1 Divergence audit log} *)

type divergence_entry = {
  d_variant : string;
  d_follower_call : string;
  d_leader_event : string;
  d_verdict : string;
}

val divergence_log : t -> divergence_entry list
(** The first 256 divergences resolved through rewrite rules, oldest
    first — what a rule author inspects when tuning filters for a new
    revision pair. *)

(** {1 Hooks for the record-replay clients (§5.4)} *)

val tuple_ring : t -> int -> Varan_ringbuf.Event.t Varan_ringbuf.Ring.t
(** The shared ring of the given tuple (shared-ring mode). A recorder
    registers as an extra consumer on it. *)

val tuple_tape : t -> int -> Tape.t option
(** The lifecycle manager's per-tuple catch-up tape; [None] without a
    lifecycle policy (no tape is recorded) or for an unknown tuple. The
    time-travel replay entry point reads it together with
    {!checkpoint_store}. *)

val checkpoint_store : t -> Checkpoint.t
(** The session's follower checkpoint store (the resident zygote owns the
    same object, so snapshots outlive the incarnation they captured). *)

val flight : t -> Varan_obs.Flight.t
(** The session's flight recorder — the black box dumped as a post-mortem
    bundle on divergence, quarantine-kill or degradation. Registered
    under the session's [scope] (the empty scope for unscoped sessions),
    so {!Varan_obs.Flight.find} reaches the same object. *)

val release_payload : t -> Varan_ringbuf.Event.t -> unit
(** Drop one reader's reference to an event's shared-memory payload,
    freeing the chunk when every reader has passed it. *)

module E = Varan_sim.Engine
module Types = Varan_kernel.Types
module Stats = Varan_util.Stats
module Flight = Varan_obs.Flight

(* Sharded serving layer: N independent monitor sessions — each with its
   own ring(s), lifecycle watchdog and tape — behind a sticky-hash
   connection router, all sharing one spawn hub (zygote + rewrite cache)
   so variant spawn cost is paid once for the whole pool.

   Everything per-shard is genuinely per-shard: a quarantined follower,
   a degraded session or a blown restart budget on shard 3 never gates a
   sibling — the only coupling is the health feed into the router, which
   drains a degraded shard's connections to survivors. *)

type shard = {
  sh_id : int;
  sh_scope : string;
  sh_session : Session.t;
}

type t = {
  shards : shard array;
  hub : Session.shared_spawn;
  router : Router.t;
  eng : E.t;
  g_degraded : Stats.counter;
  mutable degraded_seen : bool array; (* health edge already reported *)
}

let scope_of_shard i = Printf.sprintf "shard%d" i

(* A shard is routable while its session still runs N-version execution
   (not degraded to native leader-only). A degraded session keeps
   serving its native leader, but the router prefers full-monitor
   siblings — that is the rebalancing the lifecycle isolation buys. *)
let shard_healthy sh = Session.degraded sh.sh_session = None

let refresh_health t =
  Array.iter
    (fun sh ->
      let up = shard_healthy sh in
      if (not up) && not t.degraded_seen.(sh.sh_id) then begin
        t.degraded_seen.(sh.sh_id) <- true;
        Stats.incr_counter t.g_degraded;
        (* Pool-level view of the same edge: the shard's black box gets
           the moment the router stopped sending it fresh connections. *)
        Flight.record
          (Session.flight sh.sh_session)
          ~at:(E.now t.eng) "shard.drained"
          (Printf.sprintf "shard %d marked down, connections draining"
             sh.sh_id)
      end;
      if Router.healthy t.router sh.sh_id <> up then begin
        Router.set_healthy t.router sh.sh_id up;
        if not up then ignore (Router.rebalance t.router)
      end)
    t.shards

let launch ?config ?config_of ?(router_seed = 0) ?(health_period = 20_000)
    ?scope_of k ~shards ~variants_of =
  if shards < 1 then invalid_arg "Shard.launch: shards";
  let scope_of = Option.value scope_of ~default:scope_of_shard in
  let hub = Session.shared_spawn () in
  let config_for i =
    match config_of with
    | Some f -> f i
    | None -> Option.value config ~default:Config.default
  in
  let pool =
    Array.init shards (fun i ->
        let scope = scope_of i in
        let session =
          Session.launch ~config:(config_for i) ~scope ~shared:hub k
            (variants_of i)
        in
        { sh_id = i; sh_scope = scope; sh_session = session })
  in
  let t =
    {
      shards = pool;
      hub;
      router = Router.create ~seed:router_seed ~shards ();
      eng = k.Types.eng;
      g_degraded = Stats.counter "shard.degraded";
      degraded_seen = Array.make shards false;
    }
  in
  (* Health rides the engine tick, like the per-session watchdogs: sync
     session degradation into the router and drain eagerly on the edge. *)
  E.add_ticker k.Types.eng ~period:health_period (fun () ->
      refresh_health t;
      true);
  t

let count t = Array.length t.shards
let session t i = t.shards.(i).sh_session
let scope t i = t.shards.(i).sh_scope
let router t = t.router
let hub t = t.hub
let healthy t i = shard_healthy t.shards.(i)

let route t ~conn = Router.route t.router ~conn

let degraded t =
  Array.to_list t.shards
  |> List.filter_map (fun sh ->
         match Session.degraded sh.sh_session with
         | None -> None
         | Some reason -> Some (sh.sh_id, reason))

let zygote_forks t =
  match Session.shared_zygote t.hub with
  | None -> 0
  | Some z -> Zygote.forks_served z

(** Sharded monitor serving layer.

    Runs N independent {!Session}s — one ring set, lifecycle watchdog
    and tape each — behind a sticky {!Router}, while sharing one spawn
    hub ({!Session.shared_spawn}: resident zygote + content-addressed
    rewrite cache) so spawn cost is paid once for the pool, not per
    shard. Per-shard registry counters are qualified with the shard
    scope ("shard2.lifecycle.respawns", "shard2.checkpoint.taken").

    Failure isolation: a quarantined follower or a degraded session on
    one shard never gates its siblings. The health ticker feeds session
    degradation into the router, which drains the degraded shard's
    connections to surviving shards. *)

type t

val launch :
  ?config:Config.t ->
  ?config_of:(int -> Config.t) ->
  ?router_seed:int ->
  ?health_period:int ->
  ?scope_of:(int -> string) ->
  Varan_kernel.Types.t ->
  shards:int ->
  variants_of:(int -> Variant.t list) ->
  t
(** Launch [shards] sessions on the kernel. [variants_of i] supplies
    shard [i]'s variant list; names must be unique across the pool (the
    shared zygote dispatches fork requests by name), so qualify them
    with the shard id. [config_of] overrides [config] per shard (beware
    sharing one [Config.oracle] across shards — ring registrations would
    collide; default config is safe). [health_period] is the router
    health-sync ticker period in cycles. [scope_of] overrides the
    default ["shardN"] stats scope. *)

val count : t -> int
val session : t -> int -> Session.t
val scope : t -> int -> string

val router : t -> Router.t

val route : t -> conn:int -> int
(** Sticky-route a client connection to a shard index (see {!Router}). *)

val healthy : t -> int -> bool
(** Whether the shard still runs full N-version execution (its session
    has not degraded to native leader-only). *)

val refresh_health : t -> unit
(** Force a health sync (the ticker does this periodically): degraded
    sessions are marked down in the router and their connections drained
    to survivors. *)

val degraded : t -> (int * string) list
(** Shards whose sessions degraded, with reasons. *)

val hub : t -> Session.shared_spawn
(** The shared spawn hub (zygote + rewrite cache). *)

val zygote_forks : t -> int
(** Forks served by the shared zygote across all shards — evidence the
    pool really shares one spawner. *)

module Event = Varan_ringbuf.Event

(* The lifecycle recorder's retained stream: every event the leader
   publishes on a tuple is also appended here, flattened so it stays
   readable after the ring slot is overwritten and the shared-memory
   payload freed. A respawned follower replays entries [0, splice) and
   then switches to the live ring at sequence [splice].

   Entries keep the original Lamport stamp, tid and descriptor grant, so
   the ordinary follower-replay path consumes them unchanged and the
   rejoined variant's descriptor tables and clocks come out identical to
   a follower that never left. *)

type entry = {
  t_kind : Event.kind;
  t_sysno : int;
  t_tid : int;
  t_args : int array;
  t_ret : int;
  t_clock : int;
  t_out : Bytes.t option; (* payloads flattened to inline bytes *)
  t_grant : Obj.t option;
}

type t = { mutable entries : entry array; mutable len : int }

let dummy =
  {
    t_kind = Event.Ev_syscall;
    t_sysno = 0;
    t_tid = 0;
    t_args = [||];
    t_ret = 0;
    t_clock = 0;
    t_out = None;
    t_grant = None;
  }

let create () = { entries = Array.make 64 dummy; len = 0 }

let length t = t.len

(* Flatten at capture time: [out] is the leader's result buffer, handed
   over before any pool chunk can be recycled. *)
let append t (e : Event.t) ~out =
  if t.len = Array.length t.entries then begin
    let bigger = Array.make (2 * t.len) t.entries.(0) in
    Array.blit t.entries 0 bigger 0 t.len;
    t.entries <- bigger
  end;
  t.entries.(t.len) <-
    {
      t_kind = e.Event.kind;
      t_sysno = e.Event.sysno;
      t_tid = e.Event.tid;
      t_args = e.Event.args;
      t_ret = e.Event.ret;
      t_clock = e.Event.clock;
      t_out = out;
      t_grant = e.Event.grant;
    };
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Tape.get: out of range";
  t.entries.(i)

(* Reconstruct a stream event from a tape entry. The payload travels
   inline regardless of size: the pool chunk it came from is long gone. *)
let event_of_entry (en : entry) : Event.t =
  {
    Event.kind = en.t_kind;
    sysno = en.t_sysno;
    tid = en.t_tid;
    args = en.t_args;
    ret = en.t_ret;
    clock = en.t_clock;
    payload = None;
    payload_len = 0;
    inline_out = en.t_out;
    grant = en.t_grant;
  }

let event_at t i = event_of_entry (get t i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.entries.(i)
  done

module Event = Varan_ringbuf.Event

(* The lifecycle recorder's retained stream: every event the leader
   publishes on a tuple is also appended here, flattened so it stays
   readable after the ring slot is overwritten and the shared-memory
   payload freed. A respawned follower replays entries [from, splice)
   and then switches to the live ring at sequence [splice].

   Entries keep the original Lamport stamp, tid and descriptor grant, so
   the ordinary follower-replay path consumes them unchanged and the
   rejoined variant's descriptor tables and clocks come out identical to
   a follower that never left.

   For a million-event stream a flat entry array is the recorder's space
   problem, so the tape is chunked: entries land in a small open segment
   and, once it fills, the segment is sealed — serialized to a compact
   byte image and run-length packed (PackBits). Sealed segments below the
   retention floor (the oldest live checkpoint, see {!Checkpoint}) are
   retired wholesale, which keeps resident bytes bounded while absolute
   indices stay stable: entry [i] is entry [i] forever, and reads below
   {!base} raise {!Truncated} instead of silently shifting. *)

type entry = {
  t_kind : Event.kind;
  t_sysno : int;
  t_tid : int;
  t_args : int array;
  t_ret : int;
  t_clock : int;
  t_out : Bytes.t option; (* payloads flattened to inline bytes *)
  t_grant : Obj.t option;
}

exception Truncated of { requested : int; base : int }

let () =
  Printexc.register_printer (function
    | Truncated { requested; base } ->
      Some
        (Printf.sprintf
           "Varan_nvx.Tape.Truncated(requested=%d, oldest retained=%d)"
           requested base)
    | _ -> None)

(* A sealed, immutable chunk of [seg_entries] consecutive entries.
   Grants are opaque runtime handles (shared descriptor objects) and
   cannot be serialized; the sparse side array re-attaches them on
   decode. *)
type seg = {
  s_packed : Bytes.t; (* PackBits image of the serialized entries *)
  s_raw_len : int; (* serialized length before packing *)
  s_grants : (int * Obj.t) array; (* (index within segment, grant) *)
}

type t = {
  seg_entries : int;
  sealed : (int, seg) Hashtbl.t; (* segment number -> sealed image *)
  open_buf : entry array; (* the one mutable segment, being filled *)
  mutable open_first : int; (* absolute index of open_buf.(0) *)
  mutable open_len : int;
  mutable open_bytes : int; (* raw-size estimate of the open segment *)
  mutable base : int; (* oldest retained absolute index *)
  mutable total : int; (* next index to append = events ever seen *)
  (* Decode cache: sequential replay touches one sealed segment many
     times in a row (stream_peek re-reads the head index), so we keep
     the last decoded segment around. *)
  mutable cache_segno : int;
  mutable cache_entries : entry array;
  (* stats *)
  mutable c_sealed : int;
  mutable c_retired : int;
  mutable c_packed_bytes : int; (* resident compressed bytes *)
  mutable c_raw_bytes : int; (* raw bytes of currently resident seals *)
}

type stats = {
  segments_sealed : int;
  segments_retired : int;
  resident_bytes : int;
  packed_bytes : int;
  raw_bytes : int;
}

let dummy =
  {
    t_kind = Event.Ev_syscall;
    t_sysno = 0;
    t_tid = 0;
    t_args = [||];
    t_ret = 0;
    t_clock = 0;
    t_out = None;
    t_grant = None;
  }

let default_segment_entries = 256

let create ?(segment_entries = default_segment_entries) () =
  if segment_entries < 1 then invalid_arg "Tape.create: segment_entries";
  {
    seg_entries = segment_entries;
    sealed = Hashtbl.create 32;
    open_buf = Array.make segment_entries dummy;
    open_first = 0;
    open_len = 0;
    open_bytes = 0;
    base = 0;
    total = 0;
    cache_segno = -1;
    cache_entries = [||];
    c_sealed = 0;
    c_retired = 0;
    c_packed_bytes = 0;
    c_raw_bytes = 0;
  }

let length t = t.total
let base t = t.base

(* ------------------------------------------------------------------ *)
(* Entry wire format (within a sealed segment)                         *)
(*   u8 kind | u8 tid | u8 nargs | i32 sysno | i32 clock | i64 ret     *)
(*   | i64 args[nargs] | i32 outlen (-1 = no result buffer) | bytes    *)
(* ------------------------------------------------------------------ *)

let int_of_kind = function
  | Event.Ev_syscall -> 0
  | Event.Ev_signal -> 1
  | Event.Ev_fork -> 2
  | Event.Ev_exit -> 3

let kind_of_int = function
  | 0 -> Event.Ev_syscall
  | 1 -> Event.Ev_signal
  | 2 -> Event.Ev_fork
  | 3 -> Event.Ev_exit
  | n -> invalid_arg (Printf.sprintf "Tape: bad event kind %d" n)

let entry_raw_size (e : entry) =
  3 + 4 + 4 + 8
  + (8 * Array.length e.t_args)
  + 4
  + (match e.t_out with None -> 0 | Some b -> Bytes.length b)

let serialize_entry buf (e : entry) =
  Buffer.add_uint8 buf (int_of_kind e.t_kind);
  Buffer.add_uint8 buf (e.t_tid land 0xFF);
  Buffer.add_uint8 buf (Array.length e.t_args);
  Buffer.add_int32_le buf (Int32.of_int e.t_sysno);
  Buffer.add_int32_le buf (Int32.of_int e.t_clock);
  Buffer.add_int64_le buf (Int64.of_int e.t_ret);
  Array.iter (fun a -> Buffer.add_int64_le buf (Int64.of_int a)) e.t_args;
  match e.t_out with
  | None -> Buffer.add_int32_le buf (-1l)
  | Some b ->
    Buffer.add_int32_le buf (Int32.of_int (Bytes.length b));
    Buffer.add_bytes buf b

let deserialize_entry raw pos =
  let p = ref pos in
  let u8 () =
    let v = Char.code (Bytes.get raw !p) in
    incr p;
    v
  in
  let i32 () =
    let v = Int32.to_int (Bytes.get_int32_le raw !p) in
    p := !p + 4;
    v
  in
  let i64 () =
    let v = Int64.to_int (Bytes.get_int64_le raw !p) in
    p := !p + 8;
    v
  in
  let kind = kind_of_int (u8 ()) in
  let tid = u8 () in
  let nargs = u8 () in
  let sysno = i32 () in
  let clock = i32 () in
  let ret = i64 () in
  let args = Array.init nargs (fun _ -> i64 ()) in
  let outlen = i32 () in
  let out =
    if outlen < 0 then None
    else begin
      let b = Bytes.sub raw !p outlen in
      p := !p + outlen;
      Some b
    end
  in
  ( {
      t_kind = kind;
      t_sysno = sysno;
      t_tid = tid;
      t_args = args;
      t_ret = ret;
      t_clock = clock;
      t_out = out;
      t_grant = None;
    },
    !p )

(* ------------------------------------------------------------------ *)
(* PackBits run-length coding                                          *)
(*   control byte c in 0..127: copy the next c+1 literal bytes         *)
(*   control byte c in 129..255: repeat the next byte 257-c times      *)
(* Worst case adds one byte per 128 of input; serialized events are    *)
(* full of zero bytes (little-endian small ints), so runs are common.  *)
(* ------------------------------------------------------------------ *)

let pack src =
  let n = Bytes.length src in
  let out = Buffer.create (max 16 (n / 2)) in
  let i = ref 0 in
  while !i < n do
    let c = Bytes.get src !i in
    let run = ref 1 in
    while !i + !run < n && !run < 128 && Bytes.get src (!i + !run) = c do
      incr run
    done;
    if !run >= 3 then begin
      Buffer.add_uint8 out (257 - !run);
      Buffer.add_char out c;
      i := !i + !run
    end
    else begin
      (* Literal stretch: extend until the next run of >= 3 equal bytes
         or the 128-byte control limit. *)
      let start = !i in
      let stop = ref (!i + !run) in
      let continue = ref true in
      while !continue && !stop < n && !stop - start < 128 do
        let c' = Bytes.get src !stop in
        let r = ref 1 in
        while !stop + !r < n && !r < 3 && Bytes.get src (!stop + !r) = c' do
          incr r
        done;
        if !r >= 3 then continue := false
        else stop := min (!stop + !r) (start + 128)
      done;
      let len = !stop - start in
      Buffer.add_uint8 out (len - 1);
      Buffer.add_subbytes out src start len;
      i := start + len
    end
  done;
  Buffer.to_bytes out

let unpack ~raw_len src =
  let out = Bytes.create raw_len in
  let n = Bytes.length src in
  let i = ref 0 and o = ref 0 in
  while !i < n do
    let c = Char.code (Bytes.get src !i) in
    incr i;
    if c < 128 then begin
      let len = c + 1 in
      Bytes.blit src !i out !o len;
      i := !i + len;
      o := !o + len
    end
    else begin
      let len = 257 - c in
      Bytes.fill out !o len (Bytes.get src !i);
      incr i;
      o := !o + len
    end
  done;
  if !o <> raw_len then invalid_arg "Tape.unpack: corrupt segment";
  out

(* ------------------------------------------------------------------ *)
(* Sealing and decoding                                                *)
(* ------------------------------------------------------------------ *)

let seal t =
  let buf = Buffer.create (t.open_bytes + 64) in
  let grants = ref [] in
  for i = 0 to t.seg_entries - 1 do
    let e = t.open_buf.(i) in
    (match e.t_grant with
    | Some g -> grants := (i, g) :: !grants
    | None -> ());
    serialize_entry buf e
  done;
  let raw = Buffer.to_bytes buf in
  let packed = pack raw in
  let seg =
    {
      s_packed = packed;
      s_raw_len = Bytes.length raw;
      s_grants = Array.of_list (List.rev !grants);
    }
  in
  let segno = t.open_first / t.seg_entries in
  Hashtbl.replace t.sealed segno seg;
  t.c_sealed <- t.c_sealed + 1;
  t.c_packed_bytes <- t.c_packed_bytes + Bytes.length packed;
  t.c_raw_bytes <- t.c_raw_bytes + seg.s_raw_len;
  Array.fill t.open_buf 0 t.seg_entries dummy;
  t.open_first <- t.open_first + t.seg_entries;
  t.open_len <- 0;
  t.open_bytes <- 0

let decode t segno =
  if t.cache_segno = segno then t.cache_entries
  else begin
    let seg =
      match Hashtbl.find_opt t.sealed segno with
      | Some s -> s
      | None ->
        raise (Truncated { requested = segno * t.seg_entries; base = t.base })
    in
    let raw = unpack ~raw_len:seg.s_raw_len seg.s_packed in
    let pos = ref 0 in
    let entries =
      Array.init t.seg_entries (fun _ ->
          let e, p = deserialize_entry raw !pos in
          pos := p;
          e)
    in
    Array.iter
      (fun (i, g) -> entries.(i) <- { (entries.(i)) with t_grant = Some g })
      seg.s_grants;
    t.cache_segno <- segno;
    t.cache_entries <- entries;
    entries
  end

(* ------------------------------------------------------------------ *)
(* Public operations                                                   *)
(* ------------------------------------------------------------------ *)

(* Flatten at capture time: [out] is the leader's result buffer, handed
   over before any pool chunk can be recycled. Pure (no engine calls) —
   runs inside Ring.publish_k. *)
let append t (e : Event.t) ~out =
  if t.open_len = t.seg_entries then seal t;
  let en =
    {
      t_kind = e.Event.kind;
      t_sysno = e.Event.sysno;
      t_tid = e.Event.tid;
      t_args = e.Event.args;
      t_ret = e.Event.ret;
      t_clock = e.Event.clock;
      t_out = out;
      t_grant = e.Event.grant;
    }
  in
  t.open_buf.(t.open_len) <- en;
  t.open_len <- t.open_len + 1;
  t.open_bytes <- t.open_bytes + entry_raw_size en;
  t.total <- t.total + 1

let get t i =
  if i < 0 || i >= t.total then invalid_arg "Tape.get: out of range";
  if i < t.base then raise (Truncated { requested = i; base = t.base });
  if i >= t.open_first then t.open_buf.(i - t.open_first)
  else (decode t (i / t.seg_entries)).(i mod t.seg_entries)

(* Reconstruct a stream event from a tape entry. The payload travels
   inline regardless of size: the pool chunk it came from is long gone. *)
let event_of_entry (en : entry) : Event.t =
  {
    Event.kind = en.t_kind;
    sysno = en.t_sysno;
    tid = en.t_tid;
    args = en.t_args;
    ret = en.t_ret;
    clock = en.t_clock;
    payload = None;
    payload_len = 0;
    inline_out = en.t_out;
    grant = en.t_grant;
  }

let event_at t i = event_of_entry (get t i)

let iter f t =
  for i = t.base to t.total - 1 do
    f (get t i)
  done

(* Drop whole sealed segments strictly below [keep_from]. Absolute
   indices are preserved: after retiring, [base] is the first index of
   the oldest surviving segment, and any read below it raises
   {!Truncated}. Never touches the open segment. *)
let retire t ~keep_from =
  let keep_from = max 0 (min keep_from t.open_first) in
  let keep_seg = keep_from / t.seg_entries in
  let first_seg = t.base / t.seg_entries in
  for segno = first_seg to keep_seg - 1 do
    match Hashtbl.find_opt t.sealed segno with
    | None -> ()
    | Some seg ->
      Hashtbl.remove t.sealed segno;
      t.c_retired <- t.c_retired + 1;
      t.c_packed_bytes <- t.c_packed_bytes - Bytes.length seg.s_packed;
      t.c_raw_bytes <- t.c_raw_bytes - seg.s_raw_len;
      if t.cache_segno = segno then begin
        t.cache_segno <- -1;
        t.cache_entries <- [||]
      end
  done;
  if keep_seg * t.seg_entries > t.base then t.base <- keep_seg * t.seg_entries

let resident_bytes t = t.c_packed_bytes + t.open_bytes

let stats t =
  {
    segments_sealed = t.c_sealed;
    segments_retired = t.c_retired;
    resident_bytes = resident_bytes t;
    packed_bytes = t.c_packed_bytes;
    raw_bytes = t.c_raw_bytes;
  }

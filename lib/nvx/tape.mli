(** Bounded in-memory stream tape for follower rejoin (rr-style
    catch-up).

    When the lifecycle manager is enabled, the session appends every
    published event to a per-tuple tape, flattened: shared-memory
    payloads are copied to inline bytes at capture time (before the pool
    chunk can be recycled), while tid, args, return value, Lamport stamp
    and descriptor grant are kept verbatim. A follower respawned from
    the zygote replays tape entries [restore, splice) through the
    ordinary replay path and then switches to the live ring at sequence
    [splice] — the recorded window is exactly what it missed.

    The tape is chunked so recorder memory stays bounded on million-
    event streams: entries fill a small open segment; full segments are
    sealed into a run-length-packed byte image; sealed segments below
    the retention floor (the oldest live checkpoint, see {!Checkpoint})
    are retired with {!retire}. Absolute indices never shift — entry [i]
    is entry [i] forever, and a read below {!base} raises {!Truncated}.

    {!Record_replay.serialize_tape} bridges a tape into the on-disk
    record/replay log format, which is how a degraded session's retained
    stream can later provision fresh followers. *)

type entry = {
  t_kind : Varan_ringbuf.Event.kind;
  t_sysno : int;
  t_tid : int;
  t_args : int array;
  t_ret : int;
  t_clock : int;
  t_out : Bytes.t option;
  t_grant : Obj.t option;
}

type t

exception Truncated of { requested : int; base : int }
(** Read below the oldest retained entry: the segment holding
    [requested] was retired; [base] is the oldest index still
    replayable. *)

val create : ?segment_entries:int -> unit -> t
(** [segment_entries] is the sealing granularity (default 256): a
    segment seals — and can later be retired — only as a whole. *)

val length : t -> int
(** Events ever appended; also the next index to be written. *)

val base : t -> int
(** Oldest retained index. [0] until {!retire} drops a segment. *)

val append : t -> Varan_ringbuf.Event.t -> out:Bytes.t option -> unit
(** Capture one published event. [out] is the event's full result buffer
    (pool payload or inline), already materialized by the publisher.
    Pure — callable from inside {!Varan_ringbuf.Ring.publish_k}. *)

val get : t -> int -> entry
(** @raise Invalid_argument outside [0, length).
    @raise Truncated below {!base}. *)

val event_of_entry : entry -> Varan_ringbuf.Event.t
(** Reconstruct a stream event; the payload travels inline regardless of
    size (the pool chunk is long gone). *)

val event_at : t -> int -> Varan_ringbuf.Event.t
(** [event_of_entry (get t i)]. Sequential scans are cheap: the last
    decoded segment is cached. *)

val iter : (entry -> unit) -> t -> unit
(** Iterate the retained window [{!base}, {!length}) in order. *)

val retire : t -> keep_from:int -> unit
(** Drop whole sealed segments strictly below [keep_from]; afterwards
    {!base} is the first index of the oldest surviving segment (so it
    may round down below [keep_from] — truncation happens exactly at a
    segment boundary, never mid-segment). Monotone: never re-grows the
    window, never touches the open segment. *)

val resident_bytes : t -> int
(** Bytes currently held: packed sealed segments plus the raw-size
    estimate of the open segment. Bounded by retention, not by stream
    length. *)

type stats = {
  segments_sealed : int;
  segments_retired : int;
  resident_bytes : int;
  packed_bytes : int;  (** resident compressed bytes (sealed only) *)
  raw_bytes : int;  (** same segments before packing, for the ratio *)
}

val stats : t -> stats

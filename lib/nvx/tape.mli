(** In-memory stream tape for follower rejoin (rr-style catch-up).

    When the lifecycle manager is enabled, the session appends every
    published event to a per-tuple tape, flattened: shared-memory
    payloads are copied to inline bytes at capture time (before the pool
    chunk can be recycled), while tid, args, return value, Lamport stamp
    and descriptor grant are kept verbatim. A follower respawned from the
    zygote replays tape entries [0, splice) through the ordinary replay
    path and then switches to the live ring at sequence [splice] — the
    recorded prefix is exactly what it missed.

    {!Record_replay.serialize_tape} bridges a tape into the on-disk
    record/replay log format, which is how a degraded session's retained
    stream can later provision fresh followers. *)

type entry = {
  t_kind : Varan_ringbuf.Event.kind;
  t_sysno : int;
  t_tid : int;
  t_args : int array;
  t_ret : int;
  t_clock : int;
  t_out : Bytes.t option;
  t_grant : Obj.t option;
}

type t

val create : unit -> t
val length : t -> int

val append : t -> Varan_ringbuf.Event.t -> out:Bytes.t option -> unit
(** Capture one published event. [out] is the event's full result buffer
    (pool payload or inline), already materialized by the publisher.
    Pure — callable from inside {!Varan_ringbuf.Ring.publish_k}. *)

val get : t -> int -> entry
(** @raise Invalid_argument out of range. *)

val event_of_entry : entry -> Varan_ringbuf.Event.t
(** Reconstruct a stream event; the payload travels inline regardless of
    size (the pool chunk is long gone). *)

val event_at : t -> int -> Varan_ringbuf.Event.t

val iter : (entry -> unit) -> t -> unit

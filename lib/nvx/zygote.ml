module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Api = Varan_kernel.Api
module Rewrite_cache = Varan_binary.Rewrite_cache

type t = {
  k : Varan_kernel.Types.t;
  zproc : Varan_kernel.Types.proc;
  req_w : int; (* coordinator writes requests here *)
  resp_r : int; (* coordinator reads replies here *)
  coord_api : Api.t; (* pipe endpoints live in the coordinator's table *)
  mutable served : int;
  (* Requests and replies share one socket and replies are read a byte
     at a time, so two concurrent requesters would steal each other's
     reply bytes. Sessions sharing a zygote (the sharded serving hub) and
     concurrent respawn agents serialize here. *)
  mutable busy : bool;
  turn : E.Cond.cond;
  (* The spawn fast path: the zygote outlives every variant incarnation
     (it stays resident to serve respawns), so it owns the
     content-addressed cache of rewritten images. Launches after the
     first of each distinct image — replicas, respawned incarnations —
     rebase a cached entry instead of re-running the rewriter. *)
  rcache : Rewrite_cache.t;
  (* Same ownership argument for follower checkpoints: a respawned
     incarnation restores state captured before it existed, so the store
     must survive the incarnation — it lives with the zygote, next to
     the rewrite cache it mirrors. *)
  ckpts : Checkpoint.t;
}

let read_line api fd =
  let buf = Buffer.create 32 in
  let rec go () =
    match Api.read api fd 1 with
    | Ok b when Bytes.length b = 1 ->
      let c = Bytes.get b 0 in
      if c = '\n' then Buffer.contents buf
      else begin
        Buffer.add_char buf c;
        go ()
      end
    | Ok _ -> Buffer.contents buf (* EOF *)
    | Error _ -> Buffer.contents buf
  in
  go ()

let spawn ?cache ?checkpoints k ~launcher =
  (* The coordinator's process owns one end of each pipe; the zygote's
     process owns the other. For simplicity both pipes are created in a
     scratch process and the fds shared — the simulated kernel's
     open-file descriptions make this equivalent to inheriting across
     fork. *)
  let zproc = K.new_proc k "zygote" in
  let zapi = Api.direct k zproc in
  (* One UNIX-domain socket pair, as in Figure 2: the coordinator holds
     one end, the zygote the other; requests and replies share it. *)
  let coord_end, zygote_end =
    match Api.socketpair zapi with
    | Ok p -> p
    | Error _ -> failwith "zygote: socketpair"
  in
  let req_r, req_w = (zygote_end, coord_end) in
  let resp_r, resp_w = (coord_end, zygote_end) in
  let rcache =
    match cache with Some c -> c | None -> Rewrite_cache.create ()
  in
  let ckpts =
    match checkpoints with Some c -> c | None -> Checkpoint.create ()
  in
  let t =
    {
      k;
      zproc;
      req_w;
      resp_r;
      coord_api = zapi;
      served = 0;
      busy = false;
      turn = E.Cond.create "zygote-turn";
      rcache;
      ckpts;
    }
  in
  let service () =
    let rec loop () =
      let line = read_line zapi req_r in
      if line = "" then () (* coordinator closed the request pipe *)
      else begin
        (* Split on the first space only: variant names may contain
           spaces ("Lighttpd (wrk).v0"). *)
        let verb, payload =
          match String.index_opt line ' ' with
          | Some i ->
            ( String.sub line 0 i,
              String.sub line (i + 1) (String.length line - i - 1) )
          | None -> (line, "")
        in
        if verb = "FORK" && payload <> "" then begin
          let name = payload in
          let child = K.fork_proc k zproc name in
          (* Close the inherited protocol pipes in the child, as the real
             zygote does — otherwise the request pipe never reaches EOF. *)
          let child_api = Api.direct k child in
          List.iter
            (fun fd -> ignore (Api.close child_api fd))
            [ coord_end; zygote_end ];
          launcher child ~name;
          t.served <- t.served + 1;
          ignore
            (Api.write_str zapi resp_w
               (Printf.sprintf "OK %d\n" child.Varan_kernel.Types.pid));
          loop ()
        end
        else begin
          ignore (Api.write_str zapi resp_w "ERR\n");
          loop ()
        end
      end
    in
    loop ()
  in
  let tid = E.spawn_here ~name:"zygote" service in
  K.register_task k zproc tid;
  t

let fork_request t name =
  while t.busy do
    E.Cond.wait t.turn
  done;
  t.busy <- true;
  let release () =
    t.busy <- false;
    E.Cond.signal t.turn
  in
  match
    (match
       Api.write_str t.coord_api t.req_w (Printf.sprintf "FORK %s\n" name)
     with
    | Ok _ -> ()
    | Error _ -> failwith "zygote: request pipe broken");
    let reply = read_line t.coord_api t.resp_r in
    match String.split_on_char ' ' reply with
    | [ "OK"; pid ] -> int_of_string pid
    | _ -> failwith ("zygote: unexpected reply " ^ reply)
  with
  | pid ->
    release ();
    pid
  | exception e ->
    release ();
    raise e

let shutdown t = ignore (Api.close t.coord_api t.req_w)
let forks_served t = t.served
let cache t = t.rcache
let checkpoints t = t.ckpts

(** The zygote process (§3.1, Figure 2).

    The coordinator never forks variant processes itself — the second
    variant would inherit the first one's communication channels. Instead
    it spawns a single {e zygote} whose only job is to fork fresh
    processes on request. The request/response protocol runs over a pipe
    pair (standing in for the UNIX domain socket pair of the paper): the
    coordinator writes [FORK <name>\n] and the zygote answers
    [OK <pid>\n] after forking a process from its own pristine image and
    handing it to the registered launcher. *)

type t

val spawn :
  ?cache:Varan_binary.Rewrite_cache.t ->
  ?checkpoints:Checkpoint.t ->
  Varan_kernel.Types.t ->
  launcher:(Varan_kernel.Types.proc -> name:string -> unit) ->
  t
(** Create the zygote process and its service task. [launcher] is called
    in the zygote's context with each newly forked process; the session
    uses it to start the variant's monitor. Must be called from inside a
    running engine task.

    The zygote owns the spawn fast path's rewrite cache ([cache], or a
    fresh one): it is the only session participant resident across
    variant incarnations, so cached rewritten images survive respawns
    and every fork after the first of a given image is served by an
    O(sites) rebase. The follower checkpoint store ([checkpoints], or a
    fresh one) lives here for the same reason — a respawned incarnation
    restores state captured before it existed. *)

val fork_request : t -> string -> int
(** [fork_request z name] sends a fork request over the pipe and waits
    for the reply; returns the new pid. *)

val shutdown : t -> unit
(** Close the request pipe; the zygote task exits after draining. *)

val forks_served : t -> int

val cache : t -> Varan_binary.Rewrite_cache.t
(** The resident rewrite cache. *)

val checkpoints : t -> Checkpoint.t
(** The resident follower checkpoint store. *)

(* Per-shard flight recorder.

   A small ring of recent noteworthy events (ring stalls, publishes of
   interest, bridge epochs, watchdog verdicts), the full lifecycle
   transition history, the last known bridge/link state and the newest
   checkpoint position — always on, overwrite-oldest, a few field
   stores per note. When something goes wrong (the oracle flags
   divergence, a follower is quarantined or killed, a session degrades)
   the whole thing is dumped as a self-contained post-mortem JSON
   bundle, rr-style: enough context to localize the failure without
   rerunning the workload.

   Recorders are registered by scope (the same scope strings the stats
   registry uses: "shard3", or "" for an unscoped session), so a sharded
   deployment gets one black box per shard. *)

type entry = {
  ev_at : int64; (* engine vtime, cycles *)
  ev_lamport : int;
  ev_tag : string; (* short machine-greppable category, e.g. "ring.stall" *)
  ev_detail : string;
}

type transition = {
  tr_at : int64;
  tr_idx : int; (* variant index *)
  tr_from : string;
  tr_to : string;
  tr_reason : string;
}

type t = {
  fl_scope : string;
  cap : int;
  ring : entry array;
  mutable total : int; (* events ever recorded; ring slot = total mod cap *)
  mutable transitions : transition list; (* reversed *)
  mutable n_transitions : int;
  mutable link : string; (* last reported bridge/link state *)
  mutable checkpoint_seq : int; (* newest checkpoint seq; -1 = none *)
  mutable dumps : int;
}

let dummy = { ev_at = 0L; ev_lamport = 0; ev_tag = ""; ev_detail = "" }

(* Transition history is complete up to this bound; a session whose
   followers flap thousands of times keeps the newest window. *)
let max_transitions = 512

let registry : (string, t) Hashtbl.t = Hashtbl.create 8

let recording = ref true

let get ?(capacity = 64) scope =
  match Hashtbl.find_opt registry scope with
  | Some t -> t
  | None ->
    let t =
      {
        fl_scope = scope;
        cap = capacity;
        ring = Array.make capacity dummy;
        total = 0;
        transitions = [];
        n_transitions = 0;
        link = "";
        checkpoint_seq = -1;
        dumps = 0;
      }
    in
    Hashtbl.replace registry scope t;
    t

let find scope = Hashtbl.find_opt registry scope

let clear_registry () = Hashtbl.reset registry

let record t ~at ?(lamport = 0) tag detail =
  if !recording then begin
    t.ring.(t.total mod t.cap) <-
      { ev_at = at; ev_lamport = lamport; ev_tag = tag; ev_detail = detail };
    t.total <- t.total + 1
  end

let transition t ~at ~idx ~from_ ~to_ ~reason =
  if !recording then begin
    t.transitions <-
      { tr_at = at; tr_idx = idx; tr_from = from_; tr_to = to_;
        tr_reason = reason }
      :: (if t.n_transitions >= max_transitions then
            List.filteri (fun i _ -> i < max_transitions - 1) t.transitions
          else t.transitions);
    t.n_transitions <- min (t.n_transitions + 1) max_transitions
  end

let set_link t state = t.link <- state
let note_checkpoint t seq = if seq > t.checkpoint_seq then t.checkpoint_seq <- seq
let checkpoint_seq t = t.checkpoint_seq

(* Newest-last window of the event ring. *)
let entries t =
  let n = min t.total t.cap in
  List.init n (fun i -> t.ring.((t.total - n + i) mod t.cap))

let transitions t = List.rev t.transitions

(* ------------------------------------------------------------------ *)
(* Post-mortem bundles                                                 *)
(* ------------------------------------------------------------------ *)

(* Dumps are opt-in: torture sweeps quarantine followers on purpose
   hundreds of times per run, and only the harness knows which deaths
   are unexpected. Directed tests and `varan serve/run` arm this flag
   (or call [dump] themselves, pull-style). *)
let dump_enabled = ref false
let dump_dir = ref "."
let serial = ref 0
let last_dump : string option ref = ref None

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let dump t ~at ~reason =
  incr serial;
  t.dumps <- t.dumps + 1;
  let scope_part = if t.fl_scope = "" then "session" else t.fl_scope in
  let path =
    Filename.concat !dump_dir
      (Printf.sprintf "postmortem-%s-%d.json" scope_part !serial)
  in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"scope\": \"%s\",\n  \"reason\": \"%s\",\n"
    (json_escape t.fl_scope) (json_escape reason);
  Printf.fprintf oc "  \"at\": %Ld,\n" at;
  Printf.fprintf oc "  \"events_recorded\": %d,\n" t.total;
  Printf.fprintf oc "  \"checkpoint_seq\": %d,\n" t.checkpoint_seq;
  Printf.fprintf oc "  \"link\": \"%s\",\n" (json_escape t.link);
  output_string oc "  \"events\": [\n";
  let es = entries t in
  let n = List.length es in
  List.iteri
    (fun i e ->
      Printf.fprintf oc
        "    {\"at\": %Ld, \"lamport\": %d, \"tag\": \"%s\", \"detail\": \
         \"%s\"}%s\n"
        e.ev_at e.ev_lamport (json_escape e.ev_tag) (json_escape e.ev_detail)
        (if i = n - 1 then "" else ","))
    es;
  output_string oc "  ],\n  \"transitions\": [\n";
  let trs = transitions t in
  let n = List.length trs in
  List.iteri
    (fun i tr ->
      Printf.fprintf oc
        "    {\"at\": %Ld, \"idx\": %d, \"from\": \"%s\", \"to\": \"%s\", \
         \"reason\": \"%s\"}%s\n"
        tr.tr_at tr.tr_idx (json_escape tr.tr_from) (json_escape tr.tr_to)
        (json_escape tr.tr_reason)
        (if i = n - 1 then "" else ","))
    trs;
  output_string oc "  ],\n  \"counters\": {\n";
  let prefix = if t.fl_scope = "" then None else Some (t.fl_scope ^ ".") in
  let counters =
    Varan_util.Stats.counters ()
    |> List.filter (fun (name, _) ->
           match prefix with
           | None -> true
           | Some p -> String.length name >= String.length p
                       && String.sub name 0 (String.length p) = p)
  in
  let n = List.length counters in
  List.iteri
    (fun i (name, v) ->
      Printf.fprintf oc "    \"%s\": %d%s\n" (json_escape name) v
        (if i = n - 1 then "" else ","))
    counters;
  output_string oc "  }\n}\n";
  close_out oc;
  last_dump := Some path;
  path

let maybe_dump t ~at ~reason =
  if !dump_enabled then Some (dump t ~at ~reason) else None

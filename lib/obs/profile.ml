(* Hot-path cycle attribution.

   Each instrumented region charges the virtual cycles it spanned
   (measured by the caller as an [Engine.now_cycles] delta) to one of a
   fixed set of phases. The buckets are process-global plain int64
   accumulators: [add] is one load, one add, one store. Everything is
   gated on [enabled] at the call sites, so a disabled build pays a
   single load-and-branch per site.

   Two refinements keep the buckets disjoint (so they can be summed and
   compared against the engine's total task-cycles):

   - Suppression: a region that deliberately subsumes inner waits (the
     open-loop client's reply wait spans the kernel's blocking read)
     marks its task as suppressed; inner wait sites then skip their own
     attribution so the cycles are counted exactly once, in the outer
     phase.

   - Stolen cycles: a region that wants exclusive time (the leader's
     syscall-execute region should not absorb the vtime it spent parked
     in a kernel block) reads its task's [stolen] total before and
     after, and subtracts the delta; wait sites credit [stolen] as they
     charge their own phase.

   The per-task tables are only touched while profiling is enabled, so
   their cost never leaks into production paths. *)

type phase = int

let ring_wait = 0 (* follower parked waiting for leader events *)
let ring_gate = 1 (* leader parked on the publish gate (slow consumer) *)
let syscall_exec = 2 (* kernel execution of intercepted syscalls *)
let oracle_digest = 3 (* divergence digest + oracle checks *)
let rewrite = 4 (* binary rewrite / cached rebase at spawn *)
let bridge_wire = 5 (* cross-node frame encode + link occupancy *)
let sched_dispatch = 6 (* scheduler-induced resume lag (ticker jumps) *)
let kernel_wait = 7 (* blocked in the simulated kernel (unsuppressed) *)
let app_compute = 8 (* variant body cycles between intercepted syscalls *)
let client_idle = 9 (* open-loop worker ahead of schedule (arrival sleep) *)
let client_wait = 10 (* open-loop worker send-to-reply (incl. queueing) *)

let n_phases = 11

let phase_name = function
  | 0 -> "ring-wait"
  | 1 -> "ring-gate"
  | 2 -> "syscall-exec"
  | 3 -> "oracle-digest"
  | 4 -> "rewrite"
  | 5 -> "bridge-wire"
  | 6 -> "sched-dispatch"
  | 7 -> "kernel-wait"
  | 8 -> "app-compute"
  | 9 -> "client-idle"
  | 10 -> "client-wait"
  | _ -> "?"

let enabled = ref false

let buckets = Array.make n_phases 0L
let hits = Array.make n_phases 0

(* Per-task side tables; live only while profiling. *)
let suppress_tbl : (int, int) Hashtbl.t = Hashtbl.create 64
let stolen_tbl : (int, int64) Hashtbl.t = Hashtbl.create 64
let gap_tbl : (int, int64) Hashtbl.t = Hashtbl.create 64

(* The client backlog gauge: virtual time the open-loop generator was
   behind its own arrival schedule at each send. Not a phase (the cycles
   it measures are already attributed to whatever kept the worker busy);
   it is the direct signal for "client-worker scheduling is the
   bottleneck". *)
let backlog_cycles = ref 0L
let backlog_events = ref 0

let reset () =
  Array.fill buckets 0 n_phases 0L;
  Array.fill hits 0 n_phases 0;
  Hashtbl.reset suppress_tbl;
  Hashtbl.reset stolen_tbl;
  Hashtbl.reset gap_tbl;
  backlog_cycles := 0L;
  backlog_events := 0

let add p d =
  if d > 0L then begin
    buckets.(p) <- Int64.add buckets.(p) d;
    hits.(p) <- hits.(p) + 1
  end

let cycles p = buckets.(p)
let hit_count p = hits.(p)

let suppress tid =
  let d = Option.value (Hashtbl.find_opt suppress_tbl tid) ~default:0 in
  Hashtbl.replace suppress_tbl tid (d + 1)

let unsuppress tid =
  match Hashtbl.find_opt suppress_tbl tid with
  | Some d when d > 1 -> Hashtbl.replace suppress_tbl tid (d - 1)
  | Some _ -> Hashtbl.remove suppress_tbl tid
  | None -> ()

let suppressed tid = Hashtbl.mem suppress_tbl tid

let steal tid d =
  let s = Option.value (Hashtbl.find_opt stolen_tbl tid) ~default:0L in
  Hashtbl.replace stolen_tbl tid (Int64.add s d)

let stolen tid = Option.value (Hashtbl.find_opt stolen_tbl tid) ~default:0L

(* App-compute gap accounting: a variant unit marks its exit timestamp
   when an intercepted syscall returns; the next interposition charges
   the gap — the variant's own computation between syscalls. *)
let gap_mark tid ts = Hashtbl.replace gap_tbl tid ts

let gap_charge tid ts =
  match Hashtbl.find_opt gap_tbl tid with
  | None -> ()
  | Some last ->
    Hashtbl.remove gap_tbl tid;
    add app_compute (Int64.sub ts last)

let note_backlog d =
  if d > 0L then begin
    backlog_cycles := Int64.add !backlog_cycles d;
    incr backlog_events
  end

let backlog () = (!backlog_cycles, !backlog_events)

let total () = Array.fold_left Int64.add 0L buckets

let rows () =
  List.init n_phases (fun p -> (phase_name p, buckets.(p), hits.(p)))
  |> List.filter (fun (_, c, _) -> c > 0L)
  |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)

(* Render the attribution table. [total_cycles] is the denominator the
   coverage line is judged against — the engine's total task-cycles
   (busy + blocked vtime summed over every task's lifetime). *)
let render ~total_cycles =
  let tbl =
    Varan_util.Tablefmt.create ~title:"cycle attribution (virtual cycles)"
      [
        ("phase", Varan_util.Tablefmt.Left);
        ("cycles", Varan_util.Tablefmt.Right);
        ("% of total", Varan_util.Tablefmt.Right);
        ("hits", Varan_util.Tablefmt.Right);
      ]
  in
  let denom =
    if total_cycles > 0L then Int64.to_float total_cycles
    else Int64.to_float (max 1L (total ()))
  in
  List.iter
    (fun (name, c, n) ->
      Varan_util.Tablefmt.add_row tbl
        [
          name;
          Int64.to_string c;
          Printf.sprintf "%.1f%%" (100.0 *. Int64.to_float c /. denom);
          string_of_int n;
        ])
    (rows ());
  Varan_util.Tablefmt.add_rule tbl;
  let attributed = total () in
  Varan_util.Tablefmt.add_row tbl
    [
      "attributed";
      Int64.to_string attributed;
      Printf.sprintf "%.1f%%" (100.0 *. Int64.to_float attributed /. denom);
      "";
    ];
  Varan_util.Tablefmt.add_row tbl
    [ "total task-cycles"; Int64.to_string total_cycles; "100.0%"; "" ];
  let b = Buffer.create 512 in
  Buffer.add_string b (Varan_util.Tablefmt.render tbl);
  let bl, bn = backlog () in
  if bn > 0 then
    Buffer.add_string b
      (Printf.sprintf
         "client-worker backlog: %Ld cycles behind schedule over %d sends \
          (mean %.0f cycles/send)\n"
         bl bn
         (Int64.to_float bl /. float_of_int bn));
  Buffer.contents b

(* Virtual-time span tracer.

   Begin/end spans and instant events, stamped with the engine's virtual
   clock plus the caller's Lamport clock and (pid, tid) scope, recorded
   into a bounded pre-allocated buffer and exported as Chrome
   trace-event JSON (loadable in Perfetto / chrome://tracing).

   Recording must be near-free when off: every emit site is guarded by
   [enabled] (a single load-and-branch), and an enabled emit is four
   array stores plus two immediate-int stores — no allocation unless the
   caller builds an args string. When the buffer fills, new events are
   dropped (and counted) rather than overwriting old ones: dropping the
   oldest would orphan end-events and break span nesting in the export.

   Tracks: a track is a (pid, tid) pair. The engine emits one span per
   dispatch slice on pid 0 ("engine"); higher layers (sessions, shards)
   reserve a pid per scope via [pid_of_scope] so their spans nest on
   their own tracks and never interleave with the engine slices. *)

type kind = Begin | End | Instant

let enabled = ref false

type buf = {
  cap : int;
  kinds : kind array;
  ts : int array; (* engine vtime, cycles (immediate int, like the engine) *)
  lamport : int array;
  pids : int array;
  tids : int array;
  names : string array;
  args : string array; (* pre-rendered JSON object fragment or "" *)
  mutable len : int;
  mutable dropped : int;
}

let buf = ref None

(* Scope -> pid registry. Pid 0 is the engine's; scopes get 1, 2, ... in
   first-come order, stable for the lifetime of the trace. *)
let pids : (string, int) Hashtbl.t = Hashtbl.create 8
let next_pid = ref 1

let pid_of_scope scope =
  match Hashtbl.find_opt pids scope with
  | Some p -> p
  | None ->
    let p = !next_pid in
    incr next_pid;
    Hashtbl.replace pids scope p;
    p

let default_capacity = 1 lsl 18

let configure ?(capacity = default_capacity) () =
  buf :=
    Some
      {
        cap = capacity;
        kinds = Array.make capacity Instant;
        ts = Array.make capacity 0;
        lamport = Array.make capacity 0;
        pids = Array.make capacity 0;
        tids = Array.make capacity 0;
        names = Array.make capacity "";
        args = Array.make capacity "";
        len = 0;
        dropped = 0;
      };
  enabled := true

let disable () = enabled := false

let reset () =
  enabled := false;
  buf := None;
  Hashtbl.reset pids;
  next_pid := 1

let count () = match !buf with Some b -> b.len | None -> 0
let dropped () = match !buf with Some b -> b.dropped | None -> 0

let[@inline] emit kind ~ts ~lamport ~pid ~tid ~args name =
  match !buf with
  | None -> ()
  | Some b ->
    if b.len >= b.cap then b.dropped <- b.dropped + 1
    else begin
      let i = b.len in
      b.kinds.(i) <- kind;
      b.ts.(i) <- Int64.to_int ts;
      b.lamport.(i) <- lamport;
      b.pids.(i) <- pid;
      b.tids.(i) <- tid;
      b.names.(i) <- name;
      b.args.(i) <- args;
      b.len <- i + 1
    end

let begin_span ~ts ?(lamport = 0) ?(pid = 0) ~tid name =
  emit Begin ~ts ~lamport ~pid ~tid ~args:"" name

let end_span ~ts ?(lamport = 0) ?(pid = 0) ~tid name =
  emit End ~ts ~lamport ~pid ~tid ~args:"" name

let instant ~ts ?(lamport = 0) ?(pid = 0) ~tid ?(args = "") name =
  emit Instant ~ts ~lamport ~pid ~tid ~args name

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Chrome trace-event JSON. Timestamps are microseconds; the caller
   supplies the cycles-per-us conversion (the simulation's cost model
   clock). Process-name metadata rows label each scope's track group. *)
let write_chrome_json ?(cycles_per_us = 3500.0) path =
  let oc = open_out path in
  output_string oc "{\"traceEvents\":[\n";
  let first = ref true in
  let sep () =
    if !first then first := false else output_string oc ",\n"
  in
  sep ();
  output_string oc
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"engine\"}}";
  Hashtbl.iter
    (fun scope pid ->
      sep ();
      Printf.fprintf oc
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
        pid (json_escape scope))
    pids;
  (match !buf with
  | None -> ()
  | Some b ->
    for i = 0 to b.len - 1 do
      sep ();
      let ph =
        match b.kinds.(i) with Begin -> "B" | End -> "E" | Instant -> "i"
      in
      let us = float_of_int b.ts.(i) /. cycles_per_us in
      let extra =
        match b.kinds.(i) with Instant -> ",\"s\":\"t\"" | _ -> ""
      in
      if b.args.(i) = "" then
        Printf.fprintf oc
          "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d%s,\"args\":{\"lamport\":%d}}"
          (json_escape b.names.(i)) ph us b.pids.(i) b.tids.(i) extra
          b.lamport.(i)
      else
        Printf.fprintf oc
          "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d%s,\"args\":{\"lamport\":%d,%s}}"
          (json_escape b.names.(i)) ph us b.pids.(i) b.tids.(i) extra
          b.lamport.(i) b.args.(i)
    done;
    if b.dropped > 0 then begin
      sep ();
      Printf.fprintf oc
        "{\"name\":\"trace-buffer-full: %d events dropped\",\"ph\":\"i\",\"ts\":0,\"pid\":0,\"tid\":0,\"s\":\"g\",\"args\":{}}"
        b.dropped
    end);
  output_string oc "\n]}\n";
  close_out oc

type kind = Ev_syscall | Ev_signal | Ev_fork | Ev_exit

type t = {
  kind : kind;
  sysno : int;
  tid : int;
  args : int array;
  ret : int;
  clock : int;
  payload : Varan_shmem.Pool.chunk option;
  payload_len : int;
  inline_out : Bytes.t option;
  grant : Obj.t option;
}

let event_bytes = 64

let max_inline_bytes = 48

let make ?(kind = Ev_syscall) ?(tid = 0) ?(args = [||]) ?(ret = 0) ?payload
    ?(payload_len = 0) ?inline_out ?grant ~clock sysno =
  if Array.length args > 6 then
    invalid_arg "Event.make: more than six register arguments";
  (match inline_out with
  | Some b when Bytes.length b > max_inline_bytes ->
    invalid_arg "Event.make: inline payload exceeds the event size"
  | _ -> ());
  { kind; sysno; tid; args; ret; clock; payload; payload_len; inline_out; grant }

let fits_inline e = e.payload = None

(* Cross-ring form: the payload travels inside the event, however big —
   the [max_inline_bytes] cap only governs what the leader's hot path
   will copy into a live ring slot. The tape and the cross-node bridge
   both rebuild events this way. *)
let flatten e ~out = { e with payload = None; payload_len = 0; inline_out = out }

(* The kind-level half of the per-tid lane sync predicate: events whose
   replay must stay in global stream order regardless of which thread
   consumes them. Fork/exit/signal reshape the variant; a descriptor
   grant allocates fd numbers, which must match the leader's allocation
   order across sibling threads. Syscall-number-based refinements (close,
   futex) live with the layer that knows the numbering. *)
let is_ordering_kind e = e.kind <> Ev_syscall || e.grant <> None

let kind_name = function
  | Ev_syscall -> "syscall"
  | Ev_signal -> "signal"
  | Ev_fork -> "fork"
  | Ev_exit -> "exit"

(* Escaped prefix of a payload, so failure dumps show what the bytes
   were without flooding the terminal. *)
let pp_bytes_preview ppf b =
  let n = Bytes.length b in
  let shown = min n 16 in
  Format.pp_print_char ppf '"';
  for i = 0 to shown - 1 do
    let c = Bytes.get b i in
    if c >= ' ' && c <= '~' && c <> '"' && c <> '\\' then
      Format.pp_print_char ppf c
    else Format.fprintf ppf "\\x%02x" (Char.code c)
  done;
  if n > shown then Format.pp_print_string ppf "..";
  Format.fprintf ppf "\"(%dB)" n

let pp ppf e =
  Format.fprintf ppf "[%s nr=%d tid=%d clk=%d" (kind_name e.kind) e.sysno
    e.tid e.clock;
  if Array.length e.args > 0 then begin
    Format.pp_print_string ppf " args=(";
    Array.iteri
      (fun i a ->
        if i > 0 then Format.pp_print_char ppf ',';
        Format.pp_print_int ppf a)
      e.args;
    Format.pp_print_char ppf ')'
  end;
  Format.fprintf ppf " ret=%d" e.ret;
  (match e.inline_out with
  | Some b -> Format.fprintf ppf " out=%a" pp_bytes_preview b
  | None -> ());
  (match e.payload with
  | Some _ -> Format.fprintf ppf " shm:%dB" e.payload_len
  | None -> ());
  if e.grant <> None then Format.pp_print_string ppf " grant";
  Format.pp_print_char ppf ']'

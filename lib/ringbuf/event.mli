(** Ring-buffer events (§3.3.1 of the paper).

    Each event has a fixed 64-byte footprint — deliberately one x86 cache
    line — which fits a syscall with up to six register arguments, its
    result, a kind tag and the Lamport timestamp. Larger payloads do not
    travel in the event: the event carries a {e shared pointer} to a chunk
    in the shared-memory pool instead. File descriptors never travel in
    events at all (they use the data channel). *)

type kind =
  | Ev_syscall  (** a regular system call *)
  | Ev_signal  (** signal delivery *)
  | Ev_fork  (** clone/fork: a new ring is being set up *)
  | Ev_exit  (** exit/exit_group *)

type t = {
  kind : kind;
  sysno : int;  (** syscall number (or signal number for [Ev_signal]) *)
  tid : int;  (** issuing thread/unit index within the variant *)
  args : int array;  (** up to six register arguments *)
  ret : int;  (** result value *)
  clock : int;  (** Lamport timestamp (§3.3.3) *)
  payload : Varan_shmem.Pool.chunk option;
      (** shared pointer for out-buffer results *)
  payload_len : int;  (** valid bytes inside [payload] *)
  inline_out : Bytes.t option;
      (** small out-buffer results (vDSO timespecs, pipe fd pairs) that
          still fit inside the 64-byte event alongside the registers *)
  grant : Obj.t option;
      (** descriptor grant accompanying [New_fd] events. Modelled on the
          event for ordering; the {e cost} of the data-channel transfer is
          charged separately by the monitor (§3.3.2). *)
}

val event_bytes : int
(** 64 — the modelled size of one event. *)

val max_inline_bytes : int
(** 48 — the space left in a 64-byte event after the header fields. *)

val make :
  ?kind:kind -> ?tid:int -> ?args:int array -> ?ret:int ->
  ?payload:Varan_shmem.Pool.chunk -> ?payload_len:int ->
  ?inline_out:Bytes.t -> ?grant:Obj.t ->
  clock:int -> int -> t
(** [make ~clock sysno] builds an event. [args] defaults to [[||]],
    [ret] to [0], [tid] to [0]. @raise Invalid_argument with more than six
    args. *)

val fits_inline : t -> bool
(** Whether the event needed no shared-memory payload. *)

val flatten : t -> out:Bytes.t option -> t
(** [flatten e ~out] is [e] with its shared-memory payload replaced by
    [out] carried inline, whatever its size — the cross-ring form used
    when an event leaves the leader's ring for a medium with no pool
    attached (the replay tape, the cross-node bridge). The
    {!max_inline_bytes} cap governs only the leader's hot-path copy into
    a live ring slot, not rebuilt events. *)

val is_ordering_kind : t -> bool
(** The kind-level half of the per-tid lane sync predicate: [true] for
    events whose replay must stay in global stream order across sibling
    threads — non-syscall kinds (fork/exit/signal) and any event carrying
    a descriptor grant (grants allocate fd numbers in order). Layers that
    know the syscall numbering refine this with e.g. close and futex. *)

val pp : Format.formatter -> t -> unit
(** Full single-line rendering for failure dumps: kind, sysno, tid,
    clock, register args, ret, an escaped preview of any inline payload,
    the shared-memory payload length and a grant marker. *)

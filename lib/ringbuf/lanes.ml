(* Per-tid event lanes: a sharded sequencer demultiplexing one ring
   consumer into per-thread FIFO queues, so sibling threads of a
   multi-threaded follower replay their own syscalls without contending
   on the ring head. Events the predicate marks as *sync* are ordering
   barriers: they are routed only once every previously routed event has
   been consumed, and no further event is routed until the sync event
   itself is consumed — this is how the leader's global lock-acquisition
   order (futex results, fd grants, fork/exit) is preserved even though
   ordinary events replay concurrently per thread. *)

type t = {
  consumer : Event.t Ring.consumer;
  is_sync : Event.t -> bool;
  on_route : Event.t -> unit;
      (* runs after the event is queued in its lane, once per event, in
         stream order — the session layer's demux-time clock check. *)
  capacity : int;  (* max routed-but-unconsumed events *)
  mutable lanes : Event.t Queue.t array;  (* indexed by tid, grown on demand *)
  mutable outstanding : int;
  mutable barrier : bool;
  mutable sync_ev : Event.t option;
      (* the routed sync event holding the barrier; matched by physical
         equality on consume. *)
  mutable routed : int;
  mutable barrier_stalls : int;
  mutable max_depth : int;
}

type stats = { routed : int; barrier_stalls : int; max_depth : int }

let create ~consumer ~is_sync ~on_route ~capacity =
  if capacity < 1 then invalid_arg "Lanes.create: capacity < 1";
  {
    consumer;
    is_sync;
    on_route;
    capacity;
    lanes = Array.init 8 (fun _ -> Queue.create ());
    outstanding = 0;
    barrier = false;
    sync_ev = None;
    routed = 0;
    barrier_stalls = 0;
    max_depth = 0;
  }

let lane t tid =
  if tid < 0 then invalid_arg "Lanes: negative tid";
  let n = Array.length t.lanes in
  if tid >= n then begin
    let n' = ref (n * 2) in
    while tid >= !n' do n' := !n' * 2 done;
    let grown = Array.init !n' (fun i ->
        if i < n then t.lanes.(i) else Queue.create ())
    in
    t.lanes <- grown
  end;
  t.lanes.(tid)

let route t e =
  let q = lane t e.Event.tid in
  Queue.push e q;
  t.outstanding <- t.outstanding + 1;
  t.routed <- t.routed + 1;
  let d = Queue.length q in
  if d > t.max_depth then t.max_depth <- d;
  (* Demux-time hook runs after queueing: if it raises (divergence), the
     event is already in a lane and teardown's [drain] still reaches its
     payload. *)
  t.on_route e

let pump t =
  let continue = ref true in
  while !continue do
    if t.barrier || t.outstanding >= t.capacity then continue := false
    else
      match Ring.peek_h t.consumer with
      | None -> continue := false
      | Some e ->
        if t.is_sync e && t.outstanding > 0 then begin
          (* A sync event must see every earlier routed event consumed
             before it enters a lane; leave it in the ring. *)
          t.barrier_stalls <- t.barrier_stalls + 1;
          continue := false
        end
        else begin
          (match Ring.try_consume_h t.consumer with
          | Some e' -> assert (e' == e)  (* single demuxer per consumer *)
          | None -> assert false);
          if t.is_sync e then begin
            t.barrier <- true;
            t.sync_ev <- Some e;
            route t e;
            continue := false
          end
          else route t e
        end
  done

let peek t ~tid =
  if tid < 0 || tid >= Array.length t.lanes then None
  else Queue.peek_opt t.lanes.(tid)

let advance t ~tid =
  let q = lane t tid in
  match Queue.take_opt q with
  | None -> invalid_arg "Lanes.advance: empty lane"
  | Some e ->
    let was_at_cap = t.outstanding >= t.capacity in
    t.outstanding <- t.outstanding - 1;
    let cleared_barrier =
      match t.sync_ev with
      | Some s when s == e ->
        t.barrier <- false;
        t.sync_ev <- None;
        true
      | _ -> false
    in
    (* Pumping can newly make progress when the barrier lifted, when we
       dropped back below capacity, or when the lanes emptied (a sync
       event parked in the ring becomes routable). *)
    cleared_barrier || was_at_cap || t.outstanding = 0

let is_empty t = t.outstanding = 0
let outstanding t = t.outstanding

let drain t =
  let acc = ref [] in
  Array.iter
    (fun q ->
      while not (Queue.is_empty q) do
        acc := Queue.pop q :: !acc
      done)
    t.lanes;
  t.outstanding <- 0;
  t.barrier <- false;
  t.sync_ev <- None;
  List.rev !acc

let stats (t : t) =
  { routed = t.routed; barrier_stalls = t.barrier_stalls;
    max_depth = t.max_depth }

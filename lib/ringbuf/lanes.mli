(** Per-tid event lanes: a sharded per-thread sequencer in front of the
    ring.

    With a single ring consumer per follower, sibling threads of a
    multi-threaded variant serialize on the ring head: only the thread
    whose tid matches the head event may proceed, and everyone else
    waits. A {!t} demultiplexes the consumer once, in stream order, into
    per-tid FIFO lanes so each thread replays its own syscall results at
    ring speed.

    Cross-thread ordering survives because events the [is_sync]
    predicate selects (lock acquisitions, descriptor grants, fork/exit,
    signals — anything whose {e global} order is the semantics) act as
    barriers: such an event is routed only when every earlier routed
    event has been consumed, and nothing further is routed until it is
    consumed itself. The leader logs its lock-acquisition order through
    these events and followers are forced to replay it (§3.3.3 of the
    paper).

    Not engine-blocking: no function here performs engine effects; the
    caller (the session layer) decides when to wait and what to charge. *)

type t

val create :
  consumer:Event.t Ring.consumer ->
  is_sync:(Event.t -> bool) ->
  on_route:(Event.t -> unit) ->
  capacity:int ->
  t
(** [on_route] runs once per event, in stream order, right after the
    event lands in its lane — the demux-time Lamport-clock check. If it
    raises, the event stays in the lane so {!drain} still reaches its
    payload. [capacity] bounds routed-but-unconsumed events (≥ 1). *)

val pump : t -> unit
(** Demultiplex as many published events as the barrier and capacity
    allow. Non-blocking; safe to call from any sibling thread (they are
    engine tasks, so calls never interleave). *)

val peek : t -> tid:int -> Event.t option
(** Next unconsumed event for this thread, if any has been routed. *)

val advance : t -> tid:int -> bool
(** Consume the head event of [tid]'s lane. Returns [true] when the
    consumption may have unblocked the pump (barrier lifted, dropped
    below capacity, or lanes emptied) — the caller should poke the ring
    so parked siblings re-pump. @raise Invalid_argument on an empty
    lane. *)

val is_empty : t -> bool
(** No routed-but-unconsumed events. Together with a just-run {!pump}
    this implies the ring is also drained {e or} blocked on a sync event
    — and a sync event would have been routed when [is_empty], so after
    [pump]: [is_empty t] ⟹ nothing consumable anywhere. *)

val outstanding : t -> int
(** Routed-but-unconsumed event count (the lanes' contribution to a
    follower's lag). *)

val drain : t -> Event.t list
(** Teardown: remove and return every routed-but-unconsumed event (for
    payload release), clearing the barrier. *)

type stats = {
  routed : int;  (** events demultiplexed into lanes *)
  barrier_stalls : int;
      (** times a sync event had to wait for the lanes to empty *)
  max_depth : int;  (** deepest any single lane has been *)
}

val stats : t -> stats

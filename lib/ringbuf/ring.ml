module E = Varan_sim.Engine
module Cond = E.Cond

type consumer = { cid : int; mutable cursor : int; mutable active : bool }

type 'a tap = {
  tap_publish : seq:int -> 'a -> unit;
  tap_consume : cid:int -> seq:int -> 'a -> unit;
}

type stats = {
  publishes : int;
  consumes : int;
  producer_stalls : int;
  consumer_stalls : int;
}

type 'a t = {
  rname : string;
  slots : 'a option array;
  mutable head : int; (* next sequence number to publish *)
  mutable consumers : consumer list;
  mutable next_cid : int;
  not_empty : Cond.cond;
  not_full : Cond.cond;
  activity : Cond.cond;
  mutable n_publishes : int;
  mutable n_consumes : int;
  mutable n_producer_stalls : int;
  mutable n_consumer_stalls : int;
  mutable tap : 'a tap option;
}

let create ?(size = 256) rname =
  if size < 1 then invalid_arg "Ring.create: size must be positive";
  {
    rname;
    slots = Array.make size None;
    head = 0;
    consumers = [];
    next_cid = 0;
    not_empty = Cond.create (rname ^ "-not-empty");
    not_full = Cond.create (rname ^ "-not-full");
    activity = Cond.create (rname ^ "-activity");
    n_publishes = 0;
    n_consumes = 0;
    n_producer_stalls = 0;
    n_consumer_stalls = 0;
    tap = None;
  }

let size t = Array.length t.slots
let name t = t.rname
let set_tap t tap = t.tap <- tap

let add_consumer t =
  let c = { cid = t.next_cid; cursor = t.head; active = true } in
  t.next_cid <- t.next_cid + 1;
  t.consumers <- c :: t.consumers;
  c.cid

let find_consumer t cid =
  match List.find_opt (fun c -> c.cid = cid && c.active) t.consumers with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Ring %s: no consumer %d" t.rname cid)

let remove_consumer t cid =
  match List.find_opt (fun c -> c.cid = cid) t.consumers with
  | None -> ()
  | Some c ->
    c.active <- false;
    t.consumers <- List.filter (fun c -> c.cid <> cid) t.consumers;
    (* The departed consumer may have been the one holding the ring full. *)
    Cond.broadcast t.not_full

let active_consumers t = List.length t.consumers

let min_cursor t =
  List.fold_left (fun acc c -> min acc c.cursor) t.head t.consumers

let is_full t = t.head - min_cursor t >= Array.length t.slots

let publish_now t v =
  (* Slots behind every consumer are dead; overwriting implements the
     paper's immediate deallocation of consumed events. *)
  let seq = t.head in
  t.slots.(seq mod Array.length t.slots) <- Some v;
  t.head <- seq + 1;
  t.n_publishes <- t.n_publishes + 1;
  (match t.tap with Some tp -> tp.tap_publish ~seq v | None -> ());
  Cond.broadcast t.not_empty;
  Cond.broadcast t.activity

let publish t v =
  while is_full t do
    t.n_producer_stalls <- t.n_producer_stalls + 1;
    Cond.wait t.not_full
  done;
  publish_now t v

let publish_k t make =
  while is_full t do
    t.n_producer_stalls <- t.n_producer_stalls + 1;
    Cond.wait t.not_full
  done;
  (* No effects between the space check and the slot write: the claimed
     sequence number and the caller's timestamp stay in order. *)
  publish_now t (make ())

let try_publish t v =
  if is_full t then begin
    t.n_producer_stalls <- t.n_producer_stalls + 1;
    false
  end
  else begin
    publish_now t v;
    true
  end

let consume_now t c =
  let seq = c.cursor in
  match t.slots.(seq mod Array.length t.slots) with
  | None -> assert false
  | Some v ->
    c.cursor <- seq + 1;
    t.n_consumes <- t.n_consumes + 1;
    (match t.tap with
    | Some tp -> tp.tap_consume ~cid:c.cid ~seq v
    | None -> ());
    Cond.broadcast t.not_full;
    Cond.broadcast t.activity;
    v

let consume t cid =
  let c = find_consumer t cid in
  while c.cursor >= t.head do
    t.n_consumer_stalls <- t.n_consumer_stalls + 1;
    Cond.wait t.not_empty
  done;
  consume_now t c

let try_consume t cid =
  let c = find_consumer t cid in
  if c.cursor >= t.head then begin
    t.n_consumer_stalls <- t.n_consumer_stalls + 1;
    None
  end
  else Some (consume_now t c)

let peek t cid =
  let c = find_consumer t cid in
  if c.cursor >= t.head then None
  else t.slots.(c.cursor mod Array.length t.slots)

let lag t cid =
  let c = find_consumer t cid in
  t.head - c.cursor

let cursor t cid = (find_consumer t cid).cursor

let unread t cid =
  let c = find_consumer t cid in
  let len = Array.length t.slots in
  let rec go seq acc =
    if seq >= t.head then List.rev acc
    else
      go (seq + 1)
        (match t.slots.(seq mod len) with
        | Some v -> v :: acc
        | None -> acc)
  in
  go c.cursor []

let published t = t.head

let stats t =
  {
    publishes = t.n_publishes;
    consumes = t.n_consumes;
    producer_stalls = t.n_producer_stalls;
    consumer_stalls = t.n_consumer_stalls;
  }

let wait_activity t = Cond.wait t.activity
let wait_activity_timeout t cycles = Cond.wait_timeout t.activity cycles

let poke t =
  Cond.broadcast t.not_empty;
  Cond.broadcast t.not_full;
  Cond.broadcast t.activity

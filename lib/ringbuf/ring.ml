module E = Varan_sim.Engine
module Cond = E.Cond
module Prof = Varan_sim.Prof
module Phase = Varan_obs.Profile

type 'a tap = {
  tap_publish : seq:int -> 'a -> unit;
  tap_consume : cid:int -> seq:int -> 'a -> unit;
}

type stats = {
  publishes : int;
  consumes : int;
  producer_stalls : int;
  consumer_stalls : int;
  publish_wakeups : int;
  consume_wakeups : int;
  gate_recomputes : int;
}

type 'a t = {
  rname : string;
  slots : 'a option array;
  mutable head : int; (* next sequence number to publish *)
  (* O(1) consumer registry, keyed by cid. Slots of departed consumers are
     [None]; the array only ever grows (cids are never reused). *)
  mutable registry : 'a consumer option array;
  mutable next_cid : int;
  mutable nactive : int;
  (* Gating sequence (Disruptor-style): a conservative lower bound on the
     minimum consumer cursor. The producer checks fullness against this
     cache and folds over the registry only when the cached gate is
     actually reached, so consumer progress costs the producer nothing
     until the ring really wraps onto the slowest cursor. *)
  mutable gate : int;
  not_empty : Cond.cond;
  not_full : Cond.cond;
  activity : Cond.cond;
  mutable n_publishes : int;
  mutable n_consumes : int;
  mutable n_producer_stalls : int;
  mutable n_consumer_stalls : int;
  mutable n_publish_wakeups : int;
  mutable n_consume_wakeups : int;
  mutable n_gate_recomputes : int;
  mutable tap : 'a tap option;
  (* Called each time the producer parks because the ring is full, with
     the cids whose cursors sit on the gating sequence — who the producer
     is actually waiting for. The lifecycle oracle uses it to prove the
     leader never blocks on a quarantined consumer. *)
  mutable stall_hook : (int list -> unit) option;
}

and 'a consumer = {
  c_ring : 'a t;
  cid : int;
  mutable cursor : int;
  mutable active : bool;
}

let create ?(size = 256) rname =
  if size < 1 then invalid_arg "Ring.create: size must be positive";
  {
    rname;
    slots = Array.make size None;
    head = 0;
    registry = Array.make 4 None;
    next_cid = 0;
    nactive = 0;
    gate = 0;
    not_empty = Cond.create (rname ^ "-not-empty");
    not_full = Cond.create (rname ^ "-not-full");
    activity = Cond.create (rname ^ "-activity");
    n_publishes = 0;
    n_consumes = 0;
    n_producer_stalls = 0;
    n_consumer_stalls = 0;
    n_publish_wakeups = 0;
    n_consume_wakeups = 0;
    n_gate_recomputes = 0;
    tap = None;
    stall_hook = None;
  }

let size t = Array.length t.slots
let name t = t.rname
let set_tap t tap = t.tap <- tap
let set_stall_hook t hook = t.stall_hook <- hook

(* ------------------------------------------------------------------ *)
(* Consumer registry                                                   *)
(* ------------------------------------------------------------------ *)

let subscribe t =
  let cid = t.next_cid in
  t.next_cid <- cid + 1;
  if cid >= Array.length t.registry then begin
    let bigger = Array.make (2 * Array.length t.registry) None in
    Array.blit t.registry 0 bigger 0 (Array.length t.registry);
    t.registry <- bigger
  end;
  let c = { c_ring = t; cid; cursor = t.head; active = true } in
  t.registry.(cid) <- Some c;
  t.nactive <- t.nactive + 1;
  (* A new cursor starts at [head >= gate], so the cached gate stays a
     valid lower bound. *)
  c

let add_consumer t = (subscribe t).cid

let handle t cid =
  if cid < 0 || cid >= Array.length t.registry then
    invalid_arg (Printf.sprintf "Ring %s: no consumer %d" t.rname cid)
  else
    match t.registry.(cid) with
    | Some c when c.active -> c
    | _ -> invalid_arg (Printf.sprintf "Ring %s: no consumer %d" t.rname cid)

let consumer_cid c = c.cid

let unsubscribe c =
  let t = c.c_ring in
  if c.active then begin
    c.active <- false;
    t.registry.(c.cid) <- None;
    t.nactive <- t.nactive - 1;
    (* The departed consumer may have been the one holding the ring full. *)
    Cond.broadcast_if_waiting t.not_full
  end

let remove_consumer t cid =
  if cid >= 0 && cid < Array.length t.registry then
    match t.registry.(cid) with Some c -> unsubscribe c | None -> ()

let active_consumers t = t.nactive

(* ------------------------------------------------------------------ *)
(* Gating                                                              *)
(* ------------------------------------------------------------------ *)

let recompute_gate t =
  t.n_gate_recomputes <- t.n_gate_recomputes + 1;
  let m = ref t.head in
  Array.iter
    (function
      | Some c -> if c.active && c.cursor < !m then m := c.cursor
      | None -> ())
    t.registry;
  t.gate <- !m

let is_full t =
  t.head - t.gate >= Array.length t.slots
  && begin
       recompute_gate t;
       t.head - t.gate >= Array.length t.slots
     end

(* Sequence slots available for publishing with no further gate check. At
   least 1 whenever [is_full t] just returned false. *)
let available t = Array.length t.slots - (t.head - t.gate)

(* Active consumers whose cursor equals the current minimum — the ones a
   full ring is actually gated on. Recomputes the gate so the answer is
   exact even between producer checks. *)
let gating_cids t =
  recompute_gate t;
  if t.head - t.gate < Array.length t.slots then []
  else
    Array.fold_left
      (fun acc c ->
        match c with
        | Some c when c.active && c.cursor = t.gate -> c.cid :: acc
        | _ -> acc)
      [] t.registry
    |> List.rev

(* One producer park: count it and report who is holding the gate. *)
let producer_stall t =
  t.n_producer_stalls <- t.n_producer_stalls + 1;
  if !Varan_obs.Trace.enabled then
    Varan_obs.Trace.instant ~ts:(E.now_cycles ())
      ~tid:(E.self () :> int)
      (t.rname ^ ".full");
  match t.stall_hook with
  | Some hook -> hook (gating_cids t)
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Publish                                                             *)
(* ------------------------------------------------------------------ *)

let wake_consumers t =
  if Cond.has_waiters t.not_empty || Cond.has_waiters t.activity then begin
    t.n_publish_wakeups <- t.n_publish_wakeups + 1;
    Cond.broadcast_if_waiting t.not_empty;
    Cond.broadcast_if_waiting t.activity
  end

(* Write one slot without waking anyone: batch paths wake once per run. *)
let publish_slot t v =
  (* Slots behind every consumer are dead; overwriting implements the
     paper's immediate deallocation of consumed events. *)
  let seq = t.head in
  t.slots.(seq mod Array.length t.slots) <- Some v;
  t.head <- seq + 1;
  t.n_publishes <- t.n_publishes + 1;
  match t.tap with Some tp -> tp.tap_publish ~seq v | None -> ()

let publish_now t v =
  publish_slot t v;
  wake_consumers t

(* Park until the gate opens, attributing the stalled vtime to the
   ring-gate phase (leader blocked behind its slowest consumer). The
   attribution wrapper only engages once the ring is actually full, so
   the uncontended publish path is untouched. *)
let wait_not_full t =
  if is_full t then begin
    let t0 = Prof.mark () in
    while is_full t do
      producer_stall t;
      Cond.wait t.not_full
    done;
    Prof.charge_wait Phase.ring_gate t0
  end

let publish t v =
  wait_not_full t;
  publish_now t v

let publish_k t make =
  wait_not_full t;
  (* No effects between the space check and the slot write: the claimed
     sequence number and the caller's timestamp stay in order. *)
  publish_now t (make ())

let try_publish t v =
  if is_full t then begin
    t.n_producer_stalls <- t.n_producer_stalls + 1;
    false
  end
  else begin
    publish_now t v;
    true
  end

let publish_batch t vs =
  let n = Array.length vs in
  let i = ref 0 in
  while !i < n do
    wait_not_full t;
    (* Claim the longest run the gate allows with this one check, write
       every slot, then wake consumers once for the whole run. *)
    let take = min (available t) (n - !i) in
    for j = !i to !i + take - 1 do
      publish_slot t vs.(j)
    done;
    i := !i + take;
    wake_consumers t
  done

(* ------------------------------------------------------------------ *)
(* Consume                                                             *)
(* ------------------------------------------------------------------ *)

(* A consume opens producer space only if this cursor sat on the gate
   itself; anyone stalled behind [wait_activity] still needs the head
   advance (sibling-thread ordering in the NVX layer relies on it). *)
let wake_after_consume t ~was_gating =
  if
    (was_gating && Cond.has_waiters t.not_full) || Cond.has_waiters t.activity
  then begin
    t.n_consume_wakeups <- t.n_consume_wakeups + 1;
    if was_gating then Cond.broadcast_if_waiting t.not_full;
    Cond.broadcast_if_waiting t.activity
  end

let consume_slot t c =
  let seq = c.cursor in
  match t.slots.(seq mod Array.length t.slots) with
  | None -> assert false
  | Some v ->
    c.cursor <- seq + 1;
    t.n_consumes <- t.n_consumes + 1;
    (match t.tap with
    | Some tp -> tp.tap_consume ~cid:c.cid ~seq v
    | None -> ());
    v

let consume_now t c =
  let was_gating = c.cursor = t.gate in
  let v = consume_slot t c in
  wake_after_consume t ~was_gating;
  v

(* Park until events arrive, attributing the stalled vtime to the
   ring-wait phase (follower ahead of its leader). *)
let wait_not_empty t c =
  if c.cursor >= t.head then begin
    let t0 = Prof.mark () in
    while c.cursor >= t.head do
      t.n_consumer_stalls <- t.n_consumer_stalls + 1;
      Cond.wait t.not_empty
    done;
    Prof.charge_wait Phase.ring_wait t0
  end

let consume_h c =
  let t = c.c_ring in
  wait_not_empty t c;
  consume_now t c

let try_consume_h c =
  let t = c.c_ring in
  if c.cursor >= t.head then begin
    t.n_consumer_stalls <- t.n_consumer_stalls + 1;
    None
  end
  else Some (consume_now t c)

let consume_batch_h c ~max =
  if max < 1 then invalid_arg "Ring.consume_batch: max must be positive";
  let t = c.c_ring in
  wait_not_empty t c;
  (* Drain the run with one gate check and one wakeup at the end. *)
  let was_gating = c.cursor = t.gate in
  let run = min max (t.head - c.cursor) in
  let out = List.init run (fun _ -> consume_slot t c) in
  wake_after_consume t ~was_gating;
  out

let try_consume_batch_h c ~max =
  let t = c.c_ring in
  if c.cursor >= t.head then []
  else begin
    let was_gating = c.cursor = t.gate in
    let run = min max (t.head - c.cursor) in
    let out = List.init run (fun _ -> consume_slot t c) in
    wake_after_consume t ~was_gating;
    out
  end

let peek_h c =
  let t = c.c_ring in
  if c.cursor >= t.head then None
  else t.slots.(c.cursor mod Array.length t.slots)

let lag_h c = c.c_ring.head - c.cursor
let cursor_h c = c.cursor

let unread_h c =
  let t = c.c_ring in
  let len = Array.length t.slots in
  let rec go seq acc =
    if seq >= t.head then List.rev acc
    else
      go (seq + 1)
        (match t.slots.(seq mod len) with
        | Some v -> v :: acc
        | None -> acc)
  in
  go c.cursor []

(* cid-keyed compatibility layer: one O(1) registry lookup per call. Hot
   loops should resolve a handle once instead. *)
let consume t cid = consume_h (handle t cid)
let try_consume t cid = try_consume_h (handle t cid)
let consume_batch t cid ~max = consume_batch_h (handle t cid) ~max
let peek t cid = peek_h (handle t cid)
let lag t cid = lag_h (handle t cid)
let cursor t cid = cursor_h (handle t cid)
let unread t cid = unread_h (handle t cid)

let published t = t.head

let stats t =
  {
    publishes = t.n_publishes;
    consumes = t.n_consumes;
    producer_stalls = t.n_producer_stalls;
    consumer_stalls = t.n_consumer_stalls;
    publish_wakeups = t.n_publish_wakeups;
    consume_wakeups = t.n_consume_wakeups;
    gate_recomputes = t.n_gate_recomputes;
  }

let wait_activity t = Cond.wait t.activity
let wait_activity_timeout t cycles = Cond.wait_timeout t.activity cycles

let poke t =
  Cond.broadcast t.not_empty;
  Cond.broadcast t.not_full;
  Cond.broadcast t.activity

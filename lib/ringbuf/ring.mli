(** Disruptor-style shared ring buffer (§3.3.1 of the paper).

    One producer (the leader) and any number of consumers (followers)
    share a fixed-size ring. The producer may not overwrite a slot some
    consumer has not read yet, so it stalls when the ring is full — this
    is the backpressure that makes a slow follower eventually slow the
    leader down. Consumers stall when they are caught up; the NVX layer
    chooses whether a stall busy-waits or blocks on a waitlock and charges
    cycles accordingly — the ring only counts the stalls.

    Events are deallocated as soon as every consumer has passed them
    (the paper's in-memory log is fixed size), so the ring also reports
    each consumer's {e lag}, used by the live-sanitization experiment. *)

type 'a t

val create : ?size:int -> string -> 'a t
(** [size] defaults to 256 events, the prototype's default. *)

val size : 'a t -> int
val name : 'a t -> string

val add_consumer : 'a t -> int
(** Register a consumer starting at the current head (it will only see
    events published after this call). Returns its consumer id. *)

val remove_consumer : 'a t -> int -> unit
(** Unsubscribe (e.g. a crashed follower, §5.1): its cursor no longer
    holds back the producer. *)

val active_consumers : 'a t -> int

val publish : 'a t -> 'a -> unit
(** Append one event; blocks while the ring is full. *)

val publish_k : 'a t -> (unit -> 'a) -> unit
(** [publish_k t make] waits for space, then runs [make] and publishes
    its result with no interleaving point in between — used by leaders
    whose event must carry a Lamport timestamp taken atomically with the
    slot claim (§3.3.3). [make] must not block. *)

val try_publish : 'a t -> 'a -> bool
(** Non-blocking variant; [false] when full. *)

val consume : 'a t -> int -> 'a
(** [consume ring cid] returns the next unread event for consumer [cid],
    blocking while none is available. *)

val try_consume : 'a t -> int -> 'a option

val peek : 'a t -> int -> 'a option
(** Next unread event without advancing. *)

val lag : 'a t -> int -> int
(** Events published but not yet read by this consumer. *)

val cursor : 'a t -> int -> int
(** The next sequence number consumer [cid] will read. *)

val unread : 'a t -> int -> 'a list
(** Events published but not yet read by this consumer, oldest first —
    what the failover path must account for (e.g. releasing payload
    references) when a crashed consumer is removed. *)

val published : 'a t -> int
(** Total events ever published. *)

val wait_activity_timeout : 'a t -> int -> bool
(** [wait_activity_timeout t cycles] waits for activity for at most the
    given budget; [false] on timeout. The adaptive-spin phase of the
    waitlock protocol (§3.3.1). *)

val wait_activity : 'a t -> unit
(** Block until something happens on the ring — a publish, a consume or a
    {!poke}. Used by follower threads waiting for a sibling to take the
    head event, and by the failover path. *)

val poke : 'a t -> unit
(** Wake everyone blocked on the ring (publishers, consumers and
    {!wait_activity} waiters) so they can re-examine shared state — the
    coordinator uses this during leader replacement (§3.3.2). *)

type stats = {
  publishes : int;
  consumes : int;
  producer_stalls : int;  (** publisher found the ring full *)
  consumer_stalls : int;  (** a consumer found the ring empty *)
}

val stats : 'a t -> stats

(** {1 Taps}

    A tap observes every publish and every consume with the event's
    sequence number — the trace oracle's view of the stream. Callbacks
    run synchronously inside the ring operation and must not block or
    perform engine effects. *)

type 'a tap = {
  tap_publish : seq:int -> 'a -> unit;
  tap_consume : cid:int -> seq:int -> 'a -> unit;
}

val set_tap : 'a t -> 'a tap option -> unit

(** Disruptor-style shared ring buffer (§3.3.1 of the paper).

    One producer (the leader) and any number of consumers (followers)
    share a fixed-size ring. The producer may not overwrite a slot some
    consumer has not read yet, so it stalls when the ring is full — this
    is the backpressure that makes a slow follower eventually slow the
    leader down. Consumers stall when they are caught up; the NVX layer
    chooses whether a stall busy-waits or blocks on a waitlock and charges
    cycles accordingly — the ring only counts the stalls.

    Events are deallocated as soon as every consumer has passed them
    (the paper's in-memory log is fixed size), so the ring also reports
    each consumer's {e lag}, used by the live-sanitization experiment.

    {b Hot path.} Consumers live in an array keyed by cid (O(1) lookup,
    or zero lookups via {!type:consumer} handles). The producer gates on a
    cached minimum-cursor sequence that is refreshed only when the cache
    says the ring is full; wakeups are taken only when someone is parked
    ({!Varan_sim.Engine.Cond.broadcast_if_waiting}); and the batch APIs
    claim or drain runs of slots with one gate check and one wakeup per
    run. See DESIGN.md §Hot path. *)

type 'a t

type 'a consumer
(** A resolved consumer handle: the cid lookup done once. All [_h]
    operations below are the cid-keyed ones minus the registry lookup.
    Using a handle after {!unsubscribe}/{!remove_consumer} is a
    programming error (consumes would assert on reclaimed slots). *)

val create : ?size:int -> string -> 'a t
(** [size] defaults to 256 events, the prototype's default. *)

val size : 'a t -> int
val name : 'a t -> string

val add_consumer : 'a t -> int
(** Register a consumer starting at the current head (it will only see
    events published after this call). Returns its consumer id. *)

val subscribe : 'a t -> 'a consumer
(** Like {!add_consumer} but returns the handle directly. *)

val handle : 'a t -> int -> 'a consumer
(** Resolve a cid to its handle. @raise Invalid_argument if no active
    consumer has this cid. *)

val consumer_cid : 'a consumer -> int

val remove_consumer : 'a t -> int -> unit
(** Unsubscribe (e.g. a crashed follower, §5.1): its cursor no longer
    holds back the producer. Unknown/already-removed cids are ignored. *)

val unsubscribe : 'a consumer -> unit
(** Handle-keyed {!remove_consumer}; idempotent. *)

val active_consumers : 'a t -> int

val publish : 'a t -> 'a -> unit
(** Append one event; blocks while the ring is full. *)

val publish_k : 'a t -> (unit -> 'a) -> unit
(** [publish_k t make] waits for space, then runs [make] and publishes
    its result with no interleaving point in between — used by leaders
    whose event must carry a Lamport timestamp taken atomically with the
    slot claim (§3.3.3). [make] must not block. *)

val try_publish : 'a t -> 'a -> bool
(** Non-blocking variant; [false] when full. *)

val publish_batch : 'a t -> 'a array -> unit
(** Append a run of events, blocking as needed. Each wait-free run of
    slots is claimed with a single gate check and consumers are woken
    once per run (not per event); taps still fire per event, in order.
    Equivalent to [Array.iter (publish t) vs] for every observer. *)

val consume : 'a t -> int -> 'a
(** [consume ring cid] returns the next unread event for consumer [cid],
    blocking while none is available. *)

val try_consume : 'a t -> int -> 'a option

val consume_batch : 'a t -> int -> max:int -> 'a list
(** [consume_batch ring cid ~max] blocks until at least one event is
    available, then drains up to [max] already-published events with one
    gate check and one producer wakeup for the whole run, oldest first.
    Equivalent to repeated {!consume} for every observer. *)

val peek : 'a t -> int -> 'a option
(** Next unread event without advancing. *)

val lag : 'a t -> int -> int
(** Events published but not yet read by this consumer. *)

val cursor : 'a t -> int -> int
(** The next sequence number consumer [cid] will read. *)

val unread : 'a t -> int -> 'a list
(** Events published but not yet read by this consumer, oldest first —
    what the failover path must account for (e.g. releasing payload
    references) when a crashed consumer is removed. *)

(** {1 Handle-keyed operations}

    Identical semantics to the cid-keyed versions above, minus the
    per-call registry lookup — for tight replay/pump loops. *)

val consume_h : 'a consumer -> 'a
val try_consume_h : 'a consumer -> 'a option
val consume_batch_h : 'a consumer -> max:int -> 'a list

val try_consume_batch_h : 'a consumer -> max:int -> 'a list
(** Non-blocking batch drain; [[]] when nothing is available. *)

val peek_h : 'a consumer -> 'a option
val lag_h : 'a consumer -> int
val cursor_h : 'a consumer -> int
val unread_h : 'a consumer -> 'a list

val published : 'a t -> int
(** Total events ever published. *)

val wait_activity_timeout : 'a t -> int -> bool
(** [wait_activity_timeout t cycles] waits for activity for at most the
    given budget; [false] on timeout. The adaptive-spin phase of the
    waitlock protocol (§3.3.1). *)

val wait_activity : 'a t -> unit
(** Block until something happens on the ring — a publish, a consume or a
    {!poke}. Used by follower threads waiting for a sibling to take the
    head event, and by the failover path. *)

val poke : 'a t -> unit
(** Wake everyone blocked on the ring (publishers, consumers and
    {!wait_activity} waiters) so they can re-examine shared state — the
    coordinator uses this during leader replacement (§3.3.2). *)

type stats = {
  publishes : int;
  consumes : int;
  producer_stalls : int;  (** publisher found the ring full *)
  consumer_stalls : int;  (** a consumer found the ring empty *)
  publish_wakeups : int;
      (** publish-side wakeups actually taken (some consumer was parked) *)
  consume_wakeups : int;
      (** consume-side wakeups actually taken (producer or activity
          waiter was parked) *)
  gate_recomputes : int;
      (** times the producer had to re-fold the registry because the
          cached gating sequence was reached *)
}

val stats : 'a t -> stats

(** {1 Taps}

    A tap observes every publish and every consume with the event's
    sequence number — the trace oracle's view of the stream. Callbacks
    run synchronously inside the ring operation and must not block or
    perform engine effects. *)

type 'a tap = {
  tap_publish : seq:int -> 'a -> unit;
  tap_consume : cid:int -> seq:int -> 'a -> unit;
}

val set_tap : 'a t -> 'a tap option -> unit

(** {1 Gate introspection}

    Who is the producer actually waiting for? The follower-lifecycle
    watchdog needs to prove a quarantined consumer can never again hold
    the leader's publish path, so the ring exposes the gating set and a
    hook that fires on every producer park. *)

val gating_cids : 'a t -> int list
(** Cids of active consumers whose cursor sits on the gating sequence
    while the ring is full — the consumers the producer would block on
    right now. [[]] when the ring has space. Recomputes the cached gate
    (exact, not the producer's conservative cache). *)

val set_stall_hook : 'a t -> (int list -> unit) option -> unit
(** Install a callback invoked each time a publisher parks on a full
    ring, with {!gating_cids} at that instant. Like taps, the callback
    runs synchronously and must not block or perform engine effects. *)

type chunk = {
  addr : int;
  bucket : int;
  data : Bytes.t;
  mutable live : bool;
}

exception Out_of_memory

type bucket = {
  chunk_size : int;
  mutable free_list : chunk list;
  mutable segments : int; (* segments owned by this bucket *)
}

type t = {
  segment_bytes : int;
  pool_segments : int; (* total segments in the pool *)
  mutable segments_used : int;
  buckets : bucket array; (* by power-of-two size, 64 .. segment_bytes *)
  mutable next_addr : int;
  mutable allocs : int;
  mutable frees : int;
  mutable lock_acquisitions : int;
  mutable live_chunks : int;
}

let min_chunk = 64

let create ?(pool_bytes = 16 * 1024 * 1024) ?(segment_bytes = 64 * 1024) () =
  if segment_bytes < min_chunk then invalid_arg "Pool.create: segment too small";
  let nbuckets =
    let rec count size n =
      if size >= segment_bytes then n + 1 else count (size * 2) (n + 1)
    in
    count min_chunk 0
  in
  {
    segment_bytes;
    pool_segments = max 1 (pool_bytes / segment_bytes);
    segments_used = 0;
    buckets =
      Array.init nbuckets (fun i ->
          { chunk_size = min_chunk lsl i; free_list = []; segments = 0 });
    next_addr = 0x7000_0000;
    allocs = 0;
    frees = 0;
    lock_acquisitions = 0;
    live_chunks = 0;
  }

let bucket_for t size =
  let rec find i =
    if i >= Array.length t.buckets then
      invalid_arg "Pool.alloc: size exceeds segment size"
    else if t.buckets.(i).chunk_size >= size then i
    else find (i + 1)
  in
  find 0

let grow t bi =
  if t.segments_used >= t.pool_segments then raise Out_of_memory;
  t.segments_used <- t.segments_used + 1;
  let b = t.buckets.(bi) in
  b.segments <- b.segments + 1;
  let chunks = t.segment_bytes / b.chunk_size in
  for _ = 1 to chunks do
    let c =
      {
        addr = t.next_addr;
        bucket = bi;
        data = Bytes.create b.chunk_size;
        live = false;
      }
    in
    t.next_addr <- t.next_addr + b.chunk_size;
    b.free_list <- c :: b.free_list
  done

let alloc t size =
  let bi = bucket_for t (max size 1) in
  let b = t.buckets.(bi) in
  t.lock_acquisitions <- t.lock_acquisitions + 1;
  if b.free_list = [] then grow t bi;
  match b.free_list with
  | [] -> raise Out_of_memory
  | c :: rest ->
    b.free_list <- rest;
    c.live <- true;
    t.allocs <- t.allocs + 1;
    t.live_chunks <- t.live_chunks + 1;
    c

let free t c =
  if not c.live then invalid_arg "Pool.free: double free";
  c.live <- false;
  let b = t.buckets.(c.bucket) in
  t.lock_acquisitions <- t.lock_acquisitions + 1;
  b.free_list <- c :: b.free_list;
  t.frees <- t.frees + 1;
  t.live_chunks <- t.live_chunks - 1

let write c payload =
  if Bytes.length payload > Bytes.length c.data then
    invalid_arg "Pool.write: payload exceeds chunk size";
  Bytes.blit payload 0 c.data 0 (Bytes.length payload)

let read c len = Bytes.sub c.data 0 (min len (Bytes.length c.data))

let size c = Bytes.length c.data

let read_into c ?(pos = 0) dst ~len =
  let n = min len (Bytes.length c.data) in
  Bytes.blit c.data 0 dst pos n;
  n

let view c ~len f =
  let n = min (max len 0) (Bytes.length c.data) in
  f c.data 0 n

type stats = {
  allocs : int;
  frees : int;
  segments_in_use : int;
  bytes_reserved : int;
  live_chunks : int;
  lock_acquisitions : int;
}

let stats (t : t) =
  {
    allocs = t.allocs;
    frees = t.frees;
    segments_in_use = t.segments_used;
    bytes_reserved = t.segments_used * t.segment_bytes;
    live_chunks = t.live_chunks;
    lock_acquisitions = t.lock_acquisitions;
  }

let chunk_capacity t c = t.buckets.(c.bucket).chunk_size

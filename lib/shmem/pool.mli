(** Shared-memory pool allocator (§3.3.4 of the paper).

    The allocator has {e buckets} for different allocation sizes; each
    bucket holds a list of {e segments}, each segment is divided into
    equal-size {e chunks}, and each bucket keeps a free list of chunks.
    When a bucket runs out, it requests a fresh segment from the memory
    pool and splits it. A per-bucket lock must be held for each
    allocation — in the simulation the lock is uncontended (the engine is
    cooperative) but acquisitions are counted so the cost model can charge
    for them.

    Chunks carry a real [Bytes.t] buffer: the NVX event streamer uses them
    to move out-buffer syscall results from the leader to its followers. *)

type t

type chunk = {
  addr : int;  (** simulated shared-space address, stable for the chunk *)
  bucket : int;  (** bucket index *)
  data : Bytes.t;  (** chunk-size buffer backing the allocation *)
  mutable live : bool;
}

exception Out_of_memory

val create : ?pool_bytes:int -> ?segment_bytes:int -> unit -> t
(** Pool with the given total capacity (default 16 MiB) split into
    segments (default 64 KiB). Bucket chunk sizes are powers of two from
    64 B to the segment size. *)

val alloc : t -> int -> chunk
(** [alloc pool size] returns a chunk of at least [size] bytes.
    @raise Out_of_memory when the pool is exhausted.
    @raise Invalid_argument if [size] exceeds the segment size. *)

val free : t -> chunk -> unit
(** Return a chunk to its bucket's free list. Freeing a dead chunk is a
    programming error and raises [Invalid_argument]. *)

val write : chunk -> Bytes.t -> unit
(** Copy payload into the chunk. @raise Invalid_argument on overflow. *)

val read : chunk -> int -> Bytes.t
(** [read chunk len] copies [len] bytes back out into a fresh buffer.
    Prefer {!read_into} (caller-owned destination, no allocation) or
    {!view} (no copy at all) on hot paths. *)

val size : chunk -> int
(** Length of the chunk's backing buffer — the zero-alloc length check:
    callers clamp or validate a payload length against it without
    materialising the bytes. *)

val read_into : chunk -> ?pos:int -> Bytes.t -> len:int -> int
(** [read_into chunk dst ~len] copies [min len (size chunk)] bytes into
    [dst] starting at [pos] (default 0) and returns the count copied.
    The single copy of the follower-replay payload path: no intermediate
    buffer is allocated. *)

val view : chunk -> len:int -> (Bytes.t -> int -> int -> 'a) -> 'a
(** [view chunk ~len f] calls [f buf off n] with a zero-copy borrow of
    the chunk's backing buffer, where [n = min len (size chunk)] and
    [buf.[off..off+n-1]] are the payload bytes. The borrow is only valid
    during the callback and only while the chunk is live: [f] must not
    retain [buf], mutate it, or free the chunk — a freed chunk's buffer
    is recycled by the next allocation. Used by consumers that fold over
    the payload (digests, serializers) without owning a copy. *)

type stats = {
  allocs : int;
  frees : int;
  segments_in_use : int;
  bytes_reserved : int;  (** capacity handed to buckets *)
  live_chunks : int;
  lock_acquisitions : int;
}

val stats : t -> stats
val chunk_capacity : t -> chunk -> int

type task_id = int

exception Deadlock of string list
exception Killed
exception Budget_exceeded of int64

type task_state = Runnable | Blocked | Finished | Dead

type task = {
  id : task_id;
  name : string;
  mutable time : int64; (* local virtual clock, cycles *)
  mutable state : task_state;
  (* Set while the task is parked on a condition variable (no scheduled
     resumption exists): given a wake time, schedule a [discontinue Killed]
     so the fiber unwinds. Cleared on resume. *)
  mutable on_kill : (int64 -> unit) option;
  mutable killed : bool;
}

type entry = {
  etime : int64;
  eseq : int;
  mutable cancelled : bool;
  run : unit -> unit;
}

module Heap = struct
  (* Binary min-heap on (etime, eseq); eseq breaks ties FIFO so execution
     order is deterministic. *)
  type t = { mutable a : entry array; mutable len : int }

  let dummy = { etime = 0L; eseq = 0; cancelled = true; run = ignore }
  let create () = { a = Array.make 256 dummy; len = 0 }
  let lt x y = x.etime < y.etime || (x.etime = y.etime && x.eseq < y.eseq)

  let push h e =
    if h.len = Array.length h.a then begin
      let bigger = Array.make (2 * h.len) dummy in
      Array.blit h.a 0 bigger 0 h.len;
      h.a <- bigger
    end;
    h.a.(h.len) <- e;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && lt h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let peek h = if h.len = 0 then None else Some h.a.(0)

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.a.(0) in
      h.len <- h.len - 1;
      h.a.(0) <- h.a.(h.len);
      h.a.(h.len) <- dummy;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && lt h.a.(l) h.a.(!smallest) then smallest := l;
        if r < h.len && lt h.a.(r) h.a.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.a.(!smallest) in
          h.a.(!smallest) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !smallest
        end
      done;
      Some top
    end
end

type cond_waiter = {
  w_task : task;
  mutable w_claimed : bool;
  w_wake : int64 -> unit; (* schedule resumption at the given wake time *)
}

type cond = {
  c_name : string;
  c_waiters : cond_waiter Queue.t;
  (* Unclaimed waiters currently parked: kept exact at every claim site so
     signallers can test "anyone there?" in O(1). The ring buffer's
     targeted-wakeup policy reads this on every publish/consume, so it
     must not degrade into a queue walk. *)
  mutable c_nwaiters : int;
}

(* Every transition of [w_claimed] from false to true goes through here so
   the waiter count stays exact. *)
let claim_waiter c w =
  if not w.w_claimed then begin
    w.w_claimed <- true;
    c.c_nwaiters <- c.c_nwaiters - 1
  end

(* A ticker is a periodic scheduler-context hook: it fires as virtual
   time advances past its deadlines but never schedules heap entries of
   its own, so an otherwise-quiescent simulation is never kept alive by
   its watchdogs. Callbacks run outside any task and must not perform
   engine effects; they may call [spawn] to delegate work to a task. *)
type ticker = {
  tk_period : int64;
  mutable tk_next : int64;
  tk_fn : unit -> bool; (* [false] deactivates the ticker *)
  mutable tk_active : bool;
}

type t = {
  heap : Heap.t;
  mutable seq : int;
  mutable next_id : task_id;
  tasks : (task_id, task) Hashtbl.t;
  mutable global_time : int64;
  mutable failure_list : (task_id * exn) list; (* reversed *)
  mutable tickers : ticker list;
  mutable switches : int; (* heap entries dispatched — task switches *)
}

(* Process-wide mirror of every engine's dispatch count: the scheduler
   baseline for future work (engine-1k-task-switches measures the cost
   of one such dispatch). *)
let g_switches = Varan_util.Stats.counter "engine.task_switches"

type _ Effect.t +=
  | E_consume : int -> unit Effect.t
  | E_sleep : int -> unit Effect.t
  | E_now : int64 Effect.t
  | E_self : task_id Effect.t
  | E_spawn : (string option * (unit -> unit)) -> task_id Effect.t
  | E_kill : task_id -> unit Effect.t
  | E_yield : unit Effect.t
  | E_wait : cond -> unit Effect.t
  | E_wait_timeout : (cond * int) -> bool Effect.t
  | E_signal : cond -> unit Effect.t
  | E_broadcast : cond -> unit Effect.t

let create () =
  {
    heap = Heap.create ();
    seq = 0;
    next_id = 0;
    tasks = Hashtbl.create 64;
    global_time = 0L;
    failure_list = [];
    tickers = [];
    switches = 0;
  }

let add_ticker t ~period fn =
  if period <= 0 then invalid_arg "Engine.add_ticker: period must be positive";
  let period = Int64.of_int period in
  t.tickers <-
    {
      tk_period = period;
      tk_next = Int64.add t.global_time period;
      tk_fn = fn;
      tk_active = true;
    }
    :: t.tickers

let next_due_ticker t =
  List.fold_left
    (fun acc tk ->
      if not tk.tk_active then acc
      else
        match acc with
        | Some best when best.tk_next <= tk.tk_next -> acc
        | _ -> Some tk)
    None t.tickers

let schedule t time run =
  let e = { etime = time; eseq = t.seq; cancelled = false; run } in
  t.seq <- t.seq + 1;
  Heap.push t.heap e;
  e

let now t = t.global_time

let task_name t id =
  match Hashtbl.find_opt t.tasks id with Some task -> task.name | None -> "?"

let is_alive t id =
  match Hashtbl.find_opt t.tasks id with
  | Some task -> task.state <> Finished && task.state <> Dead
  | None -> false

let failures t = List.rev t.failure_list
let task_switches t = t.switches

let max64 a b : int64 = if a > b then a else b

(* Wake one claimable waiter of [c] at a time not before [at]. *)
let signal_at c at =
  let rec pop () =
    if not (Queue.is_empty c.c_waiters) then begin
      let w = Queue.pop c.c_waiters in
      if w.w_claimed then pop ()
      else if w.w_task.state = Dead then begin
        claim_waiter c w;
        pop ()
      end
      else begin
        claim_waiter c w;
        w.w_wake (max64 at w.w_task.time)
      end
    end
  in
  pop ()

let broadcast_at c at =
  let pending = Queue.copy c.c_waiters in
  Queue.clear c.c_waiters;
  Queue.iter
    (fun w ->
      if not w.w_claimed then begin
        let dead = w.w_task.state = Dead in
        claim_waiter c w;
        if not dead then w.w_wake (max64 at w.w_task.time)
      end)
    pending

let rec make_fiber : t -> task -> (unit -> unit) -> unit =
 fun t task f ->
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> if task.state <> Dead then task.state <- Finished);
      exnc =
        (fun e ->
          match e with
          | Killed -> task.state <- Dead
          | e ->
            t.failure_list <- (task.id, e) :: t.failure_list;
            task.state <- Dead);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_consume n ->
            Some
              (fun (k : (a, unit) continuation) ->
                if task.killed then discontinue k Killed
                else begin
                  task.time <- Int64.add task.time (Int64.of_int n);
                  ignore
                    (schedule t task.time (fun () ->
                         if task.killed then discontinue k Killed
                         else continue k ()))
                end)
          | E_sleep n ->
            Some
              (fun (k : (a, unit) continuation) ->
                if task.killed then discontinue k Killed
                else begin
                  task.state <- Blocked;
                  let wake = Int64.add task.time (Int64.of_int n) in
                  ignore
                    (schedule t wake (fun () ->
                         if task.killed then discontinue k Killed
                         else begin
                           task.state <- Runnable;
                           task.time <- wake;
                           continue k ()
                         end))
                end)
          | E_now -> Some (fun k -> continue k task.time)
          | E_self -> Some (fun k -> continue k task.id)
          | E_spawn (name, body) ->
            Some
              (fun (k : (a, unit) continuation) ->
                if task.killed then discontinue k Killed
                else begin
                  let id = spawn_internal t ?name ~at:task.time body in
                  continue k id
                end)
          | E_kill victim ->
            Some
              (fun (k : (a, unit) continuation) ->
                kill_internal t ~at:task.time victim;
                if task.killed then discontinue k Killed else continue k ())
          | E_yield ->
            Some
              (fun (k : (a, unit) continuation) ->
                if task.killed then discontinue k Killed
                else
                  ignore
                    (schedule t task.time (fun () ->
                         if task.killed then discontinue k Killed
                         else continue k ())))
          | E_wait c ->
            Some
              (fun (k : (a, unit) continuation) ->
                if task.killed then discontinue k Killed
                else begin
                  task.state <- Blocked;
                  let waiter =
                    {
                      w_task = task;
                      w_claimed = false;
                      w_wake =
                        (fun at ->
                          (* Disarm immediately: a kill arriving between
                             this wake being scheduled and running must
                             not discontinue the same continuation. *)
                          task.on_kill <- None;
                          ignore
                            (schedule t at (fun () ->
                                 if task.killed then discontinue k Killed
                                 else begin
                                   task.state <- Runnable;
                                   task.time <- max64 at task.time;
                                   continue k ()
                                 end)));
                    }
                  in
                  Queue.push waiter c.c_waiters;
                  c.c_nwaiters <- c.c_nwaiters + 1;
                  task.on_kill <-
                    Some
                      (fun at ->
                        claim_waiter c waiter;
                        ignore
                          (schedule t at (fun () -> discontinue k Killed)))
                end)
          | E_wait_timeout (c, cycles) ->
            Some
              (fun (k : (a, unit) continuation) ->
                if task.killed then discontinue k Killed
                else begin
                  task.state <- Blocked;
                  let settled = ref false in
                  let resume signalled at =
                    if task.killed then discontinue k Killed
                    else begin
                      task.state <- Runnable;
                      task.time <- max64 at task.time;
                      continue k signalled
                    end
                  in
                  let waiter =
                    {
                      w_task = task;
                      w_claimed = false;
                      w_wake =
                        (fun at ->
                          settled := true;
                          task.on_kill <- None;
                          ignore (schedule t at (fun () -> resume true at)));
                    }
                  in
                  Queue.push waiter c.c_waiters;
                  c.c_nwaiters <- c.c_nwaiters + 1;
                  let deadline = Int64.add task.time (Int64.of_int cycles) in
                  ignore
                    (schedule t deadline (fun () ->
                         if (not !settled) && not waiter.w_claimed then begin
                           settled := true;
                           claim_waiter c waiter;
                           task.on_kill <- None;
                           resume false deadline
                         end));
                  task.on_kill <-
                    Some
                      (fun at ->
                        settled := true;
                        claim_waiter c waiter;
                        ignore
                          (schedule t at (fun () -> discontinue k Killed)))
                end)
          | E_signal c ->
            Some
              (fun (k : (a, unit) continuation) ->
                if task.killed then discontinue k Killed
                else begin
                  signal_at c task.time;
                  continue k ()
                end)
          | E_broadcast c ->
            Some
              (fun (k : (a, unit) continuation) ->
                if task.killed then discontinue k Killed
                else begin
                  broadcast_at c task.time;
                  continue k ()
                end)
          | _ -> None);
    }

and spawn_internal : t -> ?name:string -> at:int64 -> (unit -> unit) -> task_id
    =
 fun t ?name ~at body ->
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let name =
    match name with Some n -> n | None -> Printf.sprintf "task-%d" id
  in
  let task =
    { id; name; time = at; state = Runnable; on_kill = None; killed = false }
  in
  Hashtbl.replace t.tasks id task;
  ignore
    (schedule t at (fun () ->
         if task.killed || task.state = Dead then task.state <- Dead
         else make_fiber t task body));
  id

and kill_internal t ~at victim_id =
  match Hashtbl.find_opt t.tasks victim_id with
  | None -> ()
  | Some victim ->
    if victim.state <> Finished && victim.state <> Dead then begin
      victim.killed <- true;
      match victim.on_kill with
      | Some disc ->
        victim.on_kill <- None;
        victim.state <- Dead;
        disc (max64 at victim.time)
      | None ->
        (* Running, queued, or not yet started: the flag is checked at the
           next scheduled resumption / effect point. *)
        ()
    end

let spawn t ?name body = spawn_internal t ?name ~at:t.global_time body

let blocked_task_names t =
  Hashtbl.fold
    (fun _ task acc ->
      match task.state with
      | Runnable | Blocked -> task.name :: acc
      | Finished | Dead -> acc)
    t.tasks []

let drain ?cycle_budget t =
  let rec loop () =
    match Heap.peek t.heap with
    | None -> () (* tickers never outlive the work they monitor *)
    | Some e when e.cancelled ->
      ignore (Heap.pop t.heap);
      loop ()
    | Some e -> (
      match next_due_ticker t with
      | Some tk when tk.tk_next < e.etime ->
        (* Virtual time is about to jump past this ticker's deadline:
           fire it first. The callback may [spawn] tasks at the deadline,
           which land in the heap ahead of [e] and are picked up by the
           next iteration. *)
        let due = tk.tk_next in
        if due > t.global_time then t.global_time <- due;
        tk.tk_next <- Int64.add due tk.tk_period;
        if not (tk.tk_fn ()) then tk.tk_active <- false;
        loop ()
      | _ ->
        ignore (Heap.pop t.heap);
        (* Liveness watchdog: a simulation that schedules work past the
           budget is considered hung (livelock, missed wakeup, runaway
           retry loop) and aborted rather than left spinning. *)
        (match cycle_budget with
        | Some budget when e.etime > budget ->
          raise (Budget_exceeded t.global_time)
        | _ -> ());
        if e.etime > t.global_time then t.global_time <- e.etime;
        t.switches <- t.switches + 1;
        Varan_util.Stats.incr_counter g_switches;
        e.run ();
        loop ())
  in
  loop ()

let run ?cycle_budget t =
  drain ?cycle_budget t;
  let leftover = blocked_task_names t in
  if leftover <> [] then raise (Deadlock (List.sort compare leftover))

let run_until_quiescent ?cycle_budget t = drain ?cycle_budget t

(* Task-context wrappers. *)
let consume n = if n > 0 then Effect.perform (E_consume n)
let sleep n = Effect.perform (E_sleep (max n 0))
let now_cycles () = Effect.perform E_now
let self () = Effect.perform E_self
let spawn_here ?name body = Effect.perform (E_spawn (name, body))
let kill t id = kill_internal t ~at:t.global_time id
let kill_here id = Effect.perform (E_kill id)
let yield () = Effect.perform E_yield

module Cond = struct
  type nonrec cond = cond

  let create name = { c_name = name; c_waiters = Queue.create (); c_nwaiters = 0 }
  let wait c = Effect.perform (E_wait c)
  let wait_timeout c cycles = Effect.perform (E_wait_timeout (c, cycles))
  let signal c = Effect.perform (E_signal c)
  let broadcast c = Effect.perform (E_broadcast c)
  let waiters c = c.c_nwaiters
  let has_waiters c = c.c_nwaiters > 0

  (* The targeted-wakeup primitive: a no-op (no engine effect at all) when
     nobody is parked, so uncontended publishes and consumes pay nothing.
     Checking [c_nwaiters] outside an effect is sound because tasks are
     cooperative: no waiter can register between this test and the
     broadcast. *)
  let broadcast_if_waiting c = if c.c_nwaiters > 0 then broadcast c

  let _name c = c.c_name
end

type task_id = int

exception Deadlock of string list
exception Killed
exception Budget_exceeded of int64

type task_state = Runnable | Blocked | Finished | Dead

(* ------------------------------------------------------------------ *)
(* Core types. Virtual time is int64 at the API boundary but a plain   *)
(* (63-bit) immediate int internally: cycle counts stay far below      *)
(* 2^62, and immediate arithmetic keeps the dispatch path free of      *)
(* int64 boxing and write barriers. Tasks carry a reusable resumption  *)
(* frame; dispatch entries are slab-allocated and recycled through a   *)
(* free list.                                                          *)
(* ------------------------------------------------------------------ *)

(* The parked continuation of a suspended task. Exactly one entry (or
   cond waiter) owns the right to resume it; taking the frame
   (resetting it to [K_none]) transfers ownership to the dispatcher, so
   a one-shot continuation can never be resumed twice. *)
type frame_k =
  | K_none
  | K_unit of (unit, unit) Effect.Deep.continuation
  | K_bool of (bool, unit) Effect.Deep.continuation

type task = {
  id : task_id;
  name : string;
  start : int; (* spawn time; (time - start) is the task's lifetime *)
  mutable time : int; (* local virtual clock, cycles *)
  mutable state : task_state;
  mutable killed : bool;
  (* Reusable resumption frame: instead of capturing the continuation in
     a fresh closure per effect, the fast paths (consume/sleep/yield/
     wait) park it here and schedule a plain [Ek_resume] entry pointing
     back at the task. *)
  mutable fr_k : frame_k;
  (* Set while parked on a condition variable and not yet claimed by a
     signaller: lets kill (and an expiring [wait_timeout] deadline)
     claim the waiter in O(1). *)
  mutable fr_waiter : cond_waiter option;
  (* The pending [wait_timeout] deadline entry, if any: an early signal
     or kill cancels it in O(1) instead of leaving a tombstone that
     later dispatches as a no-op. *)
  mutable fr_deadline : entry option;
}

and entry = {
  mutable etime : int;
  mutable eseq : int;
  mutable ekind : ekind;
  mutable e_task : task; (* [dummy_task] unless [ekind = Ek_resume] *)
  mutable e_fn : unit -> unit; (* only read when [ekind = Ek_run] *)
  mutable e_flag : bool; (* resume value for [K_bool] frames *)
  mutable e_free : entry; (* free-list link; self when not on the list *)
}

and ekind =
  | Ek_cancelled (* inert: skipped (and recycled) without dispatching *)
  | Ek_resume (* resume [e_task]'s frame *)
  | Ek_run (* run [e_fn] — spawn bootstrap *)

and cond_waiter = {
  w_task : task;
  w_cond : cond;
  mutable w_claimed : bool;
}

and cond = {
  c_name : string;
  c_waiters : cond_waiter Queue.t;
  (* Unclaimed waiters currently parked: kept exact at every claim site so
     signallers can test "anyone there?" in O(1). The ring buffer's
     targeted-wakeup policy reads this on every publish/consume, so it
     must not degrade into a queue walk. *)
  mutable c_nwaiters : int;
}

let rec dummy_task =
  {
    id = -1;
    name = "<dummy>";
    start = 0;
    time = 0;
    state = Dead;
    killed = true;
    fr_k = K_none;
    fr_waiter = None;
    fr_deadline = None;
  }

and dummy_entry =
  {
    etime = 0;
    eseq = 0;
    ekind = Ek_cancelled;
    e_task = dummy_task;
    e_fn = ignore;
    e_flag = false;
    e_free = dummy_entry;
  }

let dummy_cond =
  { c_name = "<dummy>"; c_waiters = Queue.create (); c_nwaiters = 0 }

module Heap = struct
  (* Binary min-heap on (etime, eseq); eseq breaks ties FIFO so execution
     order is deterministic. Holds only genuinely future wakeups — due-now
     entries go to the ready ring instead. *)
  type t = { mutable a : entry array; mutable len : int }

  let create () = { a = Array.make 256 dummy_entry; len = 0 }

  let lt x y = x.etime < y.etime || (x.etime = y.etime && x.eseq < y.eseq)

  let push h e =
    if h.len = Array.length h.a then begin
      let bigger = Array.make (2 * h.len) dummy_entry in
      Array.blit h.a 0 bigger 0 h.len;
      h.a <- bigger
    end;
    h.a.(h.len) <- e;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && lt h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  (* Caller must check [len > 0]; no option allocation on the hot path. *)
  let pop_top h =
    let top = h.a.(0) in
    h.len <- h.len - 1;
    h.a.(0) <- h.a.(h.len);
    h.a.(h.len) <- dummy_entry;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && lt h.a.(l) h.a.(!smallest) then smallest := l;
      if r < h.len && lt h.a.(r) h.a.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = h.a.(!smallest) in
        h.a.(!smallest) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !smallest
      end
    done;
    top
end

module Ready = struct
  (* Flat FIFO ring of due-now entries. Scheduling never places an entry
     in the past (see [enqueue]), so everything here carries
     [etime = global_time] and FIFO order coincides with (etime, eseq)
     order — a same-timestamp resumption chain costs two array stores
     instead of a heap push + pop. Capacity is a power of two. *)
  type t = { mutable a : entry array; mutable head : int; mutable len : int }

  let create () = { a = Array.make 256 dummy_entry; head = 0; len = 0 }

  let grow r =
    let n = Array.length r.a in
    let bigger = Array.make (2 * n) dummy_entry in
    for i = 0 to r.len - 1 do
      bigger.(i) <- r.a.((r.head + i) land (n - 1))
    done;
    r.a <- bigger;
    r.head <- 0

  let push r e =
    if r.len = Array.length r.a then grow r;
    r.a.((r.head + r.len) land (Array.length r.a - 1)) <- e;
    r.len <- r.len + 1

  (* Caller must check [len > 0]. *)
  let front r = r.a.(r.head)

  let pop r =
    let e = r.a.(r.head) in
    r.a.(r.head) <- dummy_entry;
    r.head <- (r.head + 1) land (Array.length r.a - 1);
    r.len <- r.len - 1;
    e
end

(* Every transition of [w_claimed] from false to true goes through here so
   the waiter count stays exact. *)
let claim_waiter c w =
  if not w.w_claimed then begin
    w.w_claimed <- true;
    c.c_nwaiters <- c.c_nwaiters - 1
  end

(* A ticker is a periodic scheduler-context hook: it fires as virtual
   time advances past its deadlines but never schedules heap entries of
   its own, so an otherwise-quiescent simulation is never kept alive by
   its watchdogs. Callbacks run outside any task and must not perform
   engine effects; they may call [spawn] to delegate work to a task. *)
type ticker = {
  tk_period : int;
  mutable tk_next : int;
  tk_fn : unit -> bool; (* [false] deactivates the ticker *)
  mutable tk_active : bool;
}

type t = {
  heap : Heap.t;
  ready : Ready.t;
  mutable free : entry; (* slab free list; [dummy_entry] = empty *)
  mutable seq : int;
  mutable next_id : task_id;
  tasks : (task_id, task) Hashtbl.t;
  mutable global_time : int;
  mutable failure_list : (task_id * exn) list; (* reversed *)
  mutable tickers : ticker list;
  (* Earliest [tk_next] over active tickers ([max_int] if none),
     maintained at add/fire/deactivate so the dispatch loop pays one
     compare instead of a list fold per iteration. *)
  mutable tick_due : int;
  (* The active [drain]'s cycle budget ([max_int] outside a budgeted
     run): the inline dispatch fast path must divert to the slow path
     rather than silently run past it. *)
  mutable cur_budget : int;
  mutable switches : int; (* entries dispatched — task switches *)
}

(* Process-wide mirror of every engine's dispatch count: the scheduler
   baseline for future work (engine-1k-task-switches measures the cost
   of one such dispatch). *)
let g_switches = Varan_util.Stats.counter "engine.task_switches"

(* Payload side-slots for the hot effects: a constant effect constructor
   allocates nothing at [perform], so the wrappers stash their argument
   here and the handler reads it back synchronously (tasks are
   cooperative and effects are handled before the wrapper returns, so a
   slot is never live across two performs). *)
let pending_int = ref 0
let pending_cond = ref dummy_cond

type _ Effect.t +=
  | E_consume : unit Effect.t (* cycles in [pending_int] *)
  | E_sleep : unit Effect.t (* cycles in [pending_int] *)
  | E_now : int64 Effect.t
  | E_self : task_id Effect.t
  | E_spawn : (string option * (unit -> unit)) -> task_id Effect.t
  | E_kill : task_id -> unit Effect.t
  | E_yield : unit Effect.t
  | E_wait : unit Effect.t (* cond in [pending_cond] *)
  | E_wait_timeout : bool Effect.t (* cond + cycles in the slots *)
  | E_signal : unit Effect.t (* cond in [pending_cond] *)
  | E_broadcast : unit Effect.t (* cond in [pending_cond] *)

let create () =
  {
    heap = Heap.create ();
    ready = Ready.create ();
    free = dummy_entry;
    seq = 0;
    next_id = 0;
    tasks = Hashtbl.create 64;
    global_time = 0;
    failure_list = [];
    tickers = [];
    tick_due = max_int;
    cur_budget = max_int;
    switches = 0;
  }

let add_ticker t ~period fn =
  if period <= 0 then invalid_arg "Engine.add_ticker: period must be positive";
  let next = t.global_time + period in
  t.tickers <-
    { tk_period = period; tk_next = next; tk_fn = fn; tk_active = true }
    :: t.tickers;
  if next < t.tick_due then t.tick_due <- next

let next_due_ticker t =
  List.fold_left
    (fun acc tk ->
      if not tk.tk_active then acc
      else
        match acc with
        | Some best when best.tk_next <= tk.tk_next -> acc
        | _ -> Some tk)
    None t.tickers

let refresh_tick_due t =
  t.tick_due <-
    List.fold_left
      (fun acc tk -> if tk.tk_active && tk.tk_next < acc then tk.tk_next else acc)
      max_int t.tickers

(* ------------------------------------------------------------------ *)
(* Entry slab                                                          *)
(* ------------------------------------------------------------------ *)

let alloc_entry t ~time ~kind =
  let e = t.free in
  if e == dummy_entry then begin
    let e =
      {
        etime = time;
        eseq = t.seq;
        ekind = kind;
        e_task = dummy_task;
        e_fn = ignore;
        e_flag = false;
        e_free = dummy_entry;
      }
    in
    t.seq <- t.seq + 1;
    e
  end
  else begin
    t.free <- e.e_free;
    e.e_free <- dummy_entry;
    e.etime <- time;
    e.eseq <- t.seq;
    t.seq <- t.seq + 1;
    e.ekind <- kind;
    e.e_flag <- false;
    e
  end

let recycle t e =
  e.ekind <- Ek_cancelled;
  e.e_task <- dummy_task;
  e.e_fn <- ignore;
  e.e_free <- t.free;
  t.free <- e

(* Tasks never schedule in the past (a running task's local clock equals
   the global clock, and cond wakes clamp with [max]), so due-now means
   [etime = global_time] exactly and the ready ring preserves the
   documented (etime, eseq) total order. The [<=] is defensive. *)
let enqueue t e =
  if e.etime <= t.global_time then Ready.push t.ready e
  else Heap.push t.heap e

let sched_resume t time task =
  let e = alloc_entry t ~time ~kind:Ek_resume in
  e.e_task <- task;
  enqueue t e;
  e

let sched_run t time fn =
  let e = alloc_entry t ~time ~kind:Ek_run in
  e.e_fn <- fn;
  enqueue t e

let cancel_entry e = e.ekind <- Ek_cancelled

let now t = Int64.of_int t.global_time

let task_name t id =
  match Hashtbl.find_opt t.tasks id with Some task -> task.name | None -> "?"

let is_alive t id =
  match Hashtbl.find_opt t.tasks id with
  | Some task -> task.state <> Finished && task.state <> Dead
  | None -> false

let failures t = List.rev t.failure_list
let task_switches t = t.switches

(* Total task-cycles: every task's lifetime (busy + blocked vtime from
   spawn to its current local clock) summed. Tasks are never removed
   from the table, so a plain fold covers finished and dead tasks too.
   This is the denominator the cycle-attribution profile is judged
   against: the phase buckets partition (most of) this quantity. *)
let total_task_cycles t =
  Hashtbl.fold
    (fun _ task acc -> Int64.add acc (Int64.of_int (task.time - task.start)))
    t.tasks 0L

(* Per-task lifetimes, for chasing down unattributed profile residue:
   which tasks own the cycles the phase buckets missed. *)
let task_lifetimes t =
  Hashtbl.fold
    (fun _ task acc ->
      ((task.id :> int), task.name, Int64.of_int (task.time - task.start))
      :: acc)
    t.tasks []

let maxi (a : int) b = if a > b then a else b

(* Schedule the resumption of a claimed waiter's task: clear the park
   bookkeeping, cancel any pending deadline, and hand the wake time to a
   reusable [Ek_resume] entry. [e_flag = true] marks "signalled" for
   [wait_timeout] frames; plain waits ignore it. *)
let wake_waiter t w at =
  let task = w.w_task in
  task.fr_waiter <- None;
  (match task.fr_deadline with
  | Some d ->
    cancel_entry d;
    task.fr_deadline <- None
  | None -> ());
  let e = sched_resume t (maxi at task.time) task in
  e.e_flag <- true

(* Wake one claimable waiter of [c] at a time not before [at]. *)
let signal_at t c at =
  let rec pop () =
    if not (Queue.is_empty c.c_waiters) then begin
      let w = Queue.pop c.c_waiters in
      if w.w_claimed then pop ()
      else if w.w_task.state = Dead then begin
        claim_waiter c w;
        pop ()
      end
      else begin
        claim_waiter c w;
        wake_waiter t w at
      end
    end
  in
  pop ()

(* Drain in place: tasks are cooperative and this loop performs no
   engine effect, so no waiter can register while it runs — the
   defensive queue copy the previous implementation paid per broadcast
   is not needed. Claimed waiters (already woken, killed, or timed out)
   are simply dropped. *)
let broadcast_at t c at =
  while not (Queue.is_empty c.c_waiters) do
    let w = Queue.pop c.c_waiters in
    if not w.w_claimed then begin
      let dead = w.w_task.state = Dead in
      claim_waiter c w;
      if not dead then wake_waiter t w at
    end
  done

(* Inline dispatch fast path: when the performing task's resumption at
   [nt] would be the scheduler's very next pick — nothing due in the
   ready ring, every heap entry strictly later, no ticker deadline to
   cross, budget not hit — parking it and immediately dispatching it is
   equivalent to continuing it in place. The park/resume round trip
   through the scheduler stack costs ~4x an inline continue, so consume
   chains (cost charging, the hottest effect in the system) skip it
   entirely. The strict [>] on the heap top keeps (etime, eseq) order:
   an equal-time heap entry was scheduled earlier and must run first. *)
let[@inline] can_inline t nt =
  t.ready.Ready.len = 0
  && (t.heap.Heap.len = 0 || t.heap.Heap.a.(0).etime > nt)
  && t.tick_due >= nt
  && nt <= t.cur_budget

let[@inline] note_inline_switch t nt =
  t.global_time <- nt;
  t.switches <- t.switches + 1;
  Varan_util.Stats.incr_counter g_switches

let rec make_fiber : t -> task -> (unit -> unit) -> unit =
 fun t task f ->
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> if task.state <> Dead then task.state <- Finished);
      exnc =
        (fun e ->
          match e with
          | Killed -> task.state <- Dead
          | e ->
            t.failure_list <- (task.id, e) :: t.failure_list;
            task.state <- Dead);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_consume ->
            Some
              (fun (k : (a, unit) continuation) ->
                if task.killed then discontinue k Killed
                else begin
                  let nt = task.time + !pending_int in
                  task.time <- nt;
                  if can_inline t nt then begin
                    note_inline_switch t nt;
                    continue k ()
                  end
                  else begin
                    task.fr_k <- K_unit k;
                    ignore (sched_resume t nt task)
                  end
                end)
          | E_sleep ->
            Some
              (fun (k : (a, unit) continuation) ->
                if task.killed then discontinue k Killed
                else begin
                  let nt = task.time + !pending_int in
                  if can_inline t nt then begin
                    task.time <- nt;
                    note_inline_switch t nt;
                    continue k ()
                  end
                  else begin
                    task.state <- Blocked;
                    task.fr_k <- K_unit k;
                    ignore (sched_resume t nt task)
                  end
                end)
          | E_now -> Some (fun k -> continue k (Int64.of_int task.time))
          | E_self -> Some (fun k -> continue k task.id)
          | E_spawn (name, body) ->
            Some
              (fun (k : (a, unit) continuation) ->
                if task.killed then discontinue k Killed
                else begin
                  let id = spawn_internal t ?name ~at:task.time body in
                  continue k id
                end)
          | E_kill victim ->
            Some
              (fun (k : (a, unit) continuation) ->
                kill_internal t ~at:task.time victim;
                if task.killed then discontinue k Killed else continue k ())
          | E_yield ->
            Some
              (fun (k : (a, unit) continuation) ->
                if task.killed then discontinue k Killed
                else if can_inline t task.time then begin
                  note_inline_switch t task.time;
                  continue k ()
                end
                else begin
                  task.fr_k <- K_unit k;
                  ignore (sched_resume t task.time task)
                end)
          | E_wait ->
            Some
              (fun (k : (a, unit) continuation) ->
                if task.killed then discontinue k Killed
                else begin
                  let c = !pending_cond in
                  task.state <- Blocked;
                  let w = { w_task = task; w_cond = c; w_claimed = false } in
                  Queue.push w c.c_waiters;
                  c.c_nwaiters <- c.c_nwaiters + 1;
                  task.fr_waiter <- Some w;
                  task.fr_k <- K_unit k
                end)
          | E_wait_timeout ->
            Some
              (fun (k : (a, unit) continuation) ->
                if task.killed then discontinue k Killed
                else begin
                  let c = !pending_cond in
                  let cycles = !pending_int in
                  task.state <- Blocked;
                  let w = { w_task = task; w_cond = c; w_claimed = false } in
                  Queue.push w c.c_waiters;
                  c.c_nwaiters <- c.c_nwaiters + 1;
                  task.fr_waiter <- Some w;
                  task.fr_k <- K_bool k;
                  (* The deadline rides an ordinary resume entry with
                     [e_flag = false] ("timed out"); an earlier signal or
                     kill cancels it in O(1) via [fr_deadline]. *)
                  let d = sched_resume t (task.time + cycles) task in
                  task.fr_deadline <- Some d
                end)
          | E_signal ->
            Some
              (fun (k : (a, unit) continuation) ->
                if task.killed then discontinue k Killed
                else begin
                  signal_at t !pending_cond task.time;
                  continue k ()
                end)
          | E_broadcast ->
            Some
              (fun (k : (a, unit) continuation) ->
                if task.killed then discontinue k Killed
                else begin
                  broadcast_at t !pending_cond task.time;
                  continue k ()
                end)
          | _ -> None);
    }

and spawn_internal : t -> ?name:string -> at:int -> (unit -> unit) -> task_id =
 fun t ?name ~at body ->
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let name =
    match name with Some n -> n | None -> Printf.sprintf "task-%d" id
  in
  let task =
    {
      id;
      name;
      start = at;
      time = at;
      state = Runnable;
      killed = false;
      fr_k = K_none;
      fr_waiter = None;
      fr_deadline = None;
    }
  in
  Hashtbl.replace t.tasks id task;
  sched_run t at (fun () ->
      if task.killed || task.state = Dead then task.state <- Dead
      else if !Varan_obs.Trace.enabled then begin
        (* First dispatch slice: from spawn to the first park. *)
        Varan_obs.Trace.begin_span ~ts:(Int64.of_int task.time) ~tid:id name;
        make_fiber t task body;
        Varan_obs.Trace.end_span ~ts:(Int64.of_int task.time) ~tid:id name
      end
      else make_fiber t task body);
  id

and kill_internal t ~at victim_id =
  match Hashtbl.find_opt t.tasks victim_id with
  | None -> ()
  | Some victim ->
    if victim.state <> Finished && victim.state <> Dead then begin
      victim.killed <- true;
      match victim.fr_waiter with
      | Some w ->
        (* Parked on a cond with no scheduled resumption: claim the
           waiter, drop any deadline, and schedule the unwind. The
           dispatcher sees [killed] and discontinues the frame. *)
        claim_waiter w.w_cond w;
        victim.fr_waiter <- None;
        (match victim.fr_deadline with
        | Some d ->
          cancel_entry d;
          victim.fr_deadline <- None
        | None -> ());
        victim.state <- Dead;
        ignore (sched_resume t (maxi at victim.time) victim)
      | None ->
        (* Running, queued, or not yet started: the flag is checked at the
           next scheduled resumption / effect point. *)
        ()
    end

let spawn t ?name body = spawn_internal t ?name ~at:t.global_time body

let blocked_task_names t =
  Hashtbl.fold
    (fun _ task acc ->
      match task.state with
      | Runnable | Blocked -> task.name :: acc
      | Finished | Dead -> acc)
    t.tasks []

(* Fire the earliest due ticker (the cached [tick_due] told the caller
   one is due before the next entry). The callback may [spawn] tasks at
   the deadline, which land in the ready ring ahead of the pending entry
   and are picked up by the next dispatch iteration. *)
let fire_due_ticker t =
  match next_due_ticker t with
  | None -> t.tick_due <- max_int
  | Some tk ->
    let due = tk.tk_next in
    if due > t.global_time then t.global_time <- due;
    tk.tk_next <- due + tk.tk_period;
    if not (tk.tk_fn ()) then tk.tk_active <- false;
    refresh_tick_due t

let drain ?cycle_budget t =
  let budget =
    match cycle_budget with
    | Some b when b < Int64.of_int max_int -> Int64.to_int b
    | _ -> max_int
  in
  t.cur_budget <- budget;
  let heap = t.heap and ready = t.ready in
  let rec loop () =
    (* Recycle cancelled entries at either front without dispatching. *)
    if ready.Ready.len > 0 && (Ready.front ready).ekind == Ek_cancelled then begin
      recycle t (Ready.pop ready);
      loop ()
    end
    else if heap.Heap.len > 0 && heap.Heap.a.(0).ekind == Ek_cancelled then begin
      recycle t (Heap.pop_top heap);
      loop ()
    end
    else begin
      let have_r = ready.Ready.len > 0 and have_h = heap.Heap.len > 0 in
      if have_r || have_h then begin
        (* The ready ring holds due-now entries; the heap can also carry
           entries at the current timestamp (pushed as future, reached
           since), so ties fall back to the full (etime, eseq) compare. *)
        let from_heap =
          have_h
          && ((not have_r) || Heap.lt heap.Heap.a.(0) (Ready.front ready))
        in
        if from_heap && t.tick_due < heap.Heap.a.(0).etime then begin
          (* Virtual time is about to jump past a ticker's deadline:
             fire it first, then re-select. *)
          fire_due_ticker t;
          loop ()
        end
        else begin
          let e = if from_heap then Heap.pop_top heap else Ready.pop ready in
          (* Liveness watchdog: a simulation that schedules work past the
             budget is considered hung (livelock, missed wakeup, runaway
             retry loop) and aborted rather than left spinning. *)
          if e.etime > budget then begin
            recycle t e;
            raise (Budget_exceeded (Int64.of_int t.global_time))
          end;
          if e.etime > t.global_time then t.global_time <- e.etime
          else if
              e.etime < t.global_time
              && e.ekind == Ek_resume
              && !Varan_obs.Profile.enabled
            then
            (* The entry was due at [etime] but a ticker (or an earlier
               same-dispatch entry) already pushed virtual time past it:
               the task resumes late through no fault of its own. This is
               the scheduler-induced lag the profile reports as
               sched-dispatch. *)
            Varan_obs.Profile.add Varan_obs.Profile.sched_dispatch
              (Int64.of_int (t.global_time - e.etime));
          t.switches <- t.switches + 1;
          Varan_util.Stats.incr_counter g_switches;
          (match e.ekind with
          | Ek_resume ->
            let task = e.e_task and etime = e.etime and flag = e.e_flag in
            (match task.fr_deadline with
            | Some d when d == e -> task.fr_deadline <- None
            | _ -> ());
            recycle t e;
            (* A still-queued waiter at resume time means the deadline
               fired before any signal: claim it so signallers skip it. *)
            (match task.fr_waiter with
            | Some w ->
              claim_waiter w.w_cond w;
              task.fr_waiter <- None
            | None -> ());
            (match task.fr_k with
            | K_none -> () (* stale: ownership already transferred *)
            | K_unit k ->
              task.fr_k <- K_none;
              if task.killed then Effect.Deep.discontinue k Killed
              else begin
                task.state <- Runnable;
                if etime > task.time then task.time <- etime;
                if !Varan_obs.Trace.enabled then begin
                  (* One span per dispatch slice, on the engine track
                     (pid 0) keyed by task id. Begin at the resume time,
                     end at the task's local clock when it parks again —
                     so the span covers exactly the vtime the slice
                     consumed and excludes the wait that follows. Inline
                     fast-path switches stay inside the enclosing span,
                     which keeps per-track nesting trivially correct. *)
                  Varan_obs.Trace.begin_span ~ts:(Int64.of_int task.time)
                    ~tid:task.id task.name;
                  Effect.Deep.continue k ();
                  Varan_obs.Trace.end_span ~ts:(Int64.of_int task.time)
                    ~tid:task.id task.name
                end
                else Effect.Deep.continue k ()
              end
            | K_bool k ->
              task.fr_k <- K_none;
              if task.killed then Effect.Deep.discontinue k Killed
              else begin
                task.state <- Runnable;
                if etime > task.time then task.time <- etime;
                if !Varan_obs.Trace.enabled then begin
                  Varan_obs.Trace.begin_span ~ts:(Int64.of_int task.time)
                    ~tid:task.id task.name;
                  Effect.Deep.continue k flag;
                  Varan_obs.Trace.end_span ~ts:(Int64.of_int task.time)
                    ~tid:task.id task.name
                end
                else Effect.Deep.continue k flag
              end)
          | Ek_run ->
            let fn = e.e_fn in
            recycle t e;
            fn ()
          | Ek_cancelled -> recycle t e (* unreachable: pruned above *));
          loop ()
        end
      end
    end
    (* tickers never outlive the work they monitor *)
  in
  loop ()

let run ?cycle_budget t =
  drain ?cycle_budget t;
  let leftover = blocked_task_names t in
  if leftover <> [] then raise (Deadlock (List.sort compare leftover))

let run_until_quiescent ?cycle_budget t = drain ?cycle_budget t

(* Task-context wrappers. The hot ones stash their payload in the
   side-slots so the perform itself allocates nothing. *)
let consume n =
  if n > 0 then begin
    pending_int := n;
    Effect.perform E_consume
  end

let sleep n =
  pending_int := maxi n 0;
  Effect.perform E_sleep

let now_cycles () = Effect.perform E_now
let self () = Effect.perform E_self
let spawn_here ?name body = Effect.perform (E_spawn (name, body))
let kill t id = kill_internal t ~at:t.global_time id
let kill_here id = Effect.perform (E_kill id)
let yield () = Effect.perform E_yield

module Cond = struct
  type nonrec cond = cond

  let create name = { c_name = name; c_waiters = Queue.create (); c_nwaiters = 0 }

  let wait c =
    pending_cond := c;
    Effect.perform E_wait

  let wait_timeout c cycles =
    pending_cond := c;
    pending_int := cycles;
    Effect.perform E_wait_timeout

  let signal c =
    pending_cond := c;
    Effect.perform E_signal

  let broadcast c =
    pending_cond := c;
    Effect.perform E_broadcast

  let waiters c = c.c_nwaiters
  let has_waiters c = c.c_nwaiters > 0

  (* The targeted-wakeup primitive: a no-op (no engine effect at all) when
     nobody is parked, so uncontended publishes and consumes pay nothing.
     Checking [c_nwaiters] outside an effect is sound because tasks are
     cooperative: no waiter can register between this test and the
     broadcast. *)
  let broadcast_if_waiting c = if c.c_nwaiters > 0 then broadcast c

  let _name c = c.c_name
end

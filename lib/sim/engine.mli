(** Deterministic discrete-event simulation engine.

    The engine runs cooperative {e tasks} — OCaml 5 effect-based fibers —
    over a virtual clock measured in CPU cycles. A task runs uninterrupted
    OCaml code between {e effect points} (consuming cycles, blocking,
    sleeping); at every effect point the engine requeues it and resumes the
    globally earliest task, so shared-state interleavings are totally
    ordered by virtual time and, on ties, by task creation order. This makes
    every simulation bit-for-bit reproducible.

    The kernel, ring buffer and NVX monitors are all built as ordinary
    OCaml data structures manipulated by tasks at effect points. *)

type t
(** A simulation engine instance. *)

type task_id = private int
(** Stable identifier for a spawned task. *)

exception Deadlock of string list
(** Raised by {!run} when no task is runnable but some are still blocked;
    carries the names of the blocked tasks. *)

exception Killed
(** Raised inside a task that is being killed, so that it can unwind. *)

exception Budget_exceeded of int64
(** Raised by {!run} / {!run_until_quiescent} when the simulation
    schedules work beyond the given cycle budget; carries the virtual
    time reached. The fault-injection harness uses it as a liveness
    oracle: a hung failover or a livelocked follower trips the budget
    instead of spinning forever. *)

val create : unit -> t

val spawn : t -> ?name:string -> (unit -> unit) -> task_id
(** [spawn t f] registers a new task executing [f], runnable at the current
    global virtual time. May be called from inside or outside a running
    simulation. *)

val run : ?cycle_budget:int64 -> t -> unit
(** Run until every task has finished. @raise Deadlock if tasks remain
    blocked with nothing runnable. @raise Budget_exceeded if
    [cycle_budget] is given and virtual time passes it. Uncaught task
    exceptions propagate out of [run] after being recorded. *)

val run_until_quiescent : ?cycle_budget:int64 -> t -> unit
(** Like {!run} but treats remaining blocked tasks as acceptable (they are
    simply abandoned); used by benchmarks whose servers block in [accept]
    forever once the clients are done. *)

val add_ticker : t -> period:int -> (unit -> bool) -> unit
(** [add_ticker t ~period fn] installs a periodic scheduler-context hook:
    as the event loop advances virtual time past each multiple of
    [period] cycles, [fn] runs at that deadline, before any event due
    later. Returning [false] deactivates the ticker permanently.

    Tickers piggyback on scheduled work — they never enqueue events of
    their own, so they stop firing (and cannot keep the simulation alive)
    once the heap drains. [fn] runs outside any task: it must not perform
    engine effects (consume/sleep/wait/broadcast); reading state and
    calling {!spawn} to delegate effectful work to a task are the
    intended uses. The NVX follower watchdog is the canonical client.
    @raise Invalid_argument if [period <= 0]. *)

val now : t -> int64
(** Global high-water virtual time, in cycles. *)

val kill : t -> task_id -> unit
(** Forcibly terminate a task: if blocked or queued it is discarded; if it
    is the caller, {!Killed} is raised at the next effect point. Used to
    model variant crashes and teardown. *)

val is_alive : t -> task_id -> bool

val task_name : t -> task_id -> string

val failures : t -> (task_id * exn) list
(** Tasks that terminated with an uncaught exception, oldest first. *)

val task_switches : t -> int
(** Entries dispatched so far — the engine's task-switch count.
    Also mirrored into the process-wide [engine.task_switches]
    {!Varan_util.Stats} counter, so scheduler work has a baseline to
    measure against. *)

val total_task_cycles : t -> int64
(** Sum over every task ever spawned of its lifetime so far — the vtime
    from spawn to its current local clock, busy and blocked alike. The
    denominator for {!Varan_obs.Profile} coverage: the attribution
    buckets partition this quantity (minus unattributed idle). *)

val task_lifetimes : t -> (int * string * int64) list
(** Per-task [(id, name, lifetime)] triples, unordered — the per-task
    breakdown of {!total_task_cycles}, for locating which tasks own any
    unattributed profile residue. *)

(** {1 Task-context operations}

    These must be called from inside a running task; calling them outside a
    simulation raises [Effect.Unhandled]. *)

val consume : int -> unit
(** [consume cycles] advances the calling task's local clock. This is the
    only way simulated computation takes time. *)

val sleep : int -> unit
(** Block for the given number of cycles. *)

val now_cycles : unit -> int64
(** The calling task's local virtual time. *)

val self : unit -> task_id

val spawn_here : ?name:string -> (unit -> unit) -> task_id
(** Spawn a sibling task from inside a task, runnable at the caller's
    current local time. *)

val kill_here : task_id -> unit
(** Kill another task from inside a task. *)

val yield : unit -> unit
(** Requeue at the same time, letting equal-time tasks run. *)

(** {1 Condition variables} *)

module Cond : sig
  type cond
  (** A broadcast/signal rendezvous. Waiters park their continuation; a
      signaller wakes them at [max (signal time, waiter time)]. *)

  val create : string -> cond
  val wait : cond -> unit
  (** Park until signalled. *)

  val wait_timeout : cond -> int -> bool
  (** [wait_timeout c cycles] parks until signalled or until [cycles] have
      elapsed; returns [true] if signalled, [false] on timeout. *)

  val signal : cond -> unit
  (** Wake the oldest waiter, if any. *)

  val broadcast : cond -> unit
  (** Wake every current waiter. *)

  val broadcast_if_waiting : cond -> unit
  (** {!broadcast}, but a complete no-op (not even an engine effect) when
      no waiter is parked. This is the targeted-wakeup primitive of the
      ring buffer's hot path: an uncontended publish or consume skips the
      wakeup entirely instead of broadcasting into the void. Safe to call
      from outside a task when there are no waiters. *)

  val waiters : cond -> int
  (** Number of currently parked (unclaimed) waiters. O(1). *)

  val has_waiters : cond -> bool
end

(* Task-context glue between the engine and the cycle-attribution
   buckets in [Varan_obs.Profile].

   [Varan_obs] deliberately knows nothing about the engine (callers pass
   it raw timestamps), so the wait sites that want to charge a region —
   ring stall loops, kernel blocks — would each have to repeat the same
   dance: read the clock before, read it after, look up their task id,
   honour suppression, credit the stolen-cycles table. This module is
   that dance, written once.

   Usage at a wait site:

     let t0 = Prof.mark () in
     ... block (Cond.wait loop) ...
     Prof.charge_wait Varan_obs.Profile.kernel_wait t0

   Both calls are a single load-and-branch when profiling is off. *)

module P = Varan_obs.Profile

let[@inline] mark () = if !P.enabled then Engine.now_cycles () else 0L

(* Charge the vtime since [t0] to [phase], unless an enclosing region on
   this task subsumes inner waits (suppression); credit the task's
   stolen-cycles total either way is wrong — a suppressed wait belongs
   to the subsuming phase, so only an unsuppressed charge also feeds the
   exclusive-time subtraction of outer regions. *)
let charge_wait phase t0 =
  if !P.enabled then begin
    let d = Int64.sub (Engine.now_cycles ()) t0 in
    if d > 0L then begin
      let tid = (Engine.self () :> int) in
      if not (P.suppressed tid) then begin
        P.add phase d;
        P.steal tid d
      end
    end
  end

(* Exclusive-time regions: a region that spans other instrumented sites
   (the interposed-syscall region spans kernel blocks, ring waits and
   the digest charge) subtracts whatever those inner sites credited to
   the task's stolen ledger, then credits its own charge back — so an
   enclosing region in turn subtracts this one. Nesting therefore
   composes: every cycle lands in exactly one bucket. *)

type region = { r_t0 : int64; r_s0 : int64; r_tid : int }

let no_region = { r_t0 = 0L; r_s0 = 0L; r_tid = -1 }

let region_enter () =
  if !P.enabled then begin
    let tid = (Engine.self () :> int) in
    { r_t0 = Engine.now_cycles (); r_s0 = P.stolen tid; r_tid = tid }
  end
  else no_region

let region_exit phase r =
  if !P.enabled && r.r_tid >= 0 then begin
    let elapsed = Int64.sub (Engine.now_cycles ()) r.r_t0 in
    let inner = Int64.sub (P.stolen r.r_tid) r.r_s0 in
    if not (P.suppressed r.r_tid) then begin
      let d = Int64.sub elapsed inner in
      if d > 0L then begin
        P.add phase d;
        P.steal r.r_tid d
      end
    end
  end

(* Charge a known cost that the surrounding code consumes itself (the
   leader's in-buffer digest): attribute it and steal it so the
   enclosing exclusive region does not count it twice. *)
let charge_inner phase cycles =
  if !P.enabled && cycles > 0 then begin
    let tid = (Engine.self () :> int) in
    if not (P.suppressed tid) then begin
      let c = Int64.of_int cycles in
      P.add phase c;
      P.steal tid c
    end
  end

module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Nvx = Varan_nvx.Session
module Config = Varan_nvx.Config
module Variant = Varan_nvx.Variant
module Fault = Varan_fault.Plan
module Oracle = Varan_trace.Oracle
module Prng = Varan_util.Prng
module P = Programs

type case = {
  seed : int;
  followers : int;
  prog_len : int;
  ring_size : int;
  plan : Fault.t;
}

let gen_case seed =
  let rng = Prng.create seed in
  let followers = 1 + Prng.int rng 4 in
  let prog_len = 8 + Prng.int rng 53 in
  let plan =
    Fault.random rng ~variants:(followers + 1) ~max_seq:(prog_len * 3 / 2)
      ~max_op:prog_len
  in
  { seed; followers; prog_len; ring_size = 8; plan }

let describe_case c =
  Printf.sprintf "seed=%d followers=%d len=%d ring=%d plan=[%s]" c.seed
    c.followers c.prog_len c.ring_size
    (Fault.to_string c.plan)

let build_program case =
  (* A stream independent of [gen_case]'s: extending the plan generator
     must not reshuffle every workload. *)
  let rng = Prng.create (case.seed lxor 0x7A57E5) in
  let ops = P.gen_ops rng case.prog_len in
  let ops =
    if
      List.exists
        (function Fault.Signal_burst _ -> true | _ -> false)
        case.plan
    then P.Install_handler :: ops
    else ops
  in
  P.splice_forks rng ops ~at:(Fault.fork_ops case.plan)

type outcome = {
  native : string;
  digests : string array;
  alive : bool array;
  leader_idx : int;
  crashes : (int * string) list;
  report : Oracle.report;
  stats : Nvx.stats;
  budget_blown : bool;
}

(* Generous: a healthy case finishes in well under a billion cycles, so
   only a genuine livelock (e.g. a spin that never observes progress)
   trips it. Deadlocks park tasks instead and surface as incomplete
   digests. *)
let cycle_budget = 50_000_000_000L

let run_ops case ops =
  let native = P.run_native ~kernel_seed:case.seed ops in
  let eng = E.create () in
  let k = K.create ~seed:case.seed eng in
  let n = case.followers + 1 in
  let obs = Array.init n (fun _ -> P.observations ()) in
  let variants =
    List.init n (fun i ->
        Variant.make
          (Printf.sprintf "v%d" i)
          (Variant.single (fun api -> P.interpret ~obs:obs.(i) ~path:"0" ops api)))
  in
  let oracle = Oracle.create () in
  let config =
    {
      Config.default with
      Config.ring_size = case.ring_size;
      fault_plan = case.plan;
      oracle = Some oracle;
    }
  in
  let session = Nvx.launch ~config k variants in
  let budget_blown =
    try
      E.run_until_quiescent ~cycle_budget eng;
      false
    with E.Budget_exceeded _ -> true
  in
  {
    native;
    digests = Array.map P.digest obs;
    alive = Array.init n (Nvx.is_alive session);
    leader_idx = Nvx.leader_index session;
    crashes = Nvx.crashes session;
    report = Oracle.report oracle;
    stats = Nvx.stats session;
    budget_blown;
  }

let run_case case = run_ops case (build_program case)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let check case out =
  let fails = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> fails := s :: !fails) fmt in
  if out.budget_blown then fail "liveness: cycle budget exceeded";
  let planned_crash idx =
    List.exists
      (function Fault.Crash_variant c -> c.idx = idx | _ -> false)
      case.plan
  in
  List.iter
    (fun (idx, msg) ->
      if not (planned_crash idx) then
        fail "unplanned crash of variant %d: %s" idx msg
      else if not (contains ~sub:"fault:" msg) then
        fail "variant %d died of %s, not its injection" idx msg)
    out.crashes;
  Array.iteri
    (fun i alive ->
      if alive && out.digests.(i) <> out.native then
        fail "variant %d survived but diverged: %S <> native %S" i
          out.digests.(i) out.native)
    out.alive;
  if Array.exists Fun.id out.alive && not out.alive.(out.leader_idx) then
    fail "leader role held by dead variant %d" out.leader_idx;
  if not (Oracle.ok out.report) then
    List.iter (fail "oracle: %s") out.report.Oracle.violations;
  List.rev !fails

let run_seed seed =
  let case = gen_case seed in
  let out = run_case case in
  (case, out, check case out)

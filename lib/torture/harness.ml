module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Nvx = Varan_nvx.Session
module Config = Varan_nvx.Config
module Variant = Varan_nvx.Variant
module Fault = Varan_fault.Plan
module Oracle = Varan_trace.Oracle
module Lifecycle = Varan_nvx.Lifecycle
module Checkpoint = Varan_nvx.Checkpoint
module Prng = Varan_util.Prng
module Stats = Varan_util.Stats
module Flight = Varan_obs.Flight
module P = Programs

(* A sweep launches hundreds of scoped sessions in one process; without
   this the stats and flight-recorder registries accumulate every dead
   case's entries (the registry-leak bug: dumps grew monotonically and
   showed shards from long-finished seeds). Called at the top of every
   case runner, so each case's registries hold that case alone. *)
let reset_registries () =
  Stats.clear_registry ();
  Flight.clear_registry ()

type case = {
  seed : int;
  followers : int;
  prog_len : int;
  ring_size : int;
  plan : Fault.t;
  lifecycle : Lifecycle.policy option;
  net : Config.net option;
      (* distributed mode: the last [remote_followers] followers consume
         through the cross-node ring bridge *)
}

let gen_case seed =
  let rng = Prng.create seed in
  let followers = 1 + Prng.int rng 4 in
  let prog_len = 8 + Prng.int rng 53 in
  let plan =
    Fault.random rng ~variants:(followers + 1) ~max_seq:(prog_len * 3 / 2)
      ~max_op:prog_len
  in
  { seed; followers; prog_len; ring_size = 8; plan; lifecycle = None; net = None }

(* The lifecycle sweep's policy: aggressive enough that every injected
   stall (>= 300k cycles, see below) trips the watchdog long before the
   sleep ends, with backoffs short enough that two respawns still fit the
   cycle budget. [lag_threshold] sits below the ring size so a stalled
   consumer's (capacity-capped) live lag can exceed it. *)
let lifecycle_policy =
  {
    Lifecycle.lag_threshold = 4;
    stall_timeout = 150_000;
    max_restarts = 2;
    backoff = 50_000;
    min_followers = 1;
    watchdog_period = 20_000;
    (* Checkpointing stays off in the base policy so the long-standing
       sweeps exercise the full-tape rejoin path unchanged; checkpointed
       cases opt in per test. *)
    checkpoint_interval = 0;
  }

let gen_lifecycle_case seed =
  let rng = Prng.create (seed lxor 0x11FEC) in
  let followers = 1 + Prng.int rng 4 in
  let prog_len = 12 + Prng.int rng 49 in
  let max_seq = prog_len * 3 / 2 in
  let follower_idx () = 1 + Prng.int rng followers in
  (* Stalls an order of magnitude past [stall_timeout]: the watchdog must
     quarantine the sleeper, never wait it out. Leader (idx 0) is never a
     victim — lifecycle recovery is a follower affair. *)
  let stalls =
    List.init
      (1 + Prng.int rng 2)
      (fun _ ->
        Fault.Stall_follower
          {
            idx = follower_idx ();
            at_seq = 1 + Prng.int rng max_seq;
            delay = 300_000 + Prng.int rng 700_000;
          })
  in
  let plan =
    if Prng.int rng 3 = 0 then
      Fault.Crash_variant { idx = follower_idx (); at_seq = 1 + Prng.int rng max_seq }
      :: stalls
    else stalls
  in
  {
    seed;
    followers;
    prog_len;
    ring_size = 8;
    plan;
    lifecycle = Some lifecycle_policy;
    net = None;
  }

(* The distributed sweep: link faults (partitions, reorders, drops,
   dups, delays) against a session whose highest-indexed followers live
   behind the ring bridge, mixed with the single-node lifecycle faults
   so both machineries compose. At least one follower stays local, so a
   parked remote side degrades the session only when local followers die
   too. [unreachable_after] in {!Config.default_net} (300k) sits above
   [lifecycle_policy.stall_timeout] (150k) by construction. *)
let gen_net_case seed =
  let rng = Prng.create (seed lxor 0xD157) in
  let followers = 2 + Prng.int rng 3 in
  let remote = 1 + Prng.int rng (followers - 1) in
  let prog_len = 12 + Prng.int rng 49 in
  let max_seq = prog_len * 3 / 2 in
  let link = Fault.random_link rng ~max_frame:prog_len in
  let extra =
    match Prng.int rng 4 with
    | 0 ->
      [
        Fault.Stall_follower
          {
            idx = 1 + Prng.int rng followers;
            at_seq = 1 + Prng.int rng max_seq;
            delay = 300_000 + Prng.int rng 700_000;
          };
      ]
    | 1 ->
      [
        Fault.Crash_variant
          {
            idx = 1 + Prng.int rng followers;
            at_seq = 1 + Prng.int rng max_seq;
          };
      ]
    | _ -> []
  in
  let policy =
    {
      lifecycle_policy with
      Lifecycle.checkpoint_interval = (if seed mod 3 = 0 then 60_000 else 0);
    }
  in
  let net =
    {
      Config.default_net with
      Config.remote_followers = remote;
      link_latency = 500 + Prng.int rng 3_500;
    }
  in
  {
    seed;
    followers;
    prog_len;
    ring_size = 8;
    plan = link @ extra;
    lifecycle = Some policy;
    net = Some net;
  }

let describe_case c =
  Printf.sprintf "seed=%d followers=%d len=%d ring=%d%s%s plan=[%s]" c.seed
    c.followers c.prog_len c.ring_size
    (if c.lifecycle = None then "" else " lifecycle")
    (match c.net with
    | None -> ""
    | Some n -> Printf.sprintf " net(remote=%d)" n.Config.remote_followers)
    (Fault.to_string c.plan)

let build_program case =
  (* A stream independent of [gen_case]'s: extending the plan generator
     must not reshuffle every workload. *)
  let rng = Prng.create (case.seed lxor 0x7A57E5) in
  let ops = P.gen_ops rng case.prog_len in
  let ops =
    if
      List.exists
        (function Fault.Signal_burst _ -> true | _ -> false)
        case.plan
    then P.Install_handler :: ops
    else ops
  in
  P.splice_forks rng ops ~at:(Fault.fork_ops case.plan)

type outcome = {
  native : string;
  digests : string array;
  alive : bool array;
  leader_idx : int;
  crashes : (int * string) list;
  report : Oracle.report;
  stats : Nvx.stats;
  lifecycle : Lifecycle.report option;
  degraded : string option;
  budget_blown : bool;
  session : Nvx.t;
      (* the finished session, for post-run probes (time travel, tape and
         checkpoint introspection) *)
}

(* Generous: a healthy case finishes in well under a billion cycles, so
   only a genuine livelock (e.g. a spin that never observes progress)
   trips it. Deadlocks park tasks instead and surface as incomplete
   digests. *)
let cycle_budget = 50_000_000_000L

let run_ops case ops =
  reset_registries ();
  let native = P.run_native ~kernel_seed:case.seed ops in
  let eng = E.create () in
  let k = K.create ~seed:case.seed eng in
  let n = case.followers + 1 in
  let obs = Array.init n (fun _ -> P.observations ()) in
  let variants =
    List.init n (fun i ->
        Variant.make
          (Printf.sprintf "v%d" i)
          (Variant.single (fun api ->
               (* A respawned incarnation re-runs the whole program; stale
                  buffers from the quarantined one must not pollute its
                  digest. *)
               if case.lifecycle <> None then P.reset obs.(i);
               P.interpret ~obs:obs.(i) ~path:"0" ops api)))
  in
  let oracle = Oracle.create () in
  let config =
    {
      Config.default with
      Config.ring_size = case.ring_size;
      fault_plan = case.plan;
      oracle = Some oracle;
      lifecycle = case.lifecycle;
      net = case.net;
    }
  in
  let session = Nvx.launch ~config k variants in
  let budget_blown =
    try
      E.run_until_quiescent ~cycle_budget eng;
      false
    with E.Budget_exceeded _ -> true
  in
  {
    native;
    digests = Array.map P.digest obs;
    alive = Array.init n (Nvx.is_alive session);
    leader_idx = Nvx.leader_index session;
    crashes = Nvx.crashes session;
    report = Oracle.report oracle;
    stats = Nvx.stats session;
    lifecycle = Nvx.lifecycle_report session;
    degraded = Nvx.degraded session;
    budget_blown;
    session;
  }

let run_case case = run_ops case (build_program case)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let check case out =
  let fails = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> fails := s :: !fails) fmt in
  if out.budget_blown then fail "liveness: cycle budget exceeded";
  let planned_crash idx =
    List.exists
      (function Fault.Crash_variant c -> c.idx = idx | _ -> false)
      case.plan
  in
  List.iter
    (fun (idx, msg) ->
      if not (planned_crash idx) then
        fail "unplanned crash of variant %d: %s" idx msg
      else if not (contains ~sub:"fault:" msg) then
        fail "variant %d died of %s, not its injection" idx msg)
    out.crashes;
  Array.iteri
    (fun i alive ->
      if alive && out.digests.(i) <> out.native then
        fail "variant %d survived but diverged: %S <> native %S" i
          out.digests.(i) out.native)
    out.alive;
  if Array.exists Fun.id out.alive && not out.alive.(out.leader_idx) then
    fail "leader role held by dead variant %d" out.leader_idx;
  if not (Oracle.ok out.report) then
    List.iter (fail "oracle: %s") out.report.Oracle.violations;
  List.rev !fails

let run_seed seed =
  let case = gen_case seed in
  let out = run_case case in
  (case, out, check case out)

(* One machine-readable object per finished case: the digests and the
   counters a sweep dashboard wants, without parsing prose. The [fails]
   list is whatever check layer the caller ran. *)
let json_of_outcome ~fails case (out : outcome) =
  let esc = Flight.json_escape in
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"seed\": %d, \"followers\": %d, \"prog_len\": %d" case.seed
    case.followers case.prog_len;
  add ", \"lifecycle\": %b" (case.lifecycle <> None);
  add ", \"remote_followers\": %d"
    (match case.net with None -> 0 | Some n -> n.Config.remote_followers);
  add ", \"pass\": %b" (fails = []);
  add ", \"native\": \"%s\"" (esc out.native);
  add ", \"digests\": [%s]"
    (String.concat ", "
       (Array.to_list (Array.map (fun d -> "\"" ^ esc d ^ "\"") out.digests)));
  add ", \"alive\": [%s]"
    (String.concat ", "
       (Array.to_list (Array.map string_of_bool out.alive)));
  add ", \"leader_idx\": %d, \"budget_blown\": %b" out.leader_idx
    out.budget_blown;
  add ", \"degraded\": %s"
    (match out.degraded with
    | None -> "null"
    | Some r -> "\"" ^ esc r ^ "\"");
  add ", \"crashes\": [%s]"
    (String.concat ", "
       (List.map
          (fun (idx, msg) ->
            Printf.sprintf "{\"idx\": %d, \"msg\": \"%s\"}" idx (esc msg))
          out.crashes));
  (match out.lifecycle with
  | None -> ()
  | Some r ->
    add
      ", \"lifecycle_report\": {\"lagging\": %d, \"recovered\": %d, \
       \"quarantines\": %d, \"respawns\": %d, \"rejoins\": %d, \
       \"unreachable\": %d, \"deaths\": %d, \"illegal_transitions\": %d}"
      r.Lifecycle.lagging r.Lifecycle.recovered r.Lifecycle.quarantines
      r.Lifecycle.respawns r.Lifecycle.rejoins r.Lifecycle.unreachable
      r.Lifecycle.deaths r.Lifecycle.illegal_transitions);
  (match out.stats.Nvx.bridge with
  | None -> ()
  | Some br ->
    add
      ", \"bridge\": {\"batches\": %d, \"events_forwarded\": %d, \
       \"retransmits\": %d, \"checksum_failures\": %d, \"bytes_on_wire\": \
       %d, \"bytes_saved\": %d, \"detaches\": %d, \"heals\": %d}"
      br.Varan_net.Bridge.batches br.Varan_net.Bridge.events_forwarded
      br.Varan_net.Bridge.retransmits br.Varan_net.Bridge.checksum_failures
      br.Varan_net.Bridge.bytes_on_wire br.Varan_net.Bridge.bytes_saved
      br.Varan_net.Bridge.detaches br.Varan_net.Bridge.heals);
  let rc = out.stats.Nvx.rewrite_cache in
  add
    ", \"rewrite_cache\": {\"hits\": %d, \"misses\": %d, \"rebases\": %d}"
    rc.Varan_binary.Rewrite_cache.hits rc.Varan_binary.Rewrite_cache.misses
    rc.Varan_binary.Rewrite_cache.rebases;
  let cp = out.stats.Nvx.checkpoints in
  add ", \"checkpoints\": {\"taken\": %d, \"restores\": %d, \"delta_events\": %d}"
    cp.Checkpoint.taken cp.Checkpoint.restores cp.Checkpoint.delta_events;
  add ", \"max_observed_lag\": %d" out.stats.Nvx.max_observed_lag;
  add ", \"fails\": [%s]"
    (String.concat ", " (List.map (fun f -> "\"" ^ esc f ^ "\"") fails));
  add "}";
  Buffer.contents b

(* The lifecycle sweep's extra verdicts, on top of {!check}: every
   follower settles — caught back up with a digest identical to native,
   or declared dead after exactly its respawn budget (fewer only when the
   whole session degraded and cancelled the remaining respawns). *)
let check_lifecycle (case : case) (out : outcome) =
  let fails = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> fails := s :: !fails) fmt in
  (match out.lifecycle with
  | None -> fail "lifecycle: no report despite policy"
  | Some r ->
    if r.Lifecycle.illegal_transitions > 0 then
      fail "lifecycle: %d illegal transition(s)" r.Lifecycle.illegal_transitions;
    let policy =
      match case.lifecycle with Some p -> p | None -> lifecycle_policy
    in
    List.iter
      (fun fr ->
        let idx = fr.Lifecycle.fr_idx in
        match fr.Lifecycle.fr_state with
        | Lifecycle.Healthy | Lifecycle.Lagging ->
          if out.digests.(idx) <> out.native then
            fail "follower %d ended %s but diverged: %S <> native %S" idx
              (Lifecycle.state_name fr.Lifecycle.fr_state)
              out.digests.(idx) out.native
        | Lifecycle.Dead ->
          if
            fr.Lifecycle.fr_restarts <> policy.Lifecycle.max_restarts
            && out.degraded = None
            (* A follower parked across a retention-floor advance dies
               clean rather than replaying a wrong prefix — restart
               budget untouched. *)
            && not (contains ~sub:"truncated" fr.Lifecycle.fr_reason)
          then begin
            (* An unexpected death is exactly what the black box is for:
               dump it and hand the investigator the bundle path, so the
               failure message alone localizes the run. *)
            let pm =
              try
                let fl = Nvx.flight out.session in
                let at =
                  match List.rev (Flight.entries fl) with
                  | e :: _ -> e.Flight.ev_at
                  | [] -> 0L
                in
                Flight.dump fl ~at
                  ~reason:
                    (Printf.sprintf "unexpected Dead of follower %d: %s" idx
                       fr.Lifecycle.fr_reason)
              with Sys_error e -> "unwritable: " ^ e
            in
            fail
              "follower %d dead after %d respawn(s), budget %d, and no \
               degradation to excuse it (post-mortem: %s)"
              idx fr.Lifecycle.fr_restarts policy.Lifecycle.max_restarts pm
          end
        | Lifecycle.Unreachable ->
          (* A terminal park is legal: the partition simply never healed
             before the program ended (or the session degraded). Its
             digest is void — the variant was killed mid-run. *)
          ()
        | (Lifecycle.Quarantined | Lifecycle.Respawning | Lifecycle.Catching_up)
          as st ->
          fail "follower %d never settled: stuck %s (%s)" idx
            (Lifecycle.state_name st) fr.Lifecycle.fr_reason)
      r.Lifecycle.followers);
  if out.report.Oracle.gate_waits_on_quarantined > 0 then
    fail "leader gate waited on a quarantined consumer %d time(s)"
      out.report.Oracle.gate_waits_on_quarantined;
  List.rev !fails

let run_lifecycle_seed seed =
  let case = gen_lifecycle_case seed in
  let out = run_case case in
  (case, out, check case out @ check_lifecycle case out)

(* The distributed sweep's extra verdicts, on top of {!check} and
   {!check_lifecycle}: the bridge ran (stats exist), link faults never
   corrupted a frame the checksum accepted, an [Unreachable] park needs
   a link fault to blame, and a session with events to mirror moved at
   least one batch. Digest cleanliness of surviving remote followers is
   already covered by {!check} (they are ordinary alive variants). *)
let check_net (case : case) (out : outcome) =
  let fails = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> fails := s :: !fails) fmt in
  (match out.stats.Nvx.bridge with
  | None -> fail "net: no bridge stats despite net config"
  | Some b ->
    if b.Varan_net.Bridge.checksum_failures > 0 then
      fail "net: %d frame(s) passed to the mirror with a bad checksum"
        b.Varan_net.Bridge.checksum_failures;
    if
      b.Varan_net.Bridge.batches = 0
      && out.stats.Nvx.rings.(0).Varan_ringbuf.Ring.publishes > 0
      && b.Varan_net.Bridge.detaches = 0
    then
      fail "net: leader published %d events but the bridge shipped nothing"
        out.stats.Nvx.rings.(0).Varan_ringbuf.Ring.publishes);
  (match out.lifecycle with
  | Some r ->
    List.iter
      (fun fr ->
        if
          fr.Lifecycle.fr_state = Lifecycle.Unreachable
          && not (Fault.has_link_faults case.plan)
        then
          fail "net: follower %d unreachable without a link fault (%s)"
            fr.Lifecycle.fr_idx fr.Lifecycle.fr_reason)
      r.Lifecycle.followers
  | None -> ());
  List.rev !fails

let run_net_seed seed =
  let case = gen_net_case seed in
  let out = run_case case in
  (case, out, check case out @ check_lifecycle case out @ check_net case out)

(* ------------------------------------------------------------------ *)
(* Contended-futex torture (per-tid lanes, lock-order replay)           *)
(* ------------------------------------------------------------------ *)

module Api = Varan_kernel.Api

type futex_case = {
  f_seed : int;
  f_threads : int;
  f_locks : int;
  f_rounds : int;
  f_followers : int;
  f_ring_size : int;
  f_plan : Fault.t;
}

(* Thread counts deliberately include 64: with per-tid lanes the whole
   variant must stay digest-clean at that scale. Crashes are
   follower-only here; leader-crash promotion at scale has a directed
   test. *)
let gen_futex_case seed =
  let rng = Prng.create (seed lxor 0xF07EC) in
  let threads = [| 4; 8; 16; 64 |].(Prng.int rng 4) in
  let locks = 1 + Prng.int rng 4 in
  let rounds = 3 + Prng.int rng 10 in
  let followers = 1 + Prng.int rng 2 in
  let plan =
    if Prng.int rng 2 = 0 then
      [
        Fault.Crash_variant
          {
            idx = 1 + Prng.int rng followers;
            at_seq = 1 + Prng.int rng (threads * rounds);
          };
      ]
    else []
  in
  {
    f_seed = seed;
    f_threads = threads;
    f_locks = locks;
    f_rounds = rounds;
    f_followers = followers;
    f_ring_size = 16;
    f_plan = plan;
  }

let describe_futex_case fc =
  Printf.sprintf "seed=%d threads=%d locks=%d rounds=%d followers=%d plan=[%s]"
    fc.f_seed fc.f_threads fc.f_locks fc.f_rounds fc.f_followers
    (Fault.to_string fc.f_plan)

type futex_outcome = {
  fo_digests : string array;
  fo_alive : bool array;
  fo_leader_idx : int;
  fo_crashes : (int * string) list;
  fo_report : Oracle.report;
  fo_budget_blown : bool;
}

(* Every thread loops lock → streamed getpid inside the critical section
   → unlock over a shared lock set, logging the acquisition index each
   lock returns. The digest is the per-thread logs concatenated in tid
   order: equal digests mean the follower reproduced the leader's global
   lock-acquisition order, thread by thread. *)
let run_futex_case ?leader_crash_at fc =
  reset_registries ();
  let eng = E.create () in
  let k = K.create ~seed:fc.f_seed eng in
  let n = fc.f_followers + 1 in
  let logs =
    Array.init n (fun _ ->
        Array.init fc.f_threads (fun _ -> Buffer.create 64))
  in
  let body i ~unit_idx api =
    let b = logs.(i).(unit_idx) in
    for r = 0 to fc.f_rounds - 1 do
      let l = (unit_idx + r) mod fc.f_locks in
      let acq = Api.futex_lock api (0x2000 + l) in
      Buffer.add_string b (Printf.sprintf "%d:%d=%d;" r l acq);
      (* A streamed, non-ordering call inside the critical section: with
         lanes it replays concurrently, between the lock barriers. *)
      ignore (Api.getpid api);
      Api.compute api 150;
      ignore (Api.futex_unlock api (0x2000 + l))
    done
  in
  let plan =
    match leader_crash_at with
    | Some at_seq -> Fault.Crash_variant { idx = 0; at_seq } :: fc.f_plan
    | None -> fc.f_plan
  in
  let variants =
    List.init n (fun i ->
        Variant.make
          (Printf.sprintf "v%d" i)
          {
            Variant.units = fc.f_threads;
            unit_kind = Variant.Thread;
            body = body i;
          })
  in
  let oracle = Oracle.create () in
  let config =
    {
      Config.default with
      Config.ring_size = fc.f_ring_size;
      fault_plan = plan;
      oracle = Some oracle;
    }
  in
  let session = Nvx.launch ~config k variants in
  let fo_budget_blown =
    try
      E.run_until_quiescent ~cycle_budget eng;
      false
    with E.Budget_exceeded _ -> true
  in
  let digest i =
    let all = Buffer.create 256 in
    Array.iter
      (fun b ->
        Buffer.add_buffer all b;
        Buffer.add_char all '|')
      logs.(i);
    Digest.to_hex (Digest.string (Buffer.contents all))
  in
  {
    fo_digests = Array.init n digest;
    fo_alive = Array.init n (Nvx.is_alive session);
    fo_leader_idx = Nvx.leader_index session;
    fo_crashes = Nvx.crashes session;
    fo_report = Oracle.report oracle;
    fo_budget_blown;
  }

(* The futex verdicts: every alive variant carries the (current)
   leader's digest — native is no yardstick here, because the monitor's
   costs reshuffle the native lock order. *)
let check_futex ?(planned_leader_crash = false) (fc : futex_case)
    (out : futex_outcome) =
  let fails = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> fails := s :: !fails) fmt in
  if out.fo_budget_blown then fail "liveness: cycle budget exceeded";
  let planned_crash idx =
    (planned_leader_crash && idx = 0)
    || List.exists
         (function Fault.Crash_variant c -> c.idx = idx | _ -> false)
         fc.f_plan
  in
  List.iter
    (fun (idx, msg) ->
      if not (planned_crash idx) then
        fail "unplanned crash of variant %d: %s" idx msg
      else if not (contains ~sub:"fault:" msg) then
        fail "variant %d died of %s, not its injection" idx msg)
    out.fo_crashes;
  if Array.exists Fun.id out.fo_alive then begin
    if not out.fo_alive.(out.fo_leader_idx) then
      fail "leader role held by dead variant %d" out.fo_leader_idx;
    let leader_digest = out.fo_digests.(out.fo_leader_idx) in
    Array.iteri
      (fun i alive ->
        if alive && out.fo_digests.(i) <> leader_digest then
          fail "variant %d diverged from the leader's lock order: %S <> %S" i
            out.fo_digests.(i) leader_digest)
      out.fo_alive
  end;
  if not (Oracle.ok out.fo_report) then
    List.iter (fail "oracle: %s") out.fo_report.Oracle.violations;
  List.rev !fails

let run_futex_seed seed =
  let fc = gen_futex_case seed in
  let out = run_futex_case fc in
  (fc, out, check_futex fc out)

(* ------------------------------------------------------------------ *)
(* Sharded-pool torture (per-shard digest isolation)                    *)
(* ------------------------------------------------------------------ *)

module Shard = Varan_nvx.Shard
module Rewrite_cache = Varan_binary.Rewrite_cache

type shard_case = {
  sc_seed : int;
  sc_shards : int;
  sc_followers : int; (* per shard *)
  sc_prog_len : int;
}

let gen_shard_case seed =
  let rng = Prng.create (seed lxor 0x5AADED) in
  {
    sc_seed = seed;
    sc_shards = 2 + Prng.int rng 3;
    sc_followers = 1 + Prng.int rng 2;
    sc_prog_len = 8 + Prng.int rng 25;
  }

let describe_shard_case c =
  Printf.sprintf "seed=%d shards=%d followers=%d len=%d" c.sc_seed c.sc_shards
    c.sc_followers c.sc_prog_len

(* Each shard runs its own program, from a stream salted with the shard
   id. Entropy ops are sanitized away: the pooled shards share one
   kernel, so their [Getrandom] draws would interleave — and interleave
   differently than each shard's solo native run — for reasons that have
   nothing to do with the monitor. *)
let shard_program c s =
  let rng = Prng.create (c.sc_seed lxor 0x5AADED lxor ((s + 1) * 0x9E3779)) in
  List.map P.sanitize_for_fork (P.gen_ops rng c.sc_prog_len)

let shard_path s = Printf.sprintf "s%d" s

(* Like [P.run_native] but under the shard's own observation path, so the
   digest (which embeds the path) and the /tmp namespace both line up
   with the pooled run's. *)
let native_shard_digest ~kernel_seed ~path ops =
  let eng = E.create () in
  let k = K.create ~seed:kernel_seed eng in
  let obs = P.observations () in
  let proc = K.new_proc k "native" in
  let tid =
    E.spawn eng (fun () -> P.interpret ~obs ~path ops (Api.direct k proc))
  in
  K.register_task k proc tid;
  E.run_until_quiescent eng;
  P.digest obs

type shard_outcome = {
  so_natives : string array; (* shard-local native digests *)
  so_digests : string array array; (* [shard].[variant] *)
  so_alive : bool array array;
  so_zygote_forks : int;
  so_rewrite : Rewrite_cache.stats;
  so_budget_blown : bool;
}

let run_shard_case c =
  reset_registries ();
  let progs = Array.init c.sc_shards (shard_program c) in
  (* Reference digests first: each shard's program alone on a fresh
     kernel with the pooled run's seed. *)
  let so_natives =
    Array.mapi
      (fun s ops ->
        native_shard_digest ~kernel_seed:c.sc_seed ~path:(shard_path s) ops)
      progs
  in
  let eng = E.create () in
  let k = K.create ~seed:c.sc_seed eng in
  let n = c.sc_followers + 1 in
  let obs =
    Array.init c.sc_shards (fun _ -> Array.init n (fun _ -> P.observations ()))
  in
  let variants_of s =
    List.init n (fun i ->
        Variant.make
          (Printf.sprintf "s%d.v%d" s i)
          (Variant.single (fun api ->
               P.interpret ~obs:obs.(s).(i) ~path:(shard_path s) progs.(s) api)))
  in
  let pool = Shard.launch k ~shards:c.sc_shards ~variants_of in
  let so_budget_blown =
    try
      E.run_until_quiescent ~cycle_budget eng;
      false
    with E.Budget_exceeded _ -> true
  in
  {
    so_natives;
    so_digests = Array.map (Array.map P.digest) obs;
    so_alive =
      Array.init c.sc_shards (fun s ->
          Array.init n (Nvx.is_alive (Shard.session pool s)));
    so_zygote_forks = Shard.zygote_forks pool;
    so_rewrite = Rewrite_cache.stats (Nvx.shared_cache (Shard.hub pool));
    so_budget_blown;
  }

(* The sharding verdicts: every variant of every shard is alive (no
   faults are injected here) and carries exactly its own shard's native
   digest — proof that co-residency on one kernel, one zygote and one
   rewrite cache leaks nothing across shard boundaries — and the pool
   really spawned everything through the one shared zygote. *)
let check_shard (c : shard_case) (out : shard_outcome) =
  let fails = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> fails := s :: !fails) fmt in
  if out.so_budget_blown then fail "liveness: cycle budget exceeded";
  Array.iteri
    (fun s digests ->
      Array.iteri
        (fun i d ->
          if not out.so_alive.(s).(i) then
            fail "shard %d variant %d died without a fault plan" s i
          else if d <> out.so_natives.(s) then
            fail "shard %d variant %d diverged from its native run: %S <> %S"
              s i d out.so_natives.(s))
        digests)
    out.so_digests;
  let expected_forks = c.sc_shards * (c.sc_followers + 1) in
  if out.so_zygote_forks <> expected_forks then
    fail "shared zygote served %d fork(s), expected %d" out.so_zygote_forks
      expected_forks;
  List.rev !fails

let run_shard_seed seed =
  let c = gen_shard_case seed in
  let out = run_shard_case c in
  (c, out, check_shard c out)

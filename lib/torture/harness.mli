(** The torture harness: one seed → one fully determined case.

    A case is a random syscall program, a random fault plan and a variant
    count, all derived from a single integer seed. Running it executes
    the program natively and under NVX with the plan injected and the
    trace oracle attached, then checks every invariant the paper claims
    failover preserves:

    - each surviving variant's observable digest equals the native run's;
    - every crash was planned (an {!Varan_fault.Plan.Injected} raise on a
      victim the plan names);
    - the oracle's report is clean (clocks, prefix delivery, payload
      balance, promotion accounting, fork rendezvous);
    - when survivors remain, exactly one of them holds the leader role;
    - the run stays inside the cycle budget (liveness under faults).

    Any failure reproduces from the seed alone — the [varan torture]
    subcommand re-runs it from the command line. *)

type case = {
  seed : int;
  followers : int;  (** 1–4 *)
  prog_len : int;
  ring_size : int;  (** before any [Ring_pressure] shrink *)
  plan : Varan_fault.Plan.t;
  lifecycle : Varan_nvx.Lifecycle.policy option;
      (** run the session with the follower lifecycle manager *)
  net : Varan_nvx.Config.net option;
      (** distributed mode: the last [remote_followers] followers
          consume tuple 0 through the cross-node ring bridge *)
}

val gen_case : int -> case
(** Derive the whole case deterministically from the seed. *)

val lifecycle_policy : Varan_nvx.Lifecycle.policy
(** The lifecycle sweep's policy: stall timeout well under the injected
    delays (every stall trips the watchdog), short backoffs, a respawn
    budget of 2. *)

val gen_lifecycle_case : int -> case
(** A case aimed at the lifecycle manager: follower-only stalls long
    enough (300k–1M cycles) that the watchdog must quarantine the sleeper
    rather than wait it out, sometimes a follower crash, never a leader
    fault. Uses {!lifecycle_policy}. *)

val describe_case : case -> string

val build_program : case -> Programs.op list
(** The case's workload: the generated ops plus a handler install when
    the plan posts signals, with forks spliced at the plan's positions. *)

type outcome = {
  native : string;  (** native-run digest *)
  digests : string array;  (** per-variant digest, index = variant idx *)
  alive : bool array;
  leader_idx : int;
  crashes : (int * string) list;
  report : Varan_trace.Oracle.report;
  stats : Varan_nvx.Session.stats;
  lifecycle : Varan_nvx.Lifecycle.report option;
  degraded : string option;
  budget_blown : bool;
  session : Varan_nvx.Session.t;
      (** the finished session, for post-run probes — time travel, tape
          and checkpoint introspection *)
}

val run_case : case -> outcome
(** Execute native + NVX runs. Deterministic in the case. *)

val run_ops : case -> Programs.op list -> outcome
(** Like {!run_case} but with an explicit workload instead of the
    case-derived one — the directed scenarios use this. *)

val check : case -> outcome -> string list
(** The invariant checks; empty means the case passed. *)

val run_seed : int -> case * outcome * string list
(** [gen_case], [run_case], [check] in one step. *)

val reset_registries : unit -> unit
(** Drop every entry from the process-wide stats and flight-recorder
    registries. Every case runner calls this first, so a sweep of
    hundreds of scoped sessions doesn't accumulate dead scopes (and
    [Varan_util.Stats.dump_json] describes the current case alone). *)

val json_of_outcome : fails:string list -> case -> outcome -> string
(** One JSON object (single line, no trailing newline) summarizing a
    finished case: seed and shape, per-variant digests against native,
    aliveness, crashes, degradation, the lifecycle/bridge/rewrite-cache/
    checkpoint counters and the check verdicts in [fails]. The
    [varan torture --json] report emits one of these per seed. *)

val check_lifecycle : case -> outcome -> string list
(** The lifecycle sweep's extra verdicts on top of {!check}: no illegal
    transitions; every follower either caught back up (digest identical
    to native) or is dead after exactly its respawn budget (fewer only
    under degradation); the leader's gate never waited on a quarantined
    consumer. *)

val run_lifecycle_seed : int -> case * outcome * string list
(** [gen_lifecycle_case], [run_case], then [check] plus
    [check_lifecycle]. *)

val gen_net_case : int -> case
(** A distributed case: 2–4 followers with 1..followers-1 of them behind
    the ring bridge on a simulated remote node, a link-fault plan
    (partitions, delays, reorders, drops, duplicates) and occasionally a
    single-node lifecycle fault mixed in, checkpointing on every third
    seed. At least one follower stays local. *)

val check_net : case -> outcome -> string list
(** The distributed sweep's extra verdicts on top of {!check} and
    {!check_lifecycle}: the bridge ran and shipped batches when the
    leader published, no accepted frame had a bad checksum, and an
    [Unreachable] park has a link fault to blame. *)

val run_net_seed : int -> case * outcome * string list
(** [gen_net_case], [run_case], then all three check layers. *)

(** {1 Contended-futex torture (per-tid lanes, lock-order replay)} *)

type futex_case = {
  f_seed : int;
  f_threads : int;  (** sibling threads per variant (up to 64) *)
  f_locks : int;  (** contended futex words *)
  f_rounds : int;  (** lock/unlock rounds per thread *)
  f_followers : int;
  f_ring_size : int;
  f_plan : Varan_fault.Plan.t;  (** follower-only crashes *)
}

val gen_futex_case : int -> futex_case
(** Derive a contended-futex case deterministically from the seed;
    thread counts are drawn from [{4, 8, 16, 64}]. *)

val describe_futex_case : futex_case -> string

type futex_outcome = {
  fo_digests : string array;
      (** per-variant digest of the per-thread lock-acquisition logs,
          concatenated in tid order *)
  fo_alive : bool array;
  fo_leader_idx : int;
  fo_crashes : (int * string) list;
  fo_report : Varan_trace.Oracle.report;
  fo_budget_blown : bool;
}

val run_futex_case : ?leader_crash_at:int -> futex_case -> futex_outcome
(** Every thread loops futex_lock → streamed getpid → futex_unlock over
    the shared lock set, logging each acquisition index.
    [leader_crash_at] adds a leader crash at that stream sequence (the
    directed promotion scenario). *)

val check_futex :
  ?planned_leader_crash:bool -> futex_case -> futex_outcome -> string list
(** Every alive variant's digest equals the (current) leader's — the
    follower reproduced the leader's global lock-acquisition order —
    plus the usual liveness, crash-provenance and oracle verdicts.
    Native is no yardstick here: monitor costs reshuffle the native lock
    order. *)

val run_futex_seed : int -> futex_case * futex_outcome * string list
(** [gen_futex_case], [run_futex_case], [check_futex] in one step. *)

(** {1 Sharded-pool torture (per-shard digest isolation)} *)

type shard_case = {
  sc_seed : int;
  sc_shards : int;  (** 2–4 *)
  sc_followers : int;  (** per shard, 1–2 *)
  sc_prog_len : int;
}

val gen_shard_case : int -> shard_case
(** Derive a sharded-pool case deterministically from the seed. *)

val describe_shard_case : shard_case -> string

val shard_program : shard_case -> int -> Programs.op list
(** Shard [s]'s program: an independent op stream salted with the shard
    id, with entropy ops sanitized away (pooled shards share one kernel,
    so their entropy draws would interleave differently than each
    shard's solo native run). *)

type shard_outcome = {
  so_natives : string array;
      (** per-shard digest of the shard's program run alone on a fresh
          kernel *)
  so_digests : string array array;  (** [.(shard).(variant)] *)
  so_alive : bool array array;
  so_zygote_forks : int;  (** served by the pool's one shared zygote *)
  so_rewrite : Varan_binary.Rewrite_cache.stats;
  so_budget_blown : bool;
}

val run_shard_case : shard_case -> shard_outcome
(** Native runs per shard, then the whole pool — one {!Varan_nvx.Shard}
    launch on one kernel, sharing the zygote and rewrite cache — run to
    quiescence. Deterministic in the case. *)

val check_shard : shard_case -> shard_outcome -> string list
(** Every variant of every shard alive and digest-identical to its own
    shard's native run (co-residency leaks nothing across shards), and
    the shared zygote served exactly [shards * (followers+1)] forks. *)

val run_shard_seed : int -> shard_case * shard_outcome * string list
(** [gen_shard_case], [run_shard_case], [check_shard] in one step. *)

(** The torture harness: one seed → one fully determined case.

    A case is a random syscall program, a random fault plan and a variant
    count, all derived from a single integer seed. Running it executes
    the program natively and under NVX with the plan injected and the
    trace oracle attached, then checks every invariant the paper claims
    failover preserves:

    - each surviving variant's observable digest equals the native run's;
    - every crash was planned (an {!Varan_fault.Plan.Injected} raise on a
      victim the plan names);
    - the oracle's report is clean (clocks, prefix delivery, payload
      balance, promotion accounting, fork rendezvous);
    - when survivors remain, exactly one of them holds the leader role;
    - the run stays inside the cycle budget (liveness under faults).

    Any failure reproduces from the seed alone — the [varan torture]
    subcommand re-runs it from the command line. *)

type case = {
  seed : int;
  followers : int;  (** 1–4 *)
  prog_len : int;
  ring_size : int;  (** before any [Ring_pressure] shrink *)
  plan : Varan_fault.Plan.t;
}

val gen_case : int -> case
(** Derive the whole case deterministically from the seed. *)

val describe_case : case -> string

val build_program : case -> Programs.op list
(** The case's workload: the generated ops plus a handler install when
    the plan posts signals, with forks spliced at the plan's positions. *)

type outcome = {
  native : string;  (** native-run digest *)
  digests : string array;  (** per-variant digest, index = variant idx *)
  alive : bool array;
  leader_idx : int;
  crashes : (int * string) list;
  report : Varan_trace.Oracle.report;
  stats : Varan_nvx.Session.stats;
  budget_blown : bool;
}

val run_case : case -> outcome
(** Execute native + NVX runs. Deterministic in the case. *)

val run_ops : case -> Programs.op list -> outcome
(** Like {!run_case} but with an explicit workload instead of the
    case-derived one — the directed scenarios use this. *)

val check : case -> outcome -> string list
(** The invariant checks; empty means the case passed. *)

val run_seed : int -> case * outcome * string list
(** [gen_case], [run_case], [check] in one step. *)

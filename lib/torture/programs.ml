module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Api = Varan_kernel.Api
module Flags = Varan_kernel.Flags
module Errno = Varan_syscall.Errno
module Prng = Varan_util.Prng

type op =
  | Open of string
  | Close_newest
  | Read_newest of int
  | Write_newest of int
  | Lseek_newest
  | Stat of string
  | Time
  | Getuid
  | Compute of int
  | Mkdir_tmp of int
  | Create_tmp of int
  | Unlink_tmp of int
  | Getrandom of int
  | Fcntl_newest
  | Install_handler
  | Fork of op list

let gen_ops rng n =
  let paths = [| "/dev/zero"; "/dev/urandom"; "/dev/null" |] in
  List.init n (fun _ ->
      match Prng.int rng 14 with
      | 0 -> Open paths.(Prng.int rng 3)
      | 1 -> Close_newest
      | 2 -> Read_newest (1 + Prng.int rng 600)
      | 3 -> Write_newest (1 + Prng.int rng 600)
      | 4 -> Lseek_newest
      | 5 -> Stat paths.(Prng.int rng 3)
      | 6 -> Time
      | 7 -> Getuid
      | 8 -> Compute (Prng.int rng 20_000)
      | 9 -> Mkdir_tmp (Prng.int rng 4)
      | 10 -> Create_tmp (Prng.int rng 4)
      | 11 -> Unlink_tmp (Prng.int rng 4)
      | 12 -> Getrandom (1 + Prng.int rng 64)
      | _ -> Fcntl_newest)

let rec sanitize_for_fork = function
  | Getrandom n -> Compute (n * 100)
  | Open "/dev/urandom" -> Open "/dev/zero"
  | Fork sub -> Fork (List.map sanitize_for_fork sub)
  | op -> op

let splice_forks rng ops ~at =
  if at = [] then ops
  else
    let at = List.sort_uniq compare at in
    let ops = List.map sanitize_for_fork ops in
    List.concat
      (List.mapi
         (fun i op ->
           if List.mem i at then
             let child =
               List.map sanitize_for_fork (gen_ops rng (3 + Prng.int rng 8))
             in
             [ Fork child; op ]
           else [ op ])
         ops)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type observations = (string, Buffer.t) Hashtbl.t

let observations () : observations = Hashtbl.create 8

(* A respawned variant re-runs its whole program; dropping the stale
   incarnation's buffers (the main unit's and every forked child's) keeps
   the digest that of exactly one complete execution. *)
let reset (obs : observations) = Hashtbl.reset obs

let digest (obs : observations) =
  Hashtbl.fold (fun path buf acc -> (path, Buffer.contents buf) :: acc) obs []
  |> List.sort compare
  |> List.map (fun (p, s) -> p ^ "{" ^ s ^ "}")
  |> String.concat " "

(* Run the op list, folding every observable into the unit's digest
   buffer. *)
let rec interpret ~(obs : observations) ~path ops api =
  let buf =
    match Hashtbl.find_opt obs path with
    | Some b -> b
    | None ->
      let b = Buffer.create 256 in
      Hashtbl.add obs path b;
      b
  in
  let o fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let fds = ref [] in
  let newest () = match !fds with [] -> None | fd :: _ -> Some fd in
  let forkno = ref 0 in
  let handler_hits = ref 0 in
  let payload = Bytes.make 600 'w' in
  let tmp fmt i = Printf.sprintf fmt path i in
  (* Cooperative checkpoint/restore (rr-style fast rejoin). The encoder
     captures everything a respawned incarnation needs to take over at an
     op boundary: ops completed, the open-fd stack (the restored process
     keeps the same descriptor numbers), and the digest prefix. Forked
     children are never part of a snapshot — the hook is only offered
     while [forkno = 0], so a restored delta replays any fork event and
     recreates the child from scratch. *)
  let done_ops = ref 0 in
  let encode_state () =
    let b = Buffer.create 64 in
    let i32 v = Buffer.add_int32_le b (Int32.of_int v) in
    i32 !done_ops;
    i32 !forkno;
    let fd_list = !fds in
    i32 (List.length fd_list);
    List.iter i32 fd_list;
    let s = Buffer.contents buf in
    i32 (String.length s);
    Buffer.add_string b s;
    Buffer.to_bytes b
  in
  (match api.Api.resume_state with
  | None -> ()
  | Some s ->
    api.Api.resume_state <- None;
    let pos = ref 0 in
    let i32 () =
      let v = Int32.to_int (Bytes.get_int32_le s !pos) in
      pos := !pos + 4;
      v
    in
    done_ops := i32 ();
    forkno := i32 ();
    let nfds = i32 () in
    (* Explicit recursion: [List.init]'s evaluation order is unspecified,
       and the reads must land in stream order. *)
    let rec read_fds n acc =
      if n = 0 then List.rev acc else read_fds (n - 1) (i32 () :: acc)
    in
    fds := read_fds nfds [];
    let len = i32 () in
    Buffer.clear buf;
    Buffer.add_subbytes buf s !pos len);
  List.iteri
    (fun opno op ->
      if opno < !done_ops then ()
      else begin
        (match op with
      | Open p -> (
        match Api.openf api p Flags.o_rdwr with
        | Ok fd ->
          fds := fd :: !fds;
          o "open=%d;" fd
        | Error e -> o "open!%s;" (Errno.name e))
      | Close_newest -> (
        match newest () with
        | None -> ()
        | Some fd ->
          fds := List.tl !fds;
          o "close=%d;" (match Api.close api fd with Ok v -> v | Error _ -> -1))
      | Read_newest n -> (
        match newest () with
        | None -> ()
        | Some fd -> (
          match Api.read api fd n with
          | Ok b -> o "read=%d:%d;" (Bytes.length b) (Hashtbl.hash b)
          | Error e -> o "read!%s;" (Errno.name e)))
      | Write_newest n -> (
        match newest () with
        | None -> ()
        | Some fd -> (
          match Api.write api fd (Bytes.sub payload 0 n) with
          | Ok w -> o "write=%d;" w
          | Error e -> o "write!%s;" (Errno.name e)))
      | Lseek_newest -> (
        match newest () with
        | None -> ()
        | Some fd ->
          o "lseek=%d;"
            (match Api.lseek api fd 0 Flags.seek_set with
            | Ok v -> v
            | Error _ -> -1))
      | Stat p -> (
        match Api.stat_size api p with
        | Ok size -> o "stat=%d;" size
        | Error e -> o "stat!%s;" (Errno.name e))
      | Time -> o "time=%d;" (Api.time api)
      | Getuid -> o "uid=%d;" (Api.getuid api)
      | Compute n -> Api.compute api n
      | Mkdir_tmp i -> (
        match Api.mkdir api (tmp "/tmp/%s-d%d" i) with
        | Ok () -> o "mkdir=0;"
        | Error e -> o "mkdir!%s;" (Errno.name e))
      | Create_tmp i -> (
        match
          Api.openf api (tmp "/tmp/%s-f%d" i) (Flags.o_rdwr lor Flags.o_creat)
        with
        | Ok fd ->
          fds := fd :: !fds;
          o "creat=%d;" fd
        | Error e -> o "creat!%s;" (Errno.name e))
      | Unlink_tmp i -> (
        match Api.unlink api (tmp "/tmp/%s-f%d" i) with
        | Ok () -> o "unlink=0;"
        | Error e -> o "unlink!%s;" (Errno.name e))
      | Getrandom n -> (
        match Api.getrandom api n with
        | Ok b -> o "rand=%d:%d;" (Bytes.length b) (Hashtbl.hash b)
        | Error e -> o "rand!%s;" (Errno.name e))
      | Fcntl_newest -> (
        match newest () with
        | None -> ()
        | Some fd ->
          o "fcntl=%d;"
            (match Api.fcntl api fd Flags.f_getfl 0 with
            | Ok v -> v
            | Error _ -> -1))
      | Install_handler ->
        (* The handler's effect stays out of the digest: injected bursts
           only exist under the monitor, never in the native run. *)
        Api.set_signal_handler api Flags.sigint (fun _ -> incr handler_hits);
        o "hdl;"
      | Fork sub ->
        let child_path = Printf.sprintf "%s.f%d" path !forkno in
        incr forkno;
        (* Pids differ across variants and runs; only the fact that the
           fork happened is observable. *)
        ignore
          (Api.fork api (fun child_api ->
               interpret ~obs ~path:child_path sub child_api));
        o "fork;");
        done_ops := opno + 1;
        (* Offer a snapshot at this syscall boundary; the monitor only
           takes one when its watchdog armed a checkpoint. *)
        match api.Api.checkpoint_hook with
        | Some h when !forkno = 0 -> h encode_state
        | _ -> ()
      end)
    ops

let run_native ~kernel_seed ops =
  let eng = E.create () in
  let k = K.create ~seed:kernel_seed eng in
  let obs = observations () in
  let proc = K.new_proc k "native" in
  let tid =
    E.spawn eng (fun () -> interpret ~obs ~path:"0" ops (Api.direct k proc))
  in
  K.register_task k proc tid;
  E.run_until_quiescent eng;
  digest obs

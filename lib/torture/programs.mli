(** Random syscall programs over the simulated API.

    The little op language the equivalence properties and the torture
    suite share: programs are deterministic given the kernel (urandom
    draws come from the kernel's seeded PRNG), always terminate, and only
    use resources they created. Every observable result — return values,
    bytes read, error names, everything except pids — folds into a digest
    string, so a native run and each variant of an NVX run can be
    compared exactly. *)

type op =
  | Open of string
  | Close_newest
  | Read_newest of int
  | Write_newest of int
  | Lseek_newest
  | Stat of string
  | Time
  | Getuid
  | Compute of int
  | Mkdir_tmp of int
  | Create_tmp of int
  | Unlink_tmp of int
  | Getrandom of int
  | Fcntl_newest
  | Install_handler
      (** install a SIGINT handler (digest-invisible side effect) so the
          fault injector's signal bursts queue instead of being dropped *)
  | Fork of op list  (** fork(2): the child runs the nested program *)

val gen_ops : Varan_util.Prng.t -> int -> op list
(** [n] random straight-line ops (no forks or handlers — those are
    spliced in by the torture harness from the fault plan). *)

val sanitize_for_fork : op -> op
(** Rewrite entropy-drawing ops into neutral ones. A forking program must
    not read the kernel's global entropy stream: parent and child
    interleave their draws differently natively and under NVX, which
    would make digests diverge for reasons unrelated to the monitor. *)

val splice_forks : Varan_util.Prng.t -> op list -> at:int list -> op list
(** Insert a [Fork] (with a freshly generated child program) before each
    op index in [at]. When [at] is non-empty the whole program is
    sanitized with {!sanitize_for_fork}. *)

(** {1 Execution} *)

type observations
(** Digest buffers for one run, keyed by execution-unit path ("0" for the
    main unit, "0.f0" for its first forked child, ...). *)

val observations : unit -> observations

val reset : observations -> unit
(** Drop every buffer. A variant respawned by the lifecycle manager
    re-runs its whole program; the harness resets its observations at
    body entry so the digest reflects exactly one complete execution. *)

val digest : observations -> string
(** Join every unit's observation buffer, sorted by unit path. *)

val interpret :
  obs:observations -> path:string -> op list -> Varan_kernel.Api.t -> unit
(** Run the program against the API, recording observables under [path];
    forked children record under [path ^ ".f<k>"]. Uses [path]-prefixed
    names under [/tmp] so concurrent units never share VFS state. *)

val run_native : kernel_seed:int -> op list -> string
(** Execute the program natively (no monitor) on a fresh kernel and
    return its digest — the reference every NVX variant must match. *)

module Ring = Varan_ringbuf.Ring
module Event = Varan_ringbuf.Event
module Pool = Varan_shmem.Pool

type consumer_state = {
  mutable started : bool;
  mutable next_seq : int;
  mutable last_clock : int;
}

type tuple_state = {
  tu : int;
  mutable published : Event.t option array;
  mutable nevents : int;
  mutable digest : int;
  consumers : (int, consumer_state) Hashtbl.t;
}

type t = {
  tuples : (int, tuple_state) Hashtbl.t;
  mutable violations : string list; (* reversed *)
  mutable nviolations : int;
  mutable consumed : int;
  mutable crashes : int;
  mutable leader_crashes : int;
  mutable promotions : int;
  promoted_variants : (int, unit) Hashtbl.t;
  fork_refs : (int, unit) Hashtbl.t; (* tuples claimed by an Ev_fork *)
  payloads : (int, int ref) Hashtbl.t; (* addr -> outstanding readers *)
  (* Lifecycle bookkeeping: consumer ids retired by a quarantine (the
     leader's gate must never wait on one again), and the exact splice
     sequence each rejoined consumer must first read. *)
  quarantined_cids : (int * int, unit) Hashtbl.t; (* (tuple, cid) *)
  splice_expect : (int * int, int) Hashtbl.t; (* (tuple, cid) -> seq *)
  respawn_counts : (int, int ref) Hashtbl.t; (* variant -> respawns *)
  (* Checkpoint/restore bookkeeping: the stream positions each variant
     has checkpointed — a restore must land on one of them, at or below
     its splice point, or the rejoin skipped or re-consumed events. *)
  checkpoint_seqs : (int * int, unit) Hashtbl.t; (* (variant, seq) *)
  latest_checkpoint : (int, int) Hashtbl.t; (* variant -> newest seq *)
  mutable quarantines : int;
  mutable respawns : int;
  mutable rejoins : int;
  mutable checkpoints : int;
  mutable restores : int;
  mutable gate_waits : int;
  mutable gate_waits_on_quarantined : int;
}

let violation_cap = 64

let create () =
  {
    tuples = Hashtbl.create 4;
    violations = [];
    nviolations = 0;
    consumed = 0;
    crashes = 0;
    leader_crashes = 0;
    promotions = 0;
    promoted_variants = Hashtbl.create 4;
    fork_refs = Hashtbl.create 4;
    payloads = Hashtbl.create 16;
    quarantined_cids = Hashtbl.create 4;
    splice_expect = Hashtbl.create 4;
    respawn_counts = Hashtbl.create 4;
    checkpoint_seqs = Hashtbl.create 8;
    latest_checkpoint = Hashtbl.create 4;
    quarantines = 0;
    respawns = 0;
    rejoins = 0;
    checkpoints = 0;
    restores = 0;
    gate_waits = 0;
    gate_waits_on_quarantined = 0;
  }

let violate t fmt =
  Printf.ksprintf
    (fun msg ->
      t.nviolations <- t.nviolations + 1;
      if t.nviolations <= violation_cap then t.violations <- msg :: t.violations)
    fmt

(* ------------------------------------------------------------------ *)
(* Structural stream digest                                            *)
(* ------------------------------------------------------------------ *)

(* Explicit byte-level mixing: [Hashtbl.hash] caps the nodes it visits,
   which would silently ignore long payloads. The digest covers exactly
   the fields that survive record/replay serialization — descriptor
   grants and the payload's transport (pool chunk vs inline) do not. *)
let mix h v = (h * 0x01000193) + v

let digest_event (e : Event.t) =
  let h = ref 0x811c9dc5 in
  let add v = h := mix !h v in
  add
    (match e.Event.kind with
    | Event.Ev_syscall -> 0
    | Event.Ev_signal -> 1
    | Event.Ev_fork -> 2
    | Event.Ev_exit -> 3);
  add e.Event.sysno;
  add e.Event.tid;
  add e.Event.ret;
  add e.Event.clock;
  Array.iter add e.Event.args;
  (match e.Event.payload with
  | Some chunk ->
    (* Hash the pooled payload in place — a scoped borrow of the chunk,
       no allocation, same mixing as the inline branch. *)
    Pool.view chunk ~len:e.Event.payload_len (fun data off len ->
        add len;
        for i = off to off + len - 1 do
          add (Char.code (Bytes.get data i))
        done)
  | None -> (
    match e.Event.inline_out with
    | None -> add (-1)
    | Some out ->
      add (Bytes.length out);
      Bytes.iter (fun c -> add (Char.code c)) out));
  !h

(* ------------------------------------------------------------------ *)
(* Taps                                                                *)
(* ------------------------------------------------------------------ *)

let grow ts needed =
  let len = Array.length ts.published in
  if needed >= len then begin
    let bigger = Array.make (max (2 * len) (needed + 1)) None in
    Array.blit ts.published 0 bigger 0 len;
    ts.published <- bigger
  end

let on_publish t ts ~seq (e : Event.t) =
  if seq <> ts.nevents then
    violate t "tuple %d: publish sequence gap (got %d, expected %d)" ts.tu seq
      ts.nevents;
  (* Stamp [s + 1] at sequence [s]: strict per-tuple monotonicity, and a
     promotion that lost or duplicated events would break the arithmetic
     for every event after the failover point. *)
  if e.Event.clock <> seq + 1 then
    violate t "tuple %d: event %d carries Lamport stamp %d, expected %d"
      ts.tu seq e.Event.clock (seq + 1);
  grow ts seq;
  ts.published.(seq) <- Some e;
  ts.nevents <- max ts.nevents (seq + 1);
  ts.digest <- mix ts.digest (digest_event e);
  if e.Event.kind = Event.Ev_fork then begin
    match Array.length e.Event.args with
    | 0 -> violate t "tuple %d: fork event %d carries no tuple id" ts.tu seq
    | _ ->
      let target = e.Event.args.(0) in
      if not (Hashtbl.mem t.tuples target) then
        violate t "tuple %d: fork event %d references unknown tuple %d" ts.tu
          seq target
      else if Hashtbl.mem t.fork_refs target then
        violate t "tuple %d: fork event %d claims tuple %d a second time"
          ts.tu seq target
      else Hashtbl.replace t.fork_refs target ()
  end

let on_consume t ts ~cid ~seq (e : Event.t) =
  t.consumed <- t.consumed + 1;
  let cs =
    match Hashtbl.find_opt ts.consumers cid with
    | Some cs -> cs
    | None ->
      let cs = { started = false; next_seq = 0; last_clock = 0 } in
      Hashtbl.replace ts.consumers cid cs;
      cs
  in
  (* Consumers may register mid-stream (a recorder, a forked follower),
     so the prefix starts wherever they first read; from there it must be
     gapless. *)
  if cs.started && seq <> cs.next_seq then
    violate t "tuple %d: consumer %d jumped from seq %d to %d" ts.tu cid
      cs.next_seq seq;
  (* A rejoined consumer is stricter: its first live read must land at
     exactly the splice sequence the session recorded at resubscribe. *)
  (if not cs.started then
     match Hashtbl.find_opt t.splice_expect (ts.tu, cid) with
     | Some expected when seq <> expected ->
       violate t
         "tuple %d: rejoined consumer %d spliced at seq %d, expected %d"
         ts.tu cid seq expected
     | _ -> ());
  (if Hashtbl.mem t.quarantined_cids (ts.tu, cid) then
     violate t "tuple %d: quarantined consumer %d read seq %d after removal"
       ts.tu cid seq);
  cs.started <- true;
  cs.next_seq <- seq + 1;
  (if seq >= ts.nevents then
     violate t "tuple %d: consumer %d read unpublished seq %d" ts.tu cid seq
   else
     match ts.published.(seq) with
     | Some pub when pub == e -> ()
     | _ ->
       violate t
         "tuple %d: consumer %d observed a different event at seq %d than \
          the leader published"
         ts.tu cid seq);
  if e.Event.clock <= cs.last_clock then
    violate t "tuple %d: consumer %d saw clock %d after %d" ts.tu cid
      e.Event.clock cs.last_clock;
  cs.last_clock <- e.Event.clock

let attach_ring t ~tuple ring =
  if Hashtbl.mem t.tuples tuple then
    violate t "tuple %d: a second ring was created for this tuple" tuple
  else begin
    let ts =
      {
        tu = tuple;
        published = Array.make 64 None;
        nevents = 0;
        digest = 0x811c9dc5;
        consumers = Hashtbl.create 4;
      }
    in
    Hashtbl.replace t.tuples tuple ts;
    Ring.set_tap ring
      (Some
         {
           Ring.tap_publish = (fun ~seq e -> on_publish t ts ~seq e);
           Ring.tap_consume = (fun ~cid ~seq e -> on_consume t ts ~cid ~seq e);
         })
  end

(* ------------------------------------------------------------------ *)
(* Session notes                                                       *)
(* ------------------------------------------------------------------ *)

let note_crash t ~idx ~was_leader =
  ignore idx;
  t.crashes <- t.crashes + 1;
  if was_leader then t.leader_crashes <- t.leader_crashes + 1

let note_promotion t ~idx =
  t.promotions <- t.promotions + 1;
  if Hashtbl.mem t.promoted_variants idx then
    violate t "variant %d was promoted to leader twice" idx
  else Hashtbl.replace t.promoted_variants idx ();
  if t.promotions > t.leader_crashes then
    violate t "promotion of variant %d without a preceding leader crash" idx

let note_quarantine t ~idx ~tuple ~cid =
  ignore idx;
  t.quarantines <- t.quarantines + 1;
  Hashtbl.replace t.quarantined_cids (tuple, cid) ()

let note_respawn t ~idx ~max_restarts =
  t.respawns <- t.respawns + 1;
  let r =
    match Hashtbl.find_opt t.respawn_counts idx with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.replace t.respawn_counts idx r;
      r
  in
  incr r;
  if !r > max_restarts then
    violate t "variant %d respawned %d times, beyond max_restarts %d" idx !r
      max_restarts

let note_rejoin t ~idx ~tuple ~cid ~splice_seq =
  ignore idx;
  t.rejoins <- t.rejoins + 1;
  Hashtbl.replace t.splice_expect (tuple, cid) splice_seq

let note_checkpoint t ~idx ~seq =
  t.checkpoints <- t.checkpoints + 1;
  (match Hashtbl.find_opt t.latest_checkpoint idx with
  | Some prev when seq < prev ->
    violate t
      "variant %d checkpointed at seq %d after already checkpointing seq %d"
      idx seq prev
  | _ -> Hashtbl.replace t.latest_checkpoint idx seq);
  Hashtbl.replace t.checkpoint_seqs (idx, seq) ()

let note_restore t ~idx ~seq ~splice_seq =
  t.restores <- t.restores + 1;
  if not (Hashtbl.mem t.checkpoint_seqs (idx, seq)) then
    violate t "variant %d restored seq %d, which it never checkpointed" idx
      seq;
  if seq > splice_seq then
    violate t
      "variant %d restored checkpoint seq %d past its splice point %d \
       (events would be skipped)"
      idx seq splice_seq

let note_gate_wait t ~tuple ~cids =
  t.gate_waits <- t.gate_waits + 1;
  List.iter
    (fun cid ->
      if Hashtbl.mem t.quarantined_cids (tuple, cid) then begin
        t.gate_waits_on_quarantined <- t.gate_waits_on_quarantined + 1;
        violate t
          "tuple %d: leader gate waited on quarantined consumer %d" tuple cid
      end)
    cids

let note_payload_register t ~addr ~readers =
  Hashtbl.replace t.payloads addr (ref readers)

let note_payload_release t ~addr =
  match Hashtbl.find_opt t.payloads addr with
  | None -> violate t "payload at addr %d released but never registered" addr
  | Some r ->
    decr r;
    if !r <= 0 then Hashtbl.remove t.payloads addr

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

type report = {
  tuples : int;
  events : int;
  consumed : int;
  crashes : int;
  leader_crashes : int;
  promotions : int;
  quarantines : int;
  respawns : int;
  rejoins : int;
  checkpoints : int;
  restores : int;
  gate_waits : int;
  gate_waits_on_quarantined : int;
  outstanding_payloads : int;
  digests : (int * int * int) list;
  violations : string list;
}

let report t =
  let outstanding = Hashtbl.length t.payloads in
  let finals = ref [] in
  if outstanding > 0 then
    finals :=
      Printf.sprintf
        "%d shared-memory payload(s) still registered at end of run"
        outstanding
      :: !finals;
  if t.nviolations > violation_cap then
    finals :=
      Printf.sprintf "(%d further violations suppressed)"
        (t.nviolations - violation_cap)
      :: !finals;
  let digests =
    Hashtbl.fold (fun tu ts acc -> (tu, ts.nevents, ts.digest) :: acc) t.tuples []
    |> List.sort compare
  in
  let events = List.fold_left (fun acc (_, n, _) -> acc + n) 0 digests in
  {
    tuples = Hashtbl.length t.tuples;
    events;
    consumed = t.consumed;
    crashes = t.crashes;
    leader_crashes = t.leader_crashes;
    promotions = t.promotions;
    quarantines = t.quarantines;
    respawns = t.respawns;
    rejoins = t.rejoins;
    checkpoints = t.checkpoints;
    restores = t.restores;
    gate_waits = t.gate_waits;
    gate_waits_on_quarantined = t.gate_waits_on_quarantined;
    outstanding_payloads = outstanding;
    digests;
    violations = List.rev t.violations @ List.rev !finals;
  }

let ok r = r.violations = []

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>oracle: %d tuple(s), %d event(s) published, %d consumed@,\
     crashes=%d (leader=%d) promotions=%d outstanding_payloads=%d@,"
    r.tuples r.events r.consumed r.crashes r.leader_crashes r.promotions
    r.outstanding_payloads;
  if r.quarantines > 0 || r.respawns > 0 || r.gate_waits > 0 then
    Format.fprintf ppf
      "lifecycle: quarantines=%d respawns=%d rejoins=%d gate_waits=%d \
       (on quarantined: %d)@,"
      r.quarantines r.respawns r.rejoins r.gate_waits
      r.gate_waits_on_quarantined;
  if r.checkpoints > 0 || r.restores > 0 then
    Format.fprintf ppf "checkpoints: taken=%d restores=%d@," r.checkpoints
      r.restores;
  List.iter
    (fun (tu, n, d) ->
      Format.fprintf ppf "tuple %d: %d events, digest %08x@," tu n
        (d land 0xffffffff))
    r.digests;
  (match r.violations with
  | [] -> Format.fprintf ppf "invariants: all hold"
  | vs ->
    Format.fprintf ppf "VIOLATIONS:@,";
    List.iter (fun v -> Format.fprintf ppf "  - %s@," v) vs);
  Format.fprintf ppf "@]"

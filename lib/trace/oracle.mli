(** Trace-invariant oracle for the NVX event stream.

    The oracle taps each tuple's ring buffer and folds the paper's
    invariants over every published and consumed event:

    - Lamport clocks are monotone per tuple and consistent with stream
      order — event at sequence [s] carries stamp [s + 1], which also
      proves no event is lost or duplicated across a leader promotion
      (§3.3.2, §5.1);
    - every consumer (follower, pump, recorder) observes exactly the
      prefix the leader published — physically the same events, in
      order, with no gap in its consumed sequence numbers;
    - shared-memory payload register/release refcounts balance: when the
      run finishes no payload chunk is still held;
    - failover promotes each variant at most once, only after a leader
      crash (§5.1);
    - fork rendezvous creates exactly one fresh ring per process tuple,
      and no two [Ev_fork] events claim the same tuple (§3.3.3).

    Violations accumulate into the {!report}; a clean report has none.
    The oracle also folds a structural digest per tuple stream, used to
    compare a recorded run against its replay. *)

type t

val create : unit -> t

val attach_ring :
  t -> tuple:int -> Varan_ringbuf.Event.t Varan_ringbuf.Ring.t -> unit
(** Install the oracle's tap on a tuple's ring and register the tuple.
    Call before any event is published on it. The session does this for
    every ring it creates; call it directly to check a standalone ring
    (e.g. the replay ring of {!Varan_nvx.Record_replay}). *)

(** {1 Session notes} — bookkeeping the ring cannot see. *)

val note_crash : t -> idx:int -> was_leader:bool -> unit
val note_promotion : t -> idx:int -> unit
val note_payload_register : t -> addr:int -> readers:int -> unit
val note_payload_release : t -> addr:int -> unit

(** {2 Lifecycle notes}

    The follower lifecycle manager reports quarantines, respawns and
    rejoins; with them the oracle enforces three more invariants — the
    leader's gate never waits on a quarantined consumer again, a
    rejoined consumer's first live read lands at exactly its splice
    sequence, and no variant respawns beyond its restart budget. *)

val note_quarantine : t -> idx:int -> tuple:int -> cid:int -> unit
(** Consumer [cid] of tuple [tuple] was removed by a quarantine (called
    once per subscribed tuple, before the unsubscribe). *)

val note_respawn : t -> idx:int -> max_restarts:int -> unit
(** Variant [idx] is being respawned; more than [max_restarts] respawns
    of one variant is a violation. *)

val note_rejoin : t -> idx:int -> tuple:int -> cid:int -> splice_seq:int -> unit
(** The respawned variant resubscribed to [tuple] as consumer [cid];
    its first live read must land at exactly [splice_seq]. *)

val note_gate_wait : t -> tuple:int -> cids:int list -> unit
(** The leader parked on [tuple]'s gate while [cids] held it (wired to
    {!Varan_ringbuf.Ring.set_stall_hook}); any quarantined cid among
    them is a violation. *)

val note_checkpoint : t -> idx:int -> seq:int -> unit
(** Variant [idx] checkpointed at tuple-0 stream position [seq].
    Checkpoint positions must be monotone per variant. *)

val note_restore : t -> idx:int -> seq:int -> splice_seq:int -> unit
(** A respawn of variant [idx] restored the checkpoint at [seq] and will
    replay the tape delta up to [splice_seq]. Restoring a position the
    variant never checkpointed, or one past the splice point (events
    would be skipped), is a violation. Together with the splice check in
    [note_rejoin] this pins the rejoined stream to the exact
    checkpoint-then-delta window — which is why a checkpointed rejoin
    digest-matches a full replay. *)

(** {1 Report} *)

type report = {
  tuples : int;
  events : int;  (** events published across all tuples *)
  consumed : int;  (** consumption acts across all consumers *)
  crashes : int;
  leader_crashes : int;
  promotions : int;
  quarantines : int;  (** (tuple, cid) pairs retired by quarantines *)
  respawns : int;
  rejoins : int;  (** splice expectations registered *)
  checkpoints : int;
  restores : int;  (** checkpoint-based (fast) rejoins *)
  gate_waits : int;  (** leader publishes that parked on the gate *)
  gate_waits_on_quarantined : int;  (** nonzero is always a violation *)
  outstanding_payloads : int;  (** payload chunks never fully released *)
  digests : (int * int * int) list;
      (** per tuple: (tuple, events published, structural stream digest
          over kind/sysno/tid/args/ret/clock/result bytes — stable across
          record and replay) *)
  violations : string list;  (** oldest first; empty means clean *)
}

val report : t -> report
(** Fold the end-of-run checks and return the verdict. Pure: callable
    repeatedly (e.g. mid-run for a partial view). *)

val ok : report -> bool
val pp_report : Format.formatter -> report -> unit

(* Growable float array. The load generators record one latency sample
   per request; at millions of requests a [float list] costs a cons cell
   and a boxed float per sample and arrives reversed. This buffer keeps
   samples in arrival order in an unboxed [float array] that doubles on
   demand. *)

type t = { mutable a : float array; mutable len : int }

let create ?(capacity = 1024) () = { a = Array.make (max 1 capacity) 0.0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let clear t = t.len <- 0

let push t x =
  if t.len = Array.length t.a then begin
    let bigger = Array.make (2 * Array.length t.a) 0.0 in
    Array.blit t.a 0 bigger 0 t.len;
    t.a <- bigger
  end;
  t.a.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Floatbuf.get";
  t.a.(i)

let to_array t = Array.sub t.a 0 t.len

let to_list t = Array.to_list (to_array t)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.a.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.a.(i)
  done;
  !acc

let summary t = if t.len = 0 then None else Some (Stats.summarize_array (to_array t))

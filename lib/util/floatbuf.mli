(** Growable unboxed float array, in push order.

    Replaces the reversed [float list] the closed-loop client generator
    used to accumulate latencies — at million-request scale a list costs
    a cons cell plus a boxed float per sample; this doubles a flat
    [float array] instead and keeps samples oldest-first. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty buffer; [capacity] is the initial allocation (default
    1024 samples). *)

val length : t -> int
val is_empty : t -> bool

val clear : t -> unit
(** Forget all samples (keeps the allocation). *)

val push : t -> float -> unit
(** Append one sample; amortised O(1). *)

val get : t -> int -> float
(** [get t i] is the [i]th sample in push order. Raises [Invalid_argument]
    out of bounds. *)

val to_array : t -> float array
(** Fresh array of the samples, oldest first. *)

val to_list : t -> float list
(** Samples oldest first (allocates; prefer {!to_array} for large runs). *)

val iter : (float -> unit) -> t -> unit
val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

val summary : t -> Stats.summary option
(** Summary statistics over the samples, [None] when empty. *)

let mean xs =
  assert (xs <> []);
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let sorted xs = List.sort compare xs

let median_sorted a =
  let n = Array.length a in
  assert (n > 0);
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let median xs = median_sorted (Array.of_list (sorted xs))

let percentile_sorted p a =
  let n = Array.length a in
  assert (n > 0);
  if p <= 0.0 then a.(0)
  else if p >= 100.0 then a.(n - 1)
  else begin
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))
  end

let percentile p xs = percentile_sorted p (Array.of_list (sorted xs))

let stddev xs =
  let m = mean xs in
  let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
  sqrt (sq /. float_of_int (List.length xs))

let min_max xs =
  assert (xs <> []);
  let f (lo, hi) x = (Stdlib.min lo x, Stdlib.max hi x) in
  match xs with
  | [] -> assert false
  | x :: rest -> List.fold_left f (x, x) rest

type summary = {
  n : int;
  mean : float;
  median : float;
  stddev : float;
  min : float;
  max : float;
  p95 : float;
  p99 : float;
  p999 : float;
}

(* Shared by the list and array entry points; [a] is sorted ascending. *)
let summarize_sorted a =
  let n = Array.length a in
  assert (n > 0);
  let mean = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
  let sq =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0.0 a
  in
  {
    n;
    mean;
    median = median_sorted a;
    stddev = sqrt (sq /. float_of_int n);
    min = a.(0);
    max = a.(n - 1);
    p95 = percentile_sorted 95.0 a;
    p99 = percentile_sorted 99.0 a;
    p999 = percentile_sorted 99.9 a;
  }

let summarize xs =
  assert (xs <> []);
  summarize_sorted (Array.of_list (sorted xs))

let summarize_array a =
  let a = Array.copy a in
  Array.sort compare a;
  summarize_sorted a

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.2f median=%.2f stddev=%.2f min=%.2f max=%.2f p95=%.2f \
     p99=%.2f p999=%.2f"
    s.n s.mean s.median s.stddev s.min s.max s.p95 s.p99 s.p999

let summary_to_string s = Format.asprintf "%a" pp_summary s

(* ------------------------------------------------------------------ *)
(* Named monotonic counters                                            *)
(* ------------------------------------------------------------------ *)

type counter = { c_name : string; mutable c_value : int }

let registry : (string, counter) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt registry name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.replace registry name c;
    c

let scoped_name ?scope name =
  match scope with None -> name | Some s -> s ^ "." ^ name

let scoped_counter ?scope name = counter (scoped_name ?scope name)
let incr_counter c = c.c_value <- c.c_value + 1
let add_counter c n = c.c_value <- c.c_value + n
let counter_value c = c.c_value
let counter_name c = c.c_name

let counters () =
  Hashtbl.fold (fun name c acc -> (name, c.c_value) :: acc) registry []
  |> List.sort compare

let reset_counters () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) registry

(* ------------------------------------------------------------------ *)
(* Log-bucketed histograms                                             *)
(* ------------------------------------------------------------------ *)

(* HDR-style fixed-size histogram: 64 buckets, three per octave (~26%
   relative resolution), covering [1, 2^21) with an underflow bucket at
   0 and a clamp at the top. A sample is one float compare, one [frexp]
   and two stores — constant memory no matter how many samples arrive,
   which is the point: the unbounded-sample paths (open-loop latency
   recording at millions of requests) can keep percentile estimates
   without keeping the samples. *)

let hist_buckets = 64

type hist = {
  h_name : string;
  h_b : int array; (* hist_buckets *)
  mutable h_n : int;
  mutable h_sum : float;
  mutable h_sumsq : float;
  mutable h_min : float;
  mutable h_max : float;
}

let make_hist name =
  {
    h_name = name;
    h_b = Array.make hist_buckets 0;
    h_n = 0;
    h_sum = 0.0;
    h_sumsq = 0.0;
    h_min = infinity;
    h_max = neg_infinity;
  }

let hist_registry : (string, hist) Hashtbl.t = Hashtbl.create 16

let hist ?scope name =
  let name = scoped_name ?scope name in
  match Hashtbl.find_opt hist_registry name with
  | Some h -> h
  | None ->
    let h = make_hist name in
    Hashtbl.replace hist_registry name h;
    h

(* Bucket 0 holds [0, 1); bucket 1 + 3*o + s holds
   [2^o * (1 + s/3), 2^o * (1 + (s+1)/3)) for s in 0..2. *)
let bucket_of_value v =
  if not (v >= 1.0) then 0
  else begin
    let m, ex = Float.frexp v in
    (* v = m * 2^ex with m in [0.5, 1), so the octave is ex - 1 and the
       in-octave fraction is 2m - 1 in [0, 1). *)
    let octave = ex - 1 in
    let sub = int_of_float ((2.0 *. m -. 1.0) *. 3.0) in
    let idx = 1 + (3 * octave) + Stdlib.min 2 sub in
    Stdlib.min (hist_buckets - 1) idx
  end

let bucket_bounds idx =
  if idx <= 0 then (0.0, 1.0)
  else begin
    let octave = (idx - 1) / 3 and sub = (idx - 1) mod 3 in
    let base = Float.ldexp 1.0 octave in
    ( base *. (1.0 +. (float_of_int sub /. 3.0)),
      base *. (1.0 +. (float_of_int (sub + 1) /. 3.0)) )
  end

let hist_record h v =
  let v = if v < 0.0 then 0.0 else v in
  h.h_b.(bucket_of_value v) <- h.h_b.(bucket_of_value v) + 1;
  h.h_n <- h.h_n + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_sumsq <- h.h_sumsq +. (v *. v);
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let hist_count h = h.h_n
let hist_name h = h.h_name

let hist_clear h =
  Array.fill h.h_b 0 hist_buckets 0;
  h.h_n <- 0;
  h.h_sum <- 0.0;
  h.h_sumsq <- 0.0;
  h.h_min <- infinity;
  h.h_max <- neg_infinity

(* Percentile estimate: same rank convention as [percentile_sorted]
   (rank = ceil(p/100 * n)), resolved to the midpoint of the bucket the
   rank falls in, clamped into the observed [min, max]. *)
let hist_percentile h p =
  if h.h_n = 0 then 0.0
  else if p <= 0.0 then h.h_min
  else if p >= 100.0 then h.h_max
  else begin
    let rank =
      Stdlib.max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int h.h_n)))
    in
    let acc = ref 0 and idx = ref (hist_buckets - 1) and found = ref false in
    (try
       for i = 0 to hist_buckets - 1 do
         acc := !acc + h.h_b.(i);
         if (not !found) && !acc >= rank then begin
           idx := i;
           found := true;
           raise Exit
         end
       done
     with Exit -> ());
    let lo, hi = bucket_bounds !idx in
    let mid = (lo +. hi) /. 2.0 in
    Stdlib.min h.h_max (Stdlib.max h.h_min mid)
  end

let hist_summary h =
  if h.h_n = 0 then None
  else
    let n = float_of_int h.h_n in
    let mean = h.h_sum /. n in
    let var = Stdlib.max 0.0 ((h.h_sumsq /. n) -. (mean *. mean)) in
    Some
      {
        n = h.h_n;
        mean;
        median = hist_percentile h 50.0;
        stddev = sqrt var;
        min = h.h_min;
        max = h.h_max;
        p95 = hist_percentile h 95.0;
        p99 = hist_percentile h 99.0;
        p999 = hist_percentile h 99.9;
      }

let hists () =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) hist_registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ------------------------------------------------------------------ *)
(* Registry hygiene and export                                         *)
(* ------------------------------------------------------------------ *)

(* [reset_counters] zeroes values but leaves the entries registered; a
   harness that launches hundreds of scoped sessions per process needs
   to actually drop the dead scopes or every dump grows monotonically
   and shows shards that no longer exist. *)
let remove_scope scope =
  let prefix = scope ^ "." in
  let plen = String.length prefix in
  let matching tbl =
    Hashtbl.fold
      (fun name _ acc ->
        if String.length name >= plen && String.sub name 0 plen = prefix then
          name :: acc
        else acc)
      tbl []
  in
  List.iter (Hashtbl.remove registry) (matching registry);
  List.iter (Hashtbl.remove hist_registry) (matching hist_registry)

let clear_registry () =
  Hashtbl.reset registry;
  Hashtbl.reset hist_registry

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%g" f

(* Machine-readable export of the whole registry: every counter and
   every registered histogram (with its non-empty buckets), as one JSON
   object. *)
let dump_json () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"counters\": {\n";
  let cs = counters () in
  let n = List.length cs in
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string b
        (Printf.sprintf "    \"%s\": %d%s\n" (json_escape name) v
           (if i = n - 1 then "" else ",")))
    cs;
  Buffer.add_string b "  },\n  \"histograms\": {\n";
  let hs = hists () in
  let n = List.length hs in
  List.iteri
    (fun i (name, h) ->
      Buffer.add_string b (Printf.sprintf "    \"%s\": {" (json_escape name));
      if h.h_n = 0 then Buffer.add_string b "\"count\": 0"
      else begin
        Buffer.add_string b
          (Printf.sprintf
             "\"count\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, \"p50\": \
              %s, \"p95\": %s, \"p99\": %s, \"p999\": %s, \"buckets\": ["
             h.h_n (json_float h.h_sum) (json_float h.h_min)
             (json_float h.h_max)
             (json_float (hist_percentile h 50.0))
             (json_float (hist_percentile h 95.0))
             (json_float (hist_percentile h 99.0))
             (json_float (hist_percentile h 99.9)));
        let first = ref true in
        Array.iteri
          (fun idx c ->
            if c > 0 then begin
              if !first then first := false else Buffer.add_string b ", ";
              Buffer.add_string b (Printf.sprintf "[%d, %d]" idx c)
            end)
          h.h_b;
        Buffer.add_string b "]"
      end;
      Buffer.add_string b
        (Printf.sprintf "}%s\n" (if i = n - 1 then "" else ",")))
    hs;
  Buffer.add_string b "  }\n}\n";
  Buffer.contents b

let dump_json_to path =
  let oc = open_out path in
  output_string oc (dump_json ());
  close_out oc

let mean xs =
  assert (xs <> []);
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let sorted xs = List.sort compare xs

let median_sorted a =
  let n = Array.length a in
  assert (n > 0);
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let median xs = median_sorted (Array.of_list (sorted xs))

let percentile_sorted p a =
  let n = Array.length a in
  assert (n > 0);
  if p <= 0.0 then a.(0)
  else if p >= 100.0 then a.(n - 1)
  else begin
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))
  end

let percentile p xs = percentile_sorted p (Array.of_list (sorted xs))

let stddev xs =
  let m = mean xs in
  let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
  sqrt (sq /. float_of_int (List.length xs))

let min_max xs =
  assert (xs <> []);
  let f (lo, hi) x = (Stdlib.min lo x, Stdlib.max hi x) in
  match xs with
  | [] -> assert false
  | x :: rest -> List.fold_left f (x, x) rest

type summary = {
  n : int;
  mean : float;
  median : float;
  stddev : float;
  min : float;
  max : float;
  p95 : float;
  p99 : float;
  p999 : float;
}

(* Shared by the list and array entry points; [a] is sorted ascending. *)
let summarize_sorted a =
  let n = Array.length a in
  assert (n > 0);
  let mean = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
  let sq =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0.0 a
  in
  {
    n;
    mean;
    median = median_sorted a;
    stddev = sqrt (sq /. float_of_int n);
    min = a.(0);
    max = a.(n - 1);
    p95 = percentile_sorted 95.0 a;
    p99 = percentile_sorted 99.0 a;
    p999 = percentile_sorted 99.9 a;
  }

let summarize xs =
  assert (xs <> []);
  summarize_sorted (Array.of_list (sorted xs))

let summarize_array a =
  let a = Array.copy a in
  Array.sort compare a;
  summarize_sorted a

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.2f median=%.2f stddev=%.2f min=%.2f max=%.2f p95=%.2f \
     p99=%.2f p999=%.2f"
    s.n s.mean s.median s.stddev s.min s.max s.p95 s.p99 s.p999

let summary_to_string s = Format.asprintf "%a" pp_summary s

(* ------------------------------------------------------------------ *)
(* Named monotonic counters                                            *)
(* ------------------------------------------------------------------ *)

type counter = { c_name : string; mutable c_value : int }

let registry : (string, counter) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt registry name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.replace registry name c;
    c

let scoped_name ?scope name =
  match scope with None -> name | Some s -> s ^ "." ^ name

let scoped_counter ?scope name = counter (scoped_name ?scope name)
let incr_counter c = c.c_value <- c.c_value + 1
let add_counter c n = c.c_value <- c.c_value + n
let counter_value c = c.c_value
let counter_name c = c.c_name

let counters () =
  Hashtbl.fold (fun name c acc -> (name, c.c_value) :: acc) registry []
  |> List.sort compare

let reset_counters () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) registry

(** Small statistics helpers used by the benchmark harness and the load
    generators: summary statistics over float samples. *)

val mean : float list -> float
(** Arithmetic mean. Requires a non-empty list. *)

val median : float list -> float
(** Median (average of the two middle elements for even lengths).
    Requires a non-empty list. *)

val percentile : float -> float list -> float
(** [percentile p samples] with [p] in [\[0,100\]], nearest-rank method.
    Requires a non-empty list. *)

val stddev : float list -> float
(** Population standard deviation. Requires a non-empty list. *)

val min_max : float list -> float * float
(** Smallest and largest sample. Requires a non-empty list. *)

type summary = {
  n : int;
  mean : float;
  median : float;
  stddev : float;
  min : float;
  max : float;
  p95 : float;
  p99 : float;
  p999 : float;
}
(** One-shot summary of a sample set. [p999] is the 99.9th percentile —
    for open-loop serving runs the tail beyond p99 is the whole point. *)

val summarize : float list -> summary
(** Compute all summary fields in one pass over a sorted copy.
    Requires a non-empty list. *)

val summarize_array : float array -> summary
(** Same over an array (sorts a copy; input untouched). Requires a
    non-empty array. Preferred at million-sample scale — no cons cells. *)

val pp_summary : Format.formatter -> summary -> unit

val summary_to_string : summary -> string

(** {1 Named monotonic counters}

    A tiny process-wide counter registry used for cross-cutting event
    tallies (the follower-lifecycle transition counters are the first
    client). Counters are created on first use and survive across
    sessions in the same process; {!reset_counters} zeroes them (a sweep
    harness resets between seeds when it wants per-seed totals). *)

type counter

val counter : string -> counter
(** Find or create the counter with this name. *)

val scoped_name : ?scope:string -> string -> string
(** [scoped_name ~scope:"shard0" "lifecycle.respawns"] is
    ["shard0.lifecycle.respawns"]; without a scope the name is returned
    unchanged. Shards use this to keep their counters apart in the
    process-wide registry. *)

val scoped_counter : ?scope:string -> string -> counter
(** [counter (scoped_name ?scope name)]. *)

val incr_counter : counter -> unit
val add_counter : counter -> int -> unit
val counter_value : counter -> int
val counter_name : counter -> string

val counters : unit -> (string * int) list
(** Every registered counter with its current value, sorted by name. *)

val reset_counters : unit -> unit
(** Zero every registered counter (registrations persist). *)

(** {1 Log-bucketed histograms}

    Fixed-size (64-bucket) HDR-style histograms: three buckets per
    power-of-two octave (~26% relative resolution), an underflow bucket
    for values below 1 and a clamp above [2{^21}]. Recording is O(1)
    and allocation-free; memory is constant regardless of sample count,
    so unbounded sample streams (per-request latencies over millions of
    requests) can keep percentile estimates without keeping samples. *)

type hist
(** A histogram instance. *)

val hist_buckets : int
(** Number of buckets (64). *)

val make_hist : string -> hist
(** A fresh, unregistered histogram. *)

val hist : ?scope:string -> string -> hist
(** Find or create the registered histogram named
    [scoped_name ?scope name] in the process-wide registry (the
    histogram analogue of {!scoped_counter}). *)

val hist_record : hist -> float -> unit
(** Record one sample (negatives clamp to 0). *)

val hist_count : hist -> int
val hist_name : hist -> string

val hist_clear : hist -> unit
(** Zero all buckets and moments (the registration persists). *)

val hist_percentile : hist -> float -> float
(** [hist_percentile h p] estimates the [p]-th percentile ([p] in
    [\[0,100\]]) as the midpoint of the bucket the nearest-rank falls
    in, clamped to the observed min/max. 0 on an empty histogram. *)

val hist_summary : hist -> summary option
(** Summary from the histogram's exact moments (n, mean, stddev, min,
    max) and bucket-estimated percentiles; [None] when empty. *)

val bucket_of_value : float -> int
(** Bucket index a value lands in (exposed for tests). *)

val bucket_bounds : int -> float * float
(** [lo, hi) bounds of a bucket (exposed for tests). *)

val hists : unit -> (string * hist) list
(** Every registered histogram, sorted by name. *)

(** {1 Registry hygiene and export} *)

val remove_scope : string -> unit
(** Remove every counter and histogram whose name starts with
    [scope ^ "."] from the registries. Unlike {!reset_counters} this
    drops the registrations: a harness that launches hundreds of scoped
    sessions per process calls this between cases so dead scopes do not
    accumulate. *)

val clear_registry : unit -> unit
(** Drop every counter and histogram registration. *)

val dump_json : unit -> string
(** The whole registry — every counter and every histogram (count,
    moments, percentile estimates, non-empty buckets as
    [\[index, count\]] pairs) — as one JSON object. *)

val dump_json_to : string -> unit
(** Write {!dump_json} to a file. *)

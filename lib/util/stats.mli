(** Small statistics helpers used by the benchmark harness and the load
    generators: summary statistics over float samples. *)

val mean : float list -> float
(** Arithmetic mean. Requires a non-empty list. *)

val median : float list -> float
(** Median (average of the two middle elements for even lengths).
    Requires a non-empty list. *)

val percentile : float -> float list -> float
(** [percentile p samples] with [p] in [\[0,100\]], nearest-rank method.
    Requires a non-empty list. *)

val stddev : float list -> float
(** Population standard deviation. Requires a non-empty list. *)

val min_max : float list -> float * float
(** Smallest and largest sample. Requires a non-empty list. *)

type summary = {
  n : int;
  mean : float;
  median : float;
  stddev : float;
  min : float;
  max : float;
  p95 : float;
  p99 : float;
  p999 : float;
}
(** One-shot summary of a sample set. [p999] is the 99.9th percentile —
    for open-loop serving runs the tail beyond p99 is the whole point. *)

val summarize : float list -> summary
(** Compute all summary fields in one pass over a sorted copy.
    Requires a non-empty list. *)

val summarize_array : float array -> summary
(** Same over an array (sorts a copy; input untouched). Requires a
    non-empty array. Preferred at million-sample scale — no cons cells. *)

val pp_summary : Format.formatter -> summary -> unit

val summary_to_string : summary -> string

(** {1 Named monotonic counters}

    A tiny process-wide counter registry used for cross-cutting event
    tallies (the follower-lifecycle transition counters are the first
    client). Counters are created on first use and survive across
    sessions in the same process; {!reset_counters} zeroes them (a sweep
    harness resets between seeds when it wants per-seed totals). *)

type counter

val counter : string -> counter
(** Find or create the counter with this name. *)

val scoped_name : ?scope:string -> string -> string
(** [scoped_name ~scope:"shard0" "lifecycle.respawns"] is
    ["shard0.lifecycle.respawns"]; without a scope the name is returned
    unchanged. Shards use this to keep their counters apart in the
    process-wide registry. *)

val scoped_counter : ?scope:string -> string -> counter
(** [counter (scoped_name ?scope name)]. *)

val incr_counter : counter -> unit
val add_counter : counter -> int -> unit
val counter_value : counter -> int
val counter_name : counter -> string

val counters : unit -> (string * int) list
(** Every registered counter with its current value, sorted by name. *)

val reset_counters : unit -> unit
(** Zero every registered counter (registrations persist). *)

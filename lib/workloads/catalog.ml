module Variant = Varan_nvx.Variant
module Vfs = Varan_kernel.Vfs
module Api = Varan_kernel.Api
module Prng = Varan_util.Prng

let page_4k = String.make 4096 'p'

(* Every workload gets /var for logs; web servers also get the document. *)
let add_var k = Vfs.add_file k "/var/.keep" ""

let add_doc k =
  add_var k;
  Vfs.add_file k "/www/index.html" page_4k

(* --- Beanstalkd ------------------------------------------------------ *)

let beanstalkd =
  let payload = Bytes.make 256 'j' in
  {
    Workload.w_name = "Beanstalkd";
    units = 1;
    unit_kind = Variant.Thread;
    make_body =
      (fun () ->
        Queue_server.make_body
          {
            Queue_server.port = 11300;
            binlog_path = Some "/var/beanstalkd.binlog";
            work_cycles = 1_000;
            expected_conns = 10;
          }
          ());
    profile = { Variant.code_bytes = 20_000; syscall_share = 0.035; code_seed = 11 };
    mem_intensity_c1000 = 30;
    port_base = 11300;
    load =
      {
        Clients.connections = 10;
        requests_per_conn = 150;
        request_of = (fun ~conn:_ ~seq:_ -> Queue_server.put_cmd payload);
        think_cycles = 500;
        warmup_requests = 10;
      };
    setup_fs = add_var;
    rules = None;
  }

(* --- Lighttpd (wrk) --------------------------------------------------- *)

let lighttpd_cfg expected_conns =
  {
    Http_server.port = 8080;
    units = 1;
    style = Http_server.Event_loop;
    doc_path = "/www/index.html";
    parse_cycles = 29_000;
    access_log = Some "/var/lighttpd.access.log";
    expected_conns;
  }

let lighttpd_wrk =
  {
    Workload.w_name = "Lighttpd (wrk)";
    units = 1;
    unit_kind = Variant.Thread;
    make_body = (fun () -> Http_server.make_body (lighttpd_cfg 10) ());
    profile = { Variant.code_bytes = 38_000; syscall_share = 0.008; code_seed = 12 };
    mem_intensity_c1000 = 25;
    port_base = 8080;
    load =
      {
        Clients.connections = 10;
        requests_per_conn = 100;
        request_of = (fun ~conn:_ ~seq:_ -> Http_server.request "/www/index.html");
        think_cycles = 500;
        warmup_requests = 10;
      };
    setup_fs = add_doc;
    rules = None;
  }

(* --- Memcached --------------------------------------------------------- *)

let memcached =
  let value = Bytes.make 1024 'v' in
  {
    Workload.w_name = "Memcached";
    units = 4;
    unit_kind = Variant.Thread;
    make_body =
      (fun () ->
        Cache_server.make_body
          {
            Cache_server.port = 11211;
            units = 4;
            work_cycles = 9_000;
            expected_conns = 16;
          }
          ());
    profile = { Variant.code_bytes = 10_000; syscall_share = 0.01; code_seed = 13 };
    mem_intensity_c1000 = 70;
    port_base = 11211;
    load =
      {
        Clients.connections = 16;
        requests_per_conn = 100;
        request_of =
          (fun ~conn ~seq ->
            let key = Printf.sprintf "key-%d-%d" conn (seq mod 50) in
            if seq mod 10 = 0 then Cache_server.set_cmd key value
            else Cache_server.get_cmd key);
        think_cycles = 500;
        warmup_requests = 10;
      };
    setup_fs = (fun _ -> ());
    rules = None;
  }

(* --- Nginx -------------------------------------------------------------- *)

let nginx =
  let cfg =
    {
      Http_server.port = 8090;
      units = 4;
      style = Http_server.Event_loop;
      doc_path = "/www/index.html";
      parse_cycles = 9_000;
      access_log = Some "/var/nginx.access.log";
      expected_conns = 12;
    }
  in
  {
    Workload.w_name = "Nginx";
    units = 4;
    unit_kind = Variant.Process;
    make_body = (fun () -> Http_server.make_body cfg ());
    profile = { Variant.code_bytes = 100_000; syscall_share = 0.008; code_seed = 14 };
    mem_intensity_c1000 = 120;
    port_base = 8090;
    load =
      {
        Clients.connections = 12;
        requests_per_conn = 80;
        request_of = (fun ~conn:_ ~seq:_ -> Http_server.request "/www/index.html");
        think_cycles = 500;
        warmup_requests = 10;
      };
    setup_fs = add_doc;
    rules = None;
  }

(* --- Redis --------------------------------------------------------------- *)

let redis_value = String.make 64 'r'

let redis_request ~conn ~seq =
  let key = Printf.sprintf "k%d" (seq mod 40) in
  match (seq + conn) mod 10 with
  | 0 | 1 -> Kv_server.cmd (Printf.sprintf "SET %s %s" key redis_value)
  | 2 -> Kv_server.cmd (Printf.sprintf "INCR counter%d" conn)
  | 3 -> Kv_server.cmd "PING"
  | _ -> Kv_server.cmd (Printf.sprintf "GET %s" key)

let redis =
  {
    Workload.w_name = "Redis";
    units = 2;
    unit_kind = Variant.Thread;
    make_body =
      (fun () ->
        Kv_server.make_body
          {
            Kv_server.port = 6379;
            units = 2;
            aof_path = None;
            work_cycles = 28_000;
            expected_conns = 10;
            crash_on_hmget = false;
          }
          ());
    profile = { Variant.code_bytes = 35_000; syscall_share = 0.008; code_seed = 15 };
    mem_intensity_c1000 = 50;
    port_base = 6379;
    load =
      {
        Clients.connections = 10;
        requests_per_conn = 100;
        request_of = redis_request;
        think_cycles = 500;
        warmup_requests = 10;
      };
    setup_fs = (fun _ -> ());
    rules = None;
  }

(* --- Prior-work servers (Table 2 / Figure 6) ------------------------------ *)

let apache_httpd =
  let cfg =
    {
      Http_server.port = 8100;
      units = 4;
      style = Http_server.Prefork;
      doc_path = "/www/index.html";
      parse_cycles = 60_000;
      access_log = Some "/var/apache.access.log";
      expected_conns = 4;
    }
  in
  {
    Workload.w_name = "Apache httpd";
    units = 4;
    unit_kind = Variant.Process;
    make_body = (fun () -> Http_server.make_body cfg ());
    profile = { Variant.code_bytes = 90_000; syscall_share = 0.006; code_seed = 16 };
    mem_intensity_c1000 = 40;
    port_base = 8100;
    load =
      {
        Clients.connections = 4;
        requests_per_conn = 80;
        request_of = (fun ~conn:_ ~seq:_ -> Http_server.request "/www/index.html");
        think_cycles = 120_000;
        warmup_requests = 10;
      };
    setup_fs = add_doc;
    rules = None;
  }

let thttpd =
  let cfg =
    {
      Http_server.port = 8110;
      units = 1;
      style = Http_server.Prefork;
      doc_path = "/www/index.html";
      parse_cycles = 25_000;
      access_log = None;
      expected_conns = 4;
    }
  in
  {
    Workload.w_name = "thttpd";
    units = 1;
    unit_kind = Variant.Thread;
    make_body = (fun () -> Http_server.make_body cfg ());
    profile = { Variant.code_bytes = 8_000; syscall_share = 0.006; code_seed = 17 };
    mem_intensity_c1000 = 30;
    port_base = 8110;
    load =
      {
        Clients.connections = 4;
        requests_per_conn = 80;
        request_of = (fun ~conn:_ ~seq:_ -> Http_server.request "/www/index.html");
        think_cycles = 120_000;
        warmup_requests = 10;
      };
    setup_fs = add_doc;
    rules = None;
  }

let lighttpd_http_load =
  {
    lighttpd_wrk with
    Workload.w_name = "Lighttpd (http_load)";
    (* http_load runs fewer, longer-lived connections at a lower request
       rate; the client-side pacing hides more of the overhead. *)
    load =
      {
        Clients.connections = 6;
        requests_per_conn = 100;
        request_of = (fun ~conn:_ ~seq:_ -> Http_server.request "/www/index.html");
        think_cycles = 220_000;
        warmup_requests = 10;
      };
  }

let lighttpd_ab =
  {
    lighttpd_wrk with
    Workload.w_name = "Lighttpd (ab)";
    load =
      {
        Clients.connections = 4;
        requests_per_conn = 100;
        request_of = (fun ~conn:_ ~seq:_ -> Http_server.request "/www/index.html");
        think_cycles = 160_000;
        warmup_requests = 10;
      };
  }

(* --- Thread-scale grids (scheduler + per-tid lane stress) --------------- *)

(* A server-less workload: [threads] sibling threads hammer a small set
   of contended futex words. The acquisition index {!Api.futex_lock}
   returns is the leader's global lock order — exactly the event stream
   the per-tid lanes must replay in order while everything else runs
   concurrently. No client load; the run is done when every thread has
   finished its rounds. *)
let thread_grid ~name ~threads ~locks ~rounds ~code_seed =
  {
    Workload.w_name = name;
    units = threads;
    unit_kind = Variant.Thread;
    make_body =
      (fun () ~unit_idx api ->
        for r = 0 to rounds - 1 do
          let word = 0x1000 + ((unit_idx + r) mod locks) in
          let _acq = Api.futex_lock api word in
          Api.compute api 200;
          ignore (Api.futex_unlock api word);
          Api.compute api 100
        done);
    profile = { Variant.code_bytes = 6_000; syscall_share = 0.05; code_seed };
    mem_intensity_c1000 = 10;
    port_base = 0;
    load =
      {
        Clients.connections = 0;
        requests_per_conn = 0;
        request_of = (fun ~conn:_ ~seq:_ -> Bytes.empty);
        think_cycles = 0;
        warmup_requests = 0;
      };
    setup_fs = (fun _ -> ());
    rules = None;
  }

let thread_grid_64 =
  thread_grid ~name:"Thread grid (64)" ~threads:64 ~locks:8 ~rounds:24
    ~code_seed:18

let thread_grid_256 =
  thread_grid ~name:"Thread grid (256)" ~threads:256 ~locks:16 ~rounds:8
    ~code_seed:19

let thread_grids = [ thread_grid_64; thread_grid_256 ]

let c10k_servers = [ beanstalkd; lighttpd_wrk; memcached; nginx; redis ]

let prior_work_servers = [ apache_httpd; thttpd; lighttpd_ab; lighttpd_http_load ]

let table1 =
  [
    ("Beanstalkd", 6365, "single-threaded");
    ("Lighttpd", 38_590, "single-threaded");
    ("Memcached", 9779, "multi-threaded");
    ("Nginx", 101_852, "multi-process");
    ("Redis", 34_625, "multi-threaded");
  ]

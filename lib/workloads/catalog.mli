(** The paper's benchmark applications as ready-made workloads.

    The five C10k servers of Table 1 / Figure 5 (Beanstalkd, Lighttpd,
    Memcached, Nginx, Redis) and the prior-work comparison servers of
    Table 2 / Figure 6 (Apache httpd, thttpd, plus Lighttpd under its two
    load generators). Request counts are scaled down from the paper's
    runs to keep simulations quick; per-request work and syscall mixes
    are calibrated so the measured overheads track the paper's. *)

val beanstalkd : Workload.t
(** beanstalkd-benchmark: workers pushing 256-byte jobs. *)

val lighttpd_wrk : Workload.t
(** wrk fetching a 4 kB page over keep-alive connections. *)

val memcached : Workload.t
(** memslap: 1 KiB values, 1:9 set/get mix, 4 worker threads. *)

val nginx : Workload.t
(** wrk against 4 worker processes. *)

val redis : Workload.t
(** redis-benchmark command mix (PING/SET/GET/INCR). *)

val apache_httpd : Workload.t
(** ApacheBench against prefork workers (Orchestra's benchmark). *)

val thttpd : Workload.t
(** ApacheBench against the single-process server (Tachyon's). *)

val lighttpd_http_load : Workload.t
(** http_load variant of the lighttpd benchmark (Mx's). *)

val lighttpd_ab : Workload.t
(** ApacheBench variant of the lighttpd benchmark (Tachyon's). *)

val thread_grid :
  name:string -> threads:int -> locks:int -> rounds:int -> code_seed:int ->
  Workload.t
(** A server-less thread-scale stressor: [threads] sibling threads
    contend on [locks] futex words for [rounds] lock/unlock rounds each.
    The streamed acquisition indices encode the leader's global lock
    order; everything else replays concurrently through the per-tid
    lanes. *)

val thread_grid_64 : Workload.t
(** 64 threads over 8 contended locks. *)

val thread_grid_256 : Workload.t
(** 256 threads over 16 contended locks. *)

val thread_grids : Workload.t list

val c10k_servers : Workload.t list
(** The Figure 5 set, in the paper's order. *)

val prior_work_servers : Workload.t list
(** The Figure 6 set. *)

val table1 : (string * int * string) list
(** Table 1: application, size (lines of code, as reported by cloc in
    the paper), threading model. *)

open Varan_kernel
module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Errno = Varan_syscall.Errno
module Cost = Varan_cycles.Cost
module Floatbuf = Varan_util.Floatbuf
module Stats = Varan_util.Stats
module Prng = Varan_util.Prng
module Prof = Varan_sim.Prof
module Phase = Varan_obs.Profile

type load = {
  connections : int;
  requests_per_conn : int;
  request_of : conn:int -> seq:int -> Bytes.t;
  think_cycles : int;
  warmup_requests : int;
}

type result = {
  mutable completed : int;
  mutable errors : int;
  lat : Floatbuf.t;
  mutable first_send : int64;
  mutable last_reply : int64;
  mutable conns_done : int;
}

let fresh_result () =
  {
    completed = 0;
    errors = 0;
    lat = Floatbuf.create ();
    first_send = Int64.max_int;
    last_reply = 0L;
    conns_done = 0;
  }

let latencies_us r = Floatbuf.to_list r.lat
let latency_count r = Floatbuf.length r.lat
let latency_summary r = Floatbuf.summary r.lat

let rec connect_retry api fd port attempts =
  match Api.connect api fd port with
  | Ok () -> Ok ()
  | Error Errno.ECONNREFUSED when attempts > 0 ->
    E.sleep 5_000;
    connect_retry api fd port (attempts - 1)
  | Error e -> Error e

(* Dial-until-listening while the server boots: idle time from the
   client's point of view, and a large one at scale — every worker spins
   here for the whole variant-launch window. The region subsumes the
   retry sleeps AND the failed-connect attempt costs, so the entire dial
   window lands in [client_idle] as one charge. *)
let dial api fd port attempts =
  let reg = Prof.region_enter () in
  if reg.Prof.r_tid >= 0 then Phase.suppress reg.Prof.r_tid;
  let r = connect_retry api fd port attempts in
  if reg.Prof.r_tid >= 0 then Phase.unsuppress reg.Prof.r_tid;
  Prof.region_exit Phase.client_idle reg;
  r

let launch k ~cost ~port_of load =
  let r = fresh_result () in
  for conn = 0 to load.connections - 1 do
    let proc = K.new_proc k (Printf.sprintf "client%d" conn) in
    let tid =
      E.spawn (Varan_kernel.Kernel.engine k) ~name:(Printf.sprintf "client%d" conn)
        (fun () ->
          let api = Api.direct k proc in
          match Api.socket api with
          | Error _ -> r.errors <- r.errors + 1
          | Ok fd -> (
            match dial api fd (port_of conn) 2000 with
            | Error _ -> r.errors <- r.errors + 1
            | Ok () ->
              for seq = 0 to load.requests_per_conn - 1 do
                let counted = seq >= load.warmup_requests in
                let request = load.request_of ~conn ~seq in
                let t0 = E.now_cycles () in
                if counted && t0 < r.first_send then r.first_send <- t0;
                (match Proto.send_msg api fd request with
                | Error _ -> r.errors <- r.errors + 1
                | Ok () -> (
                  match Proto.recv_msg api fd with
                  | Ok (Some _reply) ->
                    let t1 = E.now_cycles () in
                    if counted then begin
                      if t1 > r.last_reply then r.last_reply <- t1;
                      r.completed <- r.completed + 1;
                      Floatbuf.push r.lat
                        (Cost.cycles_to_us cost (Int64.sub t1 t0))
                    end
                  | Ok None | Error _ -> r.errors <- r.errors + 1));
                if load.think_cycles > 0 then E.consume load.think_cycles
              done;
              ignore (Api.close api fd);
              r.conns_done <- r.conns_done + 1))
    in
    K.register_task k proc tid
  done;
  r

let duration_cycles r =
  if r.last_reply <= r.first_send then 0L else Int64.sub r.last_reply r.first_send

let throughput_rps cost r =
  let cycles = Int64.to_float (duration_cycles r) in
  if cycles <= 0.0 then 0.0
  else float_of_int r.completed /. (cycles /. (cost.Cost.cpu_ghz *. 1e9))

let mean_latency_us r =
  if Floatbuf.is_empty r.lat then 0.0
  else Floatbuf.fold ( +. ) 0.0 r.lat /. float_of_int (Floatbuf.length r.lat)

(* ------------------------------------------------------------------ *)
(* Open-loop generator                                                 *)
(* ------------------------------------------------------------------ *)

type open_load = {
  ol_clients : int;
  ol_requests : int;
  ol_mean_gap_cycles : float;
  ol_request_of : client:int -> seq:int -> Bytes.t;
  ol_seed : int;
  ol_workers : int;
  ol_warmup : int;
  ol_preconnect : int list;
}

(* Open-loop load (the closed loop above is wrk; this is the Poisson
   arrival process of a serving benchmark): request arrival times come
   from an exponential inter-arrival draw and advance regardless of
   completions, so latency includes the queueing delay a real client
   would see — closed loops hide exactly that (coordinated omission).

   Millions of simulated clients multiplex over [ol_workers] engine
   tasks. Workers share one arrival schedule: each draw hands out the
   next (seq, client, arrival-time) triple, so the schedule is a single
   Poisson process regardless of worker count, and each worker holds one
   connection per distinct port it ever dials (client identity maps to a
   port via [port_of], normally through the shard router).

   Latency for request i is [completion_i - scheduled_arrival_i]: if the
   system falls behind, the backlog shows up in the tail percentiles
   rather than silently stretching the arrival process. *)
let launch_open k ~cost ~port_of load =
  if load.ol_workers < 1 then invalid_arg "Clients.launch_open: workers";
  if load.ol_clients < 1 then invalid_arg "Clients.launch_open: clients";
  let r = fresh_result () in
  let rng = Prng.create load.ol_seed in
  let issued = ref 0 in
  let arrival = ref 0.0 in
  (* One shared schedule: whichever worker is free draws the next
     arrival. The engine is deterministic, so the draw order (and thus
     the whole run) is a pure function of the seed. *)
  let draw () =
    if !issued >= load.ol_requests then None
    else begin
      let seq = !issued in
      incr issued;
      arrival := !arrival +. Prng.exponential rng load.ol_mean_gap_cycles;
      let client = Prng.int rng load.ol_clients in
      Some (seq, client, Int64.of_float !arrival)
    end
  in
  (* Schedule epoch: arrivals are offsets from launch time. [E.now] works
     outside task context (launch_open is called before the engine runs). *)
  let base = E.now (K.engine k) in
  for w = 0 to load.ol_workers - 1 do
    let proc = K.new_proc k (Printf.sprintf "olworker%d" w) in
    let tid =
      E.spawn (K.engine k) ~name:(Printf.sprintf "olworker%d" w) (fun () ->
          let api = Api.direct k proc in
          let conns = Hashtbl.create 8 in
          let conn_to port =
            match Hashtbl.find_opt conns port with
            | Some fd -> Some fd
            | None -> (
              match Api.socket api with
              | Error _ -> None
              | Ok fd -> (
                match dial api fd port 2000 with
                | Error _ -> None
                | Ok () ->
                  Hashtbl.replace conns port fd;
                  Some fd))
          in
          (* Dial the known ports up front: servers size their
             expected-connection count to the worker pool, so the
             connection universe is fixed before the first request and
             rerouting mid-run reuses a live connection instead of
             dialing one. *)
          List.iter (fun port -> ignore (conn_to port)) load.ol_preconnect;
          let rec pump () =
            match draw () with
            | None ->
              Hashtbl.iter (fun _ fd -> ignore (Api.close api fd)) conns;
              r.conns_done <- r.conns_done + 1
            | Some (seq, client, at) ->
              let counted = seq >= load.ol_warmup in
              let at = Int64.add base at in
              let now = E.now_cycles () in
              if at > now then begin
                (* Ahead of schedule: waiting for the next Poisson
                   arrival is idle time, not service time. *)
                let ti = Prof.mark () in
                E.sleep (Int64.to_int (Int64.sub at now));
                Prof.charge_wait Phase.client_idle ti
              end
              else if !Phase.enabled then
                Phase.note_backlog (Int64.sub now at);
              let port = port_of client in
              (match conn_to port with
              | None -> r.errors <- r.errors + 1
              | Some fd ->
                (* The whole send-to-reply window is one [client_wait]
                   charge; suppression folds the kernel blocks inside
                   send/recv into it instead of double-counting them. *)
                let reg = Prof.region_enter () in
                if reg.Prof.r_tid >= 0 then Phase.suppress reg.Prof.r_tid;
                let t0 = E.now_cycles () in
                if counted && t0 < r.first_send then r.first_send <- t0;
                (match
                   Proto.send_msg api fd (load.ol_request_of ~client ~seq)
                 with
                | Error _ -> r.errors <- r.errors + 1
                | Ok () -> (
                  match Proto.recv_msg api fd with
                  | Ok (Some _reply) ->
                    let t1 = E.now_cycles () in
                    if counted then begin
                      if t1 > r.last_reply then r.last_reply <- t1;
                      r.completed <- r.completed + 1;
                      (* Open-loop latency: from the scheduled arrival,
                         not from the send — queueing delay counts. *)
                      Floatbuf.push r.lat
                        (Cost.cycles_to_us cost (Int64.sub t1 at))
                    end
                  | Ok None | Error _ -> r.errors <- r.errors + 1));
                if reg.Prof.r_tid >= 0 then Phase.unsuppress reg.Prof.r_tid;
                Prof.region_exit Phase.client_wait reg);
              pump ()
          in
          pump ())
    in
    K.register_task k proc tid
  done;
  r

(** Load generators, standing in for wrk, ApacheBench, http_load,
    redis-benchmark, memslap and beanstalkd-benchmark.

    Two modes:

    {b Closed loop} ({!launch}): each connection is an independent
    client task — connect (with retry while the server is still
    starting), then send request / await reply in a closed loop. The
    arrival of request [i+1] waits for the completion of request [i], so
    measured latency is service latency with queueing hidden.

    {b Open loop} ({!launch_open}): request arrival times come from a
    Poisson process (exponential inter-arrival draws off the
    deterministic seed RNG) and advance {e independently of
    completions}; latency is measured from the {e scheduled arrival} to
    the reply, so queueing delay under overload lands in the tail
    percentiles instead of being silently absorbed — the coordinated
    omission closed loops suffer. Millions of simulated clients are
    multiplexed over a bounded number of engine tasks.

    Latency is recorded per request in virtual microseconds into a
    growable float array; throughput over the span from the first
    counted request sent to the last counted reply received. *)

open Varan_kernel

type load = {
  connections : int;
  requests_per_conn : int;
  request_of : conn:int -> seq:int -> Bytes.t;
  think_cycles : int;  (** client-side work between requests *)
  warmup_requests : int;
      (** per-connection requests excluded from throughput and latency,
          mirroring the paper's discarded warm-up measurement *)
}

type result = {
  mutable completed : int;
  mutable errors : int;
  lat : Varan_util.Floatbuf.t;  (** per-request latency, µs, oldest first *)
  mutable first_send : int64;
  mutable last_reply : int64;
  mutable conns_done : int;
}

val latencies_us : result -> float list
(** Latency samples in arrival order (oldest first). Allocates a list;
    large runs should use [result.lat] directly. *)

val latency_count : result -> int

val latency_summary : result -> Varan_util.Stats.summary option
(** Summary incl. p50/p99/p999 over the recorded latencies; [None] when
    nothing completed. *)

val launch :
  Types.t -> cost:Varan_cycles.Cost.t -> port_of:(int -> int) -> load -> result
(** Spawn one task per connection; the returned record fills in as the
    simulation runs. [port_of conn] maps a connection index to the port
    it should dial (units listen on consecutive ports). *)

val duration_cycles : result -> int64
val throughput_rps : Varan_cycles.Cost.t -> result -> float
(** Requests per virtual second. *)

val mean_latency_us : result -> float

(** {1 Open-loop generator} *)

type open_load = {
  ol_clients : int;  (** distinct simulated client identities *)
  ol_requests : int;  (** total requests in the arrival schedule *)
  ol_mean_gap_cycles : float;
      (** mean Poisson inter-arrival gap in cycles; the offered load is
          [1/gap] requests per cycle regardless of service speed *)
  ol_request_of : client:int -> seq:int -> Bytes.t;
  ol_seed : int;  (** seeds the arrival schedule and client draws *)
  ol_workers : int;
      (** engine tasks multiplexing the clients; each worker keeps one
          connection per distinct port it dials *)
  ol_warmup : int;  (** leading requests excluded from stats *)
  ol_preconnect : int list;
      (** ports every worker dials before its first request — fixes the
          connection universe so servers sized to [expected_conns =
          workers] terminate deterministically, and rerouted clients
          reuse live connections *)
}

val launch_open :
  Types.t ->
  cost:Varan_cycles.Cost.t ->
  port_of:(int -> int) ->
  open_load ->
  result
(** Spawn the worker tasks; the returned record fills in as the
    simulation runs. [port_of client] maps a client identity to the port
    to dial — under sharding, through {!Varan_nvx.Router} — and must be
    stable per client so a client's stream stays on one shard. Latency
    samples measure scheduled-arrival → reply. *)

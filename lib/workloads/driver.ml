module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Api = Varan_kernel.Api
module Types = Varan_kernel.Types
module Cost = Varan_cycles.Cost
module Nvx = Varan_nvx.Session
module Config = Varan_nvx.Config
module Variant = Varan_nvx.Variant
module Lockstep = Varan_nvx.Lockstep
module Record_replay = Varan_nvx.Record_replay

type measurement = {
  m_label : string;
  requests : int;
  errors : int;
  throughput_rps : float;
  mean_latency_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  duration_cycles : int64;
}

type mode =
  | Native
  | Nvx of { followers : int; config : Config.t }
  | Lockstep of { versions : int }
  | Scribe
  | Nvx_record of { followers : int; log_path : string }

let default_link_latency = 3_500 (* 1 us one way: same-rack, kernel-bypass client *)

(* Run a server natively (or with a wrapped API) by replicating the unit
   structure the NVX session would create. *)
let start_plain w k ~api_of =
  let body = w.Workload.make_body () in
  let main_proc = K.new_proc k w.Workload.w_name in
  let unit_procs =
    Array.init w.Workload.units (fun u ->
        match w.Workload.unit_kind with
        | Variant.Thread -> main_proc
        | Variant.Process ->
          if u = 0 then main_proc
          else K.fork_proc k main_proc (Printf.sprintf "worker%d" u))
  in
  Array.iteri
    (fun u proc ->
      let api = api_of proc in
      let tid =
        E.spawn (K.engine k)
          ~name:(Printf.sprintf "%s.unit%d" w.Workload.w_name u)
          (fun () -> try body ~unit_idx:u api with E.Killed -> ())
      in
      K.register_task k proc tid)
    unit_procs

let variants_for w n =
  List.init n (fun i ->
      Workload.fresh_variant w (Printf.sprintf "%s.v%d" w.Workload.w_name i))

(* Fold a finished client result into a measurement row; shared by the
   closed-loop path here and the open-loop serving scenario. *)
let measurement_of_result label cost result =
  let p50, p99, p999 =
    match Clients.latency_summary result with
    | None -> (0.0, 0.0, 0.0)
    | Some s ->
      Varan_util.Stats.(s.median, s.p99, s.p999)
  in
  {
    m_label = label;
    requests = result.Clients.completed;
    errors = result.Clients.errors;
    throughput_rps = Clients.throughput_rps cost result;
    mean_latency_us = Clients.mean_latency_us result;
    p50_us = p50;
    p99_us = p99;
    p999_us = p999;
    duration_cycles = Clients.duration_cycles result;
  }

let measure_clients label k cost w =
  let result =
    Clients.launch k ~cost ~port_of:(Workload.port_of_conn w) w.Workload.load
  in
  (result, fun () -> measurement_of_result label cost result)

let fresh_machine ?(link_latency = default_link_latency) w =
  let eng = E.create () in
  let k = K.create ~link_latency eng in
  w.Workload.setup_fs k;
  (eng, k)

let run ?link_latency w mode =
  let eng, k = fresh_machine ?link_latency w in
  let cost = K.cost k in
  let label, session_opt =
    match mode with
    | Native ->
      start_plain w k ~api_of:(fun proc -> Api.direct k proc);
      ("native", None)
    | Scribe ->
      start_plain w k ~api_of:(fun proc -> Record_replay.scribe_api k proc);
      ("scribe", None)
    | Nvx { followers; config } ->
      let session = Nvx.launch ~config k (variants_for w (followers + 1)) in
      (Printf.sprintf "varan+%df" followers, Some session)
    | Lockstep { versions } ->
      ignore (Lockstep.launch k (variants_for w versions));
      (Printf.sprintf "lockstep%dv" versions, None)
    | Nvx_record { followers; log_path } ->
      let config = Config.default in
      let session = Nvx.launch ~config k (variants_for w (followers + 1)) in
      let recorder = Record_replay.record session k ~tuple:0 ~path:log_path in
      ignore recorder;
      (Printf.sprintf "varan+rec+%df" followers, Some session)
  in
  let _result, finish = measure_clients label k cost w in
  E.run_until_quiescent eng;
  (match session_opt with Some s -> Nvx.observe_lags s | None -> ());
  finish ()

let run_with_full_session ?link_latency w ~followers ~config =
  let eng, k = fresh_machine ?link_latency w in
  let cost = K.cost k in
  let session = Nvx.launch ~config k (variants_for w (followers + 1)) in
  let _result, finish = measure_clients "varan" k cost w in
  E.run_until_quiescent eng;
  Nvx.observe_lags session;
  (finish (), Nvx.stats session, session)

let run_with_session ?link_latency w ~followers ~config =
  let m, st, _ = run_with_full_session ?link_latency w ~followers ~config in
  (m, st)

let overhead ~baseline m =
  if m.throughput_rps <= 0.0 then infinity
  else baseline.throughput_rps /. m.throughput_rps

(* ------------------------------------------------------------------ *)
(* SPEC                                                                 *)
(* ------------------------------------------------------------------ *)

(* Completion time of one native run. *)
let spec_native_cycles params =
  let eng = E.create () in
  let k = K.create eng in
  Spec.setup_fs k;
  let done_at = ref 0L in
  let proc = K.new_proc k params.Spec.sp_name in
  let tid =
    E.spawn eng ~name:params.Spec.sp_name (fun () ->
        let api = Api.direct k proc in
        Spec.make_body params () ~unit_idx:0 api;
        done_at := E.now_cycles ())
  in
  K.register_task k proc tid;
  E.run_until_quiescent eng;
  !done_at

let spec_nvx_cycles params ~followers =
  let eng = E.create () in
  let k = K.create eng in
  Spec.setup_fs k;
  let leader_done = ref 0L in
  let base = Spec.variant_of params (params.Spec.sp_name ^ ".v0") in
  (* Wrap the leader's body to capture its completion time; followers
     get plain copies. *)
  let leader =
    {
      base with
      Variant.program =
        {
          base.Variant.program with
          Variant.body =
            (fun ~unit_idx api ->
              base.Variant.program.Variant.body ~unit_idx api;
              leader_done := E.now_cycles ());
        };
    }
  in
  let followers_v =
    List.init followers (fun i ->
        Spec.variant_of params (Printf.sprintf "%s.v%d" params.Spec.sp_name (i + 1)))
  in
  ignore (Nvx.launch k (leader :: followers_v));
  E.run_until_quiescent eng;
  !leader_done

let run_spec params ~followers =
  let native = Int64.to_float (spec_native_cycles params) in
  let nvx = Int64.to_float (spec_nvx_cycles params ~followers) in
  if native <= 0.0 then infinity else nvx /. native

let spec_lockstep_cycles params ~versions =
  let eng = E.create () in
  let k = K.create eng in
  Spec.setup_fs k;
  let leader_done = ref 0L in
  let base = Spec.variant_of params (params.Spec.sp_name ^ ".v0") in
  let leader =
    {
      base with
      Variant.program =
        {
          base.Variant.program with
          Variant.body =
            (fun ~unit_idx api ->
              base.Variant.program.Variant.body ~unit_idx api;
              leader_done := E.now_cycles ());
        };
    }
  in
  let others =
    List.init (versions - 1) (fun i ->
        Spec.variant_of params (Printf.sprintf "%s.v%d" params.Spec.sp_name (i + 1)))
  in
  ignore (Lockstep.launch k (leader :: others));
  E.run_until_quiescent eng;
  !leader_done

let run_spec_lockstep params ~versions =
  let native = Int64.to_float (spec_native_cycles params) in
  let ls = Int64.to_float (spec_lockstep_cycles params ~versions) in
  if native <= 0.0 then infinity else ls /. native

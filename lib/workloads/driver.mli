(** Measurement driver: run a workload natively, under VARAN, under the
    ptrace lockstep baseline, under the Scribe model, or under VARAN with
    a recorder attached — each in a fresh simulated machine — and report
    throughput, latency and overhead. *)

type measurement = {
  m_label : string;
  requests : int;
  errors : int;
  throughput_rps : float;
  mean_latency_us : float;
  p50_us : float;  (** median request latency, virtual µs *)
  p99_us : float;
  p999_us : float;  (** the serving tail the paper's Figure 5 hides *)
  duration_cycles : int64;
}

type mode =
  | Native
  | Nvx of { followers : int; config : Varan_nvx.Config.t }
  | Lockstep of { versions : int }  (** total versions, lockstep monitor *)
  | Scribe
  | Nvx_record of { followers : int; log_path : string }

val measurement_of_result :
  string -> Varan_cycles.Cost.t -> Clients.result -> measurement
(** Fold a finished client result (closed- or open-loop) into a row. *)

val run : ?link_latency:int -> Workload.t -> mode -> measurement
(** Build a fresh engine/kernel, start the server(s) in the requested
    mode, run the load to completion and measure from the client side. *)

val run_with_full_session :
  ?link_latency:int ->
  Workload.t ->
  followers:int ->
  config:Varan_nvx.Config.t ->
  measurement * Varan_nvx.Session.stats * Varan_nvx.Session.t
(** Like {!run_with_session} but also returning the live session handle
    (for trace/divergence-log inspection). *)

val run_with_session :
  ?link_latency:int ->
  Workload.t ->
  followers:int ->
  config:Varan_nvx.Config.t ->
  measurement * Varan_nvx.Session.stats
(** Like {!run} with [Nvx] but also returning the session statistics
    (stall cycles, dispatch mix, ring stats, observed lag). *)

val overhead : baseline:measurement -> measurement -> float
(** Throughput-based overhead ratio, the paper's metric: ≥ 1.0 means
    slower than baseline. *)

(** {1 SPEC (compute-bound) runs} *)

val run_spec : Spec.params -> followers:int -> float
(** Leader completion-time overhead vs a native run of the same kernel
    with the given number of followers (0 = interception only). *)

val run_spec_lockstep : Spec.params -> versions:int -> float
(** The same benchmark under the ptrace lockstep monitor. *)

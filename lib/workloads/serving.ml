module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Cost = Varan_cycles.Cost
module Config = Varan_nvx.Config
module Variant = Varan_nvx.Variant
module Lifecycle = Varan_nvx.Lifecycle
module Shard = Varan_nvx.Shard
module Router = Varan_nvx.Router
module Session = Varan_nvx.Session
module Rewrite_cache = Varan_binary.Rewrite_cache

(* The sharded serving scenario: N monitor shards (one NVX session each,
   memcached-style multi-unit server inside) behind the sticky router,
   driven by the open-loop Poisson generator. One simulated machine runs
   everything — shards genuinely overlap in virtual time, so measured
   req/s is the pool's capacity, and driving the arrival rate above the
   largest pool's saturation point makes throughput-vs-shard-count a
   capacity curve rather than an echo of the offered load. *)

type spec = {
  sv_shards : int;
  sv_followers : int; (* per shard *)
  sv_units : int; (* server units (threads) per shard *)
  sv_work_cycles : int; (* per-command server work *)
  sv_clients : int; (* distinct simulated client identities *)
  sv_requests : int; (* total open-loop arrivals *)
  sv_mean_gap_cycles : float; (* Poisson inter-arrival mean *)
  sv_workers : int; (* client tasks multiplexing the ids *)
  sv_warmup : int; (* arrivals excluded from stats *)
  sv_seed : int;
  sv_policy : Lifecycle.policy option; (* per-shard watchdog policy *)
}

(* The default watchdog is tuned for torture runs (quarantine at 64
   events of lag); a saturated serving shard legitimately runs its
   followers deep behind the leader, so the serving default keeps the
   watchdog alive but backs its thresholds far away from the operating
   point — shards degrade on real deaths, not on honest backlog. *)
let serving_policy =
  {
    Lifecycle.default_policy with
    Lifecycle.lag_threshold = 1_000_000;
    stall_timeout = 50_000_000;
  }

let default =
  {
    sv_shards = 1;
    sv_followers = 1;
    sv_units = 2;
    sv_work_cycles = 9_000;
    sv_clients = 1_000_000;
    sv_requests = 4_000;
    sv_mean_gap_cycles = 200.0;
    sv_workers = 48;
    sv_warmup = 200;
    sv_seed = 424_242;
    sv_policy = Some serving_policy;
  }

type outcome = {
  o_measurement : Driver.measurement;
  o_result : Clients.result;
  o_router : Router.stats;
  o_degraded : (int * string) list;
  o_zygote_forks : int; (* served by the one shared zygote *)
  o_rewrite_cache : Rewrite_cache.stats; (* shared across shards *)
  o_total_task_cycles : int64; (* profile coverage denominator *)
}

(* Shard port bases are spread so each shard's units own a disjoint port
   range on the one simulated machine. *)
let port_base i = 9_300 + (i * 32)

let variants_of spec shard =
  let cfg =
    {
      Cache_server.port = port_base shard;
      units = spec.sv_units;
      work_cycles = spec.sv_work_cycles;
      expected_conns = spec.sv_workers;
    }
  in
  (* Identical profile (and code seed) across shards on purpose: every
     shard's image hashes alike, so the shared rewrite cache rewrites
     once and serves the other (shards*(followers+1) - 1) spawns by
     rebase. *)
  let profile =
    { Variant.code_bytes = 10_000; syscall_share = 0.01; code_seed = 13 }
  in
  List.init
    (spec.sv_followers + 1)
    (fun j ->
      Variant.make ~profile ~mem_intensity_c1000:70
        (Printf.sprintf "shard%d.cache.v%d" shard j)
        {
          Variant.units = spec.sv_units;
          unit_kind = Variant.Thread;
          body = Cache_server.make_body cfg ();
        })

let value = Bytes.make 256 'v'

let request_of ~client ~seq =
  let key = Printf.sprintf "key-%d" (client mod 4096) in
  if seq mod 10 = 0 then Cache_server.set_cmd key value
  else Cache_server.get_cmd key

let run ?(label = "serving") spec =
  if spec.sv_shards < 1 then invalid_arg "Serving.run: shards";
  let eng = E.create () in
  let k = K.create ~link_latency:3_500 eng in
  let cost = K.cost k in
  let config =
    { Config.default with Config.lifecycle = spec.sv_policy }
  in
  let pool =
    Shard.launch ~config ~router_seed:spec.sv_seed k ~shards:spec.sv_shards
      ~variants_of:(variants_of spec)
  in
  let port_of client =
    let s = Shard.route pool ~conn:client in
    port_base s + (client mod spec.sv_units)
  in
  let preconnect =
    List.concat_map
      (fun s ->
        List.init spec.sv_units (fun u -> port_base s + u))
      (List.init spec.sv_shards Fun.id)
  in
  let result =
    Clients.launch_open k ~cost ~port_of
      {
        Clients.ol_clients = spec.sv_clients;
        ol_requests = spec.sv_requests;
        ol_mean_gap_cycles = spec.sv_mean_gap_cycles;
        ol_request_of = request_of;
        ol_seed = spec.sv_seed;
        ol_workers = spec.sv_workers;
        ol_warmup = spec.sv_warmup;
        ol_preconnect = preconnect;
      }
  in
  (* Liveness bound, not a deadline: a healthy run quiesces long before
     this; a routing or termination bug trips Cycle_budget instead of
     hanging the bench. *)
  E.run_until_quiescent ~cycle_budget:20_000_000_000L eng;
  (* Residue-chasing aid for the coverage gate: per-task lifetime vs the
     profiler's stolen ledger shows which tasks own unattributed cycles
     (the stolen ledger excludes app-compute gap charges, so variant
     units show their compute as "residue" — that is expected). *)
  (if Sys.getenv_opt "VARAN_TASK_LIFETIMES" <> None then
     let ls =
       List.map
         (fun (id, n, c) ->
           let st = Varan_obs.Profile.stolen id in
           (n, c, st, Int64.sub c st))
         (E.task_lifetimes eng)
       |> List.sort (fun (_, _, _, a) (_, _, _, b) -> Int64.compare b a)
     in
     List.iteri
       (fun i (n, c, st, res) ->
         if i < 40 then
           Printf.eprintf "%-28s life %10Ld stolen %10Ld residue %10Ld\n" n c
             st res)
       ls);
  {
    o_measurement = Driver.measurement_of_result label cost result;
    o_result = result;
    o_router = Router.stats (Shard.router pool);
    o_degraded = Shard.degraded pool;
    o_zygote_forks = Shard.zygote_forks pool;
    o_rewrite_cache =
      Rewrite_cache.stats (Session.shared_cache (Shard.hub pool));
    o_total_task_cycles = E.total_task_cycles eng;
  }

(** The sharded serving scenario: N monitor shards (one {!Varan_nvx.Session}
    each, running a memcached-style multi-unit server) behind the sticky
    {!Varan_nvx.Router}, driven by the open-loop Poisson generator, all
    on one simulated machine so the shards overlap in virtual time.

    Used by the serving benchmark ([BENCH_serving.json]), the
    [varan serve] CLI and the serving tests. The arrival rate in
    {!default} is set well above the 8-shard saturation point, so
    measured req/s is pool capacity and the shard-count curve is the
    linear-scaling evidence ROADMAP item 4 asks for. *)

type spec = {
  sv_shards : int;
  sv_followers : int;  (** per shard *)
  sv_units : int;  (** server units (threads) per shard *)
  sv_work_cycles : int;  (** per-command server work *)
  sv_clients : int;  (** distinct simulated client identities *)
  sv_requests : int;  (** total open-loop arrivals *)
  sv_mean_gap_cycles : float;  (** Poisson inter-arrival mean, cycles *)
  sv_workers : int;  (** client tasks multiplexing the ids *)
  sv_warmup : int;  (** arrivals excluded from stats *)
  sv_seed : int;
  sv_policy : Varan_nvx.Lifecycle.policy option;
      (** per-shard watchdog policy; [None] disables the lifecycle
          manager entirely *)
}

val serving_policy : Varan_nvx.Lifecycle.policy
(** The torture watchdog defaults with the lag/stall thresholds backed
    off — a saturated shard legitimately runs its followers deep behind
    the leader, and honest backlog must not read as sickness. *)

val default : spec
(** 1 shard, 1 follower, 2 units, 1M client ids over 48 workers, 4000
    arrivals at a 200-cycle mean gap (≫ 8-shard saturation). *)

type outcome = {
  o_measurement : Driver.measurement;
  o_result : Clients.result;
  o_router : Varan_nvx.Router.stats;
  o_degraded : (int * string) list;
  o_zygote_forks : int;
      (** forks served by the single shared zygote — shards*(followers+1)
          on a clean run *)
  o_rewrite_cache : Varan_binary.Rewrite_cache.stats;
      (** the shared cache: 1 cold rewrite, the rest rebases *)
  o_total_task_cycles : int64;
      (** {!Varan_sim.Engine.total_task_cycles} at quiescence — the
          denominator [varan serve --profile] judges attribution
          coverage against *)
}

val port_base : int -> int
(** Shard [i]'s first unit port (disjoint ranges per shard). *)

val run : ?label:string -> spec -> outcome
(** Build the machine, launch the shard pool and the open-loop load, run
    to quiescence (bounded by a generous cycle budget) and report. *)

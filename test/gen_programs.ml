(* The shared random-program generator and interpreter, re-exported so
   every test speaks the same op language (the torture suite reuses it
   through Varan_torture directly). *)
include Varan_torture.Programs
